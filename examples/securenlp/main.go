// Secure NLP scoring: the paper's motivating workload run end-to-end over
// the distributed edge runtime — QKD key exchange, symmetric masking of
// token features, TCP upload, server-side transciphering into CKKS, fused
// encrypted inference, and client-side decryption of the result.
//
// Two encrypted stages run over the same session: the slot-wise affine
// scorer (Compute) and a packed dense layer served by the hoisted-BSGS
// matrix–vector kernel (MatVec) under one-time-uploaded Galois rotation
// keys.
//
// The server never sees plaintext features or results; the client never
// performs heavyweight HE evaluation (only one-time key encryption).
//
//	go run ./examples/securenlp
package main

import (
	"fmt"
	"log"

	"quhe/internal/edge"
	"quhe/internal/qkd"
)

func main() {
	// Sentiment-style scoring model: per-feature weight and bias applied
	// to encrypted token embeddings (slot-wise affine inference).
	model := edge.Model{
		Weights: []float64{0.8, -0.6, 0.4, -0.2, 0.9, -0.5, 0.3, 0.7},
		Bias:    []float64{0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05},
		// Dense attention-pooling layer: an 8×8 mixing matrix applied to
		// the embedding under encryption by the BSGS matvec kernel.
		Matrix: [][]float64{
			{0.30, 0.10, -0.05, 0.00, 0.15, -0.10, 0.05, 0.20},
			{0.10, 0.40, 0.05, -0.15, 0.00, 0.10, -0.05, 0.00},
			{-0.05, 0.05, 0.35, 0.10, -0.10, 0.00, 0.15, -0.05},
			{0.00, -0.15, 0.10, 0.45, 0.05, -0.05, 0.00, 0.10},
			{0.15, 0.00, -0.10, 0.05, 0.50, 0.10, -0.15, 0.05},
			{-0.10, 0.10, 0.00, -0.05, 0.10, 0.40, 0.05, -0.10},
			{0.05, -0.05, 0.15, 0.00, -0.15, 0.05, 0.55, 0.00},
			{0.20, 0.00, -0.05, 0.10, 0.05, -0.10, 0.00, 0.35},
		},
		MatrixBias: []float64{0.02, -0.01, 0.00, 0.01, 0.02, -0.02, 0.01, 0.00},
	}
	server, err := edge.NewServer("127.0.0.1:0", edge.ServerConfig{
		Model: model,
		Logf:  log.Printf,
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	defer server.Close()
	fmt.Printf("edge server listening on %s\n", server.Addr())

	// QKD phase: the key centre runs a BBM92 exchange over a route with
	// end-to-end Werner parameter 0.96 (QBER 2%) and banks the key.
	kc := qkd.NewKeyCenter()
	if err := kc.Provision("nlp-client", 500); err != nil {
		log.Fatalf("provision: %v", err)
	}
	ex, err := kc.RunExchange("nlp-client", 0.96, 16384, 7)
	if err != nil {
		log.Fatalf("qkd exchange: %v", err)
	}
	fmt.Printf("QKD: %d key bytes distributed (QBER %.3f, secret fraction %.3f)\n",
		len(ex.Key), ex.EstimatedQBER, ex.SecretFraction)

	qkdKey, err := kc.Withdraw("nlp-client", 32)
	if err != nil {
		log.Fatalf("withdraw: %v", err)
	}

	client, err := edge.Dial(server.Addr(), "nlp-client", qkdKey, 42)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer client.Close()

	// Two batches of token features (e.g. embedding projections).
	batches := [][]float64{
		{0.92, 0.15, -0.33, 0.48, 0.77, -0.61, 0.20, 0.05},
		{-0.44, 0.66, 0.12, -0.89, 0.31, 0.58, -0.07, 0.73},
	}
	for b, features := range batches {
		scores, err := client.Compute(uint32(b), features)
		if err != nil {
			log.Fatalf("compute batch %d: %v", b, err)
		}
		fmt.Printf("\nbatch %d (modeled: tx %.1fms, server compute %.1fs):\n",
			b, 1000*client.LastTxDelay, client.LastCmpDelay)
		fmt.Println("  feature   encrypted-score   plaintext-check   |error|")
		for i, x := range features {
			want := model.Weights[i]*x + model.Bias[i]
			diff := scores[i] - want
			if diff < 0 {
				diff = -diff
			}
			fmt.Printf("  %7.3f   %15.4f   %15.4f   %7.4f\n", x, scores[i], want, diff)
		}
	}
	// Dense layer through the serve path: upload the Galois rotation keys
	// once (they are public evaluation material, kept on the session),
	// then score embeddings through the packed matrix.
	if dim := client.MatVecDim(); dim > 0 {
		if err := client.EnableMatVec(); err != nil {
			log.Fatalf("enable matvec: %v", err)
		}
		embedding := []float64{0.92, 0.15, -0.33, 0.48, 0.77, -0.61, 0.20, 0.05}
		pooled, err := client.MatVec(uint32(len(batches)), embedding)
		if err != nil {
			log.Fatalf("matvec: %v", err)
		}
		fmt.Printf("\ndense layer (dim %d, hoisted BSGS under encryption):\n", dim)
		fmt.Println("  out-slot   encrypted-score   plaintext-check   |error|")
		for i := 0; i < dim; i++ {
			want := model.MatrixBias[i]
			for j, x := range embedding {
				want += model.Matrix[i][j] * x
			}
			diff := pooled[i] - want
			if diff < 0 {
				diff = -diff
			}
			fmt.Printf("  %8d   %15.4f   %15.4f   %7.4f\n", i, pooled[i], want, diff)
		}
	}

	fmt.Printf("\nserver processed %d blocks without ever seeing a plaintext\n",
		server.Blocks("nlp-client"))
}
