// Quickstart: build the paper's evaluation instance, run the QuHE
// algorithm, and compare it against the three whole-procedure baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"quhe/internal/core"
)

func main() {
	// The §VI-A instance: SURFnet topology, N=6 clients, the paper's
	// budgets and weights; channel gains sampled with seed 1.
	cfg := core.PaperConfig(1)
	if err := cfg.Validate(); err != nil {
		log.Fatalf("config: %v", err)
	}

	fmt.Println("Solving P1 with the QuHE algorithm (Stages 1-3)...")
	res, err := cfg.SolveQuHE(core.QuHEOptions{})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	fmt.Printf("\nConverged in %d outer iteration(s); stage calls S1=%d S2=%d S3=%d (%.2fs total)\n",
		res.OuterIters, res.StageCalls[0], res.StageCalls[1], res.StageCalls[2], res.Runtime.Seconds())

	fmt.Println("\nOptimal allocation:")
	fmt.Println("client  phi(pairs/s)   lambda      p(W)      b(MHz)    fc(GHz)   fs(GHz)")
	for i := 0; i < cfg.N(); i++ {
		fmt.Printf("%6d  %12.4f  %7.0f  %8.4f  %9.3f  %8.3f  %8.3f\n",
			i+1, res.Vars.Phi[i], res.Vars.Lambda[i], res.Vars.P[i],
			res.Vars.B[i]/1e6, res.Vars.FC[i]/1e9, res.Vars.FS[i]/1e9)
	}

	fmt.Printf("\nObjective decomposition:\n")
	fmt.Printf("  U_qkd   = %10.4f  (x %g)\n", res.Eval.UQKD, cfg.AlphaQKD)
	fmt.Printf("  U_msl   = %10.4f  (x %g)\n", res.Eval.UMSL, cfg.AlphaMSL)
	fmt.Printf("  T_total = %10.2f s (x -%g)\n", res.Eval.Delay, cfg.AlphaT)
	fmt.Printf("  E_total = %10.2f J (x -%g)\n", res.Eval.Energy, cfg.AlphaE)
	fmt.Printf("  objective = %.4f\n", res.Eval.Objective)

	fmt.Println("\nBaselines (Fig. 5(d) comparison):")
	for _, kind := range []core.BaselineKind{core.BaselineAA, core.BaselineOLAA, core.BaselineOCCR} {
		b, err := cfg.SolveBaseline(kind)
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		fmt.Printf("  %-5s objective %8.3f   energy %10.1f J   delay %9.1f s   U_msl %7.2f\n",
			kind, b.Eval.Objective, b.Eval.Energy, b.Eval.Delay, b.Eval.UMSL)
	}
	fmt.Printf("  %-5s objective %8.3f   energy %10.1f J   delay %9.1f s   U_msl %7.2f\n",
		"QuHE", res.Eval.Objective, res.Eval.Energy, res.Eval.Delay, res.Eval.UMSL)
}
