// Key exchange: BB84 in three scenarios — clean channel, noisy channel,
// and an intercept-resend eavesdropper (detected and aborted) — followed by
// using the distilled key with the repository's ChaCha20 to protect a
// message, exactly as the QuHE client does before upload.
//
//	go run ./examples/keyexchange
package main

import (
	"bytes"
	"fmt"
	"log"

	"quhe/internal/chacha20"
	"quhe/internal/qkd"
)

func main() {
	fmt.Println("scenario 1: clean channel")
	clean, err := qkd.Exchange(qkd.ExchangeConfig{RawBits: 16384, QBER: 0, Seed: 1})
	if err != nil {
		log.Fatalf("clean exchange: %v", err)
	}
	report(clean)

	fmt.Println("\nscenario 2: noisy channel (QBER 4%)")
	noisy, err := qkd.Exchange(qkd.ExchangeConfig{RawBits: 16384, QBER: 0.04, Seed: 2})
	if err != nil {
		log.Fatalf("noisy exchange: %v", err)
	}
	report(noisy)

	fmt.Println("\nscenario 3: intercept-resend eavesdropper")
	_, err = qkd.Exchange(qkd.ExchangeConfig{RawBits: 16384, QBER: 0, Eavesdrop: true, Seed: 3})
	if err != nil {
		fmt.Printf("  exchange aborted as expected: %v\n", err)
	} else {
		log.Fatal("eavesdropper went undetected!")
	}

	// Use the distilled key for symmetric encryption (the client's §III-A.2
	// step): ChaCha20 with a 32-byte key drawn from the QKD output.
	fmt.Println("\nusing the distilled key with ChaCha20:")
	if len(noisy.Key) < chacha20.KeySize {
		log.Fatalf("key too short: %d bytes", len(noisy.Key))
	}
	key := noisy.Key[:chacha20.KeySize]
	nonce := make([]byte, chacha20.NonceSize)
	msg := []byte("encrypted prediction request: tokens=[...]")
	ct, err := chacha20.Seal(key, nonce, msg)
	if err != nil {
		log.Fatalf("seal: %v", err)
	}
	pt, err := chacha20.Open(key, nonce, ct)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	fmt.Printf("  message:    %q\n", msg)
	fmt.Printf("  ciphertext: %x...\n", ct[:16])
	fmt.Printf("  roundtrip:  %v\n", bytes.Equal(pt, msg))
}

func report(res qkd.ExchangeResult) {
	fmt.Printf("  sifted %d bits, QBER est %.4f (true %.4f)\n",
		res.SiftedBits, res.EstimatedQBER, res.TrueQBER)
	fmt.Printf("  reconciliation leaked %d bits; secret fraction %.3f\n",
		res.LeakedBits, res.SecretFraction)
	fmt.Printf("  final key: %d bytes\n", len(res.Key))
}
