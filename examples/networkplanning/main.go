// Network planning: build a custom QKD topology (not the paper's SURFnet),
// optimize its entanglement-rate allocation with QuHE Stage 1, compare the
// heuristic baselines, and validate the winning allocation with the
// discrete-event entanglement simulator.
//
//	go run ./examples/networkplanning
package main

import (
	"fmt"
	"log"

	"quhe/internal/core"
	"quhe/internal/qnet"
	"quhe/internal/wireless"
)

func main() {
	// A metropolitan star-plus-ring topology: a key centre (hub) with
	// three spokes and a two-hop ring path. β values derived from the
	// physical link model at 0.2 dB/km fibre attenuation.
	mkBeta := func(lengthKm float64) float64 {
		return qnet.DeriveBeta(lengthKm, 0.9, 0.2, 0.012)
	}
	links := []qnet.Link{
		{ID: 1, LengthKm: 12.0, Beta: mkBeta(12.0)},
		{ID: 2, LengthKm: 21.5, Beta: mkBeta(21.5)},
		{ID: 3, LengthKm: 8.4, Beta: mkBeta(8.4)},
		{ID: 4, LengthKm: 17.9, Beta: mkBeta(17.9)},
		{ID: 5, LengthKm: 26.3, Beta: mkBeta(26.3)},
	}
	routes := []qnet.Route{
		{ID: 1, Source: "hub", Dest: "hospital", LinkIDs: []int{1}},
		{ID: 2, Source: "hub", Dest: "campus", LinkIDs: []int{2}},
		{ID: 3, Source: "hub", Dest: "factory", LinkIDs: []int{3, 4}},
		{ID: 4, Source: "hub", Dest: "datacenter", LinkIDs: []int{3, 5}},
	}
	net, err := qnet.New(links, routes)
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	fmt.Println("custom topology:")
	for l := 0; l < net.NumLinks(); l++ {
		lk := net.Link(l)
		fmt.Printf("  link %d: %.1f km, beta = %.1f pairs/s\n", lk.ID, lk.LengthKm, lk.Beta)
	}

	// Assemble a full system config around the custom network.
	n := net.NumRoutes()
	fill := func(v float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	ch := wireless.NewChannelModel(0, wireless.FadingRayleigh, 3)
	gains := make([]float64, n)
	for i := range gains {
		gains[i] = ch.SampleGain(ch.SampleDiskDistanceKm(800))
	}
	cfg := &core.Config{
		Net:             net,
		AlphaQKD:        1,
		AlphaMSL:        core.CalibratedAlphaMSL,
		AlphaT:          1e-4,
		AlphaE:          1e-4,
		PhiMin:          fill(0.5),
		SecurityWeights: []float64{0.4, 0.2, 0.2, 0.2},
		LambdaSet:       []float64{32768, 65536, 131072},
		PMax:            fill(0.2),
		BTotal:          10e6,
		FCMax:           fill(3e9),
		FSTotal:         20e9,
		SECycles:        fill(1e6),
		KappaClient:     fill(1e-28),
		KappaServer:     1e-28,
		DTrBits:         fill(3e9),
		DCmpTokens:      fill(160),
		TokensPerSample: fill(10),
		Gains:           gains,
		NoisePSD:        wireless.DefaultNoisePSDWHz,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("config: %v", err)
	}

	fmt.Println("\nStage-1 method comparison (objective minimized):")
	for _, m := range []core.Stage1Method{core.Stage1Barrier, core.Stage1GD, core.Stage1SA, core.Stage1RS} {
		res, err := cfg.SolveStage1(core.Stage1Options{Method: m, Seed: 2, GDIters: 60000, SAIters: 60000})
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		fmt.Printf("  %-5s objective %8.4f  U_qkd %8.4f  runtime %8.3fs\n",
			m, res.Objective, res.UQKD, res.Runtime.Seconds())
	}

	best, err := cfg.SolveStage1(core.Stage1Options{})
	if err != nil {
		log.Fatalf("stage1: %v", err)
	}
	fmt.Println("\noptimal rates:")
	for r := 0; r < n; r++ {
		fmt.Printf("  %-11s phi = %.3f pairs/s\n", net.Route(r).Dest, best.Phi[r])
	}

	// Validate with the discrete-event simulator at 30% capacity headroom.
	fmt.Println("\ndiscrete-event validation (200 s):")
	loads, err := net.LinkLoads(best.Phi)
	if err != nil {
		log.Fatal(err)
	}
	w := make([]float64, net.NumLinks())
	for l := range w {
		w[l] = 1 - 1.3*loads[l]/net.Link(l).Beta
		if loads[l] == 0 {
			w[l] = 0.999
		}
	}
	sim, err := net.SimulateEntanglementDistribution(best.Phi, w, qnet.SimConfig{Duration: 200, Seed: 4})
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	for r := 0; r < n; r++ {
		ratio := float64(sim.RouteDelivered[r]) / float64(sim.RouteRequested[r])
		fmt.Printf("  %-11s delivered %5d/%5d (%.1f%%), empirical SKF %.3f\n",
			net.Route(r).Dest, sim.RouteDelivered[r], sim.RouteRequested[r], 100*ratio, sim.RouteSKF[r])
	}
}
