module quhe

go 1.24
