// Benchmarks regenerating every table and figure of the QuHE paper's
// evaluation section, plus the ablation benches called out in DESIGN.md.
// Each figure/table bench prints its rows/series once (via printOnce) so a
// plain `go test -bench=.` run reproduces the paper's outputs; the heavier
// experiments use reduced sizes here — cmd/quhe runs them at paper scale.
package quhe_test

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"quhe/internal/core"
	"quhe/internal/edge"
	"quhe/internal/experiments"
	"quhe/internal/faultnet"
	"quhe/internal/he/ckks"
	"quhe/internal/he/ring"
	"quhe/internal/obs"
	"quhe/internal/qkd"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

var (
	benchCfgOnce sync.Once
	benchCfg     *core.Config

	printGuards sync.Map
)

func paperCfg(b *testing.B) *core.Config {
	b.Helper()
	benchCfgOnce.Do(func() {
		benchCfg = core.PaperConfig(1)
	})
	return benchCfg
}

// printOnce runs the printer exactly once per named output across all bench
// iterations, so tables appear in bench output without repetition.
func printOnce(name string, print func()) {
	once, _ := printGuards.LoadOrStore(name, &sync.Once{})
	once.(*sync.Once).Do(print)
}

// --- Figure 3: optimality across random initializations -------------------

func BenchmarkFig3Optimality(b *testing.B) {
	cfg := paperCfg(b)
	const samples = 10 // cmd/quhe -exp fig3 runs the paper's 100
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(cfg, samples, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary.Mean, "mean-objective")
		b.ReportMetric(100*res.GoodOrBetter, "good-or-better-%")
		printOnce("fig3", func() {
			fmt.Printf("\nFig. 3 (%d samples): max %.2f min %.2f mean %.2f  very-good %.0f%%  good+ %.0f%%\n",
				samples, res.Summary.Max, res.Summary.Min, res.Summary.Mean,
				100*res.VeryGood, 100*res.GoodOrBetter)
			experiments.RenderHistogram(os.Stdout, res.Edges, res.Buckets)
		})
	}
}

// --- Figure 4: per-stage convergence ---------------------------------------

func BenchmarkFig4Convergence(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stage1Iters), "s1-iters")
		b.ReportMetric(float64(res.Stage2Iters), "s2-nodes")
		b.ReportMetric(float64(res.Stage3Iters), "s3-newton")
		printOnce("fig4", func() {
			fmt.Println()
			experiments.RenderTrace(os.Stdout, "Fig. 4(a) Stage-1 objective", res.Stage1, 12)
			experiments.RenderTrace(os.Stdout, "Fig. 4(b) Stage-2 incumbent", res.Stage2, 12)
			experiments.RenderTrace(os.Stdout, "Fig. 4(c) Stage-3 POBJ", res.Stage3POBJ, 12)
			experiments.RenderTrace(os.Stdout, "Fig. 4(d) Stage-3 duality gap", res.Stage3Gap, 12)
		})
	}
}

// --- Figure 5(a): stage calls and runtime ----------------------------------

func BenchmarkFig5aStageAccounting(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Total.Seconds(), "total-s")
		printOnce("fig5a", func() {
			fmt.Printf("\nFig. 5(a): calls S1=%d S2=%d S3=%d  runtime %.2fs  objective %.3f\n",
				res.Calls[0], res.Calls[1], res.Calls[2], res.Total.Seconds(), res.Objective)
		})
	}
}

// --- Figures 5(b)/(c) and Tables V/VI: Stage-1 methods ---------------------

func BenchmarkFig5bcStage1Methods(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		comps, err := experiments.Stage1Methods(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig5bc", func() {
			fmt.Println("\nFig. 5(b)/(c): Stage-1 methods")
			for _, c := range comps {
				fmt.Printf("  %-5s runtime %8.3fs  objective %.4f\n",
					c.Method, c.Runtime.Seconds(), c.Objective)
			}
		})
	}
}

func BenchmarkTableVPhi(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table5(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table5", func() {
			fmt.Println()
			t.Render(os.Stdout)
		})
	}
}

func BenchmarkTableVIW(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table6(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table6", func() {
			fmt.Println()
			t.Render(os.Stdout)
		})
	}
}

// --- Figure 5(d): whole-procedure comparison --------------------------------

func BenchmarkFig5dMethodComparison(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5d(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig5d", func() {
			fmt.Println("\nFig. 5(d): method comparison")
			for _, r := range rows {
				fmt.Printf("  %-5s energy %10.1fJ  delay %9.1fs  U_msl %7.2f  objective %8.3f\n",
					r.Method, r.Energy, r.Delay, r.UMSL, r.Objective)
			}
		})
	}
}

// --- Figure 6: resource sweeps ----------------------------------------------

func benchFig6(b *testing.B, which experiments.Fig6Which) {
	cfg := paperCfg(b)
	const points = 3 // cmd/quhe -exp fig6 runs the paper's 5-point grid
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg, which, points, 0)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig6-"+which.String(), func() {
			fmt.Println()
			experiments.RenderSeries(os.Stdout, res)
		})
	}
}

func BenchmarkFig6aBandwidthSweep(b *testing.B) { benchFig6(b, experiments.Fig6Bandwidth) }
func BenchmarkFig6bPowerSweep(b *testing.B)     { benchFig6(b, experiments.Fig6Power) }
func BenchmarkFig6cClientCPUSweep(b *testing.B) { benchFig6(b, experiments.Fig6ClientCPU) }
func BenchmarkFig6dServerCPUSweep(b *testing.B) { benchFig6(b, experiments.Fig6ServerCPU) }

// --- Per-stage solver benches ------------------------------------------------

func BenchmarkStage1Barrier(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1Barrier}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStage2BranchAndBound(b *testing.B) {
	cfg := paperCfg(b)
	v := stage1Vars(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage2(v, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStage3FractionalProgramming(b *testing.B) {
	cfg := paperCfg(b)
	v := stage1Vars(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage3(v, core.Stage3Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuHEFullProcedure(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveQuHE(core.QuHEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §8) --------------------------------------------------

// BenchmarkAblationStage2Exhaustive measures Stage 2 without branch & bound
// (full 3^N enumeration) for comparison with BenchmarkStage2BranchAndBound.
func BenchmarkAblationStage2Exhaustive(b *testing.B) {
	cfg := paperCfg(b)
	v := stage1Vars(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage2(v, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStage1GradientDescent measures the paper's GD baseline at
// its full iteration budget — the Fig. 5(b) runtime gap versus the barrier.
func BenchmarkAblationStage1GradientDescent(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1GD}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStatedAlphaMSL runs the Fig. 5(d) comparison under the
// paper's stated (uncalibrated) α_msl = 1e-2, demonstrating why the
// calibrated default is needed: OLAA collapses onto AA.
func BenchmarkAblationStatedAlphaMSL(b *testing.B) {
	cfg := paperCfg(b).Clone()
	cfg.AlphaMSL = core.StatedAlphaMSL
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5d(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-alpha", func() {
			fmt.Println("\nAblation (stated α_msl = 1e-2):")
			for _, r := range rows {
				fmt.Printf("  %-5s U_msl %7.2f  objective %8.3f\n", r.Method, r.UMSL, r.Objective)
			}
		})
	}
}

// --- Serving runtime: worker-pool scaling (internal/serve) -----------------

type serveSweepPoint struct {
	Workers      int     `json:"workers"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	P50Ms        float64 `json:"latency_ms_p50"`
	P99Ms        float64 `json:"latency_ms_p99"`
	SpeedupVs1   float64 `json:"speedup_vs_1_worker"`
}

type serveSweepReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// Multicore records whether the runner could exhibit worker scaling
	// at all: on a 1-core runner the sweep is necessarily flat and its
	// speedup column is not evidence against the serving runtime.
	Multicore bool              `json:"multicore"`
	Blocks    int               `json:"blocks_per_run"`
	Sweep     []serveSweepPoint `json:"sweep"`
}

// BenchmarkServeWorkerSweep measures the pooled serving path — session
// snapshot → scheduler → evaluator pool → transciphering — at increasing
// worker counts, the aggregate-throughput claim of the serving runtime.
// Evaluator memory is bounded by the pool, so the sweep also demonstrates
// N workers serving one session's stream without per-session evaluators.
// The sweep is written to BENCH_serve.json so serving-throughput
// trajectories can be compared across PRs. Scaling beyond 1× requires
// GOMAXPROCS > 1 (the report records it).
func BenchmarkServeWorkerSweep(b *testing.B) {
	ctx, err := ckks.NewContext(edge.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	cipher, err := transcipher.New(ctx, edge.KeyLen)
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 3)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	clientEv := ckks.NewEvaluator(ctx, 4)
	key, err := cipher.DeriveKey([]byte("bench-material"))
	if err != nil {
		b.Fatal(err)
	}
	encKey, err := cipher.EncryptKey(clientEv, pk, key)
	if err != nil {
		b.Fatal(err)
	}
	nonce := []byte("bench-serve")
	sess := serve.NewSession("bench", "", pk, rlk, encKey, nonce)
	weights := []float64{0.5}
	bias := []float64{0.1}

	const blocks = 32
	masked := make([][]float64, blocks)
	data := make([]float64, cipher.Slots())
	for i := range data {
		data[i] = 0.25
	}
	for i := range masked {
		m, err := cipher.Mask(key, nonce, uint32(i), data)
		if err != nil {
			b.Fatal(err)
		}
		masked[i] = m
	}

	workerCounts := []int{1, 2, 4, 8}
	report := serveSweepReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Multicore:  runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1,
		Blocks:     blocks,
	}
	for i := 0; i < b.N; i++ {
		report.Sweep = report.Sweep[:0]
		for _, workers := range workerCounts {
			pool := serve.NewEvalPool(ctx, workers, 1, func(int) any { return cipher.NewScratch() })
			sched := serve.NewScheduler(pool, blocks)
			lats := make([]float64, blocks)
			var wg sync.WaitGroup
			start := time.Now()
			for j := 0; j < blocks; j++ {
				j := j
				wg.Add(1)
				submitted := time.Now()
				err := sched.Submit(func(w *serve.Worker) {
					defer wg.Done()
					ek, nn, _ := sess.Keys()
					sc, _ := w.Scratch.(*transcipher.Scratch)
					if _, err := cipher.TranscipherAffineWith(sc, w.Ev, sess.RLK, ek, nn,
						uint32(j), masked[j], weights, bias); err != nil {
						b.Error(err)
						return
					}
					sess.RecordBlock(int64(8 * len(masked[j])))
					lats[j] = float64(time.Since(submitted)) / float64(time.Millisecond)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			wg.Wait()
			elapsed := time.Since(start)
			sched.Close()
			sort.Float64s(lats)
			pt := serveSweepPoint{
				Workers:      workers,
				BlocksPerSec: blocks / elapsed.Seconds(),
				P50Ms:        lats[blocks/2],
				P99Ms:        lats[blocks-1],
			}
			if len(report.Sweep) > 0 {
				pt.SpeedupVs1 = pt.BlocksPerSec / report.Sweep[0].BlocksPerSec
			} else {
				pt.SpeedupVs1 = 1
			}
			report.Sweep = append(report.Sweep, pt)
		}
	}
	last := report.Sweep[len(report.Sweep)-1]
	b.ReportMetric(last.BlocksPerSec, "blocks/s@8w")
	b.ReportMetric(last.SpeedupVs1, "speedup@8w")
	if !report.Multicore && last.SpeedupVs1 < 1.5 {
		// Flat scaling on a 1-core runner is expected, not a regression:
		// log it (don't fail) so readers of the bench output and
		// BENCH_serve.json know the speedup column is meaningless here.
		b.Logf("worker scaling is flat (%.2fx @ %d workers) on a single-core runner "+
			"(GOMAXPROCS=%d, NumCPU=%d); see the multicore flag in BENCH_serve.json",
			last.SpeedupVs1, last.Workers, report.GOMAXPROCS, report.NumCPU)
	}
	printOnce("serve-sweep", func() {
		fmt.Printf("\nServing worker sweep (GOMAXPROCS=%d, %d blocks):\n", report.GOMAXPROCS, blocks)
		for _, pt := range report.Sweep {
			fmt.Printf("  %d workers: %8.1f blocks/s  p50 %6.2fms  p99 %6.2fms  %.2fx\n",
				pt.Workers, pt.BlocksPerSec, pt.P50Ms, pt.P99Ms, pt.SpeedupVs1)
		}
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Printf("serve-sweep: marshal: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_serve.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Printf("serve-sweep: write: %v\n", err)
		}
	})
}

// --- Wire codec: gob vs protocol v3 (internal/edge, internal/he) ------------

type wireE2EReport struct {
	Blocks          int     `json:"blocks"`
	GobBlocksPerSec float64 `json:"gob_blocks_per_sec"`
	V3BlocksPerSec  float64 `json:"v3_blocks_per_sec"`
	V3OverGob       float64 `json:"v3_over_gob"`
}

type wireCodecReport struct {
	GOMAXPROCS       int           `json:"gomaxprocs"`
	NumCPU           int           `json:"numcpu"`
	Multicore        bool          `json:"multicore"`
	CiphertextBytes  int           `json:"ciphertext_bytes"`
	GobEncodeNs      float64       `json:"gob_encode_ns_op"`
	GobDecodeNs      float64       `json:"gob_decode_ns_op"`
	V3EncodeNs       float64       `json:"v3_encode_ns_op"`
	V3DecodeNs       float64       `json:"v3_decode_ns_op"`
	V3EncodeAllocs   float64       `json:"v3_encode_allocs_op"`
	V3DecodeAllocs   float64       `json:"v3_decode_allocs_op"`
	EncodeSpeedup    float64       `json:"encode_speedup_vs_gob"`
	DecodeSpeedup    float64       `json:"decode_speedup_vs_gob"`
	RoundTripSpeedup float64       `json:"roundtrip_speedup_vs_gob"`
	BitIdentical     bool          `json:"v3_bit_identical_to_gob"`
	E2E              wireE2EReport `json:"e2e_edgeload"`
}

func benchCiphertext(b *testing.B) *ckks.Ciphertext {
	b.Helper()
	ctx, err := ckks.NewContext(edge.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 3)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := ckks.NewEvaluator(ctx, 4)
	enc := ckks.NewEncoder(ctx)
	vals := make([]float64, ctx.Params.Slots())
	for i := range vals {
		vals[i] = 0.25 + 0.001*float64(i%7)
	}
	pt, err := enc.EncodeReal(vals, ctx.Params.Scale())
	if err != nil {
		b.Fatal(err)
	}
	return ev.Encrypt(pk, pt)
}

func ciphertextsBitIdentical(a, b *ckks.Ciphertext) bool {
	if a.Level != b.Level || math.Float64bits(a.Scale) != math.Float64bits(b.Scale) ||
		len(a.C0) != len(b.C0) || len(a.C1) != len(b.C1) {
		return false
	}
	for i := range a.C0 {
		if len(a.C0[i]) != len(b.C0[i]) || len(a.C1[i]) != len(b.C1[i]) {
			return false
		}
		for j := range a.C0[i] {
			if a.C0[i][j] != b.C0[i][j] || a.C1[i][j] != b.C1[i][j] {
				return false
			}
		}
	}
	return true
}

// wireE2E measures end-to-end blocks/sec through a live in-process edge
// server for one forced protocol: the full pipeline (mask → upload →
// transcipher → encrypted reply) with batched uploads, so the wire codec
// is the only variable between the two runs.
func wireE2E(b *testing.B, addr string, proto edge.Protocol, seed int64, blocks, rounds, slots int) float64 {
	b.Helper()
	client, err := edge.DialWith(addr, fmt.Sprintf("wire-%d", seed), []byte("wire-bench"), seed,
		edge.DialConfig{Protocol: proto})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	data := make([][]float64, blocks)
	for i := range data {
		data[i] = make([]float64, slots)
		for j := range data[i] {
			data[i][j] = 0.25
		}
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if _, err := client.ComputeBatch(uint32(r*blocks), data); err != nil {
			b.Fatal(err)
		}
	}
	return float64(blocks*rounds) / time.Since(start).Seconds()
}

// BenchmarkWireCodec compares gob (the v1/v2 wire format) against the
// protocol-v3 zero-copy codec on ckks.Ciphertext at the edge runtime's
// default parameters: per-message encode/decode ns/op and allocs/op on a
// persistent stream (steady state, type descriptors amortized — exactly
// how both travel on a connection), bit-identity of the decoded values,
// and end-to-end blocks/sec through a live server under each protocol.
// The report lands in BENCH_wire.json next to BENCH_serve.json.
func BenchmarkWireCodec(b *testing.B) {
	ct := benchCiphertext(b)
	report := wireCodecReport{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Multicore:       runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1,
		CiphertextBytes: len(ct.AppendBinary(nil)),
	}
	const iters = 200

	for i := 0; i < b.N; i++ {
		// gob, persistent stream: one warmup message carries the type
		// descriptors, then iters steady-state messages.
		var gobStream bytes.Buffer
		genc := gob.NewEncoder(&gobStream)
		if err := genc.Encode(ct); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for j := 0; j < iters; j++ {
			if err := genc.Encode(ct); err != nil {
				b.Fatal(err)
			}
		}
		report.GobEncodeNs = float64(time.Since(start).Nanoseconds()) / iters

		gdec := gob.NewDecoder(bytes.NewReader(gobStream.Bytes()))
		viaGob := new(ckks.Ciphertext)
		if err := gdec.Decode(viaGob); err != nil { // warmup: type descriptors
			b.Fatal(err)
		}
		start = time.Now()
		for j := 0; j < iters; j++ {
			if err := gdec.Decode(viaGob); err != nil {
				b.Fatal(err)
			}
		}
		report.GobDecodeNs = float64(time.Since(start).Nanoseconds()) / iters

		// v3: pooled-buffer append, pre-sized receiver decode.
		v3buf := ct.AppendBinary(nil)
		start = time.Now()
		for j := 0; j < iters; j++ {
			v3buf = ct.AppendBinary(v3buf[:0])
		}
		report.V3EncodeNs = float64(time.Since(start).Nanoseconds()) / iters

		viaV3 := new(ckks.Ciphertext)
		start = time.Now()
		for j := 0; j < iters; j++ {
			if _, err := viaV3.DecodeFrom(v3buf); err != nil {
				b.Fatal(err)
			}
		}
		report.V3DecodeNs = float64(time.Since(start).Nanoseconds()) / iters

		report.V3EncodeAllocs = testing.AllocsPerRun(50, func() {
			v3buf = ct.AppendBinary(v3buf[:0])
		})
		report.V3DecodeAllocs = testing.AllocsPerRun(50, func() {
			if _, err := viaV3.DecodeFrom(v3buf); err != nil {
				b.Fatal(err)
			}
		})
		report.BitIdentical = ciphertextsBitIdentical(viaGob, viaV3) && ciphertextsBitIdentical(ct, viaV3)
		report.EncodeSpeedup = report.GobEncodeNs / report.V3EncodeNs
		report.DecodeSpeedup = report.GobDecodeNs / report.V3DecodeNs
		report.RoundTripSpeedup = (report.GobEncodeNs + report.GobDecodeNs) /
			(report.V3EncodeNs + report.V3DecodeNs)
	}

	// End-to-end: one server, a forced-gob and a forced-v3 client.
	srv, err := edge.NewServer("127.0.0.1:0", edge.ServerConfig{
		Model: edge.Model{Weights: []float64{0.5}, Bias: []float64{0.1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const e2eBlocks, e2eRounds, e2eSlots = 32, 2, 16
	report.E2E.Blocks = e2eBlocks * e2eRounds
	report.E2E.GobBlocksPerSec = wireE2E(b, srv.Addr(), edge.ProtoGob, 201, e2eBlocks, e2eRounds, e2eSlots)
	report.E2E.V3BlocksPerSec = wireE2E(b, srv.Addr(), edge.ProtoV3, 202, e2eBlocks, e2eRounds, e2eSlots)
	report.E2E.V3OverGob = report.E2E.V3BlocksPerSec / report.E2E.GobBlocksPerSec

	b.ReportMetric(report.EncodeSpeedup, "enc-speedup")
	b.ReportMetric(report.DecodeSpeedup, "dec-speedup")
	b.ReportMetric(report.V3EncodeAllocs+report.V3DecodeAllocs, "v3-allocs/op")
	b.ReportMetric(report.E2E.V3OverGob, "e2e-v3/gob")
	if !report.BitIdentical {
		b.Fatal("v3 codec round trip is not bit-identical to gob")
	}
	if report.RoundTripSpeedup < 5 {
		b.Logf("WARNING: v3 round-trip speedup %.1fx below the 5x target", report.RoundTripSpeedup)
	}
	printOnce("wire-codec", func() {
		fmt.Printf("\nWire codec, ckks.Ciphertext at edge defaults (%d bytes):\n", report.CiphertextBytes)
		fmt.Printf("  encode: gob %8.0fns  v3 %8.0fns  %6.1fx\n",
			report.GobEncodeNs, report.V3EncodeNs, report.EncodeSpeedup)
		fmt.Printf("  decode: gob %8.0fns  v3 %8.0fns  %6.1fx\n",
			report.GobDecodeNs, report.V3DecodeNs, report.DecodeSpeedup)
		fmt.Printf("  v3 allocs/op: encode %.1f decode %.1f   bit-identical: %v\n",
			report.V3EncodeAllocs, report.V3DecodeAllocs, report.BitIdentical)
		fmt.Printf("  e2e: gob %.1f blocks/s  v3 %.1f blocks/s  %.2fx\n",
			report.E2E.GobBlocksPerSec, report.E2E.V3BlocksPerSec, report.E2E.V3OverGob)
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Printf("wire-codec: marshal: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_wire.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Printf("wire-codec: write: %v\n", err)
		}
	})
}

// --- RNS residue tower: limb × worker sweep (internal/he/ring, ckks) --------

type rnsSweepPoint struct {
	Level      int     `json:"level"`
	Limbs      int     `json:"limbs"`
	Workers    int     `json:"workers"`
	NsPerOp    float64 `json:"ns_per_op"`
	SpeedupVs1 float64 `json:"speedup_vs_1_worker"`
}

type rnsSweepReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// Multicore records whether the runner could exhibit per-limb NTT
	// scaling at all: a 1-core sweep is necessarily flat and its speedup
	// column is not evidence against the residue tower.
	Multicore bool            `json:"multicore"`
	LogN      int             `json:"logn"`
	Sweep     []rnsSweepPoint `json:"sweep"`
}

// BenchmarkRNS sweeps MulRelin+Rescale over chain length (limbs) and ring
// worker-pool size — the residue tower's per-limb parallelism claim. Each
// point is one homomorphic multiply at the given level: per-limb NTTs,
// hybrid key switch over Q·P, exact RNS rescale. The matrix lands in
// BENCH_rns.json so limb-scaling trajectories are comparable across PRs.
// Scaling beyond 1x requires GOMAXPROCS > 1 (the report records it).
func BenchmarkRNS(b *testing.B) {
	params, err := ckks.NewParams(12, 60, 50, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 17)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 18)
	enc := ckks.NewEncoder(ctx)
	vals := make([]float64, ctx.Params.Slots())
	for i := range vals {
		vals[i] = 0.9 - 0.001*float64(i%5)
	}
	pt, err := enc.EncodeReal(vals, ctx.Params.Scale())
	if err != nil {
		b.Fatal(err)
	}

	// A ladder of ciphertexts, one per level ≥ 1, built by squaring down
	// from a fresh encryption; each sweep point re-multiplies its rung.
	cts := make(map[int]*ckks.Ciphertext)
	cur := ev.Encrypt(pk, pt)
	cts[cur.Level] = cur
	for cur.Level > 1 {
		sq, err := ev.MulRelin(cur, cur, rlk)
		if err != nil {
			b.Fatal(err)
		}
		cur, err = ev.Rescale(sq)
		if err != nil {
			b.Fatal(err)
		}
		cts[cur.Level] = cur
	}

	report := rnsSweepReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Multicore:  runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1,
		LogN:       params.LogN,
	}
	prevPar := ring.Parallelism()
	defer ring.SetParallelism(prevPar)
	workerCounts := []int{1, 2, 4, 8}
	const opsPerPoint = 4
	var speedupL4 float64
	for i := 0; i < b.N; i++ {
		report.Sweep = report.Sweep[:0]
		for level := ctx.MaxLevel(); level >= 1; level-- {
			var ns1 float64
			for _, workers := range workerCounts {
				ring.SetParallelism(workers)
				ct := cts[level]
				start := time.Now()
				for op := 0; op < opsPerPoint; op++ {
					sq, err := ev.MulRelin(ct, ct, rlk)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := ev.Rescale(sq); err != nil {
						b.Fatal(err)
					}
				}
				pt := rnsSweepPoint{
					Level:   level,
					Limbs:   level + 1,
					Workers: workers,
					NsPerOp: float64(time.Since(start).Nanoseconds()) / opsPerPoint,
				}
				if workers == 1 {
					ns1 = pt.NsPerOp
				}
				pt.SpeedupVs1 = ns1 / pt.NsPerOp
				report.Sweep = append(report.Sweep, pt)
				if level == 4 && workers == 4 {
					speedupL4 = pt.SpeedupVs1
				}
			}
		}
	}
	ring.SetParallelism(prevPar)
	b.ReportMetric(speedupL4, "speedup-L4@4w")
	if !report.Multicore {
		// A flat sweep on a single-core runner is expected, not a
		// regression: log it so readers of the bench output and
		// BENCH_rns.json know the speedup column is meaningless here.
		b.Logf("per-limb scaling is flat by construction on a single-core runner "+
			"(GOMAXPROCS=%d, NumCPU=%d); see the multicore flag in BENCH_rns.json",
			report.GOMAXPROCS, report.NumCPU)
	} else if speedupL4 < 2.5 {
		b.Logf("WARNING: MulRelin+Rescale at level 4 scaled %.2fx from 1 to 4 workers, "+
			"below the 2.5x target (GOMAXPROCS=%d, NumCPU=%d)",
			speedupL4, report.GOMAXPROCS, report.NumCPU)
	}
	printOnce("rns-sweep", func() {
		fmt.Printf("\nRNS limb × worker sweep (logN=%d, GOMAXPROCS=%d):\n", params.LogN, report.GOMAXPROCS)
		for _, pt := range report.Sweep {
			fmt.Printf("  L=%d (%d limbs) %d workers: %9.0fns/op  %.2fx\n",
				pt.Level, pt.Limbs, pt.Workers, pt.NsPerOp, pt.SpeedupVs1)
		}
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Printf("rns-sweep: marshal: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_rns.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Printf("rns-sweep: write: %v\n", err)
		}
	})
}

// --- Security-profile mix: per-profile latency/utility under mixed λ --------

type profileMixReport struct {
	GOMAXPROCS int  `json:"gomaxprocs"`
	NumCPU     int  `json:"numcpu"`
	Multicore  bool `json:"multicore"`
	experiments.ProfileMixResult
}

// BenchmarkProfileMix serves a mixed-security workload — sessions on
// every registry profile side by side, each on its own per-profile
// evaluator pool and independently keyed context — and writes the
// per-profile latency, utility and cost-coefficient comparison to
// BENCH_profile.json. The coefficient check is the actuation contract:
// the per-op cost the controller plans with (calibrated registry
// coefficients) must track measured per-op latency within 2x.
func BenchmarkProfileMix(b *testing.B) {
	report := profileMixReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Multicore:  runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.ProfileMix(experiments.ProfileMixOptions{})
		if err != nil {
			b.Fatal(err)
		}
		report.ProfileMixResult = res
	}
	for _, p := range report.Profiles {
		if p.Errors > 0 {
			b.Fatalf("profile %s served wrong results (%d errors)", p.Profile, p.Errors)
		}
	}
	last := report.Profiles[len(report.Profiles)-1]
	b.ReportMetric(last.MeanMs, "ms/op@maxλ")
	b.ReportMetric(report.TotalUtility, "mix-utility")
	if !report.CoeffWithin2x {
		b.Logf("WARNING: a planning coefficient fell outside the 2x band of measured latency; see BENCH_profile.json")
	}
	printOnce("profile-mix", func() {
		fmt.Printf("\nSecurity-profile mix (per-profile pools, one server):\n")
		for _, p := range report.Profiles {
			fmt.Printf("  %-12s λ=%6.0fk msl %6.1f  served %2d  mean %7.2fms  coeff %7.2fms (%.2fx measured)  utility %7.2f\n",
				p.Profile, p.Lambda/1024, p.MSL, p.Served, p.MeanMs, p.CoeffMs, p.CoeffOverMeasured, p.Utility)
		}
		fmt.Printf("  coefficients within 2x of measured: %v\n", report.CoeffWithin2x)
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "profile report: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_profile.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "profile report: %v\n", err)
		}
	})
}

func stage1Vars(b *testing.B, cfg *core.Config) core.Variables {
	b.Helper()
	v, err := cfg.DefaultVariables()
	if err != nil {
		b.Fatal(err)
	}
	s1, err := cfg.SolveStage1(core.Stage1Options{})
	if err != nil {
		b.Fatal(err)
	}
	v.Phi, v.W = s1.Phi, s1.W
	return v
}

// BenchmarkAblationStage1ProjGrad measures the projected-gradient ablation
// solver for Stage 1 (DESIGN.md ablation #3) against BenchmarkStage1Barrier.
func BenchmarkAblationStage1ProjGrad(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1ProjGrad}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBarrierVsSimAnnealing measures the simulated-annealing
// baseline at its default budget for the Fig. 5(b) runtime comparison.
func BenchmarkAblationStage1SimAnnealing(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1SA}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Closed-loop control plane: dynamic vs static budgets -------------------

type controlLoopReport struct {
	GOMAXPROCS int  `json:"gomaxprocs"`
	NumCPU     int  `json:"numcpu"`
	Multicore  bool `json:"multicore"`
	experiments.ControlLoopResult
}

// BenchmarkControlLoop runs the closed-loop serving experiment — the same
// finite-key workload under the static per-key budget constant and under
// internal/control's online re-planning — and writes the comparison to
// BENCH_control.json, so the utility gain of dynamic budgets is measured
// across PRs rather than asserted. See experiments.ControlLoop for the
// scenario and the utility score (Eq. 17's security and delay terms).
func BenchmarkControlLoop(b *testing.B) {
	report := controlLoopReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Multicore:  runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.ControlLoop(experiments.ControlLoopOptions{})
		if err != nil {
			b.Fatal(err)
		}
		report.ControlLoopResult = res
	}
	b.ReportMetric(float64(report.Dynamic.Served), "served-dynamic")
	b.ReportMetric(float64(report.Static.Served), "served-static")
	b.ReportMetric(report.UtilityGain, "utility-gain")
	printOnce("control-loop", func() {
		fmt.Printf("\nClosed-loop control (finite key stock):\n")
		for _, sc := range []experiments.ControlScenario{report.Static, report.Dynamic} {
			fmt.Printf("  %-8s served %3d  stranded %3d  denied %3d  rekeys %2d  stock-left %4dB  budget %9dB  utility %8.2f\n",
				sc.Name, sc.Served, sc.Stranded, sc.Denied, sc.Rekeys, sc.KeyBytesLeft, sc.RekeyBudget, sc.Utility)
		}
		fmt.Printf("  utility gain (dynamic − static): %.2f over %d plans\n", report.UtilityGain, report.PlanSeq)
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "control report: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_control.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "control report: %v\n", err)
		}
	})
}

// --- Observability overhead: instrumented vs bare serve hot path ------------

type obsOverheadReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	Blocks     int `json:"blocks_per_side"`
	// P50 of the client-observed per-block latency over the full v3 serve
	// path, with the observability substrate off (DisableObs) and on
	// (default: registry, per-stage histograms, block tracer).
	P50OffMs    float64 `json:"p50_ms_obs_off"`
	P50OnMs     float64 `json:"p50_ms_obs_on"`
	OverheadPct float64 `json:"overhead_pct_p50"`
	// Target documents the acceptance bound: instrumentation must stay
	// within ~2% of the bare path at p50. Logged, not failed — per-block
	// work is milliseconds of transciphering, so run-to-run noise on a
	// shared runner can exceed the bound without the instrumentation
	// being at fault.
	Target string `json:"target"`
}

// BenchmarkObsOverhead measures what full observability costs on the
// serve hot path: the same v3 compute stream against a server with
// DisableObs and against the default instrumented one (per-stage
// histograms, per-profile eval latency, wire counters, block tracer,
// SLO trackers, plus a client-side tracer sampling computes at 1% —
// the deployment posture the ≤2% budget is defined against).
// The report lands in BENCH_obs.json.
func BenchmarkObsOverhead(b *testing.B) {
	const (
		warmup = 4
		blocks = 32
	)
	run := func(disable bool) []float64 {
		srv, err := edge.NewServer("127.0.0.1:0", edge.ServerConfig{
			Model:      edge.Model{Weights: []float64{0.5}, Bias: []float64{0.1}},
			DisableObs: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		var cfg edge.DialConfig
		if !disable {
			cfg.Tracer = obs.NewTracer(0, 0)
			cfg.TraceSample = 0.01
		}
		client, err := edge.DialWith(srv.Addr(), "obs-bench", []byte("bench-material"), 5, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		data := make([]float64, 16)
		for i := range data {
			data[i] = 0.25
		}
		lats := make([]float64, 0, blocks)
		for i := 0; i < warmup+blocks; i++ {
			t0 := time.Now()
			if _, err := client.Compute(uint32(i), data); err != nil {
				b.Fatal(err)
			}
			if i >= warmup {
				lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
			}
		}
		sort.Float64s(lats)
		return lats
	}
	report := obsOverheadReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Blocks:     blocks,
		Target:     "p50 overhead ≤ 2%",
	}
	for i := 0; i < b.N; i++ {
		off := run(true)
		on := run(false)
		report.P50OffMs = off[len(off)/2]
		report.P50OnMs = on[len(on)/2]
		report.OverheadPct = (report.P50OnMs - report.P50OffMs) / report.P50OffMs * 100
	}
	b.ReportMetric(report.P50OffMs, "p50ms-off")
	b.ReportMetric(report.P50OnMs, "p50ms-on")
	b.ReportMetric(report.OverheadPct, "overhead-%")
	if report.OverheadPct > 2 {
		b.Logf("observability overhead %.2f%% at p50 exceeds the 2%% target "+
			"(off %.2fms, on %.2fms) — logged, not failed; rerun on a quiet machine before acting",
			report.OverheadPct, report.P50OffMs, report.P50OnMs)
	}
	printOnce("obs-overhead", func() {
		fmt.Printf("\nObservability overhead (%d blocks/side):\n", blocks)
		fmt.Printf("  obs off: p50 %6.2fms\n  obs on:  p50 %6.2fms  (%+.2f%%)\n",
			report.P50OffMs, report.P50OnMs, report.OverheadPct)
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs-overhead: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_obs.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "obs-overhead: %v\n", err)
		}
	})
}

// --- Fault tolerance: resilience overhead and the cost of a resume ----------

type faultToleranceReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	Blocks     int `json:"blocks_per_side"`
	// P50 of the client-observed per-block latency over the v3 serve path
	// with the fault-tolerance machinery off (plain dial) and on
	// (reconnect armed, resume negotiated, request deadlines) — both runs
	// fault-free, so the delta is the bookkeeping the resilience layer
	// adds to the hot path.
	P50PlainMs     float64 `json:"p50_ms_plain"`
	P50ResilientMs float64 `json:"p50_ms_resilient"`
	OverheadPct    float64 `json:"overhead_pct_p50"`
	// Target documents the acceptance bound: fault-free overhead must stay
	// within ~2% at p50. Logged, not failed — run-to-run noise on a shared
	// runner can exceed the bound without the machinery being at fault.
	Target string `json:"target"`
	// Resume cycle: a killed connection re-attached by the resume
	// handshake must cost zero HE key generations and zero QKD
	// withdrawals; ResumeMs is the client-observed latency of the compute
	// that rode through the kill (reconnect + resume + replay included).
	ResumeKeygens     int64   `json:"resume_keygens"`
	ResumeWithdrawals int64   `json:"resume_withdrawals"`
	ResumeMs          float64 `json:"resume_ms"`
	Reconnects        int64   `json:"reconnects"`
	Replays           int64   `json:"replays"`
}

// BenchmarkFaultTolerance measures what the PR 8 fault-tolerance layer
// costs when nothing fails — the same v3 compute stream with and without
// reconnect/resume armed — and what one kill-and-resume cycle costs in key
// material (must be zero keygens, zero withdrawals) and latency. The
// report lands in BENCH_faults.json.
func BenchmarkFaultTolerance(b *testing.B) {
	const (
		warmup = 4
		blocks = 32
	)
	serverCfg := func() edge.ServerConfig {
		return edge.ServerConfig{
			Model:        edge.Model{Weights: []float64{0.5}, Bias: []float64{0.1}},
			ResumeWindow: 10 * time.Second,
		}
	}
	run := func(dcfg edge.DialConfig) []float64 {
		srv, err := edge.NewServer("127.0.0.1:0", serverCfg())
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client, err := edge.DialWith(srv.Addr(), "fault-bench", []byte("bench-material"), 5, dcfg)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		data := make([]float64, 16)
		for i := range data {
			data[i] = 0.25
		}
		lats := make([]float64, 0, blocks)
		for i := 0; i < warmup+blocks; i++ {
			t0 := time.Now()
			if _, err := client.Compute(uint32(i), data); err != nil {
				b.Fatal(err)
			}
			if i >= warmup {
				lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
			}
		}
		sort.Float64s(lats)
		return lats
	}
	resumeCycle := func() (keygens, withdrawals, reconnects, replays int64, resumeMs float64) {
		srv, err := edge.NewServer("127.0.0.1:0", serverCfg())
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		kc := qkd.NewKeyCenter()
		if err := kc.Provision("fault-bench", 1000); err != nil {
			b.Fatal(err)
		}
		if _, err := kc.RunExchange("fault-bench", 0.97, 8192, 5); err != nil {
			b.Fatal(err)
		}
		inj := faultnet.New(faultnet.Config{Seed: 7}) // zero faults: pure kill switch
		client, err := edge.DialQKDWith(srv.Addr(), "fault-bench", kc, 9, edge.DialConfig{
			Protocol:       edge.ProtoV3,
			Dialer:         inj.Dialer(2 * time.Second),
			Reconnect:      true,
			RequestTimeout: 15 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		data := []float64{0.25}
		for i := 0; i < warmup; i++ {
			if _, err := client.Compute(uint32(i), data); err != nil {
				b.Fatal(err)
			}
		}
		kBefore := client.Stats().Keygens
		wBefore := kc.Counters().Withdrawals
		if inj.CloseAll() == 0 {
			b.Fatal("no live connection to kill")
		}
		t0 := time.Now()
		if _, err := client.Compute(uint32(warmup), data); err != nil {
			b.Fatal(err)
		}
		resumeMs = float64(time.Since(t0)) / float64(time.Millisecond)
		st := client.Stats()
		return st.Keygens - kBefore, kc.Counters().Withdrawals - wBefore,
			st.Reconnects, st.Replays, resumeMs
	}
	report := faultToleranceReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Blocks:     blocks,
		Target:     "fault-free p50 overhead ≤ 2%; resume costs 0 keygens, 0 QKD withdrawals",
	}
	for i := 0; i < b.N; i++ {
		plain := run(edge.DialConfig{Protocol: edge.ProtoV3})
		resilient := run(edge.DialConfig{
			Protocol:       edge.ProtoV3,
			Reconnect:      true,
			RequestTimeout: 30 * time.Second,
		})
		report.P50PlainMs = plain[len(plain)/2]
		report.P50ResilientMs = resilient[len(resilient)/2]
		report.OverheadPct = (report.P50ResilientMs - report.P50PlainMs) / report.P50PlainMs * 100
		report.ResumeKeygens, report.ResumeWithdrawals,
			report.Reconnects, report.Replays, report.ResumeMs = resumeCycle()
	}
	b.ReportMetric(report.P50PlainMs, "p50ms-plain")
	b.ReportMetric(report.P50ResilientMs, "p50ms-resilient")
	b.ReportMetric(report.OverheadPct, "overhead-%")
	b.ReportMetric(report.ResumeMs, "resume-ms")
	if report.OverheadPct > 2 {
		b.Logf("fault-tolerance overhead %.2f%% at p50 exceeds the 2%% target "+
			"(plain %.2fms, resilient %.2fms) — logged, not failed; rerun on a quiet machine before acting",
			report.OverheadPct, report.P50PlainMs, report.P50ResilientMs)
	}
	if report.ResumeKeygens != 0 || report.ResumeWithdrawals != 0 {
		b.Fatalf("resume cost key material: %d keygens, %d QKD withdrawals (want 0, 0)",
			report.ResumeKeygens, report.ResumeWithdrawals)
	}
	printOnce("fault-tolerance", func() {
		fmt.Printf("\nFault tolerance (%d blocks/side):\n", blocks)
		fmt.Printf("  plain:     p50 %6.2fms\n  resilient: p50 %6.2fms  (%+.2f%%)\n",
			report.P50PlainMs, report.P50ResilientMs, report.OverheadPct)
		fmt.Printf("  resume:    %6.2fms, %d keygens, %d QKD withdrawals, %d reconnects, %d replays\n",
			report.ResumeMs, report.ResumeKeygens, report.ResumeWithdrawals, report.Reconnects, report.Replays)
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault-tolerance: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_faults.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fault-tolerance: %v\n", err)
		}
	})
}

// --- Rotation kernel: hoisted BSGS vs naive diagonal matvec ---------------

type rotationsPoint struct {
	N                int     `json:"n"`
	HoistedRotations int     `json:"hoisted_rotations"`
	NaiveRotations   int     `json:"naive_rotations"`
	HoistedNsPerOp   float64 `json:"hoisted_ns_per_op"`
	NaiveNsPerOp     float64 `json:"naive_ns_per_op"`
	Speedup          float64 `json:"speedup"`
}

type rotationsReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"numcpu"`
	LogN       int              `json:"logn"`
	Levels     int              `json:"levels"`
	Sweep      []rotationsPoint `json:"sweep"`
	// SpeedupN64 is the pinned acceptance number: hoisted-BSGS over
	// naive rotate-per-diagonal at n=64, target ≥ 3x.
	SpeedupN64 float64 `json:"speedup_n64"`
}

// BenchmarkRotations pins the tentpole's performance claim: the hoisted
// BSGS packed matrix–vector kernel against the naive rotate-per-diagonal
// evaluation of the same pre-encoded plan. Both paths share diagonal
// encoding cost, so the gap isolates rotation work — O(n) full
// key-switches naive vs O(√n) with a shared hoisted decomposition. The
// sweep lands in BENCH_rotations.json; the n=64 speedup is the gated
// acceptance number (single-threaded arithmetic, so the gate holds on
// one-core runners too).
func BenchmarkRotations(b *testing.B) {
	params, err := ckks.NewParams(12, 60, 50, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 41)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := ckks.NewEvaluator(ctx, 42)
	enc := ckks.NewEncoder(ctx)

	dims := []int{16, 64}
	// One key set covers every sweep point: the BSGS sets plus the naive
	// path's full 1..n−1 diagonal rotations.
	rotSet := map[int]bool{}
	for _, n := range dims {
		for _, r := range ckks.BSGSRotations(n) {
			rotSet[r] = true
		}
		for d := 1; d < n; d++ {
			rotSet[d] = true
		}
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	gks := kg.GenGaloisKeys(sk, rots)

	level := ctx.MaxLevel()
	report := rotationsReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		LogN:       params.LogN,
		Levels:     level + 1,
	}
	const opsPerPoint = 3
	for i := 0; i < b.N; i++ {
		report.Sweep = report.Sweep[:0]
		for _, n := range dims {
			m := make([][]float64, n)
			bias := make([]float64, n)
			for r := range m {
				m[r] = make([]float64, n)
				for c := range m[r] {
					if r == c {
						m[r][c] = 0.5
					} else {
						m[r][c] = 0.25 / float64(n)
					}
				}
				bias[r] = 0.01 * float64(r%4)
			}
			plan, err := ev.NewMatVecPlan(m, bias, level, 0)
			if err != nil {
				b.Fatal(err)
			}
			naive, err := ev.NewMatVecNaivePlan(m, bias, level, 0)
			if err != nil {
				b.Fatal(err)
			}
			vals := make([]float64, ctx.Params.Slots())
			for j := range vals {
				vals[j] = 0.25 + 0.001*float64(j%n)
			}
			pt, err := enc.EncodeReal(vals, ctx.Params.Scale())
			if err != nil {
				b.Fatal(err)
			}
			ct := ev.Encrypt(pk, pt)
			out := ctx.NewCiphertext(level)

			start := time.Now()
			for op := 0; op < opsPerPoint; op++ {
				if err := ev.MatVecInto(plan, ct, gks, out); err != nil {
					b.Fatal(err)
				}
			}
			hoistedNs := float64(time.Since(start).Nanoseconds()) / opsPerPoint

			start = time.Now()
			for op := 0; op < opsPerPoint; op++ {
				if err := ev.MatVecNaiveInto(naive, ct, gks, out); err != nil {
					b.Fatal(err)
				}
			}
			naiveNs := float64(time.Since(start).Nanoseconds()) / opsPerPoint

			pt2 := rotationsPoint{
				N:                n,
				HoistedRotations: len(plan.Rotations()),
				NaiveRotations:   n - 1,
				HoistedNsPerOp:   hoistedNs,
				NaiveNsPerOp:     naiveNs,
				Speedup:          naiveNs / hoistedNs,
			}
			report.Sweep = append(report.Sweep, pt2)
			if n == 64 {
				report.SpeedupN64 = pt2.Speedup
			}
		}
	}
	b.ReportMetric(report.SpeedupN64, "speedup-n64")
	if report.SpeedupN64 < 3 {
		b.Logf("WARNING: hoisted BSGS matvec at n=64 is %.2fx over naive, below the 3x target",
			report.SpeedupN64)
	}
	printOnce("rotations", func() {
		fmt.Printf("\nHoisted BSGS vs naive matvec (logN=%d, L=%d):\n", params.LogN, level)
		for _, pt := range report.Sweep {
			fmt.Printf("  n=%3d: hoisted %9.0fns (%2d rots)  naive %9.0fns (%2d rots)  %.2fx\n",
				pt.N, pt.HoistedNsPerOp, pt.HoistedRotations, pt.NaiveNsPerOp, pt.NaiveRotations, pt.Speedup)
		}
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rotations: %v\n", err)
			return
		}
		if err := os.WriteFile("BENCH_rotations.json", append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rotations: %v\n", err)
		}
	})
}
