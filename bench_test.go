// Benchmarks regenerating every table and figure of the QuHE paper's
// evaluation section, plus the ablation benches called out in DESIGN.md.
// Each figure/table bench prints its rows/series once (via printOnce) so a
// plain `go test -bench=.` run reproduces the paper's outputs; the heavier
// experiments use reduced sizes here — cmd/quhe runs them at paper scale.
package quhe_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"quhe/internal/core"
	"quhe/internal/experiments"
)

var (
	benchCfgOnce sync.Once
	benchCfg     *core.Config

	printGuards sync.Map
)

func paperCfg(b *testing.B) *core.Config {
	b.Helper()
	benchCfgOnce.Do(func() {
		benchCfg = core.PaperConfig(1)
	})
	return benchCfg
}

// printOnce runs the printer exactly once per named output across all bench
// iterations, so tables appear in bench output without repetition.
func printOnce(name string, print func()) {
	once, _ := printGuards.LoadOrStore(name, &sync.Once{})
	once.(*sync.Once).Do(print)
}

// --- Figure 3: optimality across random initializations -------------------

func BenchmarkFig3Optimality(b *testing.B) {
	cfg := paperCfg(b)
	const samples = 10 // cmd/quhe -exp fig3 runs the paper's 100
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(cfg, samples, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary.Mean, "mean-objective")
		b.ReportMetric(100*res.GoodOrBetter, "good-or-better-%")
		printOnce("fig3", func() {
			fmt.Printf("\nFig. 3 (%d samples): max %.2f min %.2f mean %.2f  very-good %.0f%%  good+ %.0f%%\n",
				samples, res.Summary.Max, res.Summary.Min, res.Summary.Mean,
				100*res.VeryGood, 100*res.GoodOrBetter)
			experiments.RenderHistogram(os.Stdout, res.Edges, res.Buckets)
		})
	}
}

// --- Figure 4: per-stage convergence ---------------------------------------

func BenchmarkFig4Convergence(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stage1Iters), "s1-iters")
		b.ReportMetric(float64(res.Stage2Iters), "s2-nodes")
		b.ReportMetric(float64(res.Stage3Iters), "s3-newton")
		printOnce("fig4", func() {
			fmt.Println()
			experiments.RenderTrace(os.Stdout, "Fig. 4(a) Stage-1 objective", res.Stage1, 12)
			experiments.RenderTrace(os.Stdout, "Fig. 4(b) Stage-2 incumbent", res.Stage2, 12)
			experiments.RenderTrace(os.Stdout, "Fig. 4(c) Stage-3 POBJ", res.Stage3POBJ, 12)
			experiments.RenderTrace(os.Stdout, "Fig. 4(d) Stage-3 duality gap", res.Stage3Gap, 12)
		})
	}
}

// --- Figure 5(a): stage calls and runtime ----------------------------------

func BenchmarkFig5aStageAccounting(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Total.Seconds(), "total-s")
		printOnce("fig5a", func() {
			fmt.Printf("\nFig. 5(a): calls S1=%d S2=%d S3=%d  runtime %.2fs  objective %.3f\n",
				res.Calls[0], res.Calls[1], res.Calls[2], res.Total.Seconds(), res.Objective)
		})
	}
}

// --- Figures 5(b)/(c) and Tables V/VI: Stage-1 methods ---------------------

func BenchmarkFig5bcStage1Methods(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		comps, err := experiments.Stage1Methods(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig5bc", func() {
			fmt.Println("\nFig. 5(b)/(c): Stage-1 methods")
			for _, c := range comps {
				fmt.Printf("  %-5s runtime %8.3fs  objective %.4f\n",
					c.Method, c.Runtime.Seconds(), c.Objective)
			}
		})
	}
}

func BenchmarkTableVPhi(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table5(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table5", func() {
			fmt.Println()
			t.Render(os.Stdout)
		})
	}
}

func BenchmarkTableVIW(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table6(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("table6", func() {
			fmt.Println()
			t.Render(os.Stdout)
		})
	}
}

// --- Figure 5(d): whole-procedure comparison --------------------------------

func BenchmarkFig5dMethodComparison(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5d(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig5d", func() {
			fmt.Println("\nFig. 5(d): method comparison")
			for _, r := range rows {
				fmt.Printf("  %-5s energy %10.1fJ  delay %9.1fs  U_msl %7.2f  objective %8.3f\n",
					r.Method, r.Energy, r.Delay, r.UMSL, r.Objective)
			}
		})
	}
}

// --- Figure 6: resource sweeps ----------------------------------------------

func benchFig6(b *testing.B, which experiments.Fig6Which) {
	cfg := paperCfg(b)
	const points = 3 // cmd/quhe -exp fig6 runs the paper's 5-point grid
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg, which, points, 0)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig6-"+which.String(), func() {
			fmt.Println()
			experiments.RenderSeries(os.Stdout, res)
		})
	}
}

func BenchmarkFig6aBandwidthSweep(b *testing.B) { benchFig6(b, experiments.Fig6Bandwidth) }
func BenchmarkFig6bPowerSweep(b *testing.B)     { benchFig6(b, experiments.Fig6Power) }
func BenchmarkFig6cClientCPUSweep(b *testing.B) { benchFig6(b, experiments.Fig6ClientCPU) }
func BenchmarkFig6dServerCPUSweep(b *testing.B) { benchFig6(b, experiments.Fig6ServerCPU) }

// --- Per-stage solver benches ------------------------------------------------

func BenchmarkStage1Barrier(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1Barrier}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStage2BranchAndBound(b *testing.B) {
	cfg := paperCfg(b)
	v := stage1Vars(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage2(v, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStage3FractionalProgramming(b *testing.B) {
	cfg := paperCfg(b)
	v := stage1Vars(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage3(v, core.Stage3Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuHEFullProcedure(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveQuHE(core.QuHEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §8) --------------------------------------------------

// BenchmarkAblationStage2Exhaustive measures Stage 2 without branch & bound
// (full 3^N enumeration) for comparison with BenchmarkStage2BranchAndBound.
func BenchmarkAblationStage2Exhaustive(b *testing.B) {
	cfg := paperCfg(b)
	v := stage1Vars(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage2(v, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStage1GradientDescent measures the paper's GD baseline at
// its full iteration budget — the Fig. 5(b) runtime gap versus the barrier.
func BenchmarkAblationStage1GradientDescent(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1GD}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStatedAlphaMSL runs the Fig. 5(d) comparison under the
// paper's stated (uncalibrated) α_msl = 1e-2, demonstrating why the
// calibrated default is needed: OLAA collapses onto AA.
func BenchmarkAblationStatedAlphaMSL(b *testing.B) {
	cfg := paperCfg(b).Clone()
	cfg.AlphaMSL = core.StatedAlphaMSL
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5d(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-alpha", func() {
			fmt.Println("\nAblation (stated α_msl = 1e-2):")
			for _, r := range rows {
				fmt.Printf("  %-5s U_msl %7.2f  objective %8.3f\n", r.Method, r.UMSL, r.Objective)
			}
		})
	}
}

func stage1Vars(b *testing.B, cfg *core.Config) core.Variables {
	b.Helper()
	v, err := cfg.DefaultVariables()
	if err != nil {
		b.Fatal(err)
	}
	s1, err := cfg.SolveStage1(core.Stage1Options{})
	if err != nil {
		b.Fatal(err)
	}
	v.Phi, v.W = s1.Phi, s1.W
	return v
}

// BenchmarkAblationStage1ProjGrad measures the projected-gradient ablation
// solver for Stage 1 (DESIGN.md ablation #3) against BenchmarkStage1Barrier.
func BenchmarkAblationStage1ProjGrad(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1ProjGrad}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBarrierVsSimAnnealing measures the simulated-annealing
// baseline at its default budget for the Fig. 5(b) runtime comparison.
func BenchmarkAblationStage1SimAnnealing(b *testing.B) {
	cfg := paperCfg(b)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.SolveStage1(core.Stage1Options{Method: core.Stage1SA}); err != nil {
			b.Fatal(err)
		}
	}
}
