// Package serve is the multi-tenant serving runtime of the QuHE edge
// server: the layer between the wire protocol (internal/edge) and the CKKS
// core (internal/he/ckks, internal/transcipher) that turns fast single-op
// primitives into fast aggregate throughput under many concurrent
// QKD-secured clients (the system model of Fig. 1 at serving scale).
//
// The runtime decomposes into three pieces a request flows through:
//
//	connection → Store (sharded sessions) → Scheduler (bounded queue)
//	           → PoolSet/EvalPool (per-profile evaluators) → transcipher/ckks core
//
// Store is a hash-sharded session table with per-shard locks, LRU
// eviction under a configurable session cap, and per-session usage
// counters. Registering N sessions costs key material only — not
// evaluators — so memory grows with sessions, compute state with workers.
// Each Session carries the security profile it registered on, and the
// live session cap is resizable (SetMaxSessions) so a control plane can
// actuate its admission capacity instead of only advising it.
//
// EvalPool owns a fixed number of Workers, each pairing a *ckks.Evaluator
// (whose scratch buffers make it single-goroutine) with optional
// caller-attached per-worker scratch (the edge server attaches
// *transcipher.Scratch). Workers are built lazily on first checkout.
// PoolSet keys one EvalPool per security profile, built on demand through
// a factory, so compute parallelism — and evaluator memory — is bounded
// by pool size × live profiles, never by the session count, and profiles
// without traffic cost nothing.
//
// Scheduler fans jobs out across the pools through one bounded queue:
// Submit targets the default pool, SubmitTo any profile's pool. When the
// queue is at its live depth bound, Submit fails fast with ErrOverloaded
// instead of buffering without limit: explicit backpressure the protocol
// layer maps onto typed replies so clients can shed or retry. The live
// bound is resizable within the built capacity (Resize) — the control
// plane applies its plan's queue high-water to it every replan.
//
// Failures are identified by Code values that travel on the wire next to
// a human-readable detail string; each code maps to a sentinel error
// (ErrUnknownSession, ErrOverloaded, ...) so both server internals and
// remote clients can branch with errors.Is. CodeOverloaded is the
// queue's own fail-fast signal; CodeAdmissionDenied is its policy
// sibling, raised by the control plane (internal/control) when a plan —
// not the queue — refuses the work.
//
// The Scheduler and EvalPool also expose cheap gauges (QueueDepth, Sheds,
// InUse) that the control plane's telemetry snapshots to drive those
// plans.
//
// Sessions tie the serving plane to the key plane: each Session tracks a
// transciphering key epoch and the bytes processed under the current key,
// supporting QKD-backed rekeying (fresh qkd.KeyCenter withdrawals) after a
// configurable byte budget — see the Rekey flow in internal/edge.
package serve
