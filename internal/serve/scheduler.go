package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of homomorphic work. The scheduler hands it an
// exclusively held worker; the job owns reply delivery (it typically
// captures the connection writer).
type Job func(*Worker)

// Scheduler fans jobs out across evaluator pools through bounded
// per-pool queues. Each distinct pool submitted to — by default the pool
// the scheduler was built over, or a per-profile pool passed to SubmitTo —
// gets its own queue class with its own drain goroutines (one per pool
// worker), so a class blocked on its pool's workers never wedges another
// class's dispatch: a flood of heavy-profile blocks cannot park every
// drain goroutine behind the heavy pool and starve light-profile
// latency.
//
// Queue space is divided into weighted shares: class c may hold at most
// limit·w_c/Σw queued jobs (minimum one), where the weights default to 1
// per registered class and are tunable with SetShare. With a single
// class the share is the whole limit — the pre-share behavior exactly —
// and when a second profile's traffic (or an explicit SetShare
// registration) appears, each class keeps a guaranteed reservation of
// the queue that the other cannot flood away. A submission beyond its
// class share fails fast with ErrOverloaded — the explicit backpressure
// signal the protocol layer forwards to clients instead of buffering
// requests without limit.
//
// The live depth bound is resizable within the capacity the scheduler
// was built with (Resize): the control plane applies its plan's queue
// high-water to the live boundary instead of only recording it, so a
// shrinking plan turns into real CodeOverloaded backpressure, not just
// advisory admission sheds. Shares scale with the live bound.
type Scheduler struct {
	pool     *EvalPool
	maxDepth int

	limit atomic.Int64 // live depth bound, ≤ maxDepth
	depth atomic.Int64 // queued across all classes (not yet picked up)
	sheds atomic.Int64

	waitObs atomic.Pointer[func(time.Duration)]

	mu          sync.Mutex
	classes     map[*EvalPool]*classQueue
	totalWeight int
	closed      bool
	wg          sync.WaitGroup
}

type poolJob struct {
	job Job
	at  time.Time
}

// classQueue is one pool's slice of the scheduler: a bounded queue plus
// its share weight. Its channel is built at the scheduler's full
// capacity so share boundaries can move (Resize, new classes) without
// reallocating; admission control happens against depth, never against
// channel occupancy, so the send in SubmitTo never blocks.
type classQueue struct {
	pool   *EvalPool
	weight int
	depth  atomic.Int64
	ch     chan poolJob
}

// NewScheduler starts one drain goroutine per pool worker over a queue of
// the given depth (≤ 0 selects 4× the pool size). The built depth is the
// ceiling Resize can never exceed.
func NewScheduler(pool *EvalPool, queueDepth int) *Scheduler {
	if queueDepth <= 0 {
		queueDepth = 4 * pool.Size()
	}
	s := &Scheduler{
		pool:     pool,
		maxDepth: queueDepth,
		classes:  make(map[*EvalPool]*classQueue),
	}
	s.limit.Store(int64(queueDepth))
	s.mu.Lock()
	s.classLocked(pool)
	s.mu.Unlock()
	return s
}

// classLocked returns the pool's queue class, creating it — and starting
// its drain goroutines, one per pool worker — on first use. Callers hold
// s.mu.
func (s *Scheduler) classLocked(pool *EvalPool) *classQueue {
	if c := s.classes[pool]; c != nil {
		return c
	}
	c := &classQueue{pool: pool, weight: 1, ch: make(chan poolJob, s.maxDepth)}
	s.classes[pool] = c
	s.totalWeight += c.weight
	for i := 0; i < pool.Size(); i++ {
		s.wg.Add(1)
		go s.drain(c)
	}
	return c
}

// shareLocked computes the class's queue share under the live limit:
// limit·w_c/Σw, at least one slot. Callers hold s.mu.
func (s *Scheduler) shareLocked(c *classQueue, limit int) int {
	share := limit
	if s.totalWeight > c.weight {
		share = limit * c.weight / s.totalWeight
		if share < 1 {
			share = 1
		}
	}
	return share
}

func (s *Scheduler) drain(c *classQueue) {
	defer s.wg.Done()
	for pj := range c.ch {
		c.depth.Add(-1)
		s.depth.Add(-1)
		if obs := s.waitObs.Load(); obs != nil {
			(*obs)(time.Since(pj.at))
		}
		c.pool.Run(pj.job)
	}
}

// Submit enqueues a job for the scheduler's default pool. It returns
// ErrOverloaded when the pool's queue share is full (or the scheduler is
// closed); the job then never runs.
func (s *Scheduler) Submit(job Job) error { return s.SubmitTo(nil, job) }

// SubmitTo enqueues a job to run on a worker of the given pool (nil
// selects the default pool) without blocking. It returns ErrOverloaded
// when the pool's weighted queue share is full or the scheduler is
// closed.
func (s *Scheduler) SubmitTo(pool *EvalPool, job Job) error {
	if pool == nil {
		pool = s.pool
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.sheds.Add(1)
		return ErrOverloaded
	}
	c := s.classLocked(pool)
	if int(c.depth.Load()) >= s.shareLocked(c, int(s.limit.Load())) {
		s.mu.Unlock()
		s.sheds.Add(1)
		return ErrOverloaded
	}
	c.depth.Add(1)
	s.depth.Add(1)
	// Send under the lock: the channel holds maxDepth ≥ share slots so
	// this never blocks, and Close (which also takes the lock) can never
	// close the channel under the send.
	c.ch <- poolJob{job: job, at: time.Now()}
	s.mu.Unlock()
	return nil
}

// SetShare sets the weight of a pool's queue class (nil selects the
// default pool; weights below 1 clamp to 1). Registering a class —
// implicitly here or by its first submission — reserves its share of the
// queue from every other class, so a server that wants a light profile
// protected before its first block arrives can register it up front.
func (s *Scheduler) SetShare(pool *EvalPool, weight int) {
	if pool == nil {
		pool = s.pool
	}
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	c := s.classLocked(pool)
	s.totalWeight += weight - c.weight
	c.weight = weight
}

// Share reports the pool's current queue share in slots (nil selects the
// default pool) — the admission bound SubmitTo enforces for it.
func (s *Scheduler) Share(pool *EvalPool) int {
	if pool == nil {
		pool = s.pool
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.classes[pool]
	if c == nil {
		return 0
	}
	return s.shareLocked(c, int(s.limit.Load()))
}

// OnQueueWait installs an observer called with each job's queue wait —
// the time between a successful submit and a drain goroutine picking it
// up. The scheduler stays free of any metrics dependency; the serving
// layer points this at its queue-wait histogram. A nil fn removes the
// observer. Safe to call concurrently with Submit.
func (s *Scheduler) OnQueueWait(fn func(time.Duration)) {
	if fn == nil {
		s.waitObs.Store(nil)
		return
	}
	s.waitObs.Store(&fn)
}

// QueueDepth reports the jobs currently waiting (not yet picked up)
// across all classes.
func (s *Scheduler) QueueDepth() int { return int(s.depth.Load()) }

// Capacity reports the live queue depth bound (Resize moves it).
func (s *Scheduler) Capacity() int { return int(s.limit.Load()) }

// MaxCapacity reports the depth the scheduler was built with — the
// ceiling Resize clamps to.
func (s *Scheduler) MaxCapacity() int { return s.maxDepth }

// Resize moves the live queue depth bound, clamped to [1, MaxCapacity].
// Class shares scale with it. Shrinking never drops queued jobs: entries
// beyond the new bound drain normally while new submissions shed until
// occupancy falls below their class share. Safe to call concurrently
// with Submit.
func (s *Scheduler) Resize(depth int) {
	if depth < 1 {
		depth = 1
	}
	if depth > s.maxDepth {
		depth = s.maxDepth
	}
	s.limit.Store(int64(depth))
}

// Sheds counts submissions rejected with ErrOverloaded since construction —
// a telemetry input for the control plane's admission decisions.
func (s *Scheduler) Sheds() int64 { return s.sheds.Load() }

// Close stops intake, runs the jobs already queued to completion and
// waits for the drain goroutines to exit. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, c := range s.classes {
		close(c.ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
