package serve

import (
	"sync"
	"sync/atomic"
)

// Job is one unit of homomorphic work. The scheduler hands it an
// exclusively held worker; the job owns reply delivery (it typically
// captures the connection writer).
type Job func(*Worker)

// Scheduler fans jobs out across the evaluator pool through a bounded
// queue: one goroutine per pool worker drains the queue, checking an
// evaluator out per job so the pool is shared fairly with synchronous
// callers. When the queue is full, Submit fails fast with ErrOverloaded —
// the explicit backpressure signal the protocol layer forwards to clients
// instead of buffering requests without limit.
type Scheduler struct {
	pool  *EvalPool
	queue chan Job
	depth atomic.Int64
	sheds atomic.Int64

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// NewScheduler starts one drain goroutine per pool worker over a queue of
// the given depth (≤ 0 selects 4× the pool size).
func NewScheduler(pool *EvalPool, queueDepth int) *Scheduler {
	if queueDepth <= 0 {
		queueDepth = 4 * pool.Size()
	}
	s := &Scheduler{pool: pool, queue: make(chan Job, queueDepth)}
	for i := 0; i < pool.Size(); i++ {
		s.wg.Add(1)
		go s.drain()
	}
	return s
}

func (s *Scheduler) drain() {
	defer s.wg.Done()
	for job := range s.queue {
		s.depth.Add(-1)
		w := s.pool.Get()
		job(w)
		s.pool.Put(w)
	}
}

// Submit enqueues a job without blocking. It returns ErrOverloaded when
// the queue is full (or the scheduler is closed); the job then never runs.
func (s *Scheduler) Submit(job Job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.sheds.Add(1)
		return ErrOverloaded
	}
	select {
	case s.queue <- job:
		s.depth.Add(1)
		return nil
	default:
		s.sheds.Add(1)
		return ErrOverloaded
	}
}

// QueueDepth reports the jobs currently waiting (not yet picked up).
func (s *Scheduler) QueueDepth() int { return int(s.depth.Load()) }

// Capacity reports the queue depth the scheduler was built with.
func (s *Scheduler) Capacity() int { return cap(s.queue) }

// Sheds counts submissions rejected with ErrOverloaded since construction —
// a telemetry input for the control plane's admission decisions.
func (s *Scheduler) Sheds() int64 { return s.sheds.Load() }

// Close stops intake, runs the jobs already queued to completion and
// waits for the drain goroutines to exit. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}
