package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of homomorphic work. The scheduler hands it an
// exclusively held worker; the job owns reply delivery (it typically
// captures the connection writer).
type Job func(*Worker)

// Scheduler fans jobs out across evaluator pools through a bounded
// queue: one drain goroutine per default-pool worker picks jobs off the
// queue and checks a worker out of the job's pool — by default the pool
// the scheduler was built over, or a per-profile pool passed to SubmitTo —
// so pools are shared fairly with synchronous callers. When the queue is
// full, Submit fails fast with ErrOverloaded — the explicit backpressure
// signal the protocol layer forwards to clients instead of buffering
// requests without limit.
//
// The queue's live depth is resizable within the capacity it was built
// with (Resize): the control plane applies its plan's queue high-water to
// the live boundary instead of only recording it, so a shrinking plan
// turns into real CodeOverloaded backpressure, not just advisory
// admission sheds.
type Scheduler struct {
	pool  *EvalPool
	queue chan poolJob
	limit atomic.Int64 // live depth bound, ≤ cap(queue)
	depth atomic.Int64
	sheds atomic.Int64

	waitObs atomic.Pointer[func(time.Duration)]

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

type poolJob struct {
	pool *EvalPool
	job  Job
	at   time.Time
}

// NewScheduler starts one drain goroutine per pool worker over a queue of
// the given depth (≤ 0 selects 4× the pool size). The built depth is the
// ceiling Resize can never exceed.
func NewScheduler(pool *EvalPool, queueDepth int) *Scheduler {
	if queueDepth <= 0 {
		queueDepth = 4 * pool.Size()
	}
	s := &Scheduler{pool: pool, queue: make(chan poolJob, queueDepth)}
	s.limit.Store(int64(queueDepth))
	for i := 0; i < pool.Size(); i++ {
		s.wg.Add(1)
		go s.drain()
	}
	return s
}

func (s *Scheduler) drain() {
	defer s.wg.Done()
	for pj := range s.queue {
		s.depth.Add(-1)
		if obs := s.waitObs.Load(); obs != nil {
			(*obs)(time.Since(pj.at))
		}
		pj.pool.Run(pj.job)
	}
}

// Submit enqueues a job for the scheduler's default pool. It returns
// ErrOverloaded when the queue is at its live depth bound (or the
// scheduler is closed); the job then never runs.
func (s *Scheduler) Submit(job Job) error { return s.SubmitTo(nil, job) }

// SubmitTo enqueues a job to run on a worker of the given pool (nil
// selects the default pool) without blocking. It returns ErrOverloaded
// when the queue is at its live depth bound or the scheduler is closed.
func (s *Scheduler) SubmitTo(pool *EvalPool, job Job) error {
	if pool == nil {
		pool = s.pool
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.sheds.Add(1)
		return ErrOverloaded
	}
	// Reserve a depth slot under the live limit before touching the
	// channel: at most limit ≤ cap(queue) reservations exist at once, so
	// the send below never blocks.
	for {
		d := s.depth.Load()
		if d >= s.limit.Load() {
			s.sheds.Add(1)
			return ErrOverloaded
		}
		if s.depth.CompareAndSwap(d, d+1) {
			break
		}
	}
	s.queue <- poolJob{pool: pool, job: job, at: time.Now()}
	return nil
}

// OnQueueWait installs an observer called with each job's queue wait —
// the time between a successful submit and a drain goroutine picking it
// up. The scheduler stays free of any metrics dependency; the serving
// layer points this at its queue-wait histogram. A nil fn removes the
// observer. Safe to call concurrently with Submit.
func (s *Scheduler) OnQueueWait(fn func(time.Duration)) {
	if fn == nil {
		s.waitObs.Store(nil)
		return
	}
	s.waitObs.Store(&fn)
}

// QueueDepth reports the jobs currently waiting (not yet picked up).
func (s *Scheduler) QueueDepth() int { return int(s.depth.Load()) }

// Capacity reports the live queue depth bound (Resize moves it).
func (s *Scheduler) Capacity() int { return int(s.limit.Load()) }

// MaxCapacity reports the depth the scheduler was built with — the
// ceiling Resize clamps to.
func (s *Scheduler) MaxCapacity() int { return cap(s.queue) }

// Resize moves the live queue depth bound, clamped to [1, MaxCapacity].
// Shrinking never drops queued jobs: entries beyond the new bound drain
// normally while new submissions shed until occupancy falls below it.
// Safe to call concurrently with Submit.
func (s *Scheduler) Resize(depth int) {
	if depth < 1 {
		depth = 1
	}
	if max := cap(s.queue); depth > max {
		depth = max
	}
	s.limit.Store(int64(depth))
}

// Sheds counts submissions rejected with ErrOverloaded since construction —
// a telemetry input for the control plane's admission decisions.
func (s *Scheduler) Sheds() int64 { return s.sheds.Load() }

// Close stops intake, runs the jobs already queued to completion and
// waits for the drain goroutines to exit. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}
