package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"quhe/internal/he/ckks"
)

func testContext(t testing.TB) *ckks.Context {
	t.Helper()
	p, err := ckks.NewParams(8, 25, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestCodeRoundTrip(t *testing.T) {
	codes := []Code{CodeBadRequest, CodeParamMismatch, CodeUnknownSession,
		CodeDuplicateSession, CodeOversized, CodeOverloaded, CodeRekeyRequired,
		CodeInternal, CodeConnClosed}
	for _, c := range codes {
		if got := CodeOf(c.Err()); got != c {
			t.Errorf("CodeOf(%v.Err()) = %v", c, got)
		}
		if c.String() == "unknown" {
			t.Errorf("code %d has no name", c)
		}
	}
	if CodeOf(nil) != CodeOK {
		t.Error("CodeOf(nil) != CodeOK")
	}
	if CodeOK.Err() != nil {
		t.Error("CodeOK.Err() != nil")
	}
	// Wrapped sentinels still map, and foreign errors degrade to internal.
	if CodeOf(fmt.Errorf("ctx: %w", ErrOverloaded)) != CodeOverloaded {
		t.Error("wrapped sentinel lost its code")
	}
	if CodeOf(errors.New("other")) != CodeInternal {
		t.Error("foreign error should map to CodeInternal")
	}
	if Code(999).Err() != ErrInternal {
		t.Error("unknown code should map to ErrInternal")
	}
}

func TestStoreRegisterAndDuplicate(t *testing.T) {
	st := NewStore(0)
	if err := st.Register(NewSession("a", "", nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	err := st.Register(NewSession("a", "", nil, nil, nil, nil))
	if !errors.Is(err, ErrDuplicateSession) {
		t.Fatalf("duplicate register err = %v", err)
	}
	if _, ok := st.Get("a"); !ok {
		t.Fatal("session lost")
	}
	if !st.Remove("a") || st.Remove("a") {
		t.Fatal("remove semantics broken")
	}
	if err := st.Register(NewSession("a", "", nil, nil, nil, nil)); err != nil {
		t.Fatalf("re-register after remove: %v", err)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	st := NewStoreShards(1, 2)
	for _, id := range []string{"a", "b"} {
		if err := st.Register(NewSession(id, "", nil, nil, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := st.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if err := st.Register(NewSession("c", "", nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := st.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := st.Get("c"); !ok {
		t.Error("c should be resident")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
	if st.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions())
	}
}

func TestStorePeekDoesNotTouchLRU(t *testing.T) {
	st := NewStoreShards(1, 2)
	for _, id := range []string{"a", "b"} {
		if err := st.Register(NewSession(id, "", nil, nil, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Peek "a": unlike Get, this must leave "a" as the LRU victim.
	if _, ok := st.Peek("a"); !ok {
		t.Fatal("a missing")
	}
	if _, ok := st.Peek("ghost"); ok {
		t.Fatal("phantom session")
	}
	if err := st.Register(NewSession("c", "", nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Peek("a"); ok {
		t.Error("a survived eviction despite being LRU (Peek touched the list)")
	}
	if _, ok := st.Peek("b"); !ok {
		t.Error("b should have survived")
	}
}

func TestStoreConcurrent(t *testing.T) {
	st := NewStore(0)
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("s-%d-%d", g, i)
				sess := NewSession(id, "", nil, nil, nil, []byte(id))
				if err := st.Register(sess); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				got, ok := st.Get(id)
				if !ok || got.ID != id {
					t.Errorf("get %s failed", id)
					return
				}
				got.RecordBlock(64)
			}
		}(g)
	}
	wg.Wait()
	if st.Len() != goroutines*perG {
		t.Errorf("Len = %d, want %d", st.Len(), goroutines*perG)
	}
}

func TestSessionRekeyAndStats(t *testing.T) {
	sess := NewSession("s", "", nil, nil, nil, []byte("n1"))
	if sess.RecordBlock(100) != 100 {
		t.Error("RecordBlock accounting off")
	}
	sess.RecordBlock(50)
	if got := sess.BytesSinceRekey(); got != 150 {
		t.Errorf("BytesSinceRekey = %d, want 150", got)
	}
	if epoch := sess.Rekey(nil, []byte("n2")); epoch != 2 {
		t.Errorf("epoch after rekey = %d, want 2", epoch)
	}
	if got := sess.BytesSinceRekey(); got != 0 {
		t.Errorf("BytesSinceRekey after rekey = %d, want 0", got)
	}
	st := sess.Stats()
	if st.Blocks != 2 || st.Bytes != 150 || st.Rekeys != 1 || st.Epoch != 2 {
		t.Errorf("stats = %+v", st)
	}
	_, nonce, _ := sess.Keys()
	if string(nonce) != "n2" {
		t.Errorf("nonce = %q, want n2", nonce)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	ctx := testContext(t)
	const size = 2
	pool := NewEvalPool(ctx, size, 1, nil)
	if pool.Size() != size {
		t.Fatalf("Size = %d", pool.Size())
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = pool.Do(func(w *Worker) error {
				if w.Ev == nil {
					t.Error("worker without evaluator")
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > size {
		t.Errorf("peak concurrency %d exceeds pool size %d", p, size)
	}
}

func TestPoolScratchAttachment(t *testing.T) {
	ctx := testContext(t)
	pool := NewEvalPool(ctx, 2, 1, func(i int) any { return i })
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		w := pool.Get()
		seen[w.Scratch.(int)] = true
		defer pool.Put(w)
	}
	if len(seen) != 2 {
		t.Errorf("scratch not distinct per worker: %v", seen)
	}
}

func TestSchedulerBackpressure(t *testing.T) {
	ctx := testContext(t)
	pool := NewEvalPool(ctx, 1, 1, nil)
	sched := NewScheduler(pool, 1)
	defer sched.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	// First job occupies the single worker...
	if err := sched.Submit(func(*Worker) { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the queue...
	if err := sched.Submit(func(*Worker) {}); err != nil {
		t.Fatal(err)
	}
	// ...third must be shed.
	err := sched.Submit(func(*Worker) {})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if d := sched.QueueDepth(); d != 1 {
		t.Errorf("QueueDepth = %d, want 1", d)
	}
	close(release)
}

func TestSchedulerDrainsOnClose(t *testing.T) {
	ctx := testContext(t)
	pool := NewEvalPool(ctx, 2, 1, nil)
	sched := NewScheduler(pool, 32)
	var done atomic.Int64
	const jobs = 20
	for i := 0; i < jobs; i++ {
		if err := sched.Submit(func(*Worker) { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	sched.Close()
	if done.Load() != jobs {
		t.Errorf("ran %d of %d queued jobs before Close returned", done.Load(), jobs)
	}
	if err := sched.Submit(func(*Worker) {}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Submit after Close = %v, want ErrOverloaded", err)
	}
	sched.Close() // idempotent
}
