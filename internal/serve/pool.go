package serve

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"quhe/internal/he/ckks"
)

// Worker is one checkout unit of the evaluator pool: a CKKS evaluator
// (whose internal scratch buffers make it single-goroutine) plus optional
// per-worker state the pool's owner attached at construction — the edge
// server attaches a *transcipher.Scratch so coefficient expansion reuses
// buffers across blocks. A Worker is exclusively owned between Get and
// Put.
type Worker struct {
	Ev *ckks.Evaluator
	// Scratch is caller-defined per-worker state (may be nil).
	Scratch any
}

// EvalPool is a fixed-size pool of Workers over one shared CKKS context.
// It replaces the evaluator-per-session design: N sessions share
// Size() evaluators, so evaluator memory and compute parallelism are
// bounded by the pool, not by the session count. Get blocks until a
// worker is free, which is the pool's implicit backpressure for callers
// that bypass the Scheduler (the synchronous v1 protocol path).
//
// Workers are built lazily: construction registers a build function and
// the pool's capacity, and each worker's evaluator and scratch come into
// existence on its first checkout. A pool for a security profile no
// session ever uses therefore costs a struct, not Size() evaluators —
// the property the per-profile PoolSet depends on.
type EvalPool struct {
	ch    chan *Worker
	build func(i int) *Worker
	next  atomic.Int32
	size  int32
	// label, when non-empty, is the quhe_profile pprof label value Run
	// and Do execute jobs under (set once at construction time, before
	// the pool is published).
	label string
}

// NewEvalPool builds a pool of size workers over ctx. Each worker's
// evaluator is seeded with seed+i (evaluator RNG streams stay distinct);
// scratch, when non-nil, is invoked once per worker to attach per-worker
// state. Workers materialize on first checkout.
func NewEvalPool(ctx *ckks.Context, size int, seed int64, scratch func(i int) any) *EvalPool {
	return NewEvalPoolFunc(size, func(i int) *Worker {
		w := &Worker{Ev: ckks.NewEvaluator(ctx, seed+int64(i))}
		if scratch != nil {
			w.Scratch = scratch(i)
		}
		return w
	})
}

// NewEvalPoolFunc builds a pool of size workers materialized lazily by
// build (which must be safe for concurrent calls with distinct indices).
func NewEvalPoolFunc(size int, build func(i int) *Worker) *EvalPool {
	if size < 1 {
		size = 1
	}
	return &EvalPool{ch: make(chan *Worker, size), build: build, size: int32(size)}
}

// Size returns the fixed number of workers.
func (p *EvalPool) Size() int { return int(p.size) }

// Built reports how many workers have been materialized so far.
func (p *EvalPool) Built() int { return int(p.next.Load()) }

// InUse reports the workers currently checked out — the evaluator-pool
// utilization gauge the control plane's telemetry snapshots.
func (p *EvalPool) InUse() int { return int(p.next.Load()) - len(p.ch) }

// Get checks a worker out, blocking until one is free. While unbuilt
// capacity remains, a fresh worker is constructed instead of waiting.
func (p *EvalPool) Get() *Worker {
	select {
	case w := <-p.ch:
		return w
	default:
	}
	for {
		n := p.next.Load()
		if n >= p.size {
			break
		}
		if p.next.CompareAndSwap(n, n+1) {
			return p.build(int(n))
		}
	}
	return <-p.ch
}

// Put returns a worker obtained from Get.
func (p *EvalPool) Put(w *Worker) { p.ch <- w }

// SetProfileLabel attaches a pprof label value (the security profile ID)
// to jobs executed through Run/Do, so CPU and goroutine profiles split
// eval time by profile. Call before the pool is shared; not synchronized.
func (p *EvalPool) SetProfileLabel(id string) { p.label = id }

// Run executes job with an exclusively held worker, blocking for
// checkout. When a profile label is set, the job runs under the
// quhe_profile pprof label so profiles attribute eval samples per
// security profile.
func (p *EvalPool) Run(job func(*Worker)) {
	w := p.Get()
	defer p.Put(w)
	if p.label == "" {
		job(w)
		return
	}
	pprof.Do(context.Background(), pprof.Labels("quhe_profile", p.label), func(context.Context) {
		job(w)
	})
}

// Do runs f with an exclusively held worker, blocking for checkout
// (under the pool's pprof label, like Run).
func (p *EvalPool) Do(f func(*Worker) error) error {
	var err error
	p.Run(func(w *Worker) { err = f(w) })
	return err
}

// PoolSet is a lazily populated registry of EvalPools keyed on security
// profile ID: the serving layer asks for a profile's pool and the set
// builds it on first use through the factory, so only profiles with live
// traffic cost worker capacity. Safe for concurrent use.
type PoolSet struct {
	mu      sync.RWMutex
	pools   map[string]*EvalPool
	factory func(profileID string) (*EvalPool, error)
}

// NewPoolSet builds an empty set over a pool factory.
func NewPoolSet(factory func(profileID string) (*EvalPool, error)) *PoolSet {
	return &PoolSet{pools: make(map[string]*EvalPool), factory: factory}
}

// Get returns the profile's pool, building it on first use. Concurrent
// first gets for the same profile serialize on the set's lock; a factory
// failure is returned to every caller and not cached.
func (s *PoolSet) Get(profileID string) (*EvalPool, error) {
	s.mu.RLock()
	p := s.pools[profileID]
	s.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.pools[profileID]; p != nil {
		return p, nil
	}
	p, err := s.factory(profileID)
	if err != nil {
		return nil, err
	}
	s.pools[profileID] = p
	return p, nil
}

// Peek returns the profile's pool only if it already exists.
func (s *PoolSet) Peek(profileID string) (*EvalPool, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pools[profileID]
	return p, ok
}

// Each calls f for every built pool (iteration order unspecified).
func (s *PoolSet) Each(f func(profileID string, p *EvalPool)) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.pools))
	pools := make([]*EvalPool, 0, len(s.pools))
	for id, p := range s.pools {
		ids = append(ids, id)
		pools = append(pools, p)
	}
	s.mu.RUnlock()
	for i := range ids {
		f(ids[i], pools[i])
	}
}

// Size aggregates the worker capacity of every built pool.
func (s *PoolSet) Size() int {
	total := 0
	s.Each(func(_ string, p *EvalPool) { total += p.Size() })
	return total
}

// InUse aggregates the checked-out workers across every built pool.
func (s *PoolSet) InUse() int {
	total := 0
	s.Each(func(_ string, p *EvalPool) { total += p.InUse() })
	return total
}
