package serve

import "quhe/internal/he/ckks"

// Worker is one checkout unit of the evaluator pool: a CKKS evaluator
// (whose internal scratch buffers make it single-goroutine) plus optional
// per-worker state the pool's owner attached at construction — the edge
// server attaches a *transcipher.Scratch so coefficient expansion reuses
// buffers across blocks. A Worker is exclusively owned between Get and
// Put.
type Worker struct {
	Ev *ckks.Evaluator
	// Scratch is caller-defined per-worker state (may be nil).
	Scratch any
}

// EvalPool is a fixed-size pool of Workers over one shared CKKS context.
// It replaces the evaluator-per-session design: N sessions share
// Size() evaluators, so evaluator memory and compute parallelism are
// bounded by the pool, not by the session count. Get blocks until a
// worker is free, which is the pool's implicit backpressure for callers
// that bypass the Scheduler (the synchronous v1 protocol path).
type EvalPool struct {
	ch chan *Worker
}

// NewEvalPool builds size workers over ctx. Each worker's evaluator is
// seeded with seed+i (evaluator RNG streams stay distinct); scratch, when
// non-nil, is invoked once per worker to attach per-worker state.
func NewEvalPool(ctx *ckks.Context, size int, seed int64, scratch func(i int) any) *EvalPool {
	if size < 1 {
		size = 1
	}
	p := &EvalPool{ch: make(chan *Worker, size)}
	for i := 0; i < size; i++ {
		w := &Worker{Ev: ckks.NewEvaluator(ctx, seed+int64(i))}
		if scratch != nil {
			w.Scratch = scratch(i)
		}
		p.ch <- w
	}
	return p
}

// Size returns the fixed number of workers.
func (p *EvalPool) Size() int { return cap(p.ch) }

// InUse reports the workers currently checked out — the evaluator-pool
// utilization gauge the control plane's telemetry snapshots.
func (p *EvalPool) InUse() int { return cap(p.ch) - len(p.ch) }

// Get checks a worker out, blocking until one is free.
func (p *EvalPool) Get() *Worker { return <-p.ch }

// Put returns a worker obtained from Get.
func (p *EvalPool) Put(w *Worker) { p.ch <- w }

// Do runs f with an exclusively held worker, blocking for checkout.
func (p *EvalPool) Do(f func(*Worker) error) error {
	w := p.Get()
	defer p.Put(w)
	return f(w)
}
