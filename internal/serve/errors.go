package serve

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Code identifies a serving-plane failure class. Codes travel on the wire
// (protocol replies carry the Code next to a human-readable detail string)
// so clients can branch on failures without parsing strings. CodeOK is the
// zero value, so v1 peers that never set a code report success.
type Code int

const (
	// CodeOK reports success.
	CodeOK Code = iota
	// CodeBadRequest rejects malformed or incomplete requests.
	CodeBadRequest
	// CodeParamMismatch rejects sessions whose CKKS parameters differ from
	// the server's.
	CodeParamMismatch
	// CodeUnknownSession rejects operations on unregistered (or evicted)
	// sessions.
	CodeUnknownSession
	// CodeDuplicateSession rejects re-registration of a live session ID.
	CodeDuplicateSession
	// CodeOversized rejects blocks exceeding the slot capacity.
	CodeOversized
	// CodeOverloaded sheds load when the scheduler queue is full.
	CodeOverloaded
	// CodeRekeyRequired rejects blocks once the session's key byte budget
	// is exhausted (or the block was masked under a stale key epoch).
	CodeRekeyRequired
	// CodeInternal reports a server-side evaluation failure.
	CodeInternal
	// CodeConnClosed reports a torn-down transport: in-flight requests
	// fail with it when the connection dies before their reply arrives.
	// It is surfaced locally by protocol clients rather than carried on
	// the wire (the wire is gone).
	CodeConnClosed
	// CodeAdmissionDenied sheds work the control plane refuses to admit:
	// the projected QKD key consumption or queue occupancy exceeds the
	// current resource plan. Unlike CodeOverloaded (a full queue right
	// now) or CodeRekeyRequired (retry after rotating), admission denial
	// is a policy decision — clients should back off or route elsewhere
	// rather than retry immediately.
	CodeAdmissionDenied
	// CodeProfileDenied rejects a session whose requested security
	// profile the server does not serve (unknown ID) or the active plan
	// refuses. Distinct from CodeParamMismatch: the parameters may be
	// perfectly valid, the policy just does not allow them here.
	CodeProfileDenied
	// CodeWireFormat rejects a peer that did not negotiate the current
	// ciphertext wire format (the residue-tower limb layout) at the
	// protocol handshake: decoding its payloads would misparse, so the
	// mismatch is surfaced typed at Setup instead.
	CodeWireFormat
	// CodeDeadline reports a request that exceeded its deadline (a
	// per-request timeout or a canceled context). Surfaced locally by
	// protocol clients — the reply may still be in flight, but the caller
	// has stopped waiting for it.
	CodeDeadline
	// CodeKeyExhausted reports that the QKD key pool backing the session
	// cannot fund the operation right now. Unlike CodeAdmissionDenied (a
	// policy decision) this is a transient resource condition: the pool
	// refills at the provisioning rate, so the error carries a
	// retry-after hint (see KeyExhaustedError) and clients should retry
	// after the hinted delay rather than tearing the session down.
	CodeKeyExhausted
	// CodeDraining rejects new work on a server that is gracefully
	// draining for restart: existing in-flight blocks finish, but new
	// sessions, resumes and computes are turned away so connections wind
	// down. Clients should reconnect elsewhere (or later).
	CodeDraining
	// CodeResumeRejected rejects a session-resume attempt: the session is
	// gone (expired past the resume window, evicted, or never existed),
	// the presented epoch or profile does not match, or the possession
	// proof failed. The client must fall back to a full re-dial.
	CodeResumeRejected
	// CodeMatVecUnavailable rejects an encrypted matrix–vector request the
	// server cannot serve: the capability was never negotiated at the
	// hello, the server has no matrix configured, or the session has not
	// uploaded the rotation keys the kernel needs. The detail string says
	// which; clients should negotiate/upload rather than retry blindly.
	CodeMatVecUnavailable
)

// Sentinel errors, one per failure code. Server components return these
// directly; clients reconstruct them from wire codes, so
// errors.Is(err, serve.ErrOverloaded) works on both sides of the
// connection.
var (
	ErrBadRequest        = errors.New("serve: bad request")
	ErrParamMismatch     = errors.New("serve: parameter mismatch")
	ErrUnknownSession    = errors.New("serve: unknown session")
	ErrDuplicateSession  = errors.New("serve: duplicate session")
	ErrOversized         = errors.New("serve: block exceeds slot capacity")
	ErrOverloaded        = errors.New("serve: overloaded")
	ErrRekeyRequired     = errors.New("serve: rekey required")
	ErrInternal          = errors.New("serve: internal error")
	ErrConnClosed        = errors.New("serve: connection closed")
	ErrAdmissionDenied   = errors.New("serve: admission denied")
	ErrProfileDenied     = errors.New("serve: security profile denied")
	ErrWireFormat        = errors.New("serve: ciphertext wire format not negotiated")
	ErrDeadline          = errors.New("serve: deadline exceeded")
	ErrKeyExhausted      = errors.New("serve: qkd key exhausted")
	ErrDraining          = errors.New("serve: server draining")
	ErrResumeRejected    = errors.New("serve: session resume rejected")
	ErrMatVecUnavailable = errors.New("serve: encrypted matvec unavailable")
)

var codeToErr = map[Code]error{
	CodeBadRequest:        ErrBadRequest,
	CodeParamMismatch:     ErrParamMismatch,
	CodeUnknownSession:    ErrUnknownSession,
	CodeDuplicateSession:  ErrDuplicateSession,
	CodeOversized:         ErrOversized,
	CodeOverloaded:        ErrOverloaded,
	CodeRekeyRequired:     ErrRekeyRequired,
	CodeInternal:          ErrInternal,
	CodeConnClosed:        ErrConnClosed,
	CodeAdmissionDenied:   ErrAdmissionDenied,
	CodeProfileDenied:     ErrProfileDenied,
	CodeWireFormat:        ErrWireFormat,
	CodeDeadline:          ErrDeadline,
	CodeKeyExhausted:      ErrKeyExhausted,
	CodeDraining:          ErrDraining,
	CodeResumeRejected:    ErrResumeRejected,
	CodeMatVecUnavailable: ErrMatVecUnavailable,
}

// Err returns the sentinel error for the code, or nil for CodeOK.
// Unrecognized codes (a newer peer) map to ErrInternal.
func (c Code) Err() error {
	if c == CodeOK {
		return nil
	}
	if err, ok := codeToErr[c]; ok {
		return err
	}
	return ErrInternal
}

// CodeOf maps an error back to its wire code: nil reports CodeOK and
// errors outside the sentinel set report CodeInternal.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	for code, sentinel := range codeToErr {
		if errors.Is(err, sentinel) {
			return code
		}
	}
	return CodeInternal
}

// String names the code for logs and metrics.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeBadRequest:
		return "bad-request"
	case CodeParamMismatch:
		return "param-mismatch"
	case CodeUnknownSession:
		return "unknown-session"
	case CodeDuplicateSession:
		return "duplicate-session"
	case CodeOversized:
		return "oversized"
	case CodeOverloaded:
		return "overloaded"
	case CodeRekeyRequired:
		return "rekey-required"
	case CodeInternal:
		return "internal"
	case CodeConnClosed:
		return "conn-closed"
	case CodeAdmissionDenied:
		return "admission-denied"
	case CodeProfileDenied:
		return "profile-denied"
	case CodeWireFormat:
		return "wire-format"
	case CodeDeadline:
		return "deadline"
	case CodeKeyExhausted:
		return "key-exhausted"
	case CodeDraining:
		return "draining"
	case CodeResumeRejected:
		return "resume-rejected"
	case CodeMatVecUnavailable:
		return "matvec-unavailable"
	}
	return "unknown"
}

// KeyExhaustedError is the carrier for CodeKeyExhausted: it wraps
// ErrKeyExhausted (errors.Is works) and adds the retry-after hint derived
// from the key pool's provisioning rate — how long until the pool has
// refilled enough to fund the rejected operation. The hint survives the
// wire round trip: Error() renders it in a parseable "retry_after_ms=N"
// form and ParseKeyExhausted reconstructs the typed error from a reply's
// detail string.
type KeyExhaustedError struct {
	// RetryAfter estimates when the pool will have refilled enough to
	// retry (0 = unknown rate, retry at the caller's discretion).
	RetryAfter time.Duration
	// Detail is the human-readable context (pool deficit, session).
	Detail string
}

// NewKeyExhausted builds a typed key-exhaustion error with a retry hint.
func NewKeyExhausted(retryAfter time.Duration, detail string) *KeyExhaustedError {
	return &KeyExhaustedError{RetryAfter: retryAfter, Detail: detail}
}

func (e *KeyExhaustedError) Error() string {
	msg := fmt.Sprintf("%s: retry_after_ms=%d", ErrKeyExhausted.Error(), e.RetryAfter.Milliseconds())
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrKeyExhausted) hold.
func (e *KeyExhaustedError) Unwrap() error { return ErrKeyExhausted }

// ParseKeyExhausted rebuilds a KeyExhaustedError from a wire detail
// string as produced by Error(). Absent or malformed hints parse as a
// zero RetryAfter.
func ParseKeyExhausted(detail string) *KeyExhaustedError {
	e := &KeyExhaustedError{Detail: detail}
	const marker = "retry_after_ms="
	i := strings.Index(detail, marker)
	if i < 0 {
		return e
	}
	rest := detail[i+len(marker):]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	if ms, err := strconv.ParseInt(rest[:j], 10, 64); err == nil {
		e.RetryAfter = time.Duration(ms) * time.Millisecond
		if j < len(rest) && strings.HasPrefix(rest[j:], ": ") {
			e.Detail = rest[j+2:]
		} else {
			e.Detail = ""
		}
	}
	return e
}

// RetryAfter extracts the retry hint from an error chain carrying a
// KeyExhaustedError, reporting ok=false when none is present.
func RetryAfter(err error) (time.Duration, bool) {
	var ke *KeyExhaustedError
	if errors.As(err, &ke) {
		return ke.RetryAfter, true
	}
	return 0, false
}
