package serve

import "errors"

// Code identifies a serving-plane failure class. Codes travel on the wire
// (protocol replies carry the Code next to a human-readable detail string)
// so clients can branch on failures without parsing strings. CodeOK is the
// zero value, so v1 peers that never set a code report success.
type Code int

const (
	// CodeOK reports success.
	CodeOK Code = iota
	// CodeBadRequest rejects malformed or incomplete requests.
	CodeBadRequest
	// CodeParamMismatch rejects sessions whose CKKS parameters differ from
	// the server's.
	CodeParamMismatch
	// CodeUnknownSession rejects operations on unregistered (or evicted)
	// sessions.
	CodeUnknownSession
	// CodeDuplicateSession rejects re-registration of a live session ID.
	CodeDuplicateSession
	// CodeOversized rejects blocks exceeding the slot capacity.
	CodeOversized
	// CodeOverloaded sheds load when the scheduler queue is full.
	CodeOverloaded
	// CodeRekeyRequired rejects blocks once the session's key byte budget
	// is exhausted (or the block was masked under a stale key epoch).
	CodeRekeyRequired
	// CodeInternal reports a server-side evaluation failure.
	CodeInternal
	// CodeConnClosed reports a torn-down transport: in-flight requests
	// fail with it when the connection dies before their reply arrives.
	// It is surfaced locally by protocol clients rather than carried on
	// the wire (the wire is gone).
	CodeConnClosed
	// CodeAdmissionDenied sheds work the control plane refuses to admit:
	// the projected QKD key consumption or queue occupancy exceeds the
	// current resource plan. Unlike CodeOverloaded (a full queue right
	// now) or CodeRekeyRequired (retry after rotating), admission denial
	// is a policy decision — clients should back off or route elsewhere
	// rather than retry immediately.
	CodeAdmissionDenied
	// CodeProfileDenied rejects a session whose requested security
	// profile the server does not serve (unknown ID) or the active plan
	// refuses. Distinct from CodeParamMismatch: the parameters may be
	// perfectly valid, the policy just does not allow them here.
	CodeProfileDenied
	// CodeWireFormat rejects a peer that did not negotiate the current
	// ciphertext wire format (the residue-tower limb layout) at the
	// protocol handshake: decoding its payloads would misparse, so the
	// mismatch is surfaced typed at Setup instead.
	CodeWireFormat
)

// Sentinel errors, one per failure code. Server components return these
// directly; clients reconstruct them from wire codes, so
// errors.Is(err, serve.ErrOverloaded) works on both sides of the
// connection.
var (
	ErrBadRequest       = errors.New("serve: bad request")
	ErrParamMismatch    = errors.New("serve: parameter mismatch")
	ErrUnknownSession   = errors.New("serve: unknown session")
	ErrDuplicateSession = errors.New("serve: duplicate session")
	ErrOversized        = errors.New("serve: block exceeds slot capacity")
	ErrOverloaded       = errors.New("serve: overloaded")
	ErrRekeyRequired    = errors.New("serve: rekey required")
	ErrInternal         = errors.New("serve: internal error")
	ErrConnClosed       = errors.New("serve: connection closed")
	ErrAdmissionDenied  = errors.New("serve: admission denied")
	ErrProfileDenied    = errors.New("serve: security profile denied")
	ErrWireFormat       = errors.New("serve: ciphertext wire format not negotiated")
)

var codeToErr = map[Code]error{
	CodeBadRequest:       ErrBadRequest,
	CodeParamMismatch:    ErrParamMismatch,
	CodeUnknownSession:   ErrUnknownSession,
	CodeDuplicateSession: ErrDuplicateSession,
	CodeOversized:        ErrOversized,
	CodeOverloaded:       ErrOverloaded,
	CodeRekeyRequired:    ErrRekeyRequired,
	CodeInternal:         ErrInternal,
	CodeConnClosed:       ErrConnClosed,
	CodeAdmissionDenied:  ErrAdmissionDenied,
	CodeProfileDenied:    ErrProfileDenied,
	CodeWireFormat:       ErrWireFormat,
}

// Err returns the sentinel error for the code, or nil for CodeOK.
// Unrecognized codes (a newer peer) map to ErrInternal.
func (c Code) Err() error {
	if c == CodeOK {
		return nil
	}
	if err, ok := codeToErr[c]; ok {
		return err
	}
	return ErrInternal
}

// CodeOf maps an error back to its wire code: nil reports CodeOK and
// errors outside the sentinel set report CodeInternal.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	for code, sentinel := range codeToErr {
		if errors.Is(err, sentinel) {
			return code
		}
	}
	return CodeInternal
}

// String names the code for logs and metrics.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeBadRequest:
		return "bad-request"
	case CodeParamMismatch:
		return "param-mismatch"
	case CodeUnknownSession:
		return "unknown-session"
	case CodeDuplicateSession:
		return "duplicate-session"
	case CodeOversized:
		return "oversized"
	case CodeOverloaded:
		return "overloaded"
	case CodeRekeyRequired:
		return "rekey-required"
	case CodeInternal:
		return "internal"
	case CodeConnClosed:
		return "conn-closed"
	case CodeAdmissionDenied:
		return "admission-denied"
	case CodeProfileDenied:
		return "profile-denied"
	case CodeWireFormat:
		return "wire-format"
	}
	return "unknown"
}
