package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used for large session caps.
const DefaultShards = 16

// Store is a sharded session table: session IDs hash to shards, each with
// its own lock, map and LRU list, so concurrent clients on different
// shards never contend. A configurable cap bounds the resident sessions;
// registering past the cap evicts the least-recently-used session of the
// target shard (the cap divides evenly across shards, so with more than
// one shard it is enforced approximately — exactly per shard, globally
// within one shard's worth of slack). Small caps select a single shard so
// eviction order is exact.
type Store struct {
	shards []storeShard
	mask   uint32
	// maxSessions and shardCap are resizable at runtime (the control
	// plane applies its plan's admission capacity to the live cap);
	// 0 = unbounded.
	maxSessions atomic.Int64
	shardCap    atomic.Int64
	evictions   atomic.Int64
}

type storeShard struct {
	mu   sync.Mutex
	byID map[string]*list.Element
	lru  *list.List // front = most recently used; values are *Session
}

// NewStore builds a store holding at most maxSessions sessions
// (0 = unbounded). Caps below 4×DefaultShards get a single shard for
// exact LRU order; larger caps are sharded DefaultShards ways.
func NewStore(maxSessions int) *Store {
	shards := DefaultShards
	if maxSessions > 0 && maxSessions < 4*DefaultShards {
		shards = 1
	}
	return NewStoreShards(shards, maxSessions)
}

// NewStoreShards builds a store with an explicit shard count (rounded up
// to a power of two) and session cap (0 = unbounded).
func NewStoreShards(shards, maxSessions int) *Store {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Store{shards: make([]storeShard, n), mask: uint32(n - 1)}
	s.SetMaxSessions(maxSessions)
	for i := range s.shards {
		s.shards[i] = storeShard{byID: make(map[string]*list.Element), lru: list.New()}
	}
	return s
}

// SetMaxSessions moves the live session cap (≤ 0 = unbounded). The shard
// count is fixed at construction, so the cap is redistributed across the
// existing shards. Shrinking does not evict immediately: overfull shards
// evict their LRU down to the new cap as registrations arrive.
func (s *Store) SetMaxSessions(maxSessions int) {
	if maxSessions < 0 {
		maxSessions = 0
	}
	cap := 0
	if maxSessions > 0 {
		n := len(s.shards)
		cap = (maxSessions + n - 1) / n
	}
	s.maxSessions.Store(int64(maxSessions))
	s.shardCap.Store(int64(cap))
}

// MaxSessions reports the live session cap (0 = unbounded).
func (s *Store) MaxSessions() int { return int(s.maxSessions.Load()) }

// shard picks the shard for an ID by FNV-1a hash.
func (s *Store) shard(id string) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &s.shards[h&s.mask]
}

// Register adds a new session, evicting the shard's LRU session if the
// cap is reached. A live session under the same ID is rejected with
// ErrDuplicateSession — re-registration must go through an explicit rekey
// so an impostor (or a client bug) cannot silently reset a session's keys
// and counters mid-stream.
func (s *Store) Register(sess *Session) error {
	sh := s.shard(sess.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.byID[sess.ID]; ok {
		return ErrDuplicateSession
	}
	for cap := int(s.shardCap.Load()); cap > 0 && len(sh.byID) >= cap; {
		back := sh.lru.Back()
		old := back.Value.(*Session)
		sh.lru.Remove(back)
		delete(sh.byID, old.ID)
		s.evictions.Add(1)
	}
	sh.byID[sess.ID] = sh.lru.PushFront(sess)
	return nil
}

// Get looks a session up and marks it most recently used.
func (s *Store) Get(id string) (*Session, bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.byID[id]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*Session), true
}

// Peek looks a session up without refreshing its LRU position — for
// stats and monitoring reads that must not protect idle sessions from
// eviction.
func (s *Store) Peek(id string) (*Session, bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.byID[id]
	if !ok {
		return nil, false
	}
	return el.Value.(*Session), true
}

// Remove deletes a session, reporting whether it existed.
func (s *Store) Remove(id string) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.byID[id]
	if !ok {
		return false
	}
	sh.lru.Remove(el)
	delete(sh.byID, id)
	return true
}

// SweepExpired removes sessions whose resume window has expired: no
// attached connections and detached since before the cutoff (unix nanos).
// Sessions that never attached a connection (detach time 0) are left
// alone — they belong to direct store users, not the resume machinery.
// Returns the number of sessions reclaimed.
func (s *Store) SweepExpired(cutoffUnixNano int64) int {
	reclaimed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			sess := el.Value.(*Session)
			if since, detached := sess.Detached(); detached && since != 0 && since < cutoffUnixNano {
				sh.lru.Remove(el)
				delete(sh.byID, sess.ID)
				reclaimed++
			}
			el = next
		}
		sh.mu.Unlock()
	}
	return reclaimed
}

// Detached counts resident sessions with no attached connection — the
// population currently inside the resume window.
func (s *Store) Detached() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			if since, detached := el.Value.(*Session).Detached(); detached && since != 0 {
				total++
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// Len counts resident sessions across all shards.
func (s *Store) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += len(sh.byID)
		sh.mu.Unlock()
	}
	return total
}

// Evictions counts sessions displaced by the cap since construction.
func (s *Store) Evictions() int64 { return s.evictions.Load() }
