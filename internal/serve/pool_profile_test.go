package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolBuildsWorkersLazily(t *testing.T) {
	ctx := testContext(t)
	var built atomic.Int64
	pool := NewEvalPool(ctx, 4, 1, func(i int) any { built.Add(1); return i })
	if got := built.Load(); got != 0 {
		t.Fatalf("%d workers built at construction, want 0 (lazy)", got)
	}
	if pool.Built() != 0 {
		t.Fatalf("Built = %d at construction", pool.Built())
	}
	w := pool.Get()
	if built.Load() != 1 || pool.Built() != 1 {
		t.Errorf("first checkout built %d workers (gauge %d), want 1", built.Load(), pool.Built())
	}
	if pool.InUse() != 1 {
		t.Errorf("InUse = %d with one worker out", pool.InUse())
	}
	pool.Put(w)
	if pool.InUse() != 0 {
		t.Errorf("InUse = %d after Put", pool.InUse())
	}
	// A recycled worker is reused before new capacity materializes.
	w2 := pool.Get()
	if built.Load() != 1 {
		t.Errorf("checkout with a free worker built another (%d total)", built.Load())
	}
	pool.Put(w2)
}

func TestPoolSetKeysPoolsByProfile(t *testing.T) {
	ctx := testContext(t)
	var factoryCalls atomic.Int64
	set := NewPoolSet(func(profileID string) (*EvalPool, error) {
		if profileID == "broken" {
			return nil, errors.New("no such profile")
		}
		factoryCalls.Add(1)
		return NewEvalPool(ctx, 2, 1, nil), nil
	})
	a1, err := set.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := set.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same profile resolved to distinct pools")
	}
	b, err := set.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if b == a1 {
		t.Error("distinct profiles share a pool")
	}
	if factoryCalls.Load() != 2 {
		t.Errorf("factory ran %d times, want 2", factoryCalls.Load())
	}
	if _, err := set.Get("broken"); err == nil {
		t.Error("factory failure not surfaced")
	}
	if _, ok := set.Peek("broken"); ok {
		t.Error("failed pool cached")
	}
	if set.Size() != 4 {
		t.Errorf("aggregate Size = %d, want 4", set.Size())
	}
	w := a1.Get()
	if set.InUse() != 1 {
		t.Errorf("aggregate InUse = %d, want 1", set.InUse())
	}
	a1.Put(w)
	ids := map[string]bool{}
	set.Each(func(id string, _ *EvalPool) { ids[id] = true })
	if !ids["a"] || !ids["b"] || len(ids) != 2 {
		t.Errorf("Each visited %v", ids)
	}
}

func TestSchedulerSubmitToRoutesPools(t *testing.T) {
	ctx := testContext(t)
	def := NewEvalPool(ctx, 1, 1, func(i int) any { return "default" })
	alt := NewEvalPool(ctx, 1, 100, func(i int) any { return "alt" })
	sched := NewScheduler(def, 8)
	defer sched.Close()

	got := make(chan string, 2)
	if err := sched.Submit(func(w *Worker) { got <- w.Scratch.(string) }); err != nil {
		t.Fatal(err)
	}
	if err := sched.SubmitTo(alt, func(w *Worker) { got <- w.Scratch.(string) }); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{<-got: true, <-got: true}
	if !seen["default"] || !seen["alt"] {
		t.Errorf("jobs ran on %v, want both pools", seen)
	}
}

// TestSchedulerResizeConcurrent is the satellite -race test: live resizes
// racing a submission hammer must respect the shrinking bound (sheds
// happen), never lose a job that was accepted, and never exceed the built
// capacity.
func TestSchedulerResizeConcurrent(t *testing.T) {
	ctx := testContext(t)
	pool := NewEvalPool(ctx, 2, 1, nil)
	sched := NewScheduler(pool, 16)
	if sched.MaxCapacity() != 16 || sched.Capacity() != 16 {
		t.Fatalf("capacity %d/%d, want 16/16", sched.Capacity(), sched.MaxCapacity())
	}

	var accepted, ran, shed atomic.Int64
	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() { // resize hammer
		defer resizer.Done()
		sizes := []int{1, 4, 16, 2, 8, 0, 64} // clamped to [1, 16]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sched.Resize(sizes[i%len(sizes)])
			if c := sched.Capacity(); c < 1 || c > 16 {
				t.Errorf("live capacity %d outside [1, 16]", c)
				return
			}
		}
	}()
	var submitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			for i := 0; i < 500; i++ {
				err := sched.Submit(func(*Worker) { ran.Add(1) })
				if err == nil {
					accepted.Add(1)
				} else if errors.Is(err, ErrOverloaded) {
					shed.Add(1)
				} else {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	submitters.Wait()
	close(stop)
	resizer.Wait()
	sched.Close()
	if ran.Load() != accepted.Load() {
		t.Errorf("accepted %d jobs but ran %d", accepted.Load(), ran.Load())
	}
	if accepted.Load() == 0 {
		t.Error("no job was ever accepted")
	}
	t.Logf("accepted %d, shed %d under live resizing", accepted.Load(), shed.Load())
}

func TestStoreSetMaxSessionsShrinksLive(t *testing.T) {
	st := NewStoreShards(1, 8)
	if st.MaxSessions() != 8 {
		t.Fatalf("MaxSessions = %d, want 8", st.MaxSessions())
	}
	for i := 0; i < 4; i++ {
		if err := st.Register(NewSession(fmt.Sprintf("s%d", i), "", nil, nil, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Shrink below the resident count: the next registration evicts down
	// to the new cap (s0 and s1 are LRU), leaving cap sessions resident.
	st.SetMaxSessions(3)
	if err := st.Register(NewSession("s4", "", nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Errorf("Len = %d after shrink to 3", st.Len())
	}
	if _, ok := st.Peek("s0"); ok {
		t.Error("LRU session survived the shrink")
	}
	if _, ok := st.Peek("s4"); !ok {
		t.Error("fresh session missing")
	}
	// Unbounded again: no more evictions.
	st.SetMaxSessions(0)
	for i := 5; i < 20; i++ {
		if err := st.Register(NewSession(fmt.Sprintf("s%d", i), "", nil, nil, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 18 {
		t.Errorf("Len = %d unbounded, want 18", st.Len())
	}
}

func TestSessionCarriesProfile(t *testing.T) {
	sess := NewSession("s", "lambda-64k", nil, nil, nil, nil)
	if sess.Profile != "lambda-64k" {
		t.Errorf("Profile = %q", sess.Profile)
	}
}
