package serve

import (
	"sync"
	"sync/atomic"

	"quhe/internal/he/ckks"
)

// Session is one client's serving state: the HE evaluation material it
// registered, the current transciphering key (HE-encrypted, with its
// nonce and epoch), and usage counters. Key material is swapped atomically
// by Rekey while computes running on old snapshots finish consistently —
// the epoch lets the protocol layer reject blocks masked under a stale
// key instead of transciphering them into garbage.
type Session struct {
	// ID names the session; immutable.
	ID string
	// Profile is the security profile the session was registered on
	// (empty = the server's default profile); immutable. Every compute
	// for the session runs on the profile's evaluator pool against its
	// CKKS context, and the control plane derives the session's rekey
	// budget from the profile's λ.
	Profile string
	// PK and RLK are the client's HE evaluation material; immutable.
	PK  *ckks.PublicKey
	RLK *ckks.RelinKey

	mu     sync.RWMutex
	encKey []*ckks.Ciphertext
	nonce  []byte
	epoch  uint64
	// resumeAuth is the session's resume credential: a secret derived by
	// the client from the current QKD key material and registered at
	// Setup/Rekey, against which a reconnecting client proves key
	// possession (challenge HMAC) to re-attach without a re-keygen. Nil
	// for peers that never negotiated resume.
	resumeAuth []byte
	// rotKeys holds the client's Galois rotation keys for the packed
	// matrix–vector kernel. Uploaded once after Setup and kept on the
	// session (not the connection) so a resumed client never re-uploads
	// them. Nil until the client installs a set.
	rotKeys *ckks.GaloisKeySet

	blocks          atomic.Int64
	bytes           atomic.Int64
	bytesSinceRekey atomic.Int64
	rekeys          atomic.Int64

	// conns counts transport connections currently attached to the
	// session; detachedAt records (unix nanos) when the last one went
	// away. Together they drive the resume window: a session with
	// conns == 0 survives until detachedAt + ResumeWindow, then is
	// reclaimed by Store.SweepExpired.
	conns      atomic.Int64
	detachedAt atomic.Int64
}

// Stats is a point-in-time snapshot of a session's usage counters.
type Stats struct {
	// Blocks and Bytes count all work since registration.
	Blocks int64
	Bytes  int64
	// BytesSinceRekey counts work under the current key (the rekey byte
	// budget compares against this).
	BytesSinceRekey int64
	// Rekeys counts completed key rotations.
	Rekeys int64
	// Epoch is the current key epoch (1 on registration, +1 per rekey).
	Epoch uint64
}

// NewSession builds a session at epoch 1 holding the given key material,
// registered on the given security profile ("" = server default).
func NewSession(id, profile string, pk *ckks.PublicKey, rlk *ckks.RelinKey, encKey []*ckks.Ciphertext, nonce []byte) *Session {
	return &Session{
		ID: id, Profile: profile, PK: pk, RLK: rlk,
		encKey: encKey,
		nonce:  append([]byte(nil), nonce...),
		epoch:  1,
	}
}

// Keys returns a consistent snapshot of the current transciphering key
// material. The returned slices must not be mutated.
func (s *Session) Keys() (encKey []*ckks.Ciphertext, nonce []byte, epoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.encKey, s.nonce, s.epoch
}

// Rekey installs fresh key material, bumps the epoch and resets the
// per-key byte counter. Computes that already snapshotted the old keys
// finish under them; new snapshots see only the new epoch. Returns the
// new epoch.
func (s *Session) Rekey(encKey []*ckks.Ciphertext, nonce []byte) uint64 {
	s.mu.Lock()
	s.encKey = encKey
	s.nonce = append([]byte(nil), nonce...)
	s.epoch++
	epoch := s.epoch
	s.mu.Unlock()
	s.bytesSinceRekey.Store(0)
	s.rekeys.Add(1)
	return epoch
}

// SetResumeAuth installs (or rotates, on rekey) the session's resume
// credential. A nil or empty value disables resume for the session.
func (s *Session) SetResumeAuth(auth []byte) {
	s.mu.Lock()
	s.resumeAuth = append([]byte(nil), auth...)
	s.mu.Unlock()
}

// ResumeAuth returns the current resume credential (nil when the session
// never registered one). The returned slice must not be mutated.
func (s *Session) ResumeAuth() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resumeAuth
}

// SetRotKeys installs the session's Galois rotation-key set for the
// encrypted matrix–vector kernel, replacing any previous set. Rotation
// keys are public evaluation material derived from the secret key; they
// survive rekeys (which rotate only the transciphering key) and resumes.
func (s *Session) SetRotKeys(gks *ckks.GaloisKeySet) {
	s.mu.Lock()
	s.rotKeys = gks
	s.mu.Unlock()
}

// RotKeys returns the installed rotation-key set, or nil when the client
// never uploaded one. The returned set must not be mutated.
func (s *Session) RotKeys() *ckks.GaloisKeySet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rotKeys
}

// Attach records a transport connection binding to the session, clearing
// any pending resume-window deadline.
func (s *Session) Attach() {
	s.conns.Add(1)
	s.detachedAt.Store(0)
}

// Detach records a transport connection going away at the given time
// (unix nanos). When the last connection detaches the session enters the
// resume window.
func (s *Session) Detach(nowUnixNano int64) {
	if s.conns.Add(-1) <= 0 {
		s.detachedAt.Store(nowUnixNano)
	}
}

// Detached reports whether the session has no attached connections, and
// if so since when (unix nanos; 0 also means "never attached").
func (s *Session) Detached() (since int64, detached bool) {
	if s.conns.Load() > 0 {
		return 0, false
	}
	return s.detachedAt.Load(), true
}

// RecordBlock accounts one processed block of the given byte size and
// returns the bytes served under the current key.
func (s *Session) RecordBlock(bytes int64) int64 {
	s.blocks.Add(1)
	s.bytes.Add(bytes)
	return s.bytesSinceRekey.Add(bytes)
}

// BytesSinceRekey returns the bytes served under the current key.
func (s *Session) BytesSinceRekey() int64 { return s.bytesSinceRekey.Load() }

// Epoch returns the current key epoch.
func (s *Session) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Stats snapshots the usage counters.
func (s *Session) Stats() Stats {
	return Stats{
		Blocks:          s.blocks.Load(),
		Bytes:           s.bytes.Load(),
		BytesSinceRekey: s.bytesSinceRekey.Load(),
		Rekeys:          s.rekeys.Load(),
		Epoch:           s.Epoch(),
	}
}
