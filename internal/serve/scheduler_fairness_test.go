package serve

import (
	"errors"
	"testing"
	"time"
)

// fairnessPool builds a one-worker pool whose workers carry no evaluator —
// scheduler fairness is about queue mechanics, not HE.
func fairnessPool() *EvalPool {
	return NewEvalPoolFunc(1, func(int) *Worker { return &Worker{} })
}

// TestSchedulerSharesProtectLightProfile is the starvation regression
// test: a heavy-profile flood that saturates its own queue share — with
// its single evaluator worker wedged — must neither shed nor delay a
// light profile's block. Before per-class drains, the heavy flood parked
// every drain goroutine behind the heavy pool and the light job waited
// behind the whole backlog.
func TestSchedulerSharesProtectLightProfile(t *testing.T) {
	heavy := fairnessPool()
	light := fairnessPool()
	sched := NewScheduler(heavy, 8)
	defer sched.Close()
	// Register the light class up front: its share is reserved before its
	// first block arrives.
	sched.SetShare(light, 1)
	if hs, ls := sched.Share(heavy), sched.Share(light); hs != 4 || ls != 4 {
		t.Fatalf("shares %d/%d, want 4/4 (limit 8, equal weights)", hs, ls)
	}

	// Wedge the heavy worker, then flood the heavy class until it sheds.
	release := make(chan struct{})
	running := make(chan struct{})
	if err := sched.SubmitTo(heavy, func(*Worker) { close(running); <-release }); err != nil {
		t.Fatal(err)
	}
	<-running
	admitted := 0
	for ; admitted < 100; admitted++ {
		if err := sched.SubmitTo(heavy, func(*Worker) {}); err != nil {
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("unexpected submit error: %v", err)
			}
			break
		}
	}
	if admitted != 4 {
		t.Fatalf("heavy flood admitted %d queued jobs, want its share of 4", admitted)
	}

	// The light profile's block admits into its reserved share and
	// completes promptly — its own drain goroutines are not behind the
	// heavy backlog.
	done := make(chan struct{})
	if err := sched.SubmitTo(light, func(*Worker) { close(done) }); err != nil {
		t.Fatalf("light profile shed behind heavy flood: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("light-profile job starved behind heavy flood")
	}
	close(release)
}

// TestSchedulerWeightedShares pins the share arithmetic: weights divide
// the live limit proportionally, shares track Resize, and a class is
// never squeezed below one slot.
func TestSchedulerWeightedShares(t *testing.T) {
	heavy := fairnessPool()
	light := fairnessPool()
	sched := NewScheduler(heavy, 8)
	defer sched.Close()
	if got := sched.Share(heavy); got != 8 {
		t.Errorf("single-class share %d, want the whole limit 8", got)
	}
	sched.SetShare(heavy, 3)
	sched.SetShare(light, 1)
	if hs, ls := sched.Share(heavy), sched.Share(light); hs != 6 || ls != 2 {
		t.Errorf("weighted shares %d/%d, want 6/2", hs, ls)
	}
	sched.Resize(4)
	if hs, ls := sched.Share(heavy), sched.Share(light); hs != 3 || ls != 1 {
		t.Errorf("resized shares %d/%d, want 3/1", hs, ls)
	}
	sched.Resize(1)
	if ls := sched.Share(light); ls != 1 {
		t.Errorf("floor share %d, want minimum 1", ls)
	}
	if got := sched.Share(fairnessPool()); got != 0 {
		t.Errorf("unregistered pool share %d, want 0", got)
	}
}

// TestSchedulerShareAdmitsLateClass: a class created by its very first
// submission — while another class holds the entire queue — still
// admits, because shares are recomputed against the registered class
// set at every submit.
func TestSchedulerShareAdmitsLateClass(t *testing.T) {
	heavy := fairnessPool()
	light := fairnessPool()
	sched := NewScheduler(heavy, 4)
	defer sched.Close()

	release := make(chan struct{})
	running := make(chan struct{})
	if err := sched.SubmitTo(heavy, func(*Worker) { close(running); <-release }); err != nil {
		t.Fatal(err)
	}
	<-running
	// Heavy owns the whole queue while it is the only class.
	for i := 0; i < 4; i++ {
		if err := sched.SubmitTo(heavy, func(*Worker) {}); err != nil {
			t.Fatalf("heavy fill %d: %v", i, err)
		}
	}
	if err := sched.SubmitTo(heavy, func(*Worker) {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("heavy overfill error = %v, want ErrOverloaded", err)
	}
	// The light class's first-ever submission registers it and lands in
	// its fresh share even though the queue total is at the limit.
	done := make(chan struct{})
	if err := sched.SubmitTo(light, func(*Worker) { close(done) }); err != nil {
		t.Fatalf("late class shed on arrival: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("late class job never ran")
	}
	close(release)
}
