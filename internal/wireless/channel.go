// Package wireless models the uplink of the QuHE system (§III-D): 3GPP-style
// large-scale path loss, Rayleigh small-scale fading, Shannon-capacity
// transmission rates under FDMA, and the delay/energy cost formulas
// (Eqs. 10–12).
package wireless

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// DefaultNoisePSDWHz is the thermal noise power spectral density used when a
// ChannelModel is built with a non-positive value: −174 dBm/Hz in watts/Hz.
const DefaultNoisePSDWHz = 3.9810717055349565e-21 // 10^(-174/10) mW → W

// PathLossDB returns the large-scale fading used in the paper's evaluation:
// 128.1 + 37.6·log10(d) dB with d in kilometres (the 3GPP UMa model).
// Distances are floored at one metre to keep the logarithm finite.
func PathLossDB(dKm float64) float64 {
	if dKm < 1e-3 {
		dKm = 1e-3
	}
	return 128.1 + 37.6*math.Log10(dKm)
}

// DBToLinear converts a decibel quantity to linear scale.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels.
func LinearToDB(x float64) float64 { return 10 * math.Log10(x) }

// DBmToWatts converts a power in dBm to watts.
func DBmToWatts(dbm float64) float64 { return math.Pow(10, dbm/10) / 1000 }

// Fading selects the small-scale fading distribution of a ChannelModel.
type Fading int

const (
	// FadingNone applies pure path loss.
	FadingNone Fading = iota + 1
	// FadingRayleigh multiplies the path-loss gain by an Exp(1)-distributed
	// power coefficient |h|², h ~ CN(0,1) — the paper's small-scale model.
	FadingRayleigh
)

// ChannelModel samples channel gains between clients and the server.
// It is safe for concurrent use.
type ChannelModel struct {
	noisePSD float64
	fading   Fading

	mu  sync.Mutex
	rng *rand.Rand
}

// NewChannelModel builds a model with the given noise PSD (W/Hz; ≤0 selects
// DefaultNoisePSDWHz), fading type and RNG seed (0 selects a fixed default
// seed, keeping simulations reproducible).
func NewChannelModel(noisePSD float64, fading Fading, seed int64) *ChannelModel {
	if noisePSD <= 0 {
		noisePSD = DefaultNoisePSDWHz
	}
	if fading != FadingRayleigh {
		fading = FadingNone
	}
	if seed == 0 {
		seed = 1
	}
	return &ChannelModel{noisePSD: noisePSD, fading: fading, rng: rand.New(rand.NewSource(seed))}
}

// NoisePSD returns the model's noise power spectral density in W/Hz.
func (m *ChannelModel) NoisePSD() float64 { return m.noisePSD }

// SampleGain draws the linear power gain g_n for a client at distance dKm:
// path loss, times an Exp(1) Rayleigh power coefficient when enabled.
func (m *ChannelModel) SampleGain(dKm float64) float64 {
	g := DBToLinear(-PathLossDB(dKm))
	if m.fading == FadingRayleigh {
		m.mu.Lock()
		h2 := m.rng.ExpFloat64()
		m.mu.Unlock()
		g *= h2
	}
	return g
}

// SampleDiskDistanceKm draws a client-server distance (in km) uniform over a
// disk of the given radius in metres, the paper's circular topology of
// radius 1000 m. Distances below 10 m are redrawn as 10 m to avoid the
// near-field singularity of the path-loss model.
func (m *ChannelModel) SampleDiskDistanceKm(radiusM float64) float64 {
	m.mu.Lock()
	u := m.rng.Float64()
	m.mu.Unlock()
	d := radiusM * math.Sqrt(u)
	if d < 10 {
		d = 10
	}
	return d / 1000
}

// ShannonRate returns the uplink rate of Eq. (10):
//
//	r = b·log2(1 + p·g/(N0·b))   [bits/s]
//
// It is 0 when bandwidth or power is non-positive. The rate is jointly
// concave in (b, p), the property Stage 3's convexity argument relies on.
func ShannonRate(bHz, pW, gain, noisePSD float64) float64 {
	if bHz <= 0 || pW <= 0 || gain <= 0 || noisePSD <= 0 {
		return 0
	}
	return bHz * math.Log2(1+pW*gain/(noisePSD*bHz))
}

// TxDelay returns Eq. (11): bits/rate, or +Inf at zero rate.
func TxDelay(bits, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return bits / rate
}

// TxEnergy returns Eq. (12): transmit power times transmission delay.
func TxEnergy(pW, delay float64) float64 { return pW * delay }

// FDMAPool tracks FDMA sub-band reservations against a total bandwidth
// budget (Constraint 17f). It is safe for concurrent use by the edge server.
type FDMAPool struct {
	mu       sync.Mutex
	total    float64
	reserved map[string]float64
}

// NewFDMAPool creates a pool with the given total bandwidth in Hz.
func NewFDMAPool(totalHz float64) (*FDMAPool, error) {
	if totalHz <= 0 {
		return nil, fmt.Errorf("wireless: total bandwidth must be positive, got %g", totalHz)
	}
	return &FDMAPool{total: totalHz, reserved: make(map[string]float64)}, nil
}

// Total returns the pool's total bandwidth in Hz.
func (p *FDMAPool) Total() float64 { return p.total }

// Available returns the unreserved bandwidth in Hz.
func (p *FDMAPool) Available() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.available()
}

func (p *FDMAPool) available() float64 {
	used := 0.0
	for _, b := range p.reserved {
		used += b
	}
	return p.total - used
}

// Reserve books bandwidth for a client, replacing any previous reservation
// under the same ID. It fails without side effects when the pool would
// overflow.
func (p *FDMAPool) Reserve(id string, bHz float64) error {
	if bHz <= 0 {
		return fmt.Errorf("wireless: reservation must be positive, got %g", bHz)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	prev := p.reserved[id]
	if p.available()+prev < bHz {
		return fmt.Errorf("wireless: cannot reserve %g Hz for %q: only %g Hz available", bHz, id, p.available()+prev)
	}
	p.reserved[id] = bHz
	return nil
}

// Release frees a client's reservation; releasing an unknown ID is a no-op.
func (p *FDMAPool) Release(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.reserved, id)
}

// Reservation returns the bandwidth currently reserved for id (0 if none).
func (p *FDMAPool) Reservation(id string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reserved[id]
}

// EvenSplit reserves total/n for each of the given IDs, releasing all prior
// reservations first. It implements the AA/OLAA baselines' bandwidth rule.
func (p *FDMAPool) EvenSplit(ids []string) error {
	if len(ids) == 0 {
		return fmt.Errorf("wireless: EvenSplit needs at least one client")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reserved = make(map[string]float64, len(ids))
	share := p.total / float64(len(ids))
	for _, id := range ids {
		p.reserved[id] = share
	}
	return nil
}
