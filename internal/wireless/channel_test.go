package wireless

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestPathLossDB(t *testing.T) {
	// At 1 km the model gives exactly 128.1 dB.
	if got := PathLossDB(1); math.Abs(got-128.1) > 1e-12 {
		t.Errorf("PathLossDB(1km) = %v, want 128.1", got)
	}
	// Each decade adds 37.6 dB.
	if got := PathLossDB(10) - PathLossDB(1); math.Abs(got-37.6) > 1e-9 {
		t.Errorf("decade slope = %v, want 37.6", got)
	}
	// Tiny distances are floored, not −Inf.
	if got := PathLossDB(0); math.IsInf(got, -1) || math.IsNaN(got) {
		t.Errorf("PathLossDB(0) = %v", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if got := DBToLinear(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("DBToLinear(30) = %v, want 1000", got)
	}
	if got := LinearToDB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("LinearToDB(100) = %v, want 20", got)
	}
	if got := DBmToWatts(30); math.Abs(got-1) > 1e-12 {
		t.Errorf("DBmToWatts(30) = %v, want 1 W", got)
	}
	if got := DBmToWatts(-174); math.Abs(got-DefaultNoisePSDWHz) > 1e-30 {
		t.Errorf("DBmToWatts(-174) = %v, want %v", got, DefaultNoisePSDWHz)
	}
}

func TestShannonRateBasics(t *testing.T) {
	// SNR = p·g/(N0·b) = 1 → rate = b·log2(2) = b.
	b := 1e6
	n0 := 1e-15
	p := 1.0
	g := n0 * b / p
	if got := ShannonRate(b, p, g, n0); math.Abs(got-b) > 1e-6 {
		t.Errorf("ShannonRate = %v, want %v", got, b)
	}
	if ShannonRate(0, 1, 1, 1) != 0 || ShannonRate(1, 0, 1, 1) != 0 {
		t.Error("zero bandwidth/power should give zero rate")
	}
}

func TestShannonRateMonotone(t *testing.T) {
	g := DBToLinear(-128.1)
	n0 := DefaultNoisePSDWHz
	r1 := ShannonRate(1e6, 0.1, g, n0)
	r2 := ShannonRate(1e6, 0.2, g, n0)
	if r2 <= r1 {
		t.Errorf("rate not increasing in power: %v vs %v", r1, r2)
	}
	r3 := ShannonRate(2e6, 0.1, g, n0)
	if r3 <= r1 {
		t.Errorf("rate not increasing in bandwidth: %v vs %v", r1, r3)
	}
}

// Property: the rate is jointly concave in (b, p) — midpoint concavity on
// random pairs. Stage 3's convexity argument depends on this.
func TestShannonRateJointlyConcave(t *testing.T) {
	g := DBToLinear(-128.1)
	n0 := DefaultNoisePSDWHz
	f := func(rawB1, rawP1, rawB2, rawP2 float64) bool {
		b1 := 1e4 + math.Abs(math.Mod(rawB1, 1))*1e7
		b2 := 1e4 + math.Abs(math.Mod(rawB2, 1))*1e7
		p1 := 1e-3 + math.Abs(math.Mod(rawP1, 1))
		p2 := 1e-3 + math.Abs(math.Mod(rawP2, 1))
		mid := ShannonRate((b1+b2)/2, (p1+p2)/2, g, n0)
		avg := (ShannonRate(b1, p1, g, n0) + ShannonRate(b2, p2, g, n0)) / 2
		return mid >= avg-1e-6*math.Abs(avg)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTxDelayEnergy(t *testing.T) {
	if got := TxDelay(1e9, 1e6); got != 1000 {
		t.Errorf("TxDelay = %v, want 1000", got)
	}
	if !math.IsInf(TxDelay(1, 0), 1) {
		t.Error("zero rate should give infinite delay")
	}
	if got := TxEnergy(0.2, 1000); got != 200 {
		t.Errorf("TxEnergy = %v, want 200", got)
	}
}

func TestChannelModelGainNoFading(t *testing.T) {
	m := NewChannelModel(0, FadingNone, 0)
	want := DBToLinear(-PathLossDB(1))
	if got := m.SampleGain(1); math.Abs(got-want) > 1e-18 {
		t.Errorf("SampleGain = %v, want %v", got, want)
	}
	if m.NoisePSD() != DefaultNoisePSDWHz {
		t.Errorf("NoisePSD = %v, want default", m.NoisePSD())
	}
}

func TestChannelModelRayleighMean(t *testing.T) {
	m := NewChannelModel(0, FadingRayleigh, 99)
	base := DBToLinear(-PathLossDB(1))
	var sum float64
	const samples = 20000
	for i := 0; i < samples; i++ {
		sum += m.SampleGain(1)
	}
	mean := sum / samples
	// E|h|² = 1 → mean gain = path-loss gain, within Monte-Carlo error.
	if math.Abs(mean-base)/base > 0.05 {
		t.Errorf("Rayleigh mean gain = %v, want ≈ %v", mean, base)
	}
}

func TestSampleDiskDistance(t *testing.T) {
	m := NewChannelModel(0, FadingRayleigh, 5)
	var maxD, sum float64
	const samples = 5000
	for i := 0; i < samples; i++ {
		d := m.SampleDiskDistanceKm(1000)
		if d <= 0 || d > 1.0 {
			t.Fatalf("distance %v outside (0, 1] km", d)
		}
		if d > maxD {
			maxD = d
		}
		sum += d
	}
	// Uniform over a disk: E[r] = 2R/3 ≈ 0.667 km.
	if mean := sum / samples; math.Abs(mean-2.0/3) > 0.02 {
		t.Errorf("mean distance = %v, want ≈ 0.667", mean)
	}
	if maxD < 0.9 {
		t.Errorf("max distance = %v, expected close to 1.0", maxD)
	}
}

func TestChannelModelConcurrentUse(t *testing.T) {
	m := NewChannelModel(0, FadingRayleigh, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if g := m.SampleGain(0.5); g < 0 || math.IsNaN(g) {
					t.Errorf("bad gain %v", g)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFDMAPool(t *testing.T) {
	p, err := NewFDMAPool(10e6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 10e6 || p.Available() != 10e6 {
		t.Errorf("fresh pool: total %v available %v", p.Total(), p.Available())
	}
	if err := p.Reserve("a", 6e6); err != nil {
		t.Fatalf("Reserve a: %v", err)
	}
	if err := p.Reserve("b", 6e6); err == nil {
		t.Error("over-reservation accepted")
	}
	if err := p.Reserve("b", 4e6); err != nil {
		t.Fatalf("Reserve b: %v", err)
	}
	if p.Available() != 0 {
		t.Errorf("Available = %v, want 0", p.Available())
	}
	// Re-reserving the same ID replaces, not adds.
	if err := p.Reserve("a", 5e6); err != nil {
		t.Fatalf("re-Reserve a: %v", err)
	}
	if got := p.Reservation("a"); got != 5e6 {
		t.Errorf("Reservation(a) = %v, want 5e6", got)
	}
	p.Release("a")
	if got := p.Reservation("a"); got != 0 {
		t.Errorf("after Release, Reservation(a) = %v", got)
	}
	p.Release("missing") // no-op
	if err := p.Reserve("c", -1); err == nil {
		t.Error("negative reservation accepted")
	}
}

func TestFDMAPoolEvenSplit(t *testing.T) {
	p, err := NewFDMAPool(12e6)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"n1", "n2", "n3"}
	if err := p.EvenSplit(ids); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if got := p.Reservation(id); got != 4e6 {
			t.Errorf("Reservation(%s) = %v, want 4e6", id, got)
		}
	}
	if err := p.EvenSplit(nil); err == nil {
		t.Error("empty EvenSplit accepted")
	}
}

func TestFDMAPoolConcurrent(t *testing.T) {
	p, err := NewFDMAPool(1e6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := string(rune('a' + id))
			for j := 0; j < 200; j++ {
				if err := p.Reserve(name, 1e5); err == nil {
					p.Release(name)
				}
			}
		}(i)
	}
	wg.Wait()
	// Pool must be consistent: nothing should remain over-reserved.
	if avail := p.Available(); avail < 0 || avail > 1e6 {
		t.Errorf("Available = %v after concurrent churn", avail)
	}
}

func TestNewFDMAPoolInvalid(t *testing.T) {
	if _, err := NewFDMAPool(0); err == nil {
		t.Error("zero-bandwidth pool accepted")
	}
}
