package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPaperConfigValid(t *testing.T) {
	c := PaperConfig(1)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.N() != 6 {
		t.Errorf("N = %d, want 6", c.N())
	}
	if len(c.LambdaSet) != 3 || c.LambdaSet[0] != 32768 || c.LambdaSet[2] != 131072 {
		t.Errorf("LambdaSet = %v", c.LambdaSet)
	}
}

func TestPaperConfigSeedDeterminism(t *testing.T) {
	a := PaperConfig(7)
	b := PaperConfig(7)
	c := PaperConfig(8)
	for i := range a.Gains {
		if a.Gains[i] != b.Gains[i] {
			t.Fatalf("same seed produced different gains at %d", i)
		}
	}
	same := true
	for i := range a.Gains {
		if a.Gains[i] != c.Gains[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical gains")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"nil net", func(c *Config) { c.Net = nil }, "nil network"},
		{"short phimin", func(c *Config) { c.PhiMin = c.PhiMin[:2] }, "PhiMin"},
		{"negative pmax", func(c *Config) { c.PMax[0] = -1 }, "PMax"},
		{"zero gain", func(c *Config) { c.Gains[3] = 0 }, "Gains"},
		{"empty lambda", func(c *Config) { c.LambdaSet = nil }, "LambdaSet"},
		{"unsorted lambda", func(c *Config) { c.LambdaSet = []float64{2, 1} }, "ascending"},
		{"zero alpha", func(c *Config) { c.AlphaT = 0 }, "AlphaT"},
		{"nan btotal", func(c *Config) { c.BTotal = math.NaN() }, "BTotal"},
		{"infeasible phimin", func(c *Config) {
			for i := range c.PhiMin {
				c.PhiMin[i] = 1e6
			}
		}, "link capacities"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := PaperConfig(1)
			tt.mutate(c)
			err := c.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	a := PaperConfig(1)
	b := a.Clone()
	b.PMax[0] = 99
	b.BTotal = 1
	if a.PMax[0] == 99 || a.BTotal == 1 {
		t.Error("Clone shares state with original")
	}
}

func TestDefaultVariablesFeasible(t *testing.T) {
	c := PaperConfig(1)
	v, err := c.DefaultVariables()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckFeasible(v, 1e-9); err != nil {
		t.Errorf("default variables infeasible: %v", err)
	}
}

func TestSampleVariablesFeasible(t *testing.T) {
	c := PaperConfig(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		v, err := c.SampleVariables(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckFeasible(v, 1e-9); err != nil {
			t.Errorf("sample %d infeasible: %v", i, err)
		}
	}
}

func TestEvaluateConsistency(t *testing.T) {
	c := PaperConfig(1)
	v, err := c.DefaultVariables()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := c.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	want := c.AlphaQKD*ev.UQKD + c.AlphaMSL*ev.UMSL - c.AlphaT*ev.Delay - c.AlphaE*ev.Energy
	if math.Abs(ev.Objective-want) > 1e-12 {
		t.Errorf("Objective = %v, want recomposed %v", ev.Objective, want)
	}
	maxD := 0.0
	sumE := 0.0
	for i := range ev.PerClientDelay {
		if ev.PerClientDelay[i] > maxD {
			maxD = ev.PerClientDelay[i]
		}
		sumE += ev.PerClientEnergy[i]
	}
	if ev.Delay != maxD {
		t.Errorf("Delay = %v, max per-client = %v", ev.Delay, maxD)
	}
	if math.Abs(ev.Energy-sumE) > 1e-9 {
		t.Errorf("Energy = %v, sum per-client = %v", ev.Energy, sumE)
	}
}

func TestEvaluateDimensionErrors(t *testing.T) {
	c := PaperConfig(1)
	v, err := c.DefaultVariables()
	if err != nil {
		t.Fatal(err)
	}
	bad := v.Clone()
	bad.P = bad.P[:2]
	if _, err := c.Evaluate(bad); err == nil {
		t.Error("short P accepted")
	}
	bad = v.Clone()
	bad.W = bad.W[:3]
	if _, err := c.Evaluate(bad); err == nil {
		t.Error("short W accepted")
	}
}

func TestCheckFeasibleViolations(t *testing.T) {
	c := PaperConfig(1)
	base, err := c.DefaultVariables()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Variables)
		want   string
	}{
		{"phi below min", func(v *Variables) { v.Phi[0] = c.PhiMin[0] / 2 }, "(17a)"},
		{"werner above one", func(v *Variables) { v.W[0] = 1.5 }, "(17b)"},
		{"load above capacity", func(v *Variables) { v.W[16] = 0.9999999 }, "(17c)"},
		{"bad lambda", func(v *Variables) { v.Lambda[0] = 12345 }, "(17d)"},
		{"power above max", func(v *Variables) { v.P[0] = c.PMax[0] * 2 }, "(17e)"},
		{"bandwidth over budget", func(v *Variables) { v.B[0] = c.BTotal }, "(17f)"},
		{"client cpu over max", func(v *Variables) { v.FC[0] = c.FCMax[0] * 2 }, "(17g)"},
		{"server cpu over budget", func(v *Variables) { v.FS[0] = c.FSTotal }, "(17h)"},
		{"delay above T", func(v *Variables) { v.T = 1e-6 }, "(17i)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := base.Clone()
			tt.mutate(&v)
			err := c.CheckFeasible(v, 1e-9)
			if err == nil {
				t.Fatal("violation not detected")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestVariablesCloneDeep(t *testing.T) {
	c := PaperConfig(1)
	v, err := c.DefaultVariables()
	if err != nil {
		t.Fatal(err)
	}
	dup := v.Clone()
	dup.Phi[0] = 999
	dup.W[0] = 0.1
	if v.Phi[0] == 999 || v.W[0] == 0.1 {
		t.Error("Clone shares slices")
	}
}
