package core

import (
	"fmt"
	"math"
	"time"

	"quhe/internal/mathutil"
	"quhe/internal/optimize"
	"quhe/internal/qnet"
)

// Stage1Method selects the solver for Stage 1 (Problem P2/P3).
type Stage1Method int

const (
	// Stage1Barrier is the QuHE Stage-1 solver: the convexified log-rate
	// problem P3 solved by the interior-point method (Algorithm 1).
	Stage1Barrier Stage1Method = iota + 1
	// Stage1GD is the paper's gradient-descent baseline (learning rate
	// 0.01, §VI-B), run directly on the rates φ.
	Stage1GD
	// Stage1SA is the simulated-annealing baseline (simulannealbnd).
	Stage1SA
	// Stage1RS is the random-selection baseline: 10⁴ uniform samples.
	Stage1RS
	// Stage1ProjGrad is an ablation solver: projected gradient descent
	// with line search on the penalized rate objective (between the
	// barrier method and the fixed-step GD baseline in sophistication).
	Stage1ProjGrad
)

// String implements fmt.Stringer with the labels used in Fig. 5(b)/(c).
func (m Stage1Method) String() string {
	switch m {
	case Stage1Barrier:
		return "QuHE"
	case Stage1GD:
		return "GD"
	case Stage1SA:
		return "SA"
	case Stage1RS:
		return "RS"
	case Stage1ProjGrad:
		return "ProjGrad"
	default:
		return fmt.Sprintf("Stage1Method(%d)", int(m))
	}
}

// Stage1Options tunes the Stage-1 solvers. The zero value uses defaults.
type Stage1Options struct {
	// Method selects the solver; default Stage1Barrier.
	Method Stage1Method
	// Seed seeds the stochastic baselines (SA, RS); 0 means fixed default.
	Seed int64
	// GDIters, SAIters, RSSamples override baseline budgets when positive.
	GDIters   int
	SAIters   int
	RSSamples int
}

// Stage1Result reports a Stage-1 solve.
type Stage1Result struct {
	// Phi and W are the rate allocation and the Eq. (18) Werner point.
	Phi, W []float64
	// Objective is the minimized P2 objective (19):
	// −Σ ln F_skf(̟_n) − ln α_qkd − Σ ln φ_n. Lower is better; Fig. 5(c)
	// reports this value per method.
	Objective float64
	// UQKD is the resulting network utility (6).
	UQKD float64
	// Iters counts solver iterations; Trace is the per-iteration objective
	// (Fig. 4(a)).
	Iters int
	Trace []float64
	// Runtime is the wall-clock solve time (Fig. 5(b)).
	Runtime time.Duration
	// Converged reports solver-specific convergence.
	Converged bool
}

// stage1Objective evaluates the P2 objective (19) at rates phi, returning
// +Inf outside the feasible region. It is shared by all four solvers (the
// baselines work on φ directly; the barrier works on ϕ = ln φ).
func (c *Config) stage1Objective(phi []float64) float64 {
	for i, p := range phi {
		if p < c.PhiMin[i] || math.IsNaN(p) {
			return math.Inf(1)
		}
	}
	if !c.Net.FeasibleRates(phi) {
		return math.Inf(1)
	}
	w, err := c.Net.WernerFromRates(phi)
	if err != nil {
		return math.Inf(1)
	}
	s := math.Log(c.AlphaQKD)
	for r := range phi {
		wr, err := c.Net.EndToEndWerner(r, w)
		if err != nil {
			return math.Inf(1)
		}
		f := qnet.SecretKeyFraction(wr)
		if f <= 0 {
			return math.Inf(1)
		}
		s += math.Log(phi[r]) + math.Log(f)
	}
	return -s
}

// stage1Penalized is the finite-everywhere merit function used by the
// gradient-descent baseline: the P2 objective inside the feasible region and
// a linear penalty outside it, so fixed-step GD can recover from infeasible
// excursions instead of seeing an infinite cliff.
func (c *Config) stage1Penalized(phi []float64) float64 {
	const (
		penaltyBase  = 1e3
		penaltyScale = 1e3
	)
	viol := 0.0
	for i, p := range phi {
		if p < c.PhiMin[i] {
			viol += c.PhiMin[i] - p
		}
	}
	loads, err := c.Net.LinkLoads(phi)
	if err != nil {
		return math.Inf(1)
	}
	for l, load := range loads {
		if beta := c.Net.Link(l).Beta; load >= beta {
			viol += load/beta - 1 + 1e-6
		}
	}
	if viol == 0 {
		w, err := c.Net.WernerFromRates(phi)
		if err != nil {
			return math.Inf(1)
		}
		for r := range phi {
			wr, err := c.Net.EndToEndWerner(r, w)
			if err != nil {
				return math.Inf(1)
			}
			if wr <= qnet.WernerZeroSKF {
				viol += qnet.WernerZeroSKF - wr + 1e-6
			}
		}
	}
	if viol > 0 {
		return penaltyBase + penaltyScale*viol
	}
	return c.stage1Objective(phi)
}

// SolveStage1 runs Algorithm 1 (or a baseline) and returns the optimal
// (φ, w) block. The barrier path optimizes over ϕ = ln φ, in which P3 is
// convex (Kar & Wehner), with constraints (20a)–(20c).
func (c *Config) SolveStage1(opts Stage1Options) (Stage1Result, error) {
	if opts.Method == 0 {
		opts.Method = Stage1Barrier
	}
	start := time.Now()
	var res Stage1Result
	var err error
	switch opts.Method {
	case Stage1Barrier:
		res, err = c.solveStage1Barrier()
	case Stage1GD, Stage1SA, Stage1RS, Stage1ProjGrad:
		res, err = c.solveStage1Heuristic(opts)
	default:
		return res, fmt.Errorf("core: unknown stage-1 method %d", int(opts.Method))
	}
	if err != nil {
		return res, err
	}
	res.Runtime = time.Since(start)
	res.W, err = c.Net.WernerFromRates(res.Phi)
	if err != nil {
		return res, err
	}
	res.UQKD, err = c.Net.Utility(res.Phi, res.W)
	if err != nil {
		return res, err
	}
	return res, nil
}

func (c *Config) solveStage1Barrier() (Stage1Result, error) {
	var res Stage1Result
	n := c.N()

	// Objective in ϕ-space: P3 (20).
	phiOf := func(x []float64) []float64 {
		phi := make([]float64, n)
		for i := range x {
			phi[i] = math.Exp(x[i])
		}
		return phi
	}
	f0 := func(x []float64) float64 { return c.stage1Objective(phiOf(x)) }

	var ineqs []optimize.Ineq
	// (20a): ϕ_n ≥ ln φ_min — linear in ϕ-space.
	for i := 0; i < n; i++ {
		ineqs = append(ineqs, optimize.BoundIneq(n, i, -1, math.Log(c.PhiMin[i])))
	}
	// (20b): Σ a_ln e^{ϕ_n} < β_l for every used link, normalized by β_l so
	// all barrier terms share a scale.
	for l := 0; l < c.Net.NumLinks(); l++ {
		used := false
		for r := 0; r < n; r++ {
			if c.Net.Uses(r, l) {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		l := l
		beta := c.Net.Link(l).Beta
		ineqs = append(ineqs, optimize.FuncIneq(func(x []float64) float64 {
			load := 0.0
			for r := 0; r < n; r++ {
				if c.Net.Uses(r, l) {
					load += math.Exp(x[r])
				}
			}
			return load/beta - 1
		}))
	}
	// (20c): ̟_n > WernerZeroSKF for every route. A small margin keeps the
	// objective's own log term finite strictly inside the region.
	for r := 0; r < n; r++ {
		r := r
		ineqs = append(ineqs, optimize.FuncIneq(func(x []float64) float64 {
			w, err := c.Net.WernerFromRates(phiOf(x))
			if err != nil {
				return 1
			}
			wr, err := c.Net.EndToEndWerner(r, w)
			if err != nil {
				return 1
			}
			return qnet.WernerZeroSKF*(1+1e-9) - wr
		}))
	}

	// Strictly feasible start: φ slightly above the minimum.
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = math.Log(c.PhiMin[i] * 1.05)
	}
	if f0(x0) == math.Inf(1) {
		return res, fmt.Errorf("core: stage 1 start infeasible (PhiMin too aggressive)")
	}
	bres, err := optimize.MinimizeBarrier(f0, ineqs, x0, optimize.BarrierOptions{Tol: 1e-7})
	if err != nil {
		return res, fmt.Errorf("core: stage 1 barrier: %w", err)
	}
	res.Phi = phiOf(bres.X)
	res.Objective = bres.Value
	res.Iters = bres.NewtonIters
	res.Trace = bres.Values
	res.Converged = bres.Converged
	return res, nil
}

func (c *Config) solveStage1Heuristic(opts Stage1Options) (Stage1Result, error) {
	var res Stage1Result
	n := c.N()
	box := c.stage1Box()
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = c.PhiMin[i] * 1.05
	}
	f := c.stage1Objective

	switch opts.Method {
	case Stage1GD:
		iters := opts.GDIters
		if iters <= 0 {
			iters = 200000
		}
		r, err := optimize.GradientDescent(c.stage1Penalized, box, x0, optimize.GDOptions{LearningRate: 0.01, MaxIter: iters, Tol: 1e-12})
		if err != nil {
			return res, fmt.Errorf("core: stage 1 GD: %w", err)
		}
		res.Phi, res.Objective, res.Iters, res.Trace, res.Converged = r.X, r.Value, r.Iters, r.Values, r.Converged
	case Stage1SA:
		iters := opts.SAIters
		if iters <= 0 {
			iters = 150000
		}
		r, err := optimize.Anneal(f, box, x0, optimize.SAOptions{Iters: iters, Seed: opts.Seed, StepFrac: 0.05})
		if err != nil {
			return res, fmt.Errorf("core: stage 1 SA: %w", err)
		}
		res.Phi, res.Objective, res.Iters, res.Trace, res.Converged = r.X, r.Value, r.Iters, r.Values, r.Converged
	case Stage1ProjGrad:
		r, err := optimize.MinimizeProjGrad(c.stage1Penalized, box, x0, optimize.PGOptions{MaxIter: 2000, Tol: 1e-10})
		if err != nil {
			return res, fmt.Errorf("core: stage 1 projected gradient: %w", err)
		}
		res.Phi, res.Objective, res.Iters, res.Trace, res.Converged = r.X, r.Value, r.Iters, r.Values, r.Converged
	case Stage1RS:
		samples := opts.RSSamples
		if samples <= 0 {
			samples = 10000 // the paper's 10⁴ uniform draws
		}
		// The paper's RS baseline samples "uniformly from the feasible
		// space"; use the largest axis-aligned box that is feasible at its
		// worst corner, so every draw is admissible.
		r, err := optimize.RandomSearch(f, c.stage1FeasibleBox(), optimize.RSOptions{Samples: samples, Seed: opts.Seed})
		if err != nil {
			return res, fmt.Errorf("core: stage 1 RS: %w", err)
		}
		res.Phi, res.Objective, res.Iters, res.Trace, res.Converged = r.X, r.Value, r.Iters, r.Values, r.Converged
	}
	return res, nil
}

// stage1FeasibleBox returns [φ_min, φ_min + τ] with the largest uniform
// increment τ whose upper corner still satisfies every Stage-1 constraint.
// The constraints are monotone in each rate (loads grow, end-to-end Werner
// parameters shrink), so corner feasibility implies the whole box is
// feasible — every uniform sample from it is admissible.
func (c *Config) stage1FeasibleBox() optimize.Box {
	n := c.N()
	corner := func(tau float64) []float64 {
		phi := make([]float64, n)
		for i := range phi {
			phi[i] = c.PhiMin[i] + tau
		}
		return phi
	}
	feasible := func(tau float64) bool {
		return !math.IsInf(c.stage1Objective(corner(tau)), 1)
	}
	lo, hi := 0.0, 1.0
	for feasible(hi) {
		lo = hi
		hi *= 2
		if hi > 1e6 {
			break
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	tau := lo * 0.999 // stay strictly inside
	return optimize.Box{Lo: mathutil.Clone(c.PhiMin), Hi: corner(tau)}
}

// stage1Box bounds φ for the heuristic baselines: [φ_min, route bottleneck
// capacity], the smallest β over the route's links (the rate a route could
// sustain if it had its bottleneck to itself).
func (c *Config) stage1Box() optimize.Box {
	n := c.N()
	lo := mathutil.Clone(c.PhiMin)
	hi := make([]float64, n)
	for r := 0; r < n; r++ {
		bottleneck := math.Inf(1)
		for l := 0; l < c.Net.NumLinks(); l++ {
			if c.Net.Uses(r, l) && c.Net.Link(l).Beta < bottleneck {
				bottleneck = c.Net.Link(l).Beta
			}
		}
		hi[r] = bottleneck
	}
	return optimize.Box{Lo: lo, Hi: hi}
}
