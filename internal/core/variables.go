package core

import (
	"fmt"
	"math/rand"

	"quhe/internal/costmodel"
	"quhe/internal/mathutil"
	"quhe/internal/qnet"
	"quhe/internal/wireless"
)

// Variables is a complete assignment of P1's optimization variables
// (φ, w, λ, p, b, f_c, f_s, T).
type Variables struct {
	// Phi is the entanglement rate per route (pairs/s).
	Phi []float64
	// W is the Werner parameter per link.
	W []float64
	// Lambda is the CKKS polynomial degree per client (values from
	// Config.LambdaSet, carried as float64).
	Lambda []float64
	// P is the transmit power per client (W).
	P []float64
	// B is the allocated bandwidth per client (Hz).
	B []float64
	// FC is the client CPU frequency per client (Hz).
	FC []float64
	// FS is the server CPU share per client (Hz).
	FS []float64
	// T is the auxiliary delay bound (s); Evaluate recomputes the true
	// maximum delay, so T only matters inside the solver stages.
	T float64
}

// Clone returns a deep copy.
func (v Variables) Clone() Variables {
	return Variables{
		Phi:    mathutil.Clone(v.Phi),
		W:      mathutil.Clone(v.W),
		Lambda: mathutil.Clone(v.Lambda),
		P:      mathutil.Clone(v.P),
		B:      mathutil.Clone(v.B),
		FC:     mathutil.Clone(v.FC),
		FS:     mathutil.Clone(v.FS),
		T:      v.T,
	}
}

// Evaluation decomposes the objective (17) at a variable assignment.
type Evaluation struct {
	// UQKD is the QKD network utility (6).
	UQKD float64
	// UMSL is the weighted minimum security level (9).
	UMSL float64
	// Delay is T_total (15): the maximum per-client end-to-end delay.
	Delay float64
	// Energy is E_total (16).
	Energy float64
	// Objective is α_qkd·U_qkd + α_msl·U_msl − α_t·Delay − α_e·Energy.
	Objective float64
	// PerClientDelay and PerClientEnergy break the costs down (15)–(16).
	PerClientDelay  []float64
	PerClientEnergy []float64
}

// Rate returns client n's uplink Shannon rate (10) at power p and
// bandwidth b.
func (c *Config) Rate(n int, p, b float64) float64 {
	return wireless.ShannonRate(b, p, c.Gains[n], c.NoisePSD)
}

// ClientDelay returns T_enc + T_tr + T_cmp for client n (the left side of
// Constraint 17i).
func (c *Config) ClientDelay(n int, lambda, p, b, fc, fs float64) float64 {
	enc := costmodel.EncryptionDelay(c.SECycles[n], fc)
	tr := wireless.TxDelay(c.DTrBits[n], c.Rate(n, p, b))
	cmp := costmodel.ComputeDelay(lambda, c.DCmpTokens[n], c.TokensPerSample[n], fs)
	return enc + tr + cmp
}

// ClientEnergy returns E_enc + E_tr + E_cmp for client n.
func (c *Config) ClientEnergy(n int, lambda, p, b, fc, fs float64) float64 {
	enc := costmodel.EncryptionEnergy(c.KappaClient[n], c.SECycles[n], fc)
	tr := wireless.TxEnergy(p, wireless.TxDelay(c.DTrBits[n], c.Rate(n, p, b)))
	cmp := costmodel.ComputeEnergy(c.KappaServer, lambda, c.DCmpTokens[n], c.TokensPerSample[n], fs)
	return enc + tr + cmp
}

// Evaluate computes the decomposed objective (17) at v. The reported
// Objective uses the true maximum delay (15), not v.T.
func (c *Config) Evaluate(v Variables) (Evaluation, error) {
	var ev Evaluation
	n := c.N()
	for _, f := range []struct {
		name string
		l    int
	}{
		{"Phi", len(v.Phi)}, {"Lambda", len(v.Lambda)}, {"P", len(v.P)},
		{"B", len(v.B)}, {"FC", len(v.FC)}, {"FS", len(v.FS)},
	} {
		if f.l != n {
			return ev, fmt.Errorf("core: %s has %d entries for %d clients", f.name, f.l, n)
		}
	}
	if len(v.W) != c.Net.NumLinks() {
		return ev, fmt.Errorf("core: W has %d entries for %d links", len(v.W), c.Net.NumLinks())
	}

	uq, err := c.Net.Utility(v.Phi, v.W)
	if err != nil {
		return ev, err
	}
	ev.UQKD = uq
	ev.UMSL, err = costmodel.WeightedSecurity(c.SecurityWeights, v.Lambda)
	if err != nil {
		return ev, err
	}
	ev.PerClientDelay = make([]float64, n)
	ev.PerClientEnergy = make([]float64, n)
	for i := 0; i < n; i++ {
		ev.PerClientDelay[i] = c.ClientDelay(i, v.Lambda[i], v.P[i], v.B[i], v.FC[i], v.FS[i])
		ev.PerClientEnergy[i] = c.ClientEnergy(i, v.Lambda[i], v.P[i], v.B[i], v.FC[i], v.FS[i])
	}
	ev.Delay = costmodel.TotalDelay(ev.PerClientDelay)
	ev.Energy = costmodel.TotalEnergy(ev.PerClientEnergy)
	ev.Objective = c.AlphaQKD*ev.UQKD + c.AlphaMSL*ev.UMSL - c.AlphaT*ev.Delay - c.AlphaE*ev.Energy
	return ev, nil
}

// CheckFeasible verifies every constraint of P1 (17a)–(17i) at v, returning
// a descriptive error for the first violation. tol is an absolute/relative
// slack for the budget constraints (pass 0 for exact checking).
func (c *Config) CheckFeasible(v Variables, tol float64) error {
	n := c.N()
	for i := 0; i < n; i++ {
		if v.Phi[i] < c.PhiMin[i]-tol {
			return fmt.Errorf("core: (17a) φ[%d] = %g < min %g", i, v.Phi[i], c.PhiMin[i])
		}
		if v.P[i] > c.PMax[i]*(1+tol)+tol {
			return fmt.Errorf("core: (17e) p[%d] = %g > max %g", i, v.P[i], c.PMax[i])
		}
		if v.FC[i] > c.FCMax[i]*(1+tol)+tol {
			return fmt.Errorf("core: (17g) f_c[%d] = %g > max %g", i, v.FC[i], c.FCMax[i])
		}
		found := false
		for _, lam := range c.LambdaSet {
			if v.Lambda[i] == lam {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: (17d) λ[%d] = %g not in LambdaSet", i, v.Lambda[i])
		}
	}
	for l, w := range v.W {
		if w <= 0 || w > 1+tol {
			return fmt.Errorf("core: (17b) w[%d] = %g outside (0,1]", l, w)
		}
	}
	loads, err := c.Net.LinkLoads(v.Phi)
	if err != nil {
		return err
	}
	for l, load := range loads {
		capacity := qnet.LinkCapacity(c.Net.Link(l).Beta, v.W[l])
		if load > capacity*(1+tol)+tol {
			return fmt.Errorf("core: (17c) link %d load %g > capacity %g", l+1, load, capacity)
		}
	}
	if s := mathutil.Sum(v.B); s > c.BTotal*(1+tol)+tol {
		return fmt.Errorf("core: (17f) Σb = %g > B_total %g", s, c.BTotal)
	}
	if s := mathutil.Sum(v.FS); s > c.FSTotal*(1+tol)+tol {
		return fmt.Errorf("core: (17h) Σf_s = %g > f_total %g", s, c.FSTotal)
	}
	for i := 0; i < n; i++ {
		d := c.ClientDelay(i, v.Lambda[i], v.P[i], v.B[i], v.FC[i], v.FS[i])
		if d > v.T*(1+tol)+tol {
			return fmt.Errorf("core: (17i) delay[%d] = %g > T %g", i, d, v.T)
		}
	}
	return nil
}

// DefaultVariables returns the deterministic feasible start the QuHE
// algorithm iterates from: minimum-plus-margin entanglement rates with the
// matching Eq. (18) Werner point, the smallest λ, and even resource splits
// at half power.
func (c *Config) DefaultVariables() (Variables, error) {
	n := c.N()
	v := Variables{
		Phi:    make([]float64, n),
		Lambda: make([]float64, n),
		P:      make([]float64, n),
		B:      make([]float64, n),
		FC:     make([]float64, n),
		FS:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		v.Phi[i] = c.PhiMin[i] * 1.2
		v.Lambda[i] = c.LambdaSet[0]
		v.P[i] = c.PMax[i] / 2
		v.B[i] = c.BTotal / float64(n) * 0.9
		v.FC[i] = c.FCMax[i] / 2
		v.FS[i] = c.FSTotal / float64(n) * 0.9
	}
	w, err := c.Net.WernerFromRates(v.Phi)
	if err != nil {
		return v, err
	}
	v.W = w
	v.T = c.maxDelay(v) * 1.5
	return v, nil
}

// SampleVariables draws the random initial configuration used by the
// Fig. 3 optimality study: bandwidth, power and CPU frequencies uniform over
// their feasible boxes (budgets split evenly before scaling), rates at the
// deterministic start.
func (c *Config) SampleVariables(rng *rand.Rand) (Variables, error) {
	v, err := c.DefaultVariables()
	if err != nil {
		return v, err
	}
	n := c.N()
	for i := 0; i < n; i++ {
		v.P[i] = c.PMax[i] * (0.05 + 0.95*rng.Float64())
		v.B[i] = c.BTotal / float64(n) * (0.05 + 0.9*rng.Float64())
		v.FC[i] = c.FCMax[i] * (0.05 + 0.95*rng.Float64())
		v.FS[i] = c.FSTotal / float64(n) * (0.05 + 0.9*rng.Float64())
	}
	v.T = c.maxDelay(v) * 1.5
	return v, nil
}

// maxDelay returns the maximum per-client delay at v (Eq. 15).
func (c *Config) maxDelay(v Variables) float64 {
	m := 0.0
	for i := 0; i < c.N(); i++ {
		if d := c.ClientDelay(i, v.Lambda[i], v.P[i], v.B[i], v.FC[i], v.FS[i]); d > m {
			m = d
		}
	}
	return m
}

// lambdaIndexes maps each client's λ value back to its LambdaSet index.
func (c *Config) lambdaIndexes(lambda []float64) ([]int, error) {
	idx := make([]int, len(lambda))
	for i, lam := range lambda {
		found := -1
		for j, v := range c.LambdaSet {
			if v == lam {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("core: λ[%d] = %g not in LambdaSet", i, lam)
		}
		idx[i] = found
	}
	return idx, nil
}
