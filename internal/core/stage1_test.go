package core

import (
	"math"
	"testing"

	"quhe/internal/mathutil"
	"quhe/internal/qnet"
)

// paperTableV holds the optimal φ the paper reports for QuHE Stage 1
// (Table V). Stage 1 is deterministic given the SURFnet topology, so our
// interior-point solution must match it almost exactly.
var paperTableV = []float64{2.098, 1.106, 1.103, 1.872, 0.6864, 0.5781}

// paperTableVI holds the paper's optimal w values (Table VI).
var paperTableVI = []float64{
	0.9766, 0.9610, 0.9857, 0.9682, 0.9661, 1.0000,
	0.9893, 0.9897, 0.9931, 0.9891, 0.9840, 0.9744,
	0.9759, 0.9851, 0.9611, 0.9866, 0.9646, 0.9600,
}

func TestStage1MatchesPaperTableV(t *testing.T) {
	c := PaperConfig(1)
	res, err := c.SolveStage1(Stage1Options{Method: Stage1Barrier})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range paperTableV {
		if math.Abs(res.Phi[i]-want) > 5e-3 {
			t.Errorf("φ[%d] = %.4f, paper Table V reports %.4f", i+1, res.Phi[i], want)
		}
	}
	// Paper Fig. 5(c): Stage-1 objective 4.58.
	if math.Abs(res.Objective-4.58) > 0.02 {
		t.Errorf("Stage-1 objective = %.4f, paper reports 4.58", res.Objective)
	}
}

func TestStage1MatchesPaperTableVI(t *testing.T) {
	c := PaperConfig(1)
	res, err := c.SolveStage1(Stage1Options{Method: Stage1Barrier})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != len(paperTableVI) {
		t.Fatalf("W has %d entries, want %d", len(res.W), len(paperTableVI))
	}
	for l, want := range paperTableVI {
		if math.Abs(res.W[l]-want) > 5e-3 {
			t.Errorf("w[%d] = %.4f, paper Table VI reports %.4f", l+1, res.W[l], want)
		}
	}
}

func TestStage1SolutionFeasible(t *testing.T) {
	c := PaperConfig(1)
	res, err := c.SolveStage1(Stage1Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Phi {
		if res.Phi[i] < c.PhiMin[i]-1e-9 {
			t.Errorf("φ[%d] = %v below minimum %v", i, res.Phi[i], c.PhiMin[i])
		}
	}
	if !c.Net.FeasibleRates(res.Phi) {
		t.Error("solution violates link capacities")
	}
	for r := range res.Phi {
		wr, err := c.Net.EndToEndWerner(r, res.W)
		if err != nil {
			t.Fatal(err)
		}
		if wr <= qnet.WernerZeroSKF {
			t.Errorf("route %d end-to-end werner %v below SKF threshold", r+1, wr)
		}
	}
}

func TestStage1GDMatchesBarrier(t *testing.T) {
	c := PaperConfig(1)
	barrier, err := c.SolveStage1(Stage1Options{Method: Stage1Barrier})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := c.SolveStage1(Stage1Options{Method: Stage1GD, GDIters: 60000})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 5(c): GD reaches the same objective as QuHE Stage 1
	// (4.58), only much more slowly.
	if gd.Objective < barrier.Objective-1e-6 {
		t.Errorf("GD (%v) beat the barrier (%v): barrier not optimal?", gd.Objective, barrier.Objective)
	}
	if gd.Objective > barrier.Objective+0.05 {
		t.Errorf("GD objective %v too far above barrier %v", gd.Objective, barrier.Objective)
	}
	if gd.Iters <= barrier.Iters {
		t.Errorf("GD used %d iters, barrier %d — expected GD to need far more", gd.Iters, barrier.Iters)
	}
}

func TestStage1BaselineOrdering(t *testing.T) {
	c := PaperConfig(1)
	barrier, err := c.SolveStage1(Stage1Options{Method: Stage1Barrier})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := c.SolveStage1(Stage1Options{Method: Stage1SA, SAIters: 40000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.SolveStage1(Stage1Options{Method: Stage1RS, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5(c) ordering (minimization): QuHE ≤ SA < RS.
	if sa.Objective < barrier.Objective-1e-6 {
		t.Errorf("SA (%v) beat the barrier (%v)", sa.Objective, barrier.Objective)
	}
	if rs.Objective < barrier.Objective-1e-6 {
		t.Errorf("RS (%v) beat the barrier (%v)", rs.Objective, barrier.Objective)
	}
	if rs.Objective <= sa.Objective {
		t.Logf("note: RS (%v) not worse than SA (%v) on this seed", rs.Objective, sa.Objective)
	}
	if rs.Objective < barrier.Objective+0.1 {
		t.Errorf("RS objective %v suspiciously close to optimal %v", rs.Objective, barrier.Objective)
	}
}

func TestStage1UtilityAgreesWithLogObjective(t *testing.T) {
	c := PaperConfig(1)
	res, err := c.SolveStage1(Stage1Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Objective = −ln α_qkd − ln U_qkd, so U_qkd = exp(−obj) at α_qkd=1.
	want := math.Exp(-res.Objective)
	if math.Abs(res.UQKD-want)/want > 1e-6 {
		t.Errorf("UQKD = %v, want exp(−obj) = %v", res.UQKD, want)
	}
}

func TestStage1TraceDecreases(t *testing.T) {
	c := PaperConfig(1)
	res, err := c.SolveStage1(Stage1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 3 {
		t.Fatalf("trace too short: %d", len(res.Trace))
	}
	// The barrier trace is not strictly monotone across re-centerings, but
	// the end must improve on the start (Fig. 4(a) decreasing shape).
	if res.Trace[len(res.Trace)-1] >= res.Trace[0] {
		t.Errorf("trace did not decrease: first %v last %v", res.Trace[0], res.Trace[len(res.Trace)-1])
	}
}

func TestStage1UnknownMethod(t *testing.T) {
	c := PaperConfig(1)
	if _, err := c.SolveStage1(Stage1Options{Method: Stage1Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestStage1MethodString(t *testing.T) {
	tests := []struct {
		m    Stage1Method
		want string
	}{
		{Stage1Barrier, "QuHE"},
		{Stage1GD, "GD"},
		{Stage1SA, "SA"},
		{Stage1RS, "RS"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.m), got, tt.want)
		}
	}
	if got := Stage1Method(42).String(); got != "Stage1Method(42)" {
		t.Errorf("unknown method String = %q", got)
	}
}

func TestStage1PenalizedMatchesObjectiveInside(t *testing.T) {
	c := PaperConfig(1)
	phi := mathutil.Clone(paperTableV)
	if got, want := c.stage1Penalized(phi), c.stage1Objective(phi); got != want {
		t.Errorf("penalized (%v) != raw (%v) at feasible point", got, want)
	}
	// Outside: finite, larger than any feasible value.
	bad := mathutil.Fill(6, 100)
	if got := c.stage1Penalized(bad); math.IsInf(got, 0) || got < 1e3 {
		t.Errorf("penalized at infeasible point = %v, want finite ≥ 1e3", got)
	}
}

// TestStage1ProjGradAblation: the projected-gradient ablation solver must
// reach the barrier optimum (DESIGN.md ablation #3) with a line search,
// faster per-iteration convergence than fixed-step GD.
func TestStage1ProjGradAblation(t *testing.T) {
	c := PaperConfig(1)
	barrier, err := c.SolveStage1(Stage1Options{Method: Stage1Barrier})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := c.SolveStage1(Stage1Options{Method: Stage1ProjGrad})
	if err != nil {
		t.Fatal(err)
	}
	if pg.Objective > barrier.Objective+0.01 {
		t.Errorf("ProjGrad %v too far above barrier %v", pg.Objective, barrier.Objective)
	}
	if pg.Objective < barrier.Objective-1e-6 {
		t.Errorf("ProjGrad (%v) beat the barrier (%v): barrier not optimal?", pg.Objective, barrier.Objective)
	}
	if got := Stage1ProjGrad.String(); got != "ProjGrad" {
		t.Errorf("String = %q", got)
	}
}
