// Package core implements the QuHE paper's contribution: the joint
// utility-cost optimization problem P1 (Eq. 17) over a QKD-enabled,
// homomorphic-encryption edge computing system, and the three-stage
// alternating QuHE algorithm (Algorithms 1–4) that solves it, together with
// the paper's baselines (AA, OLAA, OCCR for the whole problem; gradient
// descent, simulated annealing and random selection for Stage 1).
package core

import (
	"errors"
	"fmt"
	"math"

	"quhe/internal/qnet"
	"quhe/internal/wireless"
)

// Config is a fully specified instance of the optimization problem:
// the QKD network, the per-client workload and hardware parameters, the
// resource budgets and the objective weights of Eq. (17).
type Config struct {
	// Net is the QKD network; its routes define the client set (client n
	// is the destination of route n).
	Net *qnet.Network

	// AlphaQKD, AlphaMSL, AlphaT, AlphaE weight U_qkd, U_msl, T_total and
	// E_total in the objective (17).
	AlphaQKD, AlphaMSL, AlphaT, AlphaE float64

	// PhiMin is φ_min: the minimum entanglement rate per route (17a).
	PhiMin []float64
	// SecurityWeights is ς_n: the privacy-importance weight per client (9).
	SecurityWeights []float64
	// LambdaSet is the ascending discrete value set of λ_n (17d).
	LambdaSet []float64

	// PMax is p_max per client in watts (17e).
	PMax []float64
	// BTotal is the server's total bandwidth in Hz (17f).
	BTotal float64
	// FCMax is f_c^max per client in Hz (17g).
	FCMax []float64
	// FSTotal is the server's total compute in Hz (17h).
	FSTotal float64

	// SECycles is f_se: CPU cycles for the client's symmetric encryption
	// plus HE encryption of the symmetric key (7).
	SECycles []float64
	// KappaClient and KappaServer are the effective switched capacitances
	// κ_c (per client) and κ_s of the energy models (8), (14).
	KappaClient []float64
	KappaServer float64

	// DTrBits is d_tr: encrypted upload size per client in bits (11).
	DTrBits []float64
	// DCmpTokens is d_cmp: tokens of encrypted computation per client (13).
	DCmpTokens []float64
	// TokensPerSample is ̺: tokens per sample (13).
	TokensPerSample []float64

	// Gains is g_n: the linear uplink channel gain per client (10).
	Gains []float64
	// NoisePSD is N0 in W/Hz (10).
	NoisePSD float64
}

// N returns the number of clients (= routes).
func (c *Config) N() int { return c.Net.NumRoutes() }

// Validate checks dimensional consistency and positivity.
func (c *Config) Validate() error {
	if c.Net == nil {
		return errors.New("core: nil network")
	}
	n := c.N()
	perClient := []struct {
		name string
		v    []float64
	}{
		{"PhiMin", c.PhiMin},
		{"SecurityWeights", c.SecurityWeights},
		{"PMax", c.PMax},
		{"FCMax", c.FCMax},
		{"SECycles", c.SECycles},
		{"KappaClient", c.KappaClient},
		{"DTrBits", c.DTrBits},
		{"DCmpTokens", c.DCmpTokens},
		{"TokensPerSample", c.TokensPerSample},
		{"Gains", c.Gains},
	}
	for _, f := range perClient {
		if len(f.v) != n {
			return fmt.Errorf("core: %s has %d entries for %d clients", f.name, len(f.v), n)
		}
		for i, x := range f.v {
			if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("core: %s[%d] = %g must be positive and finite", f.name, i, x)
			}
		}
	}
	if len(c.LambdaSet) == 0 {
		return errors.New("core: empty LambdaSet")
	}
	for i := 1; i < len(c.LambdaSet); i++ {
		if c.LambdaSet[i] <= c.LambdaSet[i-1] {
			return errors.New("core: LambdaSet must be strictly ascending")
		}
	}
	positives := []struct {
		name string
		v    float64
	}{
		{"AlphaQKD", c.AlphaQKD}, {"AlphaMSL", c.AlphaMSL},
		{"AlphaT", c.AlphaT}, {"AlphaE", c.AlphaE},
		{"BTotal", c.BTotal}, {"FSTotal", c.FSTotal},
		{"KappaServer", c.KappaServer}, {"NoisePSD", c.NoisePSD},
	}
	for _, f := range positives {
		if f.v <= 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("core: %s = %g must be positive and finite", f.name, f.v)
		}
	}
	// The minimum rates themselves must be jointly feasible (17a)+(17c).
	if !c.Net.FeasibleRates(c.PhiMin) {
		return errors.New("core: PhiMin allocation already exceeds link capacities")
	}
	return nil
}

// Security-weight calibration. §VI-A states α_msl = 10⁻². Under the paper's
// own cost model that value makes every λ upgrade unprofitable — the
// security gain α_msl·Δf_msl is always dominated by the extra server
// energy/delay cost at any feasible f_s — which contradicts the paper's own
// results (Fig. 5(d) shows OLAA/QuHE reaching the highest security levels
// and QuHE's objective at 10.16, impossible when λ stays at 2^15).
// Calibrating α_msl to 5·10⁻² restores the paper's reported behaviour:
// the method ordering AA < OLAA < OCCR < QuHE of Fig. 5(d) and QuHE's
// objective ≈ 10.2 (paper: 10.16). PaperConfig therefore defaults to the
// calibrated value; set Config.AlphaMSL = StatedAlphaMSL to run with the
// stated constant (the ablation bench does).
const (
	// StatedAlphaMSL is the α_msl printed in §VI-A.
	StatedAlphaMSL = 1e-2
	// CalibratedAlphaMSL reproduces the shape and magnitudes of the
	// paper's Figs. 3, 5(d) and 6.
	CalibratedAlphaMSL = 5e-2
)

// PaperConfig builds the §VI-A evaluation instance: SURFnet topology,
// N=6 clients, λ ∈ {2^15,2^16,2^17}, the paper's budgets and weights, and
// channel gains drawn from the paper's fading model (128.1+37.6·log10 d path
// loss, Rayleigh small-scale, clients uniform on a 1000 m disk) using the
// given seed (0 selects a fixed default).
func PaperConfig(seed int64) *Config {
	net := qnet.SURFnet()
	n := net.NumRoutes()
	ch := wireless.NewChannelModel(0, wireless.FadingRayleigh, seed)
	gains := make([]float64, n)
	for i := range gains {
		gains[i] = ch.SampleGain(ch.SampleDiskDistanceKm(1000))
	}
	fill := func(v float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	return &Config{
		Net:             net,
		AlphaQKD:        1,
		AlphaMSL:        CalibratedAlphaMSL,
		AlphaT:          1e-4,
		AlphaE:          1e-4,
		PhiMin:          fill(0.5),
		SecurityWeights: []float64{0.1, 0.1, 0.1, 0.2, 0.2, 0.3},
		LambdaSet:       []float64{32768, 65536, 131072}, // 2^15, 2^16, 2^17
		PMax:            fill(0.2),
		BTotal:          10e6,
		FCMax:           fill(3e9),
		FSTotal:         20e9,
		SECycles:        fill(1e6),
		KappaClient:     fill(1e-28),
		KappaServer:     1e-28,
		DTrBits:         fill(3e9),
		DCmpTokens:      fill(160),
		TokensPerSample: fill(10),
		Gains:           gains,
		NoisePSD:        wireless.DefaultNoisePSDWHz,
	}
}

// Clone returns a deep copy of the config, sharing only the immutable
// network. Sweeps (Fig. 6) mutate clones rather than the base instance.
func (c *Config) Clone() *Config {
	dup := *c
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	dup.PhiMin = cp(c.PhiMin)
	dup.SecurityWeights = cp(c.SecurityWeights)
	dup.LambdaSet = cp(c.LambdaSet)
	dup.PMax = cp(c.PMax)
	dup.FCMax = cp(c.FCMax)
	dup.SECycles = cp(c.SECycles)
	dup.KappaClient = cp(c.KappaClient)
	dup.DTrBits = cp(c.DTrBits)
	dup.DCmpTokens = cp(c.DCmpTokens)
	dup.TokensPerSample = cp(c.TokensPerSample)
	dup.Gains = cp(c.Gains)
	return &dup
}
