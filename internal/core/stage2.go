package core

import (
	"fmt"
	"math"
	"time"

	"quhe/internal/costmodel"
	"quhe/internal/optimize"
)

// Stage2Result reports a Stage-2 solve (Algorithm 2).
type Stage2Result struct {
	// Lambda is the optimal polynomial degree per client (values from
	// Config.LambdaSet).
	Lambda []float64
	// TS2 is T*_s2 of Eq. (23): the max per-client delay at λ*.
	TS2 float64
	// Objective is F*_s2: the full P1 objective (22) at λ* with the other
	// blocks fixed.
	Objective float64
	// Nodes counts branch-and-bound subproblems (or leaf evaluations for
	// the exhaustive solver).
	Nodes int
	// Trace is the per-node convergence curve for Fig. 4(b): the popped
	// upper bound for branch & bound (non-increasing onto the optimum,
	// the certificate mirror of the paper's rising incumbent), or the
	// single optimal value for the exhaustive solver.
	Trace []float64
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
}

// stage2Terms precomputes everything Stage 2 needs: per-client fixed delay
// and energy (independent of λ) and per-choice delay/energy/security tables.
type stage2Terms struct {
	constPart float64     // α_qkd·U_qkd + fixed energies scaled by −α_e
	reward    [][]float64 // reward[n][j]: α_msl·ς_n·f_msl − α_e·E_cmp for choice j
	delay     [][]float64 // delay[n][j]: total client delay for choice j
}

func (c *Config) stage2Terms(v Variables) (stage2Terms, error) {
	var t stage2Terms
	n := c.N()
	uqkd, err := c.Net.Utility(v.Phi, v.W)
	if err != nil {
		return t, err
	}
	t.constPart = c.AlphaQKD * uqkd
	m := len(c.LambdaSet)
	t.reward = make([][]float64, n)
	t.delay = make([][]float64, n)
	for i := 0; i < n; i++ {
		// Fixed (λ-independent) energy: encryption + transmission.
		encE := costmodel.EncryptionEnergy(c.KappaClient[i], c.SECycles[i], v.FC[i])
		rate := c.Rate(i, v.P[i], v.B[i])
		trDelay := c.DTrBits[i] / rate
		trE := v.P[i] * trDelay
		t.constPart -= c.AlphaE * (encE + trE)

		fixedDelay := costmodel.EncryptionDelay(c.SECycles[i], v.FC[i]) + trDelay
		t.reward[i] = make([]float64, m)
		t.delay[i] = make([]float64, m)
		for j, lam := range c.LambdaSet {
			sec := c.AlphaMSL * c.SecurityWeights[i] * costmodel.MinSecurityLevel(lam)
			cmpE := costmodel.ComputeEnergy(c.KappaServer, lam, c.DCmpTokens[i], c.TokensPerSample[i], v.FS[i])
			t.reward[i][j] = sec - c.AlphaE*cmpE
			t.delay[i][j] = fixedDelay + costmodel.ComputeDelay(lam, c.DCmpTokens[i], c.TokensPerSample[i], v.FS[i])
		}
	}
	return t, nil
}

// value computes F_s2 (22) for a complete assignment of LambdaSet indices.
func (t stage2Terms) value(alphaT float64, assign []int) float64 {
	s := t.constPart
	dmax := 0.0
	for i, j := range assign {
		s += t.reward[i][j]
		if t.delay[i][j] > dmax {
			dmax = t.delay[i][j]
		}
	}
	return s - alphaT*dmax
}

// SolveStage2 runs Algorithm 2: branch & bound over λ with the other blocks
// fixed at v. With useBnB=false it enumerates exhaustively instead (the
// correctness oracle and the paper's fallback method).
func (c *Config) SolveStage2(v Variables, useBnB bool) (Stage2Result, error) {
	start := time.Now()
	var res Stage2Result
	terms, err := c.stage2Terms(v)
	if err != nil {
		return res, fmt.Errorf("core: stage 2: %w", err)
	}
	n := c.N()
	m := len(c.LambdaSet)
	value := func(assign []int) float64 { return terms.value(c.AlphaT, assign) }

	var assign []int
	if useBnB {
		// Optimistic bound: best per-client rewards for unassigned clients;
		// the −α_t·max-delay term is bounded by the smallest achievable
		// maximum (assigned delays are committed, unassigned take their
		// per-client minimum delay).
		upper := func(partial []int, assigned int) float64 {
			s := terms.constPart
			dmax := 0.0
			for i := 0; i < assigned; i++ {
				s += terms.reward[i][partial[i]]
				if d := terms.delay[i][partial[i]]; d > dmax {
					dmax = d
				}
			}
			for i := assigned; i < n; i++ {
				best := math.Inf(-1)
				minDelay := math.Inf(1)
				for j := 0; j < m; j++ {
					if terms.reward[i][j] > best {
						best = terms.reward[i][j]
					}
					if terms.delay[i][j] < minDelay {
						minDelay = terms.delay[i][j]
					}
				}
				s += best
				if minDelay > dmax {
					dmax = minDelay
				}
			}
			return s - c.AlphaT*dmax
		}
		bres, err := optimize.MaximizeBnB(optimize.BnBProblem{
			NumVars:    n,
			NumChoices: m,
			Value:      value,
			UpperBound: upper,
		})
		if err != nil {
			return res, fmt.Errorf("core: stage 2 branch and bound: %w", err)
		}
		assign = bres.Assign
		res.Objective = bres.Value
		res.Nodes = bres.Nodes
		res.Trace = bres.Bounds
		// The root's +Inf bound is a sentinel, not data.
		if len(res.Trace) > 0 && math.IsInf(res.Trace[0], 1) {
			res.Trace = res.Trace[1:]
		}
	} else {
		a, best, evals := optimize.MaximizeExhaustive(n, m, value)
		assign = a
		res.Objective = best
		res.Nodes = evals
		res.Trace = []float64{best}
	}

	res.Lambda = make([]float64, n)
	res.TS2 = 0
	for i, j := range assign {
		res.Lambda[i] = c.LambdaSet[j]
		if terms.delay[i][j] > res.TS2 {
			res.TS2 = terms.delay[i][j]
		}
	}
	res.Runtime = time.Since(start)
	return res, nil
}
