package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuHEConvergesAndIsFeasible(t *testing.T) {
	c := PaperConfig(1)
	res, err := c.SolveQuHE(QuHEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("QuHE did not converge")
	}
	if res.OuterIters > 10 {
		t.Errorf("QuHE took %d outer iterations", res.OuterIters)
	}
	final := res.Vars.Clone()
	final.T = res.Eval.Delay // T must cover the true max delay
	if err := c.CheckFeasible(final, 1e-6); err != nil {
		t.Errorf("QuHE solution infeasible: %v", err)
	}
	if res.StageCalls[0] != 1 {
		t.Errorf("stage 1 called %d times, want 1 (Fig. 5(a))", res.StageCalls[0])
	}
}

// TestMethodOrdering pins the headline shape of Fig. 5(d):
// AA < OLAA, AA < OCCR, and QuHE strictly dominates every baseline.
func TestMethodOrdering(t *testing.T) {
	c := PaperConfig(1)
	quhe, err := c.SolveQuHE(QuHEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aa, err := c.SolveBaseline(BaselineAA)
	if err != nil {
		t.Fatal(err)
	}
	olaa, err := c.SolveBaseline(BaselineOLAA)
	if err != nil {
		t.Fatal(err)
	}
	occr, err := c.SolveBaseline(BaselineOCCR)
	if err != nil {
		t.Fatal(err)
	}
	if !(aa.Eval.Objective < olaa.Eval.Objective) {
		t.Errorf("AA (%v) not below OLAA (%v)", aa.Eval.Objective, olaa.Eval.Objective)
	}
	if !(aa.Eval.Objective < occr.Eval.Objective) {
		t.Errorf("AA (%v) not below OCCR (%v)", aa.Eval.Objective, occr.Eval.Objective)
	}
	if !(quhe.Eval.Objective > occr.Eval.Objective) {
		t.Errorf("QuHE (%v) not above OCCR (%v)", quhe.Eval.Objective, occr.Eval.Objective)
	}
	if !(quhe.Eval.Objective > olaa.Eval.Objective) {
		t.Errorf("QuHE (%v) not above OLAA (%v)", quhe.Eval.Objective, olaa.Eval.Objective)
	}
	// Energy shape: QuHE and OCCR well below AA and OLAA.
	if !(quhe.Eval.Energy < aa.Eval.Energy && occr.Eval.Energy < aa.Eval.Energy) {
		t.Errorf("energy shape violated: QuHE %v, OCCR %v, AA %v",
			quhe.Eval.Energy, occr.Eval.Energy, aa.Eval.Energy)
	}
	// Security shape: QuHE and OLAA above AA and OCCR.
	if !(quhe.Eval.UMSL > aa.Eval.UMSL && olaa.Eval.UMSL > occr.Eval.UMSL) {
		t.Errorf("security shape violated: QuHE %v, OLAA %v, AA %v, OCCR %v",
			quhe.Eval.UMSL, olaa.Eval.UMSL, aa.Eval.UMSL, occr.Eval.UMSL)
	}
}

func TestQuHEFromRandomStartsStaysGood(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-start study is slow")
	}
	c := PaperConfig(1)
	ref, err := c.SolveQuHE(QuHEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		v, err := c.SampleVariables(rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.SolveQuHE(QuHEOptions{Initial: &v})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Fig. 3: most random starts land close to the best objective.
		if res.Eval.Objective < ref.Eval.Objective-2 {
			t.Errorf("trial %d: objective %v far below reference %v",
				trial, res.Eval.Objective, ref.Eval.Objective)
		}
	}
}

func TestQuHEExhaustiveStage2Matches(t *testing.T) {
	c := PaperConfig(1)
	bnb, err := c.SolveQuHE(QuHEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exh, err := c.SolveQuHE(QuHEOptions{Stage2Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bnb.Eval.Objective-exh.Eval.Objective) > 1e-3*(1+math.Abs(exh.Eval.Objective)) {
		t.Errorf("BnB objective %v != exhaustive %v", bnb.Eval.Objective, exh.Eval.Objective)
	}
}

func TestBaselineKindString(t *testing.T) {
	tests := []struct {
		k    BaselineKind
		want string
	}{
		{BaselineAA, "AA"},
		{BaselineOLAA, "OLAA"},
		{BaselineOCCR, "OCCR"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.k), got, tt.want)
		}
	}
	if got := BaselineKind(9).String(); got != "BaselineKind(9)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestSolveBaselineUnknownKind(t *testing.T) {
	c := PaperConfig(1)
	if _, err := c.SolveBaseline(BaselineKind(42)); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestBaselineAAUsesStatedAllocation(t *testing.T) {
	c := PaperConfig(1)
	res, err := c.SolveBaseline(BaselineAA)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(c.N())
	for i := range res.Vars.P {
		if res.Vars.P[i] != c.PMax[i] {
			t.Errorf("AA p[%d] = %v, want p_max", i, res.Vars.P[i])
		}
		if res.Vars.B[i] != c.BTotal/n {
			t.Errorf("AA b[%d] = %v, want B_total/N", i, res.Vars.B[i])
		}
		if res.Vars.FC[i] != c.FCMax[i] {
			t.Errorf("AA fc[%d] = %v, want f_c^max", i, res.Vars.FC[i])
		}
		if res.Vars.FS[i] != c.FSTotal/n {
			t.Errorf("AA fs[%d] = %v, want f_total/N", i, res.Vars.FS[i])
		}
		if res.Vars.Lambda[i] != c.LambdaSet[0] {
			t.Errorf("AA λ[%d] = %v, want smallest", i, res.Vars.Lambda[i])
		}
	}
}

// TestStatedAlphaMSLAblation documents the calibration: under the stated
// α_msl = 1e-2 no method ever upgrades λ, so OLAA degenerates to AA — the
// behaviour that contradicts the paper's Fig. 5(d) and motivated
// CalibratedAlphaMSL.
func TestStatedAlphaMSLAblation(t *testing.T) {
	c := PaperConfig(1)
	c.AlphaMSL = StatedAlphaMSL
	olaa, err := c.SolveBaseline(BaselineOLAA)
	if err != nil {
		t.Fatal(err)
	}
	for i, lam := range olaa.Vars.Lambda {
		if lam != c.LambdaSet[0] {
			t.Errorf("stated α_msl: OLAA upgraded λ[%d] to %v", i, lam)
		}
	}
	aa, err := c.SolveBaseline(BaselineAA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(olaa.Eval.Objective-aa.Eval.Objective) > 1e-9 {
		t.Errorf("stated α_msl: OLAA (%v) != AA (%v)", olaa.Eval.Objective, aa.Eval.Objective)
	}
}
