package core

import (
	"fmt"
	"math"
	"time"
)

// QuHEOptions tunes the whole-procedure Algorithm 4.
type QuHEOptions struct {
	// Tol is the outer convergence tolerance on the P1 objective; the
	// paper's accuracy ε = 1e-4 is the default.
	Tol float64
	// MaxOuter bounds alternating iterations. Default 10.
	MaxOuter int
	// Initial overrides the deterministic feasible start (used by the
	// Fig. 3 random-initialization study).
	Initial *Variables
	// Stage2Exhaustive switches Stage 2 from branch & bound to exhaustive
	// enumeration (ablation).
	Stage2Exhaustive bool
	// Stage3 forwards options to Algorithm 3.
	Stage3 Stage3Options
}

func (o QuHEOptions) defaults() QuHEOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 10
	}
	return o
}

// SolveResult is the outcome of SolveQuHE or SolveBaseline.
type SolveResult struct {
	// Vars is the final variable assignment; Eval its decomposed objective.
	Vars Variables
	Eval Evaluation
	// OuterIters counts Algorithm-4 iterations; StageCalls the number of
	// invocations of each stage (Fig. 5(a)).
	OuterIters int
	StageCalls [3]int
	// StageRuntime accumulates per-stage wall-clock time; Runtime is the
	// total (Fig. 5(a)).
	StageRuntime [3]time.Duration
	Runtime      time.Duration
	// Stage1, Stage2, Stage3 hold the last per-stage results (convergence
	// traces for Fig. 4).
	Stage1 Stage1Result
	Stage2 Stage2Result
	Stage3 Stage3Result
	// Converged reports outer-loop convergence within MaxOuter.
	Converged bool
}

// SolveQuHE runs the whole QuHE procedure (Algorithm 4): Stage 1 once (its
// block (φ,w) is separable from the rest of the objective, so its optimum
// never changes across outer iterations — matching Fig. 5(a)'s single call
// per stage), then alternating Stage 2 / Stage 3 until the P1 objective
// moves by less than Tol.
func (c *Config) SolveQuHE(opts QuHEOptions) (SolveResult, error) {
	o := opts.defaults()
	start := time.Now()
	var res SolveResult

	v, err := c.initialVariables(o.Initial)
	if err != nil {
		return res, err
	}

	// Stage 1: the (φ, w) block.
	s1, err := c.SolveStage1(Stage1Options{Method: Stage1Barrier})
	if err != nil {
		return res, fmt.Errorf("core: quhe stage 1: %w", err)
	}
	res.Stage1 = s1
	res.StageCalls[0]++
	res.StageRuntime[0] += s1.Runtime
	v.Phi = s1.Phi
	v.W = s1.W

	prev := math.Inf(-1)
	for iter := 0; iter < o.MaxOuter; iter++ {
		res.OuterIters++

		s2, err := c.SolveStage2(v, !o.Stage2Exhaustive)
		if err != nil {
			return res, fmt.Errorf("core: quhe outer %d: %w", iter, err)
		}
		res.Stage2 = s2
		res.StageCalls[1]++
		res.StageRuntime[1] += s2.Runtime
		v.Lambda = s2.Lambda
		v.T = s2.TS2

		s3, err := c.SolveStage3(v, o.Stage3)
		if err != nil {
			return res, fmt.Errorf("core: quhe outer %d: %w", iter, err)
		}
		res.Stage3 = s3
		res.StageCalls[2]++
		res.StageRuntime[2] += s3.Runtime
		v.P, v.B, v.FC, v.FS, v.T = s3.P, s3.B, s3.FC, s3.FS, s3.T

		ev, err := c.Evaluate(v)
		if err != nil {
			return res, fmt.Errorf("core: quhe outer %d evaluate: %w", iter, err)
		}
		if math.Abs(ev.Objective-prev) < o.Tol*(1+math.Abs(ev.Objective)) {
			res.Converged = true
			prev = ev.Objective
			break
		}
		prev = ev.Objective
	}

	res.Vars = v
	res.Eval, err = c.Evaluate(v)
	if err != nil {
		return res, err
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// initialVariables returns a copy of the override or the deterministic
// default start.
func (c *Config) initialVariables(override *Variables) (Variables, error) {
	if override != nil {
		return override.Clone(), nil
	}
	return c.DefaultVariables()
}

// BaselineKind selects a whole-procedure baseline (§VI-B).
type BaselineKind int

const (
	// BaselineAA is average allocation: λ = smallest, p = p_max,
	// b = B_total/N, f_c = f_c^max, f_s = f_total/N.
	BaselineAA BaselineKind = iota + 1
	// BaselineOLAA optimizes λ only (Stage 2) over average allocation.
	BaselineOLAA
	// BaselineOCCR optimizes communication/computation resources only
	// (Stage 3) with λ fixed at the smallest value.
	BaselineOCCR
)

// String implements fmt.Stringer with the labels of Fig. 5(d).
func (k BaselineKind) String() string {
	switch k {
	case BaselineAA:
		return "AA"
	case BaselineOLAA:
		return "OLAA"
	case BaselineOCCR:
		return "OCCR"
	default:
		return fmt.Sprintf("BaselineKind(%d)", int(k))
	}
}

// SolveBaseline runs one of the paper's whole-procedure baselines. All
// baselines share the optimal Stage-1 (φ, w) block, as in Fig. 5(d)
// ("assuming the optimal U_qkd is obtained in Stage 1").
func (c *Config) SolveBaseline(kind BaselineKind) (SolveResult, error) {
	start := time.Now()
	var res SolveResult

	s1, err := c.SolveStage1(Stage1Options{Method: Stage1Barrier})
	if err != nil {
		return res, fmt.Errorf("core: baseline %s stage 1: %w", kind, err)
	}
	res.Stage1 = s1
	res.StageCalls[0]++
	res.StageRuntime[0] += s1.Runtime

	n := c.N()
	v := Variables{
		Phi:    s1.Phi,
		W:      s1.W,
		Lambda: make([]float64, n),
		P:      make([]float64, n),
		B:      make([]float64, n),
		FC:     make([]float64, n),
		FS:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		v.Lambda[i] = c.LambdaSet[0]
		v.P[i] = c.PMax[i]
		v.B[i] = c.BTotal / float64(n)
		v.FC[i] = c.FCMax[i]
		v.FS[i] = c.FSTotal / float64(n)
	}

	switch kind {
	case BaselineAA:
		// Nothing to optimize.
	case BaselineOLAA:
		s2, err := c.SolveStage2(v, true)
		if err != nil {
			return res, fmt.Errorf("core: baseline OLAA: %w", err)
		}
		res.Stage2 = s2
		res.StageCalls[1]++
		res.StageRuntime[1] += s2.Runtime
		v.Lambda = s2.Lambda
	case BaselineOCCR:
		s3, err := c.SolveStage3(v, Stage3Options{})
		if err != nil {
			return res, fmt.Errorf("core: baseline OCCR: %w", err)
		}
		res.Stage3 = s3
		res.StageCalls[2]++
		res.StageRuntime[2] += s3.Runtime
		v.P, v.B, v.FC, v.FS, v.T = s3.P, s3.B, s3.FC, s3.FS, s3.T
	default:
		return res, fmt.Errorf("core: unknown baseline %d", int(kind))
	}

	v.T = c.maxDelay(v)
	res.Vars = v
	res.Eval, err = c.Evaluate(v)
	if err != nil {
		return res, err
	}
	res.OuterIters = 1
	res.Runtime = time.Since(start)
	return res, nil
}
