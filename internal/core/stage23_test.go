package core

import (
	"math"
	"testing"

	"quhe/internal/optimize"
)

// stage2Fixture returns a config and variables after Stage 1, with server
// shares low enough that λ upgrades are profitable for high-ς clients.
func stage2Fixture(t *testing.T) (*Config, Variables) {
	t.Helper()
	c := PaperConfig(1)
	v, err := c.DefaultVariables()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.SolveStage1(Stage1Options{})
	if err != nil {
		t.Fatal(err)
	}
	v.Phi, v.W = s1.Phi, s1.W
	return c, v
}

func TestStage2BnBMatchesExhaustive(t *testing.T) {
	c, v := stage2Fixture(t)
	// Try several server allocations to exercise different optimal mixes.
	for _, scale := range []float64{0.2, 0.5, 1.0} {
		vv := v.Clone()
		for i := range vv.FS {
			vv.FS[i] *= scale
		}
		bnb, err := c.SolveStage2(vv, true)
		if err != nil {
			t.Fatalf("scale %v bnb: %v", scale, err)
		}
		exh, err := c.SolveStage2(vv, false)
		if err != nil {
			t.Fatalf("scale %v exhaustive: %v", scale, err)
		}
		if math.Abs(bnb.Objective-exh.Objective) > 1e-9 {
			t.Errorf("scale %v: BnB obj %v != exhaustive %v", scale, bnb.Objective, exh.Objective)
		}
		for i := range bnb.Lambda {
			if bnb.Lambda[i] != exh.Lambda[i] {
				t.Errorf("scale %v: λ[%d] BnB %v != exhaustive %v", scale, i, bnb.Lambda[i], exh.Lambda[i])
			}
		}
	}
}

func TestStage2BnBPrunes(t *testing.T) {
	c, v := stage2Fixture(t)
	bnb, err := c.SolveStage2(v, true)
	if err != nil {
		t.Fatal(err)
	}
	exh, err := c.SolveStage2(v, false)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive evaluates 3^6 = 729 leaves; BnB should expand fewer nodes.
	if exh.Nodes != 729 {
		t.Errorf("exhaustive evals = %d, want 729", exh.Nodes)
	}
	if bnb.Nodes >= exh.Nodes {
		t.Errorf("BnB nodes %d >= exhaustive %d: no pruning", bnb.Nodes, exh.Nodes)
	}
}

func TestStage2SecurityWeightDrivesUpgrade(t *testing.T) {
	c, v := stage2Fixture(t)
	// With tiny α_msl nothing upgrades.
	small := c.Clone()
	small.AlphaMSL = 1e-6
	res, err := small.SolveStage2(v, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, lam := range res.Lambda {
		if lam != small.LambdaSet[0] {
			t.Errorf("α_msl→0: λ[%d] = %v, want smallest", i, lam)
		}
	}
	// With huge α_msl everything maxes out.
	big := c.Clone()
	big.AlphaMSL = 10
	res, err = big.SolveStage2(v, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, lam := range res.Lambda {
		if lam != big.LambdaSet[len(big.LambdaSet)-1] {
			t.Errorf("α_msl→∞: λ[%d] = %v, want largest", i, lam)
		}
	}
}

func TestStage2TS2IsMaxDelay(t *testing.T) {
	c, v := stage2Fixture(t)
	res, err := c.SolveStage2(v, true)
	if err != nil {
		t.Fatal(err)
	}
	maxD := 0.0
	for i := range res.Lambda {
		d := c.ClientDelay(i, res.Lambda[i], v.P[i], v.B[i], v.FC[i], v.FS[i])
		if d > maxD {
			maxD = d
		}
	}
	if math.Abs(res.TS2-maxD)/maxD > 1e-9 {
		t.Errorf("TS2 = %v, max delay = %v", res.TS2, maxD)
	}
}

func TestStage2HigherWeightGetsNoLessSecurity(t *testing.T) {
	c, v := stage2Fixture(t)
	// Shrink server shares to make upgrades cheap and differential.
	for i := range v.FS {
		v.FS[i] *= 0.3
	}
	res, err := c.SolveStage2(v, true)
	if err != nil {
		t.Fatal(err)
	}
	// Clients are ordered by ς (0.1,0.1,0.1,0.2,0.2,0.3): the chosen λ must
	// be non-decreasing in ς when everything else is symmetric. Clients
	// differ in gains, but λ only interacts with fs/delay, which are near
	// symmetric here; allow equality.
	if res.Lambda[5] < res.Lambda[0] {
		t.Errorf("highest-ς client got λ %v < lowest-ς client's %v", res.Lambda[5], res.Lambda[0])
	}
}

func TestStage3ConstraintsHold(t *testing.T) {
	c, v := stage2Fixture(t)
	s2, err := c.SolveStage2(v, true)
	if err != nil {
		t.Fatal(err)
	}
	v.Lambda = s2.Lambda
	s3, err := c.SolveStage3(v, Stage3Options{})
	if err != nil {
		t.Fatal(err)
	}
	final := v.Clone()
	final.P, final.B, final.FC, final.FS, final.T = s3.P, s3.B, s3.FC, s3.FS, s3.T
	if err := c.CheckFeasible(final, 1e-6); err != nil {
		t.Errorf("stage 3 solution infeasible: %v", err)
	}
}

func TestStage3ImprovesOnStart(t *testing.T) {
	c, v := stage2Fixture(t)
	s2, err := c.SolveStage2(v, true)
	if err != nil {
		t.Fatal(err)
	}
	v.Lambda = s2.Lambda

	startEval, err := c.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	startCost := c.AlphaT*startEval.Delay + c.AlphaE*startEval.Energy

	s3, err := c.SolveStage3(v, Stage3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Converged {
		t.Error("stage 3 did not converge")
	}
	if s3.Objective > startCost+1e-9 {
		t.Errorf("stage 3 cost %v worse than start %v", s3.Objective, startCost)
	}
}

func TestStage3GapTraceReachesTolerance(t *testing.T) {
	c, v := stage2Fixture(t)
	s3, err := c.SolveStage3(v, Stage3Options{Barrier: optimize.BarrierOptions{Tol: 1e-6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s3.Gaps) == 0 {
		t.Fatal("no duality-gap trace")
	}
	minGap := math.Inf(1)
	for _, g := range s3.Gaps {
		if g < minGap {
			minGap = g
		}
	}
	// Fig. 4(d): the gap reaches ~1e-5 or below.
	if minGap > 1e-5 {
		t.Errorf("min duality gap %v, want ≤ 1e-5", minGap)
	}
}

func TestStage3POBJTraceRecorded(t *testing.T) {
	c, v := stage2Fixture(t)
	s3, err := c.SolveStage3(v, Stage3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s3.POBJ) < 10 {
		t.Errorf("POBJ trace has only %d points", len(s3.POBJ))
	}
	for _, p := range s3.POBJ {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("non-finite POBJ entry %v", p)
		}
	}
}

func TestStage3LambdaMismatch(t *testing.T) {
	c, v := stage2Fixture(t)
	v.Lambda = v.Lambda[:2]
	if _, err := c.SolveStage3(v, Stage3Options{}); err == nil {
		t.Error("short lambda accepted")
	}
}

func TestStage3PowerWithinBounds(t *testing.T) {
	c, v := stage2Fixture(t)
	s3, err := c.SolveStage3(v, Stage3Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s3.P {
		if s3.P[i] <= 0 || s3.P[i] > c.PMax[i]*(1+1e-9) {
			t.Errorf("p[%d] = %v outside (0, %v]", i, s3.P[i], c.PMax[i])
		}
		if s3.FC[i] <= 0 || s3.FC[i] > c.FCMax[i]*(1+1e-9) {
			t.Errorf("fc[%d] = %v outside (0, %v]", i, s3.FC[i], c.FCMax[i])
		}
	}
}
