package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"quhe/internal/costmodel"
	"quhe/internal/mathutil"
	"quhe/internal/optimize"
)

// Stage3Options tunes Algorithm 3. The zero value uses defaults.
type Stage3Options struct {
	// Tol is the outer (fractional-programming) convergence tolerance on
	// the objective. Default 1e-5.
	Tol float64
	// MaxOuter bounds the z-update iterations. Default 30.
	MaxOuter int
	// Barrier configures the inner convex solves.
	Barrier optimize.BarrierOptions
}

func (o Stage3Options) defaults() Stage3Options {
	if o.Tol <= 0 {
		// The inner barrier is solved to a duality gap of ~1e-6, so the
		// outer objective carries noise of that order; a tighter outer
		// tolerance would never be met.
		o.Tol = 1e-5
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 30
	}
	return o
}

// Stage3Result reports a Stage-3 solve (Algorithm 3).
type Stage3Result struct {
	// P, B, FC, FS are the optimized transmit powers, bandwidths, client
	// clocks and server shares; T is the optimized delay bound.
	P, B, FC, FS []float64
	T            float64
	// Objective is the minimized P5 cost α_e·E_total + α_t·T (the paper
	// maximizes its negation).
	Objective float64
	// Outer counts fractional-programming iterations; NewtonIters the
	// total inner Newton steps.
	Outer       int
	NewtonIters int
	// POBJ is the primal objective after every Newton step across all
	// inner solves (Fig. 4(c)); Gaps is the duality-gap trace of the
	// first (cold-started) inner solve (Fig. 4(d)) — later re-solves are
	// warm-started and carry no meaningful gap trajectory.
	POBJ []float64
	Gaps []float64
	// Converged reports outer-loop convergence within MaxOuter.
	Converged bool
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
}

// stage3Space fixes the variable layout and scaling of the Stage-3 program.
// All solver-visible quantities are O(1): powers are divided by p_max,
// bandwidths by B_total/N, clocks by their caps, and T by a delay scale
// taken from the starting point.
type stage3Space struct {
	c      *Config
	n      int
	cycles []float64 // C_n = server cycles for client n at the fixed λ
	tScale float64
}

func (s stage3Space) dim() int { return 4*s.n + 1 }

func (s stage3Space) unpack(x []float64) (p, b, fc, fs []float64, t float64) {
	n := s.n
	p = make([]float64, n)
	b = make([]float64, n)
	fc = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		p[i] = x[i] * s.c.PMax[i]
		b[i] = x[n+i] * s.c.BTotal / float64(n)
		fc[i] = x[2*n+i] * s.c.FCMax[i]
		fs[i] = x[3*n+i] * s.c.FSTotal / float64(n)
	}
	t = x[4*n] * s.tScale
	return p, b, fc, fs, t
}

func (s stage3Space) pack(p, b, fc, fs []float64, t float64) []float64 {
	n := s.n
	x := make([]float64, s.dim())
	for i := 0; i < n; i++ {
		x[i] = p[i] / s.c.PMax[i]
		x[n+i] = b[i] * float64(n) / s.c.BTotal
		x[2*n+i] = fc[i] / s.c.FCMax[i]
		x[3*n+i] = fs[i] * float64(n) / s.c.FSTotal
	}
	x[4*n] = t / s.tScale
	return x
}

// delay returns client i's end-to-end delay at the scaled point x.
func (s stage3Space) delay(x []float64, i int) float64 {
	n := s.n
	p := x[i] * s.c.PMax[i]
	b := x[n+i] * s.c.BTotal / float64(n)
	fc := x[2*n+i] * s.c.FCMax[i]
	fs := x[3*n+i] * s.c.FSTotal / float64(n)
	rate := s.c.Rate(i, p, b)
	if rate <= 0 || fc <= 0 || fs <= 0 {
		return math.Inf(1)
	}
	return s.c.SECycles[i]/fc + s.c.DTrBits[i]/rate + s.cycles[i]/fs
}

// SolveStage3 runs Algorithm 3: alternating quadratic-transform updates
// (Eq. 25) and inner barrier solves of the convexified problem P6 (Eq. 28),
// with φ, w, λ fixed at v.
func (c *Config) SolveStage3(v Variables, opts Stage3Options) (Stage3Result, error) {
	o := opts.defaults()
	start := time.Now()
	var res Stage3Result
	n := c.N()
	if len(v.Lambda) != n {
		return res, fmt.Errorf("core: stage 3 needs %d lambdas, got %d", n, len(v.Lambda))
	}

	space := stage3Space{c: c, n: n, cycles: make([]float64, n)}
	for i := 0; i < n; i++ {
		space.cycles[i] = costmodel.TotalServerCycles(v.Lambda[i], c.DCmpTokens[i], c.TokensPerSample[i])
	}

	// Start from v's resource block, pulled strictly inside the box.
	p := mathutil.Clone(v.P)
	b := mathutil.Clone(v.B)
	fc := mathutil.Clone(v.FC)
	fs := mathutil.Clone(v.FS)
	const margin = 1e-3
	for i := 0; i < n; i++ {
		p[i] = mathutil.Clamp(p[i], margin*c.PMax[i], (1-margin)*c.PMax[i])
		b[i] = mathutil.Clamp(b[i], margin*c.BTotal/float64(n), (1-margin)*c.BTotal/float64(n))
		fc[i] = mathutil.Clamp(fc[i], margin*c.FCMax[i], (1-margin)*c.FCMax[i])
		fs[i] = mathutil.Clamp(fs[i], margin*c.FSTotal/float64(n), (1-margin)*c.FSTotal/float64(n))
	}
	// Delay scale and a strictly feasible T.
	maxDelay := 0.0
	for i := 0; i < n; i++ {
		if d := c.ClientDelay(i, v.Lambda[i], p[i], b[i], fc[i], fs[i]); d > maxDelay {
			maxDelay = d
		}
	}
	if math.IsInf(maxDelay, 1) || maxDelay <= 0 {
		return res, errors.New("core: stage 3 start has infinite delay")
	}
	space.tScale = maxDelay
	t := 1.5 * maxDelay

	x := space.pack(p, b, fc, fs, t)
	ineqs := space.constraints()

	z := make([]float64, n)
	prevObj := math.Inf(1)
	for outer := 0; outer < o.MaxOuter; outer++ {
		res.Outer++
		// Quadratic-transform update (Eq. 25): z_n = 1/(2 p_n d_n r_n).
		pc, bc, _, _, _ := space.unpack(x)
		for i := 0; i < n; i++ {
			rate := c.Rate(i, pc[i], bc[i])
			z[i] = 1 / (2 * pc[i] * c.DTrBits[i] * rate)
		}
		f0 := space.objective(z)

		// Re-center strictly inside the feasible region: the previous
		// solution may sit numerically on its active constraints.
		x = space.strictify(x)

		// Warm start: after the first solve, x is near-optimal for the
		// barely-changed z, so skip the early centering phases.
		bopts := o.Barrier
		if outer > 0 {
			if bopts.T0 <= 0 {
				bopts.T0 = 1e4
			}
		}
		bres, err := optimize.MinimizeBarrier(f0, ineqs, x, bopts)
		if err != nil {
			return res, fmt.Errorf("core: stage 3 outer %d: %w", outer, err)
		}
		x = bres.X
		res.NewtonIters += bres.NewtonIters
		res.POBJ = append(res.POBJ, bres.Values...)
		if outer == 0 {
			res.Gaps = append(res.Gaps, bres.Gaps...)
		}

		// True (untransformed) P5 objective for convergence checking.
		obj := space.trueObjective(x)
		if math.Abs(prevObj-obj) < o.Tol*(1+math.Abs(obj)) {
			res.Converged = true
			prevObj = obj
			break
		}
		prevObj = obj
	}

	res.P, res.B, res.FC, res.FS, res.T = space.unpack(x)
	res.Objective = prevObj
	res.Runtime = time.Since(start)
	return res, nil
}

// objective builds the convexified P6 cost (Eq. 28) for fixed z:
//
//	α_e Σ [κ_c f_se f_c² + κ_s C_n f_s² + (p d)² z + 1/(4 r² z)] + α_t T.
func (s stage3Space) objective(z []float64) optimize.Func {
	c := s.c
	n := s.n
	return func(x []float64) float64 {
		p, b, fc, fs, t := s.unpack(x)
		total := c.AlphaT * t
		for i := 0; i < n; i++ {
			if p[i] <= 0 || b[i] <= 0 || fc[i] <= 0 || fs[i] <= 0 {
				return math.Inf(1)
			}
			e := c.KappaClient[i]*c.SECycles[i]*fc[i]*fc[i] +
				c.KappaServer*s.cycles[i]*fs[i]*fs[i]
			rate := c.Rate(i, p[i], b[i])
			if rate <= 0 {
				return math.Inf(1)
			}
			pd := p[i] * c.DTrBits[i]
			e += pd*pd*z[i] + 1/(4*rate*rate*z[i])
			total += c.AlphaE * e
		}
		return total
	}
}

// trueObjective is the untransformed P5 cost α_e·ΣE + α_t·T used for outer
// convergence: identical to objective at z's fixed point.
func (s stage3Space) trueObjective(x []float64) float64 {
	c := s.c
	p, b, fc, fs, t := s.unpack(x)
	total := c.AlphaT * t
	for i := 0; i < s.n; i++ {
		rate := c.Rate(i, p[i], b[i])
		if rate <= 0 {
			return math.Inf(1)
		}
		e := c.KappaClient[i]*c.SECycles[i]*fc[i]*fc[i] +
			c.KappaServer*s.cycles[i]*fs[i]*fs[i] +
			p[i]*c.DTrBits[i]/rate
		total += c.AlphaE * e
	}
	return total
}

// constraints assembles (17e)–(17i) in the scaled space.
func (s stage3Space) constraints() []optimize.Ineq {
	n := s.n
	dim := s.dim()
	const eps = 1e-5
	var ineqs []optimize.Ineq
	for i := 0; i < n; i++ {
		ineqs = append(ineqs,
			optimize.BoundIneq(dim, i, 1, -1),       // p̃ ≤ 1  (17e)
			optimize.BoundIneq(dim, i, -1, eps),     // p̃ ≥ eps
			optimize.BoundIneq(dim, n+i, -1, eps),   // b̃ ≥ eps
			optimize.BoundIneq(dim, 2*n+i, 1, -1),   // f̃c ≤ 1 (17g)
			optimize.BoundIneq(dim, 2*n+i, -1, eps), // f̃c ≥ eps
			optimize.BoundIneq(dim, 3*n+i, -1, eps), // f̃s ≥ eps
		)
	}
	// Σ b̃ ≤ N (17f) and Σ f̃s ≤ N (17h).
	bSum := make([]float64, dim)
	fsSum := make([]float64, dim)
	for i := 0; i < n; i++ {
		bSum[n+i] = 1
		fsSum[3*n+i] = 1
	}
	ineqs = append(ineqs,
		optimize.LinearIneq(bSum, -float64(n)),
		optimize.LinearIneq(fsSum, -float64(n)),
		optimize.BoundIneq(dim, 4*n, -1, eps), // T̃ ≥ eps
	)
	// (17i): delay_i ≤ T, normalized by tScale; sparse analytic gradient
	// plus a support-restricted finite-difference Hessian.
	for i := 0; i < n; i++ {
		i := i
		support := []int{i, n + i, 2*n + i, 3*n + i, 4 * n}
		f := func(x []float64) float64 {
			return (s.delay(x, i) - x[4*n]*s.tScale) / s.tScale
		}
		ineqs = append(ineqs, optimize.Ineq{
			F:    f,
			Grad: s.delayGrad(i),
			Hess: sparseHessian(f, support, dim),
		})
	}
	return ineqs
}

// delayGrad returns the analytic gradient of the normalized delay
// constraint for client i. Only the five supporting coordinates are nonzero.
func (s stage3Space) delayGrad(i int) func([]float64) []float64 {
	c := s.c
	n := s.n
	return func(x []float64) []float64 {
		g := make([]float64, s.dim())
		p := x[i] * c.PMax[i]
		b := x[n+i] * c.BTotal / float64(n)
		fc := x[2*n+i] * c.FCMax[i]
		fs := x[3*n+i] * c.FSTotal / float64(n)
		rate := c.Rate(i, p, b)
		snr := p * c.Gains[i] / (c.NoisePSD * b)
		ln2 := math.Ln2
		// ∂r/∂p and ∂r/∂b of Shannon's formula.
		drdp := c.Gains[i] / (c.NoisePSD * (1 + snr) * ln2)
		drdb := (math.Log1p(snr) - snr/(1+snr)) / ln2
		d := c.DTrBits[i]
		g[i] = (-d / (rate * rate)) * drdp * c.PMax[i] / s.tScale
		g[n+i] = (-d / (rate * rate)) * drdb * (c.BTotal / float64(n)) / s.tScale
		g[2*n+i] = (-c.SECycles[i] / (fc * fc)) * c.FCMax[i] / s.tScale
		g[3*n+i] = (-s.cycles[i] / (fs * fs)) * (c.FSTotal / float64(n)) / s.tScale
		g[4*n] = -1
		return g
	}
}

// strictify pulls x off any numerically active constraint so the next
// barrier solve starts strictly feasible: active bound constraints are
// relaxed toward the interior, and T is raised above the current max delay.
func (s stage3Space) strictify(x []float64) []float64 {
	out := mathutil.Clone(x)
	n := s.n
	const pull = 1e-6
	for i := 0; i < n; i++ {
		out[i] = mathutil.Clamp(out[i], 2e-5, 1-pull)
		out[n+i] = math.Max(out[n+i], 2e-5)
		out[2*n+i] = mathutil.Clamp(out[2*n+i], 2e-5, 1-pull)
		out[3*n+i] = math.Max(out[3*n+i], 2e-5)
	}
	// Shrink sum-constrained blocks if they brush the budget.
	scaleBlock := func(lo, hi int) {
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += out[j]
		}
		if limit := float64(n) * (1 - pull); sum > limit {
			f := limit / sum
			for j := lo; j < hi; j++ {
				out[j] *= f
			}
		}
	}
	scaleBlock(n, 2*n)
	scaleBlock(3*n, 4*n)
	// Ensure T̃ strictly dominates every delay.
	maxDelay := 0.0
	for i := 0; i < n; i++ {
		if d := s.delay(out, i); d > maxDelay {
			maxDelay = d
		}
	}
	minT := maxDelay / s.tScale * (1 + 1e-4)
	if out[4*n] < minT {
		out[4*n] = minT
	}
	return out
}

// sparseHessian builds a Hess closure that finite-differences f only over
// the given support coordinates, scattering into a dim×dim matrix. It cuts
// the cost of constraint Hessians from O(dim²) to O(|support|²) per call.
func sparseHessian(f optimize.Func, support []int, dim int) func([]float64) [][]float64 {
	return func(x []float64) [][]float64 {
		reduced := func(y []float64) float64 {
			xx := mathutil.Clone(x)
			for k, idx := range support {
				xx[idx] = y[k]
			}
			return f(xx)
		}
		y := make([]float64, len(support))
		for k, idx := range support {
			y[k] = x[idx]
		}
		small := optimize.Hessian(reduced, y)
		out := make([][]float64, dim)
		for i := range out {
			out[i] = make([]float64, dim)
		}
		for a, ia := range support {
			for b, ib := range support {
				v := small[a][b]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				out[ia][ib] = v
			}
		}
		return out
	}
}
