package profile_test

import (
	"testing"

	"quhe/internal/he/ckks"
	"quhe/internal/he/profile"
)

func TestDefaultRegistryShape(t *testing.T) {
	reg := profile.Default()
	ids := reg.IDs()
	want := []string{profile.IDLambda32k, profile.IDLambda64k, profile.IDLambda128k}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d profiles, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %q, want %q (ascending λ order)", i, ids[i], id)
		}
	}
	if reg.DefaultID() != profile.IDDefault {
		t.Errorf("default = %q, want %q", reg.DefaultID(), profile.IDDefault)
	}
	// Every profile must carry an honest multi-limb chain (depth ≥ 4) so
	// the control plane's λ choice actuates a real residue tower.
	def := reg.Default()
	if def.Params.LogN != 10 || def.Params.Depth < 4 {
		t.Errorf("default params LogN=%d Depth=%d, want 10/≥4",
			def.Params.LogN, def.Params.Depth)
	}
	for _, p := range reg.Profiles() {
		if p.Params.Depth < 4 {
			t.Errorf("%s: depth %d, want ≥ 4", p.ID, p.Params.Depth)
		}
	}
	// λ, MSL and cost coefficients are strictly increasing in the order.
	profs := reg.Profiles()
	for i := 1; i < len(profs); i++ {
		if profs[i].Lambda <= profs[i-1].Lambda {
			t.Errorf("λ not increasing: %g after %g", profs[i].Lambda, profs[i-1].Lambda)
		}
		if profs[i].MSL() <= profs[i-1].MSL() {
			t.Errorf("MSL not increasing: %g after %g", profs[i].MSL(), profs[i-1].MSL())
		}
		if profs[i].ModeledCyclesPerBlock() <= profs[i-1].ModeledCyclesPerBlock() {
			t.Errorf("modeled cost not increasing: %g after %g",
				profs[i].ModeledCyclesPerBlock(), profs[i-1].ModeledCyclesPerBlock())
		}
	}
}

func TestContextCachedAndShared(t *testing.T) {
	p := profile.Default().Default()
	c1, err := p.Context()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Context()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("Context() rebuilt instead of returning the cached instance")
	}
	if c1.Params.N() != p.Params.N() {
		t.Errorf("context N=%d, profile N=%d", c1.Params.N(), p.Params.N())
	}
}

func TestForLambdaResolution(t *testing.T) {
	reg := profile.Default()
	cases := []struct {
		lambda float64
		want   string
	}{
		{1024, profile.IDLambda32k},   // below the set: smallest member
		{32768, profile.IDLambda32k},  // exact
		{65536, profile.IDLambda64k},  // exact
		{100000, profile.IDLambda64k}, // between members: round down
		{131072, profile.IDLambda128k},
		{1 << 20, profile.IDLambda128k}, // above the set: largest member
	}
	for _, c := range cases {
		if got := reg.ForLambda(c.lambda).ID; got != c.want {
			t.Errorf("ForLambda(%g) = %q, want %q", c.lambda, got, c.want)
		}
	}
	if _, ok := reg.ByLambda(12345); ok {
		t.Error("ByLambda matched a λ outside the set")
	}
}

func TestRegistryValidation(t *testing.T) {
	good, err := ckks.NewParams(10, 25, 18, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := profile.NewRegistry(""); err == nil {
		t.Error("empty registry accepted")
	}
	if _, err := profile.NewRegistry("",
		&profile.Profile{ID: "a", Lambda: 1, Params: good},
		&profile.Profile{ID: "a", Lambda: 2, Params: good}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := profile.NewRegistry("missing",
		&profile.Profile{ID: "a", Lambda: 1, Params: good}); err == nil {
		t.Error("unknown default accepted")
	}
	bad := good
	bad.LogN = 99
	if _, err := profile.NewRegistry("",
		&profile.Profile{ID: "bad", Lambda: 1, Params: bad}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestCalibrateInstallsCoefficient runs the real per-block measurement on
// the smallest profile and checks the registry serves it back through
// CyclesPerBlock.
func TestCalibrateInstallsCoefficient(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a key generation")
	}
	p := profile.Default().Default()
	if p.Calibrated() {
		t.Log("profile already calibrated by another test; re-measuring")
	}
	d, err := p.Calibrate(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("calibration measured %v", d)
	}
	if !p.Calibrated() {
		t.Fatal("Calibrated() false after Calibrate")
	}
	got := p.CyclesPerBlock()
	want := d.Seconds() * profile.RefHz
	if got <= 0 || got > 2*want || got < want/2 {
		t.Errorf("CyclesPerBlock = %g, want ≈ %g (measured)", got, want)
	}
	// The modeled fallback should be in the same decade as the
	// measurement — it is what uncalibrated controllers plan with.
	modeled := p.ModeledCyclesPerBlock()
	if ratio := modeled / got; ratio < 0.1 || ratio > 10 {
		t.Logf("modeled/measured coefficient ratio %.2f drifting; consider refitting modeledCyclesPerNLogN", ratio)
	}
}
