package profile

import (
	"fmt"
	"time"

	"quhe/internal/he/ckks"
	"quhe/internal/transcipher"
)

// Calibrate measures the profile's real per-block serving cost — one
// transcipher-and-infer operation (the edge server's unit of work) on the
// profile's parameters — and installs it as the profile's cost
// coefficient, expressed in cycles at RefHz so it remains comparable to
// the modeled value. keyLen is the transciphering key length of the
// runtime being calibrated for (edge.KeyLen). The minimum of rounds runs
// is kept, which discards scheduler noise; rounds below 1 default to 3.
//
// Calibration is deliberately not run by servers at startup — it costs a
// key generation per profile — but by benchmarks, load generators and
// experiments that want the control plane planning against measured
// rather than modeled coefficients.
func (p *Profile) Calibrate(keyLen, rounds int) (time.Duration, error) {
	if rounds < 1 {
		rounds = 3
	}
	ctx, err := p.Context()
	if err != nil {
		return 0, fmt.Errorf("profile: calibrate %s: %w", p.ID, err)
	}
	cipher, err := transcipher.New(ctx, keyLen)
	if err != nil {
		return 0, fmt.Errorf("profile: calibrate %s: %w", p.ID, err)
	}
	kg := ckks.NewKeyGenerator(ctx, 0x5ca1e)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 0x5ca1f)
	key, err := cipher.DeriveKey([]byte("profile-calibration"))
	if err != nil {
		return 0, fmt.Errorf("profile: calibrate %s: %w", p.ID, err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		return 0, fmt.Errorf("profile: calibrate %s: %w", p.ID, err)
	}
	nonce := []byte("profile-cal-")
	data := make([]float64, cipher.Slots())
	for i := range data {
		data[i] = 0.25
	}
	weights := []float64{0.5}
	bias := []float64{0.1}
	scratch := cipher.NewScratch()

	best := time.Duration(0)
	for r := 0; r < rounds; r++ {
		masked, err := cipher.Mask(key, nonce, uint32(r), data)
		if err != nil {
			return 0, fmt.Errorf("profile: calibrate %s: %w", p.ID, err)
		}
		start := time.Now()
		if _, err := cipher.TranscipherAffineWith(scratch, ev, rlk, encKey, nonce,
			uint32(r), masked, weights, bias); err != nil {
			return 0, fmt.Errorf("profile: calibrate %s: %w", p.ID, err)
		}
		elapsed := time.Since(start)
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	p.SetMeasuredCyclesPerBlock(best.Seconds() * RefHz)
	return best, nil
}

// CalibrateRotations measures the profile's real per-rotation cost — one
// hoisted Galois rotation (the BSGS matvec kernel's unit of extra work
// per matrix term) on the profile's parameters — and installs it as the
// per-rotation cost coefficient in cycles at RefHz. The hoisted
// decomposition is done once outside the timed region, exactly as the
// kernel amortizes it, so the coefficient prices the marginal rotation,
// not the shared ModUp. The minimum over rounds·rotations timings is
// kept; rounds below 1 default to 3.
func (p *Profile) CalibrateRotations(rounds int) (time.Duration, error) {
	if rounds < 1 {
		rounds = 3
	}
	ctx, err := p.Context()
	if err != nil {
		return 0, fmt.Errorf("profile: calibrate rotations %s: %w", p.ID, err)
	}
	kg := ckks.NewKeyGenerator(ctx, 0x5ca20)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	// A small representative rotation set: the timed cost of a hoisted
	// rotation is rotation-independent (same gather-MAC and ModDown work
	// for every Galois element), so a handful suffice.
	rots := []int{1, 2, 4}
	gks := kg.GenGaloisKeys(sk, rots)
	ev := ckks.NewEvaluator(ctx, 0x5ca21)
	enc := ckks.NewEncoder(ctx)
	data := make([]float64, p.Slots())
	for i := range data {
		data[i] = 0.25
	}
	pt, err := enc.EncodeReal(data, p.Params.Scale())
	if err != nil {
		return 0, fmt.Errorf("profile: calibrate rotations %s: %w", p.ID, err)
	}
	ct := ev.Encrypt(pk, pt)
	h := ev.NewHoisted()
	ev.HoistInto(h, ct)
	out := ctx.NewCiphertext(ct.Level)
	best := time.Duration(0)
	for r := 0; r < rounds; r++ {
		for _, rot := range rots {
			start := time.Now()
			if err := ev.RotateHoistedInto(h, rot, gks, out); err != nil {
				return 0, fmt.Errorf("profile: calibrate rotations %s: %w", p.ID, err)
			}
			elapsed := time.Since(start)
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
	}
	p.SetMeasuredCyclesPerRotation(best.Seconds() * RefHz)
	return best, nil
}

// CalibrateAll calibrates every member of the registry — the per-block
// transcipher-and-infer coefficient and the per-rotation coefficient —
// returning the first error. Already-calibrated profiles are re-measured.
func (r *Registry) CalibrateAll(keyLen, rounds int) error {
	for _, p := range r.Profiles() {
		if _, err := p.Calibrate(keyLen, rounds); err != nil {
			return err
		}
		if _, err := p.CalibrateRotations(rounds); err != nil {
			return err
		}
	}
	return nil
}
