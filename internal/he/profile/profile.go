// Package profile is the security-profile registry of the QuHE serving
// stack: it maps the paper's discrete CKKS degree set λ ∈ {2^15, 2^16,
// 2^17} (Eq. 17d) to validated, runnable CKKS parameter sets with
// per-operation cost coefficients, so the control plane's λ choice can be
// actuated as real ciphertext parameters instead of only feeding the cost
// model.
//
// Each Profile pairs the paper-scale λ it models (the value f_msl and the
// fitted cost curves of Eqs. 29–31 are evaluated at) with a scaled-down
// ckks.Params the repository can actually run (LogN 10–12 instead of
// 15–17, preserving the relative ordering of security level and compute
// cost). Every profile carries an honest multi-limb residue tower — a
// 60-bit base prime, four 50-bit rescaling primes and a 61-bit special
// prime for hybrid key switching — so the λ choice actuates real RNS
// chains, not single-modulus stand-ins. Contexts are built lazily and
// cached per profile — prime search and NTT-table construction happen
// once per process, and every server, client and worker pool over the
// same profile shares one immutable context.
//
// Cost coefficients come in two flavors. ModeledCyclesPerBlock is an
// a·L·N·log2(N) model of the dominant transciphering work (per-limb
// NTT-bound, L the limb count), with the constant fitted to the
// repository's own evaluator; Calibrate replaces it with a measured value
// by running the real transcipher-and-infer operation on the profile's
// parameters. The controller's per-route λ choice consumes CyclesPerBlock
// — measured when calibrated, modeled otherwise — and
// experiments.ProfileMix verifies the coefficients against live per-op
// latency. Servers can opt into startup calibration with
// edge.ServerConfig.CalibrateProfiles.
package profile

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"quhe/internal/costmodel"
	"quhe/internal/he/ckks"
)

// Built-in profile IDs, ordered by ascending security level. IDDefault is
// the profile every peer that skips profile negotiation is pinned to;
// both endpoints derive identical parameters from it, so key material and
// ciphertexts line up without carrying parameters on the wire.
const (
	IDLambda32k  = "lambda-32k"
	IDLambda64k  = "lambda-64k"
	IDLambda128k = "lambda-128k"

	IDDefault = IDLambda32k
)

// modeledCyclesPerLimbNLogN is the fitted constant a of the a·L·N·log2(N)
// per-block cost model, in CPU cycles at the reference 3.3 GHz clock of
// the paper's cost model. L = Depth+1 is the residue-tower limb count:
// every hot operation (NTT, coefficient-wise product, rescale) applies
// once per limb, so per-block cost is linear in the chain length at fixed
// N. Fitted against this repository's transcipher-and-infer operation
// (8 plaintext muls, one ciphertext mul-relin, one rescale) on the
// depth-4 built-in chains at LogN 10–12; Calibrate supersedes it with a
// live measurement.
const modeledCyclesPerLimbNLogN = 910.0

// RefHz is the reference server clock the cost coefficients are expressed
// against (the paper's 3.3 GHz, matching costmodel and the edge server
// default).
const RefHz = 3.3e9

// modeledRotCyclesPerLimbNLogN is the fitted constant of the per-rotation
// a·L·N·log2(N) cost model: one hoisted Galois rotation is one
// key-switch (digit products against the rotation key plus the inverse
// NTTs of the hoisted decomposition's recombination), so it scales like
// the transcipher's per-limb NTT work but with a much smaller constant —
// the hoisted decomposition is shared across the rotation set, leaving
// only the per-rotation inner products. Fitted against this repository's
// RotateHoistedInto on the built-in chains; CalibrateRotations supersedes
// it with a live measurement.
const modeledRotCyclesPerLimbNLogN = 95.0

// chainDepth is the rescaling depth every built-in profile runs at. The
// transcipher itself consumes two levels (linear + quadratic keystream
// layers); the remaining levels are headroom for encrypted inference on
// top of the transciphered block, giving every profile an honest
// multi-limb residue tower (L = chainDepth+1 limbs).
const chainDepth = 4

// Profile binds one of the paper's λ security levels to a runnable CKKS
// parameter set. Profiles are immutable after registration except for the
// calibrated cost coefficient, which is updated atomically.
type Profile struct {
	// ID names the profile on the wire and in plans.
	ID string
	// Lambda is the paper-scale CKKS degree this profile models: f_msl and
	// the fitted cost curves are evaluated at it.
	Lambda float64
	// Params is the runnable parameter set sessions on this profile use.
	Params ckks.Params

	ctxOnce sync.Once
	ctx     *ckks.Context
	ctxErr  error

	// measuredCycles holds the calibrated per-block cost in cycles at
	// RefHz as float64 bits (0 = not calibrated). measuredRotCycles is
	// the same for one hoisted Galois rotation.
	measuredCycles    atomic.Uint64
	measuredRotCycles atomic.Uint64
}

// MSL returns f_msl(Lambda), the profile's security level in bits (Eq. 30).
func (p *Profile) MSL() float64 { return costmodel.MinSecurityLevel(p.Lambda) }

// Slots returns the per-block slot capacity of the runnable parameters.
func (p *Profile) Slots() int { return p.Params.Slots() }

// Context returns the profile's CKKS context, building it on first use and
// caching it for every later caller. Contexts are immutable and safe to
// share across servers, clients and pools.
func (p *Profile) Context() (*ckks.Context, error) {
	p.ctxOnce.Do(func() {
		p.ctx, p.ctxErr = ckks.NewContext(p.Params)
	})
	return p.ctx, p.ctxErr
}

// ModeledCyclesPerBlock returns the uncalibrated a·L·N·log2(N) cost model
// for one transcipher-and-infer block on this profile's parameters, in
// cycles at RefHz, with L the profile's residue-tower limb count.
func (p *Profile) ModeledCyclesPerBlock() float64 {
	n := float64(p.Params.N())
	l := float64(p.Params.Depth + 1)
	return modeledCyclesPerLimbNLogN * l * n * math.Log2(n)
}

// CyclesPerBlock returns the per-block cost coefficient the control plane
// should plan with: the calibrated measurement when one exists, the
// modeled value otherwise.
func (p *Profile) CyclesPerBlock() float64 {
	if bits := p.measuredCycles.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return p.ModeledCyclesPerBlock()
}

// Calibrated reports whether a measured coefficient has been installed.
func (p *Profile) Calibrated() bool { return p.measuredCycles.Load() != 0 }

// SetMeasuredCyclesPerBlock installs a calibrated per-block cost (cycles
// at RefHz); non-positive values are ignored.
func (p *Profile) SetMeasuredCyclesPerBlock(cycles float64) {
	if cycles > 0 {
		p.measuredCycles.Store(math.Float64bits(cycles))
	}
}

// ModeledCyclesPerRotation returns the uncalibrated a·L·N·log2(N) cost
// model for one hoisted Galois rotation on this profile's parameters, in
// cycles at RefHz.
func (p *Profile) ModeledCyclesPerRotation() float64 {
	n := float64(p.Params.N())
	l := float64(p.Params.Depth + 1)
	return modeledRotCyclesPerLimbNLogN * l * n * math.Log2(n)
}

// CyclesPerRotation returns the per-rotation cost coefficient the control
// plane should plan with: the calibrated measurement when one exists, the
// modeled value otherwise.
func (p *Profile) CyclesPerRotation() float64 {
	if bits := p.measuredRotCycles.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return p.ModeledCyclesPerRotation()
}

// RotationsCalibrated reports whether a measured per-rotation coefficient
// has been installed.
func (p *Profile) RotationsCalibrated() bool { return p.measuredRotCycles.Load() != 0 }

// SetMeasuredCyclesPerRotation installs a calibrated per-rotation cost
// (cycles at RefHz); non-positive values are ignored.
func (p *Profile) SetMeasuredCyclesPerRotation(cycles float64) {
	if cycles > 0 {
		p.measuredRotCycles.Store(math.Float64bits(cycles))
	}
}

// ComputeDelaySec models the serving delay of demandBytesPerSec of masked
// traffic on this profile: blocks are demand/(8·slots) per second, each
// costing CyclesPerBlock at serverHz.
func (p *Profile) ComputeDelaySec(demandBytesPerSec, serverHz float64) float64 {
	return p.ServeDelaySec(demandBytesPerSec, 0, serverHz)
}

// ServeDelaySec generalizes ComputeDelaySec to rotation-bearing traffic:
// each block costs CyclesPerBlock for the transcipher-and-infer base plus
// rotationsPerBlock hoisted Galois rotations (the BSGS matvec kernel's
// per-block rotation count) at CyclesPerRotation. rotationsPerBlock 0
// reduces to the affine serving model.
func (p *Profile) ServeDelaySec(demandBytesPerSec, rotationsPerBlock, serverHz float64) float64 {
	if serverHz <= 0 {
		return math.Inf(1)
	}
	blocksPerSec := demandBytesPerSec / (8 * float64(p.Slots()))
	perBlock := p.CyclesPerBlock()
	if rotationsPerBlock > 0 {
		perBlock += rotationsPerBlock * p.CyclesPerRotation()
	}
	return blocksPerSec * perBlock / serverHz
}

// Registry is an ordered, immutable set of profiles keyed by ID. The
// zero-cost reads on the serving hot path (Get) are map lookups on a map
// that is never mutated after construction.
type Registry struct {
	byID      map[string]*Profile
	order     []*Profile // ascending Lambda
	defaultID string
}

// NewRegistry assembles a registry from validated profiles; the first
// profile (after sorting by ascending λ) with the lowest λ becomes the
// default unless defaultID names another member.
func NewRegistry(defaultID string, profiles ...*Profile) (*Registry, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("profile: empty registry")
	}
	r := &Registry{byID: make(map[string]*Profile, len(profiles))}
	for _, p := range profiles {
		if p.ID == "" {
			return nil, fmt.Errorf("profile: profile with empty ID")
		}
		if p.Lambda <= 0 {
			return nil, fmt.Errorf("profile: %s: non-positive λ %g", p.ID, p.Lambda)
		}
		if err := p.Params.Validate(); err != nil {
			return nil, fmt.Errorf("profile: %s: %w", p.ID, err)
		}
		if _, dup := r.byID[p.ID]; dup {
			return nil, fmt.Errorf("profile: duplicate ID %q", p.ID)
		}
		r.byID[p.ID] = p
		r.order = append(r.order, p)
	}
	sort.Slice(r.order, func(i, j int) bool { return r.order[i].Lambda < r.order[j].Lambda })
	if defaultID == "" {
		defaultID = r.order[0].ID
	}
	if _, ok := r.byID[defaultID]; !ok {
		return nil, fmt.Errorf("profile: default %q not in registry", defaultID)
	}
	r.defaultID = defaultID
	return r, nil
}

// Get looks a profile up by ID.
func (r *Registry) Get(id string) (*Profile, bool) {
	p, ok := r.byID[id]
	return p, ok
}

// DefaultID returns the default profile's ID (what empty negotiations and
// legacy peers resolve to).
func (r *Registry) DefaultID() string { return r.defaultID }

// Default returns the default profile.
func (r *Registry) Default() *Profile { return r.byID[r.defaultID] }

// Profiles returns the members in ascending-λ order. The slice is shared;
// callers must not mutate it.
func (r *Registry) Profiles() []*Profile { return r.order }

// IDs returns the member IDs in ascending-λ order.
func (r *Registry) IDs() []string {
	ids := make([]string, len(r.order))
	for i, p := range r.order {
		ids[i] = p.ID
	}
	return ids
}

// ByLambda returns the profile whose paper-scale λ matches exactly.
func (r *Registry) ByLambda(lambda float64) (*Profile, bool) {
	for _, p := range r.order {
		if p.Lambda == lambda {
			return p, true
		}
	}
	return nil, false
}

// ForLambda resolves a planned λ to the best actuatable profile: the
// largest member whose λ does not exceed the plan's, falling back to the
// smallest member when the plan sits below the whole set.
func (r *Registry) ForLambda(lambda float64) *Profile {
	best := r.order[0]
	for _, p := range r.order {
		if p.Lambda <= lambda {
			best = p
		}
	}
	return best
}

// logNFor maps a built-in profile ID to its scaled-down ring degree
// (LogN 10–12 standing in for the paper's 15–17).
func logNFor(id string) int {
	switch id {
	case IDLambda64k:
		return 11
	case IDLambda128k:
		return 12
	default:
		return 10
	}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide built-in registry: the paper's three λ
// levels scaled to runnable ring degrees, sharing one cached context per
// profile across every caller. The default member (IDDefault) is what
// every peer that skips profile negotiation runs on.
func Default() *Registry {
	defaultOnce.Do(func() {
		mk := func(id string, lambda float64) *Profile {
			// Every profile runs a full-width residue tower: 60-bit base
			// prime, four 50-bit scale primes (chainDepth rescales) and the
			// 61-bit special prime for hybrid key switching. Only the ring
			// degree varies with λ — the chain shape is what production
			// RNS-CKKS parameter sets look like, and the wide scale keeps
			// serving accuracy far beyond the inference tolerance at every
			// degree.
			params, err := ckks.NewParams(logNFor(id), 60, 50, chainDepth)
			if err != nil {
				panic("profile: invalid built-in params for " + id + ": " + err.Error())
			}
			return &Profile{ID: id, Lambda: lambda, Params: params}
		}
		reg, err := NewRegistry(IDDefault,
			mk(IDLambda32k, 32768),
			mk(IDLambda64k, 65536),
			mk(IDLambda128k, 131072),
		)
		if err != nil {
			panic("profile: built-in registry: " + err.Error())
		}
		defaultReg = reg
	})
	return defaultReg
}
