// Package lwe estimates the concrete security of LWE/RLWE parameter sets
// with core-SVP cost models for the three attacks the QuHE paper feeds to
// the LWE estimator (§III-C.3): primal uSVP, BDD/decoding, and the (dual)
// hybrid attack. The estimates follow the standard conservative
// methodology: find the smallest BKZ blocksize β that satisfies the
// attack's success condition, then charge 0.292·β bits (classical sieving,
// Becker-Ducas-Gama-Laarhoven) plus attack-specific repetition costs.
//
// These analytic models are a surrogate for the Sage LWE-estimator the
// paper used — the paper itself only consumes a fitted linear model
// f_msl(λ) = 0.002·λ + 1.4789 (Eq. 30), which FitLinearModel regenerates
// from this estimator's output.
package lwe

import (
	"fmt"
	"math"

	"quhe/internal/mathutil"
)

// Attack identifies one of the modeled attacks.
type Attack int

const (
	// AttackUSVP is the primal unique-SVP embedding attack.
	AttackUSVP Attack = iota + 1
	// AttackBDD is bounded-distance decoding (primal decoding).
	AttackBDD
	// AttackHybridDual is the dual attack with partial secret guessing.
	AttackHybridDual
)

// String implements fmt.Stringer.
func (a Attack) String() string {
	switch a {
	case AttackUSVP:
		return "uSVP"
	case AttackBDD:
		return "BDD"
	case AttackHybridDual:
		return "hybrid-dual"
	default:
		return fmt.Sprintf("Attack(%d)", int(a))
	}
}

// Estimate is the outcome of one attack's cost model.
type Estimate struct {
	Attack Attack
	// Beta is the minimal successful BKZ blocksize.
	Beta int
	// Samples is the optimal number of LWE samples m.
	Samples int
	// Guessed is the number of guessed secret coordinates (hybrid only).
	Guessed int
	// SecurityBits is the attack cost in bits (higher = safer).
	SecurityBits float64
}

// coreSVPCoeff is the classical sieving exponent (0.292·β).
const coreSVPCoeff = 0.292

// logDelta2 returns log2 of the BKZ-β root-Hermite factor
// δ = ((πβ)^{1/β}·β/(2πe))^{1/(2(β−1))}.
func logDelta2(beta float64) float64 {
	if beta <= 50 {
		beta = 50
	}
	inner := math.Pow(math.Pi*beta, 1/beta) * beta / (2 * math.Pi * math.E)
	return math.Log2(inner) / (2 * (beta - 1))
}

// betaRange bounds the blocksize search.
const (
	betaMin = 60
	betaMax = 4000
)

// primalBeta returns the smallest β whose primal success condition holds
// for dimension n, modulus 2^logQ, noise σ and m samples; slack > 1 makes
// the condition harder (used by the BDD surrogate). Returns 0 when no β in
// range succeeds.
func primalBeta(n int, logQ, sigma float64, m int, slack float64) int {
	d := float64(m + n + 1)
	lhsConst := math.Log2(sigma * slack) // + 0.5·log2 β added in loop
	rhsVol := float64(m) / d * logQ
	for beta := betaMin; beta <= betaMax; beta++ {
		b := float64(beta)
		lhs := lhsConst + 0.5*math.Log2(b)
		rhs := (2*b-d-1)*logDelta2(b) + rhsVol
		if lhs <= rhs {
			return beta
		}
	}
	return 0
}

// sampleGrid yields candidate sample counts m for optimization.
func sampleGrid(n int) []int {
	var grid []int
	for _, f := range []float64{0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3} {
		m := int(f * float64(n))
		if m >= 100 {
			grid = append(grid, m)
		}
	}
	if len(grid) == 0 {
		grid = []int{100}
	}
	return grid
}

// EstimateUSVP costs the primal uSVP attack, optimizing the sample count.
func EstimateUSVP(n int, logQ, sigma float64) Estimate {
	best := Estimate{Attack: AttackUSVP, SecurityBits: math.Inf(1)}
	for _, m := range sampleGrid(n) {
		beta := primalBeta(n, logQ, sigma, m, 1)
		if beta == 0 {
			continue
		}
		if bits := coreSVPCoeff * float64(beta); bits < best.SecurityBits {
			best = Estimate{Attack: AttackUSVP, Beta: beta, Samples: m, SecurityBits: bits}
		}
	}
	if math.IsInf(best.SecurityBits, 1) {
		// No β succeeds: the instance is beyond the model's range; report
		// the conservative ceiling.
		best.Beta = betaMax
		best.SecurityBits = coreSVPCoeff * betaMax
	}
	return best
}

// EstimateBDD costs the primal decoding (BDD) attack. The surrogate treats
// it as the primal embedding with a √(4/3) Kannan-embedding slack, which
// tracks the estimator's small constant gap between uSVP and decoding.
func EstimateBDD(n int, logQ, sigma float64) Estimate {
	slack := math.Sqrt(4.0 / 3.0)
	best := Estimate{Attack: AttackBDD, SecurityBits: math.Inf(1)}
	for _, m := range sampleGrid(n) {
		beta := primalBeta(n, logQ, sigma, m, slack)
		if beta == 0 {
			continue
		}
		if bits := coreSVPCoeff * float64(beta); bits < best.SecurityBits {
			best = Estimate{Attack: AttackBDD, Beta: beta, Samples: m, SecurityBits: bits}
		}
	}
	if math.IsInf(best.SecurityBits, 1) {
		best.Beta = betaMax
		best.SecurityBits = coreSVPCoeff * betaMax
	}
	return best
}

// dualCost returns the bit cost of the plain dual attack on dimension n
// with m samples at blocksize β: one BKZ run plus enough repetitions to
// amplify the distinguishing advantage ε = exp(−2π²τ²), τ = ℓσ/q.
func dualCost(n int, logQ, sigma float64, m, beta int) float64 {
	d := float64(m + n)
	b := float64(beta)
	logEll := d*logDelta2(b) + float64(n)/d*logQ // log2 ‖v‖
	logTau := logEll + math.Log2(sigma) - logQ
	tau := math.Pow(2, logTau)
	eps := math.Exp(-2 * math.Pi * math.Pi * tau * tau)
	if eps <= 0 {
		return math.Inf(1)
	}
	// Repetitions ~ 1/ε²; each costs one short vector (amortized as free
	// within sieving up to 2^{0.208β} vectors, then rerandomized runs).
	logReps := math.Max(0, -2*math.Log2(eps))
	free := 0.208 * b // sieving emits ~2^{0.208β} short vectors
	extra := math.Max(0, logReps-free)
	return coreSVPCoeff*b + extra
}

// EstimateHybridDual costs the hybrid dual attack: guess g secret
// coordinates (ternary secret ⇒ 3^g guesses, amortized by
// Matzov-style batching to √(3^g)) and run the dual attack on the
// remaining n−g coordinates.
func EstimateHybridDual(n int, logQ, sigma float64) Estimate {
	best := Estimate{Attack: AttackHybridDual, SecurityBits: math.Inf(1)}
	guessGrid := []int{0, n / 64, n / 32, n / 16, n / 8}
	for _, g := range guessGrid {
		rem := n - g
		if rem < 100 {
			continue
		}
		guessBits := 0.5 * float64(g) * math.Log2(3)
		for _, m := range sampleGrid(rem) {
			for beta := betaMin; beta <= betaMax; beta += 8 {
				cost := dualCost(rem, logQ, sigma, m, beta)
				total := math.Max(cost, guessBits) + 1 // +1: combine stages
				if total < best.SecurityBits {
					best = Estimate{
						Attack: AttackHybridDual, Beta: beta, Samples: m,
						Guessed: g, SecurityBits: total,
					}
				}
			}
		}
	}
	if math.IsInf(best.SecurityBits, 1) {
		best.Beta = betaMax
		best.SecurityBits = coreSVPCoeff * betaMax
	}
	return best
}

// MinSecurityLevel returns the minimum security in bits across the three
// attacks — the paper's f_msl — together with the per-attack estimates.
func MinSecurityLevel(n int, logQ, sigma float64) (float64, []Estimate) {
	ests := []Estimate{
		EstimateUSVP(n, logQ, sigma),
		EstimateBDD(n, logQ, sigma),
		EstimateHybridDual(n, logQ, sigma),
	}
	min := ests[0].SecurityBits
	for _, e := range ests[1:] {
		if e.SecurityBits < min {
			min = e.SecurityBits
		}
	}
	return min, ests
}

// FitLinearModel runs the estimator at each ring degree and least-squares
// fits security ≈ intercept + slope·λ — the regeneration of Eq. (30).
func FitLinearModel(lambdas []int, logQ, sigma float64) (intercept, slope, r2 float64, err error) {
	if len(lambdas) < 2 {
		return 0, 0, 0, fmt.Errorf("lwe: need at least 2 degrees, got %d", len(lambdas))
	}
	xs := make([]float64, len(lambdas))
	ys := make([]float64, len(lambdas))
	for i, n := range lambdas {
		xs[i] = float64(n)
		ys[i], _ = MinSecurityLevel(n, logQ, sigma)
	}
	intercept, slope, err = mathutil.LinFit(xs, ys)
	if err != nil {
		return 0, 0, 0, err
	}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = intercept + slope*x
	}
	return intercept, slope, mathutil.RSquared(ys, pred), nil
}

// CalibrateLogQ finds the modulus size at which degree n reaches the target
// security level, by bisection. It mirrors how the paper fixes "large"
// coefficient moduli q and then reads security off the estimator.
func CalibrateLogQ(n int, sigma, targetBits float64) (float64, error) {
	lo, hi := 10.0, 20000.0
	secAt := func(logQ float64) float64 {
		s, _ := MinSecurityLevel(n, logQ, sigma)
		return s
	}
	// Security decreases as logQ grows.
	if secAt(lo) < targetBits {
		return 0, fmt.Errorf("lwe: target %g bits unreachable even at logQ=%g", targetBits, lo)
	}
	if secAt(hi) > targetBits {
		return 0, fmt.Errorf("lwe: target %g bits exceeded even at logQ=%g", targetBits, hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if secAt(mid) > targetBits {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
