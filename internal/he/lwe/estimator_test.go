package lwe

import (
	"math"
	"testing"
)

const sigma = 3.2

func TestSecurityMonotoneInN(t *testing.T) {
	logQ := 880.0
	prev := -1.0
	for _, n := range []int{16384, 32768, 65536, 131072} {
		sec, _ := MinSecurityLevel(n, logQ, sigma)
		if sec <= prev {
			t.Errorf("security not increasing: n=%d gives %v after %v", n, sec, prev)
		}
		prev = sec
	}
}

func TestSecurityDecreasingInLogQ(t *testing.T) {
	n := 32768
	prev := math.Inf(1)
	for _, logQ := range []float64{400, 600, 800, 1200} {
		sec, _ := MinSecurityLevel(n, logQ, sigma)
		if sec >= prev {
			t.Errorf("security not decreasing: logQ=%v gives %v after %v", logQ, sec, prev)
		}
		prev = sec
	}
}

func TestMinIsMinimum(t *testing.T) {
	min, ests := MinSecurityLevel(32768, 880, sigma)
	if len(ests) != 3 {
		t.Fatalf("got %d estimates", len(ests))
	}
	for _, e := range ests {
		if e.SecurityBits < min {
			t.Errorf("attack %s (%v bits) below reported min %v", e.Attack, e.SecurityBits, min)
		}
	}
	seen := map[Attack]bool{}
	for _, e := range ests {
		seen[e.Attack] = true
	}
	if !seen[AttackUSVP] || !seen[AttackBDD] || !seen[AttackHybridDual] {
		t.Errorf("missing attacks in %v", ests)
	}
}

func TestBDDHarderThanUSVP(t *testing.T) {
	// The Kannan slack makes decoding (slightly) costlier than plain uSVP
	// at the same parameters.
	u := EstimateUSVP(32768, 880, sigma)
	b := EstimateBDD(32768, 880, sigma)
	if b.SecurityBits < u.SecurityBits {
		t.Errorf("BDD (%v) below uSVP (%v)", b.SecurityBits, u.SecurityBits)
	}
}

func TestKnownRegime(t *testing.T) {
	// A standard-ish FHE setting: n=32768 with ~880-bit modulus sits in
	// the high-tens-of-bits range (the paper's f_msl(2^15) = 67 bits).
	sec, _ := MinSecurityLevel(32768, 880, sigma)
	if sec < 30 || sec > 150 {
		t.Errorf("security %v bits outside plausible band [30, 150]", sec)
	}
}

func TestAttackString(t *testing.T) {
	if AttackUSVP.String() != "uSVP" || AttackBDD.String() != "BDD" || AttackHybridDual.String() != "hybrid-dual" {
		t.Error("attack labels wrong")
	}
	if Attack(9).String() != "Attack(9)" {
		t.Error("unknown attack label wrong")
	}
}

// TestPaperModelRegeneration is the headline test: calibrate logQ so that
// λ=2^15 yields the paper's 67.01 bits, then fit the linear model across
// {2^15, 2^16, 2^17}. The slope must come out near the paper's 0.002
// (security is near-linear in the ring degree at fixed modulus).
func TestPaperModelRegeneration(t *testing.T) {
	target := 0.002*32768 + 1.4789 // f_msl(2^15) = 67.0149
	logQ, err := CalibrateLogQ(32768, sigma, target)
	if err != nil {
		t.Fatal(err)
	}
	sec, _ := MinSecurityLevel(32768, logQ, sigma)
	if math.Abs(sec-target) > 1.5 {
		t.Fatalf("calibrated security %v, want ≈ %v", sec, target)
	}
	intercept, slope, r2, err := FitLinearModel([]int{32768, 65536, 131072}, logQ, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Sage estimator fitted 0.002; our surrogate lands within
	// a factor of ~2 (security grows slightly superlinearly in n here,
	// hence also the negative intercept). Same shape: linear, positive.
	if slope < 0.001 || slope > 0.005 {
		t.Errorf("fitted slope %v outside [0.001, 0.005] (paper: 0.002)", slope)
	}
	if r2 < 0.97 {
		t.Errorf("linear fit R² = %v, want ≥ 0.97", r2)
	}
	t.Logf("regenerated f_msl(λ) ≈ %.4f + %.6f·λ (R²=%.4f, logQ=%.0f)", intercept, slope, r2, logQ)
}

func TestFitLinearModelValidation(t *testing.T) {
	if _, _, _, err := FitLinearModel([]int{1024}, 100, sigma); err == nil {
		t.Error("single-point fit accepted")
	}
}

func TestCalibrateLogQErrors(t *testing.T) {
	if _, err := CalibrateLogQ(1024, sigma, 1e6); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := CalibrateLogQ(1024, sigma, 1e-9); err == nil {
		t.Error("trivial target accepted")
	}
}

func TestLogDelta2Decreasing(t *testing.T) {
	// Larger blocksize ⇒ better basis ⇒ smaller root-Hermite factor.
	prev := math.Inf(1)
	for _, beta := range []float64{60, 100, 200, 400, 800} {
		d := logDelta2(beta)
		if d >= prev {
			t.Errorf("logDelta2 not decreasing at β=%v: %v after %v", beta, d, prev)
		}
		if d <= 0 {
			t.Errorf("logDelta2(%v) = %v, want positive", beta, d)
		}
		prev = d
	}
}

func TestEstimatesPopulated(t *testing.T) {
	for _, e := range []Estimate{
		EstimateUSVP(4096, 109, sigma),
		EstimateBDD(4096, 109, sigma),
		EstimateHybridDual(4096, 109, sigma),
	} {
		if e.Beta <= 0 || e.SecurityBits <= 0 {
			t.Errorf("%s estimate not populated: %+v", e.Attack, e)
		}
	}
	// n=4096, 109-bit modulus is a well-known ~128-bit setting
	// (homomorphicencryption.org table); allow a generous band since the
	// surrogate is deliberately simple.
	sec, _ := MinSecurityLevel(4096, 109, sigma)
	if sec < 80 || sec > 260 {
		t.Errorf("n=4096/logQ=109 security %v outside [80, 260]", sec)
	}
}

func BenchmarkMinSecurityLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MinSecurityLevel(32768, 880, sigma)
	}
}
