package ring

import (
	"math/big"
	"math/rand"
	"testing"
)

// testTower builds an L-limb tower (60-bit base, 50-bit scale primes,
// 61-bit special prime) at ring degree n.
func testTower(t testing.TB, n, limbs int) *Tower {
	t.Helper()
	bitLens := make([]int, limbs+1)
	bitLens[0] = 60
	for i := 1; i < limbs; i++ {
		bitLens[i] = 50
	}
	bitLens[limbs] = 61
	primes, err := FindNTTPrimesDistinct(bitLens, n)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTower(n, primes[:limbs], primes[limbs])
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

// crtBig reconstructs coefficient j of p over the given moduli as the
// unique big.Int in [0, ∏moduli).
func crtBig(p []Poly, moduli []uint64, j int) *big.Int {
	x := new(big.Int)
	prod := big.NewInt(1)
	for i, q := range moduli {
		qi := new(big.Int).SetUint64(q)
		// Incremental CRT: x ← x + prod·((r_i − x)·prod⁻¹ mod q_i).
		r := new(big.Int).SetUint64(p[i][j])
		d := new(big.Int).Sub(r, x)
		d.Mod(d, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(prod, qi), qi)
		d.Mul(d, inv).Mod(d, qi)
		x.Add(x, d.Mul(d, prod))
		prod.Mul(prod, qi)
	}
	return x.Mod(x, prod)
}

// centerBig maps x ∈ [0, q) to its centered representative in
// (−q/2, q/2].
func centerBig(x, q *big.Int) *big.Int {
	half := new(big.Int).Rsh(q, 1)
	if x.Cmp(half) > 0 {
		return new(big.Int).Sub(x, q)
	}
	return new(big.Int).Set(x)
}

// exactDivBig computes (x − [x]_d)/d for centered x: the reference for
// both RescaleInto (d = q_ℓ) and ModDownInto (d = P). [x]_d follows the
// same uncentered-residue convention as the implementation: the residue
// in [0, d) is centered only by its own magnitude, so the correction is
// identical on both sides.
func exactDivBig(x *big.Int, d uint64) *big.Int {
	db := new(big.Int).SetUint64(d)
	r := new(big.Int).Mod(x, db) // [0, d) regardless of x's sign
	r = centerBig(r, db)
	return new(big.Int).Div(new(big.Int).Sub(x, r), db)
}

// randomRNS fills limbs with independent uniform residues — by CRT a
// uniform value mod the limb product.
func randomRNS(tw *Tower, rng *rand.Rand, limbs int) RNSPoly {
	p := tw.NewPoly(limbs)
	for i := 0; i < limbs; i++ {
		tw.Qi[i].UniformPolyInto(rng, p[i])
	}
	return p
}

// TestRescaleMatchesBigInt checks the exact RNS rescale bit-for-bit
// against a big.Int CRT reference at every chain length the serving
// profiles use.
func TestRescaleMatchesBigInt(t *testing.T) {
	const n = 16
	for _, limbs := range []int{2, 3, 4, 5} {
		tw := testTower(t, n, limbs)
		rng := rand.New(rand.NewSource(int64(100 + limbs)))
		in := randomRNS(tw, rng, limbs)
		out := tw.NewPoly(limbs - 1)
		tw.RescaleInto(in, out)

		qs := make([]uint64, limbs)
		for i := range qs {
			qs[i] = tw.Qi[i].Q
		}
		prod := big.NewInt(1)
		for _, q := range qs {
			prod.Mul(prod, new(big.Int).SetUint64(q))
		}
		for j := 0; j < n; j++ {
			x := centerBig(crtBig([]Poly(in), qs, j), prod)
			want := exactDivBig(x, qs[limbs-1])
			for i := 0; i < limbs-1; i++ {
				qi := new(big.Int).SetUint64(qs[i])
				w := new(big.Int).Mod(want, qi).Uint64()
				if out[i][j] != w {
					t.Fatalf("L=%d coeff %d limb %d: got %d want %d", limbs, j, i, out[i][j], w)
				}
			}
		}
	}
}

// TestRescaleIsExactDivision feeds RescaleInto values that are exact
// multiples of q_ℓ: the result must be exactly x/q_ℓ with no rounding
// correction in any limb.
func TestRescaleIsExactDivision(t *testing.T) {
	const n = 16
	for _, limbs := range []int{2, 3, 4} {
		tw := testTower(t, n, limbs)
		rng := rand.New(rand.NewSource(int64(200 + limbs)))
		ql := tw.Qi[limbs-1].Q

		// x = y·q_ℓ for small signed y: build via FromInt64 of y, then
		// multiply every limb by q_ℓ mod q_i.
		y := make([]int64, n)
		for j := range y {
			y[j] = rng.Int63n(1<<40) - (1 << 39)
		}
		in := tw.NewPoly(limbs)
		tw.FromInt64Into(y, in)
		for i := 0; i < limbs; i++ {
			qi := tw.Qi[i]
			qi.MulScalar(in[i], ql%qi.Q, in[i])
		}
		out := tw.NewPoly(limbs - 1)
		tw.RescaleInto(in, out)
		wantPoly := tw.NewPoly(limbs - 1)
		tw.FromInt64Into(y, wantPoly)
		for i := range out {
			for j := range out[i] {
				if out[i][j] != wantPoly[i][j] {
					t.Fatalf("L=%d limb %d coeff %d: got %d want %d (exact multiple)",
						limbs, i, j, out[i][j], wantPoly[i][j])
				}
			}
		}
	}
}

// TestModDownMatchesBigInt checks the special-prime exact division against
// the big.Int reference: a random value over Q·P, divided down to Q.
func TestModDownMatchesBigInt(t *testing.T) {
	const n = 16
	for _, limbs := range []int{2, 3, 4} {
		tw := testTower(t, n, limbs)
		rng := rand.New(rand.NewSource(int64(300 + limbs)))
		inQ := randomRNS(tw, rng, limbs)
		inP := tw.P.UniformPoly(rng)
		out := tw.NewPoly(limbs)
		tw.ModDownInto(inQ, inP, out)

		moduli := make([]uint64, limbs+1)
		rows := make([]Poly, limbs+1)
		for i := 0; i < limbs; i++ {
			moduli[i], rows[i] = tw.Qi[i].Q, inQ[i]
		}
		moduli[limbs], rows[limbs] = tw.P.Q, inP
		prod := big.NewInt(1)
		for _, q := range moduli {
			prod.Mul(prod, new(big.Int).SetUint64(q))
		}
		for j := 0; j < n; j++ {
			x := centerBig(crtBig(rows, moduli, j), prod)
			want := exactDivBig(x, tw.P.Q)
			for i := 0; i < limbs; i++ {
				qi := new(big.Int).SetUint64(moduli[i])
				w := new(big.Int).Mod(want, qi).Uint64()
				if out[i][j] != w {
					t.Fatalf("L=%d coeff %d limb %d: got %d want %d", limbs, j, i, out[i][j], w)
				}
			}
		}
	}
}

// TestCenteredFloatMatchesBigInt cross-checks the 128-bit two-limb CRT
// decode against the big.Int reconstruction for values spanning the full
// centered range of q_0·q_1.
func TestCenteredFloatMatchesBigInt(t *testing.T) {
	const n = 64
	tw := testTower(t, n, 3)
	rng := rand.New(rand.NewSource(42))
	p := randomRNS(tw, rng, 2)
	qs := []uint64{tw.Qi[0].Q, tw.Qi[1].Q}
	prod := new(big.Int).Mul(new(big.Int).SetUint64(qs[0]), new(big.Int).SetUint64(qs[1]))
	for j := 0; j < n; j++ {
		want, _ := new(big.Float).SetInt(centerBig(crtBig([]Poly(p), qs, j), prod)).Float64()
		got := tw.CenteredFloat(p, j)
		if diff := got - want; diff > 1 || diff < -1 {
			t.Fatalf("coeff %d: got %g want %g", j, got, want)
		}
	}
	// Small signed values must decode exactly.
	vals := make([]int64, n)
	for j := range vals {
		vals[j] = rng.Int63n(1<<52) - (1 << 51)
	}
	exact := tw.NewPoly(3)
	tw.FromInt64Into(vals, exact)
	for j := range vals {
		if got := tw.CenteredFloat(exact, j); got != float64(vals[j]) {
			t.Fatalf("coeff %d: got %g want %d", j, got, vals[j])
		}
	}
}

// FuzzRNSPolyRoundTrip derives signed coefficients from the fuzz input
// and checks two invariants on a 3-limb tower: the per-limb NTT/INTT
// round trip is the identity on every limb, and the centered CRT decode
// returns exactly the encoded integers.
func FuzzRNSPolyRoundTrip(f *testing.F) {
	f.Add([]byte{0x01, 0xff, 0x80, 0x7f})
	f.Add([]byte{})
	const n = 16
	tw := testTower(f, n, 3)
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]int64, n)
		for j := range vals {
			var v uint64
			for k := 0; k < 6; k++ { // 48-bit magnitudes, well inside q_0·q_1/2
				idx := 6*j + k
				var b byte
				if len(data) > 0 {
					b = data[idx%len(data)]
				}
				v = v<<8 | uint64(b)
			}
			vals[j] = int64(v) - (1 << 47)
		}
		p := tw.NewPoly(3)
		tw.FromInt64Into(vals, p)
		orig := p.Copy()
		for i := range p {
			tw.Qi[i].NTT(p[i])
			tw.Qi[i].INTT(p[i])
		}
		for i := range p {
			for j := range p[i] {
				if p[i][j] != orig[i][j] {
					t.Fatalf("NTT round trip: limb %d coeff %d: %d != %d", i, j, p[i][j], orig[i][j])
				}
			}
		}
		for j := range vals {
			if got := tw.CenteredFloat(p, j); got != float64(vals[j]) {
				t.Fatalf("decode coeff %d: got %g want %d", j, got, vals[j])
			}
		}
	})
}
