// Division-free modular reduction primitives. Every function here compiles
// to a handful of multiplies, shifts and adds — no hardware division — given
// constants precomputed once per modulus:
//
//   - Montgomery (MRed family): needs qInv = q⁻¹ mod 2⁶⁴ (q odd). MRed(a, b)
//     returns a·b·2⁻⁶⁴ mod q, so one operand is usually kept in "Montgomery
//     form" x·2⁶⁴ mod q to cancel the 2⁻⁶⁴.
//   - Barrett (BRed family): needs brc = ⌊2¹²⁸/q⌋ as two 64-bit words. BRed
//     multiplies operands in the plain domain, BRedAdd reduces one word.
//
// Validity ranges (q < 2⁶² throughout the package):
//
//	MRed/MRedLazy  any a, b with a·b < q·2⁶⁴; strict output [0, q),
//	               lazy output [0, 2q)
//	BRed           any a, b < 2⁶⁴ (a·b up to 2¹²⁸); output [0, q)
//	BRedAdd        any a < 2⁶⁴; output [0, q)
//	MForm          any a < 2⁶⁴; output a·2⁶⁴ mod q in [0, q)
//
// All are cross-checked against bits.Rem64 by randomized property tests.
package ring

import "math/bits"

// MRedConstant returns q⁻¹ mod 2⁶⁴ for odd q, the Montgomery reduction
// constant. Five Newton iterations double the correct low bits from 3
// (q·q ≡ 1 mod 8 for odd q) past 64.
func MRedConstant(q uint64) uint64 {
	qInv := q
	for i := 0; i < 5; i++ {
		qInv *= 2 - q*qInv
	}
	return qInv
}

// BRedConstant returns ⌊2¹²⁸/q⌋ as (hi, lo) words, the Barrett reduction
// constant. q must satisfy 1 < q < 2⁶³.
func BRedConstant(q uint64) [2]uint64 {
	hi, r := bits.Div64(1, 0, q)
	lo, _ := bits.Div64(r, 0, q)
	return [2]uint64{hi, lo}
}

// MRed returns a·b·2⁻⁶⁴ mod q in [0, q). Valid whenever a·b < q·2⁶⁴
// (in particular for any a < 2⁶⁴ with b < q, the twiddle case).
func MRed(a, b, q, qInv uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	th, _ := bits.Mul64(lo*qInv, q)
	r := hi - th + q
	if r >= q {
		r -= q
	}
	return r
}

// MRedLazy is MRed without the final correction; the output lies in
// [0, 2q). It is the NTT butterfly workhorse.
func MRedLazy(a, b, q, qInv uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	th, _ := bits.Mul64(lo*qInv, q)
	return hi - th + q
}

// BRed returns a·b mod q in [0, q) for plain-domain operands, using the
// full 128-bit Barrett quotient estimate (error ≤ 2, corrected by two
// conditional subtractions; needs 4q < 2⁶⁴).
func BRed(a, b, q uint64, brc [2]uint64) uint64 {
	ahi, alo := bits.Mul64(a, b)
	// qhat ≈ ⌊(ahi·2⁶⁴ + alo)·(brc[0]·2⁶⁴ + brc[1]) / 2¹²⁸⌋: sum the three
	// partial products that reach bit 128, with carries from the mid word.
	h0hi, _ := bits.Mul64(alo, brc[1])
	h1hi, h1lo := bits.Mul64(alo, brc[0])
	h2hi, h2lo := bits.Mul64(ahi, brc[1])
	mid, c1 := bits.Add64(h0hi, h1lo, 0)
	_, c2 := bits.Add64(mid, h2lo, 0)
	qhat := ahi*brc[0] + h1hi + h2hi + c1 + c2
	r := alo - qhat*q
	if r >= 2*q {
		r -= 2 * q
	}
	if r >= q {
		r -= q
	}
	return r
}

// BRedAdd reduces a single word a to [0, q) — the cheap single-word
// reduction used where a residue mod some multiple of q must be brought
// into [0, q), e.g. CKKS level drops (quotient estimate via the high
// constant word only; error ≤ 1).
func BRedAdd(a, q uint64, brc [2]uint64) uint64 {
	qhat, _ := bits.Mul64(a, brc[0])
	r := a - qhat*q
	if r >= q {
		r -= q
	}
	return r
}

// MForm returns a·2⁶⁴ mod q, the Montgomery form of a (error ≤ 2, two
// conditional subtractions).
func MForm(a, q uint64, brc [2]uint64) uint64 {
	hhi, _ := bits.Mul64(a, brc[1])
	qhat := a*brc[0] + hhi
	r := -(qhat * q) // low word of a·2⁶⁴ − qhat·q
	if r >= 2*q {
		r -= 2 * q
	}
	if r >= q {
		r -= q
	}
	return r
}

// InvMForm takes a out of Montgomery form: a·2⁻⁶⁴ mod q.
func InvMForm(a, q, qInv uint64) uint64 {
	return MRed(a, 1, q, qInv)
}
