package ring

import (
	"encoding/binary"
	"errors"
)

// ErrShortBuffer reports a wire buffer too short for the value being
// decoded. It is the only error the Poly codec returns, so fuzzing and
// protocol layers can branch on it with errors.Is.
var ErrShortBuffer = errors.New("ring: short buffer")

// AppendBinary appends p's wire encoding to b and returns the extended
// slice: one raw little-endian uint64 per coefficient, 8·len(p) bytes, no
// length prefix (the container encodes the degree once). The loop compiles
// to straight 8-byte stores — no reflection, no per-coefficient branching —
// and appending into a buffer with sufficient capacity performs no
// allocation, which is what lets protocol layers reuse pooled frame
// buffers across messages.
func (p Poly) AppendBinary(b []byte) []byte {
	off := len(b)
	n := 8 * len(p)
	if cap(b)-off < n {
		grown := make([]byte, off, (off+n)+(off+n)/4)
		copy(grown, b)
		b = grown
	}
	b = b[: off+n : cap(b)]
	dst := b[off:]
	for i, v := range p {
		binary.LittleEndian.PutUint64(dst[8*i:], v)
	}
	return b
}

// DecodeFrom fills p from the first 8·len(p) bytes of b (the AppendBinary
// layout) and returns the number of bytes consumed. p defines the expected
// degree; a shorter buffer returns ErrShortBuffer and leaves p
// unspecified. The decoded coefficients are copied out of b, so the caller
// may immediately reuse the buffer — but note the codec does not (and
// cannot) validate coefficients against any modulus; containers that
// retain decoded polynomials across trust boundaries reduce them first.
func (p Poly) DecodeFrom(b []byte) (int, error) {
	n := 8 * len(p)
	if len(b) < n {
		return 0, ErrShortBuffer
	}
	src := b[:n]
	for i := range p {
		p[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
	return n, nil
}
