package ring

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"
	"sync"
)

// AddMod returns (a + b) mod q for a, b < q.
func AddMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q || s < a { // s < a catches wraparound (q > 2^63 unsupported)
		s -= q
	}
	return s
}

// SubMod returns (a − b) mod q for a, b < q.
func SubMod(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

// MulMod returns (a·b) mod q using 128-bit intermediate arithmetic. It is
// the division-based reference; hot paths use the precomputed
// Montgomery/Barrett routines on Modulus instead.
func MulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return bits.Rem64(hi, lo, q)
}

// PowMod returns a^e mod q by square-and-multiply.
func PowMod(a, e, q uint64) uint64 {
	result := uint64(1 % q)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, base, q)
		}
		base = MulMod(base, base, q)
		e >>= 1
	}
	return result
}

// InvMod returns a^{−1} mod q via the extended Euclidean algorithm; it
// works for any modulus as long as gcd(a, q) = 1, and returns 0 otherwise.
func InvMod(a, q uint64) uint64 {
	if q == 0 {
		return 0
	}
	// Signed Bézout on int128-free path: track coefficients mod q.
	var r0, r1 = int64(q), int64(a % q)
	var t0, t1 = int64(0), int64(1)
	for r1 != 0 {
		quot := r0 / r1
		r0, r1 = r1, r0-quot*r1
		t0, t1 = t1, t0-quot*t1
	}
	if r0 != 1 {
		return 0 // not invertible
	}
	if t0 < 0 {
		t0 += int64(q)
	}
	return uint64(t0)
}

// CRTPair combines residues r1 mod q1 and r2 mod q2 (coprime) into the
// unique value mod q1·q2. The product q1·q2 must stay below 2⁶³ so the
// final lift r1 + q1·t cannot wrap; CRTPair panics if it does not, rather
// than silently returning a wrapped value.
func CRTPair(r1, q1, r2, q2 uint64) uint64 {
	if hi, lo := bits.Mul64(q1, q2); hi != 0 || lo >= 1<<63 {
		panic(fmt.Sprintf("ring: CRTPair modulus product %d·%d exceeds 2^63", q1, q2))
	}
	inv := InvMod(q1%q2, q2)
	t := MulMod(SubMod(r2%q2, r1%q2, q2), inv, q2)
	return r1 + q1*t
}

// FindNTTPrime returns the largest prime q < 2^bitLen with q ≡ 1 (mod 2n).
// bitLen must be in [20, 62]; n a power of two.
func FindNTTPrime(bitLen, n int) (uint64, error) {
	if bitLen < 20 || bitLen > 62 {
		return 0, fmt.Errorf("ring: bitLen %d outside [20, 62]", bitLen)
	}
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("ring: n = %d is not a positive power of two", n)
	}
	step := uint64(2 * n)
	// Largest q ≡ 1 mod 2n below 2^bitLen.
	q := (uint64(1)<<uint(bitLen) - 1)
	q -= (q - 1) % step
	for ; q > step; q -= step {
		if new(big.Int).SetUint64(q).ProbablyPrime(20) {
			return q, nil
		}
	}
	return 0, fmt.Errorf("ring: no NTT prime of %d bits for n = %d", bitLen, n)
}

// FindNTTPrimes returns count distinct primes ≡ 1 (mod 2n) descending from
// 2^bitLen.
func FindNTTPrimes(bitLen, n, count int) ([]uint64, error) {
	if count <= 0 {
		return nil, fmt.Errorf("ring: count %d must be positive", count)
	}
	out := make([]uint64, 0, count)
	next := uint64(1)<<uint(bitLen) - 1
	step := uint64(2 * n)
	for len(out) < count {
		q, err := findNTTPrimeBelow(next, n)
		if err != nil {
			return nil, fmt.Errorf("ring: only %d of %d primes of %d bits for n=%d", len(out), count, bitLen, n)
		}
		out = append(out, q)
		next = q - step
	}
	return out, nil
}

func findNTTPrimeBelow(start uint64, n int) (uint64, error) {
	step := uint64(2 * n)
	q := start
	q -= (q - 1) % step
	for ; q > step; q -= step {
		if new(big.Int).SetUint64(q).ProbablyPrime(20) {
			return q, nil
		}
	}
	return 0, errors.New("ring: no NTT prime found")
}

// PrimitiveRoot2N exposes the primitive 2N-th root search for prime q so a
// CKKS modulus chain can CRT-combine per-prime roots.
func PrimitiveRoot2N(q uint64, n int) (uint64, error) {
	return primitiveRoot2N(q, uint64(n))
}

// Modulus bundles the modulus q, the ring degree N, the precomputed
// Montgomery/Barrett reduction constants and the negacyclic NTT tables
// (twiddles in bit-reversed order and Montgomery form). It is immutable
// after construction and safe for concurrent use.
type Modulus struct {
	Q uint64
	N int

	qInv uint64    // q⁻¹ mod 2⁶⁴ (Montgomery constant)
	brc  [2]uint64 // ⌊2¹²⁸/q⌋ (Barrett constant)

	psiMont        []uint64 // ψ^i·2⁶⁴, bit-reversed (forward twiddles)
	psiInvMont     []uint64 // ψ^{−i}·2⁶⁴, bit-reversed (inverse twiddles)
	nInvMont       uint64   // N⁻¹·2⁶⁴ mod q (folded into the last INTT stage)
	psiInvNInvMont uint64   // ψ^{−N/2}·N⁻¹·2⁶⁴ mod q (last-stage odd halves)

	scratch sync.Pool // *Poly buffers for MulPolyInto
}

// ReduceInto reduces foreign residues (values mod any multiple of q, or
// plain uint64s) into [0, q) via BRedAdd — the CKKS level-drop primitive.
// Slices may alias.
func (m *Modulus) ReduceInto(a, out Poly) {
	q, brc := m.Q, m.brc
	for i, v := range a {
		out[i] = BRedAdd(v, q, brc)
	}
}

// NewModulus validates q and N and precomputes reduction constants and NTT
// tables. q must be an NTT-friendly prime for degree N (q ≡ 1 mod 2N,
// q < 2^62).
func NewModulus(q uint64, n int) (*Modulus, error) {
	if err := checkModulusShape(q, n); err != nil {
		return nil, err
	}
	if !new(big.Int).SetUint64(q).ProbablyPrime(20) {
		return nil, fmt.Errorf("ring: q = %d is not prime", q)
	}
	psi, err := primitiveRoot2N(q, uint64(n))
	if err != nil {
		return nil, err
	}
	return newModulusWithRoot(q, n, psi)
}

// NewModulusWithRoot builds NTT tables for a possibly composite modulus q
// from an explicitly supplied primitive 2N-th root of unity psi (e.g. the
// CRT combination of per-prime roots for a CKKS modulus chain). It verifies
// psi^N ≡ −1 (mod q) and that N is invertible mod q.
func NewModulusWithRoot(q uint64, n int, psi uint64) (*Modulus, error) {
	if err := checkModulusShape(q, n); err != nil {
		return nil, err
	}
	if PowMod(psi, uint64(n), q) != q-1 {
		return nil, fmt.Errorf("ring: psi = %d is not a primitive 2N-th root mod %d", psi, q)
	}
	if InvMod(uint64(n), q) == 0 {
		return nil, fmt.Errorf("ring: N = %d not invertible mod %d", n, q)
	}
	return newModulusWithRoot(q, n, psi)
}

func checkModulusShape(q uint64, n int) error {
	if n <= 1 || n&(n-1) != 0 {
		return fmt.Errorf("ring: N = %d is not a power of two > 1", n)
	}
	if q >= 1<<62 {
		return fmt.Errorf("ring: q = %d exceeds 2^62", q)
	}
	if q%(2*uint64(n)) != 1 {
		return fmt.Errorf("ring: q = %d is not 1 mod 2N = %d", q, 2*n)
	}
	return nil
}

func newModulusWithRoot(q uint64, n int, psi uint64) (*Modulus, error) {
	m := &Modulus{Q: q, N: n}
	m.qInv = MRedConstant(q) // q is odd: q ≡ 1 mod 2N
	m.brc = BRedConstant(q)
	m.psiMont = make([]uint64, n)
	m.psiInvMont = make([]uint64, n)
	psiInv := InvMod(psi, q)
	logN := bits.TrailingZeros(uint(n))
	fw, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := reverseBits(uint32(i), logN)
		m.psiMont[r] = MForm(fw, q, m.brc)
		m.psiInvMont[r] = MForm(inv, q, m.brc)
		fw = MulMod(fw, psi, q)
		inv = MulMod(inv, psiInv, q)
	}
	nInv := InvMod(uint64(n), q)
	m.nInvMont = MForm(nInv, q, m.brc)
	// The last INTT stage's single twiddle is ψ^{−rev(1)} = ψ^{−N/2};
	// fold N⁻¹ into it so the final full-array normalization pass is free.
	lastPsi := InvMForm(m.psiInvMont[1], q, m.qInv)
	m.psiInvNInvMont = MForm(MulMod(lastPsi, nInv, q), q, m.brc)
	m.scratch.New = func() any {
		p := make(Poly, n)
		return &p
	}
	return m, nil
}

// primitiveRoot2N finds a primitive 2N-th root of unity mod q.
func primitiveRoot2N(q, n uint64) (uint64, error) {
	// Find a generator-ish element: g^((q-1)/2N) has order dividing 2N;
	// it has order exactly 2N iff its N-th power is −1.
	exp := (q - 1) / (2 * n)
	for g := uint64(2); g < 1000; g++ {
		cand := PowMod(g, exp, q)
		if PowMod(cand, n, q) == q-1 {
			return cand, nil
		}
	}
	return 0, errors.New("ring: no primitive 2N-th root found")
}

func reverseBits(v uint32, bits int) uint32 {
	var r uint32
	for i := 0; i < bits; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// Poly is a polynomial with coefficients in [0, q), either in coefficient
// or NTT domain (the caller tracks which).
type Poly []uint64

// NewPoly allocates a zero polynomial of degree N.
func (m *Modulus) NewPoly() Poly { return make(Poly, m.N) }

// Copy returns an independent copy of p.
func (p Poly) Copy() Poly {
	out := make(Poly, len(p))
	copy(out, p)
	return out
}

// Add sets out = a + b (any domain). Slices may alias.
func (m *Modulus) Add(a, b, out Poly) {
	for i := range out {
		out[i] = AddMod(a[i], b[i], m.Q)
	}
}

// Sub sets out = a − b (any domain). Slices may alias.
func (m *Modulus) Sub(a, b, out Poly) {
	for i := range out {
		out[i] = SubMod(a[i], b[i], m.Q)
	}
}

// Neg sets out = −a.
func (m *Modulus) Neg(a, out Poly) {
	for i := range out {
		if a[i] == 0 {
			out[i] = 0
		} else {
			out[i] = m.Q - a[i]
		}
	}
}

// MulCoeffwise sets out = a ⊙ b (pointwise Barrett product; used in the
// NTT domain). Slices may alias.
func (m *Modulus) MulCoeffwise(a, b, out Poly) {
	q, brc := m.Q, m.brc
	for i := range out {
		out[i] = BRed(a[i], b[i], q, brc)
	}
}

// MulCoeffwiseThenAdd sets out += a ⊙ b (pointwise Barrett product, plain
// domain). Slices may alias.
func (m *Modulus) MulCoeffwiseThenAdd(a, b, out Poly) {
	q, brc := m.Q, m.brc
	for i := range out {
		out[i] = AddMod(out[i], BRed(a[i], b[i], q, brc), q)
	}
}

// MulCoeffwiseMontgomery sets out = a ⊙ bMont ⊙ 2⁻⁶⁴, i.e. the plain-domain
// pointwise product of a with the Montgomery-form polynomial bMont. Slices
// may alias.
func (m *Modulus) MulCoeffwiseMontgomery(a, bMont, out Poly) {
	q, qInv := m.Q, m.qInv
	for i := range out {
		out[i] = MRed(a[i], bMont[i], q, qInv)
	}
}

// MulCoeffwiseMontgomeryThenAdd sets out += a ⊙ bMont ⊙ 2⁻⁶⁴ — the fused
// multiply-accumulate used to fold key-switch digits without intermediate
// buffers.
func (m *Modulus) MulCoeffwiseMontgomeryThenAdd(a, bMont, out Poly) {
	q, qInv := m.Q, m.qInv
	for i := range out {
		out[i] = AddMod(out[i], MRed(a[i], bMont[i], q, qInv), q)
	}
}

// MForm converts a to Montgomery form: out = a·2⁶⁴ mod q. Slices may alias.
func (m *Modulus) MForm(a, out Poly) {
	q, brc := m.Q, m.brc
	for i := range out {
		out[i] = MForm(a[i], q, brc)
	}
}

// InvMForm takes a polynomial out of Montgomery form: out = a ⊙ 2⁻⁶⁴.
// Slices may alias.
func (m *Modulus) InvMForm(a, out Poly) {
	q, qInv := m.Q, m.qInv
	for i := range out {
		out[i] = InvMForm(a[i], q, qInv)
	}
}

// MulScalar sets out = c·a via one MForm of the scalar and per-coefficient
// Montgomery products.
func (m *Modulus) MulScalar(a Poly, c uint64, out Poly) {
	q, qInv := m.Q, m.qInv
	cM := MForm(c%q, q, m.brc)
	for i := range out {
		out[i] = MRed(a[i], cM, q, qInv)
	}
}

// MulPoly returns the negacyclic product a·b using the NTT. Inputs are in
// the coefficient domain and are not modified.
func (m *Modulus) MulPoly(a, b Poly) Poly {
	out := m.NewPoly()
	m.MulPolyInto(a, b, out)
	return out
}

// MulPolyInto sets out = a·b (negacyclic, coefficient domain) without
// allocating: the single internal scratch buffer comes from a per-Modulus
// pool. out may alias a or b; a and b are not modified.
func (m *Modulus) MulPolyInto(a, b, out Poly) {
	buf := m.scratch.Get().(*Poly)
	bb := *buf
	copy(bb, b)
	copy(out, a)
	m.NTT(out)
	m.NTT(bb)
	m.MulCoeffwise(out, bb, out)
	m.INTT(out)
	m.scratch.Put(buf)
}

// MulPolyNaive is the O(N²) schoolbook negacyclic product, used as a
// correctness oracle for MulPoly.
func (m *Modulus) MulPolyNaive(a, b Poly) Poly {
	n := m.N
	out := m.NewPoly()
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			k := i + j
			prod := MulMod(a[i], b[j], m.Q)
			if k < n {
				out[k] = AddMod(out[k], prod, m.Q)
			} else {
				out[k-n] = SubMod(out[k-n], prod, m.Q) // X^N = −1
			}
		}
	}
	return out
}

// CenteredInt64 returns the centered representative of coefficient v in
// (−q/2, q/2].
func (m *Modulus) CenteredInt64(v uint64) int64 {
	if v > m.Q/2 {
		return int64(v) - int64(m.Q)
	}
	return int64(v)
}

// FromInt64 reduces a signed value into [0, q).
func (m *Modulus) FromInt64(v int64) uint64 {
	r := v % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// DivRound sets out[i] = round(centered(p[i]) / d) mod q — the approximate
// rescaling step of CKKS. d must be positive.
func (m *Modulus) DivRound(p Poly, d uint64, out Poly) {
	half := int64(d) / 2
	for i := range p {
		c := m.CenteredInt64(p[i])
		var r int64
		if c >= 0 {
			r = (c + half) / int64(d)
		} else {
			r = -((-c + half) / int64(d))
		}
		out[i] = m.FromInt64(r)
	}
}

// UniformPoly samples a polynomial with uniform coefficients in [0, q).
func (m *Modulus) UniformPoly(rng *rand.Rand) Poly {
	p := m.NewPoly()
	m.UniformPolyInto(rng, p)
	return p
}

// UniformPolyInto fills p with uniform coefficients in [0, q).
func (m *Modulus) UniformPolyInto(rng *rand.Rand, p Poly) {
	for i := range p {
		p[i] = uniformUint64(rng, m.Q)
	}
}

// TernaryPoly samples coefficients from {−1, 0, 1} with equal probability
// (the CKKS secret/ephemeral distribution).
func (m *Modulus) TernaryPoly(rng *rand.Rand) Poly {
	p := m.NewPoly()
	m.TernaryPolyInto(rng, p)
	return p
}

// TernaryPolyInto fills p with coefficients from {−1, 0, 1}.
func (m *Modulus) TernaryPolyInto(rng *rand.Rand, p Poly) {
	for i := range p {
		switch rng.Intn(3) {
		case 0:
			p[i] = 0
		case 1:
			p[i] = 1
		default:
			p[i] = m.Q - 1
		}
	}
}

// GaussianPoly samples rounded-Gaussian error coefficients with the given
// standard deviation (CKKS uses σ ≈ 3.2).
func (m *Modulus) GaussianPoly(rng *rand.Rand, sigma float64) Poly {
	p := m.NewPoly()
	m.GaussianPolyInto(rng, sigma, p)
	return p
}

// GaussianPolyInto fills p with rounded-Gaussian error coefficients.
func (m *Modulus) GaussianPolyInto(rng *rand.Rand, sigma float64, p Poly) {
	for i := range p {
		v := int64(rng.NormFloat64()*sigma + 0.5)
		p[i] = m.FromInt64(v)
	}
}

// uniformUint64 draws uniformly from [0, q) without modulo bias.
func uniformUint64(rng *rand.Rand, q uint64) uint64 {
	max := ^uint64(0) - ^uint64(0)%q
	for {
		v := rng.Uint64()
		if v < max {
			return v % q
		}
	}
}

// InfNorm returns the largest centered-absolute coefficient of p.
func (m *Modulus) InfNorm(p Poly) uint64 {
	var worst uint64
	for _, v := range p {
		c := m.CenteredInt64(v)
		if c < 0 {
			c = -c
		}
		if uint64(c) > worst {
			worst = uint64(c)
		}
	}
	return worst
}
