package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testModulus(t testing.TB, n int) *Modulus {
	t.Helper()
	q, err := FindNTTPrime(50, n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModulus(q, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModArithmetic(t *testing.T) {
	const q = 97
	if got := AddMod(90, 10, q); got != 3 {
		t.Errorf("AddMod = %d, want 3", got)
	}
	if got := SubMod(5, 10, q); got != 92 {
		t.Errorf("SubMod = %d, want 92", got)
	}
	if got := MulMod(96, 96, q); got != 1 {
		t.Errorf("MulMod = %d, want 1 ((-1)² = 1)", got)
	}
	if got := PowMod(3, 96, q); got != 1 {
		t.Errorf("PowMod Fermat = %d, want 1", got)
	}
	if got := MulMod(InvMod(17, q), 17, q); got != 1 {
		t.Errorf("InvMod: 17·17⁻¹ = %d, want 1", got)
	}
}

func TestMulModLargeOperands(t *testing.T) {
	q, err := FindNTTPrime(61, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a, b := q-1, q-2
	// (q-1)(q-2) mod q = 2.
	if got := MulMod(a, b, q); got != 2 {
		t.Errorf("MulMod large = %d, want 2", got)
	}
}

func TestFindNTTPrime(t *testing.T) {
	q, err := FindNTTPrime(30, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if q%(2*1024) != 1 {
		t.Errorf("q = %d not 1 mod 2N", q)
	}
	if q >= 1<<30 {
		t.Errorf("q = %d too large", q)
	}
	if _, err := FindNTTPrime(10, 1024); err == nil {
		t.Error("tiny bitLen accepted")
	}
	if _, err := FindNTTPrime(30, 1000); err == nil {
		t.Error("non-power-of-two n accepted")
	}
}

func TestNewModulusValidation(t *testing.T) {
	if _, err := NewModulus(97, 1024); err == nil {
		t.Error("q not 1 mod 2N accepted")
	}
	if _, err := NewModulus(2*1024*3+1, 1000); err == nil {
		t.Error("bad N accepted")
	}
	// 12289 = 1 + 12·1024 is prime and ≡ 1 mod 2048.
	if _, err := NewModulus(12289, 1024); err != nil {
		t.Errorf("12289/1024 rejected: %v", err)
	}
	// Composite ≡ 1 mod 2N must be rejected.
	if _, err := NewModulus(2048*2+1, 1024); err == nil { // 4097 = 17·241
		t.Error("composite modulus accepted")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	m := testModulus(t, 256)
	rng := rand.New(rand.NewSource(1))
	p := m.UniformPoly(rng)
	orig := p.Copy()
	m.NTT(p)
	// NTT must change the representation (overwhelmingly likely).
	same := true
	for i := range p {
		if p[i] != orig[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("NTT left polynomial unchanged")
	}
	m.INTT(p)
	for i := range p {
		if p[i] != orig[i] {
			t.Fatalf("round trip failed at %d: %d != %d", i, p[i], orig[i])
		}
	}
}

func TestMulPolyMatchesNaive(t *testing.T) {
	m := testModulus(t, 64)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := m.UniformPoly(rng)
		b := m.UniformPoly(rng)
		fast := m.MulPoly(a, b)
		slow := m.MulPolyNaive(a, b)
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("trial %d: coeff %d: NTT %d != naive %d", trial, i, fast[i], slow[i])
			}
		}
	}
}

func TestNegacyclicWraparound(t *testing.T) {
	m := testModulus(t, 8)
	// X^7 · X = X^8 = −1.
	a := m.NewPoly()
	b := m.NewPoly()
	a[7] = 1
	b[1] = 1
	got := m.MulPoly(a, b)
	want := m.NewPoly()
	want[0] = m.Q - 1
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("X^7·X: coeff %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	m := testModulus(t, 32)
	rng := rand.New(rand.NewSource(3))
	a := m.UniformPoly(rng)
	b := m.UniformPoly(rng)
	sum := m.NewPoly()
	m.Add(a, b, sum)
	diff := m.NewPoly()
	m.Sub(sum, b, diff)
	for i := range a {
		if diff[i] != a[i] {
			t.Fatalf("(a+b)−b != a at %d", i)
		}
	}
	neg := m.NewPoly()
	m.Neg(a, neg)
	zero := m.NewPoly()
	m.Add(a, neg, zero)
	for i := range zero {
		if zero[i] != 0 {
			t.Fatalf("a + (−a) != 0 at %d", i)
		}
	}
}

func TestCenteredLift(t *testing.T) {
	m := testModulus(t, 32)
	if got := m.CenteredInt64(1); got != 1 {
		t.Errorf("CenteredInt64(1) = %d", got)
	}
	if got := m.CenteredInt64(m.Q - 1); got != -1 {
		t.Errorf("CenteredInt64(q−1) = %d, want −1", got)
	}
	if got := m.FromInt64(-1); got != m.Q-1 {
		t.Errorf("FromInt64(−1) = %d, want q−1", got)
	}
	if got := m.FromInt64(int64(m.Q) + 5); got != 5 {
		t.Errorf("FromInt64(q+5) = %d, want 5", got)
	}
}

func TestDivRound(t *testing.T) {
	m := testModulus(t, 32)
	p := m.NewPoly()
	p[0] = 1000
	p[1] = m.FromInt64(-1000)
	p[2] = 1500
	p[3] = m.FromInt64(-1500)
	out := m.NewPoly()
	m.DivRound(p, 1000, out)
	if m.CenteredInt64(out[0]) != 1 || m.CenteredInt64(out[1]) != -1 {
		t.Errorf("DivRound exact: %d, %d", m.CenteredInt64(out[0]), m.CenteredInt64(out[1]))
	}
	if m.CenteredInt64(out[2]) != 2 || m.CenteredInt64(out[3]) != -2 {
		t.Errorf("DivRound rounding: %d, %d (1.5 rounds away from zero)",
			m.CenteredInt64(out[2]), m.CenteredInt64(out[3]))
	}
}

func TestSamplers(t *testing.T) {
	m := testModulus(t, 1024)
	rng := rand.New(rand.NewSource(4))

	tern := m.TernaryPoly(rng)
	for i, v := range tern {
		if c := m.CenteredInt64(v); c < -1 || c > 1 {
			t.Fatalf("ternary coeff %d = %d", i, c)
		}
	}

	gauss := m.GaussianPoly(rng, 3.2)
	var sum, count float64
	for _, v := range gauss {
		c := float64(m.CenteredInt64(v))
		if c > 40 || c < -40 {
			t.Fatalf("gaussian coeff %v implausibly large for σ=3.2", c)
		}
		sum += c
		count++
	}
	if mean := sum / count; mean > 1 || mean < -1 {
		t.Errorf("gaussian mean %v far from 0", mean)
	}

	uni := m.UniformPoly(rng)
	var big int
	for _, v := range uni {
		if v >= m.Q {
			t.Fatal("uniform coeff out of range")
		}
		if v > m.Q/2 {
			big++
		}
	}
	if frac := float64(big) / float64(len(uni)); frac < 0.4 || frac > 0.6 {
		t.Errorf("uniform sampler skewed: %v above q/2", frac)
	}
}

func TestInfNorm(t *testing.T) {
	m := testModulus(t, 32)
	p := m.NewPoly()
	p[3] = m.FromInt64(-7)
	p[9] = 5
	if got := m.InfNorm(p); got != 7 {
		t.Errorf("InfNorm = %d, want 7", got)
	}
}

// Property: NTT is linear — NTT(a+b) = NTT(a) + NTT(b).
func TestNTTLinearityProperty(t *testing.T) {
	m := testModulus(t, 128)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := m.UniformPoly(rng)
		b := m.UniformPoly(rng)
		sum := m.NewPoly()
		m.Add(a, b, sum)
		m.NTT(sum)
		m.NTT(a)
		m.NTT(b)
		expect := m.NewPoly()
		m.Add(a, b, expect)
		for i := range sum {
			if sum[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: multiplication is commutative.
func TestMulCommutative(t *testing.T) {
	m := testModulus(t, 64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := m.UniformPoly(rng)
		b := m.UniformPoly(rng)
		ab := m.MulPoly(a, b)
		ba := m.MulPoly(b, a)
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNTT(b *testing.B) {
	m := testModulus(b, 4096)
	rng := rand.New(rand.NewSource(1))
	p := m.UniformPoly(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NTT(p)
	}
}

func BenchmarkMulPoly(b *testing.B) {
	m := testModulus(b, 4096)
	rng := rand.New(rand.NewSource(1))
	p := m.UniformPoly(rng)
	q := m.UniformPoly(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulPoly(p, q)
	}
}
