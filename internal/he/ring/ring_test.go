package ring

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func testModulus(t testing.TB, n int) *Modulus {
	t.Helper()
	q, err := FindNTTPrime(50, n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModulus(q, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModArithmetic(t *testing.T) {
	const q = 97
	if got := AddMod(90, 10, q); got != 3 {
		t.Errorf("AddMod = %d, want 3", got)
	}
	if got := SubMod(5, 10, q); got != 92 {
		t.Errorf("SubMod = %d, want 92", got)
	}
	if got := MulMod(96, 96, q); got != 1 {
		t.Errorf("MulMod = %d, want 1 ((-1)² = 1)", got)
	}
	if got := PowMod(3, 96, q); got != 1 {
		t.Errorf("PowMod Fermat = %d, want 1", got)
	}
	if got := MulMod(InvMod(17, q), 17, q); got != 1 {
		t.Errorf("InvMod: 17·17⁻¹ = %d, want 1", got)
	}
}

func TestMulModLargeOperands(t *testing.T) {
	q, err := FindNTTPrime(61, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a, b := q-1, q-2
	// (q-1)(q-2) mod q = 2.
	if got := MulMod(a, b, q); got != 2 {
		t.Errorf("MulMod large = %d, want 2", got)
	}
}

func TestFindNTTPrime(t *testing.T) {
	q, err := FindNTTPrime(30, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if q%(2*1024) != 1 {
		t.Errorf("q = %d not 1 mod 2N", q)
	}
	if q >= 1<<30 {
		t.Errorf("q = %d too large", q)
	}
	if _, err := FindNTTPrime(10, 1024); err == nil {
		t.Error("tiny bitLen accepted")
	}
	if _, err := FindNTTPrime(30, 1000); err == nil {
		t.Error("non-power-of-two n accepted")
	}
}

func TestNewModulusValidation(t *testing.T) {
	if _, err := NewModulus(97, 1024); err == nil {
		t.Error("q not 1 mod 2N accepted")
	}
	if _, err := NewModulus(2*1024*3+1, 1000); err == nil {
		t.Error("bad N accepted")
	}
	// 12289 = 1 + 12·1024 is prime and ≡ 1 mod 2048.
	if _, err := NewModulus(12289, 1024); err != nil {
		t.Errorf("12289/1024 rejected: %v", err)
	}
	// Composite ≡ 1 mod 2N must be rejected.
	if _, err := NewModulus(2048*2+1, 1024); err == nil { // 4097 = 17·241
		t.Error("composite modulus accepted")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	m := testModulus(t, 256)
	rng := rand.New(rand.NewSource(1))
	p := m.UniformPoly(rng)
	orig := p.Copy()
	m.NTT(p)
	// NTT must change the representation (overwhelmingly likely).
	same := true
	for i := range p {
		if p[i] != orig[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("NTT left polynomial unchanged")
	}
	m.INTT(p)
	for i := range p {
		if p[i] != orig[i] {
			t.Fatalf("round trip failed at %d: %d != %d", i, p[i], orig[i])
		}
	}
}

func TestMulPolyMatchesNaive(t *testing.T) {
	m := testModulus(t, 64)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := m.UniformPoly(rng)
		b := m.UniformPoly(rng)
		fast := m.MulPoly(a, b)
		slow := m.MulPolyNaive(a, b)
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("trial %d: coeff %d: NTT %d != naive %d", trial, i, fast[i], slow[i])
			}
		}
	}
}

func TestNegacyclicWraparound(t *testing.T) {
	m := testModulus(t, 8)
	// X^7 · X = X^8 = −1.
	a := m.NewPoly()
	b := m.NewPoly()
	a[7] = 1
	b[1] = 1
	got := m.MulPoly(a, b)
	want := m.NewPoly()
	want[0] = m.Q - 1
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("X^7·X: coeff %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	m := testModulus(t, 32)
	rng := rand.New(rand.NewSource(3))
	a := m.UniformPoly(rng)
	b := m.UniformPoly(rng)
	sum := m.NewPoly()
	m.Add(a, b, sum)
	diff := m.NewPoly()
	m.Sub(sum, b, diff)
	for i := range a {
		if diff[i] != a[i] {
			t.Fatalf("(a+b)−b != a at %d", i)
		}
	}
	neg := m.NewPoly()
	m.Neg(a, neg)
	zero := m.NewPoly()
	m.Add(a, neg, zero)
	for i := range zero {
		if zero[i] != 0 {
			t.Fatalf("a + (−a) != 0 at %d", i)
		}
	}
}

func TestCenteredLift(t *testing.T) {
	m := testModulus(t, 32)
	if got := m.CenteredInt64(1); got != 1 {
		t.Errorf("CenteredInt64(1) = %d", got)
	}
	if got := m.CenteredInt64(m.Q - 1); got != -1 {
		t.Errorf("CenteredInt64(q−1) = %d, want −1", got)
	}
	if got := m.FromInt64(-1); got != m.Q-1 {
		t.Errorf("FromInt64(−1) = %d, want q−1", got)
	}
	if got := m.FromInt64(int64(m.Q) + 5); got != 5 {
		t.Errorf("FromInt64(q+5) = %d, want 5", got)
	}
}

func TestDivRound(t *testing.T) {
	m := testModulus(t, 32)
	p := m.NewPoly()
	p[0] = 1000
	p[1] = m.FromInt64(-1000)
	p[2] = 1500
	p[3] = m.FromInt64(-1500)
	out := m.NewPoly()
	m.DivRound(p, 1000, out)
	if m.CenteredInt64(out[0]) != 1 || m.CenteredInt64(out[1]) != -1 {
		t.Errorf("DivRound exact: %d, %d", m.CenteredInt64(out[0]), m.CenteredInt64(out[1]))
	}
	if m.CenteredInt64(out[2]) != 2 || m.CenteredInt64(out[3]) != -2 {
		t.Errorf("DivRound rounding: %d, %d (1.5 rounds away from zero)",
			m.CenteredInt64(out[2]), m.CenteredInt64(out[3]))
	}
}

func TestSamplers(t *testing.T) {
	m := testModulus(t, 1024)
	rng := rand.New(rand.NewSource(4))

	tern := m.TernaryPoly(rng)
	for i, v := range tern {
		if c := m.CenteredInt64(v); c < -1 || c > 1 {
			t.Fatalf("ternary coeff %d = %d", i, c)
		}
	}

	gauss := m.GaussianPoly(rng, 3.2)
	var sum, count float64
	for _, v := range gauss {
		c := float64(m.CenteredInt64(v))
		if c > 40 || c < -40 {
			t.Fatalf("gaussian coeff %v implausibly large for σ=3.2", c)
		}
		sum += c
		count++
	}
	if mean := sum / count; mean > 1 || mean < -1 {
		t.Errorf("gaussian mean %v far from 0", mean)
	}

	uni := m.UniformPoly(rng)
	var big int
	for _, v := range uni {
		if v >= m.Q {
			t.Fatal("uniform coeff out of range")
		}
		if v > m.Q/2 {
			big++
		}
	}
	if frac := float64(big) / float64(len(uni)); frac < 0.4 || frac > 0.6 {
		t.Errorf("uniform sampler skewed: %v above q/2", frac)
	}
}

func TestInfNorm(t *testing.T) {
	m := testModulus(t, 32)
	p := m.NewPoly()
	p[3] = m.FromInt64(-7)
	p[9] = 5
	if got := m.InfNorm(p); got != 7 {
		t.Errorf("InfNorm = %d, want 7", got)
	}
}

// Property: NTT is linear — NTT(a+b) = NTT(a) + NTT(b).
func TestNTTLinearityProperty(t *testing.T) {
	m := testModulus(t, 128)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := m.UniformPoly(rng)
		b := m.UniformPoly(rng)
		sum := m.NewPoly()
		m.Add(a, b, sum)
		m.NTT(sum)
		m.NTT(a)
		m.NTT(b)
		expect := m.NewPoly()
		m.Add(a, b, expect)
		for i := range sum {
			if sum[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: multiplication is commutative.
func TestMulCommutative(t *testing.T) {
	m := testModulus(t, 64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := m.UniformPoly(rng)
		b := m.UniformPoly(rng)
		ab := m.MulPoly(a, b)
		ba := m.MulPoly(b, a)
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// referenceNTT/referenceINTT are the strict-domain textbook transforms (the
// pre-Montgomery seed implementation, one division per butterfly), kept as
// the bit-exactness oracle for the lazy rewrites.
type referenceTables struct {
	q         uint64
	n         int
	psiPow    []uint64
	psiInvPow []uint64
	nInv      uint64
}

func newReferenceTables(t *testing.T, q uint64, n int) *referenceTables {
	t.Helper()
	psi, err := PrimitiveRoot2N(q, n)
	if err != nil {
		t.Fatal(err)
	}
	r := &referenceTables{q: q, n: n, psiPow: make([]uint64, n), psiInvPow: make([]uint64, n)}
	psiInv := InvMod(psi, q)
	logN := bits.TrailingZeros(uint(n))
	fw, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		rev := reverseBits(uint32(i), logN)
		r.psiPow[rev] = fw
		r.psiInvPow[rev] = inv
		fw = MulMod(fw, psi, q)
		inv = MulMod(inv, psiInv, q)
	}
	r.nInv = InvMod(uint64(n), q)
	return r
}

func (r *referenceTables) ntt(p Poly) {
	t := r.n
	for mm := 1; mm < r.n; mm <<= 1 {
		t >>= 1
		for i := 0; i < mm; i++ {
			j1 := 2 * i * t
			s := r.psiPow[mm+i]
			for j := j1; j < j1+t; j++ {
				u := p[j]
				v := MulMod(p[j+t], s, r.q)
				p[j] = AddMod(u, v, r.q)
				p[j+t] = SubMod(u, v, r.q)
			}
		}
	}
}

func (r *referenceTables) intt(p Poly) {
	t := 1
	for mm := r.n; mm > 1; mm >>= 1 {
		j1 := 0
		h := mm >> 1
		for i := 0; i < h; i++ {
			s := r.psiInvPow[h+i]
			for j := j1; j < j1+t; j++ {
				u := p[j]
				v := p[j+t]
				p[j] = AddMod(u, v, r.q)
				p[j+t] = MulMod(SubMod(u, v, r.q), s, r.q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range p {
		p[i] = MulMod(p[i], r.nInv, r.q)
	}
}

// testSizes returns the ring degrees exercised by the sweep tests; -short
// keeps only the small ones.
func testSizes() []int {
	if testing.Short() {
		return []int{2, 8, 64, 256}
	}
	return []int{2, 8, 64, 256, 1024, 4096}
}

// TestNTTMatchesReference verifies the lazy Montgomery NTT/INTT produce
// outputs bit-identical to the strict division-based reference across
// primes and sizes.
func TestNTTMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range testSizes() {
		for _, bitLen := range []int{30, 50, 61} {
			q, err := FindNTTPrime(bitLen, n)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewModulus(q, n)
			if err != nil {
				t.Fatal(err)
			}
			ref := newReferenceTables(t, q, n)
			p := m.UniformPoly(rng)
			want := p.Copy()
			m.NTT(p)
			ref.ntt(want)
			for i := range p {
				if p[i] != want[i] {
					t.Fatalf("N=%d q=%d: NTT[%d] = %d, want %d", n, q, i, p[i], want[i])
				}
			}
			m.INTT(p)
			ref.intt(want)
			for i := range p {
				if p[i] != want[i] {
					t.Fatalf("N=%d q=%d: INTT[%d] = %d, want %d", n, q, i, p[i], want[i])
				}
			}
		}
	}
}

// TestNTTRoundTripSweep checks NTT∘INTT = id and MulPoly against the
// schoolbook oracle across primes and all supported sizes.
func TestNTTRoundTripSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range testSizes() {
		for _, bitLen := range []int{30, 61} {
			q, err := FindNTTPrime(bitLen, n)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewModulus(q, n)
			if err != nil {
				t.Fatal(err)
			}
			p := m.UniformPoly(rng)
			orig := p.Copy()
			m.NTT(p)
			m.INTT(p)
			for i := range p {
				if p[i] != orig[i] {
					t.Fatalf("N=%d q=%d: round trip[%d] = %d, want %d", n, q, i, p[i], orig[i])
				}
			}
			if n > 512 {
				continue // schoolbook oracle too slow beyond this
			}
			a := m.UniformPoly(rng)
			b := m.UniformPoly(rng)
			fast := m.MulPoly(a, b)
			slow := m.MulPolyNaive(a, b)
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("N=%d q=%d: MulPoly[%d] = %d, want %d", n, q, i, fast[i], slow[i])
				}
			}
		}
	}
}

// TestMulPolyInto checks the allocation-free variant, including aliasing.
func TestMulPolyInto(t *testing.T) {
	m := testModulus(t, 64)
	rng := rand.New(rand.NewSource(12))
	a := m.UniformPoly(rng)
	b := m.UniformPoly(rng)
	want := m.MulPolyNaive(a, b)

	out := m.NewPoly()
	m.MulPolyInto(a, b, out)
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("MulPolyInto[%d] = %d, want %d", i, out[i], want[i])
		}
	}

	// out aliasing a, then b.
	aa := a.Copy()
	m.MulPolyInto(aa, b, aa)
	bb := b.Copy()
	m.MulPolyInto(a, bb, bb)
	for i := range want {
		if aa[i] != want[i] {
			t.Fatalf("MulPolyInto(out=a)[%d] = %d, want %d", i, aa[i], want[i])
		}
		if bb[i] != want[i] {
			t.Fatalf("MulPolyInto(out=b)[%d] = %d, want %d", i, bb[i], want[i])
		}
	}
}

func TestCRTPair(t *testing.T) {
	const q1, q2 = 12289, 40961 // both prime
	r1, r2 := uint64(777), uint64(123)
	v := CRTPair(r1, q1, r2, q2)
	if v%q1 != r1 || v%q2 != r2 {
		t.Errorf("CRTPair = %d: residues %d, %d, want %d, %d", v, v%q1, v%q2, r1, r2)
	}
	defer func() {
		if recover() == nil {
			t.Error("CRTPair accepted modulus product ≥ 2^63")
		}
	}()
	CRTPair(1, 1<<32, 1, 1<<32) // product 2^64 wraps: must panic
}

func TestParallel(t *testing.T) {
	done := make([]bool, 8)
	tasks := make([]func(), len(done))
	for i := range tasks {
		i := i
		tasks[i] = func() { done[i] = true }
	}
	Parallel(tasks...)
	for i, d := range done {
		if !d {
			t.Errorf("task %d not executed", i)
		}
	}
	Parallel()          // no tasks: no-op
	Parallel(func() {}) // single task: runs inline
}

func benchSizes() []int { return []int{1024, 2048, 4096, 8192} }

func BenchmarkNTT(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			m := testModulus(b, n)
			rng := rand.New(rand.NewSource(1))
			p := m.UniformPoly(rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.NTT(p)
			}
		})
	}
}

func BenchmarkINTT(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			m := testModulus(b, n)
			rng := rand.New(rand.NewSource(1))
			p := m.UniformPoly(rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.INTT(p)
			}
		})
	}
}

func BenchmarkMulPoly(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			m := testModulus(b, n)
			rng := rand.New(rand.NewSource(1))
			p := m.UniformPoly(rng)
			q := m.UniformPoly(rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulPoly(p, q)
			}
		})
	}
}

func BenchmarkMulPolyInto(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			m := testModulus(b, n)
			rng := rand.New(rand.NewSource(1))
			p := m.UniformPoly(rng)
			q := m.UniformPoly(rng)
			out := m.NewPoly()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulPolyInto(p, q, out)
			}
		})
	}
}
