// Package ring implements negacyclic polynomial arithmetic in
// R_q = Z_q[X]/(X^N + 1): single-modulus building blocks (division-free
// Montgomery/Barrett reduction, the lazy negacyclic NTT, schoolbook
// multiplication as the testing oracle, and the uniform/ternary/Gaussian
// samplers CKKS needs) plus the residue-number-system tower that composes
// them into a multi-prime modulus chain.
//
// # Residue-tower layout
//
// An RNSPoly is a [][]uint64: one limb per chain prime q_i, limb i holding
// the polynomial's coefficients reduced mod q_i. The represented value is
// the CRT combination of the limbs — Q = Πq_i can exceed 64 bits without
// any coefficient ever leaving uint64. A Tower owns the per-prime NTT
// contexts (Qi for the chain, P for the optional special prime hybrid key
// switching uses) and the precomputed cross-limb constants of the exact
// division steps.
//
// Limb ownership rules: limb i belongs to modulus Qi[i] and is only ever
// touched with that modulus's methods; cross-limb data flow happens in
// exactly three places — RescaleInto and ModDownInto (which read one
// donor limb and fold its centered remainder into every other limb) and
// CenteredFloat (which CRT-combines the first two limbs for decoding).
// Because limbs are otherwise independent, per-limb work fans out through
// the bounded Parallel pool (ForEachLimb); tasks must not share mutable
// state across limbs.
//
// # Montgomery domain invariants
//
// Each limb is, independently, either in the coefficient domain or the NTT
// domain, and either in plain or Montgomery form (·2⁶⁴ mod q). The
// conventions the CKKS layer relies on:
//
//   - Key material is stored NTT + Montgomery, so a fused
//     MulCoeffwiseMontgomery of a plain-NTT operand with a key limb yields
//     a plain-NTT product with one MRed per coefficient.
//   - MRed of two Montgomery-form operands stays in Montgomery form
//     (used to square the secret for relinearization keys).
//   - All limbs of one RNSPoly are kept in the same domain at all times;
//     there is no per-limb domain tracking.
//
// # Rescale semantics
//
// RescaleInto implements the exact RNS rescale: dropping the last limb
// q_ℓ computes (x − [x]_{q_ℓ})/q_ℓ on the remaining limbs, where [·] is
// the centered remainder, i.e. round(x/q_ℓ) with only 64-bit residue
// arithmetic (a Barrett reduction of the donor limb, a conditional
// correction by q_ℓ mod q_i, and a Montgomery multiply by q_ℓ⁻¹ mod q_i
// per coefficient). ModDownInto is the same operation with the special
// prime P as donor, scaling hybrid key-switch accumulators from the
// extended basis QP back to Q. Both are exact integer identities — the
// property tests check them coefficient-for-coefficient against a big.Int
// CRT reference.
//
// # Galois automorphisms
//
// The maps X → X^g (g odd) permute the negacyclic ring and are the
// substrate of CKKS slot rotations (galois.go): ApplyAutomorphismNTT
// applies σ_g directly on NTT-domain limbs as a gather through a
// precomputed index table (AutomorphismNTTTable), so a rotation costs one
// pass over the coefficients — the sign fixups of the coefficient-domain
// map (AutomorphismCoeffs) fold into the table. GaloisElement maps a slot
// rotation count to its generator power 5^k mod 2N, and the fused
// AutomorphismNTTMulMontgomeryThenAdd gathers straight into a key-switch
// multiply-accumulate.
//
// # Single-modulus substrate
//
// N must be a power of two and q ≡ 1 (mod 2N) so a primitive 2N-th root of
// unity exists; FindNTTPrime/FindNTTPrimes/FindNTTPrimesDistinct search
// for such primes. q < 2⁶² (enforced at construction) leaves the 4q < 2⁶⁴
// headroom the lazy NTT needs.
//
// A Modulus precomputes three constant sets at construction:
//
//   - qInv = q⁻¹ mod 2⁶⁴ — Montgomery constant, used by MRed/MRedLazy for
//     products where one operand is stored in Montgomery form (·2⁶⁴ mod q):
//     the ψ/ψ⁻¹ twiddle tables, scalar multipliers, and CKKS key material.
//   - brc = ⌊2¹²⁸/q⌋ — Barrett constant, used by BRed for plain-domain
//     products (MulCoeffwise) and BRedAdd for single-word reductions.
//   - Twiddle tables psiMont/psiInvMont in bit-reversed order and
//     Montgomery form, plus N⁻¹ (and N⁻¹·ψ⁻¹ for the folded last INTT
//     stage) in Montgomery form.
//
// Hot loops therefore never execute a hardware division; bits.Rem64 remains
// only in the stateless helpers (MulMod, PowMod) used at construction time
// and as the property-test oracle.
//
// # Zero-allocation conventions
//
// Methods suffixed Into write into caller-provided (or internally pooled)
// buffers and perform no allocation in steady state: MulPolyInto draws its
// single scratch buffer from a per-Modulus sync.Pool. NTT-domain fused ops
// (MulCoeffwiseMontgomery, MulCoeffwiseMontgomeryThenAdd) let callers keep
// ciphertext material in the transform domain across an operation chain and
// reduce transform counts. The allocating variants (MulPoly, UniformPoly,
// ...) remain as convenience wrappers.
package ring
