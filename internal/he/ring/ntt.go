// Negacyclic NTT/INTT with Montgomery-form twiddles and lazy reduction
// (Longa–Naehrig style, as in Lattigo's ring package). Twiddle tables are
// stored as ψ^i·2⁶⁴ mod q so each butterfly costs one MRedLazy (two 64×64
// multiplies) instead of a 128÷64 hardware division.
//
// Coefficient ranges inside the loops are lazy:
//
//   - forward: inputs to each butterfly stay in [0, 4q); the Cooley–Tukey
//     butterfly conditionally subtracts 2q from u, computes
//     v' = MRedLazy(v, ψ̃) ∈ [0, 2q) and outputs u+v', u+2q−v' ∈ [0, 4q);
//   - inverse: coefficients stay in [0, 2q); the Gentleman–Sande butterfly
//     outputs u+v (reduced to [0, 2q)) and MRedLazy(u+2q−v, ψ̃⁻¹) ∈ [0, 2q).
//
// Both transforms reduce to the strict [0, q) domain exactly once at the
// end — the inverse by folding N⁻¹ (and N⁻¹·ψ̃⁻¹ for the odd halves) into
// its final stage with strict MRed, dropping the seed implementation's
// full-array MulMod pass. The 4q < 2⁶⁴ headroom these ranges need is
// guaranteed by the package-wide q < 2⁶² bound. Outputs are bit-identical
// to the strict schoolbook/NTT reference (see TestNTTMatchesReference).
package ring

// NTT transforms p to the NTT domain in place (negacyclic, Cooley–Tukey,
// lazy reduction with a final strict pass). Output coefficients are in
// [0, q).
func (m *Modulus) NTT(p Poly) {
	q, qInv := m.Q, m.qInv
	twoQ := 2 * q
	psi := m.psiMont
	n := m.N
	t := n
	for mm := 1; mm < n; mm <<= 1 {
		t >>= 1
		for i := 0; i < mm; i++ {
			s := psi[mm+i]
			j1 := 2 * i * t
			x := p[j1 : j1+t]
			y := p[j1+t : j1+2*t]
			for j := range x {
				u := x[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := MRedLazy(y[j], s, q, qInv)
				x[j] = u + v
				y[j] = u + twoQ - v
			}
		}
	}
	for i, v := range p {
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		p[i] = v
	}
}

// INTT transforms p back to the coefficient domain in place
// (Gentleman–Sande, lazy reduction). N⁻¹ is folded into the last stage, so
// outputs land directly in [0, q).
func (m *Modulus) INTT(p Poly) {
	q, qInv := m.Q, m.qInv
	twoQ := 2 * q
	psiInv := m.psiInvMont
	n := m.N
	t := 1
	for mm := n; mm > 2; mm >>= 1 {
		h := mm >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			s := psiInv[h+i]
			x := p[j1 : j1+t]
			y := p[j1+t : j1+2*t]
			for j := range x {
				u := x[j]
				v := y[j]
				sum := u + v
				if sum >= twoQ {
					sum -= twoQ
				}
				x[j] = sum
				y[j] = MRedLazy(u+twoQ-v, s, q, qInv)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	// Last stage (mm = 2) with N⁻¹ folded into strict Montgomery products.
	nInvM, sNInvM := m.nInvMont, m.psiInvNInvMont
	half := n >> 1
	x := p[:half]
	y := p[half:]
	for j := range x {
		u, v := x[j], y[j]
		x[j] = MRed(u+v, nInvM, q, qInv)
		y[j] = MRed(u+twoQ-v, sNInvM, q, qInv)
	}
}
