package ring

import (
	"fmt"
	"math/bits"
)

// RNSPoly is a polynomial in residue-number-system representation: one
// limb (coefficient row) per prime of the modulus chain, so the value of
// coefficient j is determined by CRT from {p[i][j] mod q_i}. Limb i is an
// ordinary Poly over the tower's i-th modulus and is operated on with that
// modulus's methods; limbs are independent, which is what per-limb
// parallel fan-out exploits. Every limb is either wholly in the
// coefficient domain or wholly in the NTT domain — callers track which,
// exactly as with Poly.
type RNSPoly []Poly

// Copy returns an independent deep copy of p.
func (p RNSPoly) Copy() RNSPoly {
	out := make(RNSPoly, len(p))
	for i := range p {
		out[i] = p[i].Copy()
	}
	return out
}

// Tower is an RNS modulus chain: per-prime NTT contexts for the chain
// primes q_0..q_{L−1} (and an optional special prime P used by hybrid key
// switching), plus the precomputed cross-limb constants the exact-division
// steps need. Towers are immutable after construction and safe to share.
type Tower struct {
	// N is the ring degree shared by every limb.
	N int
	// Qi[i] is the NTT context of chain prime q_i.
	Qi []*Modulus
	// P is the special prime's context (nil when the tower has none).
	P *Modulus

	// Rescale tables, triangular: qlInvMont[ℓ][i] = (q_ℓ⁻¹ mod q_i) in
	// Montgomery form and qlMod[ℓ][i] = q_ℓ mod q_i, for i < ℓ.
	qlInvMont [][]uint64
	qlMod     [][]uint64
	// ModDown tables for P, indexed by chain limb.
	pInvMont []uint64
	pMod     []uint64

	// Two-limb CRT constants for CenteredFloat (only when L ≥ 2):
	// q0InvQ1 = q_0⁻¹ mod q_1, q01 = q_0·q_1 as a 128-bit value, and its
	// half for centering.
	q0InvQ1        uint64
	q01Hi, q01Lo   uint64
	halfHi, halfLo uint64
}

// NewTower builds the chain contexts for the given distinct NTT-friendly
// primes (and special prime p; p = 0 means no special prime) and
// precomputes the rescale/ModDown constants.
func NewTower(n int, qs []uint64, p uint64) (*Tower, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("ring: tower needs at least one chain prime")
	}
	t := &Tower{N: n, Qi: make([]*Modulus, len(qs))}
	seen := make(map[uint64]bool, len(qs)+1)
	for i, q := range qs {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate chain prime %d", q)
		}
		seen[q] = true
		m, err := NewModulus(q, n)
		if err != nil {
			return nil, fmt.Errorf("ring: chain limb %d: %w", i, err)
		}
		t.Qi[i] = m
	}
	if p != 0 {
		if seen[p] {
			return nil, fmt.Errorf("ring: special prime %d collides with the chain", p)
		}
		m, err := NewModulus(p, n)
		if err != nil {
			return nil, fmt.Errorf("ring: special prime: %w", err)
		}
		t.P = m
	}

	L := len(qs)
	t.qlInvMont = make([][]uint64, L)
	t.qlMod = make([][]uint64, L)
	for l := 1; l < L; l++ {
		t.qlInvMont[l] = make([]uint64, l)
		t.qlMod[l] = make([]uint64, l)
		for i := 0; i < l; i++ {
			qi := t.Qi[i]
			inv := InvMod(qs[l]%qi.Q, qi.Q)
			if inv == 0 {
				return nil, fmt.Errorf("ring: q_%d not invertible mod q_%d", l, i)
			}
			t.qlInvMont[l][i] = MForm(inv, qi.Q, qi.brc)
			t.qlMod[l][i] = qs[l] % qi.Q
		}
	}
	if t.P != nil {
		t.pInvMont = make([]uint64, L)
		t.pMod = make([]uint64, L)
		for i := range qs {
			qi := t.Qi[i]
			inv := InvMod(p%qi.Q, qi.Q)
			if inv == 0 {
				return nil, fmt.Errorf("ring: P not invertible mod q_%d", i)
			}
			t.pInvMont[i] = MForm(inv, qi.Q, qi.brc)
			t.pMod[i] = p % qi.Q
		}
	}
	if L >= 2 {
		t.q0InvQ1 = InvMod(qs[0]%qs[1], qs[1])
		t.q01Hi, t.q01Lo = bits.Mul64(qs[0], qs[1])
		t.halfHi = t.q01Hi >> 1
		t.halfLo = t.q01Hi<<63 | t.q01Lo>>1
	}
	return t, nil
}

// Limbs returns the chain length L (the special prime is not counted).
func (t *Tower) Limbs() int { return len(t.Qi) }

// NewPoly allocates a zero RNS polynomial with the given limb count.
func (t *Tower) NewPoly(limbs int) RNSPoly {
	p := make(RNSPoly, limbs)
	for i := range p {
		p[i] = make(Poly, t.N)
	}
	return p
}

// ForEachLimb runs f(i) for i in [0, limbs), fanning limbs out across the
// worker pool when the ring degree makes it worthwhile. f must not share
// mutable state across limbs.
func (t *Tower) ForEachLimb(limbs int, f func(i int)) {
	if limbs <= 1 || t.N < ParallelMinN {
		for i := 0; i < limbs; i++ {
			f(i)
		}
		return
	}
	tasks := make([]func(), limbs)
	for i := range tasks {
		i := i
		tasks[i] = func() { f(i) }
	}
	Parallel(tasks...)
}

// FromInt64Into reduces the signed coefficients into every limb of out.
func (t *Tower) FromInt64Into(vals []int64, out RNSPoly) {
	t.ForEachLimb(len(out), func(i int) {
		qi := t.Qi[i]
		for j, v := range vals {
			out[i][j] = qi.FromInt64(v)
		}
	})
}

// RescaleInto performs the exact RNS rescale: with in holding ℓ+1
// coefficient-domain limbs of x, out receives the ℓ limbs of
// (x − [x]_{q_ℓ})/q_ℓ, where [·]_{q_ℓ} is the centered remainder — i.e.
// round(x/q_ℓ) without ever leaving 64-bit residue arithmetic. out may
// alias in's first ℓ limbs; in's last limb is only read.
func (t *Tower) RescaleInto(in, out RNSPoly) {
	l := len(in) - 1
	last := in[l]
	half := t.Qi[l].Q >> 1
	t.ForEachLimb(l, func(i int) {
		qi := t.Qi[i]
		q, qInv, brc := qi.Q, qi.qInv, qi.brc
		qlM, invM := t.qlMod[l][i], t.qlInvMont[l][i]
		src, dst := in[i], out[i]
		for j := range dst {
			rU := last[j]
			r := BRedAdd(rU, q, brc)
			if rU > half {
				r = SubMod(r, qlM, q)
			}
			dst[j] = MRed(SubMod(src[j], r, q), invM, q, qInv)
		}
	})
}

// ModDownInto divides by the special prime: inQ holds coefficient-domain
// chain limbs of x, inP the coefficient-domain residue of x mod P, and
// out receives (x − [x]_P)/P on the same chain limbs — the hybrid
// key-switch step that scales the accumulated product back from QP to Q.
// out may alias inQ; inP is only read.
func (t *Tower) ModDownInto(inQ RNSPoly, inP Poly, out RNSPoly) {
	half := t.P.Q >> 1
	t.ForEachLimb(len(inQ), func(i int) {
		qi := t.Qi[i]
		q, qInv, brc := qi.Q, qi.qInv, qi.brc
		pM, invM := t.pMod[i], t.pInvMont[i]
		src, dst := inQ[i], out[i]
		for j := range dst {
			rU := inP[j]
			r := BRedAdd(rU, q, brc)
			if rU > half {
				r = SubMod(r, pM, q)
			}
			dst[j] = MRed(SubMod(src[j], r, q), invM, q, qInv)
		}
	})
}

// CenteredFloat reconstructs coefficient j of the coefficient-domain
// polynomial p as a centered float64. Single-limb values decode through
// the limb's centered representative; with two or more limbs the first
// two are CRT-combined in 128-bit arithmetic, which is exact while the
// true centered value stays below q_0·q_1/2 (≈ 2¹⁰⁹ for production
// chains) — far above any CKKS plaintext magnitude.
func (t *Tower) CenteredFloat(p RNSPoly, j int) float64 {
	if len(p) == 1 {
		return float64(t.Qi[0].CenteredInt64(p[0][j]))
	}
	q0, m1 := t.Qi[0].Q, t.Qi[1]
	r0, r1 := p[0][j], p[1][j]
	d := SubMod(r1, BRedAdd(r0, m1.Q, m1.brc), m1.Q)
	k := MulMod(d, t.q0InvQ1, m1.Q)
	hi, lo := bits.Mul64(q0, k)
	lo, carry := bits.Add64(lo, r0, 0)
	hi += carry
	if hi > t.halfHi || (hi == t.halfHi && lo > t.halfLo) {
		bl, borrow := bits.Sub64(t.q01Lo, lo, 0)
		bh, _ := bits.Sub64(t.q01Hi, hi, borrow)
		return -u128Float(bh, bl)
	}
	return u128Float(hi, lo)
}

func u128Float(hi, lo uint64) float64 {
	return float64(hi)*18446744073709551616.0 + float64(lo)
}

// FindNTTPrimesDistinct searches one NTT-friendly prime per requested bit
// length for ring degree n, keeping primes of equal bit length distinct
// (each repeated bit length continues the descending search). The result
// is index-aligned with bitLens.
func FindNTTPrimesDistinct(bitLens []int, n int) ([]uint64, error) {
	out := make([]uint64, len(bitLens))
	counts := make(map[int]int, len(bitLens))
	for _, b := range bitLens {
		counts[b]++
	}
	found := make(map[int][]uint64, len(counts))
	for b, count := range counts {
		ps, err := FindNTTPrimes(b, n, count)
		if err != nil {
			return nil, err
		}
		found[b] = ps
	}
	next := make(map[int]int, len(counts))
	seen := make(map[uint64]bool, len(bitLens))
	for i, b := range bitLens {
		q := found[b][next[b]]
		next[b]++
		if seen[q] {
			return nil, fmt.Errorf("ring: prime searches for bit lengths %v overlap at %d", bitLens, q)
		}
		seen[q] = true
		out[i] = q
	}
	return out, nil
}
