package ring

import (
	"math/big"
	"math/rand"
	"testing"
)

// testPrimes returns NTT primes spanning the supported bit range, the
// moduli the reduction constants must hold for.
func testPrimes(t testing.TB) []uint64 {
	t.Helper()
	out := make([]uint64, 0, 5)
	for _, bitLen := range []int{20, 30, 45, 55, 61} {
		q, err := FindNTTPrime(bitLen, 256)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, q)
	}
	return out
}

func TestMRedConstant(t *testing.T) {
	for _, q := range testPrimes(t) {
		if got := q * MRedConstant(q); got != 1 {
			t.Errorf("q=%d: q·qInv = %d mod 2^64, want 1", q, got)
		}
	}
}

func TestBRedConstant(t *testing.T) {
	two128 := new(big.Int).Lsh(big.NewInt(1), 128)
	for _, q := range testPrimes(t) {
		want := new(big.Int).Div(two128, new(big.Int).SetUint64(q))
		brc := BRedConstant(q)
		got := new(big.Int).Lsh(new(big.Int).SetUint64(brc[0]), 64)
		got.Add(got, new(big.Int).SetUint64(brc[1]))
		if want.Cmp(got) != 0 {
			t.Errorf("q=%d: brc = %v, want %v", q, got, want)
		}
	}
}

// TestMRedMatchesRem64 cross-checks Montgomery reduction against the
// division-based oracle over the full documented domain (a < 2^64, b < q).
func TestMRedMatchesRem64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range testPrimes(t) {
		qInv := MRedConstant(q)
		rInv := InvMod(PowMod(2, 64, q), q) // 2^{-64} mod q
		check := func(a, b uint64) {
			want := MulMod(MulMod(a%q, b%q, q), rInv, q)
			if got := MRed(a, b, q, qInv); got != want {
				t.Fatalf("MRed(%d, %d) mod %d = %d, want %d", a, b, q, got, want)
			}
			lazy := MRedLazy(a, b, q, qInv)
			if lazy >= 2*q {
				t.Fatalf("MRedLazy(%d, %d) mod %d = %d outside [0, 2q)", a, b, q, lazy)
			}
			if lazy%q != want {
				t.Fatalf("MRedLazy(%d, %d) mod %d ≡ %d, want %d", a, b, q, lazy%q, want)
			}
		}
		for _, a := range []uint64{0, 1, q - 1, q, 2*q - 1, 4*q - 1, ^uint64(0)} {
			for _, b := range []uint64{0, 1, q - 1} {
				check(a, b)
			}
		}
		for trial := 0; trial < 2000; trial++ {
			check(rng.Uint64(), rng.Uint64()%q)
		}
	}
}

// TestBRedMatchesRem64 cross-checks Barrett reduction against the
// division-based oracle for arbitrary 64-bit operands.
func TestBRedMatchesRem64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range testPrimes(t) {
		brc := BRedConstant(q)
		check := func(a, b uint64) {
			want := MulMod(a%q, b%q, q)
			if got := BRed(a, b, q, brc); got != want {
				t.Fatalf("BRed(%d, %d) mod %d = %d, want %d", a, b, q, got, want)
			}
		}
		edge := []uint64{0, 1, q - 1, q, 2 * q, 4*q - 1, ^uint64(0)}
		for _, a := range edge {
			for _, b := range edge {
				check(a, b)
			}
		}
		for trial := 0; trial < 2000; trial++ {
			check(rng.Uint64(), rng.Uint64())
		}
	}
}

func TestBRedAddMatchesRem64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range testPrimes(t) {
		brc := BRedConstant(q)
		for _, a := range []uint64{0, 1, q - 1, q, 2 * q, ^uint64(0)} {
			if got := BRedAdd(a, q, brc); got != a%q {
				t.Fatalf("BRedAdd(%d) mod %d = %d, want %d", a, q, got, a%q)
			}
		}
		for trial := 0; trial < 2000; trial++ {
			a := rng.Uint64()
			if got := BRedAdd(a, q, brc); got != a%q {
				t.Fatalf("BRedAdd(%d) mod %d = %d, want %d", a, q, got, a%q)
			}
		}
	}
}

func TestMFormRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, q := range testPrimes(t) {
		brc := BRedConstant(q)
		qInv := MRedConstant(q)
		r := PowMod(2, 64, q) // 2^64 mod q
		check := func(a uint64) {
			want := MulMod(a%q, r, q)
			m := MForm(a, q, brc)
			if m != want {
				t.Fatalf("MForm(%d) mod %d = %d, want %d", a, q, m, want)
			}
			if back := InvMForm(m, q, qInv); back != a%q {
				t.Fatalf("InvMForm(MForm(%d)) mod %d = %d", a, q, back)
			}
		}
		for _, a := range []uint64{0, 1, q - 1, q, 4*q - 1, ^uint64(0)} {
			check(a)
		}
		for trial := 0; trial < 2000; trial++ {
			check(rng.Uint64())
		}
	}
}

// TestModulusPointwiseOps checks the fused polynomial reductions against
// the scalar oracle.
func TestModulusPointwiseOps(t *testing.T) {
	m := testModulus(t, 64)
	rng := rand.New(rand.NewSource(5))
	a := m.UniformPoly(rng)
	b := m.UniformPoly(rng)

	want := m.NewPoly()
	for i := range want {
		want[i] = MulMod(a[i], b[i], m.Q)
	}
	got := m.NewPoly()
	m.MulCoeffwise(a, b, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MulCoeffwise[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// Montgomery route: MForm(b) then MulCoeffwiseMontgomery ≡ plain product.
	bM := m.NewPoly()
	m.MForm(b, bM)
	m.MulCoeffwiseMontgomery(a, bM, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MulCoeffwiseMontgomery[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// InvMForm undoes MForm.
	m.InvMForm(bM, bM)
	for i := range bM {
		if bM[i] != b[i] {
			t.Fatalf("InvMForm[%d] = %d, want %d", i, bM[i], b[i])
		}
	}

	// Fused accumulators.
	acc := a.Copy()
	m.MulCoeffwiseThenAdd(a, b, acc)
	m.MForm(b, bM)
	acc2 := a.Copy()
	m.MulCoeffwiseMontgomeryThenAdd(a, bM, acc2)
	for i := range acc {
		wantAcc := AddMod(a[i], want[i], m.Q)
		if acc[i] != wantAcc {
			t.Fatalf("MulCoeffwiseThenAdd[%d] = %d, want %d", i, acc[i], wantAcc)
		}
		if acc2[i] != wantAcc {
			t.Fatalf("MulCoeffwiseMontgomeryThenAdd[%d] = %d, want %d", i, acc2[i], wantAcc)
		}
	}

	// ReduceInto brings arbitrary residues into [0, q).
	foreign := make(Poly, m.N)
	for i := range foreign {
		foreign[i] = rng.Uint64()
	}
	reduced := m.NewPoly()
	m.ReduceInto(foreign, reduced)
	for i := range reduced {
		if reduced[i] != foreign[i]%m.Q {
			t.Fatalf("ReduceInto[%d] = %d, want %d", i, reduced[i], foreign[i]%m.Q)
		}
	}

	// MulScalar via Montgomery matches the oracle.
	c := rng.Uint64() % m.Q
	m.MulScalar(a, c, got)
	for i := range got {
		if w := MulMod(a[i], c, m.Q); got[i] != w {
			t.Fatalf("MulScalar[%d] = %d, want %d", i, got[i], w)
		}
	}
}
