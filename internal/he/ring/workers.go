package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelMinN is the ring degree at or above which fanning independent
// transforms out across goroutines pays for the scheduling overhead.
// Callers gate on it explicitly so small-ring paths stay allocation-free
// (submitting to the pool heap-allocates the closures).
const ParallelMinN = 4096

// The package-level worker pool bounds fan-out concurrency: Parallel hands
// tasks to a fixed set of workers over an unbuffered channel and runs
// whatever no worker can take immediately inline on the caller's
// goroutine. That makes nested Parallel calls (evaluator component fan-out
// × per-limb fan-out) safe by construction — the total goroutine count is
// pinned at the pool size no matter how deep the nesting, and a saturated
// pool degrades to inline execution instead of spawning.
//
// parTasks is created once and never reassigned, so task submission is a
// lock-free channel send; resizing swaps the generation stop channel,
// which retires old workers once they finish their current task.
var (
	parTasks = make(chan func())

	parMu   sync.Mutex
	parStop chan struct{}
	parSize int

	// parInline counts tasks that degraded to inline execution because no
	// pool worker could take them immediately — the saturation signal the
	// observability layer surfaces as quhe_ring_inline_degradations_total.
	parInline atomic.Int64
)

// InlineDegradations reports how many Parallel tasks ran inline on the
// caller because the worker pool was saturated. Monotonic; a rising rate
// means fan-out is losing parallelism to pool contention.
func InlineDegradations() int64 { return parInline.Load() }

func init() {
	SetParallelism(runtime.GOMAXPROCS(0))
}

// SetParallelism resizes the worker pool to n (clamped to ≥ 1): n−1 pool
// workers plus the submitting goroutine itself. n = 1 means every Parallel
// call runs fully inline. Benchmarks sweep this together with GOMAXPROCS;
// resizing is safe at any time but not meant for hot paths.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parMu.Lock()
	defer parMu.Unlock()
	if parStop != nil {
		close(parStop)
	}
	parStop = make(chan struct{})
	parSize = n
	for i := 0; i < n-1; i++ {
		go parWorker(parStop)
	}
}

// Parallelism reports the current pool size (workers + caller).
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parSize
}

func parWorker(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case f := <-parTasks:
			f()
		}
	}
}

// Parallel runs the given independent tasks on the bounded pool and waits
// for all of them, executing the first on the calling goroutine. Tasks no
// free worker can pick up immediately also run on the caller, so Parallel
// never blocks waiting for capacity and nested calls cannot deadlock.
// Tasks must not share mutable state (in particular, no RNG use — keep
// sampling outside parallel sections so results stay deterministic).
func Parallel(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	for _, task := range tasks[1:] {
		f := task
		wg.Add(1)
		wrapped := func() {
			defer wg.Done()
			f()
		}
		select {
		case parTasks <- wrapped:
		default:
			parInline.Add(1)
			wrapped()
		}
	}
	tasks[0]()
	wg.Wait()
}

// ParallelIf runs the tasks via Parallel when the ring degree n warrants it
// (n ≥ ParallelMinN) and serially in order otherwise. Note the variadic
// call materializes the task closures either way; allocation-sensitive
// callers should branch on ParallelMinN themselves.
func ParallelIf(n int, tasks ...func()) {
	if n >= ParallelMinN {
		Parallel(tasks...)
		return
	}
	for _, t := range tasks {
		t()
	}
}
