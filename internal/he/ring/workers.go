package ring

import "sync"

// ParallelMinN is the ring degree at or above which fanning independent
// transforms out across goroutines pays for the scheduling overhead.
// Callers gate on it explicitly so small-ring paths stay allocation-free
// (spawning goroutines heap-allocates the closures).
const ParallelMinN = 4096

// Parallel runs the given independent tasks concurrently and waits for all
// of them, executing the first on the calling goroutine. Tasks must not
// share mutable state (in particular, no RNG use — keep sampling outside
// parallel sections so results stay deterministic).
func Parallel(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks) - 1)
	for _, task := range tasks[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(task)
	}
	tasks[0]()
	wg.Wait()
}

// ParallelIf runs the tasks via Parallel when the ring degree n warrants it
// (n ≥ ParallelMinN) and serially in order otherwise. Note the variadic
// call materializes the task closures either way; allocation-sensitive
// callers should branch on ParallelMinN themselves.
func ParallelIf(n int, tasks ...func()) {
	if n >= ParallelMinN {
		Parallel(tasks...)
		return
	}
	for _, t := range tasks {
		t()
	}
}
