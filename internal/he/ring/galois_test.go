package ring

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestGaloisElement(t *testing.T) {
	const n = 64
	if g := GaloisElement(0, n); g != 1 {
		t.Fatalf("GaloisElement(0) = %d, want 1", g)
	}
	if g := GaloisElement(1, n); g != GaloisGen {
		t.Fatalf("GaloisElement(1) = %d, want %d", g, GaloisGen)
	}
	// The group law: g(a)·g(b) ≡ g(a+b) mod 2N, and rotating by −r is the
	// inverse of rotating by r.
	mod := uint64(2 * n)
	for _, pair := range [][2]int{{1, 2}, {3, 7}, {n/2 - 1, 1}, {5, -5}} {
		a, b := pair[0], pair[1]
		if got, want := MulMod(GaloisElement(a, n), GaloisElement(b, n), mod), GaloisElement(a+b, n); got != want {
			t.Fatalf("g(%d)·g(%d) = %d, want g(%d) = %d", a, b, got, a+b, want)
		}
	}
	// 5 has order exactly N/2 mod 2N: the rotation group covers every slot
	// offset without collapsing early.
	seen := map[uint64]bool{}
	for r := 0; r < n/2; r++ {
		g := GaloisElement(r, n)
		if seen[g] {
			t.Fatalf("rotation group collapsed at r = %d", r)
		}
		seen[g] = true
	}
}

// TestAutomorphismNTTMatchesCoeffs pins the NTT-domain gather table
// against the coefficient-domain automorphism: NTT(σ_g(p)) must equal the
// gather of NTT(p), bit-exactly, for every rotation in the power-of-two
// set and the odd steps BSGS uses.
func TestAutomorphismNTTMatchesCoeffs(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		m := testModulus(t, n)
		rng := rand.New(rand.NewSource(int64(n)))
		p := m.UniformPoly(rng)
		for _, rot := range []int{0, 1, 2, 3, 5, n / 4, n/2 - 1, -1, -3} {
			g := GaloisElement(rot, n)

			viaCoeffs := m.NewPoly()
			m.AutomorphismCoeffs(p, g, viaCoeffs)
			m.NTT(viaCoeffs)

			pHat := p.Copy()
			m.NTT(pHat)
			viaNTT := m.NewPoly()
			ApplyAutomorphismNTT(pHat, AutomorphismNTTTable(g, n), viaNTT)

			for i := range viaCoeffs {
				if viaCoeffs[i] != viaNTT[i] {
					t.Fatalf("n=%d rot=%d: NTT-domain automorphism diverges at %d: %d != %d",
						n, rot, i, viaNTT[i], viaCoeffs[i])
				}
			}
		}
	}
}

// TestAutomorphismCoeffsBigIntCRT checks the per-limb coefficient-domain
// automorphism against a big.Int reference over the CRT-combined modulus
// at every chain length the serving profiles use: applying σ_g limb-wise
// must equal applying it to the CRT reconstruction mod Q = ∏q_i.
func TestAutomorphismCoeffsBigIntCRT(t *testing.T) {
	const n = 16
	for _, limbs := range []int{2, 3, 4, 5} {
		tw := testTower(t, n, limbs)
		rng := rand.New(rand.NewSource(int64(700 + limbs)))
		in := randomRNS(tw, rng, limbs)
		out := tw.NewPoly(limbs)
		g := GaloisElement(3, n)
		for i := 0; i < limbs; i++ {
			tw.Qi[i].AutomorphismCoeffs(in[i], g, out[i])
		}

		qs := make([]uint64, limbs)
		bigQ := big.NewInt(1)
		for i := range qs {
			qs[i] = tw.Qi[i].Q
			bigQ.Mul(bigQ, new(big.Int).SetUint64(qs[i]))
		}
		// Reference: gather the CRT coefficients, permute with sign.
		ref := make([]*big.Int, n)
		for i := 0; i < n; i++ {
			k := (uint64(i) * g) % uint64(2*n)
			v := crtBig(in, qs, i)
			if k >= uint64(n) {
				k -= uint64(n)
				v = new(big.Int).Mod(new(big.Int).Neg(v), bigQ)
			}
			ref[k] = v
		}
		for j := 0; j < n; j++ {
			if got := crtBig(out, qs, j); got.Cmp(ref[j]) != 0 {
				t.Fatalf("limbs=%d: coefficient %d = %v, want %v", limbs, j, got, ref[j])
			}
		}
	}
}

// TestAutomorphismNTTMACMatchesUnfused checks the fused gather-MAC against
// permute-then-MulCoeffwiseMontgomeryThenAdd.
func TestAutomorphismNTTMACMatchesUnfused(t *testing.T) {
	const n = 64
	m := testModulus(t, n)
	rng := rand.New(rand.NewSource(7))
	p := m.UniformPoly(rng)
	key := m.UniformPoly(rng)
	keyMont := m.NewPoly()
	m.MForm(key, keyMont)
	tab := AutomorphismNTTTable(GaloisElement(5, n), n)

	fused := m.UniformPoly(rng)
	unfused := fused.Copy()

	m.AutomorphismNTTMulMontgomeryThenAdd(p, tab, keyMont, fused)

	perm := m.NewPoly()
	ApplyAutomorphismNTT(p, tab, perm)
	m.MulCoeffwiseMontgomeryThenAdd(perm, keyMont, unfused)

	for i := range fused {
		if fused[i] != unfused[i] {
			t.Fatalf("fused MAC diverges at %d: %d != %d", i, fused[i], unfused[i])
		}
	}
}

// TestAutomorphismTableCached verifies table identity on repeat lookup
// (the cache is what keeps per-rotation setup off the hot path).
func TestAutomorphismTableCached(t *testing.T) {
	g := GaloisElement(2, 128)
	a := AutomorphismNTTTable(g, 128)
	b := AutomorphismNTTTable(g, 128)
	if &a[0] != &b[0] {
		t.Fatal("automorphism table not cached")
	}
}
