package ring

import (
	"errors"
	"math/rand"
	"testing"
)

func TestPolyWireRoundTrip(t *testing.T) {
	q, err := FindNTTPrime(40, 256)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModulus(q, 256)
	if err != nil {
		t.Fatal(err)
	}
	p := m.UniformPoly(rand.New(rand.NewSource(5)))
	enc := p.AppendBinary(nil)
	if len(enc) != 8*len(p) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), 8*len(p))
	}
	got := make(Poly, len(p))
	n, err := got.DecodeFrom(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d bytes, want %d", n, len(enc))
	}
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("coefficient %d: %d != %d", i, got[i], p[i])
		}
	}
	// Appending after existing content leaves the prefix intact.
	enc2 := p.AppendBinary([]byte{0xaa, 0xbb})
	if enc2[0] != 0xaa || enc2[1] != 0xbb || len(enc2) != 2+8*len(p) {
		t.Error("AppendBinary corrupted the buffer prefix")
	}
}

func TestPolyDecodeShortBuffer(t *testing.T) {
	p := make(Poly, 8)
	enc := p.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := p.DecodeFrom(enc[:cut]); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("truncation at %d: err = %v, want ErrShortBuffer", cut, err)
		}
	}
}

// TestPolyCodecZeroAlloc pins the steady-state contract: encoding into a
// buffer with capacity and decoding into an existing Poly allocate
// nothing.
func TestPolyCodecZeroAlloc(t *testing.T) {
	p := make(Poly, 1024)
	for i := range p {
		p[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	buf := make([]byte, 0, 8*len(p))
	dst := make(Poly, len(p))
	if allocs := testing.AllocsPerRun(100, func() {
		buf = p.AppendBinary(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendBinary allocs/op = %g, want 0", allocs)
	}
	enc := p.AppendBinary(nil)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := dst.DecodeFrom(enc); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("DecodeFrom allocs/op = %g, want 0", allocs)
	}
}
