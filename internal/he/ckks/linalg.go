package ckks

import (
	"fmt"
	"math"
)

// Packed encrypted linear algebra: the diagonal method with baby-step/
// giant-step rotation structure (Halevi–Shoup). An n×n matrix times a
// packed vector decomposes over the n generalized diagonals,
//
//	Mv = Σ_d diag_d ⊙ rot_d(v),
//
// and splitting d = k·n1 + i with n1 ≈ √n regroups the sum as
//
//	Mv = Σ_k rot_{k·n1}( Σ_i rot_{−k·n1}(diag_{k·n1+i}) ⊙ rot_i(v) ),
//
// so only n1−1 baby rotations of v plus n2−1 giant rotations of the inner
// sums are needed — O(√n) key switches instead of O(n). The baby
// rotations all act on the same input, so the evaluator hoists them: one
// O(L²) decomposition of v shared by every baby step. The pre-rotations
// of the diagonals are free — they fold into the plaintext encoding at
// plan-build time.
//
// Packing contract: n must divide the slot count and the input vector
// must be replicated slots/n times (slot j holds v[j mod n]), so every
// cyclic slot rotation by d < n acts as rotation mod n on each copy. The
// result comes back in the same replicated layout.

// MatVecPlan is a matrix (plus optional bias) pre-encoded for encrypted
// matrix–vector evaluation at one level of the modulus chain. Plans are
// immutable after construction and safe to share across evaluators;
// per-call scratch lives in the evaluator.
type MatVecPlan struct {
	n      int // matrix dimension
	n1, n2 int // baby / giant step counts, n1·n2 ≥ n
	level  int // input level; output is level−1
	scale  float64
	// diags[k][i] is diag_{k·n1+i} pre-rotated right by k·n1, encoded at
	// the plan level with scale Primes[level] (so one final rescale
	// returns the input scale) and stored in the NTT + Montgomery domain:
	// the per-diagonal MAC is a fused pointwise multiply-accumulate with
	// no per-call transforms of the plaintext. Nil marks an all-zero
	// diagonal (skipped).
	diags [][]*Plaintext
	// naive[d] is diag_d unrotated, for the rotate-per-diagonal baseline
	// (same NTT + Montgomery storage); built only by NewMatVecNaivePlan.
	naive []*Plaintext
	// bias is encoded at level−1 with the input scale, added after the
	// rescale; nil when no bias.
	bias *Plaintext
}

// matVecSplit fixes the BSGS shape for dimension n; both protocol
// endpoints must agree on it, so it is a pure function of n.
func matVecSplit(n int) (n1, n2 int) {
	n1 = int(math.Ceil(math.Sqrt(float64(n))))
	n2 = (n + n1 - 1) / n1
	return
}

// BSGSRotations returns the rotation set the BSGS kernel needs for
// dimension n, ascending: baby steps 1..n1−1 and giant steps k·n1 for
// k = 1..n2−1. Clients derive the Galois keys to upload from this; the
// server derives the same set to validate them.
func BSGSRotations(n int) []int {
	n1, n2 := matVecSplit(n)
	rots := make([]int, 0, n1+n2-2)
	for i := 1; i < n1; i++ {
		rots = append(rots, i)
	}
	for k := 1; k < n2; k++ {
		rots = append(rots, k*n1)
	}
	return rots
}

func (ev *Evaluator) checkMatVecShape(m [][]float64, bias []float64, level int) (int, error) {
	n := len(m)
	slots := ev.ctx.Params.Slots()
	if n == 0 || n > slots || slots%n != 0 {
		return 0, fmt.Errorf("ckks: matvec dimension %d must divide the %d slots", n, slots)
	}
	for i, row := range m {
		if len(row) != n {
			return 0, fmt.Errorf("ckks: matvec row %d has %d columns, want %d", i, len(row), n)
		}
	}
	if bias != nil && len(bias) != n {
		return 0, fmt.Errorf("ckks: bias length %d, want %d", len(bias), n)
	}
	if level < 1 || level > ev.ctx.MaxLevel() {
		return 0, fmt.Errorf("ckks: matvec level %d outside [1, %d]", level, ev.ctx.MaxLevel())
	}
	return n, nil
}

// replicate fills a full slot vector with the length-n pattern row.
func (ev *Evaluator) replicate(row []float64) []float64 {
	slots := ev.ctx.Params.Slots()
	out := make([]float64, slots)
	for j := range out {
		out[j] = row[j%len(row)]
	}
	return out
}

// encodeMatVecCommon encodes the bias and returns the diagonal scale.
func (ev *Evaluator) encodeMatVecCommon(plan *MatVecPlan, bias []float64) error {
	if bias == nil {
		return nil
	}
	enc := NewEncoder(ev.ctx)
	pt, err := enc.EncodeRealAtLevel(ev.replicate(bias), plan.scale, plan.level-1)
	if err != nil {
		return err
	}
	plan.bias = pt
	return nil
}

// nttMontgomery moves a freshly encoded diagonal plaintext into the
// NTT + Montgomery domain in place — the storage format the matvec MAC
// loops consume. Plans are built once and reused across blocks, so the
// transforms are paid at build time, never per evaluation.
func (ev *Evaluator) nttMontgomery(pt *Plaintext) {
	tower := ev.ctx.Tower
	tower.ForEachLimb(pt.Level+1, func(i int) {
		mod := tower.Qi[i]
		mod.NTT(pt.Value[i])
		mod.MForm(pt.Value[i], pt.Value[i])
	})
}

// diagonal extracts generalized diagonal d in replicated layout, rotated
// right by shift slots: out[j] = M[(j−shift) mod n][(j−shift+d) mod n].
func diagonal(m [][]float64, d, shift, slots int) (vals []float64, zero bool) {
	n := len(m)
	vals = make([]float64, slots)
	zero = true
	for j := 0; j < slots; j++ {
		r := ((j-shift)%n + n) % n
		v := m[r][(r+d)%n]
		vals[j] = v
		if v != 0 {
			zero = false
		}
	}
	return
}

// NewMatVecPlan pre-encodes m (n×n) and bias (length n, or nil) for BSGS
// evaluation on ciphertexts at the given level and scale. The diagonals
// absorb their giant-step pre-rotations here, at build time.
func (ev *Evaluator) NewMatVecPlan(m [][]float64, bias []float64, level int, scale float64) (*MatVecPlan, error) {
	n, err := ev.checkMatVecShape(m, bias, level)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = ev.ctx.Params.Scale()
	}
	n1, n2 := matVecSplit(n)
	plan := &MatVecPlan{n: n, n1: n1, n2: n2, level: level, scale: scale}
	enc := NewEncoder(ev.ctx)
	slots := ev.ctx.Params.Slots()
	dScale := float64(ev.ctx.Primes[level])
	plan.diags = make([][]*Plaintext, n2)
	for k := 0; k < n2; k++ {
		plan.diags[k] = make([]*Plaintext, n1)
		for i := 0; i < n1; i++ {
			d := k*n1 + i
			if d >= n {
				break
			}
			vals, zero := diagonal(m, d, k*n1, slots)
			if zero {
				continue
			}
			pt, err := enc.EncodeRealAtLevel(vals, dScale, level)
			if err != nil {
				return nil, err
			}
			ev.nttMontgomery(pt)
			plan.diags[k][i] = pt
		}
	}
	if err := ev.encodeMatVecCommon(plan, bias); err != nil {
		return nil, err
	}
	return plan, nil
}

// NewMatVecNaivePlan pre-encodes the unrotated diagonals for the naive
// rotate-per-diagonal evaluation — the benchmark baseline. Encoding cost
// is identical to the BSGS plan so timing differences isolate rotations.
func (ev *Evaluator) NewMatVecNaivePlan(m [][]float64, bias []float64, level int, scale float64) (*MatVecPlan, error) {
	n, err := ev.checkMatVecShape(m, bias, level)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = ev.ctx.Params.Scale()
	}
	n1, n2 := matVecSplit(n)
	plan := &MatVecPlan{n: n, n1: n1, n2: n2, level: level, scale: scale}
	enc := NewEncoder(ev.ctx)
	slots := ev.ctx.Params.Slots()
	dScale := float64(ev.ctx.Primes[level])
	plan.naive = make([]*Plaintext, n)
	for d := 0; d < n; d++ {
		vals, zero := diagonal(m, d, 0, slots)
		if zero {
			continue
		}
		pt, err := enc.EncodeRealAtLevel(vals, dScale, level)
		if err != nil {
			return nil, err
		}
		ev.nttMontgomery(pt)
		plan.naive[d] = pt
	}
	if err := ev.encodeMatVecCommon(plan, bias); err != nil {
		return nil, err
	}
	return plan, nil
}

// Dim returns the matrix dimension n.
func (p *MatVecPlan) Dim() int { return p.n }

// Level returns the input level the plan was encoded for.
func (p *MatVecPlan) Level() int { return p.level }

// Rotations returns the rotation set MatVecInto needs; callers must
// supply a GaloisKeySet covering it. The naive path additionally needs
// every rotation 1..n−1.
func (p *MatVecPlan) Rotations() []int { return BSGSRotations(p.n) }

// matvecScratch is the evaluator-internal working set for matvec calls:
// the hoisted decomposition, the baby-rotated inputs (each reused by all
// n2 giant steps) and three accumulator ciphertexts. Allocated on first
// use at full chain capacity, then reused — steady-state matvec calls
// allocate nothing.
type matvecScratch struct {
	h      *Hoisted
	babies []*Ciphertext
	u      *Ciphertext // inner (baby) accumulator
	tmp    *Ciphertext // per-diagonal product
	acc    *Ciphertext // outer (giant) accumulator
}

func (ev *Evaluator) ensureMatVec(n1 int) *matvecScratch {
	if ev.mv == nil {
		top := ev.ctx.MaxLevel()
		ev.mv = &matvecScratch{
			h:   ev.NewHoisted(),
			u:   ev.ctx.NewCiphertext(top),
			tmp: ev.ctx.NewCiphertext(top),
			acc: ev.ctx.NewCiphertext(top),
		}
	}
	for len(ev.mv.babies) < n1 {
		ev.mv.babies = append(ev.mv.babies, ev.ctx.NewCiphertext(ev.ctx.MaxLevel()))
	}
	return ev.mv
}

func (p *MatVecPlan) checkInput(ct *Ciphertext) error {
	if ct.Level != p.level {
		return fmt.Errorf("ckks: matvec input at level %d, plan wants %d", ct.Level, p.level)
	}
	return matchScales(ct.Scale, p.scale)
}

// addBiasInto adds the (level−1) bias plaintext into ct in place.
func (ev *Evaluator) addBiasInto(bias *Plaintext, ct *Ciphertext) error {
	if err := matchScales(ct.Scale, bias.Scale); err != nil {
		return err
	}
	for i := 0; i <= ct.Level; i++ {
		ev.ctx.Tower.Qi[i].Add(ct.C0[i], bias.Value[i], ct.C0[i])
	}
	return nil
}

// MatVecInto computes out = M·ct (+ bias) with the hoisted BSGS kernel:
// one hoisted decomposition feeds all baby rotations, each giant step
// pays one full key switch, and a single rescale drops the diagonal
// scale, leaving out at level−1 with the input scale. The inner sums run
// entirely in the NTT domain — each baby is forward-transformed once and
// MAC'd against the plan's pre-transformed diagonals with no per-product
// round trips, so the per-term cost is a fused pointwise
// multiply-accumulate. gks must cover plan.Rotations(). out must not
// alias ct; steady-state calls allocate nothing beyond the first call's
// scratch.
func (ev *Evaluator) MatVecInto(plan *MatVecPlan, ct *Ciphertext, gks *GaloisKeySet, out *Ciphertext) error {
	if plan.diags == nil {
		return fmt.Errorf("ckks: plan built for naive evaluation")
	}
	if err := plan.checkInput(ct); err != nil {
		return err
	}
	mv := ev.ensureMatVec(plan.n1)
	tower := ev.ctx.Tower
	limbs := plan.level + 1

	// Baby steps v_i = rot_i(v) off one shared hoisting, each forward-
	// transformed in place (the babies are evaluator scratch).
	ev.HoistInto(mv.h, ct)
	for i := 0; i < plan.n1; i++ {
		b := mv.babies[i]
		if i == 0 {
			for t := 0; t < limbs; t++ {
				copy(b.C0[t], ct.C0[t])
				copy(b.C1[t], ct.C1[t])
			}
			b.Scale, b.Level = ct.Scale, ct.Level
		} else if err := ev.RotateHoistedInto(mv.h, i, gks, b); err != nil {
			return err
		}
		tower.ForEachLimb(limbs, func(t int) {
			mod := tower.Qi[t]
			mod.NTT(b.C0[t])
			mod.NTT(b.C1[t])
		})
	}

	accEmpty := true
	for k := 0; k < plan.n2; k++ {
		row := plan.diags[k]
		var ptScale float64
		for _, pt := range row {
			if pt != nil {
				ptScale = pt.Scale
				break
			}
		}
		if ptScale == 0 {
			continue
		}
		// One fused fan-out per giant step: NTT-domain MACs over the
		// block's non-empty diagonals, then the inverse transforms.
		u := mv.u
		tower.ForEachLimb(limbs, func(t int) {
			mod := tower.Qi[t]
			first := true
			for i, pt := range row {
				if pt == nil {
					continue
				}
				b := mv.babies[i]
				if first {
					mod.MulCoeffwiseMontgomery(b.C0[t], pt.Value[t], u.C0[t])
					mod.MulCoeffwiseMontgomery(b.C1[t], pt.Value[t], u.C1[t])
					first = false
				} else {
					mod.MulCoeffwiseMontgomeryThenAdd(b.C0[t], pt.Value[t], u.C0[t])
					mod.MulCoeffwiseMontgomeryThenAdd(b.C1[t], pt.Value[t], u.C1[t])
				}
			}
			mod.INTT(u.C0[t])
			mod.INTT(u.C1[t])
		})
		u.Scale, u.Level = ct.Scale*ptScale, plan.level
		// Giant step: one full key switch per non-empty block.
		if k > 0 {
			if err := ev.RotateInto(u, k*plan.n1, gks, u); err != nil {
				return err
			}
		}
		if accEmpty {
			mv.acc, mv.u = u, mv.acc
			accEmpty = false
		} else if err := ev.AddInto(mv.acc, u, mv.acc); err != nil {
			return err
		}
	}
	if accEmpty {
		// Zero matrix: out is a fresh transparent zero at level−1.
		if err := ev.DropLevelInto(ct, plan.level-1, out); err != nil {
			return err
		}
		for i := 0; i <= out.Level; i++ {
			for j := range out.C0[i] {
				out.C0[i][j], out.C1[i][j] = 0, 0
			}
		}
		out.Scale = plan.scale
	} else if err := ev.RescaleInto(mv.acc, out); err != nil {
		return err
	}
	if plan.bias != nil {
		return ev.addBiasInto(plan.bias, out)
	}
	return nil
}

// MatVecNaiveInto is the rotate-per-diagonal baseline: n−1 full key
// switches, no hoisting, no BSGS regrouping. The MAC treatment matches
// MatVecInto's (NTT-domain accumulate against pre-transformed diagonals)
// so the benchmarked gap isolates rotation work. Kept for benchmarking
// the kernel speedup; gks must cover rotations 1..n−1.
func (ev *Evaluator) MatVecNaiveInto(plan *MatVecPlan, ct *Ciphertext, gks *GaloisKeySet, out *Ciphertext) error {
	if plan.naive == nil {
		return fmt.Errorf("ckks: plan built for BSGS evaluation")
	}
	if err := plan.checkInput(ct); err != nil {
		return err
	}
	mv := ev.ensureMatVec(1)
	tower := ev.ctx.Tower
	limbs := plan.level + 1
	rot := mv.babies[0]
	acc := mv.acc
	accEmpty := true
	var ptScale float64
	for d := 0; d < plan.n; d++ {
		pt := plan.naive[d]
		if pt == nil {
			continue
		}
		ptScale = pt.Scale
		if d == 0 {
			for t := 0; t < limbs; t++ {
				copy(rot.C0[t], ct.C0[t])
				copy(rot.C1[t], ct.C1[t])
			}
		} else if err := ev.RotateInto(ct, d, gks, rot); err != nil {
			return err
		}
		first := accEmpty
		tower.ForEachLimb(limbs, func(t int) {
			mod := tower.Qi[t]
			mod.NTT(rot.C0[t])
			mod.NTT(rot.C1[t])
			if first {
				mod.MulCoeffwiseMontgomery(rot.C0[t], pt.Value[t], acc.C0[t])
				mod.MulCoeffwiseMontgomery(rot.C1[t], pt.Value[t], acc.C1[t])
			} else {
				mod.MulCoeffwiseMontgomeryThenAdd(rot.C0[t], pt.Value[t], acc.C0[t])
				mod.MulCoeffwiseMontgomeryThenAdd(rot.C1[t], pt.Value[t], acc.C1[t])
			}
		})
		accEmpty = false
	}
	if accEmpty {
		if err := ev.DropLevelInto(ct, plan.level-1, out); err != nil {
			return err
		}
		for i := 0; i <= out.Level; i++ {
			for j := range out.C0[i] {
				out.C0[i][j], out.C1[i][j] = 0, 0
			}
		}
		out.Scale = plan.scale
	} else {
		tower.ForEachLimb(limbs, func(t int) {
			mod := tower.Qi[t]
			mod.INTT(acc.C0[t])
			mod.INTT(acc.C1[t])
		})
		acc.Scale, acc.Level = ct.Scale*ptScale, plan.level
		if err := ev.RescaleInto(acc, out); err != nil {
			return err
		}
	}
	if plan.bias != nil {
		return ev.addBiasInto(plan.bias, out)
	}
	return nil
}
