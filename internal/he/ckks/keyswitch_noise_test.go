package ckks

import (
	"math/big"
	"math/rand"
	"testing"

	"quhe/internal/he/ring"
)

// TestKeySwitchNoiseBoundVsBigInt checks the hybrid key switch against a
// big.Int CRT reference: for a uniform degree-2 term d2, the switched pair
// (c0, c1) after ModDown must satisfy c0 + c1·s = d2·s² + e with the
// centered error e bounded by the hybrid construction's noise estimate
// L·N·σ·q_max/P plus the ModDown rounding — orders of magnitude below the
// 2^50 scale a plaintext bit occupies.
func TestKeySwitchNoiseBoundVsBigInt(t *testing.T) {
	p, err := NewParams(8, 60, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	n := ctx.Params.N()
	kg := NewKeyGenerator(ctx, 11)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 12)
	tower := ctx.Tower
	level := ctx.MaxLevel()
	limbs := level + 1

	rng := rand.New(rand.NewSource(5))
	d2 := tower.NewPoly(limbs)
	for i := 0; i < limbs; i++ {
		tower.Qi[i].UniformPolyInto(rng, d2[i])
	}

	ev.keySwitch(d2, rlk.Parts, level)
	for idx := 0; idx <= limbs; idx++ {
		mod := tower.P
		if idx < limbs {
			mod = tower.Qi[idx]
		}
		mod.INTT(ev.acc0[idx])
		mod.INTT(ev.acc1[idx])
	}
	c0 := tower.NewPoly(limbs)
	c1 := tower.NewPoly(limbs)
	tower.ModDownInto(ev.acc0[:limbs], ev.acc0[limbs], c0)
	tower.ModDownInto(ev.acc1[:limbs], ev.acc1[limbs], c1)

	// e = c0 + c1·s − d2·s² per limb (secret key limbs are NTT+Montgomery).
	ePoly := tower.NewPoly(limbs)
	for i := 0; i < limbs; i++ {
		mod := tower.Qi[i]
		t1 := make(ring.Poly, n)
		copy(t1, c1[i])
		mod.NTT(t1)
		mod.MulCoeffwiseMontgomery(t1, sk.S[i], t1)
		mod.INTT(t1)
		want := make(ring.Poly, n)
		copy(want, d2[i])
		mod.NTT(want)
		mod.MulCoeffwiseMontgomery(want, sk.S[i], want)
		mod.MulCoeffwiseMontgomery(want, sk.S[i], want)
		mod.INTT(want)
		mod.Add(t1, c0[i], t1)
		mod.Sub(t1, want, ePoly[i])
	}

	// Centered big.Int CRT reconstruction of every error coefficient.
	prod := big.NewInt(1)
	for i := 0; i < limbs; i++ {
		prod.Mul(prod, new(big.Int).SetUint64(tower.Qi[i].Q))
	}
	half := new(big.Int).Rsh(prod, 1)
	// Bound: L·N·σ·q_max/P ≈ 4·256·3.2/2 ≈ 2^11 for this chain, plus the
	// ModDown rounding of roughly half the secret's weight. 2^20 leaves a
	// wide margin while staying 2^30 below the scale.
	bound := new(big.Int).Lsh(big.NewInt(1), 20)
	maxAbs := new(big.Int)
	for j := 0; j < n; j++ {
		x := new(big.Int)
		acc := big.NewInt(1)
		for i := 0; i < limbs; i++ {
			qi := new(big.Int).SetUint64(tower.Qi[i].Q)
			r := new(big.Int).SetUint64(ePoly[i][j])
			d := new(big.Int).Sub(r, x)
			d.Mod(d, qi)
			inv := new(big.Int).ModInverse(new(big.Int).Mod(acc, qi), qi)
			d.Mul(d, inv).Mod(d, qi)
			x.Add(x, d.Mul(d, acc))
			acc.Mul(acc, qi)
		}
		x.Mod(x, prod)
		if x.Cmp(half) > 0 {
			x.Sub(x, prod)
		}
		x.Abs(x)
		if x.Cmp(maxAbs) > 0 {
			maxAbs.Set(x)
		}
	}
	if maxAbs.Cmp(bound) > 0 {
		t.Fatalf("key-switch noise %s exceeds bound %s", maxAbs, bound)
	}
	if maxAbs.Sign() == 0 {
		t.Fatal("key-switch noise identically zero; reference is not exercising the error term")
	}
	t.Logf("max |e| = %s (bound %s)", maxAbs, bound)
}
