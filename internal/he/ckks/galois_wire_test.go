package ckks

import (
	"encoding/binary"
	"errors"
	"testing"

	"quhe/internal/he/ring"
)

func galoisKeysEqual(a, b *GaloisKey) bool {
	if a.Rot != b.Rot || a.El != b.El || len(a.Parts) != len(b.Parts) {
		return false
	}
	for d := range a.Parts {
		for j := 0; j < 2; j++ {
			if len(a.Parts[d][j]) != len(b.Parts[d][j]) {
				return false
			}
			for ell := range a.Parts[d][j] {
				for i := range a.Parts[d][j][ell] {
					if a.Parts[d][j][ell][i] != b.Parts[d][j][ell][i] {
						return false
					}
				}
			}
		}
	}
	return true
}

func TestGaloisKeyWireRoundTrip(t *testing.T) {
	ctx := wireTestContext(t)
	kg := NewKeyGenerator(ctx, 29)
	sk := kg.GenSecretKey()
	gks := kg.GenGaloisKeys(sk, []int{1, 2, -1, 8})

	// Single key round trip, bit-exact.
	var one *GaloisKey
	for _, gk := range gks.Keys {
		one = gk
		break
	}
	enc := one.AppendBinary(nil)
	got := new(GaloisKey)
	if n, err := got.DecodeFrom(enc); err != nil || n != len(enc) {
		t.Fatalf("galois key decode: n=%d err=%v", n, err)
	}
	if !galoisKeysEqual(one, got) {
		t.Fatal("galois key round trip differs")
	}

	// Set round trip preserves every key; re-encoding is deterministic.
	encSet := gks.AppendBinary(nil)
	gotSet := new(GaloisKeySet)
	if n, err := gotSet.DecodeFrom(encSet); err != nil || n != len(encSet) {
		t.Fatalf("galois key set decode: n=%d err=%v", n, err)
	}
	if len(gotSet.Keys) != len(gks.Keys) {
		t.Fatalf("set size %d, want %d", len(gotSet.Keys), len(gks.Keys))
	}
	for el, gk := range gks.Keys {
		if !galoisKeysEqual(gk, gotSet.Keys[el]) {
			t.Fatalf("key for element %d differs after round trip", el)
		}
	}
	reenc := gotSet.AppendBinary(nil)
	if string(reenc) != string(encSet) {
		t.Fatal("set re-encoding not deterministic")
	}

	// Truncation: every strict prefix fails typed.
	for _, cut := range []int{0, 1, 4, 11, 12, 17, len(enc) / 2, len(enc) - 1} {
		if _, err := new(GaloisKey).DecodeFrom(enc[:cut]); err == nil {
			t.Fatalf("prefix %d accepted", cut)
		} else if !errors.Is(err, ErrShortBuffer) && !errors.Is(err, ErrMalformed) && !errors.Is(err, ring.ErrShortBuffer) {
			t.Fatalf("prefix %d: untyped error %v", cut, err)
		}
	}

	// A rotation/element mismatch is rejected — a tampered key cannot be
	// installed under the wrong automorphism.
	bad := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(bad[0:4], uint32(int32(one.Rot+1)))
	if _, err := new(GaloisKey).DecodeFrom(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("mismatched rot/element: err = %v, want ErrMalformed", err)
	}

	// Duplicate elements in a set are rejected.
	dup := binary.LittleEndian.AppendUint16(nil, 2)
	dup = one.AppendBinary(dup)
	dup = one.AppendBinary(dup)
	if _, err := new(GaloisKeySet).DecodeFrom(dup); !errors.Is(err, ErrMalformed) {
		t.Fatalf("duplicate element: err = %v, want ErrMalformed", err)
	}

	// Absurd set count is rejected before any allocation.
	huge := binary.LittleEndian.AppendUint16(nil, maxWireGaloisKeys+1)
	if _, err := new(GaloisKeySet).DecodeFrom(huge); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized count: err = %v, want ErrMalformed", err)
	}
}

// TestGaloisKeyCodecZeroAlloc pins the encode path's steady-state
// allocation count at zero given a sufficient buffer.
func TestGaloisKeyCodecZeroAlloc(t *testing.T) {
	ctx := wireTestContext(t)
	kg := NewKeyGenerator(ctx, 31)
	sk := kg.GenSecretKey()
	gk := kg.GenGaloisKey(sk, 1)
	buf := gk.AppendBinary(nil)
	allocs := testing.AllocsPerRun(32, func() {
		buf = gk.AppendBinary(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("galois key encode allocates %v per op, want 0", allocs)
	}
}

// FuzzGaloisKeyRoundTrip asserts (1) hostile decodes fail typed and never
// panic, and (2) a structurally valid key built from the fuzz input
// round-trips bit-identically.
func FuzzGaloisKeyRoundTrip(f *testing.F) {
	ctx, err := NewContext(Params{LogN: 6, BaseBits: 25, ScaleBits: 16, Depth: 1, Sigma: 3.2, SpecialBits: 26})
	if err != nil {
		f.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 33)
	seed := kg.GenGaloisKey(kg.GenSecretKey(), 3).AppendBinary(nil)
	f.Add(seed)
	f.Add(seed[:20])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gk := new(GaloisKey)
		if _, err := gk.DecodeFrom(data); err != nil {
			if !errors.Is(err, ErrShortBuffer) && !errors.Is(err, ErrMalformed) && !errors.Is(err, ring.ErrShortBuffer) {
				t.Fatalf("untyped decode error: %v", err)
			}
		}
		set := new(GaloisKeySet)
		if _, err := set.DecodeFrom(data); err != nil {
			if !errors.Is(err, ErrShortBuffer) && !errors.Is(err, ErrMalformed) && !errors.Is(err, ring.ErrShortBuffer) {
				t.Fatalf("untyped set decode error: %v", err)
			}
		}
		// Constructive round trip: a well-formed key whose coefficients
		// derive from the input.
		const n, digits, limbs = 64, 2, 3
		rot := int(byteAt(data, 0)) % (n / 2)
		src := &GaloisKey{Rot: rot, El: ring.GaloisElement(rot, n), Parts: make([][2]ring.RNSPoly, digits)}
		for d := 0; d < digits; d++ {
			for j := 0; j < 2; j++ {
				src.Parts[d][j] = make(ring.RNSPoly, limbs)
				for ell := 0; ell < limbs; ell++ {
					p := make(ring.Poly, n)
					for i := range p {
						var v uint64
						for by := 0; by < 8; by++ {
							v = v<<8 | uint64(byteAt(data, 8*(n*(limbs*(2*d+j)+ell)+i)+by))
						}
						p[i] = v
					}
					src.Parts[d][j][ell] = p
				}
			}
		}
		enc := src.AppendBinary(nil)
		got := new(GaloisKey)
		if k, err := got.DecodeFrom(enc); err != nil || k != len(enc) {
			t.Fatalf("round trip decode: k=%d err=%v", k, err)
		}
		if !galoisKeysEqual(src, got) {
			t.Fatal("round trip not bit-identical")
		}
	})
}
