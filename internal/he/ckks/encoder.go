package ckks

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Encoder maps complex slot vectors to ring plaintexts through the
// canonical embedding: a message z ∈ C^{N/2} is interpolated at the
// primitive 2N-th roots of unity (with conjugate symmetry so coefficients
// come out real), scaled by Δ and rounded.
//
// Slots follow the Galois orbit ordering: slot j sits at the root
// ζ^(5^j mod 2N), not ζ^(2j+1). Since 5 generates the rotation subgroup
// of the Galois group (order N/2 mod 2N), the automorphism σ_{5^r}: X →
// X^(5^r) maps the root of slot j+r onto the root of slot j — i.e. a
// single automorphism plus key switch rotates the slot vector cyclically
// left by r (Evaluator.RotateInto). With the natural 2j+1 ordering the
// same automorphism scatters slots in index-arithmetic order, and packed
// linear algebra would be impossible. Slot-wise operations (add, mul,
// transciphering) are ordering-agnostic; the ordering is internal and
// both endpoints derive it identically.
//
// Encoders are immutable and safe for concurrent use.
type Encoder struct {
	ctx *Context
	// twiddles for the length-N complex FFT.
	wFwd, wInv []complex128
	// zetaFwd[k] = ζ^k, zetaInv[k] = ζ^{−k} with ζ = exp(iπ/N).
	zetaFwd, zetaInv []complex128
	// pos[j] = ((5^j mod 2N) − 1)/2: the natural-order index of slot j's
	// root, the scatter/gather layer that turns σ_5-orbit rotations into
	// cyclic slot shifts.
	pos []int
}

// NewEncoder builds an encoder for the context.
func NewEncoder(ctx *Context) *Encoder {
	n := ctx.Params.N()
	e := &Encoder{
		ctx:     ctx,
		wFwd:    make([]complex128, n/2),
		wInv:    make([]complex128, n/2),
		zetaFwd: make([]complex128, n),
		zetaInv: make([]complex128, n),
		pos:     make([]int, n/2),
	}
	for i := 0; i < n/2; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		e.wFwd[i] = cmplx.Exp(complex(0, ang))
		e.wInv[i] = cmplx.Exp(complex(0, -ang))
	}
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(n)
		e.zetaFwd[k] = cmplx.Exp(complex(0, ang))
		e.zetaInv[k] = cmplx.Exp(complex(0, -ang))
	}
	pow5 := uint64(1)
	mask := uint64(2*n - 1)
	for j := 0; j < n/2; j++ {
		e.pos[j] = int((pow5 - 1) >> 1)
		pow5 = (pow5 * 5) & mask
	}
	return e
}

// Encode embeds up to Slots() complex values into a top-level plaintext at
// the given scale (≤ 0 selects the default Δ). Missing slots are zero.
func (e *Encoder) Encode(values []complex128, scale float64) (*Plaintext, error) {
	return e.EncodeAtLevel(values, scale, e.ctx.MaxLevel())
}

// EncodeAtLevel embeds values at an explicit level of the modulus chain.
func (e *Encoder) EncodeAtLevel(values []complex128, scale float64, level int) (*Plaintext, error) {
	n := e.ctx.Params.N()
	slots := e.ctx.Params.Slots()
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), slots)
	}
	if level < 0 || level > e.ctx.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d outside [0, %d]", level, e.ctx.MaxLevel())
	}
	if scale <= 0 {
		scale = e.ctx.Params.Scale()
	}
	// Conjugate-symmetric extension in orbit order: slot j's value lands
	// at natural index pos[j] (root ζ^(5^j)), its conjugate at the
	// mirrored index N−1−pos[j] (root ζ^(2N−5^j)).
	u := make([]complex128, n)
	for j, z := range values {
		k := e.pos[j]
		u[k] = z
		u[n-1-k] = cmplx.Conj(z)
	}
	// c_k = Δ · ζ^{−k} · IDFT(u)_k (real by symmetry), rounded to integers
	// once and spread across the level's limbs.
	fft(u, e.wInv)
	inv := 1 / float64(n)
	coeffs := make([]int64, n)
	for k := 0; k < n; k++ {
		c := real(u[k]*e.zetaInv[k]) * inv * scale
		coeffs[k] = int64(math.Round(c))
	}
	pt := &Plaintext{Value: e.ctx.Tower.NewPoly(level + 1), Scale: scale, Level: level}
	e.ctx.Tower.FromInt64Into(coeffs, pt.Value)
	return pt, nil
}

// Decode recovers the slot vector from a plaintext, dividing by its scale.
// Coefficients come back through the tower's centered CRT reconstruction
// (exact up to q_0·q_1/2 ≈ 2¹⁰⁹, far beyond any plaintext magnitude).
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	n := e.ctx.Params.N()
	tower := e.ctx.Tower
	u := make([]complex128, n)
	for k := 0; k < n; k++ {
		u[k] = complex(tower.CenteredFloat(pt.Value, k), 0) * e.zetaFwd[k]
	}
	fft(u, e.wFwd)
	out := make([]complex128, e.ctx.Params.Slots())
	inv := complex(1/pt.Scale, 0)
	for j := range out {
		out[j] = u[e.pos[j]] * inv
	}
	return out
}

// EncodeReal is a convenience wrapper for real-valued slot vectors.
func (e *Encoder) EncodeReal(values []float64, scale float64) (*Plaintext, error) {
	z := make([]complex128, len(values))
	for i, v := range values {
		z[i] = complex(v, 0)
	}
	return e.Encode(z, scale)
}

// EncodeRealAtLevel encodes real values at an explicit level.
func (e *Encoder) EncodeRealAtLevel(values []float64, scale float64, level int) (*Plaintext, error) {
	z := make([]complex128, len(values))
	for i, v := range values {
		z[i] = complex(v, 0)
	}
	return e.EncodeAtLevel(z, scale, level)
}

// DecodeReal decodes and keeps the real parts.
func (e *Encoder) DecodeReal(pt *Plaintext) []float64 {
	z := e.Decode(pt)
	out := make([]float64, len(z))
	for i, v := range z {
		out[i] = real(v)
	}
	return out
}

// fft is an in-place iterative radix-2 FFT with the given twiddle table
// (wFwd for the forward transform, wInv for the inverse without the 1/n
// normalization).
func fft(a []complex128, w []complex128) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		step := n / length
		for start := 0; start < n; start += length {
			for k := 0; k < length/2; k++ {
				u := a[start+k]
				v := a[start+k+length/2] * w[k*step]
				a[start+k] = u + v
				a[start+k+length/2] = u - v
			}
		}
	}
}
