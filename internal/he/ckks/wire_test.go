package ckks

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"math"
	"testing"

	"quhe/internal/he/ring"
)

func wireTestContext(t testing.TB) *Context {
	t.Helper()
	p, err := NewParams(8, 25, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randomCiphertext(ctx *Context, seed int64, level int) *Ciphertext {
	kg := NewKeyGenerator(ctx, seed)
	ct := ctx.NewCiphertext(level)
	for i := 0; i <= level; i++ {
		ctx.Limb(i).UniformPolyInto(kg.rng, ct.C0[i])
		ctx.Limb(i).UniformPolyInto(kg.rng, ct.C1[i])
	}
	ct.Scale = ctx.Params.Scale()
	return ct
}

func ciphertextsEqual(a, b *Ciphertext) bool {
	if a.Level != b.Level || math.Float64bits(a.Scale) != math.Float64bits(b.Scale) ||
		len(a.C0) != len(b.C0) || len(a.C1) != len(b.C1) {
		return false
	}
	for i := range a.C0 {
		if len(a.C0[i]) != len(b.C0[i]) || len(a.C1[i]) != len(b.C1[i]) {
			return false
		}
		for j := range a.C0[i] {
			if a.C0[i][j] != b.C0[i][j] || a.C1[i][j] != b.C1[i][j] {
				return false
			}
		}
	}
	return true
}

func TestCiphertextWireRoundTrip(t *testing.T) {
	ctx := wireTestContext(t)
	for level := 0; level <= ctx.MaxLevel(); level++ {
		ct := randomCiphertext(ctx, int64(7+level), level)
		enc := ct.AppendBinary(nil)
		got := new(Ciphertext)
		n, err := got.DecodeFrom(enc)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if n != len(enc) {
			t.Errorf("level %d: consumed %d of %d bytes", level, n, len(enc))
		}
		if !ciphertextsEqual(ct, got) {
			t.Errorf("level %d: round trip not bit-identical", level)
		}
	}
}

// TestCiphertextWireMatchesGob pins the acceptance contract: the v3 codec
// and the gob path decode to bit-identical ciphertexts.
func TestCiphertextWireMatchesGob(t *testing.T) {
	ctx := wireTestContext(t)
	ct := randomCiphertext(ctx, 11, ctx.MaxLevel())
	ct.Scale = 1234.5678e9 // non-trivial mantissa: float identity must hold bit-for-bit

	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(ct); err != nil {
		t.Fatal(err)
	}
	viaGob := new(Ciphertext)
	if err := gob.NewDecoder(&gobBuf).Decode(viaGob); err != nil {
		t.Fatal(err)
	}

	viaWire := new(Ciphertext)
	if _, err := viaWire.DecodeFrom(ct.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if !ciphertextsEqual(viaGob, viaWire) {
		t.Error("wire codec and gob disagree on the decoded ciphertext")
	}
}

// TestCiphertextCodecZeroAlloc pins the steady-state contract for the
// serving hot path: encode into a capacious reused buffer, decode into a
// pre-sized receiver — zero allocations either way.
func TestCiphertextCodecZeroAlloc(t *testing.T) {
	ctx := wireTestContext(t)
	ct := randomCiphertext(ctx, 13, ctx.MaxLevel())
	enc := ct.AppendBinary(nil)
	buf := make([]byte, 0, len(enc))
	if allocs := testing.AllocsPerRun(100, func() {
		buf = ct.AppendBinary(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendBinary allocs/op = %g, want 0", allocs)
	}
	dst := ctx.NewCiphertext(ctx.MaxLevel())
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := dst.DecodeFrom(enc); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("DecodeFrom allocs/op = %g, want 0", allocs)
	}
	if !ciphertextsEqual(ct, dst) {
		t.Error("pooled-receiver decode diverged")
	}
}

func TestPlaintextWireRoundTrip(t *testing.T) {
	ctx := wireTestContext(t)
	kg := NewKeyGenerator(ctx, 17)
	pt := &Plaintext{
		Value: ctx.Tower.NewPoly(2),
		Scale: ctx.Params.Scale(),
		Level: 1,
	}
	for i := range pt.Value {
		ctx.Limb(i).UniformPolyInto(kg.rng, pt.Value[i])
	}
	got := new(Plaintext)
	enc := pt.AppendBinary(nil)
	n, err := got.DecodeFrom(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || got.Level != pt.Level || got.Scale != pt.Scale {
		t.Fatalf("header mismatch: n=%d level=%d scale=%v", n, got.Level, got.Scale)
	}
	for i := range pt.Value {
		for j := range pt.Value[i] {
			if got.Value[i][j] != pt.Value[i][j] {
				t.Fatalf("limb %d coefficient %d differs", i, j)
			}
		}
	}
}

func TestKeyWireRoundTrip(t *testing.T) {
	ctx := wireTestContext(t)
	kg := NewKeyGenerator(ctx, 19)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)

	gotPK := new(PublicKey)
	encPK := pk.AppendBinary(nil)
	if n, err := gotPK.DecodeFrom(encPK); err != nil || n != len(encPK) {
		t.Fatalf("public key decode: n=%d err=%v", n, err)
	}
	for ell := range pk.P0 {
		for i := range pk.P0[ell] {
			if gotPK.P0[ell][i] != pk.P0[ell][i] || gotPK.P1[ell][i] != pk.P1[ell][i] {
				t.Fatalf("public key limb %d coefficient %d differs", ell, i)
			}
		}
	}

	gotRLK := new(RelinKey)
	encRLK := rlk.AppendBinary(nil)
	if n, err := gotRLK.DecodeFrom(encRLK); err != nil || n != len(encRLK) {
		t.Fatalf("relin key decode: n=%d err=%v", n, err)
	}
	if len(gotRLK.Parts) != len(rlk.Parts) {
		t.Fatalf("relin key shape: digits=%d, want %d", len(gotRLK.Parts), len(rlk.Parts))
	}
	for d := range rlk.Parts {
		for j := 0; j < 2; j++ {
			for ell := range rlk.Parts[d][j] {
				for i := range rlk.Parts[d][j][ell] {
					if gotRLK.Parts[d][j][ell][i] != rlk.Parts[d][j][ell][i] {
						t.Fatalf("relin key digit %d comp %d level %d coefficient %d differs", d, j, ell, i)
					}
				}
			}
		}
	}
}

// TestWireDecodeTruncated feeds every strict prefix of valid encodings to
// the decoders: all must fail with a typed error, none may panic.
func TestWireDecodeTruncated(t *testing.T) {
	ctx := wireTestContext(t)
	kg := NewKeyGenerator(ctx, 23)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ct := randomCiphertext(ctx, 29, 1)

	check := func(name string, enc []byte, decode func([]byte) (int, error)) {
		t.Helper()
		for cut := 0; cut < len(enc); cut += 1 + cut/7 { // sample prefixes
			_, err := decode(enc[:cut])
			if err == nil {
				t.Fatalf("%s: truncation at %d accepted", name, cut)
			}
			if !errors.Is(err, ErrShortBuffer) && !errors.Is(err, ErrMalformed) {
				t.Fatalf("%s: truncation at %d: untyped error %v", name, cut, err)
			}
		}
	}
	check("ciphertext", ct.AppendBinary(nil), func(b []byte) (int, error) {
		return new(Ciphertext).DecodeFrom(b)
	})
	check("publickey", pk.AppendBinary(nil), func(b []byte) (int, error) {
		return new(PublicKey).DecodeFrom(b)
	})
	check("relinkey", kg.GenRelinKey(sk).AppendBinary(nil), func(b []byte) (int, error) {
		return new(RelinKey).DecodeFrom(b)
	})
}

func TestWireDecodeMalformed(t *testing.T) {
	ctx := wireTestContext(t)
	ct := randomCiphertext(ctx, 31, 0)
	enc := ct.AppendBinary(nil)

	badLevel := append([]byte(nil), enc...)
	badLevel[0] = 200
	if _, err := new(Ciphertext).DecodeFrom(badLevel); !errors.Is(err, ErrMalformed) {
		t.Errorf("absurd level: err = %v, want ErrMalformed", err)
	}
	badN := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(badN[9:13], 1<<30)
	if _, err := new(Ciphertext).DecodeFrom(badN); !errors.Is(err, ErrMalformed) {
		t.Errorf("absurd degree: err = %v, want ErrMalformed", err)
	}
	nonPow2 := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(nonPow2[9:13], 100)
	if _, err := new(Ciphertext).DecodeFrom(nonPow2); !errors.Is(err, ErrMalformed) {
		t.Errorf("non-power-of-two degree: err = %v, want ErrMalformed", err)
	}
}

// FuzzCiphertextRoundTrip asserts two properties: (1) decoding arbitrary
// bytes returns typed errors and never panics; (2) a ciphertext built from
// the fuzz input encodes and decodes back bit-identically.
func FuzzCiphertextRoundTrip(f *testing.F) {
	ctx, err := NewContext(Params{LogN: 6, BaseBits: 25, ScaleBits: 16, Depth: 1, Sigma: 3.2, SpecialBits: 26})
	if err != nil {
		f.Fatal(err)
	}
	seed := randomCiphertext(ctx, 37, 1).AppendBinary(nil)
	f.Add(seed)
	f.Add(seed[:13])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Hostile decode: must not panic; failures must be typed.
		ct := new(Ciphertext)
		if _, err := ct.DecodeFrom(data); err != nil {
			if !errors.Is(err, ErrShortBuffer) && !errors.Is(err, ErrMalformed) && !errors.Is(err, ring.ErrShortBuffer) {
				t.Fatalf("untyped decode error: %v", err)
			}
		}
		// Constructive round trip: coefficients derived from the input.
		src := &Ciphertext{
			C0:    ring.RNSPoly{make(ring.Poly, 64), make(ring.Poly, 64)},
			C1:    ring.RNSPoly{make(ring.Poly, 64), make(ring.Poly, 64)},
			Level: 1, Scale: 1 << 16,
		}
		for l := range src.C0 {
			for i := range src.C0[l] {
				var v uint64
				for j := 0; j < 8; j++ {
					v = v<<8 | uint64(byteAt(data, 8*(64*l+i)+j))
				}
				src.C0[l][i] = v
				src.C1[l][i] = v ^ 0x5555555555555555
			}
		}
		enc := src.AppendBinary(nil)
		got := new(Ciphertext)
		if _, err := got.DecodeFrom(enc); err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !ciphertextsEqual(src, got) {
			t.Fatal("round trip not bit-identical")
		}
	})
}

func byteAt(data []byte, i int) byte {
	if len(data) == 0 {
		return 0
	}
	return data[i%len(data)]
}
