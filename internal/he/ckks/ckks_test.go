package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"quhe/internal/he/ring"
)

// testContext returns a small, fast context (N=256, depth 1).
func testContext(t testing.TB) *Context {
	t.Helper()
	p, err := NewParams(8, 35, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randomSlots(rng *rand.Rand, n int) []complex128 {
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return z
}

func maxSlotError(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewParams(2, 35, 25, 1); err == nil {
		t.Error("tiny logN accepted")
	}
	if _, err := NewParams(8, 62, 25, 1); err == nil {
		t.Error("oversized base accepted")
	}
	if _, err := NewParams(8, 35, 40, 3); err == nil {
		t.Error("scale primes above the base accepted")
	}
	if _, err := NewParams(8, 35, 25, 9); err == nil {
		t.Error("oversized depth accepted")
	}
	if _, err := NewParams(8, 35, 25, -1); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := NewParams(8, 40, 25, 4); err != nil {
		t.Error("deep multi-limb chain rejected:", err)
	}
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
	if p.Slots() != p.N()/2 {
		t.Error("slots != N/2")
	}
}

func TestContextChain(t *testing.T) {
	ctx := testContext(t)
	if ctx.MaxLevel() != 1 {
		t.Fatalf("MaxLevel = %d, want 1", ctx.MaxLevel())
	}
	if ctx.Tower.Limbs() != len(ctx.Primes) {
		t.Error("tower limb count differs from the prime chain")
	}
	for i, q := range ctx.Primes {
		if ctx.Limb(i).Q != q {
			t.Errorf("limb %d modulus %d != prime %d", i, ctx.Limb(i).Q, q)
		}
	}
	if ctx.Special == 0 || ctx.Tower.P == nil || ctx.Tower.P.Q != ctx.Special {
		t.Error("special prime missing from the tower")
	}
	for _, q := range ctx.Primes {
		if ctx.Special < q {
			t.Errorf("special prime %d below chain prime %d", ctx.Special, q)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(1))
	z := randomSlots(rng, ctx.Params.Slots())
	pt, err := enc.Encode(z, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(pt)
	if errv := maxSlotError(z, got); errv > 1e-4 {
		t.Errorf("encode/decode error %v", errv)
	}
}

func TestEncodeRejectsTooManyValues(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	z := make([]complex128, ctx.Params.Slots()+1)
	if _, err := enc.Encode(z, 0); err == nil {
		t.Error("oversized slot vector accepted")
	}
	if _, err := enc.EncodeAtLevel(z[:1], 0, 5); err == nil {
		t.Error("bad level accepted")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 8)

	rng := rand.New(rand.NewSource(2))
	z := randomSlots(rng, ctx.Params.Slots())
	pt, err := enc.Encode(z, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, pt)
	got := enc.Decode(ev.Decrypt(sk, ct))
	if errv := maxSlotError(z, got); errv > 1e-3 {
		t.Errorf("enc/dec error %v", errv)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 3)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 4)

	rng := rand.New(rand.NewSource(5))
	a := randomSlots(rng, ctx.Params.Slots())
	b := randomSlots(rng, ctx.Params.Slots())
	pta, _ := enc.Encode(a, 0)
	ptb, _ := enc.Encode(b, 0)
	cta := ev.Encrypt(pk, pta)
	ctb := ev.Encrypt(pk, ptb)

	sum, err := ev.Add(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	if errv := maxSlotError(want, enc.Decode(ev.Decrypt(sk, sum))); errv > 1e-3 {
		t.Errorf("add error %v", errv)
	}

	diff, err := ev.Sub(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] - b[i]
	}
	if errv := maxSlotError(want, enc.Decode(ev.Decrypt(sk, diff))); errv > 1e-3 {
		t.Errorf("sub error %v", errv)
	}
}

func TestPlaintextOps(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 3)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 4)

	rng := rand.New(rand.NewSource(6))
	a := randomSlots(rng, ctx.Params.Slots())
	b := randomSlots(rng, ctx.Params.Slots())
	pta, _ := enc.Encode(a, 0)
	ptb, _ := enc.Encode(b, 0)
	ct := ev.Encrypt(pk, pta)

	added, err := ev.AddPlain(ct, ptb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	if errv := maxSlotError(want, enc.Decode(ev.Decrypt(sk, added))); errv > 1e-3 {
		t.Errorf("addplain error %v", errv)
	}

	mul, err := ev.MulPlain(ct, ptb)
	if err != nil {
		t.Fatal(err)
	}
	rescaled, err := ev.Rescale(mul)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] * b[i]
	}
	if errv := maxSlotError(want, enc.Decode(ev.Decrypt(sk, rescaled))); errv > 0.01 {
		t.Errorf("mulplain error %v", errv)
	}
	if rescaled.Level != 0 {
		t.Errorf("rescaled level = %d, want 0", rescaled.Level)
	}
}

func TestMulRelinRescale(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 9)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 10)

	rng := rand.New(rand.NewSource(11))
	a := randomSlots(rng, ctx.Params.Slots())
	b := randomSlots(rng, ctx.Params.Slots())
	pta, _ := enc.Encode(a, 0)
	ptb, _ := enc.Encode(b, 0)
	cta := ev.Encrypt(pk, pta)
	ctb := ev.Encrypt(pk, ptb)

	prod, err := ev.MulRelin(cta, ctb, rlk)
	if err != nil {
		t.Fatal(err)
	}
	rescaled, err := ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] * b[i]
	}
	if errv := maxSlotError(want, enc.Decode(ev.Decrypt(sk, rescaled))); errv > 0.02 {
		t.Errorf("mulrelin error %v", errv)
	}
	// Scale returns near Δ: within the prime-vs-power-of-two slack.
	if ratio := rescaled.Scale / ctx.Params.Scale(); ratio < 0.9 || ratio > 1.2 {
		t.Errorf("rescaled scale ratio %v", ratio)
	}
}

func TestMulRelinRequiresKey(t *testing.T) {
	ctx := testContext(t)
	ev := NewEvaluator(ctx, 1)
	ct := &Ciphertext{C0: ctx.Tower.NewPoly(2), C1: ctx.Tower.NewPoly(2), Scale: 1, Level: 1}
	if _, err := ev.MulRelin(ct, ct, nil); err == nil {
		t.Error("nil relin key accepted")
	}
}

func TestLevelMismatchRejected(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 2)
	pt, _ := enc.EncodeReal([]float64{1}, 0)
	ct := ev.Encrypt(pk, pt)
	dropped, err := ev.DropLevel(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Add(ct, dropped); err == nil {
		t.Error("level mismatch accepted by Add")
	}
	_ = sk
}

func TestDropLevelPreservesMessage(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 2)

	vals := []float64{0.5, -0.25, 0.125}
	pt, err := enc.EncodeReal(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, pt)
	dropped, err := ev.DropLevel(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.DecodeReal(ev.Decrypt(sk, dropped))
	for i, want := range vals {
		if math.Abs(got[i]-want) > 1e-3 {
			t.Errorf("slot %d = %v, want %v", i, got[i], want)
		}
	}
	if _, err := ev.DropLevel(dropped, 1); err == nil {
		t.Error("raising level accepted")
	}
}

func TestRescaleAtBottomRejected(t *testing.T) {
	ctx := testContext(t)
	ev := NewEvaluator(ctx, 1)
	ct := &Ciphertext{C0: ctx.Tower.NewPoly(1), C1: ctx.Tower.NewPoly(1), Scale: 1, Level: 0}
	if _, err := ev.Rescale(ct); err == nil {
		t.Error("rescale below level 0 accepted")
	}
}

func TestTrivialCiphertext(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	ev := NewEvaluator(ctx, 2)
	vals := []float64{0.75, -0.5}
	pt, err := enc.EncodeReal(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Trivial(pt)
	got := enc.DecodeReal(ev.Decrypt(sk, ct))
	for i, want := range vals {
		if math.Abs(got[i]-want) > 1e-4 {
			t.Errorf("slot %d = %v, want %v", i, got[i], want)
		}
	}
}

// TestEncryptedDotProduct runs the paper's workload shape: a linear model
// evaluated on encrypted features (MulPlain + Rescale + Add chain).
func TestEncryptedDotProduct(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 21)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 22)

	features := []float64{0.3, -0.7, 0.2, 0.9}
	weights := []float64{0.5, 0.25, -1.0, 0.1}
	ptF, err := enc.EncodeReal(features, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, ptF)
	ptW, err := enc.EncodeReal(weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ev.MulPlain(ct, ptW)
	if err != nil {
		t.Fatal(err)
	}
	rescaled, err := ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.DecodeReal(ev.Decrypt(sk, rescaled))
	for i := range features {
		want := features[i] * weights[i]
		if math.Abs(got[i]-want) > 0.01 {
			t.Errorf("slot %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestNoiseBudgetAcrossDepth2(t *testing.T) {
	p, err := NewParams(8, 30, 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 31)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 32)

	vals := []float64{0.5, -0.5, 0.25}
	pt, err := enc.EncodeReal(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, pt)
	// Square twice: x → x² → x⁴ across both levels.
	sq, err := ev.MulRelin(ct, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	sq, err = ev.Rescale(sq)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := ev.MulRelin(sq, sq, rlk)
	if err != nil {
		t.Fatal(err)
	}
	quad, err = ev.Rescale(quad)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.DecodeReal(ev.Decrypt(sk, quad))
	for i, v := range vals {
		want := math.Pow(v, 4)
		if math.Abs(got[i]-want) > 0.05 {
			t.Errorf("slot %d: x⁴ = %v, want %v", i, got[i], want)
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	ctx := testContext(b)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 2)
	pt, _ := enc.EncodeReal([]float64{0.5}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Encrypt(pk, pt)
	}
}

func BenchmarkMulRelin(b *testing.B) {
	ctx := testContext(b)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 2)
	pt, _ := enc.EncodeReal([]float64{0.5}, 0)
	ct := ev.Encrypt(pk, pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MulRelin(ct, ct, rlk); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: encoding is linear — Decode(Encode(a) + Encode(b)) ≈ a + b.
func TestEncoderLinearity(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		a := randomSlots(rng, ctx.Params.Slots())
		b := randomSlots(rng, ctx.Params.Slots())
		pa, err := enc.Encode(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := enc.Encode(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum := &Plaintext{Value: ctx.Tower.NewPoly(pa.Level + 1), Scale: pa.Scale, Level: pa.Level}
		for i := range sum.Value {
			ctx.Limb(i).Add(pa.Value[i], pb.Value[i], sum.Value[i])
		}
		got := enc.Decode(sum)
		for i := range a {
			if cmplx.Abs(got[i]-(a[i]+b[i])) > 1e-3 {
				t.Fatalf("trial %d slot %d: %v != %v", trial, i, got[i], a[i]+b[i])
			}
		}
	}
}

// Property: ciphertext addition commutes with plaintext addition across
// random messages (homomorphism check via testing/quick-style loop).
func TestAdditiveHomomorphismRandom(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 55)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 56)
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 8; trial++ {
		a := randomSlots(rng, 16)
		b := randomSlots(rng, 16)
		pa, _ := enc.Encode(a, 0)
		pb, _ := enc.Encode(b, 0)
		sum, err := ev.Add(ev.Encrypt(pk, pa), ev.Encrypt(pk, pb))
		if err != nil {
			t.Fatal(err)
		}
		got := enc.Decode(ev.Decrypt(sk, sum))
		for i := range a {
			if cmplx.Abs(got[i]-(a[i]+b[i])) > 5e-3 {
				t.Fatalf("trial %d slot %d: %v vs %v", trial, i, got[i], a[i]+b[i])
			}
		}
	}
}

// TestCiphertextCopyIndependence guards against aliasing bugs in Copy.
func TestCiphertextCopyIndependence(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 2)
	pt, _ := enc.EncodeReal([]float64{0.5}, 0)
	ct := ev.Encrypt(pk, pt)
	dup := ct.Copy()
	dup.C0[0][0] = 12345
	dup.Scale = 1
	if ct.C0[0][0] == 12345 || ct.Scale == 1 {
		t.Error("Copy shares state")
	}
	_ = sk
}

// TestIntoVariantsMatchAllocating checks the zero-allocation Into APIs
// against their allocating counterparts, including aliasing the output
// with an operand.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 41)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 42)

	rng := rand.New(rand.NewSource(43))
	a := randomSlots(rng, ctx.Params.Slots())
	b := randomSlots(rng, ctx.Params.Slots())
	pta, _ := enc.Encode(a, 0)
	ptb, _ := enc.Encode(b, 0)
	cta := ev.Encrypt(pk, pta)
	ctb := ev.Encrypt(pk, ptb)

	eq := func(name string, x, y *Ciphertext) {
		t.Helper()
		if x.Level != y.Level || x.Scale != y.Scale {
			t.Fatalf("%s: level/scale mismatch", name)
		}
		for i := 0; i <= x.Level; i++ {
			for j := range x.C0[i] {
				if x.C0[i][j] != y.C0[i][j] || x.C1[i][j] != y.C1[i][j] {
					t.Fatalf("%s: limb %d coeff %d differs", name, i, j)
				}
			}
		}
	}

	want, err := ev.Add(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.NewCiphertext(cta.Level)
	if err := ev.AddInto(cta, ctb, got); err != nil {
		t.Fatal(err)
	}
	eq("AddInto", got, want)

	want, err = ev.MulPlain(cta, ptb)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.MulPlainInto(cta, ptb, got); err != nil {
		t.Fatal(err)
	}
	eq("MulPlainInto", got, want)
	aliased := cta.Copy()
	if err := ev.MulPlainInto(aliased, ptb, aliased); err != nil {
		t.Fatal(err)
	}
	eq("MulPlainInto aliased", aliased, want)

	want, err = ev.MulRelin(cta, ctb, rlk)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.MulRelinInto(cta, ctb, rlk, got); err != nil {
		t.Fatal(err)
	}
	eq("MulRelinInto", got, want)
	aliased = cta.Copy()
	if err := ev.MulRelinInto(aliased, ctb, rlk, aliased); err != nil {
		t.Fatal(err)
	}
	eq("MulRelinInto aliased", aliased, want)

	want, err = ev.Rescale(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.RescaleInto(got, got); err != nil {
		t.Fatal(err)
	}
	eq("RescaleInto aliased", got, want)

	want, err = ev.DropLevel(cta, 0)
	if err != nil {
		t.Fatal(err)
	}
	dropped := ctx.NewCiphertext(0)
	if err := ev.DropLevelInto(cta, 0, dropped); err != nil {
		t.Fatal(err)
	}
	eq("DropLevelInto", dropped, want)
}

// TestMulRelinSquareAliasing covers squaring with both operands and the
// output all aliased — the self-multiply pattern evaluator users hit.
func TestMulRelinSquareAliasing(t *testing.T) {
	ctx := testContext(t)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 44)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 45)

	vals := []float64{0.5, -0.25, 0.75}
	pt, err := enc.EncodeReal(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, pt)
	want, err := ev.MulRelin(ct, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.MulRelinInto(ct, ct, rlk, ct); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= ct.Level; i++ {
		for j := range ct.C0[i] {
			if ct.C0[i][j] != want.C0[i][j] || ct.C1[i][j] != want.C1[i][j] {
				t.Fatalf("self-square aliased limb %d coeff %d differs", i, j)
			}
		}
	}
}

func BenchmarkMulRelinInto(b *testing.B) {
	ctx := testContext(b)
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 2)
	pt, _ := enc.EncodeReal([]float64{0.5}, 0)
	ct := ev.Encrypt(pk, pt)
	out := ctx.NewCiphertext(ct.Level)
	_ = sk
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.MulRelinInto(ct, ct, rlk, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeySwitch measures the gadget decomposition + key fold alone
// (the dominant cost of MulRelin beyond the tensor product).
func BenchmarkKeySwitch(b *testing.B) {
	ctx := testContext(b)
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 2)
	level := ctx.MaxLevel()
	rng := rand.New(rand.NewSource(3))
	d2 := ctx.Tower.NewPoly(level + 1)
	for i := range d2 {
		ctx.Limb(i).UniformPolyInto(rng, d2[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.keySwitch(d2, rlk.Parts, level)
	}
}

// TestParallelPathsLargeRing runs the full evaluator pipeline at N = 4096,
// above ring.ParallelMinN, so the goroutine fan-out branches in keygen,
// Encrypt, MulPlainInto and MulRelinInto execute (the small-ring tests
// never reach them). Run with -race to check the scratch-buffer
// disjointness of the parallel sections.
func TestParallelPathsLargeRing(t *testing.T) {
	if testing.Short() {
		t.Skip("large-ring keygen in -short mode")
	}
	p, err := NewParams(12, 35, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() < ring.ParallelMinN {
		t.Fatalf("test ring N=%d below ParallelMinN=%d: parallel paths not covered", p.N(), ring.ParallelMinN)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(ctx)
	kg := NewKeyGenerator(ctx, 61)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 62)

	vals := []float64{0.5, -0.25, 0.75, 0.1}
	pt, err := enc.EncodeReal(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, pt)

	scaled, err := ev.MulPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	if scaled, err = ev.Rescale(scaled); err != nil {
		t.Fatal(err)
	}
	got := enc.DecodeReal(ev.Decrypt(sk, scaled))
	for i, v := range vals {
		if math.Abs(got[i]-v*v) > 0.01 {
			t.Errorf("MulPlain slot %d = %v, want %v", i, got[i], v*v)
		}
	}

	sq, err := ev.MulRelin(ct, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	if sq, err = ev.Rescale(sq); err != nil {
		t.Fatal(err)
	}
	got = enc.DecodeReal(ev.Decrypt(sk, sq))
	for i, v := range vals {
		if math.Abs(got[i]-v*v) > 0.01 {
			t.Errorf("MulRelin slot %d = %v, want %v", i, got[i], v*v)
		}
	}
}

// TestDepth4SquareChain exercises the full RNS pipeline at depth 4: four
// MulRelin+Rescale squarings walk the ciphertext from level 4 to level 0,
// crossing every rescale and hybrid key-switch path.
func TestDepth4SquareChain(t *testing.T) {
	p, err := NewParams(10, 60, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := NewEvaluator(ctx, 9)
	enc := NewEncoder(ctx)
	// Values whose 16th powers stay far below q_0/Δ ≈ 2^10, so the final
	// level-0 decode cannot wrap.
	vals := []float64{0.9, -1.1, 1.05, 0.5}
	pt, err := enc.EncodeReal(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, pt)
	dec := enc.DecodeReal(ev.Decrypt(sk, ct))
	for i, v := range vals {
		if math.Abs(dec[i]-v) > 1e-4 {
			t.Fatalf("enc/dec slot %d: got %g want %g", i, dec[i], v)
		}
	}
	cur := ct
	want := make([]float64, len(vals))
	copy(want, vals)
	for d := 0; d < 4; d++ {
		m, err := ev.MulRelin(cur, cur, rlk)
		if err != nil {
			t.Fatal(err)
		}
		cur, err = ev.Rescale(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] *= want[i]
		}
		got := enc.DecodeReal(ev.Decrypt(sk, cur))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-2*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("depth %d slot %d: got %g want %g (level %d scale %g)", d, i, got[i], want[i], cur.Level, cur.Scale)
			}
		}
	}
	if cur.Level != 0 {
		t.Fatalf("chain ended at level %d, want 0", cur.Level)
	}
}
