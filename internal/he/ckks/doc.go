// Package ckks implements a compact but genuine RNS-CKKS approximate
// homomorphic encryption scheme: canonical-embedding encoding, RLWE key
// generation (secret, public and hybrid relinearization keys),
// encryption, decryption, homomorphic add / multiply / rescale, and level
// management. It is the server-side computation substrate of the QuHE
// system (§III-A.2/4): encrypted inference runs on CKKS slots.
//
// # Residue-tower representation
//
// The ciphertext modulus is a chain Q = q_0·q_1·…·q_L of NTT-friendly
// primes, and every polynomial is a ring.RNSPoly — one uint64 limb per
// prime, CRT views of the same integer coefficients. Q can therefore be
// hundreds of bits wide while all arithmetic stays in 64-bit words: a
// level-ℓ object carries limbs 0..ℓ, operations apply per limb with that
// limb's NTT context, and the independent limbs fan out across the
// bounded ring.Parallel worker pool — the multiplication pipeline's
// parallelism grows with the chain length instead of being capped at the
// two ciphertext components.
//
// Rescaling is the exact RNS rescale (ring.Tower.RescaleInto): dropping
// the top limb divides by q_ℓ with a centered-remainder correction folded
// into every remaining limb, no big-integer arithmetic anywhere.
//
// # Hybrid key switching
//
// Relinearization uses the special-prime hybrid construction instead of
// digit decomposition: the key generator draws one key part per chain
// limb over the extended basis QP (P a prime ≥ every q_i), part j
// carrying P·s² on limb j only. MulRelin decomposes the degree-2 term
// into its RNS digits D_j = [d2]_{q_j}, folds each digit through part j
// on every target limb (O(L²) per-limb NTTs, parallel over targets), and
// divides the accumulated product by P (ring.Tower.ModDownInto), which
// scales the key-switch noise down by P ≈ 2⁶¹.
//
// # Galois rotations and hoisting
//
// Slot rotations use the same hybrid construction: a GaloisKey per
// rotation step key-switches the automorphism X → X^k of the secret back
// under s (galois.go). Because the expensive half of a rotation — the RNS
// digit decomposition of c1 over the extended basis QP — depends only on
// the ciphertext, Hoisted computes it once and every subsequent rotation
// of the same ciphertext reuses it, paying only the per-key inner
// products and one ModDown. The BSGS packed matrix–vector kernel
// (linalg.go) builds on that: √n baby rotations from one hoisted
// decomposition, diagonals stored NTT+Montgomery at plan build so each
// multiply-accumulate is a pointwise pass, and √n giant rotations of the
// partial sums — O(√n) key-switches instead of the naive n−1. Versus
// production CKKS (SEAL / Lattigo / OpenFHE) there is still no
// bootstrapping; the package otherwise preserves the behaviour the
// paper's cost model (Eqs. 29/31) abstracts: slot-wise encrypted
// arithmetic whose cost grows with the limb count L, the polynomial
// degree λ = N, and log₂N.
//
// # Performance conventions
//
// Key material lives per limb in the NTT domain and Montgomery form (see
// keys.go), the evaluator keeps per-instance scratch towers and offers
// allocation-free Into variants of every hot operation, and per-limb work
// fans out through the bounded worker pool for ring degrees ≥
// ring.ParallelMinN. Secrets and errors are sampled as small integers
// once per coefficient and reduced into every limb, so RNG stream order
// is independent of both the limb count and the execution strategy.
package ckks
