package ckks

// Wire codecs for CKKS objects: hand-rolled, length-prefixed binary
// layouts built on ring.Poly's raw little-endian coefficient runs. They
// exist for the edge protocol's framed v3 path, where gob's reflective,
// per-coefficient varint encoding was the serving hot path's dominant
// cost. Conventions:
//
//   - AppendBinary appends the value's encoding to a caller-provided
//     buffer and returns the extended slice. With a buffer of sufficient
//     capacity (e.g. one drawn from a frame pool) it performs zero
//     allocations.
//   - DecodeFrom consumes one value from the front of a buffer and
//     returns the byte count consumed. Ciphertext and Plaintext decode
//     into their receiver, reusing existing coefficient storage when its
//     capacity suffices — a decode loop over a pre-sized receiver is
//     allocation-free in steady state.
//   - Ownership: everything DecodeFrom produces is copied out of the
//     input buffer; callers may reuse the buffer immediately. The inverse
//     does not hold for receivers — a Ciphertext decoded into a pooled
//     receiver aliases that receiver's polynomials, so anyone retaining
//     the value past the receiver's reuse (session key material, caches)
//     must decode into a fresh receiver or Copy first.
//   - Errors are typed: ErrShortBuffer for truncation, ErrMalformed for
//     structurally invalid data (absurd degrees, level out of range).
//     Decoders never panic on hostile input and never allocate
//     attacker-chosen sizes beyond the structural caps below.
//
// All integers are little-endian; float64s travel as IEEE 754 bits, so
// round-trips are bit-exact and match the gob path bit-for-bit.

import (
	"encoding/binary"
	"errors"
	"math"

	"quhe/internal/he/ring"
)

var (
	// ErrShortBuffer reports a truncated wire buffer.
	ErrShortBuffer = errors.New("ckks: short buffer")
	// ErrMalformed reports structurally invalid wire data.
	ErrMalformed = errors.New("ckks: malformed wire data")
)

// Structural caps on decoded sizes: Params.Validate bounds LogN to 15 and
// Depth to 3; the relin key's digit count is bounded by 64 bits / LogBase.
const (
	maxWireN      = 1 << 15
	maxWireLevels = 8
	maxWireDigits = 64
)

// polyHeader is the fixed prefix shared by Ciphertext and Plaintext:
// level (u8) | scale bits (u64) | degree (u32).
const polyHeaderLen = 1 + 8 + 4

func appendPolyHeader(b []byte, level int, scale float64, n int) []byte {
	b = append(b, byte(level))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(scale))
	return binary.LittleEndian.AppendUint32(b, uint32(n))
}

func decodePolyHeader(b []byte) (level int, scale float64, n int, err error) {
	if len(b) < polyHeaderLen {
		return 0, 0, 0, ErrShortBuffer
	}
	level = int(b[0])
	scale = math.Float64frombits(binary.LittleEndian.Uint64(b[1:9]))
	n = int(binary.LittleEndian.Uint32(b[9:13]))
	if level >= maxWireLevels || n == 0 || n > maxWireN || n&(n-1) != 0 {
		return 0, 0, 0, ErrMalformed
	}
	return level, scale, n, nil
}

// reusePoly returns p resized to n coefficients, reusing its storage when
// capacity allows.
func reusePoly(p ring.Poly, n int) ring.Poly {
	if cap(p) >= n {
		return p[:n]
	}
	return make(ring.Poly, n)
}

// AppendBinary appends ct's wire encoding to b: the poly header followed
// by the raw c0 and c1 coefficient runs (16·N bytes of payload).
func (ct *Ciphertext) AppendBinary(b []byte) []byte {
	b = appendPolyHeader(b, ct.Level, ct.Scale, len(ct.C0))
	b = ct.C0.AppendBinary(b)
	return ct.C1.AppendBinary(b)
}

// DecodeFrom decodes one ciphertext from the front of b into ct, reusing
// ct's coefficient storage when possible, and returns the bytes consumed.
// See the package wire conventions for ownership of the decoded value.
func (ct *Ciphertext) DecodeFrom(b []byte) (int, error) {
	level, scale, n, err := decodePolyHeader(b)
	if err != nil {
		return 0, err
	}
	off := polyHeaderLen
	if len(b)-off < 16*n {
		return 0, ErrShortBuffer
	}
	ct.C0 = reusePoly(ct.C0, n)
	ct.C1 = reusePoly(ct.C1, n)
	k, err := ct.C0.DecodeFrom(b[off:])
	if err != nil {
		return 0, err
	}
	off += k
	k, err = ct.C1.DecodeFrom(b[off:])
	if err != nil {
		return 0, err
	}
	ct.Level, ct.Scale = level, scale
	return off + k, nil
}

// AppendBinary appends pt's wire encoding to b (poly header + one
// coefficient run).
func (pt *Plaintext) AppendBinary(b []byte) []byte {
	b = appendPolyHeader(b, pt.Level, pt.Scale, len(pt.Value))
	return pt.Value.AppendBinary(b)
}

// DecodeFrom decodes one plaintext from the front of b into pt, reusing
// pt's coefficient storage when possible, and returns the bytes consumed.
func (pt *Plaintext) DecodeFrom(b []byte) (int, error) {
	level, scale, n, err := decodePolyHeader(b)
	if err != nil {
		return 0, err
	}
	off := polyHeaderLen
	if len(b)-off < 8*n {
		return 0, ErrShortBuffer
	}
	pt.Value = reusePoly(pt.Value, n)
	k, err := pt.Value.DecodeFrom(b[off:])
	if err != nil {
		return 0, err
	}
	pt.Level, pt.Scale = level, scale
	return off + k, nil
}

// appendPolyVec appends a per-level polynomial vector (degrees already
// encoded by the container header).
func appendPolyVec(b []byte, ps []ring.Poly) []byte {
	for _, p := range ps {
		b = p.AppendBinary(b)
	}
	return b
}

// decodePolyVec decodes levels polynomials of degree n, allocating fresh
// storage: key material is retained for a session's lifetime, so it never
// aliases a transient decode buffer.
func decodePolyVec(b []byte, levels, n int) ([]ring.Poly, int, error) {
	if len(b) < levels*8*n {
		return nil, 0, ErrShortBuffer
	}
	out := make([]ring.Poly, levels)
	off := 0
	for i := range out {
		out[i] = make(ring.Poly, n)
		k, err := out[i].DecodeFrom(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += k
	}
	return out, off, nil
}

// AppendBinary appends pk's wire encoding: levels (u8) | degree (u32) |
// P0 polys | P1 polys.
func (pk *PublicKey) AppendBinary(b []byte) []byte {
	b = append(b, byte(len(pk.P0)))
	b = binary.LittleEndian.AppendUint32(b, uint32(polyDegree(pk.P0)))
	b = appendPolyVec(b, pk.P0)
	return appendPolyVec(b, pk.P1)
}

// DecodeFrom decodes a public key from the front of b into pk (fresh
// storage; see decodePolyVec) and returns the bytes consumed.
func (pk *PublicKey) DecodeFrom(b []byte) (int, error) {
	if len(b) < 5 {
		return 0, ErrShortBuffer
	}
	levels := int(b[0])
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if levels == 0 || levels > maxWireLevels || n == 0 || n > maxWireN || n&(n-1) != 0 {
		return 0, ErrMalformed
	}
	off := 5
	p0, k, err := decodePolyVec(b[off:], levels, n)
	if err != nil {
		return 0, err
	}
	off += k
	p1, k, err := decodePolyVec(b[off:], levels, n)
	if err != nil {
		return 0, err
	}
	pk.P0, pk.P1 = p0, p1
	return off + k, nil
}

// AppendBinary appends rlk's wire encoding: log base (u8) | digits (u8) |
// levels (u8) | degree (u32) | per digit, the component-0 then
// component-1 per-level polys.
func (rlk *RelinKey) AppendBinary(b []byte) []byte {
	levels := 0
	if len(rlk.Parts) > 0 {
		levels = len(rlk.Parts[0][0])
	}
	n := 0
	if levels > 0 {
		n = polyDegree(rlk.Parts[0][0])
	}
	b = append(b, byte(rlk.LogBase), byte(len(rlk.Parts)), byte(levels))
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for _, part := range rlk.Parts {
		b = appendPolyVec(b, part[0])
		b = appendPolyVec(b, part[1])
	}
	return b
}

// DecodeFrom decodes a relinearization key from the front of b into rlk
// (fresh storage) and returns the bytes consumed.
func (rlk *RelinKey) DecodeFrom(b []byte) (int, error) {
	if len(b) < 7 {
		return 0, ErrShortBuffer
	}
	logBase, digits, levels := int(b[0]), int(b[1]), int(b[2])
	n := int(binary.LittleEndian.Uint32(b[3:7]))
	if logBase < 1 || logBase > 30 || digits == 0 || digits > maxWireDigits ||
		levels == 0 || levels > maxWireLevels || n == 0 || n > maxWireN || n&(n-1) != 0 {
		return 0, ErrMalformed
	}
	off := 7
	parts := make([][2][]ring.Poly, digits)
	for i := range parts {
		for j := 0; j < 2; j++ {
			ps, k, err := decodePolyVec(b[off:], levels, n)
			if err != nil {
				return 0, err
			}
			parts[i][j] = ps
			off += k
		}
	}
	rlk.Parts, rlk.LogBase = parts, logBase
	return off, nil
}

func polyDegree(ps []ring.Poly) int {
	if len(ps) == 0 {
		return 0
	}
	return len(ps[0])
}
