package ckks

// Wire codecs for CKKS objects: hand-rolled, length-prefixed binary
// layouts built on ring.Poly's raw little-endian coefficient runs, one
// run per RNS limb. They exist for the edge protocol's framed v3 path,
// where gob's reflective, per-coefficient varint encoding was the serving
// hot path's dominant cost. Conventions:
//
//   - AppendBinary appends the value's encoding to a caller-provided
//     buffer and returns the extended slice. With a buffer of sufficient
//     capacity (e.g. one drawn from a frame pool) it performs zero
//     allocations.
//   - DecodeFrom consumes one value from the front of a buffer and
//     returns the byte count consumed. Ciphertext and Plaintext decode
//     into their receiver, reusing existing limb storage when its
//     capacity suffices — a decode loop over a pre-sized receiver is
//     allocation-free in steady state.
//   - Ownership: everything DecodeFrom produces is copied out of the
//     input buffer; callers may reuse the buffer immediately. The inverse
//     does not hold for receivers — a Ciphertext decoded into a pooled
//     receiver aliases that receiver's polynomials, so anyone retaining
//     the value past the receiver's reuse (session key material, caches)
//     must decode into a fresh receiver or Copy first.
//   - Errors are typed: ErrShortBuffer for truncation, ErrMalformed for
//     structurally invalid data (absurd degrees, level out of range).
//     Decoders never panic on hostile input and never allocate
//     attacker-chosen sizes beyond the structural caps below.
//
// Layouts: a ciphertext is the poly header (level | scale | degree)
// followed by C0's limbs 0..level then C1's limbs, each limb an 8·N-byte
// raw run — at level 0 this is bit-identical to the pre-RNS format. Keys
// carry their limb count explicitly since relin keys span the extended
// basis QP. The residue-tower limb layout is a wire format change for
// level ≥ 1 payloads and multi-limb keys; the edge protocol negotiates it
// via a hello flag (see internal/edge).
//
// All integers are little-endian; float64s travel as IEEE 754 bits, so
// round-trips are bit-exact and match the gob path bit-for-bit.

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"quhe/internal/he/ring"
)

var (
	// ErrShortBuffer reports a truncated wire buffer.
	ErrShortBuffer = errors.New("ckks: short buffer")
	// ErrMalformed reports structurally invalid wire data.
	ErrMalformed = errors.New("ckks: malformed wire data")
)

// Structural caps on decoded sizes: Params.Validate bounds LogN to 15 and
// Depth to 8, so ciphertexts carry at most 9 limbs, keys over QP at most
// 10, and relin keys one digit per chain limb.
const (
	maxWireN      = 1 << 15
	maxWireLevels = 9
	maxWireLimbs  = 10
	maxWireDigits = 9
)

// polyHeader is the fixed prefix shared by Ciphertext and Plaintext:
// level (u8) | scale bits (u64) | degree (u32). The limb count is
// level + 1.
const polyHeaderLen = 1 + 8 + 4

func appendPolyHeader(b []byte, level int, scale float64, n int) []byte {
	b = append(b, byte(level))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(scale))
	return binary.LittleEndian.AppendUint32(b, uint32(n))
}

func decodePolyHeader(b []byte) (level int, scale float64, n int, err error) {
	if len(b) < polyHeaderLen {
		return 0, 0, 0, ErrShortBuffer
	}
	level = int(b[0])
	scale = math.Float64frombits(binary.LittleEndian.Uint64(b[1:9]))
	n = int(binary.LittleEndian.Uint32(b[9:13]))
	if level >= maxWireLevels || n == 0 || n > maxWireN || n&(n-1) != 0 {
		return 0, 0, 0, ErrMalformed
	}
	return level, scale, n, nil
}

// reusePoly returns p resized to n coefficients, reusing its storage when
// capacity allows.
func reusePoly(p ring.Poly, n int) ring.Poly {
	if cap(p) >= n {
		return p[:n]
	}
	return make(ring.Poly, n)
}

// reuseRNS returns p resized to the given limb count and degree, reusing
// the outer slice and every limb whose capacity suffices.
func reuseRNS(p ring.RNSPoly, limbs, n int) ring.RNSPoly {
	if cap(p) >= limbs {
		p = p[:limbs]
	} else {
		np := make(ring.RNSPoly, limbs)
		copy(np, p[:cap(p)])
		p = np
	}
	for i := range p {
		p[i] = reusePoly(p[i], n)
	}
	return p
}

// appendLimbs appends each limb's raw coefficient run.
func appendLimbs(b []byte, p ring.RNSPoly) []byte {
	for _, limb := range p {
		b = limb.AppendBinary(b)
	}
	return b
}

// decodeLimbs decodes the limbs of a pre-sized RNS polynomial in place.
func decodeLimbs(b []byte, p ring.RNSPoly) (int, error) {
	off := 0
	for i := range p {
		k, err := p[i].DecodeFrom(b[off:])
		if err != nil {
			return 0, err
		}
		off += k
	}
	return off, nil
}

// AppendBinary appends ct's wire encoding to b: the poly header followed
// by the raw limb runs of c0 then c1 (16·N·(level+1) bytes of payload).
func (ct *Ciphertext) AppendBinary(b []byte) []byte {
	n := 0
	if len(ct.C0) > 0 {
		n = len(ct.C0[0])
	}
	b = appendPolyHeader(b, ct.Level, ct.Scale, n)
	b = appendLimbs(b, ct.C0)
	return appendLimbs(b, ct.C1)
}

// DecodeFrom decodes one ciphertext from the front of b into ct, reusing
// ct's limb storage when possible, and returns the bytes consumed. See
// the package wire conventions for ownership of the decoded value.
func (ct *Ciphertext) DecodeFrom(b []byte) (int, error) {
	level, scale, n, err := decodePolyHeader(b)
	if err != nil {
		return 0, err
	}
	limbs := level + 1
	off := polyHeaderLen
	if len(b)-off < 16*n*limbs {
		return 0, ErrShortBuffer
	}
	ct.C0 = reuseRNS(ct.C0, limbs, n)
	ct.C1 = reuseRNS(ct.C1, limbs, n)
	k, err := decodeLimbs(b[off:], ct.C0)
	if err != nil {
		return 0, err
	}
	off += k
	k, err = decodeLimbs(b[off:], ct.C1)
	if err != nil {
		return 0, err
	}
	ct.Level, ct.Scale = level, scale
	return off + k, nil
}

// AppendBinary appends pt's wire encoding to b (poly header + the limb
// runs).
func (pt *Plaintext) AppendBinary(b []byte) []byte {
	n := 0
	if len(pt.Value) > 0 {
		n = len(pt.Value[0])
	}
	b = appendPolyHeader(b, pt.Level, pt.Scale, n)
	return appendLimbs(b, pt.Value)
}

// DecodeFrom decodes one plaintext from the front of b into pt, reusing
// pt's limb storage when possible, and returns the bytes consumed.
func (pt *Plaintext) DecodeFrom(b []byte) (int, error) {
	level, scale, n, err := decodePolyHeader(b)
	if err != nil {
		return 0, err
	}
	limbs := level + 1
	off := polyHeaderLen
	if len(b)-off < 8*n*limbs {
		return 0, ErrShortBuffer
	}
	pt.Value = reuseRNS(pt.Value, limbs, n)
	k, err := decodeLimbs(b[off:], pt.Value)
	if err != nil {
		return 0, err
	}
	pt.Level, pt.Scale = level, scale
	return off + k, nil
}

// decodeRNSFresh decodes limbs runs of degree n into fresh storage: key
// material is retained for a session's lifetime, so it never aliases a
// transient decode buffer.
func decodeRNSFresh(b []byte, limbs, n int) (ring.RNSPoly, int, error) {
	if len(b) < limbs*8*n {
		return nil, 0, ErrShortBuffer
	}
	out := make(ring.RNSPoly, limbs)
	off := 0
	for i := range out {
		out[i] = make(ring.Poly, n)
		k, err := out[i].DecodeFrom(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += k
	}
	return out, off, nil
}

// AppendBinary appends pk's wire encoding: limbs (u8) | degree (u32) |
// P0 limbs | P1 limbs.
func (pk *PublicKey) AppendBinary(b []byte) []byte {
	n := 0
	if len(pk.P0) > 0 {
		n = len(pk.P0[0])
	}
	b = append(b, byte(len(pk.P0)))
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = appendLimbs(b, pk.P0)
	return appendLimbs(b, pk.P1)
}

// DecodeFrom decodes a public key from the front of b into pk (fresh
// storage; see decodeRNSFresh) and returns the bytes consumed.
func (pk *PublicKey) DecodeFrom(b []byte) (int, error) {
	if len(b) < 5 {
		return 0, ErrShortBuffer
	}
	limbs := int(b[0])
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if limbs == 0 || limbs > maxWireLimbs || n == 0 || n > maxWireN || n&(n-1) != 0 {
		return 0, ErrMalformed
	}
	off := 5
	p0, k, err := decodeRNSFresh(b[off:], limbs, n)
	if err != nil {
		return 0, err
	}
	off += k
	p1, k, err := decodeRNSFresh(b[off:], limbs, n)
	if err != nil {
		return 0, err
	}
	pk.P0, pk.P1 = p0, p1
	return off + k, nil
}

// AppendBinary appends rlk's wire encoding: digits (u8) | limbs (u8) |
// degree (u32) | per digit, the component-0 then component-1 limb runs.
func (rlk *RelinKey) AppendBinary(b []byte) []byte {
	limbs, n := 0, 0
	if len(rlk.Parts) > 0 {
		limbs = len(rlk.Parts[0][0])
		if limbs > 0 {
			n = len(rlk.Parts[0][0][0])
		}
	}
	b = append(b, byte(len(rlk.Parts)), byte(limbs))
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for _, part := range rlk.Parts {
		b = appendLimbs(b, part[0])
		b = appendLimbs(b, part[1])
	}
	return b
}

// maxWireGaloisKeys caps a decoded key set: the BSGS rotation set needs
// ~2·√slots keys (≤ 256 at the LogN 15 cap) and the power-of-two set
// ~2·log₂(slots); 1024 leaves headroom without letting hostile input
// drive unbounded allocation.
const maxWireGaloisKeys = 1024

// AppendBinary appends gk's wire encoding: rot (i32) | element (u64) |
// then the gadget in the RelinKey part layout (digits | limbs | degree |
// per-digit component runs).
func (gk *GaloisKey) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(gk.Rot)))
	b = binary.LittleEndian.AppendUint64(b, gk.El)
	rk := RelinKey{Parts: gk.Parts}
	return rk.AppendBinary(b)
}

// DecodeFrom decodes a Galois key from the front of b into gk (fresh
// storage; key material is retained) and returns the bytes consumed. The
// rotation/element pair is validated against the decoded ring degree so a
// key can never be installed under the wrong automorphism.
func (gk *GaloisKey) DecodeFrom(b []byte) (int, error) {
	if len(b) < 12 {
		return 0, ErrShortBuffer
	}
	rot := int(int32(binary.LittleEndian.Uint32(b[0:4])))
	el := binary.LittleEndian.Uint64(b[4:12])
	var rk RelinKey
	k, err := rk.DecodeFrom(b[12:])
	if err != nil {
		return 0, err
	}
	n := len(rk.Parts[0][0][0])
	if n < 4 || el != ring.GaloisElement(rot, n) {
		return 0, ErrMalformed
	}
	gk.Rot, gk.El, gk.Parts = rot, el, rk.Parts
	return 12 + k, nil
}

// AppendBinary appends the key set: count (u16) | keys in ascending
// element order (deterministic bytes for identical sets).
func (s *GaloisKeySet) AppendBinary(b []byte) []byte {
	els := make([]uint64, 0, len(s.Keys))
	for el := range s.Keys {
		els = append(els, el)
	}
	sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
	b = binary.LittleEndian.AppendUint16(b, uint16(len(els)))
	for _, el := range els {
		b = s.Keys[el].AppendBinary(b)
	}
	return b
}

// DecodeFrom decodes a Galois key set from the front of b into s (fresh
// storage) and returns the bytes consumed. Duplicate elements are
// rejected.
func (s *GaloisKeySet) DecodeFrom(b []byte) (int, error) {
	if len(b) < 2 {
		return 0, ErrShortBuffer
	}
	count := int(binary.LittleEndian.Uint16(b))
	if count > maxWireGaloisKeys {
		return 0, ErrMalformed
	}
	off := 2
	keys := make(map[uint64]*GaloisKey, count)
	for i := 0; i < count; i++ {
		gk := new(GaloisKey)
		k, err := gk.DecodeFrom(b[off:])
		if err != nil {
			return 0, err
		}
		if _, dup := keys[gk.El]; dup {
			return 0, ErrMalformed
		}
		keys[gk.El] = gk
		off += k
	}
	s.Keys = keys
	return off, nil
}

// DecodeFrom decodes a relinearization key from the front of b into rlk
// (fresh storage) and returns the bytes consumed.
func (rlk *RelinKey) DecodeFrom(b []byte) (int, error) {
	if len(b) < 6 {
		return 0, ErrShortBuffer
	}
	digits, limbs := int(b[0]), int(b[1])
	n := int(binary.LittleEndian.Uint32(b[2:6]))
	if digits == 0 || digits > maxWireDigits ||
		limbs == 0 || limbs > maxWireLimbs || n == 0 || n > maxWireN || n&(n-1) != 0 {
		return 0, ErrMalformed
	}
	off := 6
	parts := make([][2]ring.RNSPoly, digits)
	for i := range parts {
		for j := 0; j < 2; j++ {
			ps, k, err := decodeRNSFresh(b[off:], limbs, n)
			if err != nil {
				return 0, err
			}
			parts[i][j] = ps
			off += k
		}
	}
	rlk.Parts = parts
	return off, nil
}
