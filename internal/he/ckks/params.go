package ckks

import (
	"fmt"

	"quhe/internal/he/ring"
)

// Params fixes a CKKS instance.
type Params struct {
	// LogN is log2 of the ring degree (the paper's λ is N = 2^LogN).
	LogN int
	// BaseBits is the size of the bottom prime q_0, which must hold the
	// final scaled message.
	BaseBits int
	// ScaleBits is the size of each rescaling prime; the encoding scale Δ
	// defaults to 2^ScaleBits.
	ScaleBits int
	// Depth is the number of rescaling primes (supported multiplications).
	Depth int
	// Sigma is the error standard deviation (3.2 by convention).
	Sigma float64
	// SpecialBits is the size of the special prime P that hybrid key
	// switching extends the basis with; P must dominate every chain prime
	// (SpecialBits ≥ BaseBits) so the key-switch noise divides away.
	SpecialBits int
}

// NewParams assembles a parameter set, applying σ=3.2 and a 61-bit special
// prime.
func NewParams(logN, baseBits, scaleBits, depth int) (Params, error) {
	p := Params{
		LogN: logN, BaseBits: baseBits, ScaleBits: scaleBits, Depth: depth,
		Sigma: 3.2, SpecialBits: 61,
	}
	return p, p.Validate()
}

// DefaultParams returns a depth-1 instance at ring degree 2^11 — ample for
// the repository's encrypted-inference and transciphering workloads.
func DefaultParams() Params {
	p, err := NewParams(11, 35, 25, 1)
	if err != nil {
		panic("ckks: invalid default params: " + err.Error())
	}
	return p
}

// N returns the ring degree.
func (p Params) N() int { return 1 << p.LogN }

// Slots returns the number of complex slots (N/2).
func (p Params) Slots() int { return 1 << (p.LogN - 1) }

// Scale returns the default encoding scale Δ = 2^ScaleBits.
func (p Params) Scale() float64 { return float64(uint64(1) << uint(p.ScaleBits)) }

// MaxLevel is the top level index (fresh ciphertexts live here).
func (p Params) MaxLevel() int { return p.Depth }

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.LogN < 3 || p.LogN > 15 {
		return fmt.Errorf("ckks: logN = %d outside [3, 15]", p.LogN)
	}
	if p.BaseBits < 20 || p.BaseBits > 60 {
		return fmt.Errorf("ckks: baseBits = %d outside [20, 60]", p.BaseBits)
	}
	if p.Depth < 0 || p.Depth > 8 {
		return fmt.Errorf("ckks: depth = %d outside [0, 8]", p.Depth)
	}
	if p.Depth > 0 && (p.ScaleBits < 15 || p.ScaleBits > p.BaseBits) {
		return fmt.Errorf("ckks: scaleBits = %d outside [15, baseBits=%d]", p.ScaleBits, p.BaseBits)
	}
	if p.Sigma <= 0 {
		return fmt.Errorf("ckks: sigma %g must be positive", p.Sigma)
	}
	if p.SpecialBits < p.BaseBits || p.SpecialBits > 61 {
		return fmt.Errorf("ckks: specialBits = %d outside [baseBits=%d, 61]", p.SpecialBits, p.BaseBits)
	}
	return nil
}

// Context holds the realized residue tower: Primes[0] is the base prime,
// Primes[1..Depth] the rescaling primes, Special the hybrid key-switch
// prime P, and Tower the per-limb NTT contexts plus the exact-division
// tables. A level-ℓ object carries limbs 0..ℓ. Contexts are immutable and
// safe to share.
type Context struct {
	Params  Params
	Primes  []uint64
	Special uint64
	Tower   *ring.Tower
}

// NewContext searches the chain and special primes and builds the tower.
func NewContext(p Params) (*Context, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	bitLens := make([]int, 0, p.Depth+2)
	bitLens = append(bitLens, p.BaseBits)
	for i := 0; i < p.Depth; i++ {
		bitLens = append(bitLens, p.ScaleBits)
	}
	bitLens = append(bitLens, p.SpecialBits)
	primes, err := ring.FindNTTPrimesDistinct(bitLens, n)
	if err != nil {
		return nil, fmt.Errorf("ckks: prime chain: %w", err)
	}
	chain, special := primes[:p.Depth+1], primes[p.Depth+1]
	tower, err := ring.NewTower(n, chain, special)
	if err != nil {
		return nil, fmt.Errorf("ckks: tower: %w", err)
	}
	return &Context{Params: p, Primes: chain, Special: special, Tower: tower}, nil
}

// Limb returns the NTT context of chain prime q_i.
func (c *Context) Limb(i int) *ring.Modulus { return c.Tower.Qi[i] }

// MaxLevel is the top level index.
func (c *Context) MaxLevel() int { return len(c.Primes) - 1 }

// NewCiphertext allocates a zero ciphertext at the given level (scale 0;
// callers set it).
func (c *Context) NewCiphertext(level int) *Ciphertext {
	return &Ciphertext{
		C0:    c.Tower.NewPoly(level + 1),
		C1:    c.Tower.NewPoly(level + 1),
		Level: level,
	}
}

// Plaintext is an encoded message: limbs 0..Level of a ring polynomial at
// a scale.
type Plaintext struct {
	Value ring.RNSPoly
	Scale float64
	Level int
}

// Ciphertext is a degree-1 RLWE ciphertext (c0, c1) at a scale and level,
// decrypting to c0 + c1·s on limbs 0..Level.
type Ciphertext struct {
	C0, C1 ring.RNSPoly
	Scale  float64
	Level  int
}

// Copy returns an independent copy.
func (ct *Ciphertext) Copy() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Copy(), C1: ct.C1.Copy(), Scale: ct.Scale, Level: ct.Level}
}
