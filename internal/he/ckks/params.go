// Package ckks implements a compact but genuine CKKS approximate
// homomorphic encryption scheme over a true modulus chain: canonical-
// embedding encoding, RLWE key generation (secret, public and
// relinearization keys), encryption, decryption, homomorphic add /
// multiply / rescale, and level management. It is the server-side
// computation substrate of the QuHE system (§III-A.2/4): encrypted
// inference runs on CKKS slots.
//
// The ciphertext modulus is a product q_0·q_1·…·q_L of NTT-friendly primes
// held in a single uint64 (≤ 2^62 total); rescaling divides by the current
// level's prime and switches the ciphertext down one level — the textbook
// (non-RNS) CKKS construction. Versus production CKKS (SEAL / Lattigo /
// OpenFHE) there are no Galois rotations and no bootstrapping; those
// simplifications keep the package small while preserving the behaviour the
// paper's cost model (Eqs. 29/31) abstracts: slot-wise encrypted arithmetic
// whose cost grows with the polynomial degree λ = N.
//
// Performance conventions: key material lives in the NTT domain and
// Montgomery form (see keys.go), the evaluator keeps per-instance scratch
// buffers and offers allocation-free Into variants of every hot operation,
// and independent transforms fan out across goroutines for ring degrees
// ≥ ring.ParallelMinN.
package ckks

import (
	"fmt"

	"quhe/internal/he/ring"
)

// Params fixes a CKKS instance.
type Params struct {
	// LogN is log2 of the ring degree (the paper's λ is N = 2^LogN).
	LogN int
	// BaseBits is the size of the bottom prime q_0, which must hold the
	// final scaled message.
	BaseBits int
	// ScaleBits is the size of each rescaling prime; the encoding scale Δ
	// defaults to 2^ScaleBits.
	ScaleBits int
	// Depth is the number of rescaling primes (supported multiplications).
	Depth int
	// Sigma is the error standard deviation (3.2 by convention).
	Sigma float64
	// RelinLogBase is log2 of the gadget base used by relinearization
	// keys; smaller bases mean more key parts but less noise.
	RelinLogBase int
}

// NewParams assembles a parameter set, applying σ=3.2 and relin base 2^8.
func NewParams(logN, baseBits, scaleBits, depth int) (Params, error) {
	p := Params{
		LogN: logN, BaseBits: baseBits, ScaleBits: scaleBits, Depth: depth,
		Sigma: 3.2, RelinLogBase: 8,
	}
	return p, p.Validate()
}

// DefaultParams returns a depth-1 instance at ring degree 2^11 — ample for
// the repository's encrypted-inference and transciphering workloads.
func DefaultParams() Params {
	p, err := NewParams(11, 35, 25, 1)
	if err != nil {
		panic("ckks: invalid default params: " + err.Error())
	}
	return p
}

// N returns the ring degree.
func (p Params) N() int { return 1 << p.LogN }

// Slots returns the number of complex slots (N/2).
func (p Params) Slots() int { return 1 << (p.LogN - 1) }

// Scale returns the default encoding scale Δ = 2^ScaleBits.
func (p Params) Scale() float64 { return float64(uint64(1) << uint(p.ScaleBits)) }

// MaxLevel is the top level index (fresh ciphertexts live here).
func (p Params) MaxLevel() int { return p.Depth }

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.LogN < 3 || p.LogN > 15 {
		return fmt.Errorf("ckks: logN = %d outside [3, 15]", p.LogN)
	}
	if p.BaseBits < 20 || p.BaseBits > 61 {
		return fmt.Errorf("ckks: baseBits = %d outside [20, 61]", p.BaseBits)
	}
	if p.Depth < 0 || p.Depth > 3 {
		return fmt.Errorf("ckks: depth = %d outside [0, 3]", p.Depth)
	}
	if p.Depth > 0 && (p.ScaleBits < 15 || p.ScaleBits > 40) {
		return fmt.Errorf("ckks: scaleBits = %d outside [15, 40]", p.ScaleBits)
	}
	if total := p.BaseBits + p.Depth*p.ScaleBits; total > 61 {
		return fmt.Errorf("ckks: modulus chain needs %d bits > 61", total)
	}
	if p.Sigma <= 0 {
		return fmt.Errorf("ckks: sigma %g must be positive", p.Sigma)
	}
	if p.RelinLogBase < 1 || p.RelinLogBase > 30 {
		return fmt.Errorf("ckks: relin base 2^%d outside range", p.RelinLogBase)
	}
	return nil
}

// Context holds the realized modulus chain: Primes[0] is the base prime,
// Primes[1..Depth] the rescaling primes; Moduli[ℓ] is the NTT context for
// q_ℓ = Π_{i≤ℓ} Primes[i]. Contexts are immutable and safe to share.
type Context struct {
	Params Params
	Primes []uint64
	Moduli []*ring.Modulus
}

// NewContext searches the primes and builds per-level NTT tables.
func NewContext(p Params) (*Context, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	base, err := ring.FindNTTPrime(p.BaseBits, n)
	if err != nil {
		return nil, fmt.Errorf("ckks: base prime: %w", err)
	}
	primes := []uint64{base}
	if p.Depth > 0 {
		scalePrimes, err := ring.FindNTTPrimes(p.ScaleBits, n, p.Depth)
		if err != nil {
			return nil, fmt.Errorf("ckks: scale primes: %w", err)
		}
		primes = append(primes, scalePrimes...)
	}
	ctx := &Context{Params: p, Primes: primes, Moduli: make([]*ring.Modulus, len(primes))}

	// Level ℓ modulus is the product of primes[0..ℓ] with a CRT-combined
	// primitive 2N-th root.
	q := uint64(1)
	var psi uint64
	for ell, prime := range primes {
		root, err := ring.PrimitiveRoot2N(prime, n)
		if err != nil {
			return nil, fmt.Errorf("ckks: root mod %d: %w", prime, err)
		}
		if ell == 0 {
			q, psi = prime, root
		} else {
			psi = ring.CRTPair(psi, q, root, prime)
			q *= prime
		}
		mod, err := ring.NewModulusWithRoot(q, n, psi)
		if err != nil {
			return nil, fmt.Errorf("ckks: level %d modulus: %w", ell, err)
		}
		ctx.Moduli[ell] = mod
	}
	return ctx, nil
}

// Mod returns the NTT context at the given level.
func (c *Context) Mod(level int) *ring.Modulus { return c.Moduli[level] }

// MaxLevel is the top level index.
func (c *Context) MaxLevel() int { return len(c.Moduli) - 1 }

// NewCiphertext allocates a zero ciphertext at the given level (scale 0;
// callers set it).
func (c *Context) NewCiphertext(level int) *Ciphertext {
	n := c.Params.N()
	return &Ciphertext{C0: make(ring.Poly, n), C1: make(ring.Poly, n), Level: level}
}

// Plaintext is an encoded message: a ring polynomial at a scale and level.
type Plaintext struct {
	Value ring.Poly
	Scale float64
	Level int
}

// Ciphertext is a degree-1 RLWE ciphertext (c0, c1) at a scale and level,
// decrypting to c0 + c1·s mod q_Level.
type Ciphertext struct {
	C0, C1 ring.Poly
	Scale  float64
	Level  int
}

// Copy returns an independent copy.
func (ct *Ciphertext) Copy() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Copy(), C1: ct.C1.Copy(), Scale: ct.Scale, Level: ct.Level}
}
