package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// matvecContext needs depth ≥ 2: transcipher-style inputs arrive below
// top level and the kernel spends one level on the diagonal products.
func matvecContext(t testing.TB) *Context {
	t.Helper()
	p, err := NewParams(9, 45, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randomMatrix(rng *rand.Rand, n int) ([][]float64, []float64) {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	bias := make([]float64, n)
	for i := range bias {
		bias[i] = rng.Float64()*2 - 1
	}
	return m, bias
}

func plainMatVec(m [][]float64, v, bias []float64) []float64 {
	n := len(m)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += m[i][j] * v[j]
		}
		if bias != nil {
			s += bias[i]
		}
		out[i] = s
	}
	return out
}

// encryptReplicated packs v replicated across all slots and encrypts at
// the given level.
func encryptReplicated(t *testing.T, ev *Evaluator, pk *PublicKey, v []float64, level int) *Ciphertext {
	t.Helper()
	enc := NewEncoder(ev.Context())
	full := ev.replicate(v)
	pt, err := enc.EncodeRealAtLevel(full, 0, level)
	if err != nil {
		t.Fatal(err)
	}
	return ev.Encrypt(pk, pt)
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestMatVecAgainstPlaintext runs the BSGS kernel against a float64
// reference at several dimensions (square and non-square n1·n2 splits),
// with and without bias, checking the replicated output layout too.
func TestMatVecAgainstPlaintext(t *testing.T) {
	ctx := matvecContext(t)
	kg := NewKeyGenerator(ctx, 71)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 72)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(73))
	level := ctx.MaxLevel()

	for _, n := range []int{4, 8, 16, 64} {
		for _, withBias := range []bool{false, true} {
			m, bias := randomMatrix(rng, n)
			if !withBias {
				bias = nil
			}
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.Float64()*2 - 1
			}
			plan, err := ev.NewMatVecPlan(m, bias, level, 0)
			if err != nil {
				t.Fatal(err)
			}
			gks := kg.GenGaloisKeys(sk, plan.Rotations())
			ct := encryptReplicated(t, ev, pk, v, level)
			out := ctx.NewCiphertext(level - 1)
			if err := ev.MatVecInto(plan, ct, gks, out); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if out.Level != level-1 {
				t.Fatalf("n=%d: output level %d, want %d", n, out.Level, level-1)
			}
			if err := matchScales(out.Scale, ct.Scale); err != nil {
				t.Fatalf("n=%d: output scale drifted: %v", n, err)
			}
			got := enc.DecodeReal(ev.Decrypt(sk, out))
			want := plainMatVec(m, v, bias)
			if e := maxAbsDiff(want, got[:n]); e > 1e-2 {
				t.Errorf("n=%d bias=%v: error %v vs plaintext", n, withBias, e)
			}
			// Replication must survive: the second copy matches the first.
			if e := maxAbsDiff(got[:n], got[n:2*n]); e > 1e-3 {
				t.Errorf("n=%d: output not replicated, copy error %v", n, e)
			}
		}
	}
}

// TestMatVecNaiveMatchesBSGS pins the two evaluation orders against each
// other — same matrix, same input, results must agree to kernel noise.
func TestMatVecNaiveMatchesBSGS(t *testing.T) {
	ctx := matvecContext(t)
	kg := NewKeyGenerator(ctx, 81)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 82)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(83))
	level := ctx.MaxLevel()

	const n = 16
	m, bias := randomMatrix(rng, n)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	bsgs, err := ev.NewMatVecPlan(m, bias, level, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ev.NewMatVecNaivePlan(m, bias, level, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The naive path rotates by every diagonal index.
	allRots := make([]int, 0, n-1+len(bsgs.Rotations()))
	for d := 1; d < n; d++ {
		allRots = append(allRots, d)
	}
	allRots = append(allRots, bsgs.Rotations()...)
	gks := kg.GenGaloisKeys(sk, allRots)

	ct := encryptReplicated(t, ev, pk, v, level)
	outB := ctx.NewCiphertext(level - 1)
	outN := ctx.NewCiphertext(level - 1)
	if err := ev.MatVecInto(bsgs, ct, gks, outB); err != nil {
		t.Fatal(err)
	}
	if err := ev.MatVecNaiveInto(naive, ct, gks, outN); err != nil {
		t.Fatal(err)
	}
	gb := enc.DecodeReal(ev.Decrypt(sk, outB))
	gn := enc.DecodeReal(ev.Decrypt(sk, outN))
	if e := maxAbsDiff(gb[:n], gn[:n]); e > 1e-3 {
		t.Errorf("BSGS vs naive error %v", e)
	}
	// Style guards: each Into rejects the other's plan.
	if err := ev.MatVecInto(naive, ct, gks, outB); err == nil {
		t.Error("BSGS eval accepted a naive plan")
	}
	if err := ev.MatVecNaiveInto(bsgs, ct, gks, outN); err == nil {
		t.Error("naive eval accepted a BSGS plan")
	}
}

// TestMatVecPlanValidation exercises the shape checks.
func TestMatVecPlanValidation(t *testing.T) {
	ctx := matvecContext(t)
	ev := NewEvaluator(ctx, 91)
	level := ctx.MaxLevel()
	square := [][]float64{{1, 0}, {0, 1}}
	if _, err := ev.NewMatVecPlan([][]float64{{1, 2, 3}}, nil, level, 0); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := ev.NewMatVecPlan(square, []float64{1}, level, 0); err == nil {
		t.Error("short bias accepted")
	}
	if _, err := ev.NewMatVecPlan(square, nil, 0, 0); err == nil {
		t.Error("level 0 accepted (no room to rescale)")
	}
	n := 3 // does not divide a power-of-two slot count
	bad := make([][]float64, n)
	for i := range bad {
		bad[i] = make([]float64, n)
	}
	if _, err := ev.NewMatVecPlan(bad, nil, level, 0); err == nil {
		t.Error("non-divisor dimension accepted")
	}
	plan, err := ev.NewMatVecPlan(square, nil, level, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Dim() != 2 || plan.Level() != level {
		t.Error("plan metadata wrong")
	}
}

// TestBSGSRotations pins the shared shape rule both endpoints derive.
func TestBSGSRotations(t *testing.T) {
	got := BSGSRotations(64) // n1 = n2 = 8
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 16, 24, 32, 40, 48, 56}
	if len(got) != len(want) {
		t.Fatalf("rotations %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotations %v, want %v", got, want)
		}
	}
}
