package ckks

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"quhe/internal/he/ring"
)

// Evaluator performs CKKS encryption, decryption and homomorphic
// arithmetic over one context. Methods allocate fresh outputs and never
// mutate their operands. The internal RNG (used by Encrypt) makes one
// evaluator unsafe for concurrent encryption; share read-only uses freely.
type Evaluator struct {
	ctx *Context
	rng *rand.Rand
}

// NewEvaluator builds an evaluator. seed=0 selects a fixed default.
func NewEvaluator(ctx *Context, seed int64) *Evaluator {
	if seed == 0 {
		seed = 1
	}
	return &Evaluator{ctx: ctx, rng: rand.New(rand.NewSource(seed))}
}

// Context returns the evaluator's CKKS context.
func (ev *Evaluator) Context() *Context { return ev.ctx }

// Encrypt encrypts a plaintext under the public key at the plaintext's
// level: (c0, c1) = (p0·u + e0 + m, p1·u + e1) with ternary u.
func (ev *Evaluator) Encrypt(pk *PublicKey, pt *Plaintext) *Ciphertext {
	mod := ev.ctx.Mod(pt.Level)
	u := mod.TernaryPoly(ev.rng)
	e0 := mod.GaussianPoly(ev.rng, ev.ctx.Params.Sigma)
	e1 := mod.GaussianPoly(ev.rng, ev.ctx.Params.Sigma)
	c0 := mod.MulPoly(pk.P0[pt.Level], u)
	mod.Add(c0, e0, c0)
	mod.Add(c0, pt.Value, c0)
	c1 := mod.MulPoly(pk.P1[pt.Level], u)
	mod.Add(c1, e1, c1)
	return &Ciphertext{C0: c0, C1: c1, Scale: pt.Scale, Level: pt.Level}
}

// Trivial wraps a plaintext as the ciphertext (m, 0), which any key
// decrypts. The server's transciphering path uses it to lift received
// symmetric ciphertexts into the HE domain (Enc(c) in §III-A.4).
func (ev *Evaluator) Trivial(pt *Plaintext) *Ciphertext {
	return &Ciphertext{
		C0:    pt.Value.Copy(),
		C1:    ev.ctx.Mod(pt.Level).NewPoly(),
		Scale: pt.Scale,
		Level: pt.Level,
	}
}

// Decrypt recovers the plaintext m = c0 + c1·s at the ciphertext's level.
func (ev *Evaluator) Decrypt(sk *SecretKey, ct *Ciphertext) *Plaintext {
	mod := ev.ctx.Mod(ct.Level)
	m := mod.MulPoly(ct.C1, sk.S[ct.Level])
	mod.Add(m, ct.C0, m)
	return &Plaintext{Value: m, Scale: ct.Scale, Level: ct.Level}
}

// Add returns a + b. Levels and scales must match.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.matchLevels(a, b); err != nil {
		return nil, err
	}
	mod := ev.ctx.Mod(a.Level)
	out := &Ciphertext{C0: mod.NewPoly(), C1: mod.NewPoly(), Scale: a.Scale, Level: a.Level}
	mod.Add(a.C0, b.C0, out.C0)
	mod.Add(a.C1, b.C1, out.C1)
	return out, nil
}

// Sub returns a − b. Levels and scales must match.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.matchLevels(a, b); err != nil {
		return nil, err
	}
	mod := ev.ctx.Mod(a.Level)
	out := &Ciphertext{C0: mod.NewPoly(), C1: mod.NewPoly(), Scale: a.Scale, Level: a.Level}
	mod.Sub(a.C0, b.C0, out.C0)
	mod.Sub(a.C1, b.C1, out.C1)
	return out, nil
}

// AddPlain returns ct + pt. Levels and scales must match.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	if err := matchScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	out := ct.Copy()
	ev.ctx.Mod(ct.Level).Add(out.C0, pt.Value, out.C0)
	return out, nil
}

// SubPlain returns ct − pt. Levels and scales must match.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	if err := matchScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	out := ct.Copy()
	ev.ctx.Mod(ct.Level).Sub(out.C0, pt.Value, out.C0)
	return out, nil
}

// MulPlain returns ct·pt; the output scale is the product of scales
// (rescale afterwards to come back down). Levels must match.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	mod := ev.ctx.Mod(ct.Level)
	return &Ciphertext{
		C0:    mod.MulPoly(ct.C0, pt.Value),
		C1:    mod.MulPoly(ct.C1, pt.Value),
		Scale: ct.Scale * pt.Scale,
		Level: ct.Level,
	}, nil
}

// MulRelin multiplies two ciphertexts and relinearizes the degree-2 term
// with rlk. The output scale is the product of the input scales; rescale
// afterwards.
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	if rlk == nil || len(rlk.Parts) == 0 {
		return nil, errors.New("ckks: nil relinearization key")
	}
	if a.Level != b.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	mod := ev.ctx.Mod(a.Level)
	// Tensor: (d0, d1, d2) = (a0·b0, a0·b1 + a1·b0, a1·b1).
	d0 := mod.MulPoly(a.C0, b.C0)
	d1 := mod.MulPoly(a.C0, b.C1)
	tmp := mod.MulPoly(a.C1, b.C0)
	mod.Add(d1, tmp, d1)
	d2 := mod.MulPoly(a.C1, b.C1)

	// Gadget-decompose d2 in base T and fold in the relin key parts.
	base := uint64(1) << uint(rlk.LogBase)
	rem := d2.Copy()
	digit := mod.NewPoly()
	for i := 0; i < len(rlk.Parts); i++ {
		allZero := true
		for j := range rem {
			digit[j] = rem[j] % base
			rem[j] /= base
			if digit[j] != 0 {
				allZero = false
			}
		}
		if allZero {
			continue
		}
		mod.Add(d0, mod.MulPoly(digit, rlk.Parts[i][0][a.Level]), d0)
		mod.Add(d1, mod.MulPoly(digit, rlk.Parts[i][1][a.Level]), d1)
	}
	return &Ciphertext{C0: d0, C1: d1, Scale: a.Scale * b.Scale, Level: a.Level}, nil
}

// Rescale divides the ciphertext by its level's prime and switches it down
// one level — the CKKS modulus-switching rescale. The tracked scale shrinks
// by exactly that prime.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, errors.New("ckks: cannot rescale below level 0")
	}
	prime := ev.ctx.Primes[ct.Level]
	topMod := ev.ctx.Mod(ct.Level)
	botMod := ev.ctx.Mod(ct.Level - 1)
	out := &Ciphertext{
		C0:    rescalePoly(topMod, botMod, ct.C0, prime),
		C1:    rescalePoly(topMod, botMod, ct.C1, prime),
		Scale: ct.Scale / float64(prime),
		Level: ct.Level - 1,
	}
	return out, nil
}

// DropLevel reduces the ciphertext to a lower level without dividing
// (aligning operands that took different paths). The scale is unchanged.
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if level < 0 || level > ct.Level {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, level)
	}
	if level == ct.Level {
		return ct.Copy(), nil
	}
	return &Ciphertext{
		C0:    ev.ctx.reduceTo(ct.C0, level),
		C1:    ev.ctx.reduceTo(ct.C1, level),
		Scale: ct.Scale,
		Level: level,
	}, nil
}

// rescalePoly computes round(centered(p)/prime) mod q_{ℓ−1}.
func rescalePoly(top, bot *ring.Modulus, p ring.Poly, prime uint64) ring.Poly {
	out := make(ring.Poly, len(p))
	half := int64(prime) / 2
	for i, v := range p {
		c := top.CenteredInt64(v)
		var r int64
		if c >= 0 {
			r = (c + half) / int64(prime)
		} else {
			r = -((-c + half) / int64(prime))
		}
		out[i] = bot.FromInt64(r)
	}
	return out
}

func (ev *Evaluator) matchLevels(a, b *Ciphertext) error {
	if a.Level != b.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	return matchScales(a.Scale, b.Scale)
}

// matchScales enforces equal scales within floating tolerance.
func matchScales(a, b float64) error {
	if math.Abs(a-b) > 1e-6*math.Max(a, b) {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", a, b)
	}
	return nil
}
