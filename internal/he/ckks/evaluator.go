package ckks

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"quhe/internal/he/ring"
)

// Evaluator performs CKKS encryption, decryption and homomorphic
// arithmetic over one context. The allocating methods (Encrypt, Add,
// MulRelin, ...) return fresh outputs and never mutate their operands; the
// Into variants write into caller-provided ciphertexts and allocate
// nothing. All methods share the evaluator's internal scratch buffers (and
// Encrypt its RNG), so an evaluator must not be used from multiple
// goroutines concurrently; create one evaluator per goroutine instead —
// contexts and keys are shared safely.
type Evaluator struct {
	ctx *Context
	rng *rand.Rand
	// Scratch polynomials sized N, reused by every operation. MulRelinInto
	// is the worst case and needs all six.
	t0, t1, t2, t3, t4, t5 ring.Poly
}

// NewEvaluator builds an evaluator. seed=0 selects a fixed default.
func NewEvaluator(ctx *Context, seed int64) *Evaluator {
	if seed == 0 {
		seed = 1
	}
	n := ctx.Params.N()
	return &Evaluator{
		ctx: ctx,
		rng: rand.New(rand.NewSource(seed)),
		t0:  make(ring.Poly, n), t1: make(ring.Poly, n), t2: make(ring.Poly, n),
		t3: make(ring.Poly, n), t4: make(ring.Poly, n), t5: make(ring.Poly, n),
	}
}

// Context returns the evaluator's CKKS context.
func (ev *Evaluator) Context() *Context { return ev.ctx }

// parallel reports whether independent transforms should fan out across
// goroutines for this context's ring degree.
func (ev *Evaluator) parallel() bool { return ev.ctx.Params.N() >= ring.ParallelMinN }

// Encrypt encrypts a plaintext under the public key at the plaintext's
// level: (c0, c1) = (p0·u + e0 + m, p1·u + e1) with ternary u. The public
// key is stored in the NTT domain, so encryption costs one forward and two
// inverse transforms.
func (ev *Evaluator) Encrypt(pk *PublicKey, pt *Plaintext) *Ciphertext {
	mod := ev.ctx.Mod(pt.Level)
	out := ev.ctx.NewCiphertext(pt.Level)
	// Sampling happens before any transform so the RNG stream order is
	// fixed regardless of the execution strategy below.
	mod.TernaryPolyInto(ev.rng, ev.t0)                       // u
	mod.GaussianPolyInto(ev.rng, ev.ctx.Params.Sigma, ev.t1) // e0
	mod.GaussianPolyInto(ev.rng, ev.ctx.Params.Sigma, ev.t2) // e1
	mod.NTT(ev.t0)
	// The two components are independent; closures are only materialized on
	// the parallel path so the serial path stays allocation-free.
	if ev.parallel() {
		ring.Parallel(
			func() {
				mod.MulCoeffwiseMontgomery(ev.t0, pk.P0[pt.Level], ev.t3)
				mod.INTT(ev.t3)
				mod.Add(ev.t3, ev.t1, out.C0)
				mod.Add(out.C0, pt.Value, out.C0)
			},
			func() {
				mod.MulCoeffwiseMontgomery(ev.t0, pk.P1[pt.Level], ev.t4)
				mod.INTT(ev.t4)
				mod.Add(ev.t4, ev.t2, out.C1)
			},
		)
	} else {
		mod.MulCoeffwiseMontgomery(ev.t0, pk.P0[pt.Level], ev.t3)
		mod.INTT(ev.t3)
		mod.Add(ev.t3, ev.t1, out.C0)
		mod.Add(out.C0, pt.Value, out.C0)
		mod.MulCoeffwiseMontgomery(ev.t0, pk.P1[pt.Level], ev.t4)
		mod.INTT(ev.t4)
		mod.Add(ev.t4, ev.t2, out.C1)
	}
	out.Scale = pt.Scale
	return out
}

// Trivial wraps a plaintext as the ciphertext (m, 0), which any key
// decrypts. The server's transciphering path uses it to lift received
// symmetric ciphertexts into the HE domain (Enc(c) in §III-A.4).
func (ev *Evaluator) Trivial(pt *Plaintext) *Ciphertext {
	return &Ciphertext{
		C0:    pt.Value.Copy(),
		C1:    ev.ctx.Mod(pt.Level).NewPoly(),
		Scale: pt.Scale,
		Level: pt.Level,
	}
}

// Decrypt recovers the plaintext m = c0 + c1·s at the ciphertext's level.
func (ev *Evaluator) Decrypt(sk *SecretKey, ct *Ciphertext) *Plaintext {
	mod := ev.ctx.Mod(ct.Level)
	copy(ev.t0, ct.C1)
	mod.NTT(ev.t0)
	mod.MulCoeffwiseMontgomery(ev.t0, sk.S[ct.Level], ev.t0)
	mod.INTT(ev.t0)
	m := mod.NewPoly()
	mod.Add(ev.t0, ct.C0, m)
	return &Plaintext{Value: m, Scale: ct.Scale, Level: ct.Level}
}

// AddInto sets out = a + b without allocating. Levels and scales must
// match; out may alias a or b.
func (ev *Evaluator) AddInto(a, b, out *Ciphertext) error {
	if err := ev.matchLevels(a, b); err != nil {
		return err
	}
	mod := ev.ctx.Mod(a.Level)
	mod.Add(a.C0, b.C0, out.C0)
	mod.Add(a.C1, b.C1, out.C1)
	out.Scale, out.Level = a.Scale, a.Level
	return nil
}

// Add returns a + b. Levels and scales must match.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.matchLevels(a, b); err != nil {
		return nil, err
	}
	out := ev.ctx.NewCiphertext(a.Level)
	if err := ev.AddInto(a, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubInto sets out = a − b without allocating. Levels and scales must
// match; out may alias a or b.
func (ev *Evaluator) SubInto(a, b, out *Ciphertext) error {
	if err := ev.matchLevels(a, b); err != nil {
		return err
	}
	mod := ev.ctx.Mod(a.Level)
	mod.Sub(a.C0, b.C0, out.C0)
	mod.Sub(a.C1, b.C1, out.C1)
	out.Scale, out.Level = a.Scale, a.Level
	return nil
}

// Sub returns a − b. Levels and scales must match.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.matchLevels(a, b); err != nil {
		return nil, err
	}
	out := ev.ctx.NewCiphertext(a.Level)
	if err := ev.SubInto(a, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AddPlain returns ct + pt. Levels and scales must match.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	if err := matchScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	out := ct.Copy()
	ev.ctx.Mod(ct.Level).Add(out.C0, pt.Value, out.C0)
	return out, nil
}

// SubPlain returns ct − pt. Levels and scales must match.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	if err := matchScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	out := ct.Copy()
	ev.ctx.Mod(ct.Level).Sub(out.C0, pt.Value, out.C0)
	return out, nil
}

// MulPlainInto sets out = ct·pt without allocating; the output scale is
// the product of scales (rescale afterwards to come back down). Levels must
// match; out may alias ct.
func (ev *Evaluator) MulPlainInto(ct *Ciphertext, pt *Plaintext, out *Ciphertext) error {
	if ct.Level != pt.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	mod := ev.ctx.Mod(ct.Level)
	copy(ev.t0, pt.Value)
	mod.NTT(ev.t0)
	if ev.parallel() {
		ring.Parallel(
			func() {
				copy(out.C0, ct.C0)
				mod.NTT(out.C0)
				mod.MulCoeffwise(out.C0, ev.t0, out.C0)
				mod.INTT(out.C0)
			},
			func() {
				copy(out.C1, ct.C1)
				mod.NTT(out.C1)
				mod.MulCoeffwise(out.C1, ev.t0, out.C1)
				mod.INTT(out.C1)
			},
		)
	} else {
		copy(out.C0, ct.C0)
		mod.NTT(out.C0)
		mod.MulCoeffwise(out.C0, ev.t0, out.C0)
		mod.INTT(out.C0)
		copy(out.C1, ct.C1)
		mod.NTT(out.C1)
		mod.MulCoeffwise(out.C1, ev.t0, out.C1)
		mod.INTT(out.C1)
	}
	out.Scale, out.Level = ct.Scale*pt.Scale, ct.Level
	return nil
}

// MulPlain returns ct·pt; see MulPlainInto.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	out := ev.ctx.NewCiphertext(ct.Level)
	if err := ev.MulPlainInto(ct, pt, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MulRelinInto multiplies two ciphertexts and relinearizes the degree-2
// term with rlk, writing into out without allocating (out may alias a or
// b). The whole tensor-and-key-switch pipeline runs in the NTT domain:
// four forward transforms for the operands, one inverse for the degree-2
// term, one forward per nonzero gadget digit, and two final inverses.
func (ev *Evaluator) MulRelinInto(a, b *Ciphertext, rlk *RelinKey, out *Ciphertext) error {
	if rlk == nil || len(rlk.Parts) == 0 {
		return errors.New("ckks: nil relinearization key")
	}
	if a.Level != b.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	mod := ev.ctx.Mod(a.Level)

	// Forward transforms of all four operand components.
	copy(ev.t0, a.C0)
	copy(ev.t1, a.C1)
	copy(ev.t2, b.C0)
	copy(ev.t3, b.C1)
	if ev.parallel() {
		ring.Parallel(
			func() { mod.NTT(ev.t0) },
			func() { mod.NTT(ev.t1) },
			func() { mod.NTT(ev.t2) },
			func() { mod.NTT(ev.t3) },
		)
	} else {
		mod.NTT(ev.t0)
		mod.NTT(ev.t1)
		mod.NTT(ev.t2)
		mod.NTT(ev.t3)
	}

	// Tensor in the NTT domain: (d0, d1, d2) = (a0·b0, a0·b1 + a1·b0, a1·b1).
	mod.MulCoeffwise(ev.t0, ev.t2, ev.t4)        // d̂0
	mod.MulCoeffwise(ev.t0, ev.t3, ev.t5)        // d̂1
	mod.MulCoeffwiseThenAdd(ev.t1, ev.t2, ev.t5) // d̂1 += â1·b̂0
	mod.MulCoeffwise(ev.t1, ev.t3, ev.t0)        // d̂2
	mod.INTT(ev.t0)                              // d2 back to coefficients for digit extraction

	// Key switch: fold the gadget decomposition of d2 into d̂0/d̂1.
	ev.keySwitch(ev.t0, rlk, a.Level, ev.t4, ev.t5, ev.t1)

	if ev.parallel() {
		ring.Parallel(func() { mod.INTT(ev.t4) }, func() { mod.INTT(ev.t5) })
	} else {
		mod.INTT(ev.t4)
		mod.INTT(ev.t5)
	}
	copy(out.C0, ev.t4)
	copy(out.C1, ev.t5)
	out.Scale, out.Level = a.Scale*b.Scale, a.Level
	return nil
}

// MulRelin multiplies two ciphertexts and relinearizes the degree-2 term
// with rlk. The output scale is the product of the input scales; rescale
// afterwards.
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	if rlk == nil || len(rlk.Parts) == 0 {
		return nil, errors.New("ckks: nil relinearization key")
	}
	if a.Level != b.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	out := ev.ctx.NewCiphertext(a.Level)
	if err := ev.MulRelinInto(a, b, rlk, out); err != nil {
		return nil, err
	}
	return out, nil
}

// keySwitch decomposes d2 (coefficient domain; clobbered) in the gadget
// base and accumulates digit·rlk_i into the NTT-domain accumulators
// acc0/acc1 at the given level. digitBuf is scratch for one digit. The
// relin key parts are stored in the NTT domain and Montgomery form, so each
// digit costs one forward transform plus two fused multiply-accumulates.
func (ev *Evaluator) keySwitch(d2 ring.Poly, rlk *RelinKey, level int, acc0, acc1, digitBuf ring.Poly) {
	mod := ev.ctx.Mod(level)
	mask := uint64(1)<<uint(rlk.LogBase) - 1
	for i := 0; i < len(rlk.Parts); i++ {
		allZero := true
		for j := range d2 {
			d := d2[j] & mask
			d2[j] >>= uint(rlk.LogBase)
			digitBuf[j] = d
			if d != 0 {
				allZero = false
			}
		}
		if allZero {
			continue
		}
		mod.NTT(digitBuf)
		mod.MulCoeffwiseMontgomeryThenAdd(digitBuf, rlk.Parts[i][0][level], acc0)
		mod.MulCoeffwiseMontgomeryThenAdd(digitBuf, rlk.Parts[i][1][level], acc1)
	}
}

// RescaleInto divides the ciphertext by its level's prime and switches it
// down one level, writing into out without allocating (out may alias ct).
func (ev *Evaluator) RescaleInto(ct, out *Ciphertext) error {
	if ct.Level == 0 {
		return errors.New("ckks: cannot rescale below level 0")
	}
	prime := ev.ctx.Primes[ct.Level]
	topMod := ev.ctx.Mod(ct.Level)
	botMod := ev.ctx.Mod(ct.Level - 1)
	rescalePolyInto(topMod, botMod, ct.C0, prime, out.C0)
	rescalePolyInto(topMod, botMod, ct.C1, prime, out.C1)
	out.Scale, out.Level = ct.Scale/float64(prime), ct.Level-1
	return nil
}

// Rescale divides the ciphertext by its level's prime and switches it down
// one level — the CKKS modulus-switching rescale. The tracked scale shrinks
// by exactly that prime.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, errors.New("ckks: cannot rescale below level 0")
	}
	out := ev.ctx.NewCiphertext(ct.Level - 1)
	if err := ev.RescaleInto(ct, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DropLevelInto reduces the ciphertext to a lower level without dividing,
// writing into out without allocating (out may alias ct). The scale is
// unchanged.
func (ev *Evaluator) DropLevelInto(ct *Ciphertext, level int, out *Ciphertext) error {
	if level < 0 || level > ct.Level {
		return fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, level)
	}
	mod := ev.ctx.Moduli[level]
	mod.ReduceInto(ct.C0, out.C0)
	mod.ReduceInto(ct.C1, out.C1)
	out.Scale, out.Level = ct.Scale, level
	return nil
}

// DropLevel reduces the ciphertext to a lower level without dividing
// (aligning operands that took different paths). The scale is unchanged.
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if level < 0 || level > ct.Level {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, level)
	}
	if level == ct.Level {
		return ct.Copy(), nil
	}
	out := ev.ctx.NewCiphertext(level)
	if err := ev.DropLevelInto(ct, level, out); err != nil {
		return nil, err
	}
	return out, nil
}

// rescalePolyInto computes round(centered(p)/prime) mod q_{ℓ−1} into out.
func rescalePolyInto(top, bot *ring.Modulus, p ring.Poly, prime uint64, out ring.Poly) {
	half := int64(prime) / 2
	for i, v := range p {
		c := top.CenteredInt64(v)
		var r int64
		if c >= 0 {
			r = (c + half) / int64(prime)
		} else {
			r = -((-c + half) / int64(prime))
		}
		out[i] = bot.FromInt64(r)
	}
}

func (ev *Evaluator) matchLevels(a, b *Ciphertext) error {
	if a.Level != b.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	return matchScales(a.Scale, b.Scale)
}

// matchScales enforces equal scales within floating tolerance.
func matchScales(a, b float64) error {
	if math.Abs(a-b) > 1e-6*math.Max(a, b) {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", a, b)
	}
	return nil
}
