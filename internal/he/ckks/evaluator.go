package ckks

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"quhe/internal/he/ring"
)

// Evaluator performs CKKS encryption, decryption and homomorphic
// arithmetic over one context. The allocating methods (Encrypt, Add,
// MulRelin, ...) return fresh outputs and never mutate their operands; the
// Into variants write into caller-provided ciphertexts and allocate
// nothing. All methods share the evaluator's internal scratch buffers (and
// Encrypt its RNG), so an evaluator must not be used from multiple
// goroutines concurrently; create one evaluator per goroutine instead —
// contexts and keys are shared safely. Per-limb work inside one operation
// fans out through the bounded ring.Parallel pool.
type Evaluator struct {
	ctx *Context
	rng *rand.Rand
	// Scratch towers with Depth+2 rows (the extended basis QP), reused by
	// every operation. MulRelinInto is the worst case: four operand
	// transforms, three tensor terms, two key-switch accumulators and the
	// per-target digit buffers.
	s0, s1, s2, s3, s4, s5, s6 ring.RNSPoly
	acc0, acc1, dig            ring.RNSPoly
	// Integer sampling buffers (one draw per coefficient, spread to limbs).
	iu, ie0, ie1 []int64
	// Matvec working set (hoisting + rotated babies), allocated on first
	// MatVecInto and reused; see linalg.go.
	mv *matvecScratch
}

// NewEvaluator builds an evaluator. seed=0 selects a fixed default.
func NewEvaluator(ctx *Context, seed int64) *Evaluator {
	if seed == 0 {
		seed = 1
	}
	n := ctx.Params.N()
	qp := len(ctx.Primes) + 1
	alloc := func() ring.RNSPoly {
		p := make(ring.RNSPoly, qp)
		for i := range p {
			p[i] = make(ring.Poly, n)
		}
		return p
	}
	return &Evaluator{
		ctx: ctx,
		rng: rand.New(rand.NewSource(seed)),
		s0:  alloc(), s1: alloc(), s2: alloc(), s3: alloc(),
		s4: alloc(), s5: alloc(), s6: alloc(),
		acc0: alloc(), acc1: alloc(), dig: alloc(),
		iu: make([]int64, n), ie0: make([]int64, n), ie1: make([]int64, n),
	}
}

// Context returns the evaluator's CKKS context.
func (ev *Evaluator) Context() *Context { return ev.ctx }

// ternaryInts and gaussianInts sample with the same draw order as the
// ring samplers, independent of limb count.
func (ev *Evaluator) ternaryInts(out []int64) {
	for i := range out {
		switch ev.rng.Intn(3) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = 1
		default:
			out[i] = -1
		}
	}
}

func (ev *Evaluator) gaussianInts(out []int64) {
	sigma := ev.ctx.Params.Sigma
	for i := range out {
		out[i] = int64(ev.rng.NormFloat64()*sigma + 0.5)
	}
}

// Encrypt encrypts a plaintext under the public key at the plaintext's
// level: (c0, c1) = (p0·u + e0 + m, p1·u + e1) with ternary u. The public
// key is stored in the NTT domain, so each limb costs one forward and two
// inverse transforms; limbs run in parallel.
func (ev *Evaluator) Encrypt(pk *PublicKey, pt *Plaintext) *Ciphertext {
	out := ev.ctx.NewCiphertext(pt.Level)
	// Sampling happens before any fan-out so the RNG stream order is fixed
	// regardless of the execution strategy.
	ev.ternaryInts(ev.iu)
	ev.gaussianInts(ev.ie0)
	ev.gaussianInts(ev.ie1)
	ev.ctx.Tower.ForEachLimb(pt.Level+1, func(i int) {
		mod := ev.ctx.Tower.Qi[i]
		u, t0, t1 := ev.s0[i], ev.s1[i], ev.s2[i]
		for j, v := range ev.iu {
			u[j] = mod.FromInt64(v)
		}
		mod.NTT(u)
		mod.MulCoeffwiseMontgomery(u, pk.P0[i], t0)
		mod.INTT(t0)
		for j, v := range ev.ie0 {
			t0[j] = ring.AddMod(t0[j], mod.FromInt64(v), mod.Q)
		}
		mod.Add(t0, pt.Value[i], out.C0[i])
		mod.MulCoeffwiseMontgomery(u, pk.P1[i], t1)
		mod.INTT(t1)
		for j, v := range ev.ie1 {
			out.C1[i][j] = ring.AddMod(t1[j], mod.FromInt64(v), mod.Q)
		}
	})
	out.Scale = pt.Scale
	return out
}

// Trivial wraps a plaintext as the ciphertext (m, 0), which any key
// decrypts. The server's transciphering path uses it to lift received
// symmetric ciphertexts into the HE domain (Enc(c) in §III-A.4).
func (ev *Evaluator) Trivial(pt *Plaintext) *Ciphertext {
	return &Ciphertext{
		C0:    pt.Value.Copy(),
		C1:    ev.ctx.Tower.NewPoly(pt.Level + 1),
		Scale: pt.Scale,
		Level: pt.Level,
	}
}

// Decrypt recovers the plaintext m = c0 + c1·s at the ciphertext's level.
func (ev *Evaluator) Decrypt(sk *SecretKey, ct *Ciphertext) *Plaintext {
	m := ev.ctx.Tower.NewPoly(ct.Level + 1)
	ev.ctx.Tower.ForEachLimb(ct.Level+1, func(i int) {
		mod := ev.ctx.Tower.Qi[i]
		t := ev.s0[i]
		copy(t, ct.C1[i])
		mod.NTT(t)
		mod.MulCoeffwiseMontgomery(t, sk.S[i], t)
		mod.INTT(t)
		mod.Add(t, ct.C0[i], m[i])
	})
	return &Plaintext{Value: m, Scale: ct.Scale, Level: ct.Level}
}

// AddInto sets out = a + b without allocating. Levels and scales must
// match; out may alias a or b.
func (ev *Evaluator) AddInto(a, b, out *Ciphertext) error {
	if err := ev.matchLevels(a, b); err != nil {
		return err
	}
	ev.ctx.Tower.ForEachLimb(a.Level+1, func(i int) {
		mod := ev.ctx.Tower.Qi[i]
		mod.Add(a.C0[i], b.C0[i], out.C0[i])
		mod.Add(a.C1[i], b.C1[i], out.C1[i])
	})
	out.Scale, out.Level = a.Scale, a.Level
	return nil
}

// Add returns a + b. Levels and scales must match.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.matchLevels(a, b); err != nil {
		return nil, err
	}
	out := ev.ctx.NewCiphertext(a.Level)
	if err := ev.AddInto(a, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubInto sets out = a − b without allocating. Levels and scales must
// match; out may alias a or b.
func (ev *Evaluator) SubInto(a, b, out *Ciphertext) error {
	if err := ev.matchLevels(a, b); err != nil {
		return err
	}
	ev.ctx.Tower.ForEachLimb(a.Level+1, func(i int) {
		mod := ev.ctx.Tower.Qi[i]
		mod.Sub(a.C0[i], b.C0[i], out.C0[i])
		mod.Sub(a.C1[i], b.C1[i], out.C1[i])
	})
	out.Scale, out.Level = a.Scale, a.Level
	return nil
}

// Sub returns a − b. Levels and scales must match.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.matchLevels(a, b); err != nil {
		return nil, err
	}
	out := ev.ctx.NewCiphertext(a.Level)
	if err := ev.SubInto(a, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AddPlain returns ct + pt. Levels and scales must match.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	if err := matchScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	out := ct.Copy()
	for i := 0; i <= ct.Level; i++ {
		ev.ctx.Tower.Qi[i].Add(out.C0[i], pt.Value[i], out.C0[i])
	}
	return out, nil
}

// SubPlain returns ct − pt. Levels and scales must match.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	if err := matchScales(ct.Scale, pt.Scale); err != nil {
		return nil, err
	}
	out := ct.Copy()
	for i := 0; i <= ct.Level; i++ {
		ev.ctx.Tower.Qi[i].Sub(out.C0[i], pt.Value[i], out.C0[i])
	}
	return out, nil
}

// MulPlainInto sets out = ct·pt without allocating; the output scale is
// the product of scales (rescale afterwards to come back down). Levels must
// match; out may alias ct.
func (ev *Evaluator) MulPlainInto(ct *Ciphertext, pt *Plaintext, out *Ciphertext) error {
	if ct.Level != pt.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	ev.ctx.Tower.ForEachLimb(ct.Level+1, func(i int) {
		mod := ev.ctx.Tower.Qi[i]
		m := ev.s0[i]
		copy(m, pt.Value[i])
		mod.NTT(m)
		copy(out.C0[i], ct.C0[i])
		mod.NTT(out.C0[i])
		mod.MulCoeffwise(out.C0[i], m, out.C0[i])
		mod.INTT(out.C0[i])
		copy(out.C1[i], ct.C1[i])
		mod.NTT(out.C1[i])
		mod.MulCoeffwise(out.C1[i], m, out.C1[i])
		mod.INTT(out.C1[i])
	})
	out.Scale, out.Level = ct.Scale*pt.Scale, ct.Level
	return nil
}

// MulPlain returns ct·pt; see MulPlainInto.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if ct.Level != pt.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", ct.Level, pt.Level)
	}
	out := ev.ctx.NewCiphertext(ct.Level)
	if err := ev.MulPlainInto(ct, pt, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MulRelinInto multiplies two ciphertexts and relinearizes the degree-2
// term with rlk, writing into out without allocating (out may alias a or
// b). The pipeline is per-limb throughout: one forward-transform fan-out
// for all four operand components, pointwise tensoring, hybrid key
// switching of the degree-2 term over the extended basis QP, ModDown back
// to the chain and the final inverse transforms.
func (ev *Evaluator) MulRelinInto(a, b *Ciphertext, rlk *RelinKey, out *Ciphertext) error {
	if rlk == nil || len(rlk.Parts) == 0 {
		return errors.New("ckks: nil relinearization key")
	}
	if a.Level != b.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	tower := ev.ctx.Tower
	limbs := a.Level + 1
	n := ev.ctx.Params.N()

	// Forward transforms of all four operand components, 4·limbs
	// independent tasks in one fan-out.
	pairs := [4][2]ring.RNSPoly{{ev.s0, a.C0}, {ev.s1, a.C1}, {ev.s2, b.C0}, {ev.s3, b.C1}}
	nttTasks := make([]func(), 0, 4*limbs)
	for i := 0; i < limbs; i++ {
		mod := tower.Qi[i]
		for _, pr := range pairs {
			m, dst, in := mod, pr[0][i], pr[1][i]
			nttTasks = append(nttTasks, func() {
				copy(dst, in)
				m.NTT(dst)
			})
		}
	}
	ring.ParallelIf(n, nttTasks...)

	// Tensor per limb: (d̂0, d̂1, d̂2) = (â0·b̂0, â0·b̂1 + â1·b̂0, â1·b̂1);
	// d2 returns to the coefficient domain for digit decomposition.
	tower.ForEachLimb(limbs, func(i int) {
		mod := tower.Qi[i]
		mod.MulCoeffwise(ev.s0[i], ev.s2[i], ev.s4[i])        // d̂0
		mod.MulCoeffwise(ev.s0[i], ev.s3[i], ev.s5[i])        // d̂1
		mod.MulCoeffwiseThenAdd(ev.s1[i], ev.s2[i], ev.s5[i]) // d̂1 += â1·b̂0
		mod.MulCoeffwise(ev.s1[i], ev.s3[i], ev.s6[i])        // d̂2
		mod.INTT(ev.s6[i])
	})

	// Hybrid key switch of d2 into acc0/acc1 (NTT domain, limbs 0..ℓ plus
	// the special limb at index ℓ+1), then back to the coefficient domain
	// and down from QP to Q.
	ev.keySwitch(ev.s6, rlk.Parts, a.Level)
	ev.keySwitchDown(a.Level)

	// out = (INTT(d̂0) + acc0, INTT(d̂1) + acc1).
	tower.ForEachLimb(limbs, func(i int) {
		mod := tower.Qi[i]
		mod.INTT(ev.s4[i])
		mod.Add(ev.s4[i], ev.acc0[i], out.C0[i])
		mod.INTT(ev.s5[i])
		mod.Add(ev.s5[i], ev.acc1[i], out.C1[i])
	})
	out.Scale, out.Level = a.Scale*b.Scale, a.Level
	return nil
}

// MulRelin multiplies two ciphertexts and relinearizes the degree-2 term
// with rlk. The output scale is the product of the input scales; rescale
// afterwards.
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	if rlk == nil || len(rlk.Parts) == 0 {
		return nil, errors.New("ckks: nil relinearization key")
	}
	if a.Level != b.Level {
		return nil, fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	out := ev.ctx.NewCiphertext(a.Level)
	if err := ev.MulRelinInto(a, b, rlk, out); err != nil {
		return nil, err
	}
	return out, nil
}

// keySwitch folds the RNS digits of d2 (coefficient domain, limbs
// 0..level; not modified) through hybrid key-switch parts (a RelinKey's or
// GaloisKey's gadget) into ev.acc0/ev.acc1 over the extended basis: chain
// limbs 0..level plus the special limb at index level+1, all in the NTT
// domain. The fan-out is over target limbs — each target reduces every
// digit into its modulus, transforms it, and runs two fused
// multiply-accumulates against the key's limb; targets are independent, so
// the O(L²) digit transforms parallelize across limbs.
func (ev *Evaluator) keySwitch(d2 ring.RNSPoly, parts [][2]ring.RNSPoly, level int) {
	tower := ev.ctx.Tower
	limbs := level + 1
	spIdx := tower.Limbs() // index of the special limb inside key parts
	ev.ctx.Tower.ForEachLimb(limbs+1, func(t int) {
		mod, partIdx := tower.P, spIdx
		if t < limbs {
			mod, partIdx = tower.Qi[t], t
		}
		acc0, acc1, dig := ev.acc0[t], ev.acc1[t], ev.dig[t]
		for j := range acc0 {
			acc0[j], acc1[j] = 0, 0
		}
		for j := 0; j < limbs; j++ {
			if partIdx == j {
				copy(dig, d2[j])
			} else {
				mod.ReduceInto(d2[j], dig)
			}
			mod.NTT(dig)
			mod.MulCoeffwiseMontgomeryThenAdd(dig, parts[j][0][partIdx], acc0)
			mod.MulCoeffwiseMontgomeryThenAdd(dig, parts[j][1][partIdx], acc1)
		}
	})
}

// keySwitchDown finishes a key switch: the NTT-domain accumulators in
// ev.acc0/ev.acc1 (limbs 0..level plus the special limb) return to the
// coefficient domain and drop from QP to Q via the tower's exact ModDown,
// leaving the switched pair in ev.acc0[:level+1]/ev.acc1[:level+1].
func (ev *Evaluator) keySwitchDown(level int) {
	tower := ev.ctx.Tower
	limbs := level + 1
	n := ev.ctx.Params.N()
	inttTasks := make([]func(), 0, 2*(limbs+1))
	for t := 0; t <= limbs; t++ {
		mod := tower.P
		if t < limbs {
			mod = tower.Qi[t]
		}
		m, a0, a1 := mod, ev.acc0[t], ev.acc1[t]
		inttTasks = append(inttTasks, func() { m.INTT(a0) }, func() { m.INTT(a1) })
	}
	ring.ParallelIf(n, inttTasks...)
	tower.ModDownInto(ev.acc0[:limbs], ev.acc0[limbs], ev.acc0[:limbs])
	tower.ModDownInto(ev.acc1[:limbs], ev.acc1[limbs], ev.acc1[:limbs])
}

// RescaleInto divides the ciphertext by its level's prime and switches it
// down one level — the exact RNS rescale dropping the top limb — writing
// into out without allocating (out may alias ct).
func (ev *Evaluator) RescaleInto(ct, out *Ciphertext) error {
	if ct.Level == 0 {
		return errors.New("ckks: cannot rescale below level 0")
	}
	tower := ev.ctx.Tower
	tower.RescaleInto(ct.C0[:ct.Level+1], out.C0[:ct.Level])
	tower.RescaleInto(ct.C1[:ct.Level+1], out.C1[:ct.Level])
	out.Scale, out.Level = ct.Scale/float64(ev.ctx.Primes[ct.Level]), ct.Level-1
	return nil
}

// Rescale divides the ciphertext by its level's prime and switches it down
// one level — the CKKS modulus-switching rescale. The tracked scale shrinks
// by exactly that prime.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, errors.New("ckks: cannot rescale below level 0")
	}
	out := ev.ctx.NewCiphertext(ct.Level - 1)
	if err := ev.RescaleInto(ct, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DropLevelInto reduces the ciphertext to a lower level without dividing,
// writing into out without allocating (out may alias ct). In RNS the
// reduction mod a divisor of the modulus is just dropping limbs. The scale
// is unchanged.
func (ev *Evaluator) DropLevelInto(ct *Ciphertext, level int, out *Ciphertext) error {
	if level < 0 || level > ct.Level {
		return fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, level)
	}
	for i := 0; i <= level; i++ {
		copy(out.C0[i], ct.C0[i])
		copy(out.C1[i], ct.C1[i])
	}
	out.Scale, out.Level = ct.Scale, level
	return nil
}

// DropLevel reduces the ciphertext to a lower level without dividing
// (aligning operands that took different paths). The scale is unchanged.
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	if level < 0 || level > ct.Level {
		return nil, fmt.Errorf("ckks: cannot drop from level %d to %d", ct.Level, level)
	}
	if level == ct.Level {
		return ct.Copy(), nil
	}
	out := ev.ctx.NewCiphertext(level)
	if err := ev.DropLevelInto(ct, level, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (ev *Evaluator) matchLevels(a, b *Ciphertext) error {
	if a.Level != b.Level {
		return fmt.Errorf("ckks: level mismatch %d vs %d", a.Level, b.Level)
	}
	return matchScales(a.Scale, b.Scale)
}

// matchScales enforces equal scales within floating tolerance.
func matchScales(a, b float64) error {
	if math.Abs(a-b) > 1e-6*math.Max(a, b) {
		return fmt.Errorf("ckks: scale mismatch %g vs %g", a, b)
	}
	return nil
}
