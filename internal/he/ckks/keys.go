package ckks

import (
	"math/rand"

	"quhe/internal/he/ring"
)

// Key material is stored per limb in the NTT domain and Montgomery form:
// evaluator hot paths (Encrypt, Decrypt, MulRelin key switching) then
// consume keys with a single fused Montgomery multiply-accumulate per
// coefficient and never transform key polynomials per operation. Both
// endpoints of the edge protocol run this package, so the wire (gob)
// representation changes with it transparently.
//
// Secrets and errors are sampled as small integers once per coefficient
// and reduced into every limb, so one RNS key is one RLWE sample over the
// composite modulus (the limbs are CRT views of the same integers, not
// independent samples). Uniform polynomials are the exception: sampling
// each limb independently IS the uniform distribution over the composite
// modulus, by CRT.

// SecretKey is the RLWE secret: one ternary polynomial over the extended
// basis QP (chain limbs 0..Depth, then the special limb last), NTT
// domain, Montgomery form.
type SecretKey struct {
	S ring.RNSPoly
}

// PublicKey is the RLWE encryption key (p0, p1) = (−a·s + e, a) over the
// chain limbs, NTT domain, Montgomery form. Level-ℓ encryption uses limbs
// 0..ℓ, which stay valid truncations of the top-level key.
type PublicKey struct {
	P0, P1 ring.RNSPoly
}

// RelinKey relinearizes degree-2 ciphertexts by hybrid key switching.
// Part j is an RLWE sample over the extended basis QP carrying the j-th
// RNS gadget of P·s²:
//
//	rlk_j = (−a_j·s + e_j + P·u_j·s², a_j),  u_j ≡ δ_ij (mod q_i), u_j ≡ 0 (mod P),
//
// so folding the digits D_j = [d2]_{q_j} through the parts accumulates
// P·d2·s² (+ small noise) over QP, and dividing by P (ModDown) returns it
// to the chain with the noise scaled away. Parts[j][c][t]: digit j,
// component c ∈ {0,1}, limb t (chain limbs then the special limb), NTT
// domain, Montgomery form.
type RelinKey struct {
	Parts [][2]ring.RNSPoly
}

// KeyGenerator derives CKKS keys from a seeded RNG. Not safe for
// concurrent use.
type KeyGenerator struct {
	ctx *Context
	rng *rand.Rand
}

// NewKeyGenerator builds a key generator over the context. seed=0 selects
// a fixed default so tests are reproducible.
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	if seed == 0 {
		seed = 1
	}
	return &KeyGenerator{ctx: ctx, rng: rand.New(rand.NewSource(seed))}
}

// qpMod returns the modulus of extended-basis limb t: chain limb t, or
// the special prime for t == len(Primes).
func (kg *KeyGenerator) qpMod(t int) *ring.Modulus {
	if t < len(kg.ctx.Primes) {
		return kg.ctx.Tower.Qi[t]
	}
	return kg.ctx.Tower.P
}

// ternaryInts fills out with coefficients from {−1, 0, 1}, matching the
// draw order of ring.TernaryPolyInto.
func (kg *KeyGenerator) ternaryInts(out []int64) {
	for i := range out {
		switch kg.rng.Intn(3) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = 1
		default:
			out[i] = -1
		}
	}
}

// gaussianInts fills out with rounded-Gaussian error coefficients.
func (kg *KeyGenerator) gaussianInts(out []int64) {
	for i := range out {
		out[i] = int64(kg.rng.NormFloat64()*kg.ctx.Params.Sigma + 0.5)
	}
}

// GenSecretKey samples a ternary secret and spreads it over QP.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	n := kg.ctx.Params.N()
	qp := len(kg.ctx.Primes) + 1
	vals := make([]int64, n)
	kg.ternaryInts(vals)
	s := make(ring.RNSPoly, qp)
	limb := func(t int) func() {
		return func() {
			mod := kg.qpMod(t)
			p := make(ring.Poly, n)
			for j, v := range vals {
				p[j] = mod.FromInt64(v)
			}
			mod.NTT(p)
			mod.MForm(p, p)
			s[t] = p
		}
	}
	tasks := make([]func(), qp)
	for t := range tasks {
		tasks[t] = limb(t)
	}
	ring.ParallelIf(n, tasks...)
	return &SecretKey{S: s}
}

// GenPublicKey builds (−a·s + e, a) over the chain limbs. All randomness
// is drawn before the per-limb fan-out so the RNG stream order is fixed.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	n := kg.ctx.Params.N()
	limbs := len(kg.ctx.Primes)
	a := make(ring.RNSPoly, limbs)
	for t := 0; t < limbs; t++ {
		a[t] = kg.ctx.Tower.Qi[t].UniformPoly(kg.rng)
	}
	e := make([]int64, n)
	kg.gaussianInts(e)
	pk := &PublicKey{P0: make(ring.RNSPoly, limbs), P1: make(ring.RNSPoly, limbs)}
	limb := func(t int) func() {
		return func() {
			mod := kg.ctx.Tower.Qi[t]
			mod.NTT(a[t]) // â, plain NTT
			p1 := make(ring.Poly, n)
			mod.MForm(a[t], p1)
			p0 := make(ring.Poly, n)
			mod.MulCoeffwiseMontgomery(a[t], sk.S[t], p0) // â·ŝ, plain NTT
			mod.Neg(p0, p0)
			eh := make(ring.Poly, n)
			for j, v := range e {
				eh[j] = mod.FromInt64(v)
			}
			mod.NTT(eh)
			mod.Add(p0, eh, p0)
			mod.MForm(p0, p0)
			pk.P0[t], pk.P1[t] = p0, p1
		}
	}
	tasks := make([]func(), limbs)
	for t := range tasks {
		tasks[t] = limb(t)
	}
	ring.ParallelIf(n, tasks...)
	return pk
}

// GenRelinKey builds the hybrid key-switch key: one part per chain limb,
// each an RLWE zero-sample over QP with (P mod q_j)·s² added into limb j
// only. Randomness is drawn up front (per digit: a over every QP limb,
// then e), so the per-digit arithmetic fans out deterministically.
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *RelinKey {
	ctx := kg.ctx
	n := ctx.Params.N()
	limbs := len(ctx.Primes)
	qp := limbs + 1
	digits := limbs

	as := make([]ring.RNSPoly, digits)
	es := make([][]int64, digits)
	for j := 0; j < digits; j++ {
		as[j] = make(ring.RNSPoly, qp)
		for t := 0; t < qp; t++ {
			as[j][t] = kg.qpMod(t).UniformPoly(kg.rng)
		}
		es[j] = make([]int64, n)
		kg.gaussianInts(es[j])
	}

	rlk := &RelinKey{Parts: make([][2]ring.RNSPoly, digits)}
	for j := range rlk.Parts {
		rlk.Parts[j] = [2]ring.RNSPoly{make(ring.RNSPoly, qp), make(ring.RNSPoly, qp)}
	}
	cell := func(j, t int) func() {
		return func() {
			mod := kg.qpMod(t)
			a := as[j][t]
			mod.NTT(a) // â, plain NTT
			p1 := make(ring.Poly, n)
			mod.MForm(a, p1)
			b := make(ring.Poly, n)
			mod.MulCoeffwiseMontgomery(a, sk.S[t], b) // â·ŝ
			mod.Neg(b, b)
			eh := make(ring.Poly, n)
			for k, v := range es[j] {
				eh[k] = mod.FromInt64(v)
			}
			mod.NTT(eh)
			mod.Add(b, eh, b)
			if t == j {
				// Gadget term: (P mod q_j)·s² on limb j only.
				s2 := make(ring.Poly, n)
				mod.MulCoeffwiseMontgomery(sk.S[t], sk.S[t], s2) // ŝ², Montgomery form
				mod.InvMForm(s2, s2)                             // plain NTT
				mod.MulScalar(s2, ctx.Special%ctx.Primes[j], s2)
				mod.Add(b, s2, b)
			}
			mod.MForm(b, b)
			rlk.Parts[j][0][t], rlk.Parts[j][1][t] = b, p1
		}
	}
	tasks := make([]func(), 0, digits*qp)
	for j := 0; j < digits; j++ {
		for t := 0; t < qp; t++ {
			tasks = append(tasks, cell(j, t))
		}
	}
	ring.ParallelIf(n, tasks...)
	return rlk
}
