package ckks

import (
	"math/rand"

	"quhe/internal/he/ring"
)

// SecretKey is the RLWE secret: one ternary polynomial, stored reduced at
// every level of the modulus chain (S[ℓ] is the secret mod q_ℓ).
type SecretKey struct {
	S []ring.Poly
}

// PublicKey is the RLWE encryption key (p0, p1) = (−a·s + e, a), stored per
// level (reductions of the top-level key, which stay valid because
// q_ℓ | q_top).
type PublicKey struct {
	P0, P1 []ring.Poly
}

// RelinKey relinearizes degree-2 ciphertexts. Part i encrypts T^i·s² under
// s for gadget base T = 2^LogBase:
//
//	rlk_i = (−a_i·s + e_i + T^i·s², a_i),
//
// stored per level like the public key.
type RelinKey struct {
	// Parts[i][j][ℓ]: digit i, component j ∈ {0,1}, level ℓ.
	Parts   [][2][]ring.Poly
	LogBase int
}

// KeyGenerator derives CKKS keys from a seeded RNG. Not safe for
// concurrent use.
type KeyGenerator struct {
	ctx *Context
	rng *rand.Rand
}

// NewKeyGenerator builds a key generator over the context. seed=0 selects
// a fixed default so tests are reproducible.
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	if seed == 0 {
		seed = 1
	}
	return &KeyGenerator{ctx: ctx, rng: rand.New(rand.NewSource(seed))}
}

// perLevel reduces a top-level polynomial to every level.
func (kg *KeyGenerator) perLevel(top ring.Poly) []ring.Poly {
	out := make([]ring.Poly, len(kg.ctx.Moduli))
	for ell := range out {
		if ell == kg.ctx.MaxLevel() {
			out[ell] = top.Copy()
		} else {
			out[ell] = kg.ctx.reduceTo(top, ell)
		}
	}
	return out
}

// GenSecretKey samples a ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	top := kg.ctx.Mod(kg.ctx.MaxLevel()).TernaryPoly(kg.rng)
	return &SecretKey{S: kg.perLevel(top)}
}

// GenPublicKey builds (−a·s + e, a) at the top level and reduces down.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	top := kg.ctx.Mod(kg.ctx.MaxLevel())
	a := top.UniformPoly(kg.rng)
	e := top.GaussianPoly(kg.rng, kg.ctx.Params.Sigma)
	p0 := top.MulPoly(a, sk.S[kg.ctx.MaxLevel()])
	top.Neg(p0, p0)
	top.Add(p0, e, p0)
	return &PublicKey{P0: kg.perLevel(p0), P1: kg.perLevel(a)}
}

// GenRelinKey builds the gadget-decomposed key for s².
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *RelinKey {
	ctx := kg.ctx
	top := ctx.Mod(ctx.MaxLevel())
	logBase := ctx.Params.RelinLogBase
	digits := 0
	for shift := 0; shift < 64 && (top.Q>>uint(shift)) > 0; shift += logBase {
		digits++
	}
	s := sk.S[ctx.MaxLevel()]
	s2 := top.MulPoly(s, s)
	rlk := &RelinKey{Parts: make([][2][]ring.Poly, digits), LogBase: logBase}
	power := uint64(1)
	for i := 0; i < digits; i++ {
		a := top.UniformPoly(kg.rng)
		e := top.GaussianPoly(kg.rng, kg.ctx.Params.Sigma)
		b := top.MulPoly(a, s)
		top.Neg(b, b)
		top.Add(b, e, b)
		scaled := top.NewPoly()
		top.MulScalar(s2, power, scaled)
		top.Add(b, scaled, b)
		rlk.Parts[i] = [2][]ring.Poly{kg.perLevel(b), kg.perLevel(a)}
		power = ring.MulMod(power, uint64(1)<<uint(logBase), top.Q)
	}
	return rlk
}
