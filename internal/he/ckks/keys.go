package ckks

import (
	"math/rand"

	"quhe/internal/he/ring"
)

// Key material is stored in the NTT domain and Montgomery form: evaluator
// hot paths (Encrypt, Decrypt, MulRelin key switching) then consume keys
// with a single fused Montgomery multiply-accumulate per coefficient and
// never transform key polynomials per operation. Both endpoints of the edge
// protocol run this package, so the wire (gob) representation changes with
// it transparently.

// SecretKey is the RLWE secret: one ternary polynomial, stored reduced at
// every level of the modulus chain (S[ℓ] is the secret mod q_ℓ, NTT
// domain, Montgomery form).
type SecretKey struct {
	S []ring.Poly
}

// PublicKey is the RLWE encryption key (p0, p1) = (−a·s + e, a), stored per
// level (reductions of the top-level key, which stay valid because
// q_ℓ | q_top), NTT domain, Montgomery form.
type PublicKey struct {
	P0, P1 []ring.Poly
}

// RelinKey relinearizes degree-2 ciphertexts. Part i encrypts T^i·s² under
// s for gadget base T = 2^LogBase:
//
//	rlk_i = (−a_i·s + e_i + T^i·s², a_i),
//
// stored per level like the public key (NTT domain, Montgomery form).
type RelinKey struct {
	// Parts[i][j][ℓ]: digit i, component j ∈ {0,1}, level ℓ.
	Parts   [][2][]ring.Poly
	LogBase int
}

// KeyGenerator derives CKKS keys from a seeded RNG. Not safe for
// concurrent use.
type KeyGenerator struct {
	ctx *Context
	rng *rand.Rand
}

// NewKeyGenerator builds a key generator over the context. seed=0 selects
// a fixed default so tests are reproducible.
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	if seed == 0 {
		seed = 1
	}
	return &KeyGenerator{ctx: ctx, rng: rand.New(rand.NewSource(seed))}
}

// perLevel reduces a top-level coefficient-domain polynomial to every
// level and stores each reduction in the NTT domain and Montgomery form.
// For large rings the per-level transforms run in parallel (no RNG here).
func (kg *KeyGenerator) perLevel(top ring.Poly) []ring.Poly {
	out := make([]ring.Poly, len(kg.ctx.Moduli))
	level := func(ell int) func() {
		return func() {
			mod := kg.ctx.Mod(ell)
			p := make(ring.Poly, len(top))
			mod.ReduceInto(top, p)
			mod.NTT(p)
			mod.MForm(p, p)
			out[ell] = p
		}
	}
	tasks := make([]func(), len(out))
	for ell := range out {
		tasks[ell] = level(ell)
	}
	ring.ParallelIf(kg.ctx.Params.N(), tasks...)
	return out
}

// GenSecretKey samples a ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	top := kg.ctx.Mod(kg.ctx.MaxLevel()).TernaryPoly(kg.rng)
	return &SecretKey{S: kg.perLevel(top)}
}

// mulSecret returns a·s in the coefficient domain at the top level, for
// coefficient-domain a and the NTT/Montgomery-form secret sHatM.
func (kg *KeyGenerator) mulSecret(a, sHatM ring.Poly) ring.Poly {
	top := kg.ctx.Mod(kg.ctx.MaxLevel())
	p := a.Copy()
	top.NTT(p)
	top.MulCoeffwiseMontgomery(p, sHatM, p)
	top.INTT(p)
	return p
}

// GenPublicKey builds (−a·s + e, a) at the top level and reduces down.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	top := kg.ctx.Mod(kg.ctx.MaxLevel())
	a := top.UniformPoly(kg.rng)
	e := top.GaussianPoly(kg.rng, kg.ctx.Params.Sigma)
	p0 := kg.mulSecret(a, sk.S[kg.ctx.MaxLevel()])
	top.Neg(p0, p0)
	top.Add(p0, e, p0)
	return &PublicKey{P0: kg.perLevel(p0), P1: kg.perLevel(a)}
}

// GenRelinKey builds the gadget-decomposed key for s². All randomness is
// drawn up front (digit order, a before e — the same stream order as the
// serial construction); for large rings the per-digit arithmetic and
// transforms then fan out across goroutines deterministically.
func (kg *KeyGenerator) GenRelinKey(sk *SecretKey) *RelinKey {
	ctx := kg.ctx
	top := ctx.Mod(ctx.MaxLevel())
	logBase := ctx.Params.RelinLogBase
	digits := 0
	for shift := 0; shift < 64 && (top.Q>>uint(shift)) > 0; shift += logBase {
		digits++
	}
	sHatM := sk.S[ctx.MaxLevel()]
	// s² in the coefficient domain: square pointwise in the NTT domain
	// (Montgomery-form · Montgomery-form keeps Montgomery form), strip the
	// form, and transform back.
	s2 := top.NewPoly()
	top.MulCoeffwiseMontgomery(sHatM, sHatM, s2)
	top.InvMForm(s2, s2)
	top.INTT(s2)

	as := make([]ring.Poly, digits)
	es := make([]ring.Poly, digits)
	for i := 0; i < digits; i++ {
		as[i] = top.UniformPoly(kg.rng)
		es[i] = top.GaussianPoly(kg.rng, kg.ctx.Params.Sigma)
	}

	rlk := &RelinKey{Parts: make([][2][]ring.Poly, digits), LogBase: logBase}
	powers := make([]uint64, digits)
	power := uint64(1)
	for i := range powers {
		powers[i] = power
		power = ring.MulMod(power, uint64(1)<<uint(logBase), top.Q)
	}
	digit := func(i int) func() {
		return func() {
			b := kg.mulSecret(as[i], sHatM)
			top.Neg(b, b)
			top.Add(b, es[i], b)
			scaled := top.NewPoly()
			top.MulScalar(s2, powers[i], scaled)
			top.Add(b, scaled, b)
			rlk.Parts[i] = [2][]ring.Poly{kg.perLevel(b), kg.perLevel(as[i])}
		}
	}
	tasks := make([]func(), digits)
	for i := range tasks {
		tasks[i] = digit(i)
	}
	ring.ParallelIf(ctx.Params.N(), tasks...)
	return rlk
}
