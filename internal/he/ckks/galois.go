package ckks

import (
	"errors"
	"fmt"
	"sort"

	"quhe/internal/he/ring"
)

// ErrNoGaloisKey reports a rotation whose Galois key is absent from the
// supplied key set. The serving layer maps it to a typed wire code so a
// client that uploaded the wrong rotation set gets a diagnosable failure
// instead of garbage slots.
var ErrNoGaloisKey = errors.New("ckks: missing galois key for rotation")

// GaloisKey switches a ciphertext from the rotated secret σ_g(s) back to
// s, enabling homomorphic slot rotation: part j is an RLWE zero-sample
// over the extended basis QP with the gadget (P mod q_j)·σ_g(s) added
// into limb j only — exactly the RelinKey construction with σ_g(s) in
// place of s². Layout matches RelinKey (Parts[digit][component][limb],
// NTT domain, Montgomery form) so the hybrid key-switch core is shared.
type GaloisKey struct {
	// Rot is the slot rotation this key implements (left by Rot); El is
	// its Galois group element 5^Rot mod 2N.
	Rot int
	El  uint64
	// Parts is the hybrid key-switch gadget; see RelinKey.Parts.
	Parts [][2]ring.RNSPoly
}

// GaloisKeySet holds the rotation keys of one session, keyed by Galois
// element. Immutable after construction; safe for concurrent readers.
type GaloisKeySet struct {
	Keys map[uint64]*GaloisKey
}

// Key returns the key for Galois element el, or nil.
func (s *GaloisKeySet) Key(el uint64) *GaloisKey {
	if s == nil {
		return nil
	}
	return s.Keys[el]
}

// Covers verifies the set holds a key for every rotation in rots on a
// ring of degree n, so a server can reject an incomplete upload at
// installation time instead of failing mid-evaluation. Identity rotations
// (element 1) need no key. The error wraps ErrNoGaloisKey and names the
// first missing rotation.
func (s *GaloisKeySet) Covers(n int, rots []int) error {
	for _, rot := range rots {
		el := ring.GaloisElement(rot, n)
		if el == 1 {
			continue
		}
		if s.Key(el) == nil {
			return fmt.Errorf("%w: rotation %d (element %d)", ErrNoGaloisKey, rot, el)
		}
	}
	return nil
}

// Rotations lists the slot rotations the set covers, ascending.
func (s *GaloisKeySet) Rotations() []int {
	if s == nil {
		return nil
	}
	rots := make([]int, 0, len(s.Keys))
	for _, gk := range s.Keys {
		rots = append(rots, gk.Rot)
	}
	sort.Ints(rots)
	return rots
}

// GenGaloisKey builds the key switching σ_g(s) → s for a left rotation by
// rot slots. Randomness is drawn up front like GenRelinKey, so the
// per-cell arithmetic fans out deterministically over the worker pool.
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, rot int) *GaloisKey {
	ctx := kg.ctx
	n := ctx.Params.N()
	limbs := len(ctx.Primes)
	qp := limbs + 1
	digits := limbs
	el := ring.GaloisElement(rot, n)
	tab := ring.AutomorphismNTTTable(el, n)

	as := make([]ring.RNSPoly, digits)
	es := make([][]int64, digits)
	for j := 0; j < digits; j++ {
		as[j] = make(ring.RNSPoly, qp)
		for t := 0; t < qp; t++ {
			as[j][t] = kg.qpMod(t).UniformPoly(kg.rng)
		}
		es[j] = make([]int64, n)
		kg.gaussianInts(es[j])
	}

	gk := &GaloisKey{Rot: rot, El: el, Parts: make([][2]ring.RNSPoly, digits)}
	for j := range gk.Parts {
		gk.Parts[j] = [2]ring.RNSPoly{make(ring.RNSPoly, qp), make(ring.RNSPoly, qp)}
	}
	cell := func(j, t int) func() {
		return func() {
			mod := kg.qpMod(t)
			a := as[j][t]
			mod.NTT(a) // â, plain NTT
			p1 := make(ring.Poly, n)
			mod.MForm(a, p1)
			b := make(ring.Poly, n)
			mod.MulCoeffwiseMontgomery(a, sk.S[t], b) // â·ŝ
			mod.Neg(b, b)
			eh := make(ring.Poly, n)
			for k, v := range es[j] {
				eh[k] = mod.FromInt64(v)
			}
			mod.NTT(eh)
			mod.Add(b, eh, b)
			if t == j {
				// Gadget term: (P mod q_j)·σ_g(s) on limb j only. The NTT-
				// domain automorphism is a pure gather, and Montgomery form
				// commutes with it.
				sg := make(ring.Poly, n)
				ring.ApplyAutomorphismNTT(sk.S[t], tab, sg) // σ_g(ŝ), Montgomery
				mod.InvMForm(sg, sg)                        // plain NTT
				mod.MulScalar(sg, ctx.Special%ctx.Primes[j], sg)
				mod.Add(b, sg, b)
			}
			mod.MForm(b, b)
			gk.Parts[j][0][t], gk.Parts[j][1][t] = b, p1
		}
	}
	tasks := make([]func(), 0, digits*qp)
	for j := 0; j < digits; j++ {
		for t := 0; t < qp; t++ {
			tasks = append(tasks, cell(j, t))
		}
	}
	ring.ParallelIf(n, tasks...)
	return gk
}

// GenGaloisKeys builds the key set for an explicit rotation list
// (duplicates and rotations ≡ 0 mod slots are skipped).
func (kg *KeyGenerator) GenGaloisKeys(sk *SecretKey, rots []int) *GaloisKeySet {
	set := &GaloisKeySet{Keys: make(map[uint64]*GaloisKey, len(rots))}
	n := kg.ctx.Params.N()
	for _, rot := range rots {
		el := ring.GaloisElement(rot, n)
		if el == 1 {
			continue
		}
		if _, ok := set.Keys[el]; ok {
			continue
		}
		set.Keys[el] = kg.GenGaloisKey(sk, rot)
	}
	return set
}

// GenRotationKeysPow2 builds the standard power-of-two key set (±1, ±2,
// ±4, … up to slots/2): any rotation decomposes into at most log₂(slots)
// applications.
func (kg *KeyGenerator) GenRotationKeysPow2(sk *SecretKey) *GaloisKeySet {
	slots := kg.ctx.Params.Slots()
	var rots []int
	for r := 1; r < slots; r <<= 1 {
		rots = append(rots, r, -r)
	}
	return kg.GenGaloisKeys(sk, rots)
}

// reduceRot normalizes a rotation to [0, slots).
func (ev *Evaluator) reduceRot(rot int) int {
	slots := ev.ctx.Params.Slots()
	r := rot % slots
	if r < 0 {
		r += slots
	}
	return r
}

// RotateInto rotates the slot vector left by rot (negative = right),
// writing into out without allocating; out may alias ct. One coefficient-
// domain automorphism of both components plus one hybrid key switch of
// σ(c1) — the O(L²) decompose/ModUp path. For many rotations of the same
// ciphertext, hoist instead (HoistInto + RotateHoistedInto).
func (ev *Evaluator) RotateInto(ct *Ciphertext, rot int, gks *GaloisKeySet, out *Ciphertext) error {
	if ev.reduceRot(rot) == 0 {
		if out != ct {
			return ev.DropLevelInto(ct, ct.Level, out)
		}
		return nil
	}
	el := ring.GaloisElement(rot, ev.ctx.Params.N())
	gk := gks.Key(el)
	if gk == nil {
		return fmt.Errorf("%w: rotation %d (element %d)", ErrNoGaloisKey, rot, el)
	}
	tower := ev.ctx.Tower
	limbs := ct.Level + 1
	// σ(c1) in the coefficient domain, then key-switch it from σ(s) to s.
	tower.ForEachLimb(limbs, func(i int) {
		tower.Qi[i].AutomorphismCoeffs(ct.C1[i], el, ev.s6[i])
	})
	ev.keySwitch(ev.s6, gk.Parts, ct.Level)
	ev.keySwitchDown(ct.Level)
	// out = (σ(c0) + acc0, acc1).
	tower.ForEachLimb(limbs, func(i int) {
		mod := tower.Qi[i]
		mod.AutomorphismCoeffs(ct.C0[i], el, ev.s0[i])
		mod.Add(ev.s0[i], ev.acc0[i], out.C0[i])
		copy(out.C1[i], ev.acc1[i])
	})
	out.Scale, out.Level = ct.Scale, ct.Level
	return nil
}

// Rotate returns the slot vector rotated left by rot; see RotateInto.
func (ev *Evaluator) Rotate(ct *Ciphertext, rot int, gks *GaloisKeySet) (*Ciphertext, error) {
	out := ev.ctx.NewCiphertext(ct.Level)
	if err := ev.RotateInto(ct, rot, gks, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Hoisted carries a ciphertext decomposed for rotation reuse: the RNS
// digits of c1 lifted to every extended-basis limb in the NTT domain (the
// O(L²) ModUp done once), plus coefficient-domain copies of both
// components for the per-rotation c0 path and the identity case. One
// Hoisted is reused across blocks (HoistInto resizes in place); pair it
// with one evaluator like any scratch.
type Hoisted struct {
	level int
	scale float64
	c0    ring.RNSPoly
	c1    ring.RNSPoly
	// dig[j][t]: digit j of c1 reduced into extended-basis limb t, NTT
	// domain — ready for the per-rotation fused gather-MAC.
	dig []ring.RNSPoly
}

// NewHoisted allocates hoisting buffers sized for the context's maximum
// level.
func (ev *Evaluator) NewHoisted() *Hoisted {
	n := ev.ctx.Params.N()
	limbs := len(ev.ctx.Primes)
	qp := limbs + 1
	h := &Hoisted{
		c0:  make(ring.RNSPoly, limbs),
		c1:  make(ring.RNSPoly, limbs),
		dig: make([]ring.RNSPoly, limbs),
	}
	for i := 0; i < limbs; i++ {
		h.c0[i] = make(ring.Poly, n)
		h.c1[i] = make(ring.Poly, n)
		h.dig[i] = make(ring.RNSPoly, qp)
		for t := 0; t < qp; t++ {
			h.dig[i][t] = make(ring.Poly, n)
		}
	}
	return h
}

// HoistInto decomposes ct for rotation reuse: every digit of c1 is
// reduced into every extended-basis limb and transformed — O(L²) NTTs,
// fanned out over the worker pool — so each subsequent RotateHoistedInto
// costs only gather-MACs, the inverse transforms and one ModDown. k
// rotations cost ~1 decompose instead of k.
func (ev *Evaluator) HoistInto(h *Hoisted, ct *Ciphertext) {
	tower := ev.ctx.Tower
	limbs := ct.Level + 1
	n := ev.ctx.Params.N()
	h.level, h.scale = ct.Level, ct.Scale
	for i := 0; i < limbs; i++ {
		copy(h.c0[i], ct.C0[i])
		copy(h.c1[i], ct.C1[i])
	}
	spIdx := tower.Limbs()
	tasks := make([]func(), 0, limbs*(limbs+1))
	for j := 0; j < limbs; j++ {
		for t := 0; t <= limbs; t++ {
			mod, partIdx := tower.P, spIdx
			if t < limbs {
				mod, partIdx = tower.Qi[t], t
			}
			m, src, dst, pi, dj := mod, ct.C1[j], h.dig[j][t], partIdx, j
			tasks = append(tasks, func() {
				if pi == dj {
					copy(dst, src)
				} else {
					m.ReduceInto(src, dst)
				}
				m.NTT(dst)
			})
		}
	}
	ring.ParallelIf(n, tasks...)
}

// RotateHoistedInto rotates a hoisted ciphertext left by rot into out
// without allocating. The σ_g automorphism is applied to the decomposed
// digits as an NTT-domain gather fused into the key MAC — digit
// decomposition commutes with the automorphism (the permuted digits are a
// valid signed-representative decomposition of σ(c1)), so no per-rotation
// ModUp is needed.
func (ev *Evaluator) RotateHoistedInto(h *Hoisted, rot int, gks *GaloisKeySet, out *Ciphertext) error {
	tower := ev.ctx.Tower
	limbs := h.level + 1
	if ev.reduceRot(rot) == 0 {
		for i := 0; i < limbs; i++ {
			copy(out.C0[i], h.c0[i])
			copy(out.C1[i], h.c1[i])
		}
		out.Scale, out.Level = h.scale, h.level
		return nil
	}
	n := ev.ctx.Params.N()
	el := ring.GaloisElement(rot, n)
	gk := gks.Key(el)
	if gk == nil {
		return fmt.Errorf("%w: rotation %d (element %d)", ErrNoGaloisKey, rot, el)
	}
	tab := ring.AutomorphismNTTTable(el, n)
	spIdx := tower.Limbs()
	tower.ForEachLimb(limbs+1, func(t int) {
		mod, partIdx := tower.P, spIdx
		if t < limbs {
			mod, partIdx = tower.Qi[t], t
		}
		acc0, acc1 := ev.acc0[t], ev.acc1[t]
		for j := range acc0 {
			acc0[j], acc1[j] = 0, 0
		}
		for j := 0; j < limbs; j++ {
			dig := h.dig[j][t]
			mod.AutomorphismNTTMulMontgomeryThenAdd(dig, tab, gk.Parts[j][0][partIdx], acc0)
			mod.AutomorphismNTTMulMontgomeryThenAdd(dig, tab, gk.Parts[j][1][partIdx], acc1)
		}
	})
	ev.keySwitchDown(h.level)
	tower.ForEachLimb(limbs, func(i int) {
		mod := tower.Qi[i]
		mod.AutomorphismCoeffs(h.c0[i], el, ev.s0[i])
		mod.Add(ev.s0[i], ev.acc0[i], out.C0[i])
		copy(out.C1[i], ev.acc1[i])
	})
	out.Scale, out.Level = h.scale, h.level
	return nil
}
