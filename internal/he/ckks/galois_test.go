package ckks

import (
	"errors"
	"math/rand"
	"testing"
)

// rotated returns z cyclically rotated left by r (any sign).
func rotated(z []complex128, r int) []complex128 {
	n := len(z)
	r = ((r % n) + n) % n
	out := make([]complex128, n)
	for i := range out {
		out[i] = z[(i+r)%n]
	}
	return out
}

// TestRotateRoundTrip is the end-to-end rotation contract: encode →
// encrypt → RotateInto by r → decrypt → decode must equal the input
// cyclically shifted left by r, within the key-switch noise bar.
func TestRotateRoundTrip(t *testing.T) {
	ctx := testContext(t)
	kg := NewKeyGenerator(ctx, 21)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 22)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(23))

	slots := ctx.Params.Slots()
	z := randomSlots(rng, slots)
	pt, err := enc.Encode(z, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pk, pt)

	rots := []int{0, 1, 2, 3, 7, slots / 2, slots - 1, -1, -5, slots}
	gks := kg.GenGaloisKeys(sk, rots)
	out := ctx.NewCiphertext(ct.Level)
	for _, r := range rots {
		if err := ev.RotateInto(ct, r, gks, out); err != nil {
			t.Fatalf("rot %d: %v", r, err)
		}
		if out.Level != ct.Level || out.Scale != ct.Scale {
			t.Fatalf("rot %d changed level/scale: %d/%g", r, out.Level, out.Scale)
		}
		got := enc.Decode(ev.Decrypt(sk, out))
		if e := maxSlotError(rotated(z, r), got); e > 2e-3 {
			t.Errorf("rot %d: slot error %v", r, e)
		}
	}
}

// TestRotateComposes checks the group law at the ciphertext level:
// rotating by a then b equals rotating by a+b.
func TestRotateComposes(t *testing.T) {
	ctx := testContext(t)
	kg := NewKeyGenerator(ctx, 31)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 32)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(33))

	z := randomSlots(rng, ctx.Params.Slots())
	pt, _ := enc.Encode(z, 0)
	ct := ev.Encrypt(pk, pt)
	gks := kg.GenGaloisKeys(sk, []int{3, 5, 8})

	a, err := ev.Rotate(ct, 3, gks)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := ev.Rotate(a, 5, gks)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ev.Rotate(ct, 8, gks)
	if err != nil {
		t.Fatal(err)
	}
	g1 := enc.Decode(ev.Decrypt(sk, ab))
	g2 := enc.Decode(ev.Decrypt(sk, direct))
	if e := maxSlotError(g1, g2); e > 4e-3 {
		t.Errorf("rotate(3)∘rotate(5) vs rotate(8): error %v", e)
	}
}

// TestRotateHoistedMatchesNaive pins the hoisted path against the naive
// one. The results are not bit-identical — the hoisted path key-switches a
// permuted signed-representative decomposition, shifting the low-order
// noise — so equality is asserted on the decoded slots.
func TestRotateHoistedMatchesNaive(t *testing.T) {
	ctx := testContext(t)
	kg := NewKeyGenerator(ctx, 41)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 42)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(43))

	z := randomSlots(rng, ctx.Params.Slots())
	pt, _ := enc.Encode(z, 0)
	ct := ev.Encrypt(pk, pt)
	rots := []int{0, 1, 2, 6, 11, -4}
	gks := kg.GenGaloisKeys(sk, rots)

	h := ev.NewHoisted()
	ev.HoistInto(h, ct)
	naive := ctx.NewCiphertext(ct.Level)
	hoisted := ctx.NewCiphertext(ct.Level)
	for _, r := range rots {
		if err := ev.RotateInto(ct, r, gks, naive); err != nil {
			t.Fatalf("naive rot %d: %v", r, err)
		}
		if err := ev.RotateHoistedInto(h, r, gks, hoisted); err != nil {
			t.Fatalf("hoisted rot %d: %v", r, err)
		}
		gn := enc.Decode(ev.Decrypt(sk, naive))
		gh := enc.Decode(ev.Decrypt(sk, hoisted))
		if e := maxSlotError(gn, gh); e > 1e-4 {
			t.Errorf("rot %d: hoisted vs naive error %v", r, e)
		}
		if e := maxSlotError(rotated(z, r), gh); e > 2e-3 {
			t.Errorf("rot %d: hoisted vs plaintext error %v", r, e)
		}
	}
}

// TestRotateMissingKey checks the typed rejection for an absent key.
func TestRotateMissingKey(t *testing.T) {
	ctx := testContext(t)
	kg := NewKeyGenerator(ctx, 51)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 52)
	enc := NewEncoder(ctx)
	pt, _ := enc.Encode([]complex128{1}, 0)
	ct := ev.Encrypt(pk, pt)
	gks := kg.GenGaloisKeys(sk, []int{1})

	out := ctx.NewCiphertext(ct.Level)
	if err := ev.RotateInto(ct, 2, gks, out); !errors.Is(err, ErrNoGaloisKey) {
		t.Fatalf("want ErrNoGaloisKey, got %v", err)
	}
	h := ev.NewHoisted()
	ev.HoistInto(h, ct)
	if err := ev.RotateHoistedInto(h, 2, gks, out); !errors.Is(err, ErrNoGaloisKey) {
		t.Fatalf("hoisted: want ErrNoGaloisKey, got %v", err)
	}
	// Rotation 0 needs no key at all.
	if err := ev.RotateInto(ct, 0, gks, out); err != nil {
		t.Fatalf("identity rotation: %v", err)
	}
}

// TestRotationKeysPow2 checks the power-of-two set covers ± every power
// below slots and that composed pow-2 steps realize an arbitrary rotation.
func TestRotationKeysPow2(t *testing.T) {
	ctx := testContext(t)
	kg := NewKeyGenerator(ctx, 61)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	ev := NewEvaluator(ctx, 62)
	enc := NewEncoder(ctx)
	rng := rand.New(rand.NewSource(63))

	gks := kg.GenRotationKeysPow2(sk)
	slots := ctx.Params.Slots()
	// ± every power of two below slots; −slots/2 ≡ +slots/2 share one
	// element, so the set has 2·log₂(slots) − 1 distinct keys.
	want := 0
	for r := 1; r < slots; r <<= 1 {
		want += 2
	}
	want--
	if got := len(gks.Keys); got != want {
		t.Fatalf("pow2 set has %d keys, want %d", got, want)
	}

	z := randomSlots(rng, slots)
	pt, _ := enc.Encode(z, 0)
	ct := ev.Encrypt(pk, pt)
	// 11 = 8 + 2 + 1 through three pow-2 hops.
	cur := ct
	for _, r := range []int{8, 2, 1} {
		next, err := ev.Rotate(cur, r, gks)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	got := enc.Decode(ev.Decrypt(sk, cur))
	if e := maxSlotError(rotated(z, 11), got); e > 4e-3 {
		t.Errorf("composed rotation by 11: error %v", e)
	}
}
