package qnet

import (
	"fmt"
	"math"
)

// WernerZeroSKF is the largest Werner parameter at which the secret key
// fraction (Eq. 4) is still zero; above it the SKF is strictly positive.
// The paper reports 0.779944 (obtained graphically); it is the solution of
// h2((1−w)/2) = 1/2.
const WernerZeroSKF = 0.7799442481925152

// BinaryEntropy returns h2(p) = −p·log2(p) − (1−p)·log2(1−p), with the
// conventional limits h2(0)=h2(1)=0. Arguments outside [0,1] return NaN.
func BinaryEntropy(p float64) float64 {
	if p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 0 || p == 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// SecretKeyFraction computes F_skf(w) of Eq. (4):
//
//	F_skf(w) = max(0, 1 + (1+w)·log2((1+w)/2) + (1−w)·log2((1−w)/2)),
//
// equivalently max(0, 1 − 2·h2((1−w)/2)): the BB84/BBM92 asymptotic key
// fraction of a Werner pair with QBER (1−w)/2. It is 0 for w ≤ WernerZeroSKF
// and increases monotonically to 1 at w=1.
func SecretKeyFraction(w float64) float64 {
	if w <= 0 {
		return 0
	}
	if w >= 1 {
		return 1
	}
	v := 1 - 2*BinaryEntropy((1-w)/2)
	if v < 0 {
		return 0
	}
	return v
}

// QBER returns the quantum bit error rate (1−w)/2 of a Werner pair.
func QBER(w float64) float64 { return (1 - w) / 2 }

// Utility computes the QKD network utility of Eq. (6):
//
//	U_qkd = Π_n φ_n · F_skf(̟_n)
//
// for the rate allocation phi and link Werner parameters w. The product is
// zero when any route's end-to-end Werner parameter falls at or below the
// SKF threshold.
func (n *Network) Utility(phi, w []float64) (float64, error) {
	if len(phi) != len(n.routes) {
		return 0, fmt.Errorf("qnet: %d rates for %d routes", len(phi), len(n.routes))
	}
	u := 1.0
	for r := range n.routes {
		wr, err := n.EndToEndWerner(r, w)
		if err != nil {
			return 0, err
		}
		u *= phi[r] * SecretKeyFraction(wr)
	}
	return u, nil
}

// LogUtility computes ln U_qkd = Σ_n [ln φ_n + ln F_skf(̟_n)], the form
// Stage 1 optimizes (Problem P2/P3). It returns −Inf when the utility is
// zero or an allocation is non-positive.
func (n *Network) LogUtility(phi, w []float64) (float64, error) {
	if len(phi) != len(n.routes) {
		return 0, fmt.Errorf("qnet: %d rates for %d routes", len(phi), len(n.routes))
	}
	s := 0.0
	for r := range n.routes {
		if phi[r] <= 0 {
			return math.Inf(-1), nil
		}
		wr, err := n.EndToEndWerner(r, w)
		if err != nil {
			return 0, err
		}
		f := SecretKeyFraction(wr)
		if f <= 0 {
			return math.Inf(-1), nil
		}
		s += math.Log(phi[r]) + math.Log(f)
	}
	return s, nil
}

// UtilityFromRates evaluates U_qkd at the capacity-saturating Werner point
// w* of Eq. (18), the configuration Stage 1 proves optimal.
func (n *Network) UtilityFromRates(phi []float64) (float64, error) {
	w, err := n.WernerFromRates(phi)
	if err != nil {
		return 0, err
	}
	return n.Utility(phi, w)
}
