package qnet

import (
	"math"
	"testing"
)

func TestSURFnetShape(t *testing.T) {
	n := SURFnet()
	if n.NumLinks() != 18 {
		t.Errorf("NumLinks = %d, want 18", n.NumLinks())
	}
	if n.NumRoutes() != 6 {
		t.Errorf("NumRoutes = %d, want 6", n.NumRoutes())
	}
}

func TestSURFnetTableIV(t *testing.T) {
	n := SURFnet()
	// Spot-check entries of Table IV.
	tests := []struct {
		id     int
		length float64
		beta   float64
	}{
		{1, 30.6, 89.84},
		{6, 78.7, 40.76},
		{9, 25.7, 99.02},
		{10, 24.4, 100.98},
		{18, 70.0, 46.82},
	}
	for _, tt := range tests {
		l := n.Link(tt.id - 1)
		if l.ID != tt.id || l.LengthKm != tt.length || l.Beta != tt.beta {
			t.Errorf("link %d = %+v, want length %v beta %v", tt.id, l, tt.length, tt.beta)
		}
	}
}

func TestSURFnetTableIII(t *testing.T) {
	n := SURFnet()
	wantLinks := [][]int{
		{17, 2, 1},
		{17, 3, 4, 5},
		{16, 4, 5, 11, 10},
		{15, 18},
		{15, 14, 13, 12, 9},
		{15, 14, 13, 12, 8, 7},
	}
	wantDest := []string{"Delft", "Zwolle", "Apeldoorn", "Rotterdam", "Arnherm", "Enschede"}
	for r := 0; r < n.NumRoutes(); r++ {
		rt := n.Route(r)
		if rt.Source != "Hilversum" {
			t.Errorf("route %d source = %q, want Hilversum", r+1, rt.Source)
		}
		if rt.Dest != wantDest[r] {
			t.Errorf("route %d dest = %q, want %q", r+1, rt.Dest, wantDest[r])
		}
		if len(rt.LinkIDs) != len(wantLinks[r]) {
			t.Fatalf("route %d has %d links, want %d", r+1, len(rt.LinkIDs), len(wantLinks[r]))
		}
		for i, lid := range wantLinks[r] {
			if rt.LinkIDs[i] != lid {
				t.Errorf("route %d link %d = %d, want %d", r+1, i, rt.LinkIDs[i], lid)
			}
		}
	}
}

func TestIncidenceMatrix(t *testing.T) {
	n := SURFnet()
	a := n.IncidenceMatrix()
	if len(a) != 18 || len(a[0]) != 6 {
		t.Fatalf("A is %dx%d, want 18x6", len(a), len(a[0]))
	}
	// Link 17 serves routes 1 and 2 only.
	wantRow17 := []float64{1, 1, 0, 0, 0, 0}
	for r, v := range a[16] {
		if v != wantRow17[r] {
			t.Errorf("A[17][%d] = %v, want %v", r+1, v, wantRow17[r])
		}
	}
	// Link 6 is on no route in Table III.
	for r, v := range a[5] {
		if v != 0 {
			t.Errorf("A[6][%d] = %v, want 0", r+1, v)
		}
	}
	// Uses must agree with the matrix.
	for l := range a {
		for r := range a[l] {
			if got := n.Uses(r, l); got != (a[l][r] == 1) {
				t.Errorf("Uses(%d,%d) = %v, disagrees with A", r, l, got)
			}
		}
	}
}

func TestLinkLoads(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 2, 3, 4, 5, 6}
	loads, err := n.LinkLoads(phi)
	if err != nil {
		t.Fatal(err)
	}
	// Link 15 carries routes 4, 5, 6: load 4+5+6 = 15.
	if loads[14] != 15 {
		t.Errorf("load on link 15 = %v, want 15", loads[14])
	}
	// Link 17 carries routes 1, 2: load 3.
	if loads[16] != 3 {
		t.Errorf("load on link 17 = %v, want 3", loads[16])
	}
	// Link 6 carries nothing.
	if loads[5] != 0 {
		t.Errorf("load on link 6 = %v, want 0", loads[5])
	}
	if _, err := n.LinkLoads([]float64{1}); err == nil {
		t.Error("wrong-length phi accepted")
	}
}

func TestWernerFromRates(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	w, err := n.WernerFromRates(phi)
	if err != nil {
		t.Fatal(err)
	}
	// Link 15 (β=80.54) carries 3 routes: w = 1 − 3/80.54.
	want := 1 - 3/80.54
	if math.Abs(w[14]-want) > 1e-12 {
		t.Errorf("w[15] = %v, want %v", w[14], want)
	}
	// Unused link 6 keeps w = 1.
	if w[5] != 1 {
		t.Errorf("w[6] = %v, want 1", w[5])
	}
}

func TestFeasibleRates(t *testing.T) {
	n := SURFnet()
	if !n.FeasibleRates([]float64{1, 1, 1, 1, 1, 1}) {
		t.Error("small allocation reported infeasible")
	}
	// Route 4 (links 15, 18): β_18 = 46.82, so φ_4 = 50 exceeds it.
	if n.FeasibleRates([]float64{1, 1, 1, 50, 1, 1}) {
		t.Error("oversized allocation reported feasible")
	}
	// Zero allocation on all routes using a link gives load 0 — infeasible
	// per the strict inequality of (19a).
	if n.FeasibleRates([]float64{0, 0, 0, 0, 0, 0}) {
		t.Error("zero allocation reported feasible")
	}
}

func TestEndToEndWerner(t *testing.T) {
	n := SURFnet()
	w := make([]float64, 18)
	for i := range w {
		w[i] = 0.99
	}
	// Route 1 uses 3 links.
	got, err := n.EndToEndWerner(0, w)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.99, 3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("route 1 werner = %v, want %v", got, want)
	}
	// Route 6 uses 6 links.
	got, err = n.EndToEndWerner(5, w)
	if err != nil {
		t.Fatal(err)
	}
	want = math.Pow(0.99, 6)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("route 6 werner = %v, want %v", got, want)
	}
	if _, err := n.EndToEndWerner(7, w); err == nil {
		t.Error("out-of-range route accepted")
	}
	if _, err := n.EndToEndWerner(0, w[:3]); err == nil {
		t.Error("short werner vector accepted")
	}
}

func TestNewValidation(t *testing.T) {
	link := Link{ID: 1, LengthKm: 1, Beta: 10}
	route := Route{ID: 1, LinkIDs: []int{1}}
	tests := []struct {
		name   string
		links  []Link
		routes []Route
	}{
		{"empty", nil, nil},
		{"bad link id", []Link{{ID: 2, Beta: 1}}, []Route{route}},
		{"bad beta", []Link{{ID: 1, Beta: 0}}, []Route{route}},
		{"negative length", []Link{{ID: 1, Beta: 1, LengthKm: -1}}, []Route{route}},
		{"bad route id", []Link{link}, []Route{{ID: 2, LinkIDs: []int{1}}}},
		{"empty route", []Link{link}, []Route{{ID: 1}}},
		{"unknown link ref", []Link{link}, []Route{{ID: 1, LinkIDs: []int{9}}}},
		{"duplicate link ref", []Link{link}, []Route{{ID: 1, LinkIDs: []int{1, 1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.links, tt.routes); err == nil {
				t.Error("invalid network accepted")
			}
		})
	}
	if _, err := New([]Link{link}, []Route{route}); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
}

func TestRouteReturnsCopy(t *testing.T) {
	n := SURFnet()
	rt := n.Route(0)
	rt.LinkIDs[0] = 999
	if n.Route(0).LinkIDs[0] == 999 {
		t.Error("Route exposes internal slice")
	}
}

func TestDeriveBeta(t *testing.T) {
	// Zero-length link: η = 1, β = 3κ/(2T).
	if got := DeriveBeta(0, 0.9, 0.2, 0.01); math.Abs(got-3*0.9/(2*0.01)) > 1e-12 {
		t.Errorf("DeriveBeta(0) = %v", got)
	}
	// Longer links yield smaller β.
	short := DeriveBeta(10, 1, 0.2, 0.01)
	long := DeriveBeta(100, 1, 0.2, 0.01)
	if long >= short {
		t.Errorf("beta did not decay with length: %v >= %v", long, short)
	}
	if DeriveBeta(10, 1, 0.2, 0) != 0 {
		t.Error("zero genTime should produce zero beta")
	}
}
