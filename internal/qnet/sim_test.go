package qnet

import (
	"errors"
	"math"
	"testing"
)

func TestLinkCapacity(t *testing.T) {
	if got := LinkCapacity(100, 0.9); math.Abs(got-10) > 1e-12 {
		t.Errorf("LinkCapacity(100, 0.9) = %v, want 10", got)
	}
	if got := LinkCapacity(100, 1); got != 0 {
		t.Errorf("LinkCapacity at w=1 = %v, want 0", got)
	}
	if got := LinkCapacity(100, 1.5); got != 0 {
		t.Errorf("LinkCapacity clamps negative: got %v", got)
	}
}

// TestSimLinkRatesMatchAnalytic: empirical per-link generation rates must
// match β_l(1−w_l) within Poisson sampling error.
func TestSimLinkRatesMatchAnalytic(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	w, err := n.WernerFromRates(phi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.SimulateEntanglementDistribution(phi, w, SimConfig{Duration: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < n.NumLinks(); l++ {
		want := LinkCapacity(n.Link(l).Beta, w[l])
		if want == 0 {
			if res.LinkRate[l] != 0 {
				t.Errorf("link %d rate = %v, want 0", l+1, res.LinkRate[l])
			}
			continue
		}
		// 5σ Poisson tolerance.
		sigma := math.Sqrt(want / 400)
		if math.Abs(res.LinkRate[l]-want) > 5*sigma+0.05 {
			t.Errorf("link %d rate = %v, analytic %v", l+1, res.LinkRate[l], want)
		}
	}
}

// TestSimDeliveryFeasible: with loads at half of capacity the delivery ratio
// per route approaches 1, validating the analytic feasibility model the
// optimizer relies on.
func TestSimDeliveryFeasible(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	// Werner point with 50% headroom: w chosen so capacity = 2×load.
	loads, err := n.LinkLoads(phi)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, n.NumLinks())
	for l := range w {
		w[l] = 1 - 2*loads[l]/n.Link(l).Beta
		if loads[l] == 0 {
			w[l] = 0.999
		}
	}
	res, err := n.SimulateEntanglementDistribution(phi, w, SimConfig{Duration: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n.NumRoutes(); r++ {
		if res.RouteRequested[r] == 0 {
			t.Fatalf("route %d issued no requests", r+1)
		}
		ratio := float64(res.RouteDelivered[r]) / float64(res.RouteRequested[r])
		if ratio < 0.9 {
			t.Errorf("route %d delivery ratio = %v, want ≥ 0.9", r+1, ratio)
		}
	}
}

// TestSimDeliveryBottleneck: loading one link beyond capacity caps delivery.
func TestSimDeliveryBottleneck(t *testing.T) {
	n := SURFnet()
	// Route 4 uses links 15 and 18 (β=80.54, 46.82). Push 30 pairs/s with
	// w chosen so capacity on link 18 is only ~15 pairs/s.
	phi := []float64{0.5, 0.5, 0.5, 30, 0.5, 0.5}
	w := make([]float64, n.NumLinks())
	for l := range w {
		w[l] = 0.9
	}
	// capacity_18 = 46.82·0.1 ≈ 4.7 << 30.
	res, err := n.SimulateEntanglementDistribution(phi, w, SimConfig{Duration: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.RouteDelivered[3]) / float64(res.RouteRequested[3])
	if ratio > 0.5 {
		t.Errorf("bottlenecked route delivered ratio %v, want < 0.5", ratio)
	}
	if err := n.CheckAllocation(phi, w); !errors.Is(err, ErrInfeasibleAllocation) {
		t.Errorf("CheckAllocation err = %v, want ErrInfeasibleAllocation", err)
	}
}

// TestSimQBERMatchesWerner: the empirical QBER of delivered pairs must match
// (1−̟)/2 and the empirical SKF must approach SecretKeyFraction(̟).
func TestSimQBERMatchesWerner(t *testing.T) {
	n := SURFnet()
	phi := []float64{2, 2, 2, 2, 2, 2}
	w := make([]float64, n.NumLinks())
	for l := range w {
		w[l] = 0.99
	}
	res, err := n.SimulateEntanglementDistribution(phi, w, SimConfig{Duration: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n.NumRoutes(); r++ {
		ew, err := n.EndToEndWerner(r, w)
		if err != nil {
			t.Fatal(err)
		}
		wantQBER := QBER(ew)
		if res.RouteDelivered[r] < 100 {
			t.Fatalf("route %d delivered only %d pairs", r+1, res.RouteDelivered[r])
		}
		sigma := math.Sqrt(wantQBER * (1 - wantQBER) / float64(res.RouteDelivered[r]))
		if math.Abs(res.RouteQBER[r]-wantQBER) > 5*sigma+0.01 {
			t.Errorf("route %d QBER = %v, want %v", r+1, res.RouteQBER[r], wantQBER)
		}
		wantSKF := SecretKeyFraction(ew)
		// SKF = 1−2h2(e) is steep in e near small QBER; propagate the QBER
		// tolerance through |d SKF/d e| = 2·log2((1−e)/e).
		slope := 2 * math.Log2((1-wantQBER)/wantQBER)
		tolSKF := slope * (5*sigma + 0.01)
		if math.Abs(res.RouteSKF[r]-wantSKF) > tolSKF {
			t.Errorf("route %d SKF = %v, want %v ± %v", r+1, res.RouteSKF[r], wantSKF, tolSKF)
		}
	}
}

func TestSimValidation(t *testing.T) {
	n := SURFnet()
	w := make([]float64, 18)
	for i := range w {
		w[i] = 0.9
	}
	if _, err := n.SimulateEntanglementDistribution([]float64{1}, w, SimConfig{}); err == nil {
		t.Error("short phi accepted")
	}
	if _, err := n.SimulateEntanglementDistribution(make([]float64, 6), w[:2], SimConfig{}); err == nil {
		t.Error("short werner accepted")
	}
	bad := append([]float64(nil), w...)
	bad[0] = 0
	if _, err := n.SimulateEntanglementDistribution(make([]float64, 6), bad, SimConfig{}); err == nil {
		t.Error("zero werner accepted")
	}
	bad[0] = 1.2
	if _, err := n.SimulateEntanglementDistribution(make([]float64, 6), bad, SimConfig{}); err == nil {
		t.Error("werner > 1 accepted")
	}
}

func TestSimDeterministicForSeed(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	w := make([]float64, 18)
	for i := range w {
		w[i] = 0.95
	}
	a, err := n.SimulateEntanglementDistribution(phi, w, SimConfig{Duration: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.SimulateEntanglementDistribution(phi, w, SimConfig{Duration: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for l := range a.LinkGenerated {
		if a.LinkGenerated[l] != b.LinkGenerated[l] {
			t.Fatalf("run not deterministic: link %d generated %d vs %d", l+1, a.LinkGenerated[l], b.LinkGenerated[l])
		}
	}
}

func TestCheckAllocationOK(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	w, err := n.WernerFromRates(phi)
	if err != nil {
		t.Fatal(err)
	}
	// At the Eq. (18) Werner point, load == capacity exactly: feasible.
	if err := n.CheckAllocation(phi, w); err != nil {
		t.Errorf("CheckAllocation: %v", err)
	}
	if err := n.CheckAllocation(phi[:2], w); err == nil {
		t.Error("short phi accepted")
	}
	if err := n.CheckAllocation(phi, w[:2]); err == nil {
		t.Error("short werner accepted")
	}
}
