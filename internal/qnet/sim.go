package qnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// SimConfig configures the discrete-event entanglement-distribution
// simulator.
type SimConfig struct {
	// Duration is the simulated time horizon in seconds. Default 100.
	Duration float64
	// Seed seeds the RNG; 0 means a fixed default so runs are reproducible.
	Seed int64
}

func (c SimConfig) defaults() SimConfig {
	if c.Duration <= 0 {
		c.Duration = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SimResult summarizes a simulation run.
type SimResult struct {
	// LinkGenerated counts entangled pairs generated per link.
	LinkGenerated []int
	// LinkRate is the empirical generation rate per link (pairs/s), to be
	// compared against the analytic capacity β_l(1−w_l) of Eq. (3).
	LinkRate []float64
	// RouteRequested and RouteDelivered count end-to-end entanglement
	// requests and successful deliveries per route.
	RouteRequested []int
	RouteDelivered []int
	// RouteRate is the empirical delivered end-to-end rate (pairs/s).
	RouteRate []float64
	// RouteQBER is the empirical quantum bit error rate measured on
	// delivered pairs (sifted-basis sampling of the Werner state).
	RouteQBER []float64
	// RouteSKF is the empirical secret-key fraction 1−2·h2(QBER) clamped
	// at zero, comparable to SecretKeyFraction(̟_n).
	RouteSKF []float64
}

// event types for the simulator's priority queue.
const (
	evLinkGen = iota
	evRouteReq
)

type simEvent struct {
	at   float64
	kind int
	idx  int
}

type eventQueue []simEvent

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(simEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// SimulateEntanglementDistribution runs a discrete-event simulation of the
// QKD substrate: each link generates Werner pairs as a Poisson process at
// its capacity β_l(1−w_l); each route issues end-to-end requests as a
// Poisson process at its allocated rate φ_n, consuming one stored pair from
// every link on the route (entanglement swapping). Delivered pairs have
// end-to-end Werner parameter Π w_l, from which a measurement error is
// sampled with probability (1−̟)/2 to estimate the empirical QBER and
// secret-key fraction.
//
// For feasible allocations (link loads below capacity) the delivery ratio
// approaches 1 and the empirical SKF approaches SecretKeyFraction(̟_n),
// which is exactly the model Stage 1 of QuHE optimizes.
func (n *Network) SimulateEntanglementDistribution(phi, w []float64, cfg SimConfig) (SimResult, error) {
	c := cfg.defaults()
	var res SimResult
	if len(phi) != len(n.routes) {
		return res, fmt.Errorf("qnet: %d rates for %d routes", len(phi), len(n.routes))
	}
	if len(w) != len(n.links) {
		return res, fmt.Errorf("qnet: %d werner values for %d links", len(w), len(n.links))
	}
	for l, wl := range w {
		if wl <= 0 || wl > 1 {
			return res, fmt.Errorf("qnet: link %d werner %g outside (0,1]", l+1, wl)
		}
	}
	rng := rand.New(rand.NewSource(c.Seed))

	L, N := len(n.links), len(n.routes)
	capacities := make([]float64, L)
	for l := range capacities {
		capacities[l] = LinkCapacity(n.links[l].Beta, w[l])
	}
	endWerner := make([]float64, N)
	for r := range n.routes {
		ew, err := n.EndToEndWerner(r, w)
		if err != nil {
			return res, err
		}
		endWerner[r] = ew
	}

	res.LinkGenerated = make([]int, L)
	res.RouteRequested = make([]int, N)
	res.RouteDelivered = make([]int, N)
	errorsPerRoute := make([]int, N)
	buffers := make([]int, L)

	q := &eventQueue{}
	heap.Init(q)
	expo := func(rate float64) float64 {
		return rng.ExpFloat64() / rate
	}
	for l := 0; l < L; l++ {
		if capacities[l] > 0 {
			heap.Push(q, simEvent{at: expo(capacities[l]), kind: evLinkGen, idx: l})
		}
	}
	for r := 0; r < N; r++ {
		if phi[r] > 0 {
			heap.Push(q, simEvent{at: expo(phi[r]), kind: evRouteReq, idx: r})
		}
	}

	for q.Len() > 0 {
		ev := heap.Pop(q).(simEvent)
		if ev.at > c.Duration {
			break
		}
		switch ev.kind {
		case evLinkGen:
			res.LinkGenerated[ev.idx]++
			buffers[ev.idx]++
			heap.Push(q, simEvent{at: ev.at + expo(capacities[ev.idx]), kind: evLinkGen, idx: ev.idx})
		case evRouteReq:
			res.RouteRequested[ev.idx]++
			if n.tryConsume(ev.idx, buffers) {
				res.RouteDelivered[ev.idx]++
				// Sample a sifted-basis measurement on the swapped Werner
				// pair: error probability (1−̟)/2.
				if rng.Float64() < QBER(endWerner[ev.idx]) {
					errorsPerRoute[ev.idx]++
				}
			}
			heap.Push(q, simEvent{at: ev.at + expo(phi[ev.idx]), kind: evRouteReq, idx: ev.idx})
		}
	}

	res.LinkRate = make([]float64, L)
	for l := range res.LinkRate {
		res.LinkRate[l] = float64(res.LinkGenerated[l]) / c.Duration
	}
	res.RouteRate = make([]float64, N)
	res.RouteQBER = make([]float64, N)
	res.RouteSKF = make([]float64, N)
	for r := 0; r < N; r++ {
		res.RouteRate[r] = float64(res.RouteDelivered[r]) / c.Duration
		if res.RouteDelivered[r] > 0 {
			res.RouteQBER[r] = float64(errorsPerRoute[r]) / float64(res.RouteDelivered[r])
		} else {
			res.RouteQBER[r] = math.NaN()
		}
		if !math.IsNaN(res.RouteQBER[r]) {
			skf := 1 - 2*BinaryEntropy(math.Min(res.RouteQBER[r], 0.5))
			if skf < 0 {
				skf = 0
			}
			res.RouteSKF[r] = skf
		}
	}
	return res, nil
}

// tryConsume removes one buffered pair from every link of route r,
// reporting false (and consuming nothing) when any link buffer is empty.
func (n *Network) tryConsume(r int, buffers []int) bool {
	for l := range n.links {
		if n.uses[r][l] && buffers[l] == 0 {
			return false
		}
	}
	for l := range n.links {
		if n.uses[r][l] {
			buffers[l]--
		}
	}
	return true
}

// LinkCapacity returns c_l = β_l(1−w_l) of Eq. (3): the distillable-pair
// generation rate a link sustains at Werner parameter w.
func LinkCapacity(beta, w float64) float64 {
	c := beta * (1 - w)
	if c < 0 {
		return 0
	}
	return c
}

// ErrInfeasibleAllocation indicates rate demands exceeding link capacity.
var ErrInfeasibleAllocation = errors.New("qnet: allocation exceeds link capacity")

// CheckAllocation verifies that loads fit capacities for the given Werner
// point, wrapping ErrInfeasibleAllocation with the first violating link.
func (n *Network) CheckAllocation(phi, w []float64) error {
	loads, err := n.LinkLoads(phi)
	if err != nil {
		return err
	}
	if len(w) != len(n.links) {
		return fmt.Errorf("qnet: %d werner values for %d links", len(w), len(n.links))
	}
	for l, load := range loads {
		capacity := LinkCapacity(n.links[l].Beta, w[l])
		// Small relative slack absorbs floating-point rounding when the
		// allocation sits exactly at the Eq. (18) capacity point.
		if load > capacity*(1+1e-9)+1e-12 {
			return fmt.Errorf("%w: link %d load %.3f > capacity %.3f", ErrInfeasibleAllocation, l+1, load, capacity)
		}
	}
	return nil
}
