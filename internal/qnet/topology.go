// Package qnet models the entanglement-based QKD network of the QuHE paper
// (§III-B): links with Werner-parameter noise, routes from a key centre to
// client nodes, link capacities, the secret-key fraction, and the QKD
// network utility (Eq. 6). It also contains a discrete-event entanglement
// distribution simulator used to cross-validate the analytic capacity model.
//
// Conventions: link and route IDs are 1-based as in the paper's Tables III
// and IV; slice indices are 0-based. The Werner parameter w ∈ (0,1] measures
// entangled-pair quality (w=1 is a perfect Bell pair).
package qnet

import (
	"errors"
	"fmt"
	"math"
)

// Link is a fibre segment that generates entangled pairs.
type Link struct {
	// ID is the 1-based link identifier from Table IV.
	ID int
	// LengthKm is the fibre length in kilometres.
	LengthKm float64
	// Beta is the capacity coefficient β_l = 3κ_l·η_l/(2T_l) of Eq. (3):
	// the link's entanglement generation rate at w→0, in pairs/second.
	Beta float64
}

// Route is an end-to-end path from the key centre to a client node,
// expressed as the set of links it traverses (the paper's A matrix).
type Route struct {
	// ID is the 1-based route identifier from Table III. The destination
	// of route n is client node n.
	ID int
	// Source and Dest name the end nodes (informational).
	Source, Dest string
	// LinkIDs lists the 1-based IDs of the links on the route.
	LinkIDs []int
}

// Network is a validated set of links and routes.
type Network struct {
	links  []Link
	routes []Route
	// uses[n][l] is true when route n (0-based) traverses link l (0-based).
	uses [][]bool
}

// New validates the links and routes and builds a Network. Link IDs must be
// exactly 1..len(links); routes must reference existing links.
func New(links []Link, routes []Route) (*Network, error) {
	if len(links) == 0 || len(routes) == 0 {
		return nil, errors.New("qnet: network needs at least one link and one route")
	}
	for i, l := range links {
		if l.ID != i+1 {
			return nil, fmt.Errorf("qnet: link at position %d has ID %d, want %d", i, l.ID, i+1)
		}
		if l.Beta <= 0 {
			return nil, fmt.Errorf("qnet: link %d has non-positive beta %g", l.ID, l.Beta)
		}
		if l.LengthKm < 0 {
			return nil, fmt.Errorf("qnet: link %d has negative length %g", l.ID, l.LengthKm)
		}
	}
	uses := make([][]bool, len(routes))
	for i, r := range routes {
		if r.ID != i+1 {
			return nil, fmt.Errorf("qnet: route at position %d has ID %d, want %d", i, r.ID, i+1)
		}
		if len(r.LinkIDs) == 0 {
			return nil, fmt.Errorf("qnet: route %d has no links", r.ID)
		}
		uses[i] = make([]bool, len(links))
		for _, lid := range r.LinkIDs {
			if lid < 1 || lid > len(links) {
				return nil, fmt.Errorf("qnet: route %d references unknown link %d", r.ID, lid)
			}
			if uses[i][lid-1] {
				return nil, fmt.Errorf("qnet: route %d lists link %d twice", r.ID, lid)
			}
			uses[i][lid-1] = true
		}
	}
	return &Network{links: append([]Link(nil), links...), routes: append([]Route(nil), routes...), uses: uses}, nil
}

// NumLinks returns L, the number of links.
func (n *Network) NumLinks() int { return len(n.links) }

// NumRoutes returns N, the number of routes (= client nodes).
func (n *Network) NumRoutes() int { return len(n.routes) }

// Link returns the link with 0-based index l.
func (n *Network) Link(l int) Link { return n.links[l] }

// Route returns the route with 0-based index r.
func (n *Network) Route(r int) Route {
	rt := n.routes[r]
	rt.LinkIDs = append([]int(nil), rt.LinkIDs...)
	return rt
}

// Uses reports whether 0-based route r traverses 0-based link l
// (the entry a_{l+1,r+1} of the paper's A matrix).
func (n *Network) Uses(r, l int) bool { return n.uses[r][l] }

// Betas returns the β_l coefficients in link order.
func (n *Network) Betas() []float64 {
	out := make([]float64, len(n.links))
	for i, l := range n.links {
		out[i] = l.Beta
	}
	return out
}

// IncidenceMatrix returns A with A[l][r] = 1 when route r uses link l,
// matching the paper's A := [a_ln].
func (n *Network) IncidenceMatrix() [][]float64 {
	a := make([][]float64, len(n.links))
	for l := range a {
		a[l] = make([]float64, len(n.routes))
		for r := range n.routes {
			if n.uses[r][l] {
				a[l][r] = 1
			}
		}
	}
	return a
}

// LinkLoads returns, for each link, the total entanglement rate Σ_n a_ln·φ_n
// imposed by the route allocation phi (pairs/second).
func (n *Network) LinkLoads(phi []float64) ([]float64, error) {
	if len(phi) != len(n.routes) {
		return nil, fmt.Errorf("qnet: %d rates for %d routes", len(phi), len(n.routes))
	}
	loads := make([]float64, len(n.links))
	for r := range n.routes {
		for l := range n.links {
			if n.uses[r][l] {
				loads[l] += phi[r]
			}
		}
	}
	return loads, nil
}

// WernerFromRates computes the optimal Werner parameters of Eq. (18):
// w_l = 1 − (Σ_n a_ln φ_n)/β_l, i.e. each link runs exactly at the capacity
// the allocation demands. Values are not clamped; callers should check
// feasibility (0 < w ≤ 1) via FeasibleRates.
func (n *Network) WernerFromRates(phi []float64) ([]float64, error) {
	loads, err := n.LinkLoads(phi)
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(n.links))
	for l := range w {
		w[l] = 1 - loads[l]/n.links[l].Beta
	}
	return w, nil
}

// FeasibleRates reports whether phi satisfies Constraint (19a): every rate
// is strictly positive and every link load Σ a_ln·φ_n stays strictly below
// β_l. (Unused links carry zero load and keep w_l = 1, which (17b) allows.)
func (n *Network) FeasibleRates(phi []float64) bool {
	for _, p := range phi {
		if p <= 0 {
			return false
		}
	}
	loads, err := n.LinkLoads(phi)
	if err != nil {
		return false
	}
	for l, load := range loads {
		if load >= n.links[l].Beta {
			return false
		}
	}
	return true
}

// EndToEndWerner computes ̟_r = Π_l w_l^{a_lr} for 0-based route r (Eq. 5):
// the Werner parameter after entanglement swapping along the route.
func (n *Network) EndToEndWerner(r int, w []float64) (float64, error) {
	if len(w) != len(n.links) {
		return 0, fmt.Errorf("qnet: %d werner values for %d links", len(w), len(n.links))
	}
	if r < 0 || r >= len(n.routes) {
		return 0, fmt.Errorf("qnet: route index %d out of range", r)
	}
	prod := 1.0
	for l := range n.links {
		if n.uses[r][l] {
			prod *= w[l]
		}
	}
	return prod, nil
}

// DeriveBeta computes β = 3κη/(2T) from the physical link model used in the
// paper's source topology [31]: η is the transmissivity from one end to the
// midpoint with fibre attenuation alphaDBPerKm, κ is the link inefficiency
// factor (photon loss excluded), and genTime T is the entanglement
// generation period in seconds. The Table IV values remain authoritative for
// reproduction; this function exists for building new topologies.
func DeriveBeta(lengthKm, kappa, alphaDBPerKm, genTime float64) float64 {
	if genTime <= 0 {
		return 0
	}
	eta := math.Pow(10, -alphaDBPerKm*(lengthKm/2)/10)
	return 3 * kappa * eta / (2 * genTime)
}
