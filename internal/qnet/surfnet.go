package qnet

// SURFnet returns the quantum network evaluated in the paper (§VI-A):
// the Dutch SURFnet research backbone [31,32] with L=18 links (lengths and
// β from Table IV) and N=6 routes rooted at the Hilversum key centre
// (Table III).
func SURFnet() *Network {
	links := []Link{
		{ID: 1, LengthKm: 30.6, Beta: 89.84},
		{ID: 2, LengthKm: 60.4, Beta: 53.79},
		{ID: 3, LengthKm: 38.9, Beta: 77.47},
		{ID: 4, LengthKm: 44.2, Beta: 69.44},
		{ID: 5, LengthKm: 47.7, Beta: 65.12},
		{ID: 6, LengthKm: 78.7, Beta: 40.76},
		{ID: 7, LengthKm: 60.0, Beta: 54.17},
		{ID: 8, LengthKm: 58.1, Beta: 56.25},
		{ID: 9, LengthKm: 25.7, Beta: 99.02},
		{ID: 10, LengthKm: 24.4, Beta: 100.98},
		{ID: 11, LengthKm: 44.7, Beta: 68.75},
		{ID: 12, LengthKm: 66.3, Beta: 49.35},
		{ID: 13, LengthKm: 62.5, Beta: 52.40},
		{ID: 14, LengthKm: 33.8, Beta: 84.63},
		{ID: 15, LengthKm: 36.7, Beta: 80.54},
		{ID: 16, LengthKm: 35.4, Beta: 82.41},
		{ID: 17, LengthKm: 30.2, Beta: 90.52},
		{ID: 18, LengthKm: 70.0, Beta: 46.82},
	}
	routes := []Route{
		{ID: 1, Source: "Hilversum", Dest: "Delft", LinkIDs: []int{17, 2, 1}},
		{ID: 2, Source: "Hilversum", Dest: "Zwolle", LinkIDs: []int{17, 3, 4, 5}},
		{ID: 3, Source: "Hilversum", Dest: "Apeldoorn", LinkIDs: []int{16, 4, 5, 11, 10}},
		{ID: 4, Source: "Hilversum", Dest: "Rotterdam", LinkIDs: []int{15, 18}},
		{ID: 5, Source: "Hilversum", Dest: "Arnherm", LinkIDs: []int{15, 14, 13, 12, 9}},
		{ID: 6, Source: "Hilversum", Dest: "Enschede", LinkIDs: []int{15, 14, 13, 12, 8, 7}},
	}
	n, err := New(links, routes)
	if err != nil {
		// The embedded data is a compile-time constant; a failure here is
		// a programming error, not a runtime condition.
		panic("qnet: invalid embedded SURFnet data: " + err.Error())
	}
	return n
}
