package qnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinaryEntropy(t *testing.T) {
	tests := []struct {
		p, want, tol float64
	}{
		{0, 0, 0},
		{1, 0, 0},
		{0.5, 1, 1e-12},
		{0.11, 0.499916, 1e-5}, // near the SKF threshold QBER
		{0.25, 0.811278, 1e-6},
	}
	for _, tt := range tests {
		if got := BinaryEntropy(tt.p); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("h2(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(BinaryEntropy(-0.1)) || !math.IsNaN(BinaryEntropy(1.1)) {
		t.Error("out-of-range entropy did not return NaN")
	}
}

func TestSecretKeyFractionEndpoints(t *testing.T) {
	if got := SecretKeyFraction(1); got != 1 {
		t.Errorf("F_skf(1) = %v, want 1", got)
	}
	if got := SecretKeyFraction(0); got != 0 {
		t.Errorf("F_skf(0) = %v, want 0", got)
	}
	if got := SecretKeyFraction(-0.5); got != 0 {
		t.Errorf("F_skf(-0.5) = %v, want 0", got)
	}
	if got := SecretKeyFraction(1.5); got != 1 {
		t.Errorf("F_skf(1.5) = %v, want 1 (clamped)", got)
	}
}

// TestSecretKeyFractionThreshold pins the zero crossing the paper reads off
// Desmos: F_skf is zero at w = 0.779944 and positive just above.
func TestSecretKeyFractionThreshold(t *testing.T) {
	if got := SecretKeyFraction(WernerZeroSKF); got > 1e-9 {
		t.Errorf("F_skf at threshold = %v, want ≈0", got)
	}
	if got := SecretKeyFraction(WernerZeroSKF - 1e-3); got != 0 {
		t.Errorf("F_skf below threshold = %v, want 0", got)
	}
	if got := SecretKeyFraction(WernerZeroSKF + 1e-3); got <= 0 {
		t.Errorf("F_skf above threshold = %v, want > 0", got)
	}
	// Cross-check against the paper's constant.
	if math.Abs(WernerZeroSKF-0.779944) > 1e-6 {
		t.Errorf("threshold constant %v drifted from paper's 0.779944", WernerZeroSKF)
	}
}

// Property: F_skf is monotonically non-decreasing on (0,1).
func TestSecretKeyFractionMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return SecretKeyFraction(a) <= SecretKeyFraction(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: F_skf(w) = 1 − 2·h2((1−w)/2) whenever positive (Eq. 4's two
// equivalent forms agree).
func TestSecretKeyFractionFormulaEquivalence(t *testing.T) {
	for w := 0.78; w < 1; w += 0.001 {
		direct := 1 + (1+w)*math.Log2((1+w)/2) + (1-w)*math.Log2((1-w)/2)
		if direct < 0 {
			direct = 0
		}
		if got := SecretKeyFraction(w); math.Abs(got-direct) > 1e-10 {
			t.Fatalf("F_skf(%v) = %v, direct formula = %v", w, got, direct)
		}
	}
}

func TestQBER(t *testing.T) {
	if got := QBER(1); got != 0 {
		t.Errorf("QBER(1) = %v, want 0", got)
	}
	if got := QBER(0); got != 0.5 {
		t.Errorf("QBER(0) = %v, want 0.5", got)
	}
}

func TestUtilityKnownValue(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	w := make([]float64, 18)
	for i := range w {
		w[i] = 1 // perfect links → F_skf(̟)=1 for every route
	}
	u, err := n.Utility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-1) > 1e-12 {
		t.Errorf("Utility = %v, want 1", u)
	}
	// Doubling one rate doubles the product.
	phi[2] = 2
	u2, err := n.Utility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u2-2) > 1e-12 {
		t.Errorf("Utility = %v, want 2", u2)
	}
}

func TestUtilityZeroBelowThreshold(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	w := make([]float64, 18)
	for i := range w {
		w[i] = 0.9 // route 6 has 6 links: 0.9^6 ≈ 0.53 < threshold
	}
	u, err := n.Utility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("Utility = %v, want 0 (below SKF threshold)", u)
	}
	lu, err := n.LogUtility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lu, -1) {
		t.Errorf("LogUtility = %v, want -Inf", lu)
	}
}

func TestLogUtilityConsistentWithUtility(t *testing.T) {
	n := SURFnet()
	phi := []float64{2, 1.1, 1.1, 1.9, 0.7, 0.6}
	w, err := n.WernerFromRates(phi)
	if err != nil {
		t.Fatal(err)
	}
	u, err := n.Utility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := n.LogUtility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 {
		t.Fatalf("expected positive utility, got %v", u)
	}
	if math.Abs(math.Log(u)-lu) > 1e-9 {
		t.Errorf("ln(U)=%v but LogUtility=%v", math.Log(u), lu)
	}
}

func TestLogUtilityNonPositiveRate(t *testing.T) {
	n := SURFnet()
	phi := []float64{0, 1, 1, 1, 1, 1}
	w := make([]float64, 18)
	for i := range w {
		w[i] = 1
	}
	lu, err := n.LogUtility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lu, -1) {
		t.Errorf("LogUtility with zero rate = %v, want -Inf", lu)
	}
}

func TestUtilityFromRates(t *testing.T) {
	n := SURFnet()
	phi := []float64{2, 1, 1, 2, 0.7, 0.6}
	u, err := n.UtilityFromRates(phi)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 {
		t.Errorf("UtilityFromRates = %v, want > 0", u)
	}
	// Must equal explicit two-step computation.
	w, err := n.WernerFromRates(phi)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := n.Utility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	if u != u2 {
		t.Errorf("UtilityFromRates = %v, explicit = %v", u, u2)
	}
}

func TestUtilityDimensionErrors(t *testing.T) {
	n := SURFnet()
	w := make([]float64, 18)
	if _, err := n.Utility([]float64{1}, w); err == nil {
		t.Error("short phi accepted by Utility")
	}
	if _, err := n.LogUtility([]float64{1}, w); err == nil {
		t.Error("short phi accepted by LogUtility")
	}
}

// Property: the utility is monotone non-decreasing in every Werner
// parameter (better links never hurt), as exploited by Eq. (18).
func TestUtilityMonotoneInWerner(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 1, 1, 1, 1, 1}
	base := make([]float64, 18)
	for i := range base {
		base[i] = 0.97
	}
	u0, err := n.Utility(phi, base)
	if err != nil {
		t.Fatal(err)
	}
	if u0 <= 0 {
		t.Fatalf("base utility %v not positive", u0)
	}
	for l := 0; l < 18; l++ {
		bumped := append([]float64(nil), base...)
		bumped[l] = 0.99
		u1, err := n.Utility(phi, bumped)
		if err != nil {
			t.Fatal(err)
		}
		if u1 < u0-1e-12 {
			t.Errorf("improving link %d decreased utility: %v -> %v", l+1, u0, u1)
		}
	}
}

// Property: utility is homogeneous of degree N in the rates:
// U(c·φ) = c^N · U(φ) at fixed w.
func TestUtilityRateHomogeneity(t *testing.T) {
	n := SURFnet()
	phi := []float64{1, 0.9, 0.8, 1.1, 0.7, 0.6}
	w := make([]float64, 18)
	for i := range w {
		w[i] = 0.98
	}
	u1, err := n.Utility(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(phi))
	for i := range phi {
		scaled[i] = 1.5 * phi[i]
	}
	u2, err := n.Utility(scaled, w)
	if err != nil {
		t.Fatal(err)
	}
	want := u1 * math.Pow(1.5, float64(len(phi)))
	if math.Abs(u2-want)/want > 1e-9 {
		t.Errorf("U(1.5φ) = %v, want %v", u2, want)
	}
}

// Property: WernerFromRates inverts LinkCapacity: at w* the load equals
// the capacity exactly on every loaded link.
func TestWernerFromRatesSaturatesCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := SURFnet()
		phi := make([]float64, 6)
		for i := range phi {
			phi[i] = 0.5 + rng.Float64()*2
		}
		w, err := n.WernerFromRates(phi)
		if err != nil {
			return false
		}
		loads, err := n.LinkLoads(phi)
		if err != nil {
			return false
		}
		for l := range loads {
			capacity := LinkCapacity(n.Link(l).Beta, w[l])
			if math.Abs(loads[l]-capacity) > 1e-9*(1+capacity) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
