package mathutil

import (
	"fmt"
	"math"
)

// PolyFit fits a polynomial of the given degree to the points (xs[i], ys[i])
// by ordinary least squares and returns the coefficients in ascending order:
// coeffs[k] multiplies x^k. It solves the normal equations with Gaussian
// elimination, which is adequate for the low degrees (≤3) used in this
// repository's cost-model fitting.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("polyfit: %w: %d xs vs %d ys", ErrDimensionMismatch, len(xs), len(ys))
	}
	if degree < 0 {
		return nil, fmt.Errorf("polyfit: negative degree %d", degree)
	}
	if len(xs) < degree+1 {
		return nil, fmt.Errorf("polyfit: need at least %d points for degree %d, got %d", degree+1, degree, len(xs))
	}
	m := degree + 1
	// Normal equations: (VᵀV) c = Vᵀy with V the Vandermonde matrix.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m+1)
	}
	for k := range xs {
		pow := make([]float64, m)
		pow[0] = 1
		for j := 1; j < m; j++ {
			pow[j] = pow[j-1] * xs[k]
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				a[i][j] += pow[i] * pow[j]
			}
			a[i][m] += pow[i] * ys[k]
		}
	}
	coeffs, err := SolveLinear(a)
	if err != nil {
		return nil, fmt.Errorf("polyfit: %w", err)
	}
	return coeffs, nil
}

// PolyEval evaluates a polynomial with ascending coefficients at x using
// Horner's rule.
func PolyEval(coeffs []float64, x float64) float64 {
	var y float64
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = y*x + coeffs[i]
	}
	return y
}

// SolveLinear solves the augmented system [A | b] given as rows of length
// n+1, using Gaussian elimination with partial pivoting. The input is
// mutated. It returns the solution vector of length n.
func SolveLinear(aug [][]float64) ([]float64, error) {
	n := len(aug)
	for i := 0; i < n; i++ {
		if len(aug[i]) != n+1 {
			return nil, fmt.Errorf("solve: row %d has %d entries, want %d: %w", i, len(aug[i]), n+1, ErrDimensionMismatch)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("solve: singular matrix at column %d", col)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := 1 / aug[col][col]
		for r := col + 1; r < n; r++ {
			f := aug[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := aug[i][n]
		for j := i + 1; j < n; j++ {
			s -= aug[i][j] * x[j]
		}
		x[i] = s / aug[i][i]
	}
	return x, nil
}

// LinFit fits y ≈ a + b·x and returns (a, b). It is a convenience wrapper
// around PolyFit for the linear security-level model.
func LinFit(xs, ys []float64) (intercept, slope float64, err error) {
	c, err := PolyFit(xs, ys, 1)
	if err != nil {
		return 0, 0, err
	}
	return c[0], c[1], nil
}

// RSquared returns the coefficient of determination of predictions pred
// against observations obs. It returns NaN when obs has zero variance.
func RSquared(obs, pred []float64) float64 {
	if len(obs) != len(pred) || len(obs) == 0 {
		return math.NaN()
	}
	mean := Sum(obs) / float64(len(obs))
	var ssRes, ssTot float64
	for i := range obs {
		r := obs[i] - pred[i]
		ssRes += r * r
		d := obs[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
