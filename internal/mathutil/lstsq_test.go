package mathutil

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolyFitExactLine(t *testing.T) {
	// y = 1.4789 + 0.002x — the paper's f_msl model.
	xs := []float64{32768, 65536, 131072}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1.4789 + 0.002*x
	}
	a, b, err := LinFit(xs, ys)
	if err != nil {
		t.Fatalf("LinFit: %v", err)
	}
	if !ApproxEqual(a, 1.4789, 1e-6) || !ApproxEqual(b, 0.002, 1e-9) {
		t.Errorf("LinFit = (%v, %v), want (1.4789, 0.002)", a, b)
	}
}

func TestPolyFitQuadratic(t *testing.T) {
	// y = 3 - 2x + 0.5x²
	want := []float64{3, -2, 0.5}
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = PolyEval(want, x)
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	if !VecApproxEqual(got, want, 1e-8) {
		t.Errorf("PolyFit = %v, want %v", got, want)
	}
}

func TestPolyFitOverdeterminedNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := []float64{1, 2}
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, PolyEval(truth, x)+rng.NormFloat64()*0.01)
	}
	got, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	if !VecApproxEqual(got, truth, 1e-2) {
		t.Errorf("PolyFit noisy = %v, want ≈%v", got, truth)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 1); err == nil {
		t.Error("underdetermined system accepted")
	}
}

func TestPolyEval(t *testing.T) {
	// 2 + 3x + x² at x=2 → 2+6+4 = 12
	if got := PolyEval([]float64{2, 3, 1}, 2); got != 12 {
		t.Errorf("PolyEval = %v, want 12", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Errorf("PolyEval(nil) = %v, want 0", got)
	}
}

func TestSolveLinearIdentity(t *testing.T) {
	aug := [][]float64{
		{1, 0, 0, 4},
		{0, 1, 0, 5},
		{0, 0, 1, 6},
	}
	x, err := SolveLinear(aug)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !VecApproxEqual(x, []float64{4, 5, 6}, 1e-12) {
		t.Errorf("SolveLinear = %v", x)
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// First pivot is zero; partial pivoting must rescue it.
	aug := [][]float64{
		{0, 1, 2},
		{1, 0, 3},
	}
	x, err := SolveLinear(aug)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !VecApproxEqual(x, []float64{3, 2}, 1e-12) {
		t.Errorf("SolveLinear = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	aug := [][]float64{
		{1, 2, 3},
		{2, 4, 6},
	}
	if _, err := SolveLinear(aug); err == nil {
		t.Error("singular system accepted")
	}
}

func TestSolveLinearBadShape(t *testing.T) {
	if _, err := SolveLinear([][]float64{{1, 2}, {1, 2}}); err == nil {
		t.Error("bad row length accepted")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if got := RSquared(obs, obs); !ApproxEqual(got, 1, 1e-12) {
		t.Errorf("RSquared(perfect) = %v, want 1", got)
	}
	if got := RSquared(obs, []float64{2.5, 2.5, 2.5, 2.5}); !ApproxEqual(got, 0, 1e-12) {
		t.Errorf("RSquared(mean) = %v, want 0", got)
	}
	if got := RSquared([]float64{1, 1}, []float64{1, 1}); !math.IsNaN(got) {
		t.Errorf("RSquared(zero variance) = %v, want NaN", got)
	}
	if got := RSquared([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("RSquared(mismatch) = %v, want NaN", got)
	}
}

// Property: fitting points generated from a random cubic recovers it.
func TestPolyFitRecoversRandomCubic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		truth := []float64{
			rng.NormFloat64(), rng.NormFloat64(),
			rng.NormFloat64(), rng.NormFloat64(),
		}
		xs := make([]float64, 12)
		ys := make([]float64, 12)
		for i := range xs {
			xs[i] = float64(i) - 6
			ys[i] = PolyEval(truth, xs[i])
		}
		got, err := PolyFit(xs, ys, 3)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !VecApproxEqual(got, truth, 1e-6) {
			t.Errorf("trial %d: PolyFit = %v, want %v", trial, got, truth)
		}
	}
}
