package mathutil

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of x. It returns the zero Summary
// for an empty sample.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := Summary{N: len(x), Min: x[0], Max: x[0]}
	var sum float64
	for _, v := range x {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(x))
	var ss float64
	for _, v := range x {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(x)))
	sorted := Clone(x)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Histogram counts how many entries of x fall into each half-open bucket
// [edges[i], edges[i+1]). Values below edges[0] or at/above the last edge are
// not counted. len(edges) must be at least 2; the result has len(edges)-1
// entries.
func Histogram(x []float64, edges []float64) []int {
	if len(edges) < 2 {
		panic("mathutil: Histogram needs at least two edges")
	}
	counts := make([]int, len(edges)-1)
	for _, v := range x {
		// Linear scan: bucket counts in this codebase are tiny (≤10).
		for i := 0; i+1 < len(edges); i++ {
			if v >= edges[i] && v < edges[i+1] {
				counts[i]++
				break
			}
		}
	}
	return counts
}

// Fraction returns the fraction of entries of x for which pred holds.
func Fraction(x []float64, pred func(float64) bool) float64 {
	if len(x) == 0 {
		return 0
	}
	n := 0
	for _, v := range x {
		if pred(v) {
			n++
		}
	}
	return float64(n) / float64(len(x))
}
