package mathutil

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Std != 2 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero value", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("Median = %v, want 5", s.Median)
	}
}

func TestHistogram(t *testing.T) {
	// Paper Fig. 3(b) bucket edges.
	edges := []float64{-25, -10, -5, 0, 5, 10, 15}
	x := []float64{-20, -7, -3, 2, 2, 7, 12, 12, 12, 100}
	got := Histogram(x, edges)
	want := []int{1, 1, 1, 2, 1, 3} // 100 falls outside
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram with one edge did not panic")
		}
	}()
	Histogram([]float64{1}, []float64{0})
}

func TestFraction(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := Fraction(x, func(v float64) bool { return v >= 3 })
	if got != 0.5 {
		t.Errorf("Fraction = %v, want 0.5", got)
	}
	if Fraction(nil, func(float64) bool { return true }) != 0 {
		t.Error("Fraction(nil) != 0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Median != 42 || s.Std != 0 {
		t.Errorf("Summarize single = %+v", s)
	}
}

func TestHistogramBoundaries(t *testing.T) {
	edges := []float64{0, 1, 2}
	// Left edge inclusive, right edge exclusive.
	got := Histogram([]float64{0, 1, 2}, edges)
	if got[0] != 1 || got[1] != 1 {
		t.Errorf("Histogram boundaries = %v, want [1 1]", got)
	}
}

func TestSummarizeStdNonNegative(t *testing.T) {
	s := Summarize([]float64{1e15, 1e15, 1e15})
	if s.Std < 0 || math.IsNaN(s.Std) {
		t.Errorf("Std = %v", s.Std)
	}
}
