package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		x, y []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"ones", []float64{1, 1, 1}, []float64{1, 1, 1}, 3},
		{"mixed", []float64{1, -2, 3}, []float64{4, 5, -6}, 4 - 10 - 18},
		{"single", []float64{2.5}, []float64{4}, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.x, tt.y); got != tt.want {
				t.Errorf("Dot(%v, %v) = %v, want %v", tt.x, tt.y, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Errorf("NormInf(nil) = %v, want 0", got)
	}
}

func TestAddSubScale(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	if got := Add(x, y); !VecApproxEqual(got, []float64{11, 22}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(y, x); !VecApproxEqual(got, []float64{9, 18}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(3, x); !VecApproxEqual(got, []float64{3, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	// Inputs must be unchanged.
	if x[0] != 1 || y[0] != 10 {
		t.Error("Add/Sub/Scale mutated their inputs")
	}
}

func TestAXPYInPlace(t *testing.T) {
	y := []float64{1, 1}
	AXPYInPlace(2, []float64{3, 4}, y)
	if !VecApproxEqual(y, []float64{7, 9}, 0) {
		t.Errorf("AXPYInPlace = %v, want [7 9]", y)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestClampVecInPlace(t *testing.T) {
	x := []float64{-5, 5, 50}
	ClampVecInPlace(x, []float64{0, 0, 0}, []float64{10, 10, 10})
	if !VecApproxEqual(x, []float64{0, 5, 10}, 0) {
		t.Errorf("ClampVecInPlace = %v", x)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	if got := Max(x); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(x); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := ArgMax(x); got != 4 {
		t.Errorf("ArgMax = %v", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %v, want -1", got)
	}
}

func TestFillSum(t *testing.T) {
	x := Fill(4, 2.5)
	if got := Sum(x); got != 10 {
		t.Errorf("Sum(Fill(4, 2.5)) = %v, want 10", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Error("AllFinite rejected finite vector")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("AllFinite accepted NaN")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("AllFinite accepted +Inf")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("ApproxEqual rejected near-identical values")
	}
	if ApproxEqual(1.0, 2.0, 1e-9) {
		t.Error("ApproxEqual accepted distant values")
	}
	if ApproxEqual(math.NaN(), math.NaN(), 1) {
		t.Error("ApproxEqual accepted NaN")
	}
	// Relative comparison for large magnitudes.
	if !ApproxEqual(1e12, 1e12+1, 1e-9) {
		t.Error("ApproxEqual rejected relative-equal large values")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := []float64{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if got := Clone(nil); got == nil || len(got) != 0 {
		t.Errorf("Clone(nil) = %v, want empty non-nil", got)
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotPropertySymmetric(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		x, y := raw[:half], raw[half:2*half]
		for _, v := range raw {
			// Skip values whose products overflow to ±Inf.
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Norm2(Scale(a, x)) == |a|·Norm2(x) within floating error.
func TestNormScaleProperty(t *testing.T) {
	f := func(x []float64, a float64) bool {
		if !AllFinite(x) || math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		for _, v := range x {
			if math.Abs(v) > 1e6 {
				return true
			}
		}
		lhs := Norm2(Scale(a, x))
		rhs := math.Abs(a) * Norm2(x)
		return ApproxEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
