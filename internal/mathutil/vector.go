// Package mathutil provides small numeric helpers shared by the optimization
// and simulation packages: dense vector operations, summary statistics, and
// least-squares fitting.
//
// All functions operate on plain []float64 slices. Functions that return a
// vector allocate a fresh slice; functions suffixed with "InPlace" mutate
// their first argument. None of the functions retain references to their
// inputs.
package mathutil

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned (or wrapped) when two vectors that must
// share a length do not.
var ErrDimensionMismatch = errors.New("mathutil: dimension mismatch")

// Clone returns a copy of x. Clone(nil) returns an empty, non-nil slice so
// callers can append to the result safely.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Dot returns the inner product of x and y. It panics if the lengths differ,
// as this is a programmer error rather than a runtime condition.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathutil: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x, or 0 for an empty slice.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Add returns x + y element-wise.
func Add(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathutil: Add length mismatch %d != %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Sub returns x − y element-wise.
func Sub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathutil: Sub length mismatch %d != %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// Scale returns a*x element-wise.
func Scale(a float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a * x[i]
	}
	return out
}

// AXPYInPlace computes y ← y + a*x in place.
func AXPYInPlace(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathutil: AXPYInPlace length mismatch %d != %d", len(x), len(y)))
	}
	for i := range y {
		y[i] += a * x[i]
	}
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampVecInPlace clamps every entry of x into [lo[i], hi[i]].
func ClampVecInPlace(x, lo, hi []float64) {
	for i := range x {
		x[i] = Clamp(x[i], lo[i], hi[i])
	}
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum entry of x. It panics on an empty slice.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("mathutil: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum entry of x. It panics on an empty slice.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("mathutil: Min of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum entry of x, or -1 for empty input.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Fill returns a length-n slice with every entry set to v.
func Fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// AllFinite reports whether every entry of x is finite (neither NaN nor ±Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b differ by at most tol in absolute value
// or by tol in relative value (whichever is looser). NaNs are never equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// VecApproxEqual reports whether each pair of entries is ApproxEqual.
func VecApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ApproxEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}
