package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are atomic.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can move both ways. All methods are atomic.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family. Exactly one of the
// value fields is set.
type series struct {
	labels string // rendered {k="v",...} suffix, "" for unlabeled
	c      *Counter
	g      *Gauge
	f      func() float64 // CounterFunc / GaugeFunc
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []*series // registration order, for stable exposition
}

// Registry is a lock-cheap metrics registry: registration (Counter,
// Gauge, Histogram, ...) takes a mutex once and returns an instrument
// pointer; every hot-path update after that is pure atomics on the held
// pointer. Registration is idempotent — the same name and label set
// returns the same instrument — so instruments can be resolved lazily
// from concurrent paths. WritePrometheus renders the text exposition
// format for scraping.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// renderLabels turns ["k","v",...] pairs into a canonical {k="v",...}
// suffix (keys sorted, values escaped). Panics on an odd pair count or an
// invalid name — misregistered metrics are programming errors, caught in
// tests, not conditions to handle at runtime.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup returns the series for (name, labels), creating family and
// series through mk on first use. Kind mismatches panic: two call sites
// disagreeing on a metric's type is a bug, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, mk func() *series) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := renderLabels(labels)
	r.mu.RLock()
	fam := r.families[name]
	var s *series
	if fam != nil {
		s = fam.series[key]
	}
	r.mu.RUnlock()
	if s != nil {
		if fam.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, fam.kind, kind))
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam = r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, fam.kind, kind))
	}
	if s = fam.series[key]; s != nil {
		return s
	}
	s = mk()
	s.labels = key
	fam.series[key] = s
	fam.order = append(fam.order, s)
	return s
}

// Counter returns the counter for name and label pairs, registering it on
// first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, counterKind, labels, func() *series { return &series{c: new(Counter)} })
	if s.c == nil {
		panic(fmt.Sprintf("obs: metric %s is a counter func, not a counter", name))
	}
	return s.c
}

// Gauge returns the gauge for name and label pairs, registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, gaugeKind, labels, func() *series { return &series{g: new(Gauge)} })
	if s.g == nil {
		panic(fmt.Sprintf("obs: metric %s is a gauge func, not a gauge", name))
	}
	return s.g
}

// Histogram returns the histogram for name and label pairs, registering
// it on first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.lookup(name, help, histogramKind, labels, func() *series { return &series{h: new(Histogram)} })
	return s.h
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time — the bridge for components that already keep their own atomic
// gauges (queue depth, pool utilization, key stock). Idempotent: a
// second registration for the same name and labels replaces f.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...string) {
	s := r.lookup(name, help, gaugeKind, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.f, s.g = f, nil
	r.mu.Unlock()
}

// CounterFunc registers a counter read from f at exposition time (f must
// be monotone). Idempotent like GaugeFunc.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...string) {
	s := r.lookup(name, help, counterKind, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.f, s.c = f, nil
	r.mu.Unlock()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers per family,
// cumulative `_bucket{le=...}` series plus `_sum`/`_count` for
// histograms. Histogram bucket lines are emitted only at boundaries with
// observations (plus the mandatory `+Inf`) — cumulative counts stay
// exact, output stays proportional to the data.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Snapshot the series slices under the lock; instruments themselves
	// are atomic.
	type famView struct {
		fam    *family
		series []*series
	}
	views := make([]famView, len(fams))
	for i, f := range fams {
		views[i] = famView{fam: f, series: append([]*series(nil), f.order...)}
	}
	r.mu.RUnlock()
	sort.Slice(views, func(i, j int) bool { return views[i].fam.name < views[j].fam.name })

	var b strings.Builder
	for _, v := range views {
		f := v.fam
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range v.series {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
			case s.f != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.f()))
			case s.h != nil:
				writeHistogram(&b, f.name, s.labels, s.h.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series. Bucket labels compose the
// series labels with le, so labeled histograms stay well-formed.
func writeHistogram(b *strings.Builder, name, labels string, s HistSnapshot) {
	inner := ""
	if labels != "" {
		inner = labels[1:len(labels)-1] + ","
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if c == 0 || i == len(s.Counts)-1 {
			continue
		}
		fmt.Fprintf(b, "%s_bucket{%sle=\"%s\"} %d\n", name, inner, formatFloat(BucketUpper(i)), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, inner, s.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, s.Count)
}
