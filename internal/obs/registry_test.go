package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("quhe_test_total", "help", "dir", "in")
	c2 := r.Counter("quhe_test_total", "ignored on re-registration", "dir", "in")
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	if r.Counter("quhe_test_total", "", "dir", "out") == c1 {
		t.Fatal("distinct labels must return distinct counters")
	}
	h1 := r.Histogram("quhe_test_seconds", "", "profile", "a")
	if h1 != r.Histogram("quhe_test_seconds", "", "profile", "a") {
		t.Fatal("same name+labels must return the same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("quhe_test_total", "")
}

// promLine matches a sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// checkPromText validates output against the Prometheus text-format
// rules: every non-comment line parses as a sample, every family has a
// TYPE, histogram buckets are cumulative and end at +Inf matching
// _count. Returns the parsed samples.
func checkPromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	var lastBucket string
	var lastCum float64
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line violates text exposition format: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		if valStr == "+Inf" {
			val = 1e308
		} else {
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			val = v
		}
		samples[key] = val
		// Cumulativity within one histogram series.
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			series := name + labelsWithoutLe(key)
			if series == lastBucket && val < lastCum {
				t.Fatalf("bucket counts not cumulative at %q: %g < %g", line, val, lastCum)
			}
			lastBucket, lastCum = series, val
		}
	}
	for name, kind := range typed {
		if kind != "counter" && kind != "gauge" && kind != "histogram" {
			t.Fatalf("family %s has unknown type %s", name, kind)
		}
	}
	return samples
}

func labelsWithoutLe(key string) string {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return ""
	}
	var kept []string
	for _, kv := range strings.Split(strings.Trim(key[i:], "{}"), ",") {
		if !strings.HasPrefix(kv, `le="`) {
			kept = append(kept, kv)
		}
	}
	return strings.Join(kept, ",")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("quhe_frames_total", "frames seen", "dir", "in").Add(7)
	r.Gauge("quhe_depth", "queue depth").Set(3.5)
	r.GaugeFunc("quhe_stock_bytes", "key stock", func() float64 { return 123 })
	h := r.Histogram("quhe_lat_seconds", "latency", "profile", `we"ird\p`)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := checkPromText(t, b.String())
	if samples[`quhe_frames_total{dir="in"}`] != 7 {
		t.Errorf("counter sample missing: %v", samples)
	}
	if samples["quhe_depth"] != 3.5 || samples["quhe_stock_bytes"] != 123 {
		t.Errorf("gauge samples wrong: %v", samples)
	}
	count := samples[`quhe_lat_seconds_count{profile="we\"ird\\p"}`]
	if count != 100 {
		t.Errorf("histogram count = %g, want 100 (samples: %v)", count, samples)
	}
	inf := samples[`quhe_lat_seconds_bucket{profile="we\"ird\\p",le="+Inf"}`]
	if inf != 100 {
		t.Errorf("+Inf bucket = %g, want 100", inf)
	}
}

// TestRegistryConcurrentWritersAndScrapers is the -race stress test:
// concurrent counter/gauge/histogram writers, lazy registrations and
// scrapers must be data-race free and lose no counted increments.
func TestRegistryConcurrentWritersAndScrapers(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wr := wr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("quhe_stress_total", "").Inc()
				r.Gauge("quhe_stress_gauge", "").Set(float64(i))
				r.Histogram("quhe_stress_seconds", "", "w", fmt.Sprint(wr%3)).Observe(float64(i%100) / 10)
			}
		}()
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for sc := 0; sc < 3; sc++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	if got := r.Counter("quhe_stress_total", "").Value(); got != writers*perWriter {
		t.Fatalf("lost increments: %d, want %d", got, writers*perWriter)
	}
	var total int64
	for _, w := range []string{"0", "1", "2"} {
		total += r.Histogram("quhe_stress_seconds", "", "w", w).Count()
	}
	if total != writers*perWriter {
		t.Fatalf("lost observations: %d, want %d", total, writers*perWriter)
	}
}
