package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSLOTrackerAttainment(t *testing.T) {
	tr := NewSLOTracker("avail", 0.99)
	if got := tr.Attainment(); got != 1 {
		t.Fatalf("idle attainment = %g, want 1", got)
	}
	for i := 0; i < 99; i++ {
		tr.Observe(true)
	}
	tr.Observe(false)
	if got := tr.Attainment(); got != 0.99 {
		t.Errorf("attainment = %g, want 0.99", got)
	}
	if tr.Good() != 99 || tr.Bad() != 1 {
		t.Errorf("good/bad = %d/%d, want 99/1", tr.Good(), tr.Bad())
	}
}

func TestSLOTrackerBurnRate(t *testing.T) {
	tr := NewSLOTracker("avail", 0.99, time.Minute)
	now := time.Unix(1000, 0)
	// 10% bad ratio against a 1% error budget → burn rate 10.
	for i := 0; i < 90; i++ {
		tr.observeAt(now, true)
	}
	for i := 0; i < 10; i++ {
		tr.observeAt(now, false)
	}
	good, bad := tr.windowCounts(now, time.Minute)
	if good != 90 || bad != 10 {
		t.Fatalf("window counts = %d/%d, want 90/10", good, bad)
	}
	budget := 1 - 0.99
	burn := (float64(bad) / float64(good+bad)) / budget
	if burn < 9.99 || burn > 10.01 {
		t.Errorf("burn = %g, want ≈10", burn)
	}
	// Events older than the window must age out of the windowed counts.
	good, bad = tr.windowCounts(now.Add(2*time.Minute), time.Minute)
	if good != 0 || bad != 0 {
		t.Errorf("aged window counts = %d/%d, want 0/0", good, bad)
	}
	// ...while cumulative totals survive.
	if tr.Good() != 90 || tr.Bad() != 10 {
		t.Errorf("cumulative = %d/%d, want 90/10", tr.Good(), tr.Bad())
	}
}

func TestSLOTrackerBucketReuse(t *testing.T) {
	// Two observations one full ring-length apart land in the same bucket
	// slot; the newer second must evict the older counts, not add to them.
	tr := NewSLOTracker("x", 0.9, time.Minute)
	base := time.Unix(5000, 0)
	tr.observeAt(base, false)
	later := base.Add(time.Duration(len(tr.buckets)) * time.Second)
	tr.observeAt(later, true)
	good, bad := tr.windowCounts(later, time.Minute)
	if good != 1 || bad != 0 {
		t.Errorf("window counts after slot reuse = %d/%d, want 1/0", good, bad)
	}
}

func TestSLOTrackerDefaults(t *testing.T) {
	tr := NewSLOTracker("x", 0) // bad objective → default
	if tr.objective != 0.99 {
		t.Errorf("objective defaulted to %g, want 0.99", tr.objective)
	}
	if len(tr.windows) != len(DefaultSLOWindows) {
		t.Errorf("windows defaulted to %d, want %d", len(tr.windows), len(DefaultSLOWindows))
	}
	if len(tr.buckets) != int(time.Hour/time.Second) {
		t.Errorf("ring sized %d, want %d (largest default window)", len(tr.buckets), int(time.Hour/time.Second))
	}
}

func TestSLOSnapshotJSONShape(t *testing.T) {
	tr := NewSLOTracker("latency", 0.95, time.Minute, 5*time.Minute)
	tr.Observe(true)
	tr.Observe(false)
	snap := tr.Snapshot()
	if snap.Name != "latency" || snap.Objective != 0.95 {
		t.Errorf("snapshot header = %q/%g", snap.Name, snap.Objective)
	}
	if len(snap.Windows) != 2 {
		t.Fatalf("snapshot windows = %d, want 2", len(snap.Windows))
	}
	if snap.Windows[0].Window != "1m0s" {
		t.Errorf("window label %q", snap.Windows[0].Window)
	}
	if snap.Attainment != 0.5 {
		t.Errorf("attainment %g, want 0.5", snap.Attainment)
	}
}

func TestSLOSetRegistersSeries(t *testing.T) {
	reg := NewRegistry()
	set := NewSLOSet(reg)
	tr := set.Add("availability", 0.99, time.Minute)
	if set.Add("availability", 0.5) != tr {
		t.Fatal("Add must be idempotent by name")
	}
	if set.Get("availability") != tr {
		t.Fatal("Get must return the registered tracker")
	}
	tr.Observe(true)
	tr.Observe(false)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`quhe_slo_events_total{result="good",slo="availability"} 1`,
		`quhe_slo_events_total{result="bad",slo="availability"} 1`,
		`quhe_slo_attainment{slo="availability"} 0.5`,
		`quhe_slo_burn_rate{slo="availability",window="1m0s"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}

	snaps := set.Snapshot()
	if len(snaps) != 1 || snaps[0].Name != "availability" {
		t.Fatalf("set snapshot = %+v", snaps)
	}
}
