package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the sorted-slice exact-rank reference the histogram is
// tested against: the value at rank ceil(q·n), 1-based.
func refQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// adversarial distributions: heavy tails, point masses, bimodal gaps,
// sub-bucket-width values and near-overflow magnitudes.
func distributions(rng *rand.Rand, n int) map[string][]float64 {
	out := make(map[string][]float64)

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 100
	}
	out["uniform"] = uniform

	exp := make([]float64, n)
	for i := range exp {
		exp[i] = rng.ExpFloat64() * 5
	}
	out["exponential"] = exp

	pareto := make([]float64, n)
	for i := range pareto {
		pareto[i] = math.Pow(1-rng.Float64(), -1/1.2) // α=1.2 heavy tail
	}
	out["pareto"] = pareto

	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 3.7
	}
	out["constant"] = constant

	bimodal := make([]float64, n)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 0.5 + rng.Float64()*0.01
		} else {
			bimodal[i] = 5000 + rng.Float64()*100
		}
	}
	out["bimodal"] = bimodal

	tiny := make([]float64, n)
	for i := range tiny {
		tiny[i] = rng.Float64() * 0.01
	}
	out["tiny"] = tiny

	huge := make([]float64, n)
	for i := range huge {
		huge[i] = 1e5 + rng.Float64()*1e5
	}
	out["huge"] = huge

	return out
}

// TestQuantileVsSortedReference pins the quantile guarantee: for every
// distribution and quantile, the histogram's answer is at least the true
// order statistic and at most 12.5% above it (one sub-bucket of relative
// resolution), except where the value escapes the bucket grid entirely.
func TestQuantileVsSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gridLo, gridHi := math.Ldexp(1, histMinExp), math.Ldexp(1, histMaxExp+1)
	for name, vals := range distributions(rng, 5000) {
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			want := refQuantile(sorted, q)
			got := h.Quantile(q)
			if want < gridLo || want >= gridHi {
				continue // off-grid values only promise bucket membership
			}
			if got < want || got > want*(1+1.0/histSubBuckets)+1e-9 {
				t.Errorf("%s q=%g: got %g, reference %g (allowed [%g, %g])",
					name, q, got, want, want, want*(1+1.0/histSubBuckets))
			}
		}
		if snap := h.Snapshot(); snap.Count != int64(len(vals)) {
			t.Errorf("%s: snapshot count %d, want %d", name, snap.Count, len(vals))
		}
	}
}

// TestQuantileExactOnPointMass: every observation identical → every
// quantile returns it exactly (the max cap collapses the bucket bound).
func TestQuantileExactOnPointMass(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(3.7)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3.7 {
			t.Errorf("q=%g: got %g, want exactly 3.7", q, got)
		}
	}
}

// TestSnapshotMergeAssociativity: (a⊕b)⊕c and a⊕(b⊕c) agree bucket for
// bucket, and both match observing everything into one histogram.
func TestSnapshotMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ha, hb, hc, all Histogram
	for i := 0; i < 3000; i++ {
		v := rng.ExpFloat64() * float64(1+i%97)
		switch i % 3 {
		case 0:
			ha.Observe(v)
		case 1:
			hb.Observe(v)
		default:
			hc.Observe(v)
		}
		all.Observe(v)
	}
	a, b, c := ha.Snapshot(), hb.Snapshot(), hc.Snapshot()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	ref := all.Snapshot()
	for _, m := range []HistSnapshot{left, right} {
		if m.Counts != ref.Counts {
			t.Fatalf("merged bucket counts diverge from single-histogram reference")
		}
		if m.Count != ref.Count || m.Max != ref.Max {
			t.Fatalf("merged count/max = %d/%g, want %d/%g", m.Count, m.Max, ref.Count, ref.Max)
		}
		if math.Abs(m.Sum-ref.Sum) > 1e-6*math.Abs(ref.Sum) {
			t.Fatalf("merged sum %g, want %g", m.Sum, ref.Sum)
		}
	}
	if left.Counts != right.Counts {
		t.Fatal("merge is not associative")
	}
	// Merging with the zero snapshot is identity.
	var zero HistSnapshot
	if got := a.Merge(zero); got.Counts != a.Counts || got.Count != a.Count {
		t.Fatal("zero snapshot is not a merge identity")
	}
}

// TestBucketEdges pins underflow/overflow handling and boundary
// monotonicity of the shared layout.
func TestBucketEdges(t *testing.T) {
	for _, v := range []float64{0, -1, math.NaN(), 1e-9} {
		if got := bucketOf(v); got != 0 {
			t.Errorf("bucketOf(%g) = %d, want underflow bucket 0", v, got)
		}
	}
	if got := bucketOf(1e12); got != NumBuckets-1 {
		t.Errorf("bucketOf(1e12) = %d, want overflow bucket %d", got, NumBuckets-1)
	}
	prev := 0.0
	for i := 0; i < NumBuckets; i++ {
		u := BucketUpper(i)
		if i < NumBuckets-1 && u <= prev {
			t.Fatalf("bucket %d upper %g not above previous %g", i, u, prev)
		}
		prev = u
	}
	if !math.IsInf(BucketUpper(NumBuckets-1), 1) {
		t.Fatal("last bucket upper bound must be +Inf")
	}
	// Every value maps into a bucket whose bounds contain it.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := math.Ldexp(rng.Float64()+1, rng.Intn(28)-9)
		b := bucketOf(v)
		if v > BucketUpper(b) {
			t.Fatalf("value %g above its bucket %d upper %g", v, b, BucketUpper(b))
		}
		if b > 0 && v < BucketUpper(b-1) {
			t.Fatalf("value %g below bucket %d lower bound %g", v, b, BucketUpper(b-1))
		}
	}
}

func TestMeanAndMax(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Mean() != 2.5 || s.Max != 4 {
		t.Fatalf("mean/max = %g/%g, want 2.5/4", s.Mean(), s.Max)
	}
	var empty Histogram
	if es := empty.Snapshot(); es.Mean() != 0 || es.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zero mean and quantiles")
	}
}
