package obs

import (
	"math"
	"sync/atomic"
)

// The bucket layout is log-linear and fixed for every Histogram in the
// process: each power-of-two octave [2^e, 2^(e+1)) is split into
// histSubBuckets equal linear sub-buckets, covering exponents
// [histMinExp, histMaxExp], with one underflow bucket below and one
// overflow bucket above. A shared layout is what makes snapshots
// mergeable across histograms (per-session → per-profile → global) by
// plain bucket-wise addition.
//
// With 8 sub-buckets per octave the ratio of a bucket's upper to lower
// bound is at most 1+1/8, so a quantile read off a bucket upper bound
// overestimates the true order statistic by at most 12.5% — the bound
// the property tests assert against a sorted-slice reference.
const (
	histSubBuckets = 8
	histMinExp     = -10 // lowest octave starts at 2^-10 ≈ 0.00098
	histMaxExp     = 20  // highest octave ends at 2^21 ≈ 2.1e6
	histOctaves    = histMaxExp - histMinExp + 1

	// NumBuckets is the fixed bucket count of every histogram:
	// underflow + the log-linear grid + overflow.
	NumBuckets = 1 + histOctaves*histSubBuckets + 1
)

// bucketOf maps a value to its bucket index. NaN, zero, negatives and
// anything below the grid land in the underflow bucket; anything at or
// above 2^(histMaxExp+1) lands in the overflow bucket.
func bucketOf(v float64) int {
	if !(v >= math.Ldexp(1, histMinExp)) {
		return 0
	}
	if v >= math.Ldexp(1, histMaxExp+1) {
		return NumBuckets - 1
	}
	e := math.Ilogb(v)
	sub := int((math.Ldexp(v, -e) - 1) * histSubBuckets) // mantissa in [1,2)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return 1 + (e-histMinExp)*histSubBuckets + sub
}

// BucketUpper returns the inclusive upper bound of bucket i — the `le`
// boundary of the Prometheus exposition. The underflow bucket's bound is
// the grid's lower edge; the overflow bucket's is +Inf.
func BucketUpper(i int) float64 {
	if i <= 0 {
		return math.Ldexp(1, histMinExp)
	}
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	i--
	e := histMinExp + i/histSubBuckets
	sub := i % histSubBuckets
	return math.Ldexp(1+float64(sub+1)/histSubBuckets, e)
}

// atomicFloat is a float64 updated through CAS on its bit pattern, so
// concurrent adders never take a lock.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a lock-free log-linear latency/size histogram: Observe is
// one atomic increment plus two CAS adds, with no allocation and no
// mutex, so it sits directly on serving hot paths. Snapshots are
// mergeable and support exact-rank quantiles (the rank is exact; the
// value is resolved to the bucket boundary, ≤ 12.5% above the true order
// statistic). The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomicFloat
	max    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.max.Max(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile returns the q-quantile of a point-in-time snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Snapshot captures the histogram's state. Buckets are loaded
// individually, so a snapshot taken under concurrent writers is a
// consistent-enough view: Count is recomputed from the captured buckets
// and always matches them exactly.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is an immutable view of a Histogram. Snapshots merge by
// bucket-wise addition (associative and commutative), which is how
// per-session histograms roll up into per-profile and global views.
type HistSnapshot struct {
	Counts [NumBuckets]int64
	Count  int64
	Sum    float64
	Max    float64
}

// Merge returns the combination of two snapshots.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	for i := range o.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Quantile returns the value at exact rank ceil(q·Count): the bucket
// boundary at or above the true order statistic, capped at the observed
// maximum. Returns 0 for an empty snapshot; q is clamped to [0, 1].
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			upper := BucketUpper(i)
			if s.Max < upper {
				return s.Max
			}
			return upper
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
