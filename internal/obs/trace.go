package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage of a block's serving path with its start time
// and duration.
type Span struct {
	Stage string
	Start time.Time
	Dur   time.Duration
}

// BlockTrace is the full per-request trace of one served block: the
// per-stage spans plus the measured end-to-end total, so the spans'
// coverage of the real latency is checkable (the acceptance bar: span
// sum within 10% of Total).
type BlockTrace struct {
	Session string
	Block   uint32
	ReqID   uint64
	Start   time.Time
	Total   time.Duration
	Spans   []Span
}

// SpanSum returns the summed duration of the trace's spans.
func (bt *BlockTrace) SpanSum() time.Duration {
	var sum time.Duration
	for _, sp := range bt.Spans {
		sum += sp.Dur
	}
	return sum
}

// spanRing is one session's fixed-capacity trace buffer: the newest
// perSession traces survive, older ones are overwritten in place.
type spanRing struct {
	mu   sync.Mutex
	buf  []BlockTrace
	next int
	full bool
}

func (rg *spanRing) record(bt BlockTrace) {
	rg.mu.Lock()
	if rg.next == len(rg.buf) {
		rg.next, rg.full = 0, true
	}
	rg.buf[rg.next] = bt
	rg.next++
	rg.mu.Unlock()
}

func (rg *spanRing) snapshot() []BlockTrace {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	n := rg.next
	if rg.full {
		n = len(rg.buf)
	}
	out := make([]BlockTrace, n)
	if rg.full {
		copy(out, rg.buf[rg.next:])
		copy(out[len(rg.buf)-rg.next:], rg.buf[:rg.next])
	} else {
		copy(out, rg.buf[:n])
	}
	return out
}

// Tracer collects BlockTraces into per-session ring buffers. Recording
// takes one short per-session mutex (never shared across sessions on the
// hot path) and no allocation beyond the caller-built trace; dumps copy
// everything out, so a dump never blocks recording for long. The session
// ring count is capped: traces for sessions beyond the cap are counted
// as dropped rather than growing the tracer without bound.
//
// Buffer ownership: Record takes ownership of the trace's Spans slice —
// the caller must not reuse or mutate it afterwards (build a fresh slice
// per block; they are small). Dump and WriteChrome return copies that
// share those Spans; treat dumped traces as read-only.
type Tracer struct {
	perSession  int
	maxSessions int

	mu    sync.Mutex
	rings map[string]*spanRing

	dropped atomic.Int64
}

// NewTracer builds a tracer keeping the last perSession traces (≤ 0:
// 256) for up to maxSessions sessions (≤ 0: 1024).
func NewTracer(perSession, maxSessions int) *Tracer {
	if perSession <= 0 {
		perSession = 256
	}
	if maxSessions <= 0 {
		maxSessions = 1024
	}
	return &Tracer{
		perSession:  perSession,
		maxSessions: maxSessions,
		rings:       make(map[string]*spanRing),
	}
}

// Record stores one block trace, taking ownership of bt.Spans. Traces
// for new sessions past the session cap are dropped (and counted).
func (t *Tracer) Record(bt BlockTrace) {
	t.mu.Lock()
	rg := t.rings[bt.Session]
	if rg == nil {
		if len(t.rings) >= t.maxSessions {
			t.mu.Unlock()
			t.dropped.Add(1)
			return
		}
		rg = &spanRing{buf: make([]BlockTrace, t.perSession)}
		t.rings[bt.Session] = rg
	}
	t.mu.Unlock()
	rg.record(bt)
}

// Dropped counts traces discarded by the session cap.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Dump returns every buffered trace, ordered by start time.
func (t *Tracer) Dump() []BlockTrace {
	t.mu.Lock()
	rings := make([]*spanRing, 0, len(t.rings))
	for _, rg := range t.rings {
		rings = append(rings, rg)
	}
	t.mu.Unlock()
	var out []BlockTrace
	for _, rg := range rings {
		out = append(out, rg.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// chromeEvent is one entry of the chrome://tracing "trace event" JSON
// format (the JSON-array flavor wrapped in {"traceEvents": [...]}).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the buffered traces as chrome://tracing-compatible
// JSON: one complete ("X") event per span, one per-block envelope event,
// and metadata events naming each session's thread lane. Timestamps are
// microseconds relative to the earliest buffered trace, so the viewer
// opens at t=0.
func (t *Tracer) WriteChrome(w io.Writer) error {
	traces := t.Dump()
	var events []chromeEvent
	tids := make(map[string]int)
	var epoch time.Time
	if len(traces) > 0 {
		epoch = traces[0].Start
	}
	us := func(at time.Time) float64 { return float64(at.Sub(epoch)) / float64(time.Microsecond) }
	for _, bt := range traces {
		tid, ok := tids[bt.Session]
		if !ok {
			tid = len(tids) + 1
			tids[bt.Session] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": "session " + bt.Session},
			})
		}
		events = append(events, chromeEvent{
			Name: "block", Ph: "X", Ts: us(bt.Start),
			Dur: float64(bt.Total) / float64(time.Microsecond),
			Pid: 1, Tid: tid,
			Args: map[string]any{"session": bt.Session, "block": bt.Block, "req_id": bt.ReqID},
		})
		for _, sp := range bt.Spans {
			events = append(events, chromeEvent{
				Name: sp.Stage, Ph: "X", Ts: us(sp.Start),
				Dur: float64(sp.Dur) / float64(time.Microsecond),
				Pid: 1, Tid: tid,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}
