package obs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage of a block's serving path with its start time
// and duration.
type Span struct {
	Stage string
	Start time.Time
	Dur   time.Duration
}

// TraceContextLen is the wire size of an encoded TraceContext.
const TraceContextLen = 16

// traceParentMask bounds the parent span ID to the 56 bits that cross
// the wire (the 16th byte carries the flag bits).
const traceParentMask = (uint64(1) << 56) - 1

// traceFlagSampled marks a context whose originator is recording spans;
// receivers adopt the trace ID so both sides land in one causal trace.
const traceFlagSampled = 0x01

// ErrBadTraceContext reports a trace-context field of the wrong size.
var ErrBadTraceContext = errors.New("obs: bad trace context")

// TraceContext is a trace's causal identity as it crosses a process
// boundary: the trace ID shared by every span of one logical request,
// the span ID of the sender-side parent, and the sampling decision.
// The 16-byte wire form is
//
//	offset 0  trace ID     uint64, little-endian (nonzero when valid)
//	offset 8  parent span  low 56 bits, little-endian
//	offset 15 flags        bit 0 = sampled
//
// A zero TraceID means "no context" — the local tracer keeps working,
// but nothing links the two processes.
type TraceContext struct {
	TraceID uint64
	Parent  uint64
	Sampled bool
}

// Valid reports whether the context carries a trace identity.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// AppendBinary appends the 16-byte wire form.
func (tc TraceContext) AppendBinary(b []byte) []byte {
	var p [TraceContextLen]byte
	binary.LittleEndian.PutUint64(p[0:8], tc.TraceID)
	binary.LittleEndian.PutUint64(p[8:16], tc.Parent&traceParentMask)
	if tc.Sampled {
		p[15] |= traceFlagSampled
	}
	return append(b, p[:]...)
}

// MaskSpanID bounds a span ID to the width that survives the wire's
// parent field. Mint local span IDs through this so a child recorded on
// the far side of the wire links back to the exact parent ID, not a
// truncated one.
func MaskSpanID(v uint64) uint64 { return v & traceParentMask }

// DecodeTraceContext parses the 16-byte wire form.
func DecodeTraceContext(p []byte) (TraceContext, error) {
	if len(p) != TraceContextLen {
		return TraceContext{}, ErrBadTraceContext
	}
	return TraceContext{
		TraceID: binary.LittleEndian.Uint64(p[0:8]),
		Parent:  binary.LittleEndian.Uint64(p[8:16]) & traceParentMask,
		Sampled: p[15]&traceFlagSampled != 0,
	}, nil
}

// BlockTrace is the full per-request trace of one served block: the
// per-stage spans plus the measured end-to-end total, so the spans'
// coverage of the real latency is checkable (the acceptance bar: span
// sum within 10% of Total).
//
// TraceID, SpanID and Parent carry the distributed-trace identity: all
// zero for a purely local trace (the pre-propagation behavior), while a
// wire-propagated context sets TraceID on both sides, SpanID on the
// originator's root and Parent on the receiver's re-parented trace.
// Proc names the process lane in chrome dumps; empty means "server".
type BlockTrace struct {
	Session string
	Block   uint32
	ReqID   uint64
	TraceID uint64
	SpanID  uint64
	Parent  uint64
	Proc    string
	Start   time.Time
	Total   time.Duration
	Spans   []Span
}

// Context returns the wire context a child process should be re-parented
// under: this trace's ID with its root span as parent.
func (bt *BlockTrace) Context() TraceContext {
	return TraceContext{TraceID: bt.TraceID, Parent: bt.SpanID, Sampled: bt.TraceID != 0}
}

// SpanSum returns the summed duration of the trace's spans.
func (bt *BlockTrace) SpanSum() time.Duration {
	var sum time.Duration
	for _, sp := range bt.Spans {
		sum += sp.Dur
	}
	return sum
}

// spanRing is one session's fixed-capacity trace buffer: the newest
// perSession traces survive, older ones are overwritten in place.
type spanRing struct {
	mu   sync.Mutex
	buf  []BlockTrace
	next int
	full bool
}

func (rg *spanRing) record(bt BlockTrace) {
	rg.mu.Lock()
	if rg.next == len(rg.buf) {
		rg.next, rg.full = 0, true
	}
	rg.buf[rg.next] = bt
	rg.next++
	rg.mu.Unlock()
}

func (rg *spanRing) snapshot() []BlockTrace {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	n := rg.next
	if rg.full {
		n = len(rg.buf)
	}
	out := make([]BlockTrace, n)
	if rg.full {
		copy(out, rg.buf[rg.next:])
		copy(out[len(rg.buf)-rg.next:], rg.buf[:rg.next])
	} else {
		copy(out, rg.buf[:n])
	}
	return out
}

// Tracer collects BlockTraces into per-session ring buffers. Recording
// takes one short per-session mutex (never shared across sessions on the
// hot path) and no allocation beyond the caller-built trace; dumps copy
// everything out, so a dump never blocks recording for long. The session
// ring count is capped: traces for sessions beyond the cap are counted
// as dropped rather than growing the tracer without bound.
//
// Buffer ownership: Record takes ownership of the trace's Spans slice —
// the caller must not reuse or mutate it afterwards (build a fresh slice
// per block; they are small). Dump and WriteChrome return copies that
// share those Spans; treat dumped traces as read-only.
type Tracer struct {
	perSession  int
	maxSessions int

	mu    sync.Mutex
	rings map[string]*spanRing

	dropped atomic.Int64
}

// NewTracer builds a tracer keeping the last perSession traces (≤ 0:
// 256) for up to maxSessions sessions (≤ 0: 1024).
func NewTracer(perSession, maxSessions int) *Tracer {
	if perSession <= 0 {
		perSession = 256
	}
	if maxSessions <= 0 {
		maxSessions = 1024
	}
	return &Tracer{
		perSession:  perSession,
		maxSessions: maxSessions,
		rings:       make(map[string]*spanRing),
	}
}

// Record stores one block trace, taking ownership of bt.Spans. Traces
// for new sessions past the session cap are dropped (and counted).
func (t *Tracer) Record(bt BlockTrace) {
	t.mu.Lock()
	rg := t.rings[bt.Session]
	if rg == nil {
		if len(t.rings) >= t.maxSessions {
			t.mu.Unlock()
			t.dropped.Add(1)
			return
		}
		rg = &spanRing{buf: make([]BlockTrace, t.perSession)}
		t.rings[bt.Session] = rg
	}
	t.mu.Unlock()
	rg.record(bt)
}

// Dropped counts traces discarded by the session cap.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Dump returns every buffered trace, ordered by start time.
func (t *Tracer) Dump() []BlockTrace { return t.DumpFiltered("", 0) }

// DumpFiltered returns buffered traces ordered by start time, optionally
// restricted to one session (empty = all) and truncated to the newest
// limit traces (≤ 0 = unlimited).
func (t *Tracer) DumpFiltered(session string, limit int) []BlockTrace {
	t.mu.Lock()
	rings := make([]*spanRing, 0, len(t.rings))
	if session != "" {
		if rg := t.rings[session]; rg != nil {
			rings = append(rings, rg)
		}
	} else {
		for _, rg := range t.rings {
			rings = append(rings, rg)
		}
	}
	t.mu.Unlock()
	var out []BlockTrace
	for _, rg := range rings {
		out = append(out, rg.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// chromeEvent is one entry of the chrome://tracing "trace event" JSON
// format (the JSON-array flavor wrapped in {"traceEvents": [...]}).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the buffered traces as chrome://tracing-compatible
// JSON; see WriteChromeTraces.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChromeTraces(w, t.Dump())
}

// WriteChromeTraces renders traces as chrome://tracing-compatible JSON:
// one complete ("X") event per span, one per-block envelope event, and
// metadata events naming each process and session lane. Traces from
// different processes (BlockTrace.Proc; empty = "server") land on
// separate pids, so a merged client+server dump renders as two aligned
// process tracks, and every event of a wire-propagated trace carries its
// trace_id — a block's whole life is one greppable identity across both
// lanes. Timestamps are microseconds relative to the earliest trace, so
// the viewer opens at t=0.
func WriteChromeTraces(w io.Writer, traces []BlockTrace) error {
	var events []chromeEvent
	type lane struct{ proc, session string }
	pids := make(map[string]int)
	tids := make(map[lane]int)
	var epoch time.Time
	for i, bt := range traces {
		if i == 0 || bt.Start.Before(epoch) {
			epoch = bt.Start
		}
	}
	us := func(at time.Time) float64 { return float64(at.Sub(epoch)) / float64(time.Microsecond) }
	for _, bt := range traces {
		proc := bt.Proc
		if proc == "" {
			proc = "server"
		}
		pid, ok := pids[proc]
		if !ok {
			pid = len(pids) + 1
			pids[proc] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": proc},
			})
		}
		ln := lane{proc, bt.Session}
		tid, ok := tids[ln]
		if !ok {
			tid = len(tids) + 1
			tids[ln] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": "session " + bt.Session},
			})
		}
		args := map[string]any{"session": bt.Session, "block": bt.Block, "req_id": bt.ReqID}
		if bt.TraceID != 0 {
			args["trace_id"] = hexID(bt.TraceID)
			if bt.SpanID != 0 {
				args["span_id"] = hexID(bt.SpanID)
			}
			if bt.Parent != 0 {
				args["parent_span"] = hexID(bt.Parent)
			}
		}
		events = append(events, chromeEvent{
			Name: "block", Ph: "X", Ts: us(bt.Start),
			Dur: float64(bt.Total) / float64(time.Microsecond),
			Pid: pid, Tid: tid,
			Args: args,
		})
		var spanArgs map[string]any
		if bt.TraceID != 0 {
			spanArgs = map[string]any{"trace_id": hexID(bt.TraceID)}
		}
		for _, sp := range bt.Spans {
			events = append(events, chromeEvent{
				Name: sp.Stage, Ph: "X", Ts: us(sp.Start),
				Dur: float64(sp.Dur) / float64(time.Microsecond),
				Pid: pid, Tid: tid,
				Args: spanArgs,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}

// hexID renders a trace or span ID in the fixed-width hex form used in
// trace dumps.
func hexID(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
