package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestDebugPlane(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("quhe_wire_frames_total", "", "dir", "in").Add(5)
	tr := NewTracer(4, 0)
	tr.Record(mkTrace("s", 1, time.Unix(10, 0)))
	ds, err := ServeDebug("127.0.0.1:0", DebugConfig{
		Registry: reg,
		Tracer:   tr,
		Plan:     func() any { return map[string]any{"lambda": 65536} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	code, ctype, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type %q", ctype)
	}
	if !strings.Contains(body, `quhe_wire_frames_total{dir="in"} 5`) {
		t.Errorf("/metrics missing counter sample:\n%s", body)
	}

	code, ctype, body = get(t, base+"/debug/plan")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/plan status %d content-type %q", code, ctype)
	}
	if !strings.Contains(body, "65536") {
		t.Errorf("/debug/plan body missing plan content: %s", body)
	}

	code, _, body = get(t, base+"/debug/trace")
	if code != 200 || !strings.Contains(body, "traceEvents") {
		t.Fatalf("/debug/trace status %d body %q", code, body)
	}

	code, _, _ = get(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestDebugTraceParams(t *testing.T) {
	tr := NewTracer(4, 0)
	tr.Record(mkTrace("alpha", 1, time.Unix(10, 0)))
	tr.Record(mkTrace("beta", 2, time.Unix(11, 0)))
	ds, err := ServeDebug("127.0.0.1:0", DebugConfig{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	// Valid filters narrow the dump.
	code, _, body := get(t, base+"/debug/trace?session=alpha&limit=10")
	if code != 200 {
		t.Fatalf("filtered dump status %d", code)
	}
	if !strings.Contains(body, "alpha") || strings.Contains(body, "beta") {
		t.Errorf("session filter not applied: %s", body)
	}

	// Malformed parameters are rejected with 400, not served or ignored.
	for _, q := range []string{
		"?limit=0", "?limit=-1", "?limit=abc", "?limit=100001",
		"?session=" + strings.Repeat("x", 257),
		"?session=a%00b",
	} {
		if code, _, _ := get(t, base+"/debug/trace"+q); code != 400 {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}

func TestDebugKeyLedgerAndSLO(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", DebugConfig{
		KeyLedger: func() any { return map[string]int{"withdrawals": 7} },
		SLO:       func() any { return []string{"availability"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	code, ctype, body := get(t, base+"/debug/keyledger")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") || !strings.Contains(body, "7") {
		t.Errorf("/debug/keyledger = %d %q %q", code, ctype, body)
	}
	code, ctype, body = get(t, base+"/debug/slo")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") || !strings.Contains(body, "availability") {
		t.Errorf("/debug/slo = %d %q %q", code, ctype, body)
	}
}

func TestDebugPlaneNilHooks(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", DebugConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()
	if code, _, _ := get(t, base+"/debug/plan"); code != 404 {
		t.Errorf("/debug/plan without Plan hook: status %d, want 404", code)
	}
	if code, _, _ := get(t, base+"/debug/trace"); code != 404 {
		t.Errorf("/debug/trace without Tracer: status %d, want 404", code)
	}
	if code, _, _ := get(t, base+"/debug/keyledger"); code != 404 {
		t.Errorf("/debug/keyledger without hook: status %d, want 404", code)
	}
	if code, _, _ := get(t, base+"/debug/slo"); code != 404 {
		t.Errorf("/debug/slo without hook: status %d, want 404", code)
	}
	if code, _, body := get(t, base+"/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics without Registry: status %d body %q, want empty 200", code, body)
	}
}
