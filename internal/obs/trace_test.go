package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func mkTrace(session string, block uint32, at time.Time) BlockTrace {
	return BlockTrace{
		Session: session,
		Block:   block,
		ReqID:   uint64(block),
		Start:   at,
		Total:   3 * time.Millisecond,
		Spans: []Span{
			{Stage: "decode", Start: at, Dur: time.Millisecond},
			{Stage: "eval", Start: at.Add(time.Millisecond), Dur: 2 * time.Millisecond},
		},
	}
}

func TestSpanSum(t *testing.T) {
	bt := mkTrace("s", 1, time.Now())
	if bt.SpanSum() != 3*time.Millisecond {
		t.Fatalf("SpanSum = %v, want 3ms", bt.SpanSum())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4, 0)
	base := time.Unix(0, 0)
	for i := uint32(0); i < 10; i++ {
		tr.Record(mkTrace("s", i, base.Add(time.Duration(i)*time.Second)))
	}
	got := tr.Dump()
	if len(got) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(got))
	}
	for i, bt := range got {
		if want := uint32(6 + i); bt.Block != want {
			t.Errorf("trace %d: block %d, want %d (newest must win)", i, bt.Block, want)
		}
	}
}

func TestSessionCapDrops(t *testing.T) {
	tr := NewTracer(2, 3)
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		tr.Record(mkTrace(fmt.Sprintf("s%d", i), 0, base.Add(time.Duration(i)*time.Second)))
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if got := len(tr.Dump()); got != 3 {
		t.Fatalf("Dump kept %d traces, want 3", got)
	}
	// Existing sessions keep recording past the cap.
	tr.Record(mkTrace("s0", 1, base.Add(10*time.Second)))
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("recording into an existing session must not drop (Dropped=%d)", got)
	}
}

func TestDumpOrderedByStart(t *testing.T) {
	tr := NewTracer(8, 0)
	base := time.Unix(100, 0)
	tr.Record(mkTrace("b", 2, base.Add(2*time.Second)))
	tr.Record(mkTrace("a", 1, base.Add(1*time.Second)))
	tr.Record(mkTrace("c", 3, base.Add(3*time.Second)))
	got := tr.Dump()
	for i := 1; i < len(got); i++ {
		if got[i].Start.Before(got[i-1].Start) {
			t.Fatalf("Dump not sorted by start time at %d", i)
		}
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTracer(8, 0)
	base := time.Unix(50, 0)
	tr.Record(mkTrace("sess-a", 7, base))
	tr.Record(mkTrace("sess-b", 9, base.Add(time.Second)))
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, blocks, spans int
	tidsSeen := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				continue
			}
			meta++
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name %q", ev.Name)
			}
		case "X":
			if ev.Ts < 0 {
				t.Errorf("event %q has negative ts %g (timestamps must be relative to earliest)", ev.Name, ev.Ts)
			}
			tidsSeen[ev.Tid] = true
			if ev.Name == "block" {
				blocks++
				if ev.Dur != 3000 {
					t.Errorf("block dur = %g µs, want 3000", ev.Dur)
				}
				if _, ok := ev.Args["session"]; !ok {
					t.Error("block event missing session arg")
				}
			} else {
				spans++
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || blocks != 2 || spans != 4 {
		t.Fatalf("meta/blocks/spans = %d/%d/%d, want 2/2/4", meta, blocks, spans)
	}
	if len(tidsSeen) != 2 {
		t.Fatalf("sessions must land on distinct tid lanes, saw %d", len(tidsSeen))
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewTracer(0, 0).WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("empty tracer must still emit valid JSON")
	}
}
