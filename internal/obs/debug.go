package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugConfig wires the debug plane's handlers. Every field is optional:
// a nil Registry serves an empty /metrics, a nil Tracer 404s
// /debug/trace, a nil Plan 404s /debug/plan.
type DebugConfig struct {
	// Registry backs /metrics (Prometheus text exposition format).
	Registry *Registry
	// Tracer backs /debug/trace (chrome://tracing JSON).
	Tracer *Tracer
	// Plan, when set, is marshaled to JSON at /debug/plan — the hook the
	// edge server points at its controller's current Plan.
	Plan func() any
}

// DebugServer is the opt-in HTTP debug plane: /metrics, /debug/pprof/*,
// /debug/plan and /debug/trace on one listener. It exists only when
// explicitly configured (edge.ServerConfig.DebugAddr); bind it to
// loopback unless the scrape network is trusted — it serves operational
// internals (latency profiles, session counts, pprof) with no
// authentication.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr and serves the debug plane until Close.
func ServeDebug(addr string, cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			_ = cfg.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/plan", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Plan == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Plan())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Tracer == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.Tracer.WriteChrome(w)
	})
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the debug plane.
func (d *DebugServer) Close() error { return d.srv.Close() }
