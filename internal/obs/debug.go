package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugConfig wires the debug plane's handlers. Every field is optional:
// a nil Registry serves an empty /metrics, a nil Tracer 404s
// /debug/trace, a nil Plan 404s /debug/plan, and likewise for the
// KeyLedger and SLO hooks.
type DebugConfig struct {
	// Registry backs /metrics (Prometheus text exposition format).
	Registry *Registry
	// Tracer backs /debug/trace (chrome://tracing JSON).
	Tracer *Tracer
	// Plan, when set, is marshaled to JSON at /debug/plan — the hook the
	// edge server points at its controller's current Plan.
	Plan func() any
	// KeyLedger, when set, is marshaled to JSON at /debug/keyledger —
	// the QKD key-flow ledger's attributed-withdrawal snapshot.
	KeyLedger func() any
	// SLO, when set, is marshaled to JSON at /debug/slo — the SLO
	// tracker's objectives, attainment and burn rates.
	SLO func() any
}

// traceDumpMaxLimit bounds the limit= query parameter on /debug/trace.
const traceDumpMaxLimit = 100000

// traceDumpParams validates the /debug/trace query parameters. session=
// selects one session's ring (at most 256 visible bytes, matching wire
// session IDs); limit= truncates to the newest N traces (1..100000).
func traceDumpParams(r *http.Request) (session string, limit int, err error) {
	q := r.URL.Query()
	session = q.Get("session")
	if len(session) > 256 {
		return "", 0, fmt.Errorf("session: longer than 256 bytes")
	}
	for _, c := range session {
		if c < 0x20 || c == 0x7f {
			return "", 0, fmt.Errorf("session: control character %q", c)
		}
	}
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil {
			return "", 0, fmt.Errorf("limit: %q is not an integer", raw)
		}
		if limit < 1 || limit > traceDumpMaxLimit {
			return "", 0, fmt.Errorf("limit: %d outside [1, %d]", limit, traceDumpMaxLimit)
		}
	}
	return session, limit, nil
}

// jsonHandler renders fn's value as indented JSON, 404ing when fn is nil.
func jsonHandler(fn func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if fn == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fn())
	}
}

// DebugServer is the opt-in HTTP debug plane: /metrics, /debug/pprof/*,
// /debug/plan and /debug/trace on one listener. It exists only when
// explicitly configured (edge.ServerConfig.DebugAddr); bind it to
// loopback unless the scrape network is trusted — it serves operational
// internals (latency profiles, session counts, pprof) with no
// authentication.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr and serves the debug plane until Close.
func ServeDebug(addr string, cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			_ = cfg.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/plan", jsonHandler(cfg.Plan))
	mux.HandleFunc("/debug/keyledger", jsonHandler(cfg.KeyLedger))
	mux.HandleFunc("/debug/slo", jsonHandler(cfg.SLO))
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Tracer == nil {
			http.NotFound(w, nil)
			return
		}
		session, limit, err := traceDumpParams(r)
		if err != nil {
			http.Error(w, "bad query parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTraces(w, cfg.Tracer.DumpFiltered(session, limit))
	})
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the debug plane.
func (d *DebugServer) Close() error { return d.srv.Close() }
