package obs

import (
	"sync"
	"time"
)

// DefaultSLOWindows are the burn-rate windows tracked when a tracker is
// built without explicit ones: a fast window that pages on sharp budget
// burn and a slow one that catches sustained slow burn (the classic
// multi-window pairing).
var DefaultSLOWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// SLOTracker measures one service-level objective as a stream of
// good/bad events: cumulative attainment since start plus per-second
// buckets covering the largest configured window, from which windowed
// attainment and burn rates are derived. A burn rate of 1.0 means the
// error budget (1 − objective) is being consumed exactly as fast as the
// objective allows; multi-window burn-rate alerting compares a fast and
// a slow window against thresholds. Safe for concurrent use; Observe is
// a mutex-guarded counter bump, cheap enough for per-request paths.
type SLOTracker struct {
	name      string
	objective float64
	windows   []time.Duration

	mu        sync.Mutex
	good, bad int64
	buckets   []sloBucket // per-second ring, len = max window seconds
}

type sloBucket struct {
	sec       int64 // unix second this bucket currently holds; 0 = empty
	good, bad int64
}

// NewSLOTracker builds a tracker for one objective (target good ratio in
// (0,1], e.g. 0.99). Windows default to DefaultSLOWindows; the largest
// window bounds the bucket ring.
func NewSLOTracker(name string, objective float64, windows ...time.Duration) *SLOTracker {
	if objective <= 0 || objective > 1 {
		objective = 0.99
	}
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	max := time.Duration(0)
	for _, w := range windows {
		if w > max {
			max = w
		}
	}
	secs := int(max / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &SLOTracker{
		name:      name,
		objective: objective,
		windows:   windows,
		buckets:   make([]sloBucket, secs),
	}
}

// Name returns the tracker's objective name.
func (t *SLOTracker) Name() string { return t.name }

// Observe records one event against the objective.
func (t *SLOTracker) Observe(good bool) { t.observeAt(time.Now(), good) }

func (t *SLOTracker) observeAt(at time.Time, good bool) {
	sec := at.Unix()
	t.mu.Lock()
	b := &t.buckets[int(sec%int64(len(t.buckets)))]
	if b.sec != sec {
		b.sec, b.good, b.bad = sec, 0, 0
	}
	if good {
		t.good++
		b.good++
	} else {
		t.bad++
		b.bad++
	}
	t.mu.Unlock()
}

// Good and Bad return the cumulative event counts.
func (t *SLOTracker) Good() int64 { t.mu.Lock(); defer t.mu.Unlock(); return t.good }

// Bad returns the cumulative count of events that missed the objective.
func (t *SLOTracker) Bad() int64 { t.mu.Lock(); defer t.mu.Unlock(); return t.bad }

// Attainment returns the cumulative good ratio (1 when no events yet).
func (t *SLOTracker) Attainment() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ratio(t.good, t.bad)
}

// Burn returns the burn rate over the trailing window: the window's bad
// ratio divided by the error budget (1 − objective). 0 when the window
// holds no events.
func (t *SLOTracker) Burn(window time.Duration) float64 {
	good, bad := t.windowCounts(time.Now(), window)
	if good+bad == 0 {
		return 0
	}
	budget := 1 - t.objective
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(good+bad)) / budget
}

func (t *SLOTracker) windowCounts(now time.Time, window time.Duration) (good, bad int64) {
	secs := int(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > len(t.buckets) {
		secs = len(t.buckets)
	}
	nowSec := now.Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < secs; i++ {
		sec := nowSec - int64(i)
		b := &t.buckets[int(sec%int64(len(t.buckets)))]
		if b.sec == sec {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

func ratio(good, bad int64) float64 {
	if good+bad == 0 {
		return 1
	}
	return float64(good) / float64(good+bad)
}

// SLOWindowSnapshot is one window's attainment and burn rate.
type SLOWindowSnapshot struct {
	Window     string  `json:"window"`
	Good       int64   `json:"good"`
	Bad        int64   `json:"bad"`
	Attainment float64 `json:"attainment"`
	BurnRate   float64 `json:"burn_rate"`
}

// SLOSnapshot is one objective's full state: cumulative counts plus each
// configured window's burn rate.
type SLOSnapshot struct {
	Name       string              `json:"slo"`
	Objective  float64             `json:"objective"`
	Good       int64               `json:"good"`
	Bad        int64               `json:"bad"`
	Attainment float64             `json:"attainment"`
	Windows    []SLOWindowSnapshot `json:"windows"`
}

// Snapshot captures the tracker's current state.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	now := time.Now()
	t.mu.Lock()
	snap := SLOSnapshot{
		Name:       t.name,
		Objective:  t.objective,
		Good:       t.good,
		Bad:        t.bad,
		Attainment: ratio(t.good, t.bad),
	}
	t.mu.Unlock()
	budget := 1 - t.objective
	if budget <= 0 {
		budget = 1e-9
	}
	for _, w := range t.windows {
		good, bad := t.windowCounts(now, w)
		ws := SLOWindowSnapshot{Window: w.String(), Good: good, Bad: bad, Attainment: ratio(good, bad)}
		if good+bad > 0 {
			ws.BurnRate = (float64(bad) / float64(good+bad)) / budget
		}
		snap.Windows = append(snap.Windows, ws)
	}
	return snap
}

// SLOSet is a named collection of SLO trackers sharing one registry:
// adding an objective registers its quhe_slo_* series (events by result,
// attainment gauge, per-window burn-rate gauges) under a bounded "slo"
// label. Add is idempotent by name, so lazily discovered objectives
// (per-profile latency SLOs) can be added from the serving path.
type SLOSet struct {
	reg *Registry

	mu    sync.Mutex
	slos  map[string]*SLOTracker
	order []string
}

// NewSLOSet builds an empty set; reg may be nil (no series registered).
func NewSLOSet(reg *Registry) *SLOSet {
	return &SLOSet{reg: reg, slos: make(map[string]*SLOTracker)}
}

// Add returns the tracker registered under name, creating it (and its
// metric series) on first use.
func (s *SLOSet) Add(name string, objective float64, windows ...time.Duration) *SLOTracker {
	s.mu.Lock()
	if t, ok := s.slos[name]; ok {
		s.mu.Unlock()
		return t
	}
	t := NewSLOTracker(name, objective, windows...)
	s.slos[name] = t
	s.order = append(s.order, name)
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.CounterFunc("quhe_slo_events_total",
			"SLO events by objective and result.",
			func() float64 { return float64(t.Good()) }, "slo", name, "result", "good")
		s.reg.CounterFunc("quhe_slo_events_total",
			"SLO events by objective and result.",
			func() float64 { return float64(t.Bad()) }, "slo", name, "result", "bad")
		s.reg.GaugeFunc("quhe_slo_attainment",
			"Cumulative SLO attainment (good / total, 1 when idle).",
			t.Attainment, "slo", name)
		for _, w := range t.windows {
			w := w
			s.reg.GaugeFunc("quhe_slo_burn_rate",
				"Windowed SLO burn rate (bad ratio over error budget).",
				func() float64 { return t.Burn(w) }, "slo", name, "window", w.String())
		}
	}
	return t
}

// Get returns the tracker for name, or nil when absent.
func (s *SLOSet) Get(name string) *SLOTracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slos[name]
}

// Snapshot captures every tracker in insertion order — the /debug/slo
// payload.
func (s *SLOSet) Snapshot() []SLOSnapshot {
	s.mu.Lock()
	trackers := make([]*SLOTracker, 0, len(s.order))
	for _, name := range s.order {
		trackers = append(trackers, s.slos[name])
	}
	s.mu.Unlock()
	out := make([]SLOSnapshot, 0, len(trackers))
	for _, t := range trackers {
		out = append(out, t.Snapshot())
	}
	return out
}
