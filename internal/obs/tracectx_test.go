package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: 1, Parent: 2, Sampled: true},
		{TraceID: 0xdeadbeefcafef00d, Parent: traceParentMask, Sampled: false},
		{TraceID: 1<<64 - 1, Parent: 0, Sampled: true},
		{},
	}
	for _, tc := range cases {
		b := tc.AppendBinary(nil)
		if len(b) != TraceContextLen {
			t.Fatalf("encoded %d bytes, want %d", len(b), TraceContextLen)
		}
		got, err := DecodeTraceContext(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", tc, err)
		}
		if got != tc {
			t.Errorf("round trip %+v → %+v", tc, got)
		}
	}
}

func TestTraceContextParentMasked(t *testing.T) {
	// Parent IDs wider than 56 bits lose their high byte on the wire —
	// the flags byte owns it — so encoding must mask deterministically.
	tc := TraceContext{TraceID: 7, Parent: 1<<64 - 1, Sampled: true}
	got, err := DecodeTraceContext(tc.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Parent != traceParentMask {
		t.Errorf("parent %x, want masked %x", got.Parent, traceParentMask)
	}
	if !got.Sampled {
		t.Error("sampled flag lost")
	}
}

func TestTraceContextDecodeErrors(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 64} {
		if _, err := DecodeTraceContext(make([]byte, n)); err == nil {
			t.Errorf("decode of %d bytes succeeded, want error", n)
		}
	}
}

func TestTraceContextValid(t *testing.T) {
	if (TraceContext{}).Valid() {
		t.Error("zero context must be invalid")
	}
	if !(TraceContext{TraceID: 1}).Valid() {
		t.Error("nonzero trace ID must be valid")
	}
}

func TestBlockTraceContext(t *testing.T) {
	bt := BlockTrace{TraceID: 11, SpanID: 22, Parent: 33}
	tc := bt.Context()
	if tc.TraceID != 11 || tc.Parent != 22 || !tc.Sampled {
		t.Errorf("Context() = %+v, want {11 22 true}", tc)
	}
	var zero BlockTrace
	if zero.Context().Valid() || zero.Context().Sampled {
		t.Error("zero trace must yield an invalid, unsampled context")
	}
}

func TestDumpFiltered(t *testing.T) {
	tr := NewTracer(8, 0)
	base := time.Unix(0, 0)
	for i := uint32(0); i < 4; i++ {
		tr.Record(mkTrace("a", i, base.Add(time.Duration(i)*time.Second)))
	}
	tr.Record(mkTrace("b", 100, base.Add(10*time.Second)))

	if got := tr.DumpFiltered("a", 0); len(got) != 4 {
		t.Fatalf("session filter kept %d traces, want 4", len(got))
	}
	got := tr.DumpFiltered("a", 2)
	if len(got) != 2 {
		t.Fatalf("limit kept %d traces, want 2", len(got))
	}
	// The newest traces must survive truncation.
	if got[0].Block != 2 || got[1].Block != 3 {
		t.Errorf("limit kept blocks %d,%d, want 2,3", got[0].Block, got[1].Block)
	}
	if got := tr.DumpFiltered("nope", 0); len(got) != 0 {
		t.Errorf("unknown session returned %d traces", len(got))
	}
}

func TestWriteChromeMergedProcs(t *testing.T) {
	// A merged client+server dump: same trace ID on both sides, distinct
	// process lanes.
	base := time.Unix(0, 0)
	client := mkTrace("s", 1, base)
	client.Proc = "client"
	client.TraceID, client.SpanID = 0xabc, 0x111
	server := mkTrace("s", 1, base.Add(time.Millisecond))
	server.TraceID, server.Parent = 0xabc, 0x111

	var b strings.Builder
	if err := WriteChromeTraces(&b, []BlockTrace{client, server}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"name":"client"`, `"name":"server"`,
		`"trace_id":"` + hexID(0xabc) + `"`,
		`"parent_span":"` + hexID(0x111) + `"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged dump missing %s", want)
		}
	}
}
