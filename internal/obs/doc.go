// Package obs is the stdlib-only observability substrate of the QuHE
// serving stack: a lock-cheap metrics registry (atomic counters, gauges
// and log-linear histograms with mergeable snapshots and exact-rank
// quantiles), distributed per-request span tracing (a 16-byte wire
// TraceContext plus chrome://tracing export that merges client and
// server process lanes into single causal traces), SLO trackers
// (attainment and multi-window burn rates), and the opt-in HTTP debug
// plane serving /metrics, /debug/pprof/*, /debug/trace, /debug/slo,
// /debug/keyledger and /debug/plan. Every layer publishes into it — the
// serve scheduler,
// per-profile evaluator pools, the edge wire path, the QKD key centre,
// the ring worker pool and the control plane's replanner — and the
// control loop reads its histogram quantiles back as planning inputs, so
// the paper's utility-cost optimization runs on measured tail latency
// rather than modeled means alone.
//
// # Metric naming conventions
//
// Every metric is prefixed `quhe_` and named `quhe_<subsystem>_<what>`
// with base units in the name: `_seconds` for durations, `_bytes` for
// sizes, `_total` for counters. Gauges carry no suffix. Subsystems in
// use: `serve` (scheduler/store), `eval` (per-profile evaluation),
// `stage` (per-stage serving latency), `wire` (frames and bytes on the
// socket), `qkd` (key-centre stock and flow), `keyledger` (per-cause
// withdrawal attribution), `slo` (objectives), `control` (replanning),
// `ring` (NTT worker pool). Examples:
//
//	quhe_serve_queue_depth                 gauge
//	quhe_serve_queue_wait_seconds          histogram
//	quhe_serve_shed_total{reason="..."}    counter
//	quhe_eval_seconds{profile="..."}       histogram
//	quhe_stage_seconds{stage="eval"}       histogram
//	quhe_wire_bytes_total{dir="in"}        counter
//	quhe_qkd_stock_bytes                   gauge
//	quhe_keyledger_bytes_total{cause="…"}  counter (cause ∈ qkd.Causes())
//	quhe_slo_attainment{slo="..."}         gauge
//	quhe_slo_burn_rate{slo,window}         gauge
//	quhe_control_replan_seconds            histogram
//
// # Label cardinality rules
//
// Labels multiply series; every label value set must be small and
// bounded at build time. Allowed label domains: security profile IDs
// (the registry's fixed set), pipeline stage names, wire direction
// (in/out), protocol generation (v3/gob), shed reason, serve.Code
// strings, withdrawal causes (qkd.Causes(), five values), SLO names
// (availability plus latency-<profile>) and SLO window labels (the
// fixed DefaultSLOWindows set). Session IDs, request IDs, block
// numbers, routes and anything else
// client-controlled are forbidden as label values — per-session data
// belongs in the control plane's telemetry registry or in traces, not in
// metric labels. The registry keeps series forever (Prometheus semantics:
// a counter that disappears looks like a reset), which is only sound
// under this rule.
//
// # Histograms
//
// All histograms share one fixed log-linear bucket layout (8 linear
// sub-buckets per power-of-two octave, see NumBuckets), which makes
// snapshots mergeable by bucket-wise addition — per-session histograms
// roll up into per-profile and global views, and merging is associative
// and commutative (property-tested). Quantiles are exact-rank: the rank
// ceil(q·n) is exact and the returned value is the containing bucket's
// upper bound (capped at the observed max), at most 12.5% above the true
// order statistic. Observe is wait-free: one atomic increment and two
// CAS adds, no locks, no allocation.
//
// # Span lifecycle and buffer ownership
//
// A BlockTrace is built by the serving path while the block is in
// flight (stage timestamps stamped inline), then handed to
// Tracer.Record exactly once, after the reply frame reached the socket.
// Record takes ownership of the Spans slice: the caller must not reuse
// or mutate it afterwards. Traces land in fixed-capacity per-session
// ring buffers (newest wins); Dump and WriteChrome copy the ring
// contents out but share the recorded Spans slices, so dumped traces
// are read-only. The session ring count is capped; traces beyond the
// cap are dropped and counted, never buffered unboundedly.
//
// # Debug plane security posture
//
// The debug plane is off unless explicitly configured
// (edge.ServerConfig.DebugAddr) and should bind loopback
// ("127.0.0.1:...") unless the scrape network is trusted: it exposes
// operational internals — latency distributions, session counts, the
// controller's live plan, pprof profiling — without authentication.
package obs
