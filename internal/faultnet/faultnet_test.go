package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory connection.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// schedule replays a fixed per-direction call sequence against a wrapped
// conn and records which faults fired at which call index.
func schedule(t *testing.T, seed int64, spec Spec, calls int) []plan {
	t.Helper()
	inj := New(Config{Seed: seed, Write: spec})
	a, b := pipePair(t)
	go io.Copy(io.Discard, b)
	c := inj.Wrap(a)
	plans := make([]plan, 0, calls)
	for i := 0; i < calls; i++ {
		plans = append(plans, c.draw(spec, 64, true))
	}
	return plans
}

func TestDeterministicSchedule(t *testing.T) {
	spec := Spec{
		DelayProb:   0.3,
		DelayMin:    time.Microsecond,
		DelayMax:    5 * time.Microsecond,
		PartialProb: 0.2,
		CorruptProb: 0.1,
		DropProb:    0.05,
	}
	first := schedule(t, 42, spec, 200)
	second := schedule(t, 42, spec, 200)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("call %d: schedule diverged: %+v vs %+v", i, first[i], second[i])
		}
	}
	other := schedule(t, 43, spec, 200)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestZeroSpecIsTransparent(t *testing.T) {
	inj := New(Config{Seed: 1})
	a, b := pipePair(t)
	c := inj.Wrap(a)
	payload := []byte("through the wire untouched")
	go func() {
		c.Write(payload)
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload altered: %q", got)
	}
	if cnt := inj.Counters(); cnt != (Counters{}) {
		t.Fatalf("zero spec fired faults: %+v", cnt)
	}
}

func TestDropClosesConn(t *testing.T) {
	inj := New(Config{Seed: 7, Write: Spec{DropProb: 1}})
	a, b := pipePair(t)
	go io.Copy(io.Discard, b)
	c := inj.Wrap(a)
	_, err := c.Write(make([]byte, 128))
	if !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want ErrInjectedDrop, got %v", err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on dropped conn succeeded")
	}
	if inj.Counters().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := New(Config{Seed: 3, Write: Spec{CorruptProb: 1}})
	a, b := pipePair(t)
	c := inj.Wrap(a)
	payload := make([]byte, 64)
	go c.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	flipped := 0
	for i := range got {
		d := got[i] ^ payload[i]
		for ; d != 0; d &= d - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", flipped)
	}
}

func TestCloseAll(t *testing.T) {
	inj := New(Config{Seed: 9})
	a1, _ := pipePair(t)
	a2, _ := pipePair(t)
	c1, c2 := inj.Wrap(a1), inj.Wrap(a2)
	if n := inj.CloseAll(); n != 2 {
		t.Fatalf("CloseAll closed %d conns, want 2", n)
	}
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("conn 1 survived CloseAll")
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("conn 2 survived CloseAll")
	}
	if n := inj.CloseAll(); n != 0 {
		t.Fatalf("second CloseAll found %d conns, want 0", n)
	}
}

func TestListenerWraps(t *testing.T) {
	inj := New(Config{Seed: 11, Read: Spec{CorruptProb: 1}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	fln := inj.Listener(ln)
	done := make(chan []byte, 1)
	go func() {
		conn, err := fln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		buf := make([]byte, 8)
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- nil
			return
		}
		done <- buf
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	sent := []byte{0, 0, 0, 0, 0, 0, 0, 0}
	if _, err := client.Write(sent); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := <-done
	if got == nil {
		t.Fatal("server read failed")
	}
	if bytes.Equal(got, sent) {
		t.Fatal("read-side corruption did not fire through the listener")
	}
}
