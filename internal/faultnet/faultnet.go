// Package faultnet injects deterministic, seeded transport faults into
// any net.Conn: delays, mid-frame connection drops, partial writes, long
// stalls and bit corruption, with independent per-direction probabilities.
// It exists so the serving stack's failure handling — deadlines,
// reconnect, session resume, checksum rejection — can be exercised by
// tests and load generators with failures that are byte-level realistic
// yet exactly reproducible from a seed.
//
// An Injector wraps connections (Wrap, Dialer, Listener); each wrapped
// connection draws its fault schedule from its own PRNG, derived from the
// injector seed and the connection's admission index, so a fixed seed
// replays the same fault sequence per connection regardless of scheduling
// between connections. Faults are decided per Read/Write call:
//
//   - delay: sleep a uniform duration in [DelayMin, DelayMax] first
//   - stall: sleep Stall first (model a half-dead peer; pair with the
//     server's IdleTimeout to exercise idle reclaim)
//   - corrupt: flip one random bit of the transferred bytes
//   - partial (writes only): transfer a random strict prefix, report the
//     short count (net.Conn writers treat short writes as errors)
//   - drop: transfer a random strict prefix of the buffer, then close the
//     connection and fail the call — a mid-frame connection loss
//
// All counters are atomic; Counters() exposes how many of each fault
// fired, so harnesses can assert the schedule actually exercised the
// paths under test.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedDrop is the error returned by a Read/Write the injector
// chose to kill; the underlying connection is closed as a side effect.
var ErrInjectedDrop = errors.New("faultnet: injected connection drop")

// Spec gives the fault probabilities for one transfer direction. All
// probabilities are per Read/Write call, evaluated independently in the
// order delay, stall, partial, corrupt, drop; zero values inject nothing.
type Spec struct {
	// DelayProb delays the call by a uniform duration in
	// [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
	// StallProb sleeps Stall before the transfer — long enough to trip a
	// peer's idle deadline, unlike the jittery DelayProb.
	StallProb float64
	Stall     time.Duration
	// PartialProb truncates a write to a strict prefix (no-op on reads
	// and on 1-byte transfers).
	PartialProb float64
	// CorruptProb flips one random bit of the transferred bytes.
	CorruptProb float64
	// DropProb transfers a strict prefix and then closes the connection.
	DropProb float64
}

func (s Spec) zero() bool {
	return s.DelayProb == 0 && s.StallProb == 0 && s.PartialProb == 0 &&
		s.CorruptProb == 0 && s.DropProb == 0
}

// Config seeds an Injector. The same seed over the same per-connection
// call sequence reproduces the same faults.
type Config struct {
	Seed  int64
	Read  Spec
	Write Spec
}

// Counters reports how many faults of each kind an injector has fired.
type Counters struct {
	Delays     int64
	Stalls     int64
	Partials   int64
	Corruption int64
	Drops      int64
}

// Injector wraps connections with a seeded fault schedule.
type Injector struct {
	cfg      Config
	connSeq  atomic.Int64
	delays   atomic.Int64
	stalls   atomic.Int64
	partials atomic.Int64
	corrupts atomic.Int64
	drops    atomic.Int64

	mu   sync.Mutex
	live map[*Conn]struct{}
}

// New builds an injector from the config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, live: make(map[*Conn]struct{})}
}

// Wrap returns conn with the injector's fault schedule applied. Each
// wrapped connection gets an independent deterministic PRNG derived from
// the injector seed and the wrap order.
func (inj *Injector) Wrap(conn net.Conn) *Conn {
	seq := inj.connSeq.Add(1)
	// splitmix64-style scramble so consecutive connection seeds are
	// decorrelated.
	s := uint64(inj.cfg.Seed) + uint64(seq)*0x9E3779B97F4A7C15
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	c := &Conn{
		Conn: conn,
		inj:  inj,
		rngR: rand.New(rand.NewSource(int64(s))),
		rngW: rand.New(rand.NewSource(int64(s ^ 0xD1B54A32D192ED03))),
	}
	inj.mu.Lock()
	inj.live[c] = struct{}{}
	inj.mu.Unlock()
	return c
}

// Dialer returns a dial function (as accepted by edge.DialConfig.Dialer)
// that dials TCP with the given timeout and wraps the result.
func (inj *Injector) Dialer(timeout time.Duration) func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		conn, err := net.DialTimeout(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		return inj.Wrap(conn), nil
	}
}

// Listener wraps a listener so every accepted connection is injected.
func (inj *Injector) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, inj: inj}
}

// CloseAll force-closes every live wrapped connection — the chaos
// "pull the plug" switch for kill-and-reconnect tests.
func (inj *Injector) CloseAll() int {
	inj.mu.Lock()
	conns := make([]*Conn, 0, len(inj.live))
	for c := range inj.live {
		conns = append(conns, c)
	}
	inj.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// Counters snapshots the fault counts fired so far.
func (inj *Injector) Counters() Counters {
	return Counters{
		Delays:     inj.delays.Load(),
		Stalls:     inj.stalls.Load(),
		Partials:   inj.partials.Load(),
		Corruption: inj.corrupts.Load(),
		Drops:      inj.drops.Load(),
	}
}

func (inj *Injector) forget(c *Conn) {
	inj.mu.Lock()
	delete(inj.live, c)
	inj.mu.Unlock()
}

type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Wrap(conn), nil
}

// Conn is a net.Conn with an attached fault schedule.
type Conn struct {
	net.Conn
	inj *Injector

	// Reads and writes run on independent goroutines, so each direction
	// draws from its own PRNG under its own lock: a direction's fault
	// schedule depends only on that direction's call sequence, never on
	// goroutine interleaving.
	muR  sync.Mutex
	rngR *rand.Rand
	muW  sync.Mutex
	rngW *rand.Rand

	closed atomic.Bool
}

// plan is one call's fault decision, drawn under mu so concurrent
// readers/writers still consume the PRNG in a serialized order.
type plan struct {
	delay   time.Duration
	stall   time.Duration
	partial int // >0: truncate transfer to this many bytes
	corrupt int // >=0: flip this bit offset (mod len), -1: none
	drop    int // >=0: transfer this prefix then kill the conn, -1: none
}

func (c *Conn) draw(spec Spec, n int, write bool) plan {
	p := plan{corrupt: -1, drop: -1}
	if spec.zero() || n == 0 {
		return p
	}
	mu, rng := &c.muR, c.rngR
	if write {
		mu, rng = &c.muW, c.rngW
	}
	mu.Lock()
	defer mu.Unlock()
	if spec.DelayProb > 0 && rng.Float64() < spec.DelayProb {
		span := spec.DelayMax - spec.DelayMin
		p.delay = spec.DelayMin
		if span > 0 {
			p.delay += time.Duration(rng.Int63n(int64(span)))
		}
	}
	if spec.StallProb > 0 && rng.Float64() < spec.StallProb {
		p.stall = spec.Stall
	}
	if write && spec.PartialProb > 0 && n > 1 && rng.Float64() < spec.PartialProb {
		p.partial = 1 + rng.Intn(n-1)
	}
	if spec.CorruptProb > 0 && rng.Float64() < spec.CorruptProb {
		p.corrupt = rng.Intn(n * 8)
	}
	if spec.DropProb > 0 && rng.Float64() < spec.DropProb {
		p.drop = rng.Intn(n)
	}
	return p
}

// Read applies the read-direction schedule: optional delay/stall first,
// then a normal read whose result may have one bit flipped, or — on a
// drop — a truncated result followed by connection close and
// ErrInjectedDrop.
func (c *Conn) Read(b []byte) (int, error) {
	p := c.draw(c.inj.cfg.Read, len(b), false)
	c.sleep(p)
	n, err := c.Conn.Read(b)
	if n > 0 && p.corrupt >= 0 {
		bit := p.corrupt % (n * 8)
		b[bit/8] ^= 1 << (bit % 8)
		c.inj.corrupts.Add(1)
	}
	if err == nil && p.drop >= 0 {
		c.inj.drops.Add(1)
		c.Close()
		if p.drop < n {
			n = p.drop
		}
		if n > 0 {
			return n, nil // deliver the prefix; the next read fails
		}
		return 0, ErrInjectedDrop
	}
	return n, err
}

// Write applies the write-direction schedule: optional delay/stall, then
// the (possibly corrupted) bytes — all of them, a partial prefix with a
// short-write count, or a drop prefix followed by close.
func (c *Conn) Write(b []byte) (int, error) {
	p := c.draw(c.inj.cfg.Write, len(b), true)
	c.sleep(p)
	out := b
	if p.corrupt >= 0 && len(b) > 0 {
		out = append([]byte(nil), b...)
		out[p.corrupt/8] ^= 1 << (p.corrupt % 8)
		c.inj.corrupts.Add(1)
	}
	if p.drop >= 0 {
		c.inj.drops.Add(1)
		if p.drop > 0 {
			c.Conn.Write(out[:p.drop])
		}
		c.Close()
		return p.drop, ErrInjectedDrop
	}
	if p.partial > 0 && p.partial < len(out) {
		c.inj.partials.Add(1)
		n, err := c.Conn.Write(out[:p.partial])
		if err != nil {
			return n, err
		}
		// Short write with no error: bufio/io.Writer callers surface
		// io.ErrShortWrite, exercising their short-write handling.
		return n, nil
	}
	n, err := c.Conn.Write(out)
	return n, err
}

func (c *Conn) sleep(p plan) {
	if p.delay > 0 {
		c.inj.delays.Add(1)
		time.Sleep(p.delay)
	}
	if p.stall > 0 {
		c.inj.stalls.Add(1)
		time.Sleep(p.stall)
	}
}

// Close closes the underlying connection and drops it from the
// injector's live set.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.inj.forget(c)
	return c.Conn.Close()
}
