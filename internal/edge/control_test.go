package edge

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quhe/internal/he/profile"
	"quhe/internal/serve"
)

// fakeControl is a scriptable control plane for wiring tests.
type fakeControl struct {
	denySetup   atomic.Bool
	denyCompute atomic.Bool
	budget      atomic.Int64
	// steer, when non-empty, is the profile granted to every empty
	// negotiation (a scripted per-route plan).
	steer atomic.Value

	bound      atomic.Bool
	admits     atomic.Int64
	observed   atomic.Int64
	negotiated atomic.Int64
	sessions   sync.Map // sessionID -> profileID from ObserveSession
}

func (f *fakeControl) BindServe(pools *serve.PoolSet, sched *serve.Scheduler, store *serve.Store) {
	if pools != nil && sched != nil && store != nil {
		f.bound.Store(true)
	}
}

func (f *fakeControl) NegotiateProfile(sessionID, requested string) (string, error) {
	f.negotiated.Add(1)
	reg := profile.Default()
	planned, _ := f.steer.Load().(string)
	if planned == "" {
		planned = reg.DefaultID()
	}
	if requested == "" {
		return planned, nil
	}
	req, ok := reg.Get(requested)
	if !ok {
		return "", serve.ErrProfileDenied
	}
	if plannedProf, ok := reg.Get(planned); ok && req.Lambda > plannedProf.Lambda {
		return planned, nil // downgrade, like the real controller
	}
	return requested, nil
}

func (f *fakeControl) ObserveSession(sessionID, profileID string) {
	f.sessions.Store(sessionID, profileID)
}

func (f *fakeControl) AdmitSession(sessionID string, resident int) error {
	if f.denySetup.Load() {
		return serve.ErrAdmissionDenied
	}
	f.admits.Add(1)
	return nil
}

func (f *fakeControl) AdmitCompute(sessionID string, usedBytes, pendingBytes int64) error {
	if f.denyCompute.Load() {
		return serve.ErrAdmissionDenied
	}
	return nil
}

func (f *fakeControl) RekeyBudget(sessionID string) int64 { return f.budget.Load() }

func (f *fakeControl) ObserveCompute(sessionID string, bytes int64, latency time.Duration, code serve.Code) {
	f.observed.Add(1)
}

func startControlledServer(t *testing.T, ctl Controller, cfg ServerConfig) *Server {
	t.Helper()
	cfg.Control = ctl
	if cfg.Model.Weights == nil {
		cfg.Model = Model{Weights: []float64{1}}
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv
}

func TestControlSetupAdmission(t *testing.T) {
	ctl := &fakeControl{}
	srv := startControlledServer(t, ctl, ServerConfig{})
	if !ctl.bound.Load() {
		t.Fatal("controller not bound to the serving plane at construction")
	}

	ctl.denySetup.Store(true)
	if _, err := Dial(srv.Addr(), "shed-me", []byte("k"), 3); !errors.Is(err, serve.ErrAdmissionDenied) {
		t.Fatalf("denied setup err = %v, want serve.ErrAdmissionDenied", err)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("%d sessions resident after denied setup", srv.Sessions())
	}

	ctl.denySetup.Store(false)
	c, err := Dial(srv.Addr(), "admit-me", []byte("k"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if ctl.admits.Load() == 0 {
		t.Error("admission hook never consulted")
	}
}

func TestControlComputeAdmission(t *testing.T) {
	ctl := &fakeControl{}
	srv := startControlledServer(t, ctl, ServerConfig{})
	c, err := Dial(srv.Addr(), "compute-admit", []byte("k"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Compute(0, []float64{0.5}); err != nil {
		t.Fatalf("admitted compute failed: %v", err)
	}
	if ctl.observed.Load() == 0 {
		t.Error("telemetry hook never observed the served block")
	}

	ctl.denyCompute.Store(true)
	if _, err := c.Compute(1, []float64{0.5}); !errors.Is(err, serve.ErrAdmissionDenied) {
		t.Errorf("denied compute err = %v, want serve.ErrAdmissionDenied", err)
	}
	// Batch requests are admitted as a whole, then per item.
	if _, err := c.ComputeBatch(2, [][]float64{{0.1}, {0.2}}); !errors.Is(err, serve.ErrAdmissionDenied) {
		t.Errorf("denied batch err = %v, want serve.ErrAdmissionDenied", err)
	}
}

// TestControlDynamicBudgetOverridesStatic pins the tentpole's budget
// plumbing: the plan's per-session budget governs the rekey demand, not
// the static RekeyBytes constant.
func TestControlDynamicBudgetOverridesStatic(t *testing.T) {
	ctl := &fakeControl{}
	// Static budget generous, dynamic budget smaller than one padded
	// block: the first compute is served, the second must demand a rekey.
	ctl.budget.Store(1000)
	srv := startControlledServer(t, ctl, ServerConfig{RekeyBytes: 1 << 30})
	c, err := Dial(srv.Addr(), "dyn-budget", []byte("k"), 6)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Compute(0, []float64{0.5}); err != nil {
		t.Fatalf("first compute: %v", err)
	}
	if _, err := c.Compute(1, []float64{0.5}); !errors.Is(err, serve.ErrRekeyRequired) {
		t.Fatalf("second compute err = %v, want serve.ErrRekeyRequired under dynamic budget", err)
	}
	// Raising the plan budget re-admits the session without a rekey.
	ctl.budget.Store(1 << 30)
	if _, err := c.Compute(2, []float64{0.5}); err != nil {
		t.Errorf("compute after budget raise: %v", err)
	}
}

// TestNilControlStaticCompat pins the compat requirement: with no
// controller the serving path behaves exactly as before the control
// plane existed — static budget enforcement, admit-until-evicted, and a
// v3 hello ack with an empty payload for a legacy (empty) hello.
func TestNilControlStaticCompat(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, RekeyBytes: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Legacy hello: empty payload in, empty payload back (bit-compatible
	// with the PR 3 handshake).
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := beginFrame(nil, frameHello, 0)
	hello, _ = finishFrame(hello, 0)
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	ftype, _, payload, err := readFrame(bufio.NewReaderSize(conn, wireBufSize), &buf)
	if err != nil || ftype != frameHello {
		t.Fatalf("hello ack: type %d err %v", ftype, err)
	}
	if len(payload) != 0 {
		t.Fatalf("hello ack payload %d bytes, want 0 (PR 3 compatible)", len(payload))
	}

	// Static budget still enforced the old way.
	c, err := Dial(srv.Addr(), "static", []byte("k"), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Compute(0, []float64{0.5}); err != nil {
		t.Fatalf("first compute: %v", err)
	}
	if _, err := c.Compute(1, []float64{0.5}); !errors.Is(err, serve.ErrRekeyRequired) {
		t.Errorf("static budget err = %v, want serve.ErrRekeyRequired", err)
	}
}
