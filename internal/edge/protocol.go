// Package edge implements a runnable distributed version of the QuHE
// system model (Fig. 1): a TCP edge server and client nodes executing the
// full pipeline — QKD-derived symmetric keys, client-side masking
// (symmetric encryption), upload, server-side transciphering into CKKS, and
// encrypted inference whose result only the client can decrypt.
//
// # Serving architecture
//
// The server is a thin protocol shell over the multi-tenant serving
// runtime in internal/serve. A request flows
//
//	connection → serve.Store (sharded sessions, LRU-capped)
//	           → serve.Scheduler (bounded queue, ErrOverloaded backpressure)
//	           → serve.EvalPool (per-worker evaluator + transcipher scratch)
//	           → transcipher/ckks core
//
// so N sessions cost key material only, while evaluator memory and
// compute parallelism are bounded by the worker pool.
//
// # Wire protocol
//
// Gob-encoded envelopes over a single TCP connection per client. Two
// generations share the wire:
//
//   - v1 (seed protocol): envelope ID 0, Setup/Compute only, one
//     synchronous request per round trip, replies in order. Still
//     accepted — v1 requests run on the shared pool with blocking
//     checkout and are never shed.
//   - v2: nonzero request IDs allow multiple in-flight requests per
//     connection with out-of-order replies matched by ID; BatchCompute
//     fans a group of blocks out across the worker pool; Rekey installs
//     fresh QKD-derived key material after the configured byte budget;
//     replies carry typed serve.Code values next to the human-readable
//     Err detail so clients can branch on failures (errors.Is against the
//     serve sentinels).
//
// Gob matches struct fields by name and ignores unknown fields, which is
// what makes the two generations interoperable: v1 peers simply never set
// (or see) the v2 fields.
//
// Transmission and computation delays are modeled (reported in replies
// using the paper's cost formulas) rather than slept, so tests and
// examples run fast.
package edge

import (
	"quhe/internal/he/ckks"
	"quhe/internal/serve"
)

// DefaultParams returns the CKKS parameter set both endpoints must share:
// depth 2 for transciphering; the affine inference model is fused into the
// transciphering coefficients, so no extra level is needed.
func DefaultParams() ckks.Params {
	p, err := ckks.NewParams(10, 25, 18, 2)
	if err != nil {
		panic("edge: invalid default params: " + err.Error())
	}
	return p
}

// KeyLen is the transciphering key length used by the runtime.
const KeyLen = 8

// MaxBatch bounds the blocks one BatchRequest may carry.
const MaxBatch = 256

// SetupRequest registers a client session: its public evaluation material
// and the HE-encrypted transciphering key. Registering an ID that is
// already live fails with serve.CodeDuplicateSession — key rotation must
// use the explicit Rekey message instead.
type SetupRequest struct {
	SessionID string
	// LogN/Depth guard against parameter mismatches between endpoints.
	LogN, Depth int
	PK          *ckks.PublicKey
	RLK         *ckks.RelinKey
	EncKey      []*ckks.Ciphertext
	Nonce       []byte
}

// SetupReply acknowledges session registration.
type SetupReply struct {
	OK  bool
	Err string
	// Code types the failure (v2; zero for v1 peers means success).
	Code serve.Code
}

// ComputeRequest uploads one symmetrically encrypted block.
type ComputeRequest struct {
	SessionID string
	Block     uint32
	Masked    []float64
	// Epoch is the key epoch the block was masked under (v2). Zero skips
	// the check (v1 clients never rekey); a stale nonzero epoch is
	// rejected with serve.CodeRekeyRequired rather than transciphered
	// into garbage.
	Epoch uint64
}

// ComputeReply returns the encrypted inference result plus the modeled
// costs of this request (the paper's delay decomposition).
type ComputeReply struct {
	Result *ckks.Ciphertext
	Err    string
	// Code types the failure (v2).
	Code serve.Code
	// RekeyNeeded advises the client that the session's key byte budget
	// is nearly exhausted and a Rekey should be scheduled.
	RekeyNeeded bool
	// ModeledTxDelay and ModeledCmpDelay report the transmission and
	// server-computation delays (seconds) this block would incur under
	// the configured cost model.
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

// BatchRequest uploads many blocks at once (v2); the server fans them out
// across the worker pool and replies once all finish.
type BatchRequest struct {
	SessionID string
	Epoch     uint64
	Blocks    []uint32
	Masked    [][]float64
}

// BatchItem is one block's result within a BatchReply. Items fail
// independently: a batch overflowing the scheduler queue sheds the excess
// items with serve.CodeOverloaded while the admitted ones complete.
type BatchItem struct {
	Result *ckks.Ciphertext
	Code   serve.Code
	Err    string
}

// BatchReply carries the per-item results plus batch-level modeled costs.
type BatchReply struct {
	Code        serve.Code
	Err         string
	Items       []BatchItem
	RekeyNeeded bool
	// Modeled delays aggregate over the whole batch: transmission of all
	// uploaded bits, computation of every successfully served block.
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

// RekeyRequest installs fresh HE-encrypted transciphering key material
// (drawn from a new qkd.KeyCenter withdrawal) for a live session,
// bumping its key epoch and resetting the byte budget.
type RekeyRequest struct {
	SessionID string
	EncKey    []*ckks.Ciphertext
	Nonce     []byte
}

// RekeyReply acknowledges a rekey with the session's new epoch.
type RekeyReply struct {
	OK    bool
	Err   string
	Code  serve.Code
	Epoch uint64
}

// envelope is the tagged union carried on the wire. ID 0 requests are
// served synchronously in connection order (v1); nonzero IDs may be
// answered out of order.
type envelope struct {
	ID      uint64
	Setup   *SetupRequest
	Compute *ComputeRequest
	Batch   *BatchRequest
	Rekey   *RekeyRequest
}

// replyEnvelope mirrors envelope for responses.
type replyEnvelope struct {
	ID      uint64
	Setup   *SetupReply
	Compute *ComputeReply
	Batch   *BatchReply
	Rekey   *RekeyReply
}
