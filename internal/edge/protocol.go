package edge

// This file holds the message types shared by every protocol generation.
// On the gob (v1/v2) path these structs are the wire format; on the
// framed v3 path they are marshalled by the hand-rolled codecs in
// wire.go. See doc.go for the protocol generations and the frame layout.

import (
	"quhe/internal/he/ckks"
	"quhe/internal/serve"
)

// DefaultParams returns the CKKS parameter set both endpoints must share:
// depth 2 for transciphering; the affine inference model is fused into the
// transciphering coefficients, so no extra level is needed.
func DefaultParams() ckks.Params {
	p, err := ckks.NewParams(10, 25, 18, 2)
	if err != nil {
		panic("edge: invalid default params: " + err.Error())
	}
	return p
}

// KeyLen is the transciphering key length used by the runtime.
const KeyLen = 8

// MaxBatch bounds the blocks one BatchRequest may carry.
const MaxBatch = 256

// SetupRequest registers a client session: its public evaluation material
// and the HE-encrypted transciphering key. Registering an ID that is
// already live fails with serve.CodeDuplicateSession — key rotation must
// use the explicit Rekey message instead.
type SetupRequest struct {
	SessionID string
	// LogN/Depth guard against parameter mismatches between endpoints.
	LogN, Depth int
	PK          *ckks.PublicKey
	RLK         *ckks.RelinKey
	EncKey      []*ckks.Ciphertext
	Nonce       []byte
}

// SetupReply acknowledges session registration.
type SetupReply struct {
	OK  bool
	Err string
	// Code types the failure (v2; zero for v1 peers means success).
	Code serve.Code
}

// ComputeRequest uploads one symmetrically encrypted block.
type ComputeRequest struct {
	SessionID string
	Block     uint32
	Masked    []float64
	// Epoch is the key epoch the block was masked under (v2). Zero skips
	// the check (v1 clients never rekey); a stale nonzero epoch is
	// rejected with serve.CodeRekeyRequired rather than transciphered
	// into garbage.
	Epoch uint64
}

// ComputeReply returns the encrypted inference result plus the modeled
// costs of this request (the paper's delay decomposition).
type ComputeReply struct {
	Result *ckks.Ciphertext
	Err    string
	// Code types the failure (v2).
	Code serve.Code
	// RekeyNeeded advises the client that the session's key byte budget
	// is nearly exhausted and a Rekey should be scheduled.
	RekeyNeeded bool
	// ModeledTxDelay and ModeledCmpDelay report the transmission and
	// server-computation delays (seconds) this block would incur under
	// the configured cost model.
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

// BatchRequest uploads many blocks at once (v2); the server fans them out
// across the worker pool and replies once all finish.
type BatchRequest struct {
	SessionID string
	Epoch     uint64
	Blocks    []uint32
	Masked    [][]float64
}

// BatchItem is one block's result within a BatchReply. Items fail
// independently: a batch overflowing the scheduler queue sheds the excess
// items with serve.CodeOverloaded while the admitted ones complete.
type BatchItem struct {
	Result *ckks.Ciphertext
	Code   serve.Code
	Err    string
}

// BatchReply carries the per-item results plus batch-level modeled costs.
type BatchReply struct {
	Code        serve.Code
	Err         string
	Items       []BatchItem
	RekeyNeeded bool
	// Modeled delays aggregate over the whole batch: transmission of all
	// uploaded bits, computation of every successfully served block.
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

// RekeyRequest installs fresh HE-encrypted transciphering key material
// (drawn from a new qkd.KeyCenter withdrawal) for a live session,
// bumping its key epoch and resetting the byte budget.
type RekeyRequest struct {
	SessionID string
	EncKey    []*ckks.Ciphertext
	Nonce     []byte
}

// RekeyReply acknowledges a rekey with the session's new epoch.
type RekeyReply struct {
	OK    bool
	Err   string
	Code  serve.Code
	Epoch uint64
}

// envelope is the tagged union carried on the wire. ID 0 requests are
// served synchronously in connection order (v1); nonzero IDs may be
// answered out of order.
type envelope struct {
	ID      uint64
	Setup   *SetupRequest
	Compute *ComputeRequest
	Batch   *BatchRequest
	Rekey   *RekeyRequest
}

// replyEnvelope mirrors envelope for responses.
type replyEnvelope struct {
	ID      uint64
	Setup   *SetupReply
	Compute *ComputeReply
	Batch   *BatchReply
	Rekey   *RekeyReply
}
