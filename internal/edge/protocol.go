// Package edge implements a runnable distributed version of the QuHE
// system model (Fig. 1): a TCP edge server and client nodes executing the
// full pipeline — QKD-derived symmetric keys, client-side masking
// (symmetric encryption), upload, server-side transciphering into CKKS, and
// encrypted inference whose result only the client can decrypt.
//
// Wire format: gob-encoded request/reply structs over a single TCP
// connection per client. Transmission and computation delays are modeled
// (reported in replies using the paper's cost formulas) rather than slept,
// so tests and examples run fast.
package edge

import (
	"quhe/internal/he/ckks"
)

// DefaultParams returns the CKKS parameter set both endpoints must share:
// depth 2 for transciphering; the affine inference model is fused into the
// transciphering coefficients, so no extra level is needed.
func DefaultParams() ckks.Params {
	p, err := ckks.NewParams(10, 25, 18, 2)
	if err != nil {
		panic("edge: invalid default params: " + err.Error())
	}
	return p
}

// KeyLen is the transciphering key length used by the runtime.
const KeyLen = 8

// SetupRequest registers a client session: its public evaluation material
// and the HE-encrypted transciphering key.
type SetupRequest struct {
	SessionID string
	// LogN/Depth guard against parameter mismatches between endpoints.
	LogN, Depth int
	PK          *ckks.PublicKey
	RLK         *ckks.RelinKey
	EncKey      []*ckks.Ciphertext
	Nonce       []byte
}

// SetupReply acknowledges session registration.
type SetupReply struct {
	OK  bool
	Err string
}

// ComputeRequest uploads one symmetrically encrypted block.
type ComputeRequest struct {
	SessionID string
	Block     uint32
	Masked    []float64
}

// ComputeReply returns the encrypted inference result plus the modeled
// costs of this request (the paper's delay decomposition).
type ComputeReply struct {
	Result *ckks.Ciphertext
	Err    string
	// ModeledTxDelay and ModeledCmpDelay report the transmission and
	// server-computation delays (seconds) this block would incur under
	// the configured cost model.
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

// envelope is the tagged union carried on the wire.
type envelope struct {
	Setup   *SetupRequest
	Compute *ComputeRequest
}

// replyEnvelope mirrors envelope for responses.
type replyEnvelope struct {
	Setup   *SetupReply
	Compute *ComputeReply
}
