package edge

// This file holds the message types shared by every protocol generation.
// On the gob (v1/v2) path these structs are the wire format; on the
// framed v3 path they are marshalled by the hand-rolled codecs in
// wire.go. See doc.go for the protocol generations and the frame layout.

import (
	"quhe/internal/he/ckks"
	"quhe/internal/he/profile"
	"quhe/internal/obs"
	"quhe/internal/serve"
)

// DefaultParams returns the default security profile's CKKS parameter set
// — a depth-4 residue tower; the transcipher consumes two of its levels
// and the rest are inference headroom. It is the set every pre-profile
// peer — gob v1/v2 clients and v3 clients that skip profile negotiation —
// runs on; both endpoints derive it from the same registry, so key
// material lines up without carrying parameters on the wire.
func DefaultParams() ckks.Params {
	return profile.Default().Default().Params
}

// KeyLen is the transciphering key length used by the runtime.
const KeyLen = 8

// MaxBatch bounds the blocks one BatchRequest may carry.
const MaxBatch = 256

// SetupRequest registers a client session: its public evaluation material
// and the HE-encrypted transciphering key. Registering an ID that is
// already live fails with serve.CodeDuplicateSession — key rotation must
// use the explicit Rekey message instead.
type SetupRequest struct {
	SessionID string
	// LogN/Depth guard against parameter mismatches between endpoints.
	LogN, Depth int
	PK          *ckks.PublicKey
	RLK         *ckks.RelinKey
	EncKey      []*ckks.Ciphertext
	Nonce       []byte
	// Profile is the security profile the session's key material was
	// built for. Empty — every gob peer and every pre-profile v3 client —
	// pins the session to the server's default profile; a non-empty ID
	// must be known to the server's registry and match LogN/Depth. On the
	// v3 wire this travels as an optional trailing field, so pre-profile
	// frames decode unchanged.
	Profile string
	// ResumeAuth registers the session's resume credential: a secret the
	// client derives from the current QKD key material, against which a
	// reconnect proves key possession (challenge HMAC) to re-attach
	// without a re-keygen. Sent only after the hello handshake negotiated
	// resume (v3); empty disables resume for the session.
	ResumeAuth []byte
}

// SetupReply acknowledges session registration.
type SetupReply struct {
	OK  bool
	Err string
	// Code types the failure (v2; zero for v1 peers means success).
	Code serve.Code
	// Profile echoes the profile the session was registered on. Only sent
	// when the request carried one (pre-profile peers get the reply
	// layout they expect).
	Profile string
	// MatVecDim is the dimension of the server's packed model matrix,
	// telling the client which rotation keys the BSGS kernel needs
	// (ckks.BSGSRotations(MatVecDim)). Zero when the connection did not
	// negotiate matvec or the server holds no matrix. Optional trailing
	// field on the v3 wire; never sent on gob paths.
	MatVecDim int
}

// ProfileRequest asks the server which security profile a new session
// should run (v3 only, gated by the hello handshake's profile flag). The
// client sends it before generating keys, so a plan-steered or downgraded
// profile costs no wasted key generation. Requested may be empty — "let
// the plan steer" — or a concrete profile ID the client wants.
type ProfileRequest struct {
	SessionID string
	Requested string
}

// ProfileReply carries the granted profile (which may be a downgrade of
// the request when the active plan refuses the requested level) or a
// typed denial.
type ProfileReply struct {
	Granted string
	Err     string
	Code    serve.Code
}

// ComputeRequest uploads one symmetrically encrypted block.
type ComputeRequest struct {
	SessionID string
	Block     uint32
	Masked    []float64
	// Epoch is the key epoch the block was masked under (v2). Zero skips
	// the check (v1 clients never rekey); a stale nonzero epoch is
	// rejected with serve.CodeRekeyRequired rather than transciphered
	// into garbage.
	Epoch uint64
	// Trace is the distributed-trace context the server re-parents its
	// stage spans under. On the v3 wire it travels as an optional
	// trailing 16-byte field, sent only after helloFlagTrace was acked;
	// a zero (invalid) context is omitted entirely, which also keeps the
	// gob paths untraced (gob drops zero-valued fields).
	Trace obs.TraceContext
}

// ComputeReply returns the encrypted inference result plus the modeled
// costs of this request (the paper's delay decomposition).
type ComputeReply struct {
	Result *ckks.Ciphertext
	Err    string
	// Code types the failure (v2).
	Code serve.Code
	// RekeyNeeded advises the client that the session's key byte budget
	// is nearly exhausted and a Rekey should be scheduled.
	RekeyNeeded bool
	// ModeledTxDelay and ModeledCmpDelay report the transmission and
	// server-computation delays (seconds) this block would incur under
	// the configured cost model.
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

// BatchRequest uploads many blocks at once (v2); the server fans them out
// across the worker pool and replies once all finish.
type BatchRequest struct {
	SessionID string
	Epoch     uint64
	Blocks    []uint32
	Masked    [][]float64
	// Trace mirrors ComputeRequest.Trace: an optional trailing v3 field
	// linking the batch to the client's trace (zero = untraced).
	Trace obs.TraceContext
}

// BatchItem is one block's result within a BatchReply. Items fail
// independently: a batch overflowing the scheduler queue sheds the excess
// items with serve.CodeOverloaded while the admitted ones complete.
type BatchItem struct {
	Result *ckks.Ciphertext
	Code   serve.Code
	Err    string
}

// BatchReply carries the per-item results plus batch-level modeled costs.
type BatchReply struct {
	Code        serve.Code
	Err         string
	Items       []BatchItem
	RekeyNeeded bool
	// Modeled delays aggregate over the whole batch: transmission of all
	// uploaded bits, computation of every successfully served block.
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

// RekeyRequest installs fresh HE-encrypted transciphering key material
// (drawn from a new qkd.KeyCenter withdrawal) for a live session,
// bumping its key epoch and resetting the byte budget.
type RekeyRequest struct {
	SessionID string
	EncKey    []*ckks.Ciphertext
	Nonce     []byte
	// ResumeAuth rotates the session's resume credential alongside the
	// key material (it is derived from the QKD key, so a new key means a
	// new credential). Optional trailing field on the v3 wire; see
	// SetupRequest.ResumeAuth.
	ResumeAuth []byte
}

// RekeyReply acknowledges a rekey with the session's new epoch.
type RekeyReply struct {
	OK    bool
	Err   string
	Code  serve.Code
	Epoch uint64
}

// RotKeysRequest installs the client's Galois rotation keys on its
// server-side session (v3 only, gated by the hello handshake's matvec
// flag). The set must cover every rotation of the server's BSGS plan
// (ckks.BSGSRotations of the advertised MatVecDim) and match the
// session's relinearization key in ring shape; an incomplete or
// mismatched upload is rejected typed at installation time instead of
// failing mid-evaluation. Keys live on the session, so they survive
// reconnect-and-resume without a re-upload.
type RotKeysRequest struct {
	SessionID string
	Keys      *ckks.GaloisKeySet
}

// RotKeysReply acknowledges a rotation-key installation.
type RotKeysReply struct {
	OK   bool
	Err  string
	Code serve.Code
}

// MatVec requests reuse ComputeRequest and replies reuse ComputeReply:
// the payloads are identical (a masked block in, a result ciphertext
// out) and only the evaluation semantics differ — the server
// transciphers the block, then applies its packed model matrix with the
// hoisted BSGS kernel under the session's rotation keys. The frame type
// (frameMatVec vs frameCompute) selects the path; there is no gob
// equivalent.

// ResumeRequest re-attaches a reconnecting client to its server-side
// session (v3 only, gated by the hello handshake's resume flag). The
// client names the session and proves it is the same principal by
// answering the server's challenge with an HMAC under the resume
// credential registered at Setup/Rekey — no key generation, no new QKD
// withdrawal. Epoch and Profile must match the server's view exactly; a
// divergence means the client missed a rotation and must re-dial.
type ResumeRequest struct {
	SessionID string
	Epoch     uint64
	Profile   string
}

// ResumeChallenge carries the server's random challenge for the resume
// possession proof.
type ResumeChallenge struct {
	Challenge []byte
}

// ResumeProof answers a ResumeChallenge:
// HMAC-SHA256(resumeAuth, challenge || sessionID || epoch).
type ResumeProof struct {
	MAC []byte
}

// ResumeReply grants or denies the resume. On a grant the connection is
// attached to the session and serves computes immediately; a denial is
// typed (serve.CodeResumeRejected and friends) and the client falls back
// to a full re-dial.
type ResumeReply struct {
	OK   bool
	Err  string
	Code serve.Code
	// Epoch echoes the session's current key epoch on a grant.
	Epoch uint64
}

// envelope is the tagged union carried on the wire. ID 0 requests are
// served synchronously in connection order (v1); nonzero IDs may be
// answered out of order.
type envelope struct {
	ID      uint64
	Setup   *SetupRequest
	Compute *ComputeRequest
	Batch   *BatchRequest
	Rekey   *RekeyRequest
	// RotKeys and MatVec are v3-only: the gob encoder never sees them
	// (clients only send them after the hello negotiated matvec).
	RotKeys *RotKeysRequest
	MatVec  *ComputeRequest
}

// replyEnvelope mirrors envelope for responses.
type replyEnvelope struct {
	ID      uint64
	Setup   *SetupReply
	Compute *ComputeReply
	Batch   *BatchReply
	Rekey   *RekeyReply
	RotKeys *RotKeysReply
	MatVec  *ComputeReply
}
