package edge

import (
	"time"

	"quhe/internal/obs"
)

// Client-side span names. Lifecycle stages (dial/handshake/keygen/setup,
// reconnect/resume/replay, rekey, backoff) are recorded whenever a
// tracer is armed — they are rare and each one explains a latency cliff;
// per-compute stages (mask/submit/wait) are recorded only for sampled
// blocks, whose trace context also crosses the wire so the server's
// decode→...→write spans land in the same trace.
const (
	cstageDial      = "dial"
	cstageHandshake = "handshake"
	cstageKeygen    = "keygen"
	cstageSetup     = "setup"
	cstageMask      = "mask"
	cstageSubmit    = "submit"
	cstageWait      = "wait"
	cstageBackoff   = "backoff"
	cstageReconnect = "reconnect"
	cstageResume    = "resume"
	cstageReplay    = "replay"
	cstageRekey     = "rekey"
	cstageRetry     = "retry_backoff"
)

// traceProcClient labels client-emitted traces' process lane in merged
// chrome dumps (servers use the default lane).
const traceProcClient = "client"

// clientTracer emits the client half of the distributed trace into an
// obs.Tracer. All methods are nil-receiver safe, so untraced clients pay
// one pointer test per call site.
type clientTracer struct {
	tr      *obs.Tracer
	session string
	sample  float64
	// id draws seeded pseudo-random bits for trace/span IDs and the
	// per-compute sampling decision (the client's jitter RNG, so chaos
	// runs trace reproducibly).
	id func() uint64
}

func newClientTracer(tr *obs.Tracer, session string, sample float64, id func() uint64) *clientTracer {
	if tr == nil {
		return nil
	}
	if sample <= 0 || sample > 1 {
		sample = 1
	}
	return &clientTracer{tr: tr, session: session, sample: sample, id: id}
}

// newID returns a nonzero pseudo-random identifier.
func (t *clientTracer) newID() uint64 {
	for {
		if v := t.id(); v != 0 {
			return v
		}
	}
}

// newSpanID returns a nonzero span ID already bounded to the wire's
// parent width, so server spans re-parented under it match it exactly.
func (t *clientTracer) newSpanID() uint64 {
	for {
		if v := obs.MaskSpanID(t.id()); v != 0 {
			return v
		}
	}
}

// sampleTrace makes the per-block sampling decision and mints the block's
// trace identity: a zero context (and nil spans) when unsampled.
func (t *clientTracer) sampleTrace() obs.TraceContext {
	if t == nil {
		return obs.TraceContext{}
	}
	if t.sample < 1 {
		// Compare seeded bits against the sampling fraction; one draw.
		if float64(t.id()>>11)/(1<<53) >= t.sample {
			return obs.TraceContext{}
		}
	}
	return obs.TraceContext{TraceID: t.newID(), Parent: t.newSpanID(), Sampled: true}
}

// clientSpans accumulates one client-side trace and records it on
// finish. The zero context form (lifecycle traces) mints a fresh trace
// ID; a compute's sampled context threads its identity through, and a
// recovery trace adopts the context of the oldest in-flight compute so
// the outage lands inside the trace of the block it delayed.
type clientSpans struct {
	t  *clientTracer
	bt obs.BlockTrace
}

// begin opens a trace under an existing context (zero = mint fresh).
// Returns nil — recording nothing — when the tracer is off.
func (t *clientTracer) begin(tc obs.TraceContext, block uint32, reqID uint64, start time.Time) *clientSpans {
	if t == nil {
		return nil
	}
	bt := obs.BlockTrace{
		Session: t.session,
		Block:   block,
		ReqID:   reqID,
		TraceID: tc.TraceID,
		SpanID:  tc.Parent,
		Proc:    traceProcClient,
		Start:   start,
		Spans:   make([]obs.Span, 0, 6),
	}
	if bt.TraceID == 0 {
		bt.TraceID, bt.SpanID = t.newID(), t.newSpanID()
	}
	return &clientSpans{t: t, bt: bt}
}

// beginLinked opens a trace re-parented under another process-local
// span: same trace ID, Parent pointing at the adopted root. Used for the
// recovery trace, whose parent is the stalled compute's submit span.
func (t *clientTracer) beginLinked(tc obs.TraceContext, start time.Time) *clientSpans {
	cs := t.begin(obs.TraceContext{}, 0, 0, start)
	if cs != nil && tc.Valid() {
		cs.bt.TraceID, cs.bt.Parent = tc.TraceID, tc.Parent
	}
	return cs
}

// span appends a stage lasting from start to now.
func (s *clientSpans) span(stage string, start time.Time) {
	s.spanDur(stage, start, time.Since(start))
}

// spanDur appends a stage with an explicit duration.
func (s *clientSpans) spanDur(stage string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	s.bt.Spans = append(s.bt.Spans, obs.Span{Stage: stage, Start: start, Dur: d})
}

// context returns the wire context children re-parent under.
func (s *clientSpans) context() obs.TraceContext {
	if s == nil {
		return obs.TraceContext{}
	}
	return obs.TraceContext{TraceID: s.bt.TraceID, Parent: s.bt.SpanID, Sampled: true}
}

// finish stamps the total and records the trace. Safe to call once.
func (s *clientSpans) finish() {
	if s == nil {
		return
	}
	s.bt.Total = time.Since(s.bt.Start)
	s.t.tr.Record(s.bt)
}

// event records a standalone single-span trace — the low-noise form for
// rare lifecycle moments (retry backoff, rekey) that are worth a mark on
// the timeline but not a whole span tree.
func (t *clientTracer) event(stage string, start time.Time) {
	if t == nil {
		return
	}
	cs := t.begin(obs.TraceContext{}, 0, 0, start)
	cs.span(stage, start)
	cs.finish()
}
