package edge

// Distributed-trace continuity (PR 9): one block's trace identity must
// survive the full fault path — client submit, transport kill, reconnect,
// resume, replay, server decode→…→write — so a merged chrome dump shows
// the whole life of the block as a single trace ID across both process
// lanes. Run under -race in CI.

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quhe/internal/faultnet"
	"quhe/internal/obs"
	"quhe/internal/qkd"
)

// findTrace returns the first trace for the given block that has a span
// with the wanted stage name.
func findTrace(traces []obs.BlockTrace, block uint32, stage string) (obs.BlockTrace, bool) {
	for _, bt := range traces {
		if bt.Block != block {
			continue
		}
		for _, sp := range bt.Spans {
			if sp.Stage == stage {
				return bt, true
			}
		}
	}
	return obs.BlockTrace{}, false
}

func stages(bt obs.BlockTrace) []string {
	out := make([]string, len(bt.Spans))
	for i, sp := range bt.Spans {
		out[i] = sp.Stage
	}
	return out
}

func TestTraceContinuityAcrossResume(t *testing.T) {
	srv := chaosServer(t, ServerConfig{
		IdleTimeout:  2 * time.Second,
		ResumeWindow: 10 * time.Second,
	})
	kc := qkd.NewKeyCenter()
	ledger := qkd.NewLedger()
	kc.AttachLedger(ledger)
	if err := kc.Provision("trace-rt", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := kc.RunExchange("trace-rt", 0.97, 8192, 5); err != nil {
		t.Fatal(err)
	}
	// Every write dies once armed: the kill lands deterministically on the
	// in-flight compute under test, not between requests.
	inj := faultnet.New(faultnet.Config{Seed: 11, Write: faultnet.Spec{DropProb: 1}})
	var armed atomic.Bool
	clientTr := obs.NewTracer(0, 0)
	client, err := DialQKDWith(srv.Addr(), "trace-rt", kc, 9, DialConfig{
		Protocol:       ProtoV3,
		Checksum:       true,
		Dialer:         armedDialer(inj, &armed),
		Reconnect:      true,
		RequestTimeout: 15 * time.Second,
		Tracer:         clientTr,
		TraceSample:    1,
		Route:          "route-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Warmup: a healthy traced block proves the happy path first.
	if _, err := client.Compute(1, []float64{0.8}); err != nil {
		t.Fatal(err)
	}

	// Kill the transport mid-submit: the compute's send hits the dying
	// connection, stays registered, and the client reconnects, resumes
	// the session and replays the envelope — which still carries the
	// block's original trace context.
	const block = 2
	armed.Store(true)
	p, err := client.ComputeAsync(block, []float64{0.8})
	if err != nil {
		t.Fatalf("submit across transport kill: %v", err)
	}
	armed.Store(false) // let the reconnect transport live
	res, err := p.Wait()
	if err != nil {
		t.Fatalf("wait across transport kill: %v", err)
	}
	if math.Abs(res[0]-0.5) > 1e-3 {
		t.Fatalf("replayed block result %g, want ≈0.5", res[0])
	}
	st := client.Stats()
	if st.Reconnects < 1 || st.Resumes < 1 {
		t.Fatalf("reconnects/resumes = %d/%d, want ≥1 each (fault path not exercised)", st.Reconnects, st.Resumes)
	}

	clientTraces := clientTr.Dump()
	cbt, ok := findTrace(clientTraces, block, "submit")
	if !ok {
		t.Fatalf("no client compute trace for block %d; have %d traces", block, len(clientTraces))
	}
	if cbt.TraceID == 0 || cbt.SpanID == 0 {
		t.Fatalf("client trace has no identity: %+v", cbt)
	}
	if cbt.Proc != "client" {
		t.Errorf("client trace proc = %q, want client", cbt.Proc)
	}

	// The recovery trace (reconnect/resume/replay) must share the stalled
	// block's trace ID: the outage belongs to the block it delayed.
	rec, ok := findTrace(clientTraces, 0, "resume")
	if !ok {
		t.Fatal("no recovery trace with a resume span")
	}
	if rec.TraceID != cbt.TraceID {
		t.Errorf("recovery trace ID %x, want the stalled block's %x", rec.TraceID, cbt.TraceID)
	}
	for _, want := range []string{"reconnect", "resume", "replay"} {
		if _, ok := findTrace(clientTraces, 0, want); !ok {
			t.Errorf("recovery trace missing %s span (have %v)", want, stages(rec))
		}
	}

	// The server's trace for the replayed block must be re-parented under
	// the client's context: same trace ID, parent = the client root span.
	// The server records its trace just after the reply frame hits the
	// socket, so poll briefly.
	var sbt obs.BlockTrace
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sbt, ok = findTrace(srv.Tracer().Dump(), block, stageEval); ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("no server trace for block %d", block)
	}
	if sbt.TraceID != cbt.TraceID {
		t.Fatalf("server trace ID %x, client %x — continuity broken across resume", sbt.TraceID, cbt.TraceID)
	}
	if sbt.Parent != cbt.SpanID {
		t.Errorf("server parent span %x, want client root %x", sbt.Parent, cbt.SpanID)
	}
	for _, want := range []string{stageDecode, stageQueueWait, stageEval, stageEncode, stageWrite} {
		if _, ok := findTrace([]obs.BlockTrace{sbt}, block, want); !ok {
			t.Errorf("server trace missing %s span (have %v)", want, stages(sbt))
		}
	}

	// A merged dump renders both process lanes with the shared trace ID.
	var b strings.Builder
	if err := obs.WriteChromeTraces(&b, append(clientTr.Dump(), srv.Tracer().Dump()...)); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, want := range []string{`"name":"client"`, `"name":"server"`} {
		if !strings.Contains(dump, want) {
			t.Errorf("merged dump missing process lane %s", want)
		}
	}
	if got := strings.Count(dump, traceHex(cbt.TraceID)); got < 2 {
		t.Errorf("merged dump mentions the trace ID %d times, want ≥2 (both lanes)", got)
	}

	// The ledger saw exactly the key centre's withdrawals (setup only —
	// resume must not withdraw).
	w, bytes := ledger.Totals()
	fc := kc.Counters()
	if w != fc.Withdrawals || bytes != fc.WithdrawnBytes {
		t.Errorf("ledger %d/%d, key centre %d/%d — must reconcile", w, bytes, fc.Withdrawals, fc.WithdrawnBytes)
	}
	if got := ledger.CauseWithdrawals(qkd.CauseSetup); got != 1 {
		t.Errorf("setup withdrawals = %d, want 1", got)
	}
}

// traceHex mirrors the dump's fixed-width hex rendering of trace IDs.
func traceHex(v uint64) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b)
}

// TestRekeyCauseAttribution pins the cause resolution of rekey
// withdrawals: explicit Rekey → replan, epoch-guarded auto rekey →
// budget-rekey, and the first rotation after a resume → resume-rotation.
func TestRekeyCauseAttribution(t *testing.T) {
	srv := chaosServer(t, ServerConfig{ResumeWindow: 10 * time.Second})
	kc := qkd.NewKeyCenter()
	ledger := qkd.NewLedger()
	kc.AttachLedger(ledger)
	if err := kc.Provision("cause-rt", 1000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := kc.RunExchange("cause-rt", 0.97, 8192, int64(5+i)); err != nil {
			t.Fatal(err)
		}
	}
	inj := faultnet.New(faultnet.Config{Seed: 7})
	client, err := DialQKDWith(srv.Addr(), "cause-rt", kc, 9, DialConfig{
		Protocol:       ProtoV3,
		Dialer:         inj.Dialer(2 * time.Second),
		Reconnect:      true,
		RequestTimeout: 15 * time.Second,
		Route:          "route-9",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if got := ledger.CauseWithdrawals(qkd.CauseSetup); got != 1 {
		t.Fatalf("setup withdrawals = %d, want 1", got)
	}

	// Explicit rekey: a plan- or operator-driven rotation.
	if err := client.Rekey(); err != nil {
		t.Fatal(err)
	}
	if got := ledger.CauseWithdrawals(qkd.CauseReplan); got != 1 {
		t.Errorf("replan withdrawals = %d, want 1", got)
	}

	// Epoch-guarded rekey: the budget-exhaustion path.
	if err := client.RekeyIfEpoch(client.Epoch()); err != nil {
		t.Fatal(err)
	}
	if got := ledger.CauseWithdrawals(qkd.CauseBudgetRekey); got != 1 {
		t.Errorf("budget-rekey withdrawals = %d, want 1", got)
	}

	// Resume, then rekey: hygiene rotation attributed to the resume even
	// though the trigger below is the explicit API.
	if _, err := client.Compute(1, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if n := inj.CloseAll(); n == 0 {
		t.Fatal("no live connection to kill")
	}
	if _, err := client.Compute(2, []float64{0.5}); err != nil {
		t.Fatalf("compute across kill: %v", err)
	}
	if client.Stats().Resumes < 1 {
		t.Fatal("session did not resume")
	}
	if err := client.Rekey(); err != nil {
		t.Fatal(err)
	}
	if got := ledger.CauseWithdrawals(qkd.CauseResumeRotation); got != 1 {
		t.Errorf("resume-rotation withdrawals = %d, want 1", got)
	}
	// The resume flag clears on that rotation: the next rekey is back to
	// its caller's cause.
	if err := client.Rekey(); err != nil {
		t.Fatal(err)
	}
	if got := ledger.CauseWithdrawals(qkd.CauseReplan); got != 2 {
		t.Errorf("replan withdrawals after flag clear = %d, want 2", got)
	}
}
