package edge

import (
	"math"
	"strings"
	"sync"
	"testing"

	"quhe/internal/qkd"
)

func startServer(t *testing.T, model Model) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv
}

// TestPipelineEndToEnd runs the complete QuHE data path over real TCP:
// QKD key exchange → symmetric masking → upload → server transciphering →
// encrypted inference → client-side decryption.
func TestPipelineEndToEnd(t *testing.T) {
	model := Model{
		Weights: []float64{0.5, 0.25, -0.5, 1},
		Bias:    []float64{0.1, 0, -0.1, 0.2},
	}
	srv := startServer(t, model)

	// QKD phase: BBM92 over a w=0.97 route feeds the key centre.
	kc := qkd.NewKeyCenter()
	if err := kc.Provision("client-1", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := kc.RunExchange("client-1", 0.97, 8192, 3); err != nil {
		t.Fatal(err)
	}
	qkdKey, err := kc.Withdraw("client-1", 32)
	if err != nil {
		t.Fatal(err)
	}

	client, err := Dial(srv.Addr(), "client-1", qkdKey, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := []float64{0.8, -0.4, 0.6, 0.2}
	got, err := client.Compute(0, data)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range data {
		want := model.Weights[i]*x + model.Bias[i]
		if math.Abs(got[i]-want) > 0.05 {
			t.Errorf("slot %d = %v, want %v", i, got[i], want)
		}
	}
	if client.LastTxDelay <= 0 || client.LastCmpDelay <= 0 {
		t.Errorf("modeled delays not reported: tx %v cmp %v", client.LastTxDelay, client.LastCmpDelay)
	}
	if srv.Blocks("client-1") != 1 {
		t.Errorf("server processed %d blocks, want 1", srv.Blocks("client-1"))
	}
}

func TestMultipleBlocksSameSession(t *testing.T) {
	model := Model{Weights: []float64{1, 1, 1, 1}}
	srv := startServer(t, model)
	client, err := Dial(srv.Addr(), "c", []byte("qkd-material"), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for block := uint32(0); block < 3; block++ {
		data := []float64{float64(block) * 0.1, -0.2, 0.3}
		got, err := client.Compute(block, data)
		if err != nil {
			t.Fatalf("block %d: %v", block, err)
		}
		for i, want := range data {
			if math.Abs(got[i]-want) > 0.05 {
				t.Errorf("block %d slot %d = %v, want %v", block, i, got[i], want)
			}
		}
	}
	if srv.Blocks("c") != 3 {
		t.Errorf("server processed %d blocks, want 3", srv.Blocks("c"))
	}
}

func TestConcurrentClients(t *testing.T) {
	model := Model{Weights: []float64{2}}
	srv := startServer(t, model)

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := "client-" + string(rune('a'+id))
			client, err := Dial(srv.Addr(), name, []byte(name), int64(100+id))
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			got, err := client.Compute(0, []float64{0.25})
			if err != nil {
				errs <- err
				return
			}
			if math.Abs(got[0]-0.5) > 0.05 {
				errs <- &mismatchError{got[0]}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ got float64 }

func (e *mismatchError) Error() string { return "mismatch: got wrong inference result" }

func TestUnknownSessionRejected(t *testing.T) {
	srv := startServer(t, Model{})
	client, err := Dial(srv.Addr(), "known", []byte("k"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Forge a request under a different session by mutating the ID.
	client.sessionID = "forged"
	if _, err := client.Compute(0, []float64{1}); err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Errorf("forged session err = %v", err)
	}
}

func TestOversizedBlockRejected(t *testing.T) {
	srv := startServer(t, Model{})
	client, err := Dial(srv.Addr(), "c", []byte("k"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	big := make([]float64, client.Slots()+1)
	if _, err := client.Compute(0, big); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestDialValidation(t *testing.T) {
	srv := startServer(t, Model{})
	if _, err := Dial(srv.Addr(), "", []byte("k"), 1); err == nil {
		t.Error("empty session id accepted")
	}
	if _, err := Dial("127.0.0.1:1", "s", []byte("k"), 1); err == nil {
		t.Error("dead address accepted")
	}
}

// TestMaskedDataUnreadableByServer confirms the security property the
// pipeline exists for: what the server receives (masked block) is far from
// the plaintext, yet the client recovers the model output exactly.
func TestMaskedDataUnreadableByServer(t *testing.T) {
	srv := startServer(t, Model{Weights: []float64{1, 1, 1, 1}})
	client, err := Dial(srv.Addr(), "c", []byte("secret-key-material"), 11)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := []float64{0.9, -0.9, 0.5, -0.5}
	padded := make([]float64, client.Slots())
	copy(padded, data)
	masked, err := client.cipher.Mask(client.key, client.nonce, 99, padded)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range data {
		if math.Abs(masked[i]-data[i]) > 0.05 {
			moved++
		}
	}
	if moved < 2 {
		t.Errorf("masking barely changed the data (%d of %d slots moved)", moved, len(data))
	}
}
