package edge

// Protocol v3 framing and payload codecs. See doc.go for the protocol
// generations and the frame layout; the short version:
//
//	offset 0   magic    0xAD 0x51 (bytes gob never emits at stream start)
//	offset 2   version  0x03
//	offset 3   type     frameHello, frameSetup, ...
//	offset 4   reqID    uint64, little-endian
//	offset 12  length   uint32 payload byte count, little-endian
//	offset 16  payload
//
// Frames are built into pooled buffers and written through one
// bufio.Writer per connection under a mutex, so a frame (header +
// payload) reaches the socket as a single coalesced write and concurrent
// senders (worker goroutines streaming batch items, the decode loop
// answering setups) interleave at frame granularity — the per-connection
// fairness point. Payload decoding copies everything it returns, so the
// read buffer is reused for the next frame immediately.

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/he/ckks"
	"quhe/internal/obs"
	"quhe/internal/serve"
)

const (
	frameMagic0  = 0xAD
	frameMagic1  = 0x51
	frameVersion = 3

	frameHeaderLen = 16

	// maxFramePayload bounds a frame so a corrupt or hostile length field
	// cannot force a huge allocation. The largest legitimate frame is a
	// Setup (relin key dominates): ~18 MiB at LogN 15.
	maxFramePayload = 64 << 20

	// wireBufSize sizes the per-connection bufio reader/writer.
	wireBufSize = 64 << 10

	// helloFlagCRC, set in the hello frame's optional flags payload,
	// negotiates per-frame CRC32C trailers: the client requests them and
	// the server's hello ack confirms. Both hello frames themselves are
	// always un-trailed; checksums apply to every frame after the
	// handshake, in both directions. Peers that predate the extension
	// send (and ack with) empty hello payloads, which reads as "no
	// checksums" on the other side.
	helloFlagCRC = 0x01

	// helloFlagProfiles advertises security-profile negotiation: a server
	// that sets it in its hello ack accepts frameProfile queries and the
	// optional Profile field on Setup. Clients only send profile frames
	// after seeing the flag, so pre-profile servers (which would kill the
	// connection on an unknown frame type) are never exposed to them;
	// pre-profile clients ignore the bit and stay on the default profile.
	helloFlagProfiles = 0x02

	// helloFlagRNSWire advertises the residue-tower ciphertext wire
	// format: limb-per-prime polynomial layouts in every v3 payload
	// carrying CKKS material (Setup keys, EncKey and result ciphertexts).
	// Clients set it unconditionally; a server that acks without it
	// predates the format and the client fails the dial with a typed
	// serve.ErrWireFormat instead of misparsing frames. Symmetrically the
	// server refuses frameSetup from a client that did not set the bit
	// (serve.CodeWireFormat) rather than decoding flat-layout payloads as
	// limbs. The gob paths are unaffected: gob is self-describing.
	helloFlagRNSWire = 0x04

	// helloFlagResume advertises session resume: a server that sets it in
	// its hello ack accepts frameResume handshakes and the optional
	// ResumeAuth trailing field on Setup/Rekey. Clients request it
	// unconditionally; against a server that acks without the flag they
	// simply never send resume frames or credentials, and a reconnect
	// falls back to a full re-dial with a typed serve.ErrResumeRejected
	// explaining why.
	helloFlagResume = 0x08

	// helloFlagTrace advertises distributed-trace propagation: a server
	// that sets it in its hello ack decodes the optional 16-byte trace
	// context (trace ID, parent span, sampling bit — obs.TraceContext)
	// trailing Compute and Batch payloads and re-parents its stage spans
	// under the client's trace. Clients request it unconditionally but
	// only append the field once the ack confirms, so pre-trace peers
	// exchange bit-identical frames. The gob paths are untraced.
	helloFlagTrace = 0x10

	// helloFlagMatVec advertises encrypted matrix–vector evaluation: a
	// server that sets it in its hello ack holds a packed model matrix and
	// accepts frameRotKeys uploads and frameMatVec requests, and its Setup
	// reply carries the matrix dimension as an optional trailing field.
	// Clients request it unconditionally; against a server that acks
	// without the flag they never send matvec frames, and a MatVec call
	// fails locally with the typed serve.ErrMatVecUnavailable instead of
	// killing the connection on an unknown frame type.
	helloFlagMatVec = 0x20

	// crcTrailerLen is the CRC32C (Castagnoli) trailer size. The trailer
	// covers header and payload and is excluded from the header's length
	// field, so a checksumming reader and a length-driven frame skipper
	// agree on frame boundaries.
	crcTrailerLen = 4
)

// crcTable is the Castagnoli polynomial table shared by both directions.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame types. Requests and replies are distinct so a corrupted direction
// bit cannot alias a decode.
const (
	frameHello byte = iota + 1
	frameSetup
	frameSetupReply
	frameCompute
	frameComputeReply
	frameBatch
	frameBatchItem
	frameBatchDone
	frameRekey
	frameRekeyReply
	frameProfile
	frameProfileReply
	frameResume
	frameResumeChallenge
	frameResumeProof
	frameResumeReply
	frameRotKeys
	frameRotKeysReply
	frameMatVec
	frameMatVecReply
)

// Typed frame errors: fuzzing and tests assert corrupt input maps to
// these instead of panicking.
var (
	// ErrBadFrame reports a malformed frame or payload (wrong magic or
	// version, unknown type, truncated or trailing payload bytes).
	ErrBadFrame = errors.New("edge: malformed frame")
	// ErrFrameTooLarge reports a frame whose length field exceeds
	// maxFramePayload.
	ErrFrameTooLarge = errors.New("edge: frame exceeds size limit")
	// ErrProtocolMismatch reports a peer that does not speak protocol v3
	// (returned by DialWith when ProtoV3 is forced against an older
	// server).
	ErrProtocolMismatch = errors.New("edge: peer does not speak protocol v3")
	// ErrFrameChecksum reports a frame whose negotiated CRC32C trailer
	// does not match its contents: corruption on an untrusted link,
	// surfaced as a typed error instead of a garbage decode.
	ErrFrameChecksum = errors.New("edge: frame checksum mismatch")
)

// frameBufs pools frame build/read buffers. Buffers that grew past the
// retention cap (a giant Setup) are dropped rather than pinned forever.
var frameBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

const frameBufRetain = 4 << 20

func getFrameBuf() *[]byte { return frameBufs.Get().(*[]byte) }

func putFrameBuf(pb *[]byte) {
	if cap(*pb) > frameBufRetain {
		return
	}
	*pb = (*pb)[:0]
	frameBufs.Put(pb)
}

// beginFrame appends a frame header with a zero length field; finishFrame
// patches the length once the payload is in place. The frame must start
// at offset start in b (senders build one frame per buffer, start 0).
func beginFrame(b []byte, ftype byte, id uint64) []byte {
	b = append(b, frameMagic0, frameMagic1, frameVersion, ftype)
	b = binary.LittleEndian.AppendUint64(b, id)
	return binary.LittleEndian.AppendUint32(b, 0)
}

func finishFrame(b []byte, start int) ([]byte, error) {
	n := len(b) - start - frameHeaderLen
	if n < 0 {
		return nil, ErrBadFrame
	}
	if n > maxFramePayload {
		return nil, ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(b[start+12:start+16], uint32(n))
	return b, nil
}

// readFrame reads one frame from br, growing *buf (pooled) to hold the
// payload. The returned payload aliases *buf and is valid until the next
// readFrame with the same buffer; decoders copy what they keep.
func readFrame(br *bufio.Reader, buf *[]byte) (ftype byte, id uint64, payload []byte, err error) {
	return readFrameCRC(br, buf, false)
}

// readFrameCRC is readFrame with the connection's negotiated checksum
// mode: when withCRC is set, every frame carries a 4-byte CRC32C trailer
// over header and payload, and a mismatch fails with the typed
// ErrFrameChecksum instead of handing a corrupt payload to a decoder.
func readFrameCRC(br *bufio.Reader, buf *[]byte, withCRC bool) (ftype byte, id uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 || hdr[2] != frameVersion {
		return 0, 0, nil, ErrBadFrame
	}
	ftype = hdr[3]
	if ftype < frameHello || ftype > frameMatVecReply {
		return 0, 0, nil, ErrBadFrame
	}
	id = binary.LittleEndian.Uint64(hdr[4:12])
	n := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if n > maxFramePayload {
		return 0, 0, nil, ErrFrameTooLarge
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	*buf = (*buf)[:n]
	if _, err = io.ReadFull(br, *buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	if withCRC {
		var trailer [crcTrailerLen]byte
		if _, err = io.ReadFull(br, trailer[:]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, 0, nil, err
		}
		sum := crc32.Update(crc32.Checksum(hdr[:], crcTable), crcTable, *buf)
		if sum != binary.LittleEndian.Uint32(trailer[:]) {
			return 0, 0, nil, ErrFrameChecksum
		}
	}
	return ftype, id, *buf, nil
}

// frameWriter serializes v3 frame writes on one connection. With
// pipelined requests and streaming batches, worker goroutines and the
// decode loop send concurrently; the mutex interleaves them at frame
// granularity. A write error tears the connection down exactly once via
// the teardown closure shared with the read side (no double-close race)
// and drops every later frame — the peer's pending requests then fail
// with a typed connection error instead of hanging.
type frameWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
	// failed latches the first write error. Atomic rather than guarded
	// by mu so dead() stays non-blocking: mu is held across a socket
	// flush, which on a stalled peer blocks until teardown — exactly the
	// state dead() exists to observe.
	failed   atomic.Bool
	teardown func()
	logf     func(string, ...interface{})
	// crc appends a CRC32C trailer to every frame. It is flipped at most
	// once, during the hello handshake, strictly before any concurrent
	// senders exist on the connection.
	crc bool
	// countSend, when non-nil, observes every frame that reached the
	// socket with its full wire size (header + payload + any trailer).
	// Set once right after construction, before concurrent senders exist;
	// must be safe for concurrent calls (the server feeds atomics).
	countSend func(wireBytes int)
}

func newFrameWriter(conn net.Conn, teardown func(), logf func(string, ...interface{})) *frameWriter {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	return &frameWriter{bw: bufio.NewWriterSize(conn, wireBufSize), teardown: teardown, logf: logf}
}

// send writes one complete frame (header already finished) and flushes.
func (w *frameWriter) send(frame []byte) error {
	w.mu.Lock()
	if w.failed.Load() {
		w.mu.Unlock()
		return serve.ErrConnClosed
	}
	_, err := w.bw.Write(frame)
	if err == nil {
		err = w.bw.Flush()
	}
	if err != nil {
		w.failed.Store(true)
	}
	w.mu.Unlock()
	if err != nil {
		w.logf("edge: v3 write: %v", err)
		w.teardown()
		return fmt.Errorf("%w: %v", serve.ErrConnClosed, err)
	}
	if w.countSend != nil {
		w.countSend(len(frame))
	}
	return nil
}

// dead reports whether the connection's write side has already failed.
// Non-blocking by construction (see the failed field): safe to poll from
// eval workers deciding whether a result is still worth computing.
func (w *frameWriter) dead() bool { return w.failed.Load() }

// sendFrame builds a frame from a payload-appending closure in a pooled
// buffer and sends it. build may be nil for empty payloads.
func (w *frameWriter) sendFrame(ftype byte, id uint64, build func(b []byte) []byte) error {
	pb := getFrameBuf()
	b := beginFrame((*pb)[:0], ftype, id)
	if build != nil {
		b = build(b)
	}
	b, err := finishFrame(b, 0)
	if err == nil {
		if w.crc {
			b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
		}
		*pb = b
		err = w.send(b)
	} else {
		w.logf("edge: v3 frame build: %v", err)
	}
	putFrameBuf(pb)
	return err
}

// sendFrameTimed is sendFrame split into its two stages for the tracing
// path: encode covers the payload build (plus any CRC trailer), write
// covers the socket write under the frameWriter mutex — so a trace can
// tell serialization cost from a slow or contended connection. Kept
// separate from sendFrame so untraced frames pay no clock reads.
func (w *frameWriter) sendFrameTimed(ftype byte, id uint64, build func(b []byte) []byte) (encode, write time.Duration, err error) {
	pb := getFrameBuf()
	t0 := time.Now()
	b := beginFrame((*pb)[:0], ftype, id)
	if build != nil {
		b = build(b)
	}
	b, err = finishFrame(b, 0)
	if err == nil {
		if w.crc {
			b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
		}
		*pb = b
		t1 := time.Now()
		encode = t1.Sub(t0)
		err = w.send(b)
		write = time.Since(t1)
	} else {
		w.logf("edge: v3 frame build: %v", err)
	}
	putFrameBuf(pb)
	return encode, write, err
}

// --- payload primitives -----------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

func appendFloat64s(b []byte, v []float64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, f := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// wireReader decodes payload primitives with sticky-error semantics: the
// first failure latches and every later read returns zero values, so
// message decoders read fields linearly and check once at the end.
// Everything returned is copied out of the underlying buffer.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail() { r.err = ErrBadFrame }

func (r *wireReader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) bool() bool { return r.u8() != 0 }

func (r *wireReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || len(r.b) < n {
		r.fail()
		return ""
	}
	v := string(r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || len(r.b) < n {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return v
}

func (r *wireReader) float64s() []float64 {
	n := int(r.u32())
	if r.err != nil || n < 0 || len(r.b) < 8*n {
		r.fail()
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*i:]))
	}
	r.b = r.b[8*n:]
	return v
}

// ciphertext decodes one ciphertext into fresh storage (candidates for
// retention — key material, results handed to callers — must not alias
// the frame buffer).
func (r *wireReader) ciphertext() *ckks.Ciphertext {
	if r.err != nil {
		return nil
	}
	ct := new(ckks.Ciphertext)
	n, err := ct.DecodeFrom(r.b)
	if err != nil {
		r.fail()
		return nil
	}
	r.b = r.b[n:]
	return ct
}

// finish returns the latched error, or ErrBadFrame when payload bytes
// remain unconsumed (a frame carries exactly one message).
// traceContext consumes an optional trailing 16-byte trace context: a
// zero context when the payload is already exhausted (pre-trace peer),
// a decode failure when trailing bytes are present but not a whole
// context.
func (r *wireReader) traceContext() obs.TraceContext {
	if r.err != nil || len(r.b) == 0 {
		return obs.TraceContext{}
	}
	if len(r.b) < obs.TraceContextLen {
		r.fail()
		return obs.TraceContext{}
	}
	tc, err := obs.DecodeTraceContext(r.b[:obs.TraceContextLen])
	if err != nil {
		r.fail()
		return obs.TraceContext{}
	}
	r.b = r.b[obs.TraceContextLen:]
	return tc
}

func (r *wireReader) finish() error {
	if r.err == nil && len(r.b) != 0 {
		r.fail()
	}
	return r.err
}

// --- message codecs ---------------------------------------------------------
//
// One append/decode pair per message. Limits beyond what wireReader
// enforces structurally: encrypted-key vectors are capped at 4×KeyLen and
// batch fan-out at MaxBatch, so a hostile peer cannot request unbounded
// allocation from a single frame.

const maxWireEncKey = 4 * KeyLen

func appendCiphertexts(b []byte, cts []*ckks.Ciphertext) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cts)))
	for _, ct := range cts {
		b = ct.AppendBinary(b)
	}
	return b
}

func (r *wireReader) ciphertexts(max int) []*ckks.Ciphertext {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > max {
		r.fail()
		return nil
	}
	cts := make([]*ckks.Ciphertext, n)
	for i := range cts {
		cts[i] = r.ciphertext()
	}
	if r.err != nil {
		return nil
	}
	return cts
}

func appendSetupRequest(b []byte, req *SetupRequest) []byte {
	b = appendString(b, req.SessionID)
	b = binary.LittleEndian.AppendUint32(b, uint32(req.LogN))
	b = binary.LittleEndian.AppendUint32(b, uint32(req.Depth))
	b = req.PK.AppendBinary(b)
	b = req.RLK.AppendBinary(b)
	b = appendCiphertexts(b, req.EncKey)
	b = appendBytes(b, req.Nonce)
	// Profile and ResumeAuth travel as optional trailing fields, so
	// pre-profile/pre-resume peers see (and send) exactly the old layout.
	// A ResumeAuth forces the Profile field out (possibly empty) to keep
	// the trailing positions unambiguous; clients only attach a credential
	// after the hello handshake negotiated resume.
	if req.Profile != "" || len(req.ResumeAuth) > 0 {
		b = appendString(b, req.Profile)
	}
	if len(req.ResumeAuth) > 0 {
		b = appendBytes(b, req.ResumeAuth)
	}
	return b
}

func decodeSetupRequest(p []byte) (*SetupRequest, error) {
	r := &wireReader{b: p}
	req := &SetupRequest{
		SessionID: r.str(),
		LogN:      int(r.u32()),
		Depth:     int(r.u32()),
		PK:        new(ckks.PublicKey),
		RLK:       new(ckks.RelinKey),
	}
	if r.err == nil {
		if n, err := req.PK.DecodeFrom(r.b); err != nil {
			r.fail()
		} else {
			r.b = r.b[n:]
		}
	}
	if r.err == nil {
		if n, err := req.RLK.DecodeFrom(r.b); err != nil {
			r.fail()
		} else {
			r.b = r.b[n:]
		}
	}
	req.EncKey = r.ciphertexts(maxWireEncKey)
	req.Nonce = r.bytes()
	if r.err == nil && len(r.b) > 0 {
		req.Profile = r.str()
	}
	if r.err == nil && len(r.b) > 0 {
		req.ResumeAuth = r.bytes()
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

func appendSetupReply(b []byte, rep *SetupReply) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Code))
	b = appendString(b, rep.Err)
	// Profile and MatVecDim travel as optional trailing fields (same
	// convention as the Setup request): a MatVecDim forces the Profile
	// field out (possibly empty) so the trailing positions stay
	// unambiguous. Servers only append MatVecDim on matvec-negotiated
	// connections, so pre-matvec clients never see it.
	if rep.Profile != "" || rep.MatVecDim > 0 {
		b = appendString(b, rep.Profile)
	}
	if rep.MatVecDim > 0 {
		b = binary.LittleEndian.AppendUint32(b, uint32(rep.MatVecDim))
	}
	return b
}

func decodeSetupReply(p []byte) (*SetupReply, error) {
	r := &wireReader{b: p}
	rep := &SetupReply{Code: serve.Code(r.u32()), Err: r.str()}
	if r.err == nil && len(r.b) > 0 {
		rep.Profile = r.str()
	}
	if r.err == nil && len(r.b) > 0 {
		rep.MatVecDim = int(r.u32())
	}
	rep.OK = rep.Code == serve.CodeOK && rep.Err == ""
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}

func appendProfileRequest(b []byte, req *ProfileRequest) []byte {
	b = appendString(b, req.SessionID)
	return appendString(b, req.Requested)
}

func decodeProfileRequest(p []byte) (*ProfileRequest, error) {
	r := &wireReader{b: p}
	req := &ProfileRequest{SessionID: r.str(), Requested: r.str()}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

func appendProfileReply(b []byte, rep *ProfileReply) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Code))
	b = appendString(b, rep.Err)
	return appendString(b, rep.Granted)
}

func decodeProfileReply(p []byte) (*ProfileReply, error) {
	r := &wireReader{b: p}
	rep := &ProfileReply{Code: serve.Code(r.u32()), Err: r.str(), Granted: r.str()}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}

func appendComputeRequest(b []byte, req *ComputeRequest) []byte {
	b = appendString(b, req.SessionID)
	b = binary.LittleEndian.AppendUint32(b, req.Block)
	b = binary.LittleEndian.AppendUint64(b, req.Epoch)
	b = appendFloat64s(b, req.Masked)
	// Trace context travels as an optional trailing field (like Profile
	// and ResumeAuth on Setup): pre-trace decoders finish before it and
	// senders only append it once helloFlagTrace was acked.
	if req.Trace.Valid() {
		b = req.Trace.AppendBinary(b)
	}
	return b
}

func decodeComputeRequest(p []byte) (*ComputeRequest, error) {
	r := &wireReader{b: p}
	req := &ComputeRequest{
		SessionID: r.str(),
		Block:     r.u32(),
		Epoch:     r.u64(),
		Masked:    r.float64s(),
	}
	req.Trace = r.traceContext()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

func appendComputeReply(b []byte, rep *ComputeReply) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Code))
	b = appendString(b, rep.Err)
	b = appendBool(b, rep.RekeyNeeded)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rep.ModeledTxDelay))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rep.ModeledCmpDelay))
	b = appendBool(b, rep.Result != nil)
	if rep.Result != nil {
		b = rep.Result.AppendBinary(b)
	}
	return b
}

func decodeComputeReply(p []byte) (*ComputeReply, error) {
	r := &wireReader{b: p}
	rep := &ComputeReply{
		Code:            serve.Code(r.u32()),
		Err:             r.str(),
		RekeyNeeded:     r.bool(),
		ModeledTxDelay:  r.f64(),
		ModeledCmpDelay: r.f64(),
	}
	if r.bool() {
		rep.Result = r.ciphertext()
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}

func appendBatchRequest(b []byte, req *BatchRequest) []byte {
	b = appendString(b, req.SessionID)
	b = binary.LittleEndian.AppendUint64(b, req.Epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.Blocks)))
	for _, blk := range req.Blocks {
		b = binary.LittleEndian.AppendUint32(b, blk)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.Masked)))
	for _, m := range req.Masked {
		b = appendFloat64s(b, m)
	}
	if req.Trace.Valid() {
		b = req.Trace.AppendBinary(b)
	}
	return b
}

func decodeBatchRequest(p []byte) (*BatchRequest, error) {
	r := &wireReader{b: p}
	req := &BatchRequest{SessionID: r.str(), Epoch: r.u64()}
	nb := int(r.u32())
	if r.err != nil || nb < 0 || nb > MaxBatch || len(r.b) < 4*nb {
		return nil, ErrBadFrame
	}
	req.Blocks = make([]uint32, nb)
	for i := range req.Blocks {
		req.Blocks[i] = r.u32()
	}
	nm := int(r.u32())
	if r.err != nil || nm < 0 || nm > MaxBatch {
		return nil, ErrBadFrame
	}
	req.Masked = make([][]float64, nm)
	for i := range req.Masked {
		req.Masked[i] = r.float64s()
	}
	req.Trace = r.traceContext()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// appendBatchItem encodes one streamed batch result: the item index
// followed by the BatchItem fields.
func appendBatchItem(b []byte, index int, item *BatchItem) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(index))
	b = binary.LittleEndian.AppendUint32(b, uint32(item.Code))
	b = appendString(b, item.Err)
	b = appendBool(b, item.Result != nil)
	if item.Result != nil {
		b = item.Result.AppendBinary(b)
	}
	return b
}

func decodeBatchItem(p []byte) (index int, item BatchItem, err error) {
	r := &wireReader{b: p}
	index = int(r.u32())
	item.Code = serve.Code(r.u32())
	item.Err = r.str()
	if r.bool() {
		item.Result = r.ciphertext()
	}
	if err := r.finish(); err != nil {
		return 0, BatchItem{}, err
	}
	return index, item, nil
}

// appendBatchDone encodes the batch trailer (aggregates only; items were
// streamed as frameBatchItem frames).
func appendBatchDone(b []byte, rep *BatchReply) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Code))
	b = appendString(b, rep.Err)
	b = appendBool(b, rep.RekeyNeeded)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rep.ModeledTxDelay))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(rep.ModeledCmpDelay))
}

func decodeBatchDone(p []byte) (*BatchReply, error) {
	r := &wireReader{b: p}
	rep := &BatchReply{
		Code:            serve.Code(r.u32()),
		Err:             r.str(),
		RekeyNeeded:     r.bool(),
		ModeledTxDelay:  r.f64(),
		ModeledCmpDelay: r.f64(),
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}

func appendRekeyRequest(b []byte, req *RekeyRequest) []byte {
	b = appendString(b, req.SessionID)
	b = appendCiphertexts(b, req.EncKey)
	b = appendBytes(b, req.Nonce)
	// Optional trailing field (see appendSetupRequest): the rotated
	// resume credential, only sent on resume-negotiated connections.
	if len(req.ResumeAuth) > 0 {
		b = appendBytes(b, req.ResumeAuth)
	}
	return b
}

func decodeRekeyRequest(p []byte) (*RekeyRequest, error) {
	r := &wireReader{b: p}
	req := &RekeyRequest{
		SessionID: r.str(),
		EncKey:    r.ciphertexts(maxWireEncKey),
		Nonce:     r.bytes(),
	}
	if r.err == nil && len(r.b) > 0 {
		req.ResumeAuth = r.bytes()
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

func appendRekeyReply(b []byte, rep *RekeyReply) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Code))
	b = appendString(b, rep.Err)
	return binary.LittleEndian.AppendUint64(b, rep.Epoch)
}

func decodeRekeyReply(p []byte) (*RekeyReply, error) {
	r := &wireReader{b: p}
	rep := &RekeyReply{Code: serve.Code(r.u32()), Err: r.str(), Epoch: r.u64()}
	rep.OK = rep.Code == serve.CodeOK && rep.Err == ""
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}

// maxResumeField bounds the variable-length resume handshake fields
// (challenge, MAC): both are fixed-size in practice (16 and 32 bytes)
// but the decoder tolerates growth without allowing unbounded allocation.
const maxResumeField = 64

func appendResumeRequest(b []byte, req *ResumeRequest) []byte {
	b = appendString(b, req.SessionID)
	b = binary.LittleEndian.AppendUint64(b, req.Epoch)
	return appendString(b, req.Profile)
}

func decodeResumeRequest(p []byte) (*ResumeRequest, error) {
	r := &wireReader{b: p}
	req := &ResumeRequest{SessionID: r.str(), Epoch: r.u64(), Profile: r.str()}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

func appendResumeChallenge(b []byte, ch *ResumeChallenge) []byte {
	return appendBytes(b, ch.Challenge)
}

func decodeResumeChallenge(p []byte) (*ResumeChallenge, error) {
	r := &wireReader{b: p}
	ch := &ResumeChallenge{Challenge: r.bytes()}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if len(ch.Challenge) == 0 || len(ch.Challenge) > maxResumeField {
		return nil, ErrBadFrame
	}
	return ch, nil
}

func appendResumeProof(b []byte, pr *ResumeProof) []byte {
	return appendBytes(b, pr.MAC)
}

func decodeResumeProof(p []byte) (*ResumeProof, error) {
	r := &wireReader{b: p}
	pr := &ResumeProof{MAC: r.bytes()}
	if err := r.finish(); err != nil {
		return nil, err
	}
	if len(pr.MAC) == 0 || len(pr.MAC) > maxResumeField {
		return nil, ErrBadFrame
	}
	return pr, nil
}

func appendResumeReply(b []byte, rep *ResumeReply) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Code))
	b = appendString(b, rep.Err)
	return binary.LittleEndian.AppendUint64(b, rep.Epoch)
}

func decodeResumeReply(p []byte) (*ResumeReply, error) {
	r := &wireReader{b: p}
	rep := &ResumeReply{Code: serve.Code(r.u32()), Err: r.str(), Epoch: r.u64()}
	rep.OK = rep.Code == serve.CodeOK && rep.Err == ""
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}

func appendRotKeysRequest(b []byte, req *RotKeysRequest) []byte {
	b = appendString(b, req.SessionID)
	return req.Keys.AppendBinary(b)
}

func decodeRotKeysRequest(p []byte) (*RotKeysRequest, error) {
	r := &wireReader{b: p}
	req := &RotKeysRequest{SessionID: r.str(), Keys: new(ckks.GaloisKeySet)}
	if r.err == nil {
		if n, err := req.Keys.DecodeFrom(r.b); err != nil {
			r.fail()
		} else {
			r.b = r.b[n:]
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return req, nil
}

func appendRotKeysReply(b []byte, rep *RotKeysReply) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(rep.Code))
	return appendString(b, rep.Err)
}

func decodeRotKeysReply(p []byte) (*RotKeysReply, error) {
	r := &wireReader{b: p}
	rep := &RotKeysReply{Code: serve.Code(r.u32()), Err: r.str()}
	rep.OK = rep.Code == serve.CodeOK && rep.Err == ""
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}

// MatVec requests and replies reuse the Compute codecs verbatim — the
// payloads are field-identical (masked block in, ciphertext out); the
// frame type alone selects the affine or matrix–vector semantics.

// resumeMAC computes the resume possession proof:
// HMAC-SHA256(auth, challenge || sessionID || epoch_le64). Shared by the
// client (proving) and server (verifying) sides.
func resumeMAC(auth, challenge []byte, sessionID string, epoch uint64) []byte {
	mac := hmac.New(sha256.New, auth)
	mac.Write(challenge)
	mac.Write([]byte(sessionID))
	var e [8]byte
	binary.LittleEndian.PutUint64(e[:], epoch)
	mac.Write(e[:])
	return mac.Sum(nil)
}

// deriveResumeAuth derives the session resume credential from raw QKD key
// material, domain-separated from every other use of the key. The
// credential is registered with the server at Setup/Rekey and never
// reused across epochs (the material changes every rotation).
func deriveResumeAuth(qkdMaterial []byte) []byte {
	h := sha256.New()
	h.Write([]byte("quhe/resume/v1"))
	h.Write(qkdMaterial)
	return h.Sum(nil)
}
