package edge

// Chaos suite (PR 8): drives all three wire generations — framed v3, gob
// v2 (pipelined) and gob v1 (synchronous) — through the faultnet injector
// and asserts the failure contract: every injected transport fault surfaces
// as a typed error (serve.ErrConnClosed / serve.ErrDeadline), never a hang
// and never a wrong plaintext; and a killed v3 connection resumes its
// session with zero new key generations and zero new QKD withdrawals.

import (
	"context"
	"encoding/gob"
	"errors"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"quhe/internal/faultnet"
	"quhe/internal/he/ckks"
	"quhe/internal/qkd"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

const chaosIdle = 250 * time.Millisecond

// armedConn delegates to the raw connection until armed, then routes every
// Read/Write through the fault-injected wrapper — the handshake and warmup
// traffic always succeed, and the injected fault lands deterministically on
// the request under test.
type armedConn struct {
	raw    net.Conn
	faulty net.Conn
	armed  *atomic.Bool
}

func (a *armedConn) Read(b []byte) (int, error) {
	if a.armed.Load() {
		return a.faulty.Read(b)
	}
	return a.raw.Read(b)
}

func (a *armedConn) Write(b []byte) (int, error) {
	if a.armed.Load() {
		return a.faulty.Write(b)
	}
	return a.raw.Write(b)
}

func (a *armedConn) Close() error                       { return a.faulty.Close() }
func (a *armedConn) LocalAddr() net.Addr                { return a.raw.LocalAddr() }
func (a *armedConn) RemoteAddr() net.Addr               { return a.raw.RemoteAddr() }
func (a *armedConn) SetDeadline(t time.Time) error      { return a.raw.SetDeadline(t) }
func (a *armedConn) SetReadDeadline(t time.Time) error  { return a.raw.SetReadDeadline(t) }
func (a *armedConn) SetWriteDeadline(t time.Time) error { return a.raw.SetWriteDeadline(t) }

// armedDialer dials plain TCP and wraps the result so the fault schedule
// can be switched on mid-session.
func armedDialer(inj *faultnet.Injector, armed *atomic.Bool) func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		raw, err := net.DialTimeout(network, addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		return &armedConn{raw: raw, faulty: inj.Wrap(raw), armed: armed}, nil
	}
}

func chaosServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.Model.Weights == nil {
		cfg.Model = Model{Weights: []float64{0.5}, Bias: []float64{0.1}}
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// v1Session is a hand-rolled synchronous gob v1 client (the oldest wire
// generation still served): same crypto as the real client, seed-era wire
// shapes, no pipelining, no typed codes.
type v1Session struct {
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	ev     *ckks.Evaluator
	sk     *ckks.SecretKey
	ctx    *ckks.Context
	cipher *transcipher.Cipher
	key    []float64
	nonce  []byte
	id     string
}

func dialV1Chaos(t *testing.T, conn net.Conn, sessionID string) *v1Session {
	t.Helper()
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 71)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 72)
	key, err := cipher.DeriveKey([]byte("v1-chaos-material"))
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	s := &v1Session{
		conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn),
		ev: ev, sk: sk, ctx: ctx, cipher: cipher, key: key,
		nonce: []byte("edge:v1-chaos"), id: sessionID,
	}
	if err := s.enc.Encode(&v1Envelope{Setup: &v1SetupRequest{
		SessionID: sessionID,
		LogN:      ctx.Params.LogN,
		Depth:     ctx.Params.Depth,
		PK:        pk, RLK: rlk, EncKey: encKey, Nonce: s.nonce,
	}}); err != nil {
		t.Fatalf("v1 setup send: %v", err)
	}
	var reply v1ReplyEnvelope
	if err := s.dec.Decode(&reply); err != nil {
		t.Fatalf("v1 setup recv: %v", err)
	}
	if reply.Setup == nil || !reply.Setup.OK {
		t.Fatalf("v1 setup rejected: %+v", reply.Setup)
	}
	return s
}

func (s *v1Session) compute(block uint32, data []float64) ([]float64, error) {
	padded := make([]float64, s.cipher.Slots())
	copy(padded, data)
	masked, err := s.cipher.Mask(s.key, s.nonce, block, padded)
	if err != nil {
		return nil, err
	}
	if err := s.enc.Encode(&v1Envelope{Compute: &v1ComputeRequest{
		SessionID: s.id, Block: block, Masked: masked,
	}}); err != nil {
		return nil, err
	}
	var reply v1ReplyEnvelope
	if err := s.dec.Decode(&reply); err != nil {
		return nil, err
	}
	if reply.Compute == nil {
		return nil, errors.New("missing v1 compute reply")
	}
	if reply.Compute.Err != "" {
		return nil, errors.New(reply.Compute.Err)
	}
	return ckks.NewEncoder(s.ctx).DecodeReal(s.ev.Decrypt(s.sk, reply.Compute.Result)), nil
}

// TestChaosMatrix is the generation × fault matrix: {v3, gob v2, gob v1} ×
// {mid-frame drop, stall past IdleTimeout, corrupt frame}. Corruption is
// v3+CRC only — the gob generations have no integrity layer, so a flipped
// bit is undetectable there by design (the CRC trailer is exactly what v3
// added to close that hole). Reconnect is disabled: the matrix pins what
// the failure looks like when it is NOT papered over.
func TestChaosMatrix(t *testing.T) {
	faults := []struct {
		name string
		spec faultnet.Spec
	}{
		{"drop", faultnet.Spec{DropProb: 1}},
		{"stall", faultnet.Spec{StallProb: 1, Stall: 3 * chaosIdle}},
		{"corrupt", faultnet.Spec{CorruptProb: 1}},
	}
	for _, fault := range faults {
		for _, gen := range []string{"v3", "gob2", "gob1"} {
			if fault.name == "corrupt" && gen != "v3" {
				continue
			}
			fault, gen := fault, gen
			t.Run(gen+"/"+fault.name, func(t *testing.T) {
				t.Parallel()
				srv := chaosServer(t, ServerConfig{IdleTimeout: chaosIdle, FrameChecksums: true})
				inj := faultnet.New(faultnet.Config{Seed: 11, Write: fault.spec})
				var armed atomic.Bool
				dial := armedDialer(inj, &armed)

				if gen == "gob1" {
					conn, err := dial("tcp", srv.Addr())
					if err != nil {
						t.Fatal(err)
					}
					defer conn.Close()
					s := dialV1Chaos(t, conn, "chaos-"+gen+"-"+fault.name)
					got, err := s.compute(0, []float64{0.8})
					if err != nil {
						t.Fatalf("pre-fault v1 compute: %v", err)
					}
					if math.Abs(got[0]-0.5) > 0.05 {
						t.Fatalf("pre-fault v1 result %v, want ≈0.5", got[0])
					}
					armed.Store(true)
					conn.SetDeadline(time.Now().Add(10 * time.Second))
					done := make(chan error, 1)
					go func() {
						_, err := s.compute(1, []float64{0.4})
						done <- err
					}()
					select {
					case err := <-done:
						if err == nil {
							t.Fatal("v1 compute survived the injected fault")
						}
					case <-time.After(20 * time.Second):
						t.Fatal("v1 compute hung under injected fault")
					}
					return
				}

				cfg := DialConfig{Dialer: dial, RequestTimeout: 10 * time.Second}
				if gen == "v3" {
					cfg.Protocol, cfg.Checksum = ProtoV3, true
				} else {
					cfg.Protocol = ProtoGob
				}
				client, err := DialWith(srv.Addr(), "chaos-"+gen+"-"+fault.name,
					[]byte("chaos-material"), 21, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer client.Close()
				if gen == "v3" && fault.name == "corrupt" && !client.Checksums() {
					t.Fatal("CRC trailers not negotiated; the corrupt case would be vacuous")
				}
				got, err := client.Compute(0, []float64{0.8})
				if err != nil {
					t.Fatalf("pre-fault compute: %v", err)
				}
				if math.Abs(got[0]-0.5) > 0.05 {
					t.Fatalf("pre-fault result %v, want ≈0.5", got[0])
				}

				armed.Store(true)
				done := make(chan error, 1)
				go func() {
					_, err := client.Compute(1, []float64{0.4})
					done <- err
				}()
				select {
				case err := <-done:
					if err == nil {
						t.Fatal("compute succeeded through the injected fault")
					}
					if !errors.Is(err, serve.ErrConnClosed) && !errors.Is(err, serve.ErrDeadline) {
						t.Errorf("chaos error not typed (want ErrConnClosed or ErrDeadline): %v", err)
					}
				case <-time.After(20 * time.Second):
					t.Fatal("compute hung under injected fault")
				}
			})
		}
	}
}

// TestResumeRoundTrip kills a live v3 connection and proves the resume
// handshake re-attaches the session without a new HE key generation and
// without a new QKD withdrawal — the whole point of resume: reconnect cost
// is one challenge-MAC round trip, not a key ceremony.
func TestResumeRoundTrip(t *testing.T) {
	srv := chaosServer(t, ServerConfig{
		IdleTimeout:    2 * time.Second,
		ResumeWindow:   10 * time.Second,
		FrameChecksums: true,
	})
	kc := qkd.NewKeyCenter()
	if err := kc.Provision("resume-rt", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := kc.RunExchange("resume-rt", 0.97, 8192, 5); err != nil {
		t.Fatal(err)
	}
	inj := faultnet.New(faultnet.Config{Seed: 3}) // no faults: pure kill switch
	client, err := DialQKDWith(srv.Addr(), "resume-rt", kc, 9, DialConfig{
		Protocol:       ProtoV3,
		Checksum:       true,
		Dialer:         inj.Dialer(2 * time.Second),
		Reconnect:      true,
		RequestTimeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	check := func(block uint32) {
		t.Helper()
		got, err := client.Compute(block, []float64{0.8})
		if err != nil {
			t.Fatalf("block %d: %v", block, err)
		}
		if math.Abs(got[0]-0.5) > 0.05 {
			t.Fatalf("block %d = %v, want ≈0.5 (wrong plaintext after resume)", block, got[0])
		}
	}
	for b := uint32(0); b < 3; b++ {
		check(b)
	}

	withdrawals := kc.Counters().Withdrawals
	if n := inj.CloseAll(); n == 0 {
		t.Fatal("no live connection to kill")
	}
	for b := uint32(3); b < 6; b++ {
		check(b)
	}

	st := client.Stats()
	if st.Keygens != 1 {
		t.Errorf("keygens = %d after resume, want 1 (dial only)", st.Keygens)
	}
	if st.Reconnects < 1 || st.Resumes < 1 {
		t.Errorf("reconnects/resumes = %d/%d, want ≥1 each", st.Reconnects, st.Resumes)
	}
	if got := kc.Counters().Withdrawals; got != withdrawals {
		t.Errorf("resume withdrew QKD key: %d withdrawals before, %d after", withdrawals, got)
	}
}

// TestDrainClosesIdleConns: a graceful drain closes connections the moment
// they have no in-flight work, and clients see the typed connection-closed
// failure, not a hang.
func TestDrainClosesIdleConns(t *testing.T) {
	srv := chaosServer(t, ServerConfig{})
	client, err := Dial(srv.Addr(), "drainee", []byte("material"), 13)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Compute(0, []float64{0.8}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain of an idle server: %v", err)
	}
	if !srv.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if _, err := client.Compute(1, []float64{0.4}); err == nil {
		t.Error("compute succeeded on a drained connection")
	} else if !errors.Is(err, serve.ErrConnClosed) && !errors.Is(err, serve.ErrDeadline) {
		t.Errorf("post-drain error not typed: %v", err)
	}
	if _, err := Dial(srv.Addr(), "late", []byte("material"), 14); err == nil {
		t.Error("dial succeeded against a drained server")
	}
}
