package edge

import (
	"bufio"
	"context"
	"crypto/hmac"
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quhe/internal/costmodel"
	"quhe/internal/he/ckks"
	"quhe/internal/he/profile"
	"quhe/internal/obs"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

// Model is the inference the server evaluates on encrypted data. The
// slot-wise affine layer out[i] = Weights[i]·x[i] + Bias[i] (Weights
// quantized to multiples of 1/WeightScale when applied) serves every
// Compute; an optional square Matrix additionally enables the encrypted
// matrix–vector path out = Matrix·x + MatrixBias, evaluated with the
// hoisted BSGS rotation kernel on MatVec requests.
type Model struct {
	Weights []float64
	Bias    []float64
	// Matrix is the packed model matrix for MatVec requests: square, with
	// a dimension dividing every served profile's slot count. Empty
	// disables the matvec capability (the hello ack never advertises it).
	Matrix [][]float64
	// MatrixBias is added slot-wise to the matvec output; nil for none.
	MatrixBias []float64
}

// ServerConfig parameterizes the edge server.
type ServerConfig struct {
	// Model is the inference applied to every block.
	Model Model
	// UplinkRateBps models the client upload rate for delay reporting.
	// Default 5e6.
	UplinkRateBps float64
	// ServerHz models the CPU share for delay reporting. Default 3.3e9.
	ServerHz float64
	// Logf sinks diagnostics; nil discards them.
	Logf func(format string, args ...interface{})
	// Workers sizes each security profile's evaluator pool (and the
	// scheduler parallelism). Default GOMAXPROCS. Workers are built
	// lazily, so profiles without traffic cost nothing; evaluator memory
	// is bounded by Workers × live profiles, never by the session count.
	Workers int
	// QueueDepth bounds the scheduler backlog; pipelined requests beyond
	// it are shed with serve.CodeOverloaded. Default 4×Workers. With a
	// Control plane attached this is the built ceiling — the plan may
	// shrink the live depth below it.
	QueueDepth int
	// MaxSessions caps resident sessions; registering past the cap
	// evicts the least recently used. Default 1024; negative = unbounded.
	// A Control plane may shrink the live cap below this built ceiling.
	MaxSessions int
	// RekeyBytes is the per-key byte budget: once a session has served
	// this many masked bytes under one key, computes fail with
	// serve.CodeRekeyRequired until the client rekeys. 0 disables
	// enforcement. With a Control plane attached, the plan's per-session
	// budgets (derived from the paper's security-level utility) take
	// precedence and RekeyBytes is only the fallback.
	RekeyBytes int64
	// Profiles is the security-profile registry sessions may register on:
	// the paper's λ choice actuated as real CKKS parameter sets. Nil
	// selects the shared built-in registry (profile.Default()); its
	// default member carries the historical fixed parameter set, so
	// legacy peers are unaffected.
	Profiles *profile.Registry
	// CalibrateProfiles measures every registry profile's real per-block
	// cost at server startup (profile.Registry.CalibrateAll) and installs
	// the results as the cost coefficients the control plane plans with,
	// replacing the modeled a·L·N·log2N values. Startup pays one key
	// generation and a few transcipher rounds per profile, so it is opt-in;
	// leave false for tests and latency-sensitive restarts.
	CalibrateProfiles bool
	// Control, when non-nil, closes the loop with a control plane
	// (internal/control): Setup and compute admission are delegated to
	// it, profile negotiation follows its per-route λ plan, rekey budgets
	// come from its plan, and per-block telemetry is published back. Nil
	// preserves the static admit-until-evicted behavior exactly.
	Control Controller
	// BatchWindow bounds the in-flight item frames of one streaming (v3)
	// batch: an item is not submitted to the scheduler until an earlier
	// item's reply frame has reached the socket once the window is full,
	// so a slow client reading item frames stalls only its own batch,
	// never an eval-pool worker. Default QueueDepth (capped at that, too:
	// larger windows could let one batch shed itself on an idle server).
	BatchWindow int
	// LegacyGobOnly disables the framed v3 protocol, emulating a pre-v3
	// server: every connection is served on the gob path, and v3 hellos
	// fail to gob-decode so v3 clients fall back. Exists for
	// compatibility testing; leave false in production.
	LegacyGobOnly bool
	// FrameChecksums accepts per-frame CRC32C trailers from v3 clients
	// that request them at the handshake (integrity on untrusted links).
	// Clients that do not ask — including every pre-checksum client —
	// are served without trailers, so enabling this is always safe.
	FrameChecksums bool
	// DebugAddr, when non-empty, binds the observability debug plane
	// (obs.ServeDebug) on that address: /metrics in the Prometheus text
	// format, /debug/pprof/*, /debug/plan (the controller's live plan),
	// /debug/trace (chrome://tracing span dump), /debug/slo (objectives,
	// attainment and burn rates) and /debug/keyledger (the QKD key-flow
	// ledger, when KeyLedgerJSON is wired). Off by default; bind
	// loopback ("127.0.0.1:0") unless the scrape network is trusted — the
	// plane serves operational internals without authentication.
	DebugAddr string
	// Obs is the metrics registry the server publishes into. Nil creates
	// a private registry; pass a shared one to combine server and
	// control-plane series on a single /metrics page.
	Obs *obs.Registry
	// DisableObs turns the observability substrate off entirely — no
	// registry, no tracer, no per-stage instrumentation. Exists so the
	// overhead benchmark can compare the instrumented hot path against
	// the bare one; leave false in production.
	DisableObs bool
	// IdleTimeout bounds how long a connection may sit with no inbound
	// frames and no in-flight work before the server closes it: half-dead
	// peers release their sessions back to resumable state instead of
	// pinning them. A connection waiting on its own replies (queued
	// computes, streaming batches) is not idle. The timeout also bounds a
	// single frame's read, so it must comfortably exceed the worst-case
	// frame transfer time (Setup frames run to megabytes). 0 disables.
	IdleTimeout time.Duration
	// ResumeWindow bounds how long a session outlives its last connection
	// before being reclaimed: within the window a reconnecting client can
	// resume (session ID + epoch + possession proof) with no re-keygen
	// and no new QKD withdrawal; past it the session is swept and a
	// resume fails typed. 0 keeps the pre-window behavior — sessions
	// survive disconnects until LRU eviction.
	ResumeWindow time.Duration
	// KeyLedgerJSON, when set, is rendered at /debug/keyledger on the
	// debug plane. The server never sees QKD withdrawals itself (clients
	// talk to the key centre directly), so the deployment wires in the
	// ledger snapshot — typically qkd.(*Ledger).Snapshot via closure.
	KeyLedgerJSON func() any
}

// profileRuntime is one security profile's serving substrate: the shared
// CKKS context and the transciphering cipher over it. Runtimes are built
// lazily per profile and cached for the server's lifetime; the matching
// evaluator pool lives in the per-profile PoolSet.
type profileRuntime struct {
	prof   *profile.Profile
	ctx    *ckks.Context
	cipher *transcipher.Cipher

	// The matvec plan — the model matrix's diagonals encoded at the
	// transcipher output level and scale — is built once per profile on
	// first use and shared by every worker (plans are read-only during
	// evaluation). mvErr latches a build failure so each request fails
	// typed instead of retrying the doomed encode.
	mvOnce sync.Once
	mvPlan *ckks.MatVecPlan
	mvErr  error
}

// Server is the QuHE edge server: it accepts client sessions — each on a
// negotiated security profile — transciphers uploads and computes on them
// homomorphically. Safe for concurrent clients; see the package comment
// for the serving architecture.
type Server struct {
	cfg ServerConfig
	reg *profile.Registry
	def *profileRuntime

	// runtimes maps profile ID → *profileRuntime. Reads on the compute
	// hot path are lock-free (sync.Map, plus the def fast path); rtMu
	// only serializes first-use builds.
	rtMu     sync.Mutex
	runtimes sync.Map

	listener net.Listener

	store *serve.Store
	pools *serve.PoolSet
	sched *serve.Scheduler

	// met is the observability instrument set (nil when DisableObs);
	// debug the opt-in HTTP debug plane (nil unless DebugAddr set).
	met   *serverObs
	debug *obs.DebugServer

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	// conns tracks live connections so Close can tear them down: without
	// it, a peer that stalls mid-read (batch writer blocked on its
	// socket) would pin Close in wg.Wait forever. Each connection's state
	// carries its in-flight work count (Drain's idleness signal) and its
	// attached sessions (detached into the resume window on teardown).
	conns map[net.Conn]*connState

	// draining rejects new sessions, resumes and computes while Drain
	// winds live connections down; lnOnce makes the listener close safe
	// to reach from both Drain and Close.
	draining atomic.Bool
	lnOnce   sync.Once
	lnErr    error
	// reapStop ends the resume-window reaper (nil when ResumeWindow is 0).
	reapStop chan struct{}
}

// connState is the server's per-connection bookkeeping. active counts
// dispatched requests whose replies have not reached the socket yet —
// Drain closes a connection only when it reads zero. attached holds the
// sessions bound to the connection (by Setup or a granted resume); on
// teardown each is detached into the resume window.
type connState struct {
	active atomic.Int64

	mu       sync.Mutex
	attached map[string]*serve.Session
}

// attach binds a session to the connection (idempotent per session).
func (cs *connState) attach(sess *serve.Session) {
	cs.mu.Lock()
	if _, ok := cs.attached[sess.ID]; !ok {
		if cs.attached == nil {
			cs.attached = make(map[string]*serve.Session, 1)
		}
		cs.attached[sess.ID] = sess
		sess.Attach()
	}
	cs.mu.Unlock()
}

// detachAll releases every attached session into the resume window.
func (cs *connState) detachAll(nowUnixNano int64) {
	cs.mu.Lock()
	for _, sess := range cs.attached {
		sess.Detach(nowUnixNano)
	}
	cs.attached = nil
	cs.mu.Unlock()
}

// NewServer builds a server over the profile registry and starts
// listening on addr (use "127.0.0.1:0" for tests). The default profile's
// runtime is built eagerly so configuration errors fail here, not on the
// first Setup.
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.UplinkRateBps <= 0 {
		cfg.UplinkRateBps = 5e6
	}
	if cfg.ServerHz <= 0 {
		cfg.ServerHz = 3.3e9
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 1024
	} else if cfg.MaxSessions < 0 {
		cfg.MaxSessions = 0 // unbounded
	}
	if cfg.BatchWindow <= 0 || cfg.BatchWindow > cfg.QueueDepth {
		cfg.BatchWindow = cfg.QueueDepth
	}
	if cfg.Profiles == nil {
		cfg.Profiles = profile.Default()
	}
	if cfg.CalibrateProfiles {
		if err := cfg.Profiles.CalibrateAll(KeyLen, 3); err != nil {
			return nil, fmt.Errorf("edge: profile calibration: %w", err)
		}
	}
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Profiles,
		store: serve.NewStore(cfg.MaxSessions),
	}
	def, err := s.runtime(s.reg.DefaultID())
	if err != nil {
		return nil, fmt.Errorf("edge: default profile: %w", err)
	}
	s.def = def
	s.pools = serve.NewPoolSet(func(profileID string) (*serve.EvalPool, error) {
		rt, err := s.runtime(profileID)
		if err != nil {
			return nil, err
		}
		p := serve.NewEvalPool(rt.ctx, cfg.Workers, 1, func(int) any { return rt.cipher.NewScratch() })
		p.SetProfileLabel(profileID)
		if s.met != nil {
			s.met.registerPoolGauges(profileID, p)
		}
		return p, nil
	})
	defPool, err := s.pools.Get(s.reg.DefaultID())
	if err != nil {
		return nil, fmt.Errorf("edge: default pool: %w", err)
	}
	s.sched = serve.NewScheduler(defPool, cfg.QueueDepth)
	if !cfg.DisableObs {
		reg := cfg.Obs
		if reg == nil {
			reg = obs.NewRegistry()
		}
		s.met = newServerObs(reg, s)
		// The default pool was built before met existed; backfill its
		// gauges so the first /metrics scrape already shows it.
		s.met.registerPoolGauges(s.reg.DefaultID(), defPool)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.sched.Close()
		return nil, fmt.Errorf("edge: listen: %w", err)
	}
	s.listener = ln
	s.conns = make(map[net.Conn]*connState)
	if cfg.Control != nil {
		cfg.Control.BindServe(s.pools, s.sched, s.store)
	}
	if cfg.DebugAddr != "" && s.met != nil {
		dcfg := obs.DebugConfig{
			Registry:  s.met.reg,
			Tracer:    s.met.tracer,
			SLO:       s.met.sloSnapshot,
			KeyLedger: cfg.KeyLedgerJSON,
		}
		// The Controller interface stays minimal; controllers that can
		// render their plan opt into /debug/plan by implementing PlanJSON.
		if pj, ok := cfg.Control.(interface{ PlanJSON() any }); ok {
			dcfg.Plan = pj.PlanJSON
		}
		ds, err := obs.ServeDebug(cfg.DebugAddr, dcfg)
		if err != nil {
			ln.Close()
			s.sched.Close()
			return nil, fmt.Errorf("edge: debug plane: %w", err)
		}
		s.debug = ds
	}
	if cfg.ResumeWindow > 0 {
		s.reapStop = make(chan struct{})
		s.wg.Add(1)
		go s.reapLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// reapLoop sweeps sessions whose resume window has expired: detached
// longer than ResumeWindow ago, reclaimed ahead of normal LRU pressure.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	tick := s.cfg.ResumeWindow / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.cfg.ResumeWindow).UnixNano()
			if n := s.store.SweepExpired(cutoff); n > 0 {
				if m := s.met; m != nil {
					m.resumeExpired.Add(int64(n))
				}
				s.cfg.Logf("edge: resume window expired for %d sessions", n)
			}
		}
	}
}

// runtime returns the profile's serving substrate, building and caching
// it on first use. The default profile and already-built profiles
// resolve without taking a lock (the per-request hot path); rtMu only
// serializes first-use builds, and context construction is shared
// process-wide through the profile registry, so only the cipher binding
// is per server.
func (s *Server) runtime(profileID string) (*profileRuntime, error) {
	if def := s.def; def != nil && profileID == def.prof.ID {
		return def, nil
	}
	if rt, ok := s.runtimes.Load(profileID); ok {
		return rt.(*profileRuntime), nil
	}
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	if rt, ok := s.runtimes.Load(profileID); ok {
		return rt.(*profileRuntime), nil
	}
	prof, ok := s.reg.Get(profileID)
	if !ok {
		return nil, fmt.Errorf("%w: unknown profile %q", serve.ErrProfileDenied, profileID)
	}
	ctx, err := prof.Context()
	if err != nil {
		return nil, fmt.Errorf("edge: context for %s: %w", profileID, err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		return nil, fmt.Errorf("edge: cipher for %s: %w", profileID, err)
	}
	rt := &profileRuntime{prof: prof, ctx: ctx, cipher: cipher}
	s.runtimes.Store(profileID, rt)
	return rt, nil
}

// sessionRuntime resolves a session's profile to its runtime and
// evaluator pool (sessions registered before the profile era carry an
// empty profile and run on the default).
func (s *Server) sessionRuntime(sess *serve.Session) (*profileRuntime, *serve.EvalPool, error) {
	profID := sess.Profile
	if profID == "" {
		profID = s.reg.DefaultID()
	}
	rt, err := s.runtime(profID)
	if err != nil {
		return nil, nil, err
	}
	pool, err := s.pools.Get(profID)
	if err != nil {
		return nil, nil, err
	}
	return rt, pool, nil
}

// matvecPlan returns the profile's BSGS matrix–vector plan, building it
// on first use. The plan targets the transcipher output contract — level
// top−2 at scale Δ²/p (Δ the top prime, p the one below) — so a MatVec
// request transciphers its block and feeds the result straight into the
// kernel with no level or scale adjustment. Built with a throwaway
// evaluator; the plan itself is immutable and shared across workers.
func (s *Server) matvecPlan(rt *profileRuntime) (*ckks.MatVecPlan, error) {
	rt.mvOnce.Do(func() {
		if len(s.cfg.Model.Matrix) == 0 {
			rt.mvErr = fmt.Errorf("%w: no model matrix configured", serve.ErrMatVecUnavailable)
			return
		}
		top := rt.ctx.MaxLevel()
		if top < 3 {
			rt.mvErr = fmt.Errorf("%w: profile %s too shallow (depth %d; matvec needs the transcipher's two levels plus one)",
				serve.ErrMatVecUnavailable, rt.prof.ID, top)
			return
		}
		delta := float64(rt.ctx.Primes[top])
		scale := delta * delta / float64(rt.ctx.Primes[top-1])
		ev := ckks.NewEvaluator(rt.ctx, 1)
		plan, err := ev.NewMatVecPlan(s.cfg.Model.Matrix, s.cfg.Model.MatrixBias, top-2, scale)
		if err != nil {
			rt.mvErr = fmt.Errorf("%w: plan for profile %s: %v", serve.ErrMatVecUnavailable, rt.prof.ID, err)
			return
		}
		rt.mvPlan = plan
	})
	return rt.mvPlan, rt.mvErr
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// ObsRegistry returns the server's metrics registry (the configured
// shared one or the private default), nil when DisableObs.
func (s *Server) ObsRegistry() *obs.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}

// Tracer returns the server's block tracer, nil when DisableObs.
func (s *Server) Tracer() *obs.Tracer {
	if s.met == nil {
		return nil
	}
	return s.met.tracer
}

// DebugAddr returns the debug plane's bound address, "" when the plane
// was not configured.
func (s *Server) DebugAddr() string {
	if s.debug == nil {
		return ""
	}
	return s.debug.Addr()
}

// closeListener closes the listener exactly once (Drain and Close both
// reach it) and remembers the first close's error.
func (s *Server) closeListener() error {
	s.lnOnce.Do(func() { s.lnErr = s.listener.Close() })
	return s.lnErr
}

// Close stops accepting, tears down live connections (so a stalled peer
// cannot pin shutdown), waits for in-flight handlers to finish and drains
// the scheduler.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.debug != nil {
		s.debug.Close()
	}
	err := s.closeListener()
	for _, c := range conns {
		c.Close()
	}
	if s.reapStop != nil {
		close(s.reapStop)
	}
	s.wg.Wait()
	s.sched.Close()
	return err
}

// Drain gracefully winds the server down for a restart: stop accepting,
// turn new sessions, resumes and computes away with serve.CodeDraining,
// let in-flight blocks finish, and close each connection the moment it
// has no work left — nudging idle clients off to reconnect elsewhere.
// Returns nil once every connection is gone, or ctx's error after
// force-closing whatever remained when the context expired. Call Close
// afterwards to release the remaining resources (scheduler, debug
// plane); Drain leaves them running so in-flight work can finish.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.Swap(true) {
		if m := s.met; m != nil {
			m.drains.Inc()
		}
		s.cfg.Logf("edge: draining")
	}
	s.closeListener()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		busy := 0
		idle := make([]net.Conn, 0, len(s.conns))
		for conn, cs := range s.conns {
			if cs.active.Load() == 0 {
				idle = append(idle, conn)
			} else {
				busy++
			}
		}
		s.mu.Unlock()
		for _, c := range idle {
			c.Close()
		}
		if busy == 0 && len(idle) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			conns := make([]net.Conn, 0, len(s.conns))
			for c := range s.conns {
				conns = append(conns, c)
			}
			s.mu.Unlock()
			for _, c := range conns {
				c.Close()
			}
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Draining reports whether the server is turning new work away.
func (s *Server) Draining() bool { return s.draining.Load() }

// trackConn registers a live connection for Close-time teardown; it
// reports nil (and closes the connection) when the server is already
// closing.
func (s *Server) trackConn(conn net.Conn) *connState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		conn.Close()
		return nil
	}
	cs := &connState{}
	s.conns[conn] = cs
	return cs
}

func (s *Server) forgetConn(conn net.Conn) {
	s.mu.Lock()
	cs := s.conns[conn]
	delete(s.conns, conn)
	s.mu.Unlock()
	if cs != nil {
		cs.detachAll(time.Now().UnixNano())
	}
}

// Blocks returns the number of blocks processed for a session. Read-only:
// it does not refresh the session's LRU position.
func (s *Server) Blocks(sessionID string) int {
	if sess, ok := s.store.Peek(sessionID); ok {
		return int(sess.Stats().Blocks)
	}
	return 0
}

// SessionStats snapshots a session's usage counters. Read-only: it does
// not refresh the session's LRU position, so stats polling never protects
// an idle session from eviction.
func (s *Server) SessionStats(sessionID string) (serve.Stats, bool) {
	sess, ok := s.store.Peek(sessionID)
	if !ok {
		return serve.Stats{}, false
	}
	return sess.Stats(), true
}

// SessionProfile reports the security profile a session was registered
// on. Read-only, like SessionStats.
func (s *Server) SessionProfile(sessionID string) (string, bool) {
	sess, ok := s.store.Peek(sessionID)
	if !ok {
		return "", false
	}
	if sess.Profile == "" {
		return s.reg.DefaultID(), true
	}
	return sess.Profile, true
}

// Sessions counts resident sessions.
func (s *Server) Sessions() int { return s.store.Len() }

// Evictions counts sessions displaced by the MaxSessions cap.
func (s *Server) Evictions() int64 { return s.store.Evictions() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// connWriter serializes gob reply encoding: with pipelined requests,
// worker goroutines and the decode loop reply concurrently on one
// connection. An encode failure poisons the gob stream, so the writer
// tears the connection down — exactly once, through the teardown closure
// shared with the read loop — and the client's pending requests then fail
// with a connection error instead of hanging on replies that will never
// arrive.
type connWriter struct {
	mu  sync.Mutex
	enc *gob.Encoder
	// failed latches the first encode error. Atomic for the same reason
	// as frameWriter.failed: mu is held across socket writes, so dead()
	// must not take it.
	failed   atomic.Bool
	teardown func()
	logf     func(string, ...interface{})
}

// dead reports whether the connection's write side has already failed.
func (w *connWriter) dead() bool { return w.failed.Load() }

func (w *connWriter) send(reply *replyEnvelope) {
	w.mu.Lock()
	if w.failed.Load() {
		w.mu.Unlock()
		return
	}
	err := w.enc.Encode(reply)
	if err != nil {
		w.failed.Store(true)
	}
	w.mu.Unlock()
	if err != nil {
		w.logf("edge: encode: %v", err)
		w.teardown()
	}
}

// serveConn sniffs the protocol generation from the connection's first
// bytes: v3 clients lead with the frame magic (bytes gob never emits at
// stream start), everything else is a gob v1/v2 peer. Both paths share
// one close-once teardown so a writer-side failure and the read loop's
// exit cannot double-close the connection.
func (s *Server) serveConn(conn net.Conn) {
	cs := s.trackConn(conn)
	if cs == nil {
		return
	}
	var once sync.Once
	teardown := func() {
		once.Do(func() {
			conn.Close()
			s.forgetConn(conn)
		})
	}
	defer teardown()
	br := bufio.NewReaderSize(conn, wireBufSize)
	if !s.cfg.LegacyGobOnly {
		if first, err := br.Peek(2); err == nil &&
			first[0] == frameMagic0 && first[1] == frameMagic1 {
			s.serveV3(conn, br, teardown, cs)
			return
		}
	}
	s.serveGob(br, conn, teardown, cs)
}

// awaitFrame enforces the idle deadline before a blocking read: it peeks
// for the next byte under a read deadline of IdleTimeout, extending the
// wait while the connection has in-flight work (a client waiting on its
// own replies is not idle). A true idle expiry closes the connection —
// the session detaches into the resume window. With IdleTimeout unset it
// is a no-op and the subsequent read blocks indefinitely, matching the
// pre-timeout behavior. Returns false when the connection should be torn
// down (the caller's read would fail anyway).
func (s *Server) awaitFrame(conn net.Conn, br *bufio.Reader, cs *connState) bool {
	idle := s.cfg.IdleTimeout
	if idle <= 0 {
		return true
	}
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		if _, err := br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if cs.active.Load() > 0 {
					continue // replies in flight; not idle
				}
				if m := s.met; m != nil {
					m.idleTimeouts.Inc()
				}
				s.cfg.Logf("edge: idle timeout (%s) — releasing connection", idle)
			}
			return false
		}
		// Bytes are arriving: give the whole frame a fresh budget.
		conn.SetReadDeadline(time.Now().Add(idle))
		return true
	}
}

func (s *Server) serveGob(br *bufio.Reader, conn net.Conn, teardown func(), cs *connState) {
	if m := s.met; m != nil {
		m.connsGob.Add(1)
		defer m.connsGob.Add(-1)
	}
	dec := gob.NewDecoder(br)
	cw := &connWriter{enc: gob.NewEncoder(conn), teardown: teardown, logf: s.cfg.Logf}
	for {
		if !s.awaitFrame(conn, br, cs) {
			return
		}
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("edge: decode: %v", err)
			}
			return
		}
		cs.active.Add(1)
		switch {
		case env.Setup != nil:
			cw.send(&replyEnvelope{ID: env.ID, Setup: s.handleSetup(env.Setup, cs)})
		case env.Rekey != nil:
			cw.send(&replyEnvelope{ID: env.ID, Rekey: s.handleRekey(env.Rekey)})
		case env.Compute != nil:
			s.handleCompute(cw, env.ID, env.Compute, cs)
		case env.Batch != nil:
			s.handleBatch(cw, env.ID, env.Batch, cs)
		default:
			cw.send(&replyEnvelope{ID: env.ID,
				Setup: &SetupReply{Err: "empty request", Code: serve.CodeBadRequest}})
		}
		cs.active.Add(-1)
	}
}

// serveV3 drives one framed v3 connection: hello handshake (checksum
// negotiation plus the profile-support advertisement), then a decode loop
// dispatching request frames. Replies go through one frameWriter per
// connection; batch items stream back as soon as each worker finishes.
func (s *Server) serveV3(conn net.Conn, br *bufio.Reader, teardown func(), cs *connState) {
	if m := s.met; m != nil {
		m.connsV3.Add(1)
		defer m.connsV3.Add(-1)
	}
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	ftype, _, payload, err := readFrame(br, buf)
	if err != nil || ftype != frameHello {
		s.cfg.Logf("edge: v3 handshake: type %d err %v", ftype, err)
		return
	}
	// Feature negotiation: a client that wants CRC32C trailers sets the
	// flag in its hello payload; the ack echoes what the server accepts
	// and always advertises profile negotiation, the RNS wire format and
	// session resume. Pre-checksum clients send empty hellos and get the
	// empty ack they expect. The hello pair itself is always un-trailed;
	// crc flips before the loop, while this goroutine is still the only
	// sender.
	crc := s.cfg.FrameChecksums && len(payload) >= 1 && payload[0]&helloFlagCRC != 0
	rnsWire := len(payload) >= 1 && payload[0]&helloFlagRNSWire != 0
	// Matvec is negotiated per connection: the server advertises only when
	// it actually holds a matrix, and the path opens only when the client
	// asked too — so matvec frames from an un-negotiated peer are rejected
	// typed instead of evaluated against a missing plan.
	mvCap := len(s.cfg.Model.Matrix) > 0
	mv := mvCap && len(payload) >= 1 && payload[0]&helloFlagMatVec != 0
	var ack func(b []byte) []byte
	if len(payload) >= 1 {
		flags := byte(helloFlagProfiles | helloFlagRNSWire | helloFlagResume | helloFlagTrace)
		if crc {
			flags |= helloFlagCRC
		}
		if mvCap {
			flags |= helloFlagMatVec
		}
		ack = func(b []byte) []byte { return append(b, flags) }
	}
	fw := newFrameWriter(conn, teardown, s.cfg.Logf)
	if m := s.met; m != nil {
		fw.countSend = func(n int) {
			m.framesOut.Inc()
			m.bytesOut.Add(int64(n))
		}
	}
	if fw.sendFrame(frameHello, 0, ack) != nil {
		return
	}
	fw.crc = crc
	trailer := 0
	if crc {
		trailer = crcTrailerLen
	}
	for {
		if !s.awaitFrame(conn, br, cs) {
			return
		}
		ftype, id, payload, err := readFrameCRC(br, buf, crc)
		if err != nil {
			if errors.Is(err, ErrFrameChecksum) && s.met != nil {
				s.met.checksumFails.Inc()
			}
			// EOF is a normal goodbye; net.ErrClosed is our own Close
			// tearing the connection down.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("edge: v3 decode: %v", err)
			}
			return
		}
		if m := s.met; m != nil {
			m.framesIn.Inc()
			m.bytesIn.Add(int64(frameHeaderLen + len(payload) + trailer))
		}
		cs.active.Add(1)
		err = s.dispatchV3(fw, ftype, id, payload, rnsWire, v3conn{conn: conn, br: br, buf: buf, crc: crc, cs: cs, mv: mv})
		cs.active.Add(-1)
		if err != nil {
			// A payload that fails to decode is a protocol violation, not
			// a request we can answer: kill the connection.
			s.cfg.Logf("edge: v3 payload (type %d): %v", ftype, err)
			return
		}
	}
}

// v3conn bundles the read side of a v3 connection for handlers that run
// a sub-dialog inside the decode loop (the resume handshake).
type v3conn struct {
	conn net.Conn
	br   *bufio.Reader
	buf  *[]byte
	crc  bool
	cs   *connState
	// mv records whether the hello handshake negotiated the encrypted
	// matvec path (server holds a matrix AND the client asked).
	mv bool
}

func (s *Server) dispatchV3(fw *frameWriter, ftype byte, id uint64, payload []byte, rnsWire bool, vc v3conn) error {
	switch ftype {
	case frameProfile:
		req, err := decodeProfileRequest(payload)
		if err != nil {
			return err
		}
		rep := s.handleProfile(req)
		fw.sendFrame(frameProfileReply, id, func(b []byte) []byte { return appendProfileReply(b, rep) })
	case frameSetup:
		if !rnsWire {
			// The client never negotiated the residue-tower wire format,
			// so its Setup payload is in the old flat layout: decoding it
			// as limbs would misparse. Reject typed before touching it.
			rep := &SetupReply{Code: serve.CodeWireFormat,
				Err: "residue-tower wire format not negotiated at hello"}
			fw.sendFrame(frameSetupReply, id, func(b []byte) []byte { return appendSetupReply(b, rep) })
			return nil
		}
		req, err := decodeSetupRequest(payload)
		if err != nil {
			return err
		}
		rep := s.handleSetup(req, vc.cs)
		if vc.mv && rep.OK {
			// Tell the matvec-negotiated client which rotation keys the
			// kernel needs (ckks.BSGSRotations of this dimension).
			rep.MatVecDim = len(s.cfg.Model.Matrix)
		}
		fw.sendFrame(frameSetupReply, id, func(b []byte) []byte { return appendSetupReply(b, rep) })
	case frameResume:
		req, err := decodeResumeRequest(payload)
		if err != nil {
			return err
		}
		return s.handleResume(fw, vc, id, req)
	case frameRekey:
		req, err := decodeRekeyRequest(payload)
		if err != nil {
			return err
		}
		rep := s.handleRekey(req)
		fw.sendFrame(frameRekeyReply, id, func(b []byte) []byte { return appendRekeyReply(b, rep) })
	case frameCompute:
		// The decode timestamp anchors the block's trace: the earliest
		// point the server saw this request's bytes as a compute.
		var decodeStart time.Time
		if s.met != nil {
			decodeStart = time.Now()
		}
		req, err := decodeComputeRequest(payload)
		if err != nil {
			return err
		}
		s.handleComputeV3(fw, id, req, decodeStart, vc.cs)
	case frameBatch:
		req, err := decodeBatchRequest(payload)
		if err != nil {
			return err
		}
		s.handleBatchV3(fw, id, req, vc.cs)
	case frameRotKeys:
		req, err := decodeRotKeysRequest(payload)
		if err != nil {
			return err
		}
		rep := s.handleRotKeys(req, vc)
		fw.sendFrame(frameRotKeysReply, id, func(b []byte) []byte { return appendRotKeysReply(b, rep) })
	case frameMatVec:
		var decodeStart time.Time
		if s.met != nil {
			decodeStart = time.Now()
		}
		req, err := decodeComputeRequest(payload)
		if err != nil {
			return err
		}
		s.handleMatVecV3(fw, id, req, decodeStart, vc)
	default:
		return fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, ftype)
	}
	return nil
}

// handleProfile resolves a pre-Setup profile query: the control plane's
// per-route λ plan steers empty requests and may downgrade or deny
// concrete ones; without a controller the server grants any profile its
// registry knows (empty resolving to the default).
func (s *Server) handleProfile(req *ProfileRequest) *ProfileReply {
	granted := req.Requested
	if ctl := s.cfg.Control; ctl != nil {
		g, err := ctl.NegotiateProfile(req.SessionID, req.Requested)
		if err != nil {
			s.cfg.Logf("edge: profile for %q denied: %v", req.SessionID, err)
			return &ProfileReply{Code: serve.CodeOf(err), Err: controlDetail(err)}
		}
		granted = g
	} else if granted == "" {
		granted = s.reg.DefaultID()
	}
	if _, ok := s.reg.Get(granted); !ok {
		return &ProfileReply{Code: serve.CodeProfileDenied,
			Err: fmt.Sprintf("security profile %q not served here", granted)}
	}
	if granted != req.Requested && req.Requested != "" {
		s.cfg.Logf("edge: session %q profile %q downgraded to %q per plan",
			req.SessionID, req.Requested, granted)
	}
	return &ProfileReply{Granted: granted}
}

// handleResume runs the session-resume sub-dialog inside the decode
// loop: verify the session/epoch/profile claim, challenge the client,
// check the possession proof (HMAC under the resume credential the
// session registered at Setup/Rekey), and on success attach the
// connection to the session — no key generation, no QKD withdrawal.
// Denials are typed replies; only protocol violations (a non-proof frame
// mid-dialog, undecodable payloads) return an error and kill the
// connection.
func (s *Server) handleResume(fw *frameWriter, vc v3conn, id uint64, req *ResumeRequest) error {
	deny := func(code serve.Code, detail string) error {
		if m := s.met; m != nil {
			m.resumeRejects.Inc()
		}
		s.cfg.Logf("edge: resume of %q denied: %s (%s)", req.SessionID, code, detail)
		rep := &ResumeReply{Code: code, Err: detail}
		fw.sendFrame(frameResumeReply, id, func(b []byte) []byte { return appendResumeReply(b, rep) })
		return nil
	}
	if s.draining.Load() {
		return deny(serve.CodeDraining, "server draining; re-dial elsewhere")
	}
	// Peek, not Get: the session earns its LRU refresh only after the
	// possession proof, so an unauthenticated probe cannot keep a session
	// alive.
	sess, ok := s.store.Peek(req.SessionID)
	if !ok {
		return deny(serve.CodeUnknownSession,
			fmt.Sprintf("no session %q to resume (expired or evicted)", req.SessionID))
	}
	sessProf := sess.Profile
	if sessProf == "" {
		sessProf = s.reg.DefaultID()
	}
	reqProf := req.Profile
	if reqProf == "" {
		reqProf = s.reg.DefaultID()
	}
	if reqProf != sessProf {
		return deny(serve.CodeResumeRejected,
			fmt.Sprintf("profile mismatch: session on %q, resume claims %q", sessProf, reqProf))
	}
	if epoch := sess.Epoch(); epoch != req.Epoch {
		return deny(serve.CodeResumeRejected,
			fmt.Sprintf("epoch mismatch: session at %d, resume claims %d — re-dial", epoch, req.Epoch))
	}
	auth := sess.ResumeAuth()
	if len(auth) == 0 {
		return deny(serve.CodeResumeRejected, "session registered without a resume credential")
	}
	var challenge [16]byte
	if _, err := rand.Read(challenge[:]); err != nil {
		return deny(serve.CodeInternal, "challenge generation failed")
	}
	ch := &ResumeChallenge{Challenge: challenge[:]}
	if fw.sendFrame(frameResumeChallenge, id, func(b []byte) []byte { return appendResumeChallenge(b, ch) }) != nil {
		return nil // connection already torn down
	}
	if idle := s.cfg.IdleTimeout; idle > 0 {
		vc.conn.SetReadDeadline(time.Now().Add(idle))
	}
	ftype, pid, payload, err := readFrameCRC(vc.br, vc.buf, vc.crc)
	if err != nil {
		return fmt.Errorf("resume proof read: %w", err)
	}
	if ftype != frameResumeProof || pid != id {
		return fmt.Errorf("%w: expected resume proof, got frame type %d", ErrBadFrame, ftype)
	}
	proof, err := decodeResumeProof(payload)
	if err != nil {
		return err
	}
	if !hmac.Equal(proof.MAC, resumeMAC(auth, challenge[:], sess.ID, req.Epoch)) {
		return deny(serve.CodeResumeRejected, "possession proof failed")
	}
	s.store.Get(sess.ID) // authenticated: refresh LRU position
	vc.cs.attach(sess)
	if m := s.met; m != nil {
		m.resumes.Inc()
	}
	s.cfg.Logf("edge: session %q resumed at epoch %d", sess.ID, req.Epoch)
	rep := &ResumeReply{OK: true, Epoch: req.Epoch}
	fw.sendFrame(frameResumeReply, id, func(b []byte) []byte { return appendResumeReply(b, rep) })
	return nil
}

func (s *Server) sendComputeReplyV3(fw *frameWriter, id uint64, rep *ComputeReply) {
	fw.sendFrame(frameComputeReply, id, func(b []byte) []byte { return appendComputeReply(b, rep) })
}

// handleComputeV3 mirrors handleCompute on the framed path: requests go
// through the bounded scheduler — onto the session profile's evaluator
// pool — and may be shed with CodeOverloaded. With observability on,
// the block's life is traced stage by stage (decode → queue_wait → eval
// → encode → write) and recorded once the reply frame reached the
// socket; spans also feed the quhe_stage_seconds histograms.
func (s *Server) handleComputeV3(fw *frameWriter, id uint64, req *ComputeRequest, decodeStart time.Time, cs *connState) {
	bt := s.met.newBlockTrace(req.SessionID, req.Block, id, decodeStart)
	bt.adopt(req.Trace)
	bt.span(stageIdxDecode, stageDecode, decodeStart, time.Since(decodeStart))
	sess, rt, pool, code, detail := s.lookupCompute(req.SessionID)
	if code != serve.CodeOK {
		s.sendComputeReplyV3(fw, id, &ComputeReply{Code: code, Err: detail})
		return
	}
	var submitAt time.Time
	if bt != nil {
		submitAt = time.Now()
	}
	// The reply outlives this dispatch: hold an in-flight count until the
	// reply frame reached the socket, so Drain never closes the
	// connection under a queued compute.
	cs.active.Add(1)
	if err := s.sched.SubmitTo(pool, func(w *serve.Worker) {
		defer cs.active.Add(-1)
		if bt == nil {
			s.sendComputeReplyV3(fw, id, s.compute(rt, w, sess, req))
			return
		}
		waitEnd := time.Now()
		bt.span(stageIdxQueueWait, stageQueueWait, submitAt, waitEnd.Sub(submitAt))
		rep := s.compute(rt, w, sess, req)
		bt.span(stageIdxEval, stageEval, waitEnd, time.Since(waitEnd))
		encStart := time.Now()
		enc, wr, err := fw.sendFrameTimed(frameComputeReply, id, func(b []byte) []byte {
			return appendComputeReply(b, rep)
		})
		if err == nil {
			bt.span(stageIdxEncode, stageEncode, encStart, enc)
			bt.span(stageIdxWrite, stageWrite, encStart.Add(enc), wr)
		}
		bt.finish()
	}); err != nil {
		cs.active.Add(-1)
		if m := s.met; m != nil {
			m.shedQueueFull.Inc()
		}
		s.sendComputeReplyV3(fw, id, &ComputeReply{
			Code: serve.CodeOf(err),
			Err:  fmt.Sprintf("queue full (depth %d)", s.sched.Capacity()),
		})
	}
}

// handleRotKeys installs a session's Galois rotation keys for the matvec
// kernel, validating the upload at installation time: the connection must
// have negotiated matvec, the set's ring shape must match the session
// profile's context, and it must cover every rotation of the BSGS plan —
// so an incomplete set fails here, typed, instead of mid-evaluation.
func (s *Server) handleRotKeys(req *RotKeysRequest, vc v3conn) *RotKeysReply {
	if !vc.mv {
		return &RotKeysReply{Code: serve.CodeMatVecUnavailable,
			Err: "matvec not negotiated at hello"}
	}
	if req.Keys == nil || len(req.Keys.Keys) == 0 {
		return &RotKeysReply{Code: serve.CodeBadRequest, Err: "empty rotation key set"}
	}
	sess, rt, _, code, detail := s.lookupCompute(req.SessionID)
	if code != serve.CodeOK {
		return &RotKeysReply{Code: code, Err: detail}
	}
	plan, err := s.matvecPlan(rt)
	if err != nil {
		return &RotKeysReply{Code: serve.CodeOf(err), Err: err.Error()}
	}
	n := rt.ctx.Params.N()
	digits := len(rt.ctx.Primes)
	qp := digits + 1
	for el, gk := range req.Keys.Keys {
		if len(gk.Parts) != digits || len(gk.Parts[0][0]) != qp || len(gk.Parts[0][0][0]) != n {
			return &RotKeysReply{Code: serve.CodeParamMismatch,
				Err: fmt.Sprintf("rotation key for element %d does not match profile %s's ring", el, rt.prof.ID)}
		}
	}
	if err := req.Keys.Covers(n, plan.Rotations()); err != nil {
		return &RotKeysReply{Code: serve.CodeBadRequest, Err: "rotation keys: " + err.Error()}
	}
	sess.SetRotKeys(req.Keys)
	s.cfg.Logf("edge: session %q installed %d rotation keys (matvec dim %d)",
		sess.ID, len(req.Keys.Keys), plan.Dim())
	return &RotKeysReply{OK: true}
}

// handleMatVecV3 serves one encrypted matrix–vector request: transcipher
// the block, then apply the model matrix with the hoisted BSGS kernel
// under the session's rotation keys. Mirrors handleComputeV3 (bounded
// scheduler, per-profile pool, sheddable) with one extra traced stage —
// matvec — separating kernel time from transcipher time.
func (s *Server) handleMatVecV3(fw *frameWriter, id uint64, req *ComputeRequest, decodeStart time.Time, vc v3conn) {
	reply := func(rep *ComputeReply) {
		fw.sendFrame(frameMatVecReply, id, func(b []byte) []byte { return appendComputeReply(b, rep) })
	}
	if !vc.mv {
		reply(&ComputeReply{Code: serve.CodeMatVecUnavailable,
			Err: "matvec not negotiated at hello"})
		return
	}
	bt := s.met.newBlockTrace(req.SessionID, req.Block, id, decodeStart)
	bt.adopt(req.Trace)
	bt.span(stageIdxDecode, stageDecode, decodeStart, time.Since(decodeStart))
	sess, rt, pool, code, detail := s.lookupCompute(req.SessionID)
	if code != serve.CodeOK {
		reply(&ComputeReply{Code: code, Err: detail})
		return
	}
	var submitAt time.Time
	if bt != nil {
		submitAt = time.Now()
	}
	cs := vc.cs
	cs.active.Add(1)
	if err := s.sched.SubmitTo(pool, func(w *serve.Worker) {
		defer cs.active.Add(-1)
		if bt == nil {
			rep, _ := s.computeMatVec(rt, w, sess, req)
			reply(rep)
			return
		}
		waitEnd := time.Now()
		bt.span(stageIdxQueueWait, stageQueueWait, submitAt, waitEnd.Sub(submitAt))
		rep, mvDur := s.computeMatVec(rt, w, sess, req)
		total := time.Since(waitEnd)
		// The kernel runs at the tail of the eval: split the worker's time
		// into the transcipher span and the matvec span.
		bt.span(stageIdxEval, stageEval, waitEnd, total-mvDur)
		bt.span(stageIdxMatVec, stageMatVec, waitEnd.Add(total-mvDur), mvDur)
		encStart := time.Now()
		enc, wr, err := fw.sendFrameTimed(frameMatVecReply, id, func(b []byte) []byte {
			return appendComputeReply(b, rep)
		})
		if err == nil {
			bt.span(stageIdxEncode, stageEncode, encStart, enc)
			bt.span(stageIdxWrite, stageWrite, encStart.Add(enc), wr)
		}
		bt.finish()
	}); err != nil {
		cs.active.Add(-1)
		if m := s.met; m != nil {
			m.shedQueueFull.Inc()
		}
		reply(&ComputeReply{
			Code: serve.CodeOf(err),
			Err:  fmt.Sprintf("queue full (depth %d)", s.sched.Capacity()),
		})
	}
}

// lookupCompute resolves a compute request's session and its profile
// runtime before the job is queued, so the scheduler can route it to the
// right per-profile pool.
func (s *Server) lookupCompute(sessionID string) (*serve.Session, *profileRuntime, *serve.EvalPool, serve.Code, string) {
	if s.draining.Load() {
		return nil, nil, nil, serve.CodeDraining, "server draining; reconnect elsewhere"
	}
	sess, ok := s.store.Get(sessionID)
	if !ok {
		return nil, nil, nil, serve.CodeUnknownSession, fmt.Sprintf("unknown session %q", sessionID)
	}
	rt, pool, err := s.sessionRuntime(sess)
	if err != nil {
		return nil, nil, nil, serve.CodeInternal, "profile runtime: " + err.Error()
	}
	return sess, rt, pool, serve.CodeOK, ""
}

func (s *Server) handleSetup(req *SetupRequest, cs *connState) *SetupReply {
	if s.draining.Load() {
		return &SetupReply{Code: serve.CodeDraining, Err: "server draining; re-dial elsewhere"}
	}
	profID := req.Profile
	if profID == "" {
		// Gob peers and pre-profile v3 clients are pinned to the default
		// profile — the historical fixed parameter set.
		profID = s.reg.DefaultID()
	}
	prof, ok := s.reg.Get(profID)
	if !ok {
		return &SetupReply{Code: serve.CodeProfileDenied,
			Err: fmt.Sprintf("security profile %q not served here", profID)}
	}
	if req.LogN != prof.Params.LogN || req.Depth != prof.Params.Depth {
		return &SetupReply{
			Code: serve.CodeParamMismatch,
			Err: fmt.Sprintf("parameter mismatch: client logN=%d depth=%d, profile %s logN=%d depth=%d",
				req.LogN, req.Depth, profID, prof.Params.LogN, prof.Params.Depth),
		}
	}
	if req.SessionID == "" || req.PK == nil || req.RLK == nil || len(req.EncKey) != KeyLen {
		return &SetupReply{Err: "incomplete setup", Code: serve.CodeBadRequest}
	}
	ctl := s.cfg.Control
	if ctl != nil && req.Profile != "" {
		// Re-check the declared profile against the *current* plan: the
		// pre-Setup query is advisory, so without this a client could
		// skip (or ignore) the negotiation and register above the
		// route's planned λ. A grant that the plan has since moved below
		// is denied typed; the client renegotiates and redials.
		granted, err := ctl.NegotiateProfile(req.SessionID, req.Profile)
		if err != nil {
			return &SetupReply{Code: serve.CodeOf(err), Err: controlDetail(err)}
		}
		if granted != req.Profile {
			return &SetupReply{Code: serve.CodeProfileDenied,
				Err: fmt.Sprintf("profile %q not allowed on this route (plan wants %q); renegotiate",
					req.Profile, granted)}
		}
	}
	if ctl != nil {
		if err := ctl.AdmitSession(req.SessionID, s.store.Len()); err != nil {
			s.cfg.Logf("edge: session %q not admitted: %v", req.SessionID, err)
			return &SetupReply{Code: serve.CodeOf(err), Err: controlDetail(err)}
		}
	}
	// Materialize the profile's runtime before registering, so the first
	// compute never pays context construction on the hot path.
	if _, err := s.runtime(profID); err != nil {
		return &SetupReply{Code: serve.CodeInternal, Err: "profile runtime: " + err.Error()}
	}
	sess := serve.NewSession(req.SessionID, profID, req.PK, req.RLK, req.EncKey, req.Nonce)
	if len(req.ResumeAuth) > 0 {
		sess.SetResumeAuth(req.ResumeAuth)
	}
	if err := s.store.Register(sess); err != nil {
		return &SetupReply{
			Code: serve.CodeOf(err),
			Err:  fmt.Sprintf("session %q already registered (rekey instead of re-registering)", req.SessionID),
		}
	}
	if cs != nil {
		cs.attach(sess)
	}
	if ctl != nil {
		ctl.ObserveSession(req.SessionID, profID)
	}
	s.cfg.Logf("edge: session %q registered on %s (%d resident)", req.SessionID, profID, s.store.Len())
	rep := &SetupReply{OK: true}
	if req.Profile != "" {
		// Echo the profile only to peers that speak it: pre-profile v3
		// clients keep the reply layout they expect.
		rep.Profile = profID
	}
	return rep
}

func (s *Server) handleRekey(req *RekeyRequest) *RekeyReply {
	sess, ok := s.store.Get(req.SessionID)
	if !ok {
		return &RekeyReply{Code: serve.CodeUnknownSession,
			Err: fmt.Sprintf("unknown session %q", req.SessionID)}
	}
	if len(req.EncKey) != KeyLen || len(req.Nonce) == 0 {
		return &RekeyReply{Code: serve.CodeBadRequest, Err: "incomplete rekey"}
	}
	epoch := sess.Rekey(req.EncKey, req.Nonce)
	// The resume credential is derived from the QKD key material, so it
	// rotates with it; a rekey without one (an older client) clears the
	// credential rather than leaving a stale epoch's secret valid.
	sess.SetResumeAuth(req.ResumeAuth)
	if m := s.met; m != nil {
		m.rekeys.Inc()
	}
	s.cfg.Logf("edge: session %q rekeyed to epoch %d", req.SessionID, epoch)
	return &RekeyReply{OK: true, Epoch: epoch}
}

// handleCompute serves one block. ID 0 (v1) runs synchronously on the
// session profile's pool — blocking checkout, never shed — preserving the
// v1 in-order contract. Nonzero IDs go through the bounded scheduler and
// may be shed with CodeOverloaded.
func (s *Server) handleCompute(cw *connWriter, id uint64, req *ComputeRequest, cs *connState) {
	sess, rt, pool, code, detail := s.lookupCompute(req.SessionID)
	if code != serve.CodeOK {
		rep := &ComputeReply{Code: code, Err: detail}
		if id == 0 {
			cw.send(&replyEnvelope{Compute: rep})
		} else {
			cw.send(&replyEnvelope{ID: id, Compute: rep})
		}
		return
	}
	if id == 0 {
		var rep *ComputeReply
		_ = pool.Do(func(w *serve.Worker) error {
			rep = s.compute(rt, w, sess, req)
			return nil
		})
		cw.send(&replyEnvelope{Compute: rep})
		return
	}
	cs.active.Add(1)
	if err := s.sched.SubmitTo(pool, func(w *serve.Worker) {
		defer cs.active.Add(-1)
		cw.send(&replyEnvelope{ID: id, Compute: s.compute(rt, w, sess, req)})
	}); err != nil {
		cs.active.Add(-1)
		cw.send(&replyEnvelope{ID: id, Compute: &ComputeReply{
			Code: serve.CodeOf(err),
			Err:  fmt.Sprintf("queue full (depth %d)", s.sched.Capacity()),
		}})
	}
}

func (s *Server) compute(rt *profileRuntime, w *serve.Worker, sess *serve.Session, req *ComputeRequest) *ComputeReply {
	result, code, detail := s.computeBlock(rt, w, sess, req.Epoch, req.Block, req.Masked)
	if code != serve.CodeOK {
		return &ComputeReply{Code: code, Err: detail, RekeyNeeded: s.rekeyNeeded(sess)}
	}
	bits := float64(len(req.Masked) * 64)
	lambda := rt.prof.Lambda
	return &ComputeReply{
		Result:          result,
		RekeyNeeded:     s.rekeyNeeded(sess),
		ModeledTxDelay:  bits / s.cfg.UplinkRateBps,
		ModeledCmpDelay: (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
	}
}

// rekeyBudget resolves a session's per-key byte budget: the control
// plane's plan when one is attached (budgets derived from the paper's
// security-level utility at the session's profile λ), the static
// RekeyBytes constant otherwise.
func (s *Server) rekeyBudget(sess *serve.Session) int64 {
	if ctl := s.cfg.Control; ctl != nil {
		if b := ctl.RekeyBudget(sess.ID); b > 0 {
			return b
		}
	}
	return s.cfg.RekeyBytes
}

// computeBlock transciphers one block on an exclusively held worker of
// the session profile's pool, enforcing slot bounds, the key epoch,
// control-plane admission and the rekey byte budget. Every outcome —
// success or typed failure — lands in the per-code counter; eval
// latency lands in the session profile's histogram.
func (s *Server) computeBlock(rt *profileRuntime, w *serve.Worker, sess *serve.Session, reqEpoch uint64, block uint32, masked []float64) (result *ckks.Ciphertext, code serve.Code, detail string) {
	if m := s.met; m != nil {
		defer func() {
			m.codeCounter(code).Inc()
			m.observeOutcome(code)
		}()
	}
	if len(masked) > rt.cipher.Slots() {
		return nil, serve.CodeOversized,
			fmt.Sprintf("block of %d slots exceeds %d", len(masked), rt.cipher.Slots())
	}
	encKey, nonce, epoch := sess.Keys()
	if reqEpoch != 0 && reqEpoch != epoch {
		return nil, serve.CodeRekeyRequired,
			fmt.Sprintf("block masked under key epoch %d, session at %d", reqEpoch, epoch)
	}
	pending := int64(8 * len(masked))
	// One snapshot of the per-key byte usage serves the admission check,
	// the budget comparison and the error message, so they cannot
	// disagree when concurrent traffic moves the counter between reads.
	used := sess.BytesSinceRekey()
	ctl := s.cfg.Control
	if ctl != nil {
		if err := ctl.AdmitCompute(sess.ID, used, pending); err != nil {
			return nil, serve.CodeOf(err), controlDetail(err)
		}
	}
	if budget := s.rekeyBudget(sess); budget > 0 && used >= budget {
		return nil, serve.CodeRekeyRequired,
			fmt.Sprintf("key byte budget exhausted (%d of %d)", used, budget)
	}
	var start time.Time
	if ctl != nil || s.met != nil {
		start = time.Now()
	}
	scratch, _ := w.Scratch.(*transcipher.Scratch)
	result, err := rt.cipher.TranscipherAffineWith(
		scratch, w.Ev, sess.RLK, encKey, nonce, block, masked,
		s.cfg.Model.Weights, s.cfg.Model.Bias)
	if err != nil {
		if ctl != nil || s.met != nil {
			d := time.Since(start)
			if ctl != nil {
				ctl.ObserveCompute(sess.ID, pending, d, serve.CodeInternal)
			}
			if m := s.met; m != nil {
				m.observeEval(rt.prof.ID, d)
			}
		}
		return nil, serve.CodeInternal, "transcipher: " + err.Error()
	}
	sess.RecordBlock(pending)
	if ctl != nil || s.met != nil {
		d := time.Since(start)
		if ctl != nil {
			ctl.ObserveCompute(sess.ID, pending, d, serve.CodeOK)
		}
		if m := s.met; m != nil {
			m.observeEval(rt.prof.ID, d)
		}
	}
	return result, serve.CodeOK, ""
}

// computeMatVec wraps matvecBlock into a ComputeReply with the modeled
// delay decomposition, mirroring compute. Returns the kernel's own
// duration alongside so the caller can emit the matvec trace span.
func (s *Server) computeMatVec(rt *profileRuntime, w *serve.Worker, sess *serve.Session, req *ComputeRequest) (*ComputeReply, time.Duration) {
	result, mvDur, code, detail := s.matvecBlock(rt, w, sess, req.Epoch, req.Block, req.Masked)
	if code != serve.CodeOK {
		return &ComputeReply{Code: code, Err: detail, RekeyNeeded: s.rekeyNeeded(sess)}, mvDur
	}
	bits := float64(len(req.Masked) * 64)
	lambda := rt.prof.Lambda
	return &ComputeReply{
		Result:          result,
		RekeyNeeded:     s.rekeyNeeded(sess),
		ModeledTxDelay:  bits / s.cfg.UplinkRateBps,
		ModeledCmpDelay: (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
	}, mvDur
}

// matvecBlock is computeBlock's matrix–vector sibling: same admission
// pipeline (slot bounds, key epoch, control-plane admission, rekey byte
// budget), but the transcipher runs plain (no slot-wise affine) and the
// result feeds the hoisted BSGS kernel under the session's rotation keys.
// The transcipher output contract (level top−2, scale Δ²/p) matches the
// plan by construction, so the kernel consumes it directly. Returns the
// kernel's duration for the matvec trace span.
func (s *Server) matvecBlock(rt *profileRuntime, w *serve.Worker, sess *serve.Session, reqEpoch uint64, block uint32, masked []float64) (result *ckks.Ciphertext, mvDur time.Duration, code serve.Code, detail string) {
	if m := s.met; m != nil {
		defer func() {
			m.codeCounter(code).Inc()
			m.observeOutcome(code)
		}()
	}
	plan, err := s.matvecPlan(rt)
	if err != nil {
		return nil, 0, serve.CodeOf(err), err.Error()
	}
	gks := sess.RotKeys()
	if gks == nil {
		return nil, 0, serve.CodeMatVecUnavailable,
			"no rotation keys installed for session (upload them after setup)"
	}
	if len(masked) > rt.cipher.Slots() {
		return nil, 0, serve.CodeOversized,
			fmt.Sprintf("block of %d slots exceeds %d", len(masked), rt.cipher.Slots())
	}
	encKey, nonce, epoch := sess.Keys()
	if reqEpoch != 0 && reqEpoch != epoch {
		return nil, 0, serve.CodeRekeyRequired,
			fmt.Sprintf("block masked under key epoch %d, session at %d", reqEpoch, epoch)
	}
	pending := int64(8 * len(masked))
	used := sess.BytesSinceRekey()
	ctl := s.cfg.Control
	if ctl != nil {
		if err := ctl.AdmitCompute(sess.ID, used, pending); err != nil {
			return nil, 0, serve.CodeOf(err), controlDetail(err)
		}
	}
	if budget := s.rekeyBudget(sess); budget > 0 && used >= budget {
		return nil, 0, serve.CodeRekeyRequired,
			fmt.Sprintf("key byte budget exhausted (%d of %d)", used, budget)
	}
	var start time.Time
	if ctl != nil || s.met != nil {
		start = time.Now()
	}
	observe := func(code serve.Code) {
		if ctl == nil && s.met == nil {
			return
		}
		d := time.Since(start)
		if ctl != nil {
			ctl.ObserveCompute(sess.ID, pending, d, code)
		}
		if m := s.met; m != nil {
			m.observeEval(rt.prof.ID, d)
		}
	}
	scratch, _ := w.Scratch.(*transcipher.Scratch)
	// Plain transcipher: nil weights apply the identity, leaving the
	// decrypted block for the matrix kernel.
	ct, err := rt.cipher.TranscipherAffineWith(
		scratch, w.Ev, sess.RLK, encKey, nonce, block, masked, nil, nil)
	if err != nil {
		observe(serve.CodeInternal)
		return nil, 0, serve.CodeInternal, "transcipher: " + err.Error()
	}
	out := rt.ctx.NewCiphertext(plan.Level() - 1)
	mvStart := time.Now()
	if err := w.Ev.MatVecInto(plan, ct, gks, out); err != nil {
		mvDur = time.Since(mvStart)
		code = serve.CodeInternal
		if errors.Is(err, ckks.ErrNoGaloisKey) {
			code = serve.CodeMatVecUnavailable
		}
		observe(code)
		return nil, mvDur, code, "matvec: " + err.Error()
	}
	mvDur = time.Since(mvStart)
	sess.RecordBlock(pending)
	observe(serve.CodeOK)
	// Control planes that track rotation intensity get the block's
	// hoisted-rotation fan-out, so rotation-heavy traffic prices its
	// key-switch work in the planner's delay term.
	if ro, ok := ctl.(RotationObserver); ok {
		ro.ObserveRotations(sess.ID, len(plan.Rotations()))
	}
	return out, mvDur, serve.CodeOK, ""
}

// rekeyNeeded advises clients once ≥ 3/4 of the key byte budget is spent.
func (s *Server) rekeyNeeded(sess *serve.Session) bool {
	budget := s.rekeyBudget(sess)
	return budget > 0 && 4*sess.BytesSinceRekey() >= 3*budget
}

// handleBatch fans one BatchRequest's blocks out across the scheduler
// onto the session profile's pool, replying once every admitted item
// finishes. Items shed by a full queue fail individually with
// CodeOverloaded.
func (s *Server) handleBatch(cw *connWriter, id uint64, req *BatchRequest, cs *connState) {
	fail := func(code serve.Code, detail string) {
		cw.send(&replyEnvelope{ID: id, Batch: &BatchReply{Code: code, Err: detail}})
	}
	n := len(req.Blocks)
	if n == 0 || n != len(req.Masked) {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch with %d blocks, %d payloads", n, len(req.Masked)))
		return
	}
	if n > MaxBatch {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch of %d blocks exceeds %d", n, MaxBatch))
		return
	}
	sess, rt, pool, code, detail := s.lookupCompute(req.SessionID)
	if code != serve.CodeOK {
		fail(code, detail)
		return
	}
	if code, detail := s.admitBatch(sess, req); code != serve.CodeOK {
		fail(code, detail)
		return
	}
	items := make([]BatchItem, n)
	cs.active.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cs.active.Add(-1)
		// The batch bounds its own in-flight items to the live queue
		// depth (which a control plane may have resized below the built
		// QueueDepth): earlier items finish before later ones are
		// submitted, so a batch larger than the queue never sheds itself
		// on an idle server. Submit still fails — and the item is shed —
		// under genuine cross-client contention. Running off the decode
		// loop keeps pipelined requests on the same connection flowing
		// meanwhile.
		window := make(chan struct{}, s.sched.Capacity())
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			window <- struct{}{}
			wg.Add(1)
			err := s.sched.SubmitTo(pool, func(w *serve.Worker) {
				defer func() { <-window; wg.Done() }()
				if cw.dead() {
					// The connection is gone: the reply can never be
					// delivered, so don't spend the worker computing it.
					items[i] = BatchItem{Code: serve.CodeConnClosed, Err: "connection closed"}
					return
				}
				result, code, detail := s.computeBlock(rt, w, sess, req.Epoch, req.Blocks[i], req.Masked[i])
				items[i] = BatchItem{Result: result, Code: code, Err: detail}
			})
			if err != nil {
				items[i] = BatchItem{Code: serve.CodeOf(err),
					Err: fmt.Sprintf("queue full (depth %d)", s.sched.Capacity())}
				<-window
				wg.Done()
			}
		}
		wg.Wait()
		var bits float64
		served := 0
		for i := range items {
			if items[i].Code == serve.CodeOK {
				bits += float64(len(req.Masked[i]) * 64)
				served++
			}
		}
		lambda := rt.prof.Lambda
		cw.send(&replyEnvelope{ID: id, Batch: &BatchReply{
			Items:           items,
			RekeyNeeded:     s.rekeyNeeded(sess),
			ModeledTxDelay:  bits / s.cfg.UplinkRateBps,
			ModeledCmpDelay: float64(served) * (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
		}})
	}()
}

// handleBatchV3 is the streaming batch path: instead of buffering the
// whole reply, each item is framed and flushed the moment its worker
// finishes (frameBatchItem, out of order), and a frameBatchDone trailer
// carries the aggregate modeled costs once every item has been answered.
// The frameWriter's per-connection mutex interleaves item frames with
// other replies at frame granularity, so one giant batch cannot starve
// pipelined requests on the same connection of the socket.
func (s *Server) handleBatchV3(fw *frameWriter, id uint64, req *BatchRequest, cs *connState) {
	fail := func(code serve.Code, detail string) {
		fw.sendFrame(frameBatchDone, id, func(b []byte) []byte {
			return appendBatchDone(b, &BatchReply{Code: code, Err: detail})
		})
	}
	n := len(req.Blocks)
	if n == 0 || n != len(req.Masked) {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch with %d blocks, %d payloads", n, len(req.Masked)))
		return
	}
	if n > MaxBatch {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch of %d blocks exceeds %d", n, MaxBatch))
		return
	}
	sess, rt, pool, code, detail := s.lookupCompute(req.SessionID)
	if code != serve.CodeOK {
		fail(code, detail)
		return
	}
	if code, detail := s.admitBatch(sess, req); code != serve.CodeOK {
		fail(code, detail)
		return
	}
	cs.active.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cs.active.Add(-1)
		// Same admission contract as the buffered path — the batch bounds
		// its own in-flight items, so an idle server never sheds a batch
		// merely for being larger than the queue — but here a window
		// token is held from submission until the item's reply frame has
		// reached the socket. Eval workers only compute and hand the
		// finished item to the per-batch writer goroutine below (the
		// handoff channel never blocks: tokens cap its occupancy), so a
		// slow or stalled client reading item frames stalls this batch's
		// window, never an eval-pool worker.
		type emitItem struct {
			idx  int
			item BatchItem
		}
		// The streaming window is additionally capped at the live queue
		// depth, so a plan that shrank the scheduler cannot make a batch
		// shed itself on an idle server.
		win := s.cfg.BatchWindow
		if live := s.sched.Capacity(); live < win {
			win = live
		}
		tokens := make(chan struct{}, win)
		emit := make(chan emitItem, win)
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for e := range emit {
				e := e
				fw.sendFrame(frameBatchItem, id, func(b []byte) []byte {
					return appendBatchItem(b, e.idx, &e.item)
				})
				<-tokens
			}
		}()
		var wg sync.WaitGroup
		var servedBits, served atomic.Int64
		for i := 0; i < n; i++ {
			i := i
			tokens <- struct{}{}
			wg.Add(1)
			err := s.sched.SubmitTo(pool, func(w *serve.Worker) {
				defer wg.Done()
				if fw.dead() {
					// The connection is gone (peer hung up, or the server
					// is tearing it down at Close): every remaining item
					// frame will fail, so skip the compute instead of
					// burning eval workers — and pinning shutdown — on
					// results nobody can receive. The emit/token plumbing
					// still runs so the batch drains normally.
					emit <- emitItem{idx: i, item: BatchItem{Code: serve.CodeConnClosed, Err: "connection closed"}}
					return
				}
				result, code, detail := s.computeBlock(rt, w, sess, req.Epoch, req.Blocks[i], req.Masked[i])
				if code == serve.CodeOK {
					served.Add(1)
					servedBits.Add(int64(len(req.Masked[i]) * 64))
				}
				emit <- emitItem{idx: i, item: BatchItem{Result: result, Code: code, Err: detail}}
			})
			if err != nil {
				wg.Done()
				emit <- emitItem{idx: i, item: BatchItem{Code: serve.CodeOf(err),
					Err: fmt.Sprintf("queue full (depth %d)", s.sched.Capacity())}}
			}
		}
		wg.Wait()
		close(emit)
		<-writerDone
		lambda := rt.prof.Lambda
		fw.sendFrame(frameBatchDone, id, func(b []byte) []byte {
			return appendBatchDone(b, &BatchReply{
				RekeyNeeded:     s.rekeyNeeded(sess),
				ModeledTxDelay:  float64(servedBits.Load()) / s.cfg.UplinkRateBps,
				ModeledCmpDelay: float64(served.Load()) * (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
			})
		})
	}()
}

// admitBatch runs the control plane's batch-level admission: the whole
// request's projected byte consumption is checked once before fan-out
// (per-item admission still applies inside computeBlock).
func (s *Server) admitBatch(sess *serve.Session, req *BatchRequest) (serve.Code, string) {
	ctl := s.cfg.Control
	if ctl == nil {
		return serve.CodeOK, ""
	}
	var pending int64
	for _, m := range req.Masked {
		pending += int64(8 * len(m))
	}
	if err := ctl.AdmitCompute(sess.ID, sess.BytesSinceRekey(), pending); err != nil {
		return serve.CodeOf(err), controlDetail(err)
	}
	return serve.CodeOK, ""
}
