package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"quhe/internal/costmodel"
	"quhe/internal/he/ckks"
	"quhe/internal/transcipher"
)

// Model is the slot-wise affine inference the server evaluates on
// encrypted data: out[i] = Weights[i]·x[i] + Bias[i]. Weights are quantized
// to multiples of 1/WeightScale when applied.
type Model struct {
	Weights []float64
	Bias    []float64
}

// ServerConfig parameterizes the edge server.
type ServerConfig struct {
	// Model is the inference applied to every block.
	Model Model
	// UplinkRateBps models the client upload rate for delay reporting.
	// Default 5e6.
	UplinkRateBps float64
	// ServerHz models the CPU share for delay reporting. Default 3.3e9.
	ServerHz float64
	// Logf sinks diagnostics; nil discards them.
	Logf func(format string, args ...interface{})
}

// Server is the QuHE edge server: it accepts client sessions, transciphers
// uploads and computes on them homomorphically. Safe for concurrent
// clients.
type Server struct {
	cfg      ServerConfig
	ctx      *ckks.Context
	cipher   *transcipher.Cipher
	listener net.Listener

	mu       sync.Mutex
	sessions map[string]*session
	wg       sync.WaitGroup
	closed   bool
}

type session struct {
	pk     *ckks.PublicKey
	rlk    *ckks.RelinKey
	encKey []*ckks.Ciphertext
	nonce  []byte
	// mu serializes homomorphic evaluation: the evaluator's scratch
	// buffers make it unsafe for concurrent use, and two connections may
	// share a session ID.
	mu     sync.Mutex
	ev     *ckks.Evaluator
	blocks int
}

// NewServer builds a server over the shared parameter set and starts
// listening on addr (use "127.0.0.1:0" for tests).
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.UplinkRateBps <= 0 {
		cfg.UplinkRateBps = 5e6
	}
	if cfg.ServerHz <= 0 {
		cfg.ServerHz = 3.3e9
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("edge: context: %w", err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		return nil, fmt.Errorf("edge: cipher: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("edge: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ctx:      ctx,
		cipher:   cipher,
		listener: ln,
		sessions: make(map[string]*session),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Blocks returns the number of blocks processed for a session.
func (s *Server) Blocks(sessionID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[sessionID]; ok {
		return sess.blocks
	}
	return 0
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logf("edge: decode: %v", err)
			}
			return
		}
		var reply replyEnvelope
		switch {
		case env.Setup != nil:
			reply.Setup = s.handleSetup(env.Setup)
		case env.Compute != nil:
			reply.Compute = s.handleCompute(env.Compute)
		default:
			reply.Setup = &SetupReply{Err: "empty request"}
		}
		if err := enc.Encode(&reply); err != nil {
			s.cfg.Logf("edge: encode: %v", err)
			return
		}
	}
}

func (s *Server) handleSetup(req *SetupRequest) *SetupReply {
	if req.LogN != s.ctx.Params.LogN || req.Depth != s.ctx.Params.Depth {
		return &SetupReply{Err: fmt.Sprintf("parameter mismatch: client logN=%d depth=%d, server logN=%d depth=%d",
			req.LogN, req.Depth, s.ctx.Params.LogN, s.ctx.Params.Depth)}
	}
	if req.SessionID == "" || req.PK == nil || req.RLK == nil || len(req.EncKey) != KeyLen {
		return &SetupReply{Err: "incomplete setup"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[req.SessionID] = &session{
		pk:     req.PK,
		rlk:    req.RLK,
		encKey: req.EncKey,
		nonce:  append([]byte(nil), req.Nonce...),
		ev:     ckks.NewEvaluator(s.ctx, 1),
	}
	s.cfg.Logf("edge: session %q registered", req.SessionID)
	return &SetupReply{OK: true}
}

func (s *Server) handleCompute(req *ComputeRequest) *ComputeReply {
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	s.mu.Unlock()
	if !ok {
		return &ComputeReply{Err: fmt.Sprintf("unknown session %q", req.SessionID)}
	}
	if len(req.Masked) > s.cipher.Slots() {
		return &ComputeReply{Err: fmt.Sprintf("block of %d slots exceeds %d", len(req.Masked), s.cipher.Slots())}
	}

	// Transcipher with the affine model fused in: the server obtains
	// Enc(w⊙m + bias) directly, never seeing m.
	sess.mu.Lock()
	result, err := s.cipher.TranscipherAffine(
		sess.ev, sess.rlk, sess.encKey, sess.nonce, req.Block, req.Masked,
		s.cfg.Model.Weights, s.cfg.Model.Bias)
	sess.mu.Unlock()
	if err != nil {
		return &ComputeReply{Err: "transcipher: " + err.Error()}
	}

	s.mu.Lock()
	sess.blocks++
	s.mu.Unlock()

	bits := float64(len(req.Masked) * 64)
	lambda := float64(s.ctx.Params.N())
	return &ComputeReply{
		Result:          result,
		ModeledTxDelay:  bits / s.cfg.UplinkRateBps,
		ModeledCmpDelay: (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
	}
}
