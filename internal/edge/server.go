package edge

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"quhe/internal/costmodel"
	"quhe/internal/he/ckks"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

// Model is the slot-wise affine inference the server evaluates on
// encrypted data: out[i] = Weights[i]·x[i] + Bias[i]. Weights are quantized
// to multiples of 1/WeightScale when applied.
type Model struct {
	Weights []float64
	Bias    []float64
}

// ServerConfig parameterizes the edge server.
type ServerConfig struct {
	// Model is the inference applied to every block.
	Model Model
	// UplinkRateBps models the client upload rate for delay reporting.
	// Default 5e6.
	UplinkRateBps float64
	// ServerHz models the CPU share for delay reporting. Default 3.3e9.
	ServerHz float64
	// Logf sinks diagnostics; nil discards them.
	Logf func(format string, args ...interface{})
	// Workers sizes the shared evaluator pool (and scheduler
	// parallelism). Default GOMAXPROCS. Evaluator memory is bounded by
	// this, never by the session count.
	Workers int
	// QueueDepth bounds the scheduler backlog; pipelined requests beyond
	// it are shed with serve.CodeOverloaded. Default 4×Workers.
	QueueDepth int
	// MaxSessions caps resident sessions; registering past the cap
	// evicts the least recently used. Default 1024; negative = unbounded.
	MaxSessions int
	// RekeyBytes is the per-key byte budget: once a session has served
	// this many masked bytes under one key, computes fail with
	// serve.CodeRekeyRequired until the client rekeys. 0 disables
	// enforcement.
	RekeyBytes int64
	// LegacyGobOnly disables the framed v3 protocol, emulating a pre-v3
	// server: every connection is served on the gob path, and v3 hellos
	// fail to gob-decode so v3 clients fall back. Exists for
	// compatibility testing; leave false in production.
	LegacyGobOnly bool
}

// Server is the QuHE edge server: it accepts client sessions, transciphers
// uploads and computes on them homomorphically. Safe for concurrent
// clients; see the package comment for the serving architecture.
type Server struct {
	cfg      ServerConfig
	ctx      *ckks.Context
	cipher   *transcipher.Cipher
	listener net.Listener

	store *serve.Store
	pool  *serve.EvalPool
	sched *serve.Scheduler

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
}

// NewServer builds a server over the shared parameter set and starts
// listening on addr (use "127.0.0.1:0" for tests).
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.UplinkRateBps <= 0 {
		cfg.UplinkRateBps = 5e6
	}
	if cfg.ServerHz <= 0 {
		cfg.ServerHz = 3.3e9
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 1024
	} else if cfg.MaxSessions < 0 {
		cfg.MaxSessions = 0 // unbounded
	}
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("edge: context: %w", err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		return nil, fmt.Errorf("edge: cipher: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("edge: listen: %w", err)
	}
	pool := serve.NewEvalPool(ctx, cfg.Workers, 1, func(int) any { return cipher.NewScratch() })
	s := &Server{
		cfg:      cfg,
		ctx:      ctx,
		cipher:   cipher,
		listener: ln,
		store:    serve.NewStore(cfg.MaxSessions),
		pool:     pool,
		sched:    serve.NewScheduler(pool, cfg.QueueDepth),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, waits for in-flight connections to finish and
// drains the scheduler.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	s.sched.Close()
	return err
}

// Blocks returns the number of blocks processed for a session. Read-only:
// it does not refresh the session's LRU position.
func (s *Server) Blocks(sessionID string) int {
	if sess, ok := s.store.Peek(sessionID); ok {
		return int(sess.Stats().Blocks)
	}
	return 0
}

// SessionStats snapshots a session's usage counters. Read-only: it does
// not refresh the session's LRU position, so stats polling never protects
// an idle session from eviction.
func (s *Server) SessionStats(sessionID string) (serve.Stats, bool) {
	sess, ok := s.store.Peek(sessionID)
	if !ok {
		return serve.Stats{}, false
	}
	return sess.Stats(), true
}

// Sessions counts resident sessions.
func (s *Server) Sessions() int { return s.store.Len() }

// Evictions counts sessions displaced by the MaxSessions cap.
func (s *Server) Evictions() int64 { return s.store.Evictions() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// connWriter serializes gob reply encoding: with pipelined requests,
// worker goroutines and the decode loop reply concurrently on one
// connection. An encode failure poisons the gob stream, so the writer
// tears the connection down — exactly once, through the teardown closure
// shared with the read loop — and the client's pending requests then fail
// with a connection error instead of hanging on replies that will never
// arrive.
type connWriter struct {
	mu       sync.Mutex
	enc      *gob.Encoder
	failed   bool
	teardown func()
	logf     func(string, ...interface{})
}

func (w *connWriter) send(reply *replyEnvelope) {
	w.mu.Lock()
	if w.failed {
		w.mu.Unlock()
		return
	}
	err := w.enc.Encode(reply)
	if err != nil {
		w.failed = true
	}
	w.mu.Unlock()
	if err != nil {
		w.logf("edge: encode: %v", err)
		w.teardown()
	}
}

// serveConn sniffs the protocol generation from the connection's first
// bytes: v3 clients lead with the frame magic (bytes gob never emits at
// stream start), everything else is a gob v1/v2 peer. Both paths share
// one close-once teardown so a writer-side failure and the read loop's
// exit cannot double-close the connection.
func (s *Server) serveConn(conn net.Conn) {
	var once sync.Once
	teardown := func() { once.Do(func() { conn.Close() }) }
	defer teardown()
	br := bufio.NewReaderSize(conn, wireBufSize)
	if !s.cfg.LegacyGobOnly {
		if first, err := br.Peek(2); err == nil &&
			first[0] == frameMagic0 && first[1] == frameMagic1 {
			s.serveV3(conn, br, teardown)
			return
		}
	}
	s.serveGob(br, conn, teardown)
}

func (s *Server) serveGob(br *bufio.Reader, conn net.Conn, teardown func()) {
	dec := gob.NewDecoder(br)
	cw := &connWriter{enc: gob.NewEncoder(conn), teardown: teardown, logf: s.cfg.Logf}
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logf("edge: decode: %v", err)
			}
			return
		}
		switch {
		case env.Setup != nil:
			cw.send(&replyEnvelope{ID: env.ID, Setup: s.handleSetup(env.Setup)})
		case env.Rekey != nil:
			cw.send(&replyEnvelope{ID: env.ID, Rekey: s.handleRekey(env.Rekey)})
		case env.Compute != nil:
			s.handleCompute(cw, env.ID, env.Compute)
		case env.Batch != nil:
			s.handleBatch(cw, env.ID, env.Batch)
		default:
			cw.send(&replyEnvelope{ID: env.ID,
				Setup: &SetupReply{Err: "empty request", Code: serve.CodeBadRequest}})
		}
	}
}

// serveV3 drives one framed v3 connection: hello handshake, then a decode
// loop dispatching request frames. Replies go through one frameWriter per
// connection; batch items stream back as soon as each worker finishes.
func (s *Server) serveV3(conn net.Conn, br *bufio.Reader, teardown func()) {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	ftype, _, _, err := readFrame(br, buf)
	if err != nil || ftype != frameHello {
		s.cfg.Logf("edge: v3 handshake: type %d err %v", ftype, err)
		return
	}
	fw := newFrameWriter(conn, teardown, s.cfg.Logf)
	if fw.sendFrame(frameHello, 0, nil) != nil {
		return
	}
	for {
		ftype, id, payload, err := readFrame(br, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logf("edge: v3 decode: %v", err)
			}
			return
		}
		if err := s.dispatchV3(fw, ftype, id, payload); err != nil {
			// A payload that fails to decode is a protocol violation, not
			// a request we can answer: kill the connection.
			s.cfg.Logf("edge: v3 payload (type %d): %v", ftype, err)
			return
		}
	}
}

func (s *Server) dispatchV3(fw *frameWriter, ftype byte, id uint64, payload []byte) error {
	switch ftype {
	case frameSetup:
		req, err := decodeSetupRequest(payload)
		if err != nil {
			return err
		}
		rep := s.handleSetup(req)
		fw.sendFrame(frameSetupReply, id, func(b []byte) []byte { return appendSetupReply(b, rep) })
	case frameRekey:
		req, err := decodeRekeyRequest(payload)
		if err != nil {
			return err
		}
		rep := s.handleRekey(req)
		fw.sendFrame(frameRekeyReply, id, func(b []byte) []byte { return appendRekeyReply(b, rep) })
	case frameCompute:
		req, err := decodeComputeRequest(payload)
		if err != nil {
			return err
		}
		s.handleComputeV3(fw, id, req)
	case frameBatch:
		req, err := decodeBatchRequest(payload)
		if err != nil {
			return err
		}
		s.handleBatchV3(fw, id, req)
	default:
		return fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, ftype)
	}
	return nil
}

func (s *Server) sendComputeReplyV3(fw *frameWriter, id uint64, rep *ComputeReply) {
	fw.sendFrame(frameComputeReply, id, func(b []byte) []byte { return appendComputeReply(b, rep) })
}

// handleComputeV3 mirrors handleCompute on the framed path: requests go
// through the bounded scheduler and may be shed with CodeOverloaded.
func (s *Server) handleComputeV3(fw *frameWriter, id uint64, req *ComputeRequest) {
	if err := s.sched.Submit(func(w *serve.Worker) {
		s.sendComputeReplyV3(fw, id, s.compute(w, req))
	}); err != nil {
		s.sendComputeReplyV3(fw, id, &ComputeReply{
			Code: serve.CodeOf(err),
			Err:  fmt.Sprintf("queue full (depth %d)", s.cfg.QueueDepth),
		})
	}
}

func (s *Server) handleSetup(req *SetupRequest) *SetupReply {
	if req.LogN != s.ctx.Params.LogN || req.Depth != s.ctx.Params.Depth {
		return &SetupReply{
			Code: serve.CodeParamMismatch,
			Err: fmt.Sprintf("parameter mismatch: client logN=%d depth=%d, server logN=%d depth=%d",
				req.LogN, req.Depth, s.ctx.Params.LogN, s.ctx.Params.Depth),
		}
	}
	if req.SessionID == "" || req.PK == nil || req.RLK == nil || len(req.EncKey) != KeyLen {
		return &SetupReply{Err: "incomplete setup", Code: serve.CodeBadRequest}
	}
	sess := serve.NewSession(req.SessionID, req.PK, req.RLK, req.EncKey, req.Nonce)
	if err := s.store.Register(sess); err != nil {
		return &SetupReply{
			Code: serve.CodeOf(err),
			Err:  fmt.Sprintf("session %q already registered (rekey instead of re-registering)", req.SessionID),
		}
	}
	s.cfg.Logf("edge: session %q registered (%d resident)", req.SessionID, s.store.Len())
	return &SetupReply{OK: true}
}

func (s *Server) handleRekey(req *RekeyRequest) *RekeyReply {
	sess, ok := s.store.Get(req.SessionID)
	if !ok {
		return &RekeyReply{Code: serve.CodeUnknownSession,
			Err: fmt.Sprintf("unknown session %q", req.SessionID)}
	}
	if len(req.EncKey) != KeyLen || len(req.Nonce) == 0 {
		return &RekeyReply{Code: serve.CodeBadRequest, Err: "incomplete rekey"}
	}
	epoch := sess.Rekey(req.EncKey, req.Nonce)
	s.cfg.Logf("edge: session %q rekeyed to epoch %d", req.SessionID, epoch)
	return &RekeyReply{OK: true, Epoch: epoch}
}

// handleCompute serves one block. ID 0 (v1) runs synchronously on the
// shared pool — blocking checkout, never shed — preserving the v1
// in-order contract. Nonzero IDs go through the bounded scheduler and may
// be shed with CodeOverloaded.
func (s *Server) handleCompute(cw *connWriter, id uint64, req *ComputeRequest) {
	if id == 0 {
		var rep *ComputeReply
		_ = s.pool.Do(func(w *serve.Worker) error {
			rep = s.compute(w, req)
			return nil
		})
		cw.send(&replyEnvelope{Compute: rep})
		return
	}
	if err := s.sched.Submit(func(w *serve.Worker) {
		cw.send(&replyEnvelope{ID: id, Compute: s.compute(w, req)})
	}); err != nil {
		cw.send(&replyEnvelope{ID: id, Compute: &ComputeReply{
			Code: serve.CodeOf(err),
			Err:  fmt.Sprintf("queue full (depth %d)", s.cfg.QueueDepth),
		}})
	}
}

func (s *Server) compute(w *serve.Worker, req *ComputeRequest) *ComputeReply {
	sess, ok := s.store.Get(req.SessionID)
	if !ok {
		return &ComputeReply{Code: serve.CodeUnknownSession,
			Err: fmt.Sprintf("unknown session %q", req.SessionID)}
	}
	result, code, detail := s.computeBlock(w, sess, req.Epoch, req.Block, req.Masked)
	if code != serve.CodeOK {
		return &ComputeReply{Code: code, Err: detail, RekeyNeeded: s.rekeyNeeded(sess)}
	}
	bits := float64(len(req.Masked) * 64)
	lambda := float64(s.ctx.Params.N())
	return &ComputeReply{
		Result:          result,
		RekeyNeeded:     s.rekeyNeeded(sess),
		ModeledTxDelay:  bits / s.cfg.UplinkRateBps,
		ModeledCmpDelay: (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
	}
}

// computeBlock transciphers one block on an exclusively held worker,
// enforcing slot bounds, the key epoch and the rekey byte budget.
func (s *Server) computeBlock(w *serve.Worker, sess *serve.Session, reqEpoch uint64, block uint32, masked []float64) (*ckks.Ciphertext, serve.Code, string) {
	if len(masked) > s.cipher.Slots() {
		return nil, serve.CodeOversized,
			fmt.Sprintf("block of %d slots exceeds %d", len(masked), s.cipher.Slots())
	}
	encKey, nonce, epoch := sess.Keys()
	if reqEpoch != 0 && reqEpoch != epoch {
		return nil, serve.CodeRekeyRequired,
			fmt.Sprintf("block masked under key epoch %d, session at %d", reqEpoch, epoch)
	}
	if s.cfg.RekeyBytes > 0 && sess.BytesSinceRekey() >= s.cfg.RekeyBytes {
		return nil, serve.CodeRekeyRequired,
			fmt.Sprintf("key byte budget exhausted (%d of %d)", sess.BytesSinceRekey(), s.cfg.RekeyBytes)
	}
	scratch, _ := w.Scratch.(*transcipher.Scratch)
	result, err := s.cipher.TranscipherAffineWith(
		scratch, w.Ev, sess.RLK, encKey, nonce, block, masked,
		s.cfg.Model.Weights, s.cfg.Model.Bias)
	if err != nil {
		return nil, serve.CodeInternal, "transcipher: " + err.Error()
	}
	sess.RecordBlock(int64(8 * len(masked)))
	return result, serve.CodeOK, ""
}

// rekeyNeeded advises clients once ≥ 3/4 of the key byte budget is spent.
func (s *Server) rekeyNeeded(sess *serve.Session) bool {
	return s.cfg.RekeyBytes > 0 && 4*sess.BytesSinceRekey() >= 3*s.cfg.RekeyBytes
}

// handleBatch fans one BatchRequest's blocks out across the scheduler,
// replying once every admitted item finishes. Items shed by a full queue
// fail individually with CodeOverloaded.
func (s *Server) handleBatch(cw *connWriter, id uint64, req *BatchRequest) {
	fail := func(code serve.Code, detail string) {
		cw.send(&replyEnvelope{ID: id, Batch: &BatchReply{Code: code, Err: detail}})
	}
	n := len(req.Blocks)
	if n == 0 || n != len(req.Masked) {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch with %d blocks, %d payloads", n, len(req.Masked)))
		return
	}
	if n > MaxBatch {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch of %d blocks exceeds %d", n, MaxBatch))
		return
	}
	sess, ok := s.store.Get(req.SessionID)
	if !ok {
		fail(serve.CodeUnknownSession, fmt.Sprintf("unknown session %q", req.SessionID))
		return
	}
	items := make([]BatchItem, n)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// The batch bounds its own in-flight items to the queue depth:
		// earlier items finish before later ones are submitted, so a batch
		// larger than the queue never sheds itself on an idle server.
		// Submit still fails — and the item is shed — under genuine
		// cross-client contention. Running off the decode loop keeps
		// pipelined requests on the same connection flowing meanwhile.
		window := make(chan struct{}, s.cfg.QueueDepth)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			window <- struct{}{}
			wg.Add(1)
			err := s.sched.Submit(func(w *serve.Worker) {
				defer func() { <-window; wg.Done() }()
				result, code, detail := s.computeBlock(w, sess, req.Epoch, req.Blocks[i], req.Masked[i])
				items[i] = BatchItem{Result: result, Code: code, Err: detail}
			})
			if err != nil {
				items[i] = BatchItem{Code: serve.CodeOf(err),
					Err: fmt.Sprintf("queue full (depth %d)", s.cfg.QueueDepth)}
				<-window
				wg.Done()
			}
		}
		wg.Wait()
		var bits float64
		served := 0
		for i := range items {
			if items[i].Code == serve.CodeOK {
				bits += float64(len(req.Masked[i]) * 64)
				served++
			}
		}
		lambda := float64(s.ctx.Params.N())
		cw.send(&replyEnvelope{ID: id, Batch: &BatchReply{
			Items:           items,
			RekeyNeeded:     s.rekeyNeeded(sess),
			ModeledTxDelay:  bits / s.cfg.UplinkRateBps,
			ModeledCmpDelay: float64(served) * (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
		}})
	}()
}

// handleBatchV3 is the streaming batch path: instead of buffering the
// whole reply, each item is framed and flushed the moment its worker
// finishes (frameBatchItem, out of order), and a frameBatchDone trailer
// carries the aggregate modeled costs once every item has been answered.
// The frameWriter's per-connection mutex interleaves item frames with
// other replies at frame granularity, so one giant batch cannot starve
// pipelined requests on the same connection of the socket.
func (s *Server) handleBatchV3(fw *frameWriter, id uint64, req *BatchRequest) {
	fail := func(code serve.Code, detail string) {
		fw.sendFrame(frameBatchDone, id, func(b []byte) []byte {
			return appendBatchDone(b, &BatchReply{Code: code, Err: detail})
		})
	}
	n := len(req.Blocks)
	if n == 0 || n != len(req.Masked) {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch with %d blocks, %d payloads", n, len(req.Masked)))
		return
	}
	if n > MaxBatch {
		fail(serve.CodeBadRequest, fmt.Sprintf("batch of %d blocks exceeds %d", n, MaxBatch))
		return
	}
	sess, ok := s.store.Get(req.SessionID)
	if !ok {
		fail(serve.CodeUnknownSession, fmt.Sprintf("unknown session %q", req.SessionID))
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Same admission contract as the buffered path: the batch bounds
		// its own in-flight items to the queue depth, so an idle server
		// never sheds a batch merely for being larger than the queue.
		window := make(chan struct{}, s.cfg.QueueDepth)
		var wg sync.WaitGroup
		var servedBits, served atomic.Int64
		sendItem := func(i int, item *BatchItem) {
			fw.sendFrame(frameBatchItem, id, func(b []byte) []byte {
				return appendBatchItem(b, i, item)
			})
		}
		for i := 0; i < n; i++ {
			i := i
			window <- struct{}{}
			wg.Add(1)
			err := s.sched.Submit(func(w *serve.Worker) {
				defer func() { <-window; wg.Done() }()
				result, code, detail := s.computeBlock(w, sess, req.Epoch, req.Blocks[i], req.Masked[i])
				if code == serve.CodeOK {
					served.Add(1)
					servedBits.Add(int64(len(req.Masked[i]) * 64))
				}
				sendItem(i, &BatchItem{Result: result, Code: code, Err: detail})
			})
			if err != nil {
				sendItem(i, &BatchItem{Code: serve.CodeOf(err),
					Err: fmt.Sprintf("queue full (depth %d)", s.cfg.QueueDepth)})
				<-window
				wg.Done()
			}
		}
		wg.Wait()
		lambda := float64(s.ctx.Params.N())
		fw.sendFrame(frameBatchDone, id, func(b []byte) []byte {
			return appendBatchDone(b, &BatchReply{
				RekeyNeeded:     s.rekeyNeeded(sess),
				ModeledTxDelay:  float64(servedBits.Load()) / s.cfg.UplinkRateBps,
				ModeledCmpDelay: float64(served.Load()) * (costmodel.EvalCycles(lambda) + costmodel.CmpCycles(lambda)) / s.cfg.ServerHz,
			})
		})
	}()
}
