package edge

import (
	"bufio"
	"encoding/gob"
	"errors"
	"math"
	"net"
	"testing"

	"quhe/internal/he/ckks"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

// --- negotiation matrix ------------------------------------------------------

// TestProtocolNegotiationMatrix runs all three client generations against
// one server: a hand-rolled gob v1 client, a forced gob v2 client, and a
// forced v3 client — each must complete the full pipeline, and the server
// must account their blocks separately.
func TestProtocolNegotiationMatrix(t *testing.T) {
	model := Model{Weights: []float64{0.5, 1}, Bias: []float64{0.1, 0}}
	srv := startServer(t, model)

	// gob v2, forced.
	v2, err := DialWith(srv.Addr(), "matrix-v2", []byte("k2"), 81, DialConfig{Protocol: ProtoGob})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Protocol() != "gob" {
		t.Fatalf("forced gob client negotiated %q", v2.Protocol())
	}

	// v3, forced (no fallback allowed).
	v3, err := DialWith(srv.Addr(), "matrix-v3", []byte("k3"), 83, DialConfig{Protocol: ProtoV3})
	if err != nil {
		t.Fatal(err)
	}
	defer v3.Close()
	if v3.Protocol() != "v3" {
		t.Fatalf("forced v3 client negotiated %q", v3.Protocol())
	}

	// Auto negotiates v3 against a v3 server.
	auto, err := Dial(srv.Addr(), "matrix-auto", []byte("ka"), 85)
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if auto.Protocol() != "v3" {
		t.Fatalf("auto client negotiated %q, want v3", auto.Protocol())
	}

	data := []float64{0.4, -0.2}
	want := []float64{0.5*0.4 + 0.1, -0.2}
	for name, c := range map[string]*Client{"v2": v2, "v3": v3, "auto": auto} {
		got, err := c.Compute(0, data)
		if err != nil {
			t.Fatalf("%s compute: %v", name, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.05 {
				t.Errorf("%s slot %d = %v, want %v", name, i, got[i], want[i])
			}
		}
		if c.LastTxDelay <= 0 || c.LastCmpDelay <= 0 {
			t.Errorf("%s: modeled delays not reported", name)
		}
	}

	// Batches work on both transports (buffered on gob, streamed on v3).
	batchData := [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}}
	for name, c := range map[string]*Client{"v2": v2, "v3": v3} {
		got, err := c.ComputeBatch(100, batchData)
		if err != nil {
			t.Fatalf("%s batch: %v", name, err)
		}
		for i, d := range batchData {
			w0, w1 := 0.5*d[0]+0.1, d[1]
			if math.Abs(got[i][0]-w0) > 0.05 || math.Abs(got[i][1]-w1) > 0.05 {
				t.Errorf("%s batch item %d = %v, want [%v %v]", name, i, got[i], w0, w1)
			}
		}
	}

	// gob v1, hand-rolled seed shapes (defined in serving_test.go),
	// sharing the port with both newer generations.
	v1Conn := dialV1(t, srv.Addr(), "matrix-v1", model)
	defer v1Conn.Close()

	for id, wantBlocks := range map[string]int{
		"matrix-v2": 1 + len(batchData), "matrix-v3": 1 + len(batchData),
		"matrix-auto": 1, "matrix-v1": 1,
	} {
		if n := srv.Blocks(id); n != wantBlocks {
			t.Errorf("server processed %d blocks for %s, want %d", n, id, wantBlocks)
		}
	}
}

// TestV3FallsBackToLegacyServer pins the downgrade path: a ProtoAuto
// client dialing a pre-v3 (gob-only) server detects the dead hello and
// redials on gob; a ProtoV3 client refuses with ErrProtocolMismatch.
func TestV3FallsBackToLegacyServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model:         Model{Weights: []float64{2}},
		LegacyGobOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), "fallback", []byte("k"), 87)
	if err != nil {
		t.Fatalf("auto dial against legacy server: %v", err)
	}
	defer client.Close()
	if client.Protocol() != "gob" {
		t.Fatalf("negotiated %q against legacy server, want gob", client.Protocol())
	}
	got, err := client.Compute(0, []float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 0.05 {
		t.Errorf("fallback compute = %v, want 0.5", got[0])
	}

	if _, err := DialWith(srv.Addr(), "strict", []byte("k"), 89, DialConfig{Protocol: ProtoV3}); !errors.Is(err, ErrProtocolMismatch) {
		t.Errorf("forced v3 against legacy server: err = %v, want ErrProtocolMismatch", err)
	}
}

// dialV1 runs a one-block pipeline using the seed protocol's wire shapes
// and returns the still-open connection.
func dialV1(t *testing.T, addr, sessionID string, model Model) net.Conn {
	t.Helper()
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 91)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 92)
	key, err := cipher.DeriveKey([]byte("v1-matrix"))
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("edge:v1-matrix")

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&v1Envelope{Setup: &v1SetupRequest{
		SessionID: sessionID, LogN: ctx.Params.LogN, Depth: ctx.Params.Depth,
		PK: pk, RLK: rlk, EncKey: encKey, Nonce: nonce,
	}}); err != nil {
		t.Fatal(err)
	}
	var setupReply v1ReplyEnvelope
	if err := dec.Decode(&setupReply); err != nil {
		t.Fatal(err)
	}
	if setupReply.Setup == nil || !setupReply.Setup.OK {
		t.Fatalf("v1 setup rejected: %+v", setupReply.Setup)
	}

	data := []float64{0.4, -0.2}
	padded := make([]float64, cipher.Slots())
	copy(padded, data)
	masked, err := cipher.Mask(key, nonce, 0, padded)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&v1Envelope{Compute: &v1ComputeRequest{
		SessionID: sessionID, Block: 0, Masked: masked,
	}}); err != nil {
		t.Fatal(err)
	}
	var reply v1ReplyEnvelope
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Compute == nil || reply.Compute.Err != "" {
		t.Fatalf("v1 compute failed: %+v", reply.Compute)
	}
	got := ckks.NewEncoder(ctx).DecodeReal(ev.Decrypt(sk, reply.Compute.Result))
	for i, x := range data {
		want := model.Weights[i]*x + model.Bias[i]
		if math.Abs(got[i]-want) > 0.05 {
			t.Errorf("v1 slot %d = %v, want %v", i, got[i], want)
		}
	}
	return conn
}

// --- streaming BatchCompute --------------------------------------------------

// TestBatchComputeStreamsIncrementally is the acceptance test for
// streaming batches: with one worker, a raw v3 client must receive the
// first frameBatchItem while the server still has unprocessed blocks —
// i.e. replies arrive incrementally instead of buffering the whole batch
// behind the last block.
func TestBatchComputeStreamsIncrementally(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, Workers: 1, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Raw v3 client: drive the handshake and frames directly so frame
	// arrival order is observable.
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 95)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 96)
	key, err := cipher.DeriveKey([]byte("stream-material"))
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("edge:stream")

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, wireBufSize)
	var buf []byte
	sendFrame := func(ftype byte, id uint64, build func(b []byte) []byte) {
		t.Helper()
		frame := buildFrame(t, ftype, id, build)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	readReply := func() (byte, uint64, []byte) {
		t.Helper()
		ftype, id, payload, err := readFrame(br, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return ftype, id, payload
	}

	sendFrame(frameHello, 0, func(b []byte) []byte { return append(b, helloFlagRNSWire) })
	if ftype, _, _ := readReply(); ftype != frameHello {
		t.Fatalf("no hello ack (frame type %d)", ftype)
	}
	sendFrame(frameSetup, 1, func(b []byte) []byte {
		return appendSetupRequest(b, &SetupRequest{
			SessionID: "stream", LogN: ctx.Params.LogN, Depth: ctx.Params.Depth,
			PK: pk, RLK: rlk, EncKey: encKey, Nonce: nonce,
		})
	})
	ftype, _, payload := readReply()
	if ftype != frameSetupReply {
		t.Fatalf("expected setup reply, got frame type %d", ftype)
	}
	if rep, err := decodeSetupReply(payload); err != nil || !rep.OK {
		t.Fatalf("setup rejected: %+v err %v", rep, err)
	}

	const n = 64
	blocks := make([]uint32, n)
	masked := make([][]float64, n)
	data := make([]float64, cipher.Slots())
	for i := range data {
		data[i] = 0.25
	}
	for i := range blocks {
		blocks[i] = uint32(i)
		m, err := cipher.Mask(key, nonce, uint32(i), data)
		if err != nil {
			t.Fatal(err)
		}
		masked[i] = m
	}
	sendFrame(frameBatch, 2, func(b []byte) []byte {
		return appendBatchRequest(b, &BatchRequest{
			SessionID: "stream", Epoch: 1, Blocks: blocks, Masked: masked,
		})
	})

	items := 0
	firstItemBlocksDone := -1
	var firstResult *ckks.Ciphertext
	for {
		ftype, id, payload := readReply()
		if id != 2 {
			t.Fatalf("reply for unexpected request %d", id)
		}
		if ftype == frameBatchDone {
			if rep, err := decodeBatchDone(payload); err != nil || rep.Code != serve.CodeOK {
				t.Fatalf("batch done: %+v err %v", rep, err)
			}
			break
		}
		if ftype != frameBatchItem {
			t.Fatalf("unexpected frame type %d mid-batch", ftype)
		}
		idx, item, err := decodeBatchItem(payload)
		if err != nil {
			t.Fatal(err)
		}
		if item.Code != serve.CodeOK || item.Result == nil {
			t.Fatalf("item %d failed: %+v", idx, item)
		}
		if items == 0 {
			firstItemBlocksDone = srv.Blocks("stream")
			firstResult = item.Result
		}
		items++
	}
	if items != n {
		t.Fatalf("received %d item frames, want %d", items, n)
	}
	// The incremental-delivery claim: when the first item frame arrived,
	// the single-worker server had not yet finished the batch.
	if firstItemBlocksDone < 0 || firstItemBlocksDone >= n {
		t.Errorf("first item arrived after %d of %d blocks: replies were buffered, not streamed",
			firstItemBlocksDone, n)
	}
	got := ckks.NewEncoder(ctx).DecodeReal(ev.Decrypt(sk, firstResult))
	if math.Abs(got[0]-0.25) > 0.05 {
		t.Errorf("streamed result = %v, want 0.25", got[0])
	}
}

// --- typed teardown ----------------------------------------------------------

// TestPendingFailTypedOnConnClose: when the transport dies with requests
// in flight, the v3 client fails them with an error wrapping
// serve.ErrConnClosed (the typed code for torn-down connections).
func TestPendingFailTypedOnConnClose(t *testing.T) {
	// A stub v3 server that acks the handshake, then kills the connection
	// on the first real request.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(conn)
		var buf []byte
		if ftype, _, _, err := readFrame(br, &buf); err != nil || ftype != frameHello {
			conn.Close()
			return
		}
		ack := beginFrame(nil, frameHello, 0)
		ack = append(ack, helloFlagRNSWire)
		ack, _ = finishFrame(ack, 0)
		conn.Write(ack)
		readFrame(br, &buf) // the Setup request — drop it on the floor
		conn.Close()
	}()

	_, err = DialWith(ln.Addr().String(), "doomed", []byte("k"), 97, DialConfig{Protocol: ProtoV3})
	if err == nil {
		t.Fatal("dial against request-dropping server succeeded")
	}
	if !errors.Is(err, serve.ErrConnClosed) {
		t.Errorf("in-flight request err = %v, want wrapping serve.ErrConnClosed", err)
	}
	if serve.CodeOf(err) != serve.CodeConnClosed {
		t.Errorf("CodeOf(err) = %v, want CodeConnClosed", serve.CodeOf(err))
	}
}

// TestClientCloseFailsPendingTyped: the client's own Close also surfaces
// the typed code to anything still waiting.
func TestClientCloseFailsPendingTyped(t *testing.T) {
	srv := startServer(t, Model{Weights: []float64{1}})
	client, err := Dial(srv.Addr(), "self-close", []byte("k"), 99)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Compute(0, []float64{0.5}); err == nil {
		t.Fatal("compute on closed client succeeded")
	} else if !errors.Is(err, serve.ErrConnClosed) {
		t.Errorf("compute after Close: err = %v, want wrapping serve.ErrConnClosed", err)
	}
}

// --- residue-tower wire-format negotiation -----------------------------------

// TestSetupRejectedWithoutRNSWireFlag runs a raw v3 client that never sets
// the residue-tower wire flag in its hello: the server must answer its
// Setup with a typed serve.CodeWireFormat rejection instead of decoding
// the (old-layout) payload.
func TestSetupRejectedWithoutRNSWireFlag(t *testing.T) {
	srv := startServer(t, Model{Weights: []float64{1}})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, wireBufSize)
	var buf []byte
	// Hello with the profile flag only — a pre-RNS v3 peer.
	frame := buildFrame(t, frameHello, 0, func(b []byte) []byte { return append(b, helloFlagProfiles) })
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	ftype, _, payload, err := readFrame(br, &buf)
	if err != nil || ftype != frameHello {
		t.Fatalf("hello ack: type %d err %v", ftype, err)
	}
	if len(payload) < 1 || payload[0]&helloFlagRNSWire == 0 {
		t.Fatalf("server ack flags %v do not advertise the RNS wire format", payload)
	}
	// The Setup payload never gets decoded, so its contents are irrelevant
	// — what matters is that garbage does not kill the connection before
	// the typed reply.
	frame = buildFrame(t, frameSetup, 1, func(b []byte) []byte {
		return append(b, 0xde, 0xad, 0xbe, 0xef)
	})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	ftype, id, payload, err := readFrame(br, &buf)
	if err != nil || ftype != frameSetupReply || id != 1 {
		t.Fatalf("setup reply: type %d id %d err %v", ftype, id, err)
	}
	rep, err := decodeSetupReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Code != serve.CodeWireFormat {
		t.Fatalf("setup reply %+v, want CodeWireFormat rejection", rep)
	}
}

// TestDialFailsTypedAgainstPreRNSServer dials a stub v3 server whose hello
// ack carries no residue-tower flag: the client must fail the dial with an
// error wrapping serve.ErrWireFormat before sending any key material.
func TestDialFailsTypedAgainstPreRNSServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var buf []byte
		if ftype, _, _, err := readFrame(br, &buf); err != nil || ftype != frameHello {
			return
		}
		// Ack with profile support but no RNS wire bit — a pre-RNS server.
		ack := beginFrame(nil, frameHello, 0)
		ack = append(ack, helloFlagProfiles)
		ack, _ = finishFrame(ack, 0)
		conn.Write(ack)
		readFrame(br, &buf) // nothing should arrive; wait for close
	}()
	_, err = DialWith(ln.Addr().String(), "pre-rns", []byte("k"), 99, DialConfig{Protocol: ProtoV3})
	if err == nil {
		t.Fatal("dial against pre-RNS server succeeded")
	}
	if !errors.Is(err, serve.ErrWireFormat) {
		t.Errorf("dial err = %v, want wrapping serve.ErrWireFormat", err)
	}
}
