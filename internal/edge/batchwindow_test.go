package edge

import (
	"bufio"
	"net"
	"testing"
	"time"

	"quhe/internal/he/ckks"
	"quhe/internal/transcipher"
)

// TestStalledBatchReaderDoesNotPinWorkers is the windowing regression
// test: a v3 client that submits a large streaming batch and then stops
// reading must not pin eval-pool workers on its socket. With one worker
// and a stalled batch in flight, an unrelated client's compute must still
// complete — pre-windowing, the worker blocked inside sendFrame on the
// stalled connection and the second client hung forever.
func TestStalledBatchReaderDoesNotPinWorkers(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, Workers: 1, QueueDepth: 4, BatchWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Raw v3 client so the read side can be deliberately stalled.
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 201)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 202)
	key, err := cipher.DeriveKey([]byte("stall-material"))
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("edge:stall")

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Closed before srv.Close (LIFO), unblocking the server's stalled
	// batch writer so shutdown can drain.
	defer conn.Close()
	// A tiny receive buffer keeps the advertised TCP window small, so the
	// server's item-frame writes hit backpressure after a few frames
	// instead of disappearing into autotuned kernel buffers.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
	}
	br := bufio.NewReaderSize(conn, wireBufSize)
	var buf []byte
	send := func(ftype byte, id uint64, build func(b []byte) []byte) {
		t.Helper()
		frame := buildFrame(t, ftype, id, build)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	send(frameHello, 0, func(b []byte) []byte { return append(b, helloFlagRNSWire) })
	if ftype, _, _, err := readFrame(br, &buf); err != nil || ftype != frameHello {
		t.Fatalf("hello ack: type %d err %v", ftype, err)
	}
	send(frameSetup, 1, func(b []byte) []byte {
		return appendSetupRequest(b, &SetupRequest{
			SessionID: "staller", LogN: ctx.Params.LogN, Depth: ctx.Params.Depth,
			PK: pk, RLK: rlk, EncKey: encKey, Nonce: nonce,
		})
	})
	if ftype, _, _, err := readFrame(br, &buf); err != nil || ftype != frameSetupReply {
		t.Fatalf("setup reply: type %d err %v", ftype, err)
	}

	// A batch large enough that its item frames overflow both the window
	// and the kernel socket buffers, then never read a byte again.
	const n = MaxBatch
	blocks := make([]uint32, n)
	masked := make([][]float64, n)
	data := make([]float64, cipher.Slots())
	for i := range data {
		data[i] = 0.25
	}
	for i := range blocks {
		blocks[i] = uint32(i)
		m, err := cipher.Mask(key, nonce, uint32(i), data)
		if err != nil {
			t.Fatal(err)
		}
		masked[i] = m
	}
	send(frameBatch, 2, func(b []byte) []byte {
		return appendBatchRequest(b, &BatchRequest{SessionID: "staller", Blocks: blocks, Masked: masked})
	})

	// Give the batch time to reach the stalled state: items computed,
	// writer blocked, window full.
	time.Sleep(300 * time.Millisecond)

	// The single worker must be free to serve an unrelated client.
	type result struct {
		out []float64
		err error
	}
	done := make(chan result, 1)
	go func() {
		client, err := Dial(srv.Addr(), "bystander", []byte("bystander-key"), 17)
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer client.Close()
		out, err := client.Compute(0, []float64{0.5})
		done <- result{out, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("bystander compute failed: %v", r.err)
		}
		if len(r.out) != 1 {
			t.Fatalf("bystander got %d values", len(r.out))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("bystander compute hung: stalled batch reader is pinning the eval worker")
	}

	// Shutdown must not be pinned either: Close tears live connections
	// down, so it returns even though the batch peer is still stalled.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Server.Close hung on the stalled batch connection")
	}
}
