package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"

	"quhe/internal/he/ckks"
	"quhe/internal/qkd"
	"quhe/internal/serve"
	"quhe/internal/transcipher"
)

// --- duplicate registration & typed codes ----------------------------------

func TestDuplicateSetupRejected(t *testing.T) {
	srv := startServer(t, Model{Weights: []float64{1}})
	c1, err := Dial(srv.Addr(), "dup", []byte("k1"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	_, err = Dial(srv.Addr(), "dup", []byte("k2"), 4)
	if err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if !errors.Is(err, serve.ErrDuplicateSession) {
		t.Errorf("duplicate registration err = %v, want serve.ErrDuplicateSession", err)
	}
	// The original session keeps working with its original keys.
	got, err := c1.Compute(0, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 0.05 {
		t.Errorf("original session corrupted: got %v", got[0])
	}
}

func TestTypedErrorCodesOnWire(t *testing.T) {
	srv := startServer(t, Model{})
	client, err := Dial(srv.Addr(), "typed", []byte("k"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.sessionID = "forged"
	_, err = client.Compute(0, []float64{1})
	if !errors.Is(err, serve.ErrUnknownSession) {
		t.Errorf("forged session err = %v, want serve.ErrUnknownSession", err)
	}
}

// --- pipelining -------------------------------------------------------------

func TestPipelinedComputes(t *testing.T) {
	model := Model{Weights: []float64{2, -1}, Bias: []float64{0, 0.5}}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Model: model, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), "pipe", []byte("k"), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const inFlight = 8
	pendings := make([]*Pending, inFlight)
	for i := 0; i < inFlight; i++ {
		p, err := client.ComputeAsync(uint32(i), []float64{float64(i) * 0.1, 0.25})
		if err != nil {
			t.Fatalf("async %d: %v", i, err)
		}
		pendings[i] = p
	}
	for i, p := range pendings {
		got, err := p.Wait()
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		want0 := 2 * float64(i) * 0.1
		want1 := -0.25 + 0.5
		if math.Abs(got[0]-want0) > 0.05 || math.Abs(got[1]-want1) > 0.05 {
			t.Errorf("block %d = %v, want [%v %v]", i, got, want0, want1)
		}
	}
	if n := srv.Blocks("pipe"); n != inFlight {
		t.Errorf("server processed %d blocks, want %d", n, inFlight)
	}
}

// TestConcurrentClientsPipelined exercises the sharded store and shared
// pool under many clients × many in-flight blocks (run with -race in CI).
func TestConcurrentClientsPipelined(t *testing.T) {
	model := Model{Weights: []float64{3}}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Model: model, Workers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, perClient = 3, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("mt-%d", id)
			client, err := Dial(srv.Addr(), name, []byte(name), int64(40+id))
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			pendings := make([]*Pending, perClient)
			for b := 0; b < perClient; b++ {
				p, err := client.ComputeAsync(uint32(b), []float64{0.2})
				if err != nil {
					errs <- err
					return
				}
				pendings[b] = p
			}
			for b, p := range pendings {
				got, err := p.Wait()
				if err != nil {
					errs <- fmt.Errorf("%s block %d: %w", name, b, err)
					return
				}
				if math.Abs(got[0]-0.6) > 0.05 {
					errs <- fmt.Errorf("%s block %d: got %v, want 0.6", name, b, got[0])
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i := 0; i < clients; i++ {
		if n := srv.Blocks(fmt.Sprintf("mt-%d", i)); n != perClient {
			t.Errorf("client %d: %d blocks, want %d", i, n, perClient)
		}
	}
}

// --- batch ------------------------------------------------------------------

func TestBatchCompute(t *testing.T) {
	model := Model{Weights: []float64{1, 2}, Bias: []float64{0.1, -0.1}}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{Model: model, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), "batch", []byte("k"), 13)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := [][]float64{{0.1, 0.2}, {0.3, -0.4}, {-0.5, 0.6}, {0.7, 0.8}, {0.9, -0.1}}
	got, err := client.ComputeBatch(100, data)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range data {
		want0 := d[0] + 0.1
		want1 := 2*d[1] - 0.1
		if math.Abs(got[i][0]-want0) > 0.05 || math.Abs(got[i][1]-want1) > 0.05 {
			t.Errorf("item %d = %v, want [%v %v]", i, got[i], want0, want1)
		}
	}
	if n := srv.Blocks("batch"); n != len(data) {
		t.Errorf("server processed %d blocks, want %d", n, len(data))
	}
	if client.LastTxDelay <= 0 || client.LastCmpDelay <= 0 {
		t.Errorf("batch delays not reported: tx %v cmp %v", client.LastTxDelay, client.LastCmpDelay)
	}
}

// --- backpressure -----------------------------------------------------------

func TestBackpressureShedsPipelinedLoad(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, Workers: 1, QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), "burst", []byte("k"), 17)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const burst = 32
	pendings := make([]*Pending, burst)
	for i := 0; i < burst; i++ {
		p, err := client.ComputeAsync(uint32(i), []float64{0.5})
		if err != nil {
			t.Fatalf("async %d: %v", i, err)
		}
		pendings[i] = p
	}
	served, shed := 0, 0
	for i, p := range pendings {
		_, err := p.Wait()
		switch {
		case err == nil:
			served++
		case errors.Is(err, serve.ErrOverloaded):
			shed++
		default:
			t.Fatalf("block %d: unexpected error %v", i, err)
		}
	}
	if served == 0 {
		t.Error("no requests served under burst")
	}
	if shed == 0 {
		t.Error("no requests shed: backpressure not engaged")
	}
	t.Logf("burst of %d: %d served, %d shed", burst, served, shed)

	// The connection and session survive shedding.
	if _, err := client.Compute(1000, []float64{0.5}); err != nil {
		t.Errorf("compute after burst: %v", err)
	}
}

// TestBatchLargerThanQueueServedWhenIdle pins the batch admission
// contract: a batch submits its own items through a queue-depth-bounded
// window, so on an otherwise idle server a batch far larger than the
// queue completes fully — items are shed with serve.CodeOverloaded only
// under genuine cross-client contention.
func TestBatchLargerThanQueueServedWhenIdle(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, Workers: 1, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), "bigbatch", []byte("k"), 19)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := make([][]float64, 12)
	for i := range data {
		data[i] = []float64{0.25}
	}
	got, err := client.ComputeBatch(0, data)
	if err != nil {
		t.Fatalf("idle server shed batch items: %v", err)
	}
	for i := range got {
		if got[i] == nil {
			t.Fatalf("item %d missing", i)
		}
		if math.Abs(got[i][0]-0.25) > 0.05 {
			t.Errorf("item %d = %v, want 0.25", i, got[i][0])
		}
	}
	if n := srv.Blocks("bigbatch"); n != len(data) {
		t.Errorf("server processed %d blocks, want %d", n, len(data))
	}
}

// --- QKD-backed rekeying ----------------------------------------------------

// provisionedKeyCenter returns a key centre whose pool for id holds
// enough material for the initial key plus several rekeys.
func provisionedKeyCenter(t *testing.T, id string) *qkd.KeyCenter {
	t.Helper()
	kc := qkd.NewKeyCenter()
	if err := kc.Provision(id, 1000); err != nil {
		t.Fatal(err)
	}
	material := make([]byte, 8*RekeyWithdrawBytes)
	for i := range material {
		material[i] = byte(i*31 + 7)
	}
	if err := kc.Deposit(id, material); err != nil {
		t.Fatal(err)
	}
	return kc
}

func TestRekeyAfterByteBudget(t *testing.T) {
	blockBytes := int64(8 * DefaultParams().Slots())
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model:      Model{Weights: []float64{1}},
		RekeyBytes: blockBytes, // budget spent after one block
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	kc := provisionedKeyCenter(t, "rk")
	client, err := DialQKD(srv.Addr(), "rk", kc, 23)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Three computes: the attached key centre absorbs the budget
	// rejections via automatic rekeys.
	for b := uint32(0); b < 3; b++ {
		got, err := client.Compute(b, []float64{0.5})
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if math.Abs(got[0]-0.5) > 0.05 {
			t.Errorf("block %d = %v, want 0.5", b, got[0])
		}
	}
	stats, ok := srv.SessionStats("rk")
	if !ok {
		t.Fatal("session missing")
	}
	if stats.Blocks != 3 {
		t.Errorf("blocks = %d, want 3", stats.Blocks)
	}
	if stats.Rekeys == 0 {
		t.Error("no rekeys recorded despite exhausted byte budget")
	}
	if stats.Epoch != uint64(stats.Rekeys)+1 {
		t.Errorf("epoch %d inconsistent with %d rekeys", stats.Epoch, stats.Rekeys)
	}
	if client.Epoch() != stats.Epoch {
		t.Errorf("client epoch %d != server epoch %d", client.Epoch(), stats.Epoch)
	}
}

func TestManualRekeyWithoutKeyCenter(t *testing.T) {
	blockBytes := int64(8 * DefaultParams().Slots())
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model:      Model{Weights: []float64{1}},
		RekeyBytes: blockBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), "manual", []byte("initial-material"), 29)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Compute(0, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if !client.RekeyAdvised() {
		t.Error("server did not advise rekey at a spent budget")
	}
	// Budget is now exhausted and no key centre is attached: typed error.
	_, err = client.Compute(1, []float64{0.5})
	if !errors.Is(err, serve.ErrRekeyRequired) {
		t.Fatalf("budget-exhausted err = %v, want serve.ErrRekeyRequired", err)
	}
	if err := client.RekeyWith([]byte("fresh-material")); err != nil {
		t.Fatal(err)
	}
	got, err := client.Compute(1, []float64{0.5})
	if err != nil {
		t.Fatalf("compute after manual rekey: %v", err)
	}
	if math.Abs(got[0]-0.5) > 0.05 {
		t.Errorf("post-rekey result %v, want 0.5", got[0])
	}
	if client.Epoch() != 2 {
		t.Errorf("client epoch = %d, want 2", client.Epoch())
	}
}

// --- session eviction -------------------------------------------------------

func TestSessionEvictionUnderCap(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, MaxSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(srv.Addr(), fmt.Sprintf("ev-%d", i), []byte("k"), int64(60+i))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	if n := srv.Sessions(); n != 2 {
		t.Errorf("resident sessions = %d, want 2", n)
	}
	if n := srv.Evictions(); n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}
	// The oldest session was displaced; its computes now fail typed.
	_, err = clients[0].Compute(0, []float64{1})
	if !errors.Is(err, serve.ErrUnknownSession) {
		t.Errorf("evicted session err = %v, want serve.ErrUnknownSession", err)
	}
	// Surviving sessions still serve.
	for _, i := range []int{1, 2} {
		if _, err := clients[i].Compute(0, []float64{1}); err != nil {
			t.Errorf("survivor %d: %v", i, err)
		}
	}
}

// --- v1 wire compatibility --------------------------------------------------

// The v1 envelope/reply shapes as the seed protocol defined them: no
// request IDs, no batch/rekey arms, stringly-typed errors only. Gob
// matches fields by name, so these hand-rolled shapes prove a v1 binary
// still talks to the v2 server.
type v1SetupRequest struct {
	SessionID   string
	LogN, Depth int
	PK          *ckks.PublicKey
	RLK         *ckks.RelinKey
	EncKey      []*ckks.Ciphertext
	Nonce       []byte
}

type v1ComputeRequest struct {
	SessionID string
	Block     uint32
	Masked    []float64
}

type v1Envelope struct {
	Setup   *v1SetupRequest
	Compute *v1ComputeRequest
}

type v1SetupReply struct {
	OK  bool
	Err string
}

type v1ComputeReply struct {
	Result          *ckks.Ciphertext
	Err             string
	ModeledTxDelay  float64
	ModeledCmpDelay float64
}

type v1ReplyEnvelope struct {
	Setup   *v1SetupReply
	Compute *v1ComputeReply
}

func TestV1ProtocolCompat(t *testing.T) {
	model := Model{Weights: []float64{0.5, 1}, Bias: []float64{0.1, 0}}
	srv := startServer(t, model)

	// Hand-rolled v1 client: same crypto, seed wire shapes.
	ctx, err := ckks.NewContext(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cipher, err := transcipher.New(ctx, KeyLen)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 71)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinKey(sk)
	ev := ckks.NewEvaluator(ctx, 72)
	key, err := cipher.DeriveKey([]byte("v1-material"))
	if err != nil {
		t.Fatal(err)
	}
	encKey, err := cipher.EncryptKey(ev, pk, key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("edge:v1-compat")

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	if err := enc.Encode(&v1Envelope{Setup: &v1SetupRequest{
		SessionID: "v1-compat",
		LogN:      ctx.Params.LogN,
		Depth:     ctx.Params.Depth,
		PK:        pk, RLK: rlk, EncKey: encKey, Nonce: nonce,
	}}); err != nil {
		t.Fatal(err)
	}
	var setupReply v1ReplyEnvelope
	if err := dec.Decode(&setupReply); err != nil {
		t.Fatal(err)
	}
	if setupReply.Setup == nil || !setupReply.Setup.OK {
		t.Fatalf("v1 setup rejected: %+v", setupReply.Setup)
	}

	// Two sequential v1 computes must come back in order, synchronously.
	for block := uint32(0); block < 2; block++ {
		data := []float64{0.4, -0.2}
		padded := make([]float64, cipher.Slots())
		copy(padded, data)
		masked, err := cipher.Mask(key, nonce, block, padded)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&v1Envelope{Compute: &v1ComputeRequest{
			SessionID: "v1-compat", Block: block, Masked: masked,
		}}); err != nil {
			t.Fatal(err)
		}
		var reply v1ReplyEnvelope
		if err := dec.Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.Compute == nil {
			t.Fatal("missing v1 compute reply")
		}
		if reply.Compute.Err != "" {
			t.Fatalf("v1 compute error: %s", reply.Compute.Err)
		}
		if reply.Compute.ModeledTxDelay <= 0 {
			t.Error("v1 reply missing modeled delays")
		}
		got := ckks.NewEncoder(ctx).DecodeReal(ev.Decrypt(sk, reply.Compute.Result))
		for i, x := range data {
			want := model.Weights[i]*x + model.Bias[i]
			if math.Abs(got[i]-want) > 0.05 {
				t.Errorf("v1 block %d slot %d = %v, want %v", block, i, got[i], want)
			}
		}
	}
	if n := srv.Blocks("v1-compat"); n != 2 {
		t.Errorf("server processed %d v1 blocks, want 2", n)
	}
}

// TestV1ErrorStringsPreserved pins the stringly-typed contract v1 clients
// parse: unknown sessions must still mention "unknown session".
func TestV1ErrorStringsPreserved(t *testing.T) {
	srv := startServer(t, Model{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&v1Envelope{Compute: &v1ComputeRequest{
		SessionID: "ghost", Block: 0, Masked: []float64{1},
	}}); err != nil {
		t.Fatal(err)
	}
	var reply v1ReplyEnvelope
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Compute == nil || reply.Compute.Err == "" {
		t.Fatal("expected a v1 error reply")
	}
	if want := "unknown session"; !contains(reply.Compute.Err, want) {
		t.Errorf("v1 error %q does not mention %q", reply.Compute.Err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
