package edge

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"quhe/internal/control"
	"quhe/internal/obs"
	"quhe/internal/qkd"
	"quhe/internal/qnet"
)

// scrapeMetrics GETs the debug plane's /metrics and parses every sample
// line into name{labels} → value.
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape content-type %q, want text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// TestServerMetricsEndToEnd drives real v3 traffic through a server with
// the debug plane up and asserts the acceptance series: per-stage
// latency histograms, per-profile eval latency, wire counters and
// outcome codes, all scraped over HTTP in the Prometheus text format.
func TestServerMetricsEndToEnd(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model:     Model{Weights: []float64{1, 1}, Bias: []float64{0, 0}},
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.DebugAddr() == "" {
		t.Fatal("debug plane not bound")
	}
	kc := qkd.NewKeyCenter()
	if err := kc.Provision("obs-sess", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := kc.RunExchange("obs-sess", 0.97, 8192, 3); err != nil {
		t.Fatal(err)
	}
	client, err := DialQKD(srv.Addr(), "obs-sess", kc, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const blocks = 5
	for b := uint32(0); b < blocks; b++ {
		if _, err := client.Compute(b, []float64{0.5, -0.5}); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
	}
	if err := client.Rekey(); err != nil {
		t.Fatalf("rekey: %v", err)
	}

	m := scrapeMetrics(t, srv.DebugAddr())
	for _, stage := range []string{"decode", "queue_wait", "eval", "encode", "write"} {
		key := fmt.Sprintf(`quhe_stage_seconds_count{stage="%s"}`, stage)
		if m[key] < blocks {
			t.Errorf("%s = %g, want ≥ %d", key, m[key], blocks)
		}
	}
	evalKey := fmt.Sprintf(`quhe_eval_seconds_count{profile="%s"}`, client.Profile())
	if m[evalKey] < blocks {
		t.Errorf("%s = %g, want ≥ %d", evalKey, m[evalKey], blocks)
	}
	if m[`quhe_eval_seconds_sum{profile="`+client.Profile()+`"}`] <= 0 {
		t.Error("eval latency sum must be positive")
	}
	if m[`quhe_wire_frames_total{dir="in"}`] <= 0 || m[`quhe_wire_frames_total{dir="out"}`] <= 0 {
		t.Errorf("wire frame counters: in %g out %g", m[`quhe_wire_frames_total{dir="in"}`], m[`quhe_wire_frames_total{dir="out"}`])
	}
	if m[`quhe_wire_bytes_total{dir="in"}`] <= 0 || m[`quhe_wire_bytes_total{dir="out"}`] <= 0 {
		t.Errorf("wire byte counters: in %g out %g", m[`quhe_wire_bytes_total{dir="in"}`], m[`quhe_wire_bytes_total{dir="out"}`])
	}
	if m[`quhe_edge_conns{proto="v3"}`] != 1 {
		t.Errorf("v3 conn gauge = %g, want 1", m[`quhe_edge_conns{proto="v3"}`])
	}
	if m["quhe_edge_sessions"] != 1 {
		t.Errorf("session gauge = %g, want 1", m["quhe_edge_sessions"])
	}
	if m[`quhe_serve_compute_total{code="ok"}`] != blocks {
		t.Errorf("ok compute counter = %g, want %d", m[`quhe_serve_compute_total{code="ok"}`], blocks)
	}
	if m["quhe_edge_rekeys_total"] != 1 {
		t.Errorf("rekey counter = %g, want 1", m["quhe_edge_rekeys_total"])
	}
	if m[`quhe_eval_pool_size{profile="`+client.Profile()+`"}`] <= 0 {
		t.Error("default profile pool gauges missing")
	}
	if m["quhe_serve_queue_capacity"] <= 0 {
		t.Errorf("queue capacity gauge = %g", m["quhe_serve_queue_capacity"])
	}
}

// TestTraceSpanSum pins the acceptance bound on trace fidelity: the sum
// of a block's stage spans accounts for its measured end-to-end latency
// within 10% — the untraced gaps (session lookup, handoffs) are noise
// next to the eval work.
func TestTraceSpanSum(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), "trace-sess", []byte("qkd-material"), 13)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for b := uint32(0); b < 3; b++ {
		if _, err := client.Compute(b, []float64{0.25}); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
	}
	traces := srv.Tracer().Dump()
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	for _, bt := range traces {
		if len(bt.Spans) != 5 {
			t.Errorf("block %d: %d spans, want 5", bt.Block, len(bt.Spans))
			continue
		}
		sum, total := bt.SpanSum(), bt.Total
		if gap := total - sum; gap < 0 || float64(gap) > 0.1*float64(total) {
			t.Errorf("block %d: span sum %v vs total %v (gap %v exceeds 10%%)",
				bt.Block, sum, total, gap)
		}
	}
}

// TestDebugPlanWithController shares one registry between the edge
// server and a real control plane and checks the combined /metrics page
// plus /debug/plan rendering the controller's live plan.
func TestDebugPlanWithController(t *testing.T) {
	reg := obs.NewRegistry()
	ctl, err := control.New(control.Config{Network: qnet.SURFnet(), Metrics: reg, KeyCenter: qkd.NewKeyCenter()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model:     Model{Weights: []float64{1}},
		Control:   ctl,
		Obs:       reg,
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := scrapeMetrics(t, srv.DebugAddr())
	if m["quhe_control_replans_total"] < 1 {
		t.Error("shared registry must carry the control plane's series")
	}
	if _, ok := m["quhe_qkd_stock_bytes"]; !ok {
		t.Error("shared registry must carry the key-centre stock gauge")
	}

	resp, err := http.Get("http://" + srv.DebugAddr() + "/debug/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/plan status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"Lambda"`) {
		t.Errorf("/debug/plan must render the live plan, got %q", body)
	}
}

// TestDisableObs pins the off switch the overhead benchmark depends on:
// no registry, no tracer, no debug plane, and the serving path still
// works.
func TestDisableObs(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model:      Model{Weights: []float64{1}},
		DisableObs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.ObsRegistry() != nil || srv.Tracer() != nil || srv.DebugAddr() != "" {
		t.Fatal("DisableObs must leave no observability surface")
	}
	client, err := Dial(srv.Addr(), "bare-sess", []byte("qkd-material"), 17)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Compute(0, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	// The scheduler's wait observer must also be absent — give the drain
	// goroutine a beat and make sure nothing panicked by computing again.
	time.Sleep(10 * time.Millisecond)
	if _, err := client.Compute(1, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
}
