package edge

import (
	"errors"
	"math"
	"sync"
	"testing"

	"quhe/internal/he/ckks"
	"quhe/internal/he/profile"
	"quhe/internal/serve"
)

// TestMixedProfileSessions is the acceptance-criterion test: two
// concurrent sessions on different security profiles — independently
// keyed contexts at different ring degrees — compute correct results on
// one server, interleaved.
func TestMixedProfileSessions(t *testing.T) {
	model := Model{Weights: []float64{0.5, -0.25}, Bias: []float64{0.1, 0.2}}
	srv := startServer(t, model)

	profiles := []string{profile.IDLambda32k, profile.IDLambda64k}
	clients := make([]*Client, len(profiles))
	for i, id := range profiles {
		c, err := DialWith(srv.Addr(), "mixed-"+id, []byte("k-"+id), int64(11+i),
			DialConfig{Profile: id})
		if err != nil {
			t.Fatalf("dial %s: %v", id, err)
		}
		defer c.Close()
		clients[i] = c
		if got := c.Profile(); got != id {
			t.Fatalf("client %d negotiated %q, want %q", i, got, id)
		}
		if got, ok := srv.SessionProfile(c.SessionID()); !ok || got != id {
			t.Fatalf("server records profile %q (ok=%v) for %s, want %q", got, ok, c.SessionID(), id)
		}
	}
	// The two sessions run at genuinely different ring degrees.
	if clients[0].Slots() >= clients[1].Slots() {
		t.Fatalf("slot capacities %d/%d not increasing across profiles",
			clients[0].Slots(), clients[1].Slots())
	}

	data := []float64{0.8, -0.4}
	var wg sync.WaitGroup
	for ci, c := range clients {
		ci, c := ci, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blk := uint32(0); blk < 4; blk++ {
				got, err := c.Compute(blk, data)
				if err != nil {
					t.Errorf("client %d block %d: %v", ci, blk, err)
					return
				}
				for i, x := range data {
					want := model.Weights[i]*x + model.Bias[i]
					if math.Abs(got[i]-want) > 0.05 {
						t.Errorf("client %d block %d slot %d: got %g, want %g", ci, blk, i, got[i], want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if srv.Sessions() != 2 {
		t.Errorf("%d sessions resident, want 2", srv.Sessions())
	}
}

// TestControllerSteersEmptyRequest: a client that does not ask for a
// profile is steered to the control plane's choice, and the controller
// observes the registration with that profile.
func TestControllerSteersEmptyRequest(t *testing.T) {
	ctl := &fakeControl{}
	ctl.steer.Store(profile.IDLambda64k)
	srv := startControlledServer(t, ctl, ServerConfig{})
	c, err := Dial(srv.Addr(), "steer-me", []byte("k"), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Profile(); got != profile.IDLambda64k {
		t.Errorf("steered profile = %q, want %q", got, profile.IDLambda64k)
	}
	if ctl.negotiated.Load() == 0 {
		t.Error("NegotiateProfile never consulted")
	}
	if p, ok := ctl.sessions.Load("steer-me"); !ok || p.(string) != profile.IDLambda64k {
		t.Errorf("ObserveSession recorded %v (ok=%v)", p, ok)
	}
	// The steered session computes correctly at the steered degree.
	got, err := c.Compute(0, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 0.05 {
		t.Errorf("steered compute = %g, want 0.5", got[0])
	}
}

// TestProfileDowngradePerPlan: an explicit request above the plan's
// profile for the route is downgraded end to end — the client ends up
// on the planned profile, not the requested one.
func TestProfileDowngradePerPlan(t *testing.T) {
	ctl := &fakeControl{}
	ctl.steer.Store(profile.IDLambda32k)
	srv := startControlledServer(t, ctl, ServerConfig{})
	c, err := DialWith(srv.Addr(), "downgrade-me", []byte("k"), 61,
		DialConfig{Profile: profile.IDLambda128k})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Profile(); got != profile.IDLambda32k {
		t.Errorf("downgraded profile = %q, want %q", got, profile.IDLambda32k)
	}
	if got, _ := srv.SessionProfile("downgrade-me"); got != profile.IDLambda32k {
		t.Errorf("server registered %q, want the downgrade", got)
	}
}

// TestSetupEnforcesPlanProfile: a Setup that declares a profile above the
// plan — a client bypassing (or ignoring) the advisory negotiation — is
// denied typed at registration, so the per-route λ policy cannot be
// sidestepped.
func TestSetupEnforcesPlanProfile(t *testing.T) {
	ctl := &fakeControl{}
	ctl.steer.Store(profile.IDLambda32k)
	srv := startControlledServer(t, ctl, ServerConfig{})
	prof, _ := profile.Default().Get(profile.IDLambda128k)
	rep := srv.handleSetup(&SetupRequest{
		SessionID: "bypass",
		LogN:      prof.Params.LogN,
		Depth:     prof.Params.Depth,
		PK:        &ckks.PublicKey{},
		RLK:       &ckks.RelinKey{},
		EncKey:    make([]*ckks.Ciphertext, KeyLen),
		Profile:   profile.IDLambda128k,
	}, nil)
	if rep.OK || rep.Code != serve.CodeProfileDenied {
		t.Fatalf("bypass setup reply = %+v, want CodeProfileDenied", rep)
	}
	if srv.Sessions() != 0 {
		t.Errorf("%d sessions resident after denied bypass", srv.Sessions())
	}
}

// TestGobPinnedToDefaultProfile: gob peers cannot negotiate, so they run
// the default profile; an explicit non-default request over gob (or via
// auto-fallback to a legacy server) fails typed instead of silently
// running at the wrong security level.
func TestGobPinnedToDefaultProfile(t *testing.T) {
	srv := startServer(t, Model{Weights: []float64{1}})
	c, err := DialWith(srv.Addr(), "gob-default", []byte("k"), 21, DialConfig{Protocol: ProtoGob})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Protocol() != "gob" {
		t.Fatalf("protocol %q, want gob", c.Protocol())
	}
	if got := c.Profile(); got != profile.IDDefault {
		t.Errorf("gob profile = %q, want default %q", got, profile.IDDefault)
	}
	if got, ok := srv.SessionProfile("gob-default"); !ok || got != profile.IDDefault {
		t.Errorf("server pinned gob session to %q (ok=%v)", got, ok)
	}
	if _, err := c.Compute(0, []float64{0.25}); err != nil {
		t.Errorf("gob compute on default profile: %v", err)
	}

	// Non-default profile over forced gob: typed denial.
	_, err = DialWith(srv.Addr(), "gob-hi", []byte("k"), 22,
		DialConfig{Protocol: ProtoGob, Profile: profile.IDLambda64k})
	if !errors.Is(err, serve.ErrProfileDenied) {
		t.Errorf("gob non-default dial err = %v, want serve.ErrProfileDenied", err)
	}
	// Auto-negotiation against a legacy (pre-v3) server falls back to gob
	// and must refuse the non-default request the same way.
	legacy, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, LegacyGobOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	_, err = DialWith(legacy.Addr(), "auto-hi", []byte("k"), 23,
		DialConfig{Profile: profile.IDLambda64k})
	if !errors.Is(err, serve.ErrProfileDenied) {
		t.Errorf("legacy-fallback non-default dial err = %v, want serve.ErrProfileDenied", err)
	}
	// An explicit *default* request is harmless everywhere.
	c2, err := DialWith(legacy.Addr(), "auto-def", []byte("k"), 24,
		DialConfig{Profile: profile.IDDefault})
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
}

// TestUnknownProfileDenied: requesting a profile the registry does not
// know fails locally; a server-side denial is typed on the wire.
func TestUnknownProfileDenied(t *testing.T) {
	srv := startServer(t, Model{Weights: []float64{1}})
	if _, err := DialWith(srv.Addr(), "nope", []byte("k"), 31,
		DialConfig{Profile: "no-such-profile"}); !errors.Is(err, serve.ErrProfileDenied) {
		t.Errorf("unknown profile err = %v, want serve.ErrProfileDenied", err)
	}
}

// TestGobComputeAdmissionParity is the ROADMAP satellite: v2/gob peers
// must pass through exactly the same AdmitCompute and dynamic-budget
// checks as v3 peers — single computes, batches, and the plan-budget
// override alike.
func TestGobComputeAdmissionParity(t *testing.T) {
	ctl := &fakeControl{}
	srv := startControlledServer(t, ctl, ServerConfig{})
	c, err := DialWith(srv.Addr(), "gob-parity", []byte("k"), 41, DialConfig{Protocol: ProtoGob})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Protocol() != "gob" {
		t.Fatalf("protocol %q, want gob", c.Protocol())
	}

	if _, err := c.Compute(0, []float64{0.5}); err != nil {
		t.Fatalf("admitted gob compute: %v", err)
	}
	if ctl.observed.Load() == 0 {
		t.Error("gob compute bypassed the telemetry hook")
	}

	ctl.denyCompute.Store(true)
	if _, err := c.Compute(1, []float64{0.5}); !errors.Is(err, serve.ErrAdmissionDenied) {
		t.Errorf("denied gob compute err = %v, want serve.ErrAdmissionDenied", err)
	}
	if _, err := c.ComputeBatch(2, [][]float64{{0.1}, {0.2}}); !errors.Is(err, serve.ErrAdmissionDenied) {
		t.Errorf("denied gob batch err = %v, want serve.ErrAdmissionDenied", err)
	}
	ctl.denyCompute.Store(false)

	// Dynamic plan budgets govern gob sessions too: shrink the budget
	// below one padded block and the next compute demands a rekey even
	// though the static RekeyBytes is unset (disabled).
	ctl.budget.Store(100)
	if _, err := c.Compute(3, []float64{0.5}); !errors.Is(err, serve.ErrRekeyRequired) {
		t.Errorf("gob compute under tiny plan budget err = %v, want serve.ErrRekeyRequired", err)
	}
	ctl.budget.Store(1 << 30)
	if _, err := c.Compute(4, []float64{0.5}); err != nil {
		t.Errorf("gob compute after budget raise: %v", err)
	}
}

// TestSetupWireOptionalProfileField pins the v3 codec compatibility rule:
// a Setup payload without the trailing profile field (a pre-profile v3
// peer) decodes to an empty profile, and the round trip preserves a
// non-empty one.
func TestSetupWireOptionalProfileField(t *testing.T) {
	repOld := appendSetupReply(nil, &SetupReply{Code: serve.CodeOK})
	dec, err := decodeSetupReply(repOld)
	if err != nil {
		t.Fatalf("pre-profile reply: %v", err)
	}
	if dec.Profile != "" || !dec.OK {
		t.Errorf("pre-profile reply decoded %+v", dec)
	}
	repNew := appendSetupReply(nil, &SetupReply{Code: serve.CodeOK, Profile: profile.IDLambda64k})
	dec, err = decodeSetupReply(repNew)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Profile != profile.IDLambda64k {
		t.Errorf("profile round trip = %q", dec.Profile)
	}
	// Profile query codec round trip.
	q := appendProfileRequest(nil, &ProfileRequest{SessionID: "s", Requested: "r"})
	qr, err := decodeProfileRequest(q)
	if err != nil || qr.SessionID != "s" || qr.Requested != "r" {
		t.Errorf("profile request round trip = %+v, %v", qr, err)
	}
	pr := appendProfileReply(nil, &ProfileReply{Granted: "g"})
	prd, err := decodeProfileReply(pr)
	if err != nil || prd.Granted != "g" || prd.Code != serve.CodeOK {
		t.Errorf("profile reply round trip = %+v, %v", prd, err)
	}
}

// TestCalibrateProfilesAtStartup opts a server into startup calibration
// over a one-profile registry and checks the measured coefficient lands
// before the first connection is accepted.
func TestCalibrateProfilesAtStartup(t *testing.T) {
	params, err := ckks.NewParams(8, 60, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	prof := &profile.Profile{ID: "cal-test", Lambda: 1024, Params: params}
	reg, err := profile.NewRegistry("", prof)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		Model: Model{Weights: []float64{1}}, Workers: 1, QueueDepth: 2,
		Profiles: reg, CalibrateProfiles: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !prof.Calibrated() {
		t.Fatal("CalibrateProfiles did not install a measured coefficient")
	}
	if c := prof.CyclesPerBlock(); c <= 0 || math.IsInf(c, 0) {
		t.Fatalf("calibrated CyclesPerBlock = %g", c)
	}
}
