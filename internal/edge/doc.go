// Package edge implements a runnable distributed version of the QuHE
// system model (Fig. 1): a TCP edge server and client nodes executing the
// full pipeline — QKD-derived symmetric keys, client-side masking
// (symmetric encryption), upload, server-side transciphering into CKKS, and
// encrypted inference whose result only the client can decrypt.
//
// # Serving architecture
//
// The server is a thin protocol shell over the multi-tenant serving
// runtime in internal/serve. A request flows
//
//	connection → serve.Store (sharded sessions, LRU-capped)
//	           → serve.Scheduler (bounded queue, ErrOverloaded backpressure)
//	           → serve.PoolSet (per-profile EvalPools, lazily built workers)
//	           → transcipher/ckks core (per-profile context + cipher)
//
// so N sessions cost key material only, while evaluator memory and
// compute parallelism are bounded by the worker pools of the security
// profiles actually in use.
//
// # Security profiles
//
// Every session runs on a security profile (internal/he/profile): one of
// the paper's λ levels actuated as a real CKKS parameter set. The server
// keeps one context, transciphering cipher and evaluator pool per live
// profile, so sessions at different security levels — different ring
// degrees, independently keyed contexts — serve side by side on one
// listener.
//
// Profile negotiation is a v3 feature gated by the hello handshake: the
// server advertises support with a flags bit in its hello ack, and a
// capable client then sends a frameProfile query (session ID + requested
// profile, possibly empty for "let the plan steer") before generating any
// keys. The server — its control plane's per-route λ plan, when one is
// attached — answers with the granted profile: the request itself, the
// plan's choice for an empty request, a *downgrade* to the route's
// planned profile when the request demands a higher λ than the plan
// allows, or a typed serve.CodeProfileDenied for profiles the registry
// does not know. The client builds its context and keys for the granted
// profile and carries it in Setup (an optional trailing field of the v3
// payload); Setup enforces that the declared parameters match the
// profile's.
//
// Downgrade rule: requests at or below the plan pass as asked; requests
// above it are granted the planned profile instead, and Setup re-checks
// the declared profile against the current plan so the advisory query
// cannot be bypassed (a grant the plan moved below mid-dial is denied
// typed; the client renegotiates and redials). Gob (v1/v2) peers and
// pre-profile v3 peers negotiate nothing and are pinned to the default
// profile, whose parameters are exactly the pre-registry runtime's fixed
// set — their wire format and protocol behavior are unchanged. (One
// advisory delta: the modeled-delay reply fields now evaluate the cost
// model at the session profile's paper-scale λ, as the paper intends,
// where they previously used the runnable ring degree.) A client that
// explicitly requests a non-default profile against a peer that cannot
// negotiate fails typed (serve.ErrProfileDenied) rather than silently
// running at the wrong security level.
//
// # Control plane
//
// ServerConfig.Control optionally attaches a closed-loop control plane
// (the Controller interface, implemented by internal/control). With it,
// Setup and compute admission become plan decisions — denials cross the
// wire as serve.CodeAdmissionDenied — per-session rekey byte budgets are
// derived online from the paper's security-level utility U_msl instead of
// the static RekeyBytes constant, and the server publishes per-block
// telemetry (bytes, latency, outcome) back into the plane. A nil Control
// preserves the static admit-until-evicted behavior exactly; see
// internal/control's package comment for the telemetry → plan → actuation
// loop.
//
// # Wire protocol
//
// Three generations share one listen port. The server sniffs the
// generation from a connection's first bytes: protocol v3 opens with the
// frame magic 0xAD 0x51 — a byte pair gob never emits at stream start —
// and everything else is served on the legacy gob path.
//
//   - v1 (seed protocol): gob envelopes, ID 0, Setup/Compute only, one
//     synchronous request per round trip, replies in order. Still
//     accepted — v1 requests run on the shared pool with blocking
//     checkout and are never shed.
//
//   - v2: gob envelopes with nonzero request IDs allowing multiple
//     in-flight requests per connection and out-of-order replies matched
//     by ID; BatchCompute fans a group of blocks out across the worker
//     pool (one buffered reply); Rekey installs fresh QKD-derived key
//     material; replies carry typed serve.Code values next to the
//     human-readable Err detail. Gob matches struct fields by name and
//     ignores unknown fields, which is what keeps v1 and v2 peers
//     interoperable on one decoder.
//
//   - v3: a hand-rolled, length-prefixed binary framing that removes
//     gob's reflection and per-coefficient varint encoding from the hot
//     path. Every frame is
//
//     offset 0   magic    0xAD 0x51
//     offset 2   version  0x03
//     offset 3   type     hello, setup, compute, batch item, ...
//     offset 4   reqID    uint64, little-endian
//     offset 12  length   uint32 payload byte count
//     offset 16  payload
//
//     HE payloads (ciphertexts, keys) travel as raw little-endian uint64
//     coefficient runs via the ckks/ring AppendBinary/DecodeFrom codecs:
//     encode and decode are reflection-free, allocation-free in steady
//     state, and bit-identical to the gob representation. A v3 connection
//     opens with a client hello frame and a server ack; a client dialing
//     an older server (ProtoAuto) detects the dead hello and redials on
//     the gob path.
//
// The hello pair doubles as a feature handshake: a client may carry a
// flags byte in its hello payload requesting per-frame CRC32C trailers
// (DialConfig.Checksum), which the ack confirms when the server opted in
// (ServerConfig.FrameChecksums). Once negotiated, every subsequent frame
// in both directions carries a 4-byte Castagnoli checksum over header and
// payload, excluded from the header's length field; a mismatch fails with
// the typed ErrFrameChecksum instead of a garbage decode. Empty hello
// payloads — every pre-checksum peer — negotiate nothing and stay
// bit-compatible.
//
// v3 BatchCompute is streaming: the server frames and flushes each
// block's reply the moment its worker finishes (frameBatchItem, out of
// order) and closes the batch with a frameBatchDone trailer carrying the
// aggregate modeled costs, so giant batches never buffer whole replies.
// A per-connection write mutex interleaves concurrent senders at frame
// granularity, keeping one batch from starving pipelined requests on the
// same connection. Item frames are windowed (ServerConfig.BatchWindow): a
// window token is held from an item's submission until its frame reaches
// the socket, and eval workers only hand finished items to a per-batch
// writer goroutine, so a slow client reading a batch stalls its own
// window — never an eval-pool worker.
//
// # Pooled buffers and ownership
//
// Frames are built in and read into sync.Pool buffers. The rule: a
// decoded value that aliases a pooled buffer is valid only until the next
// frame touches that buffer, so everything the payload decoders return —
// strings, nonces, masked slices, coefficients — is copied out, and
// ciphertexts or keys destined for retention (session key material,
// results handed to callers) are decoded into fresh storage. Symmetric
// rule on the ckks side: Ciphertext.DecodeFrom reuses its receiver's
// coefficient storage, so a caller decoding into a pooled receiver must
// not retain the result past the receiver's reuse — see the wire
// conventions in internal/he/ckks/wire.go.
//
// Transmission and computation delays are modeled (reported in replies
// using the paper's cost formulas) rather than slept, so tests and
// examples run fast.
//
// # Observability and the debug plane
//
// The server instruments its full serving path against internal/obs: a
// lock-cheap metrics registry (wire frame/byte counters per direction,
// per-stage latency histograms quhe_stage_seconds{stage=decode|
// queue_wait|eval|encode|write}, per-profile eval latency and pool
// gauges, compute outcomes by code, scheduler queue depth/sheds, session
// and rekey counters, NTT inline-degradation and QKD flow counters via
// the control plane) plus a per-block tracer on the v3 compute path —
// every block's stage spans, ring-buffered per session, dumpable as
// chrome://tracing JSON. Instrumentation is on by default and costs
// under ~2% of the hot path (BenchmarkObsOverhead pins this in
// BENCH_obs.json); ServerConfig.DisableObs turns the substrate off
// entirely, and ServerConfig.Obs shares one registry between the server
// and a control plane so a single scrape shows the whole loop.
//
// Tracing is distributed and causal. A client armed with
// DialConfig.Tracer mints a per-block trace context (trace ID, root
// span, sampled bit — obs.TraceContext), records its own spans
// (dial/handshake/keygen/setup on dial; mask/submit/wait per sampled
// compute; backoff/reconnect/resume/replay on recovery; rekey and
// retry_backoff as standalone events) under Proc "client", and — when
// the v3 hello negotiated the trace flag — sends the 16-byte context in
// the compute frame. The server re-parents its stage spans under that
// context, so the two halves merge into one trace ID in a combined
// chrome dump. DialConfig.TraceSample bounds the per-block cost:
// lifecycle spans are always recorded (rare, each explains a latency
// cliff), per-compute spans and wire contexts follow the seeded
// sampling decision. A recovery pass adopts the trace identity of the
// oldest in-flight compute, so an outage's reconnect/resume/replay
// spans land inside the trace of the block they delayed — the
// continuity the chaos suite pins across a mid-flight transport kill.
// Eval-pool workers additionally run under a quhe_profile pprof label,
// splitting CPU profiles by security profile.
//
// The metrics become reachable only when ServerConfig.DebugAddr binds
// the HTTP debug plane (obs.ServeDebug): /metrics in the Prometheus
// text format, /debug/pprof/*, /debug/trace (filterable by ?session=
// and ?limit=, 400 on malformed parameters), /debug/slo (availability
// and per-profile latency attainment with multi-window burn rates),
// /debug/keyledger (per-cause QKD withdrawal attribution when the
// deployment wires ServerConfig.KeyLedgerJSON), and /debug/plan
// rendering the controller's live plan when the attached Controller
// implements PlanJSON. Security posture: the plane is off unless
// configured, and it serves operational internals — latency profiles,
// session counts, live pprof — without authentication, so bind it to
// loopback (or a trusted scrape network) and never to the serving
// address.
//
// # Failure handling
//
// Every failure a caller can see is typed (serve.Code on the wire,
// errors.Is-able sentinels in Go), and each code carries a contract: is a
// retry worth anything, what should the client do, and what the failure
// looks like in a client trace dump (the "traced as" column; a sampled
// block's wait span always closes with the outcome, so untraced-as rows
// just end there). The matrix — the client's automatic behavior is what
// Client does on its own when DialConfig.Reconnect and the unified retry
// policy are armed:
//
//	code (serve.*)        retryable?             traced as               client action
//	--------------------  ---------------------  ----------------------  ------------------------------------------
//	CodeOverloaded        yes, immediately       retry_backoff event     back off briefly and resend; the queue was
//	                                                                     full at that instant (load, not state)
//	CodeRekeyRequired     yes, after rekey       rekey event +           RekeyIfEpoch(epoch) then resend — automatic
//	                                             retry_backoff event     inside Compute/ComputeBatch, budget-capped
//	                                                                     (DialConfig.RetryBudget), jittered
//	CodeKeyExhausted      yes, after retry-after retry_backoff event     serve.RetryAfter(err) gives the wait the
//	                                                                     server derived from the QKD provisioning
//	                                                                     rate; degradation, not failure — edgeload
//	                                                                     counts these as shed_key_exhausted
//	CodeAdmissionDenied   no (until replan)      wait span closes        the control plane's standing decision;
//	                                                                     resending sooner than the next plan is noise
//	CodeProfileDenied     no                     wait span closes        renegotiate the profile (redial); never run
//	                                                                     at a different λ than granted
//	CodeDraining          no (this server)       wait span closes        dial another server; resume attempts are
//	                                                                     also turned away while draining
//	CodeResumeRejected    no                     recovery trace ends     the detached session is gone (window
//	                                             (reconnect, failed      expired, epoch/profile drift, bad proof);
//	                                             resume)                 full redial — new Setup, new key ceremony
//	CodeUnknownSession    no                     wait span closes        session evicted or never registered: redial
//	CodeConnClosed        via reconnect          recovery trace —        with Reconnect armed the client redials
//	                                             backoff/reconnect/      (capped exponential backoff + jitter),
//	                                             resume/replay spans     resumes the session (zero keygens, zero QKD
//	                                             under the stalled       withdrawals) and replays in-flight Computes;
//	                                             block's trace ID        in-flight Setup/Rekey/Batch fail typed —
//	                                                                     replaying a rekey could double-bump the
//	                                                                     epoch
//	CodeDeadline          caller's choice        wait span closes at     the request was abandoned after
//	                                             the timeout             DialConfig.RequestTimeout or ctx expiry; a
//	                                                                     late reply is dropped, so a resend is safe
//	                                                                     but the block may have been served
//	CodeBadRequest,       no                     wait span closes        fix the request; these are programming or
//	CodeParamMismatch,                                                   negotiation errors, not transients
//	CodeOversized,
//	CodeWireFormat
//	CodeInternal          maybe once             wait span closes        server-side evaluation failure; one resend
//	                                                                     distinguishes a transient from a real bug
//
// Server-side hardening: ServerConfig.IdleTimeout bounds how long a
// connection may sit idle (a client waiting on its own in-flight replies is
// not idle), ServerConfig.ResumeWindow lets a session outlive its
// connection for resume (guarded by a challenge–MAC possession proof over
// the QKD-derived resume credential, which rotates on rekey), and
// Server.Drain winds down gracefully — new work turned away typed, in-
// flight blocks finished, connections closed as they go quiet. The chaos
// suite (chaos_test.go + internal/faultnet) pins the whole contract under
// seeded byte-level faults: typed errors, no hangs, no wrong plaintexts,
// and resumes that cost zero key material (BENCH_faults.json).
package edge
