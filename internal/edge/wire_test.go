package edge

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quhe/internal/obs"
	"quhe/internal/serve"
)

func buildFrame(t testing.TB, ftype byte, id uint64, build func(b []byte) []byte) []byte {
	t.Helper()
	b := beginFrame(nil, ftype, id)
	if build != nil {
		b = build(b)
	}
	b, err := finishFrame(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	req := &ComputeRequest{SessionID: "sess", Block: 42, Epoch: 7, Masked: []float64{0.25, -1.5, 3.75}}
	frame := buildFrame(t, frameCompute, 99, func(b []byte) []byte { return appendComputeRequest(b, req) })

	var buf []byte
	ftype, id, payload, err := readFrame(bufio.NewReader(bytes.NewReader(frame)), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ftype != frameCompute || id != 99 {
		t.Fatalf("header: type=%d id=%d", ftype, id)
	}
	got, err := decodeComputeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != req.SessionID || got.Block != req.Block || got.Epoch != req.Epoch ||
		len(got.Masked) != len(req.Masked) {
		t.Fatalf("decoded %+v", got)
	}
	for i := range req.Masked {
		if got.Masked[i] != req.Masked[i] {
			t.Fatalf("masked[%d] = %v, want %v", i, got.Masked[i], req.Masked[i])
		}
	}
}

func TestFrameDecodeTypedErrors(t *testing.T) {
	valid := buildFrame(t, frameCompute, 1, func(b []byte) []byte {
		return appendComputeRequest(b, &ComputeRequest{SessionID: "s", Masked: []float64{1}})
	})
	read := func(b []byte) error {
		var buf []byte
		_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(b)), &buf)
		return err
	}

	if err := read(valid); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'Z'
	if err := read(badMagic); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad magic: err = %v, want ErrBadFrame", err)
	}
	badVersion := append([]byte(nil), valid...)
	badVersion[2] = 9
	if err := read(badVersion); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad version: err = %v, want ErrBadFrame", err)
	}
	badType := append([]byte(nil), valid...)
	badType[3] = 200
	if err := read(badType); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad type: err = %v, want ErrBadFrame", err)
	}
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[12:16], maxFramePayload+1)
	if err := read(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized: err = %v, want ErrFrameTooLarge", err)
	}
	// Truncations: header cut → EOF/unexpected EOF; payload cut →
	// unexpected EOF. Never a panic, never an untyped success.
	for cut := 0; cut < len(valid); cut++ {
		err := read(valid[:cut])
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: err = %v", cut, err)
		}
	}
}

// TestPayloadCodecsRoundTrip exercises every v3 message codec pair.
func TestPayloadCodecsRoundTrip(t *testing.T) {
	setupRep := &SetupReply{Code: serve.CodeParamMismatch, Err: "logN"}
	gotSetupRep, err := decodeSetupReply(appendSetupReply(nil, setupRep))
	if err != nil || gotSetupRep.Code != setupRep.Code || gotSetupRep.Err != setupRep.Err || gotSetupRep.OK {
		t.Fatalf("setup reply: %+v err %v", gotSetupRep, err)
	}
	okRep, err := decodeSetupReply(appendSetupReply(nil, &SetupReply{OK: true}))
	if err != nil || !okRep.OK {
		t.Fatalf("setup ok reply: %+v err %v", okRep, err)
	}

	compRep := &ComputeReply{Code: serve.CodeRekeyRequired, Err: "budget",
		RekeyNeeded: true, ModeledTxDelay: 0.5, ModeledCmpDelay: 0.25}
	gotCompRep, err := decodeComputeReply(appendComputeReply(nil, compRep))
	if err != nil || *gotCompRep != *compRep {
		t.Fatalf("compute reply: %+v err %v", gotCompRep, err)
	}

	batch := &BatchRequest{SessionID: "b", Epoch: 3, Blocks: []uint32{5, 6},
		Masked: [][]float64{{1, 2}, {3}}}
	gotBatch, err := decodeBatchRequest(appendBatchRequest(nil, batch))
	if err != nil || gotBatch.SessionID != batch.SessionID || gotBatch.Epoch != batch.Epoch ||
		len(gotBatch.Blocks) != 2 || gotBatch.Blocks[1] != 6 ||
		len(gotBatch.Masked) != 2 || gotBatch.Masked[0][1] != 2 || gotBatch.Masked[1][0] != 3 {
		t.Fatalf("batch request: %+v err %v", gotBatch, err)
	}

	idx, item, err := decodeBatchItem(appendBatchItem(nil, 7, &BatchItem{Code: serve.CodeOverloaded, Err: "full"}))
	if err != nil || idx != 7 || item.Code != serve.CodeOverloaded || item.Err != "full" || item.Result != nil {
		t.Fatalf("batch item: idx=%d %+v err %v", idx, item, err)
	}

	done := &BatchReply{RekeyNeeded: true, ModeledTxDelay: 1.5, ModeledCmpDelay: 2.5}
	gotDone, err := decodeBatchDone(appendBatchDone(nil, done))
	if err != nil || gotDone.Code != serve.CodeOK || !gotDone.RekeyNeeded ||
		gotDone.ModeledTxDelay != 1.5 || gotDone.ModeledCmpDelay != 2.5 {
		t.Fatalf("batch done: %+v err %v", gotDone, err)
	}

	rkRep, err := decodeRekeyReply(appendRekeyReply(nil, &RekeyReply{OK: true, Epoch: 4}))
	if err != nil || !rkRep.OK || rkRep.Epoch != 4 {
		t.Fatalf("rekey reply: %+v err %v", rkRep, err)
	}

	// Trailing garbage after a well-formed message is a protocol error.
	withTrailer := append(appendBatchDone(nil, done), 0xFF)
	if _, err := decodeBatchDone(withTrailer); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing bytes: err = %v, want ErrBadFrame", err)
	}
}

// TestTraceContextWireField pins the optional trailing trace-context
// field on Compute and Batch payloads: carried when valid, omitted when
// zero (pre-trace frames stay bit-identical), and malformed trailing
// bytes rejected typed.
func TestTraceContextWireField(t *testing.T) {
	tc := obs.TraceContext{TraceID: 0xfeed, Parent: 0xbeef, Sampled: true}

	req := &ComputeRequest{SessionID: "s", Block: 1, Epoch: 2, Masked: []float64{1}, Trace: tc}
	got, err := decodeComputeRequest(appendComputeRequest(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != tc {
		t.Errorf("compute trace round trip: %+v, want %+v", got.Trace, tc)
	}

	// A zero context adds no bytes: the encoding matches a pre-trace frame.
	bare := &ComputeRequest{SessionID: "s", Block: 1, Epoch: 2, Masked: []float64{1}}
	with := appendComputeRequest(nil, bare)
	without := appendComputeRequest(nil, &ComputeRequest{SessionID: "s", Block: 1, Epoch: 2, Masked: []float64{1}})
	if !bytes.Equal(with, without) {
		t.Error("zero trace context changed the encoding")
	}
	gotBare, err := decodeComputeRequest(without)
	if err != nil {
		t.Fatal(err)
	}
	if gotBare.Trace.Valid() {
		t.Errorf("pre-trace frame decoded a context: %+v", gotBare.Trace)
	}

	batch := &BatchRequest{SessionID: "b", Epoch: 1, Blocks: []uint32{1}, Masked: [][]float64{{1}}, Trace: tc}
	gotBatch, err := decodeBatchRequest(appendBatchRequest(nil, batch))
	if err != nil {
		t.Fatal(err)
	}
	if gotBatch.Trace != tc {
		t.Errorf("batch trace round trip: %+v, want %+v", gotBatch.Trace, tc)
	}

	// A trailing field shorter than 16 bytes is a protocol error, and so
	// is trailing garbage after a full context.
	enc := appendComputeRequest(nil, req)
	if _, err := decodeComputeRequest(enc[:len(enc)-1]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated trace context: err = %v, want ErrBadFrame", err)
	}
	if _, err := decodeComputeRequest(append(enc, 0x01)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized trace context: err = %v, want ErrBadFrame", err)
	}
}

// countingConn is a net.Conn stub whose writes fail after failAfter
// successful calls and whose Close calls are counted — the double-close
// detector for the teardown regression test.
type countingConn struct {
	mu        sync.Mutex
	writes    int
	failAfter int
	closes    atomic.Int32
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	if c.writes > c.failAfter {
		return 0, errors.New("injected write failure")
	}
	return len(p), nil
}

func (c *countingConn) Close() error {
	c.closes.Add(1)
	return nil
}

func (c *countingConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (c *countingConn) LocalAddr() net.Addr              { return nil }
func (c *countingConn) RemoteAddr() net.Addr             { return nil }
func (c *countingConn) SetDeadline(time.Time) error      { return nil }
func (c *countingConn) SetReadDeadline(time.Time) error  { return nil }
func (c *countingConn) SetWriteDeadline(time.Time) error { return nil }

// TestFrameWriterTearsDownOnce is the regression test for the connWriter
// teardown contract: concurrent v3 write failures and a racing reader
// exit must close the connection exactly once, and every failed or
// subsequent send must surface an error wrapping serve.ErrConnClosed.
// Run under -race in CI.
func TestFrameWriterTearsDownOnce(t *testing.T) {
	conn := &countingConn{failAfter: 1}
	var once sync.Once
	teardown := func() { once.Do(func() { conn.Close() }) }
	fw := newFrameWriter(conn, teardown, nil)

	const senders = 8
	errs := make([]error, senders)
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fw.sendFrame(frameComputeReply, uint64(i), func(b []byte) []byte {
				return appendComputeReply(b, &ComputeReply{Code: serve.CodeOK})
			})
		}()
	}
	// The reader goroutine races its own teardown, as serveConn's deferred
	// teardown does when the decode loop exits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		teardown()
	}()
	wg.Wait()

	if got := conn.closes.Load(); got != 1 {
		t.Fatalf("connection closed %d times, want exactly 1", got)
	}
	failures := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failures++
		if !errors.Is(err, serve.ErrConnClosed) {
			t.Errorf("sender %d: err = %v, want wrapping serve.ErrConnClosed", i, err)
		}
	}
	if failures == 0 {
		t.Fatal("no send failed despite the injected write error")
	}
	// The writer stays dead: later sends fail typed without touching conn.
	if err := fw.sendFrame(frameHello, 0, nil); !errors.Is(err, serve.ErrConnClosed) {
		t.Errorf("post-teardown send err = %v, want serve.ErrConnClosed", err)
	}
	if got := conn.closes.Load(); got != 1 {
		t.Fatalf("post-teardown send closed again (%d closes)", got)
	}
}

// FuzzFrameDecode asserts the frame reader and every payload decoder
// return typed errors on truncated or corrupt input and never panic.
func FuzzFrameDecode(f *testing.F) {
	valid := beginFrame(nil, frameCompute, 7)
	valid = appendComputeRequest(valid, &ComputeRequest{SessionID: "s", Block: 1, Epoch: 1, Masked: []float64{0.5}})
	valid, _ = finishFrame(valid, 0)
	f.Add(valid)
	f.Add(valid[:frameHeaderLen])
	f.Add([]byte{frameMagic0, frameMagic1, frameVersion, frameBatch})
	itemFrame := beginFrame(nil, frameBatchItem, 9)
	itemFrame = appendBatchItem(itemFrame, 0, &BatchItem{Code: serve.CodeOK})
	itemFrame, _ = finishFrame(itemFrame, 0)
	f.Add(itemFrame)
	// A compute frame carrying the trailing 16-byte trace context, so the
	// fuzzer mutates around the optional-field boundary.
	traced := beginFrame(nil, frameCompute, 11)
	traced = appendComputeRequest(traced, &ComputeRequest{
		SessionID: "s", Block: 2, Epoch: 1, Masked: []float64{0.25},
		Trace: obs.TraceContext{TraceID: 0xabcdef, Parent: 0x123456, Sampled: true},
	})
	traced, _ = finishFrame(traced, 0)
	f.Add(traced)

	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		ftype, _, payload, err := readFrame(bufio.NewReader(bytes.NewReader(data)), &buf)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameTooLarge) &&
				!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		var derr error
		switch ftype {
		case frameSetup:
			_, derr = decodeSetupRequest(payload)
		case frameSetupReply:
			_, derr = decodeSetupReply(payload)
		case frameCompute:
			_, derr = decodeComputeRequest(payload)
		case frameComputeReply:
			_, derr = decodeComputeReply(payload)
		case frameBatch:
			_, derr = decodeBatchRequest(payload)
		case frameBatchItem:
			_, _, derr = decodeBatchItem(payload)
		case frameBatchDone:
			_, derr = decodeBatchDone(payload)
		case frameRekey:
			_, derr = decodeRekeyRequest(payload)
		case frameRekeyReply:
			_, derr = decodeRekeyReply(payload)
		}
		if derr != nil && !errors.Is(derr, ErrBadFrame) {
			t.Fatalf("untyped payload error for frame type %d: %v", ftype, derr)
		}
	})
}
