package edge

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"
)

// buildCRCFrame assembles one frame with its CRC32C trailer, as a
// checksum-negotiated sender would emit it.
func buildCRCFrame(t *testing.T, ftype byte, id uint64, build func(b []byte) []byte) []byte {
	t.Helper()
	b := beginFrame(nil, ftype, id)
	if build != nil {
		b = build(b)
	}
	b, err := finishFrame(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

func TestChecksumFrameRoundTrip(t *testing.T) {
	req := &ComputeRequest{SessionID: "crc", Block: 3, Epoch: 2, Masked: []float64{0.5, -1.25}}
	frame := buildCRCFrame(t, frameCompute, 9, func(b []byte) []byte { return appendComputeRequest(b, req) })
	var buf []byte
	ftype, id, payload, err := readFrameCRC(bufio.NewReader(bytes.NewReader(frame)), &buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if ftype != frameCompute || id != 9 {
		t.Fatalf("frame (type %d, id %d), want (type %d, id 9)", ftype, id, frameCompute)
	}
	got, err := decodeComputeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != req.SessionID || got.Block != req.Block || len(got.Masked) != 2 {
		t.Fatalf("decoded %+v, want %+v", got, req)
	}
}

// TestCorruptFrameTypedError is the satellite's core assertion: a frame
// corrupted on the wire fails with the typed ErrFrameChecksum instead of
// reaching a payload decoder as garbage.
func TestCorruptFrameTypedError(t *testing.T) {
	req := &ComputeRequest{SessionID: "corrupt", Block: 1, Masked: []float64{1, 2, 3, 4}}
	frame := buildCRCFrame(t, frameCompute, 5, func(b []byte) []byte { return appendComputeRequest(b, req) })

	// Flip one payload byte at a position that keeps header and length
	// intact, so only the checksum can catch it.
	for _, flip := range []int{frameHeaderLen, frameHeaderLen + 11, len(frame) - crcTrailerLen - 1} {
		corrupt := append([]byte(nil), frame...)
		corrupt[flip] ^= 0x40
		var buf []byte
		_, _, _, err := readFrameCRC(bufio.NewReader(bytes.NewReader(corrupt)), &buf, true)
		if !errors.Is(err, ErrFrameChecksum) {
			t.Errorf("corrupt byte %d: err = %v, want ErrFrameChecksum", flip, err)
		}
	}

	// Without negotiation the same corruption decodes to *something* (the
	// legacy risk the trailer removes); the typed error must not fire.
	corrupt := append([]byte(nil), frame[:len(frame)-crcTrailerLen]...)
	corrupt[frameHeaderLen] ^= 0x40
	var buf []byte
	if _, _, _, err := readFrameCRC(bufio.NewReader(bytes.NewReader(corrupt)), &buf, false); errors.Is(err, ErrFrameChecksum) {
		t.Errorf("checksum error fired on an un-negotiated connection: %v", err)
	}

	// A truncated trailer is an I/O error, not a silent success.
	short := frame[:len(frame)-2]
	if _, _, _, err := readFrameCRC(bufio.NewReader(bytes.NewReader(short)), &buf, true); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated trailer err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestChecksumNegotiationMatrix pins the handshake: trailers flow only
// when both endpoints opt in, and every other pairing — including the
// pre-checksum empty-hello form — stays un-trailed and fully functional.
func TestChecksumNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name           string
		serverCRC      bool
		clientCRC      bool
		wantNegotiated bool
	}{
		{"both opt in", true, true, true},
		{"server only", true, false, false},
		{"client only", false, true, false},
		{"neither", false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServer("127.0.0.1:0", ServerConfig{
				Model:          Model{Weights: []float64{2}, Bias: []float64{0.25}},
				FrameChecksums: tc.serverCRC,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			client, err := DialWith(srv.Addr(), "crc-"+tc.name, []byte("crc-key"), 11,
				DialConfig{Protocol: ProtoV3, Checksum: tc.clientCRC})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			if got := client.Checksums(); got != tc.wantNegotiated {
				t.Errorf("Checksums() = %v, want %v", got, tc.wantNegotiated)
			}
			// Round-trips (with trailers verified on both directions when
			// negotiated) must still produce correct results.
			out, err := client.Compute(0, []float64{0.5})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(out[0]-1.25) > 0.05 {
				t.Errorf("compute under checksum mode: got %v, want 1.25", out[0])
			}
			// Batches exercise the streaming item frames.
			outs, err := client.ComputeBatch(1, [][]float64{{0.1}, {0.2}, {0.3}})
			if err != nil {
				t.Fatal(err)
			}
			// Loose tolerance: this asserts wire integrity, not CKKS
			// precision, which wobbles ~0.05 at the tiny test parameters.
			for i, o := range outs {
				want := 2*0.1*float64(i+1) + 0.25
				if math.Abs(o[0]-want) > 0.15 {
					t.Errorf("batch item %d: got %v, want %v", i, o[0], want)
				}
			}
		})
	}
}
