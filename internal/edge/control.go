package edge

import (
	"strings"
	"time"

	"quhe/internal/serve"
)

// Controller is the serving-side hook for a control plane
// (internal/control implements it). The server consults it on every Setup
// and compute admission decision, reads per-session rekey byte budgets
// from it in place of the static ServerConfig.RekeyBytes constant, and
// publishes per-block telemetry back into it. A nil
// ServerConfig.Control disables all of this and preserves the static
// pre-control behavior exactly.
//
// Implementations must be safe for concurrent use from the serving hot
// path and must not call back into the Server.
type Controller interface {
	// BindServe attaches the server's per-profile evaluator pools,
	// scheduler and session store so the control plane can read their
	// utilization gauges and actuate its plan (live queue-depth and
	// session-cap resizing). Called once from NewServer before any
	// traffic; store may be consulted for its built capacity ceiling.
	BindServe(pools *serve.PoolSet, sched *serve.Scheduler, store *serve.Store)
	// NegotiateProfile resolves the security profile a new session should
	// run: requested "" lets the active plan steer (the per-route λ
	// choice); a concrete ID is granted, downgraded to the plan's profile
	// for the session's route when it demands a higher λ than planned, or
	// denied with an error wrapping serve.ErrProfileDenied when unknown.
	NegotiateProfile(sessionID, requested string) (string, error)
	// AdmitSession decides whether a new session may register; resident
	// is the current resident-session count. Return an error wrapping
	// serve.ErrAdmissionDenied to shed the Setup.
	AdmitSession(sessionID string, resident int) error
	// ObserveSession records a successful registration and the profile it
	// landed on, so per-profile telemetry and profile-aware budgets see
	// the session before its first block.
	ObserveSession(sessionID, profileID string)
	// AdmitCompute decides whether pendingBytes of new work may be served
	// for a session that has used usedBytes of its current key budget.
	// Implementations should count denied bytes as demand: a fully shed
	// session must still register load with the demand predictor.
	AdmitCompute(sessionID string, usedBytes, pendingBytes int64) error
	// RekeyBudget returns the session's per-key byte budget
	// (0 = fall back to ServerConfig.RekeyBytes).
	RekeyBudget(sessionID string) int64
	// ObserveCompute records one block's outcome: masked payload bytes,
	// evaluation latency and the resulting code.
	ObserveCompute(sessionID string, bytes int64, latency time.Duration, code serve.Code)
}

// RotationObserver is an optional Controller extension: control planes
// that implement it receive the hoisted Galois rotation count of every
// served matvec block (alongside the block's ObserveCompute), so the
// rotation intensity can feed the planner's delay models. Controllers
// without it simply see matvec traffic as bytes.
type RotationObserver interface {
	ObserveRotations(sessionID string, n int)
}

// controlDetail extracts the human-readable detail of a typed control
// error for the wire's Err field, dropping the sentinel prefix the Code
// already carries (clients rebuild the sentinel from the code).
func controlDetail(err error) string {
	msg := err.Error()
	if sentinel := serve.CodeOf(err).Err(); sentinel != nil {
		msg = strings.TrimPrefix(msg, sentinel.Error()+": ")
	}
	return msg
}
