package edge

import (
	"strings"
	"time"

	"quhe/internal/serve"
)

// Controller is the serving-side hook for a control plane
// (internal/control implements it). The server consults it on every Setup
// and compute admission decision, reads per-session rekey byte budgets
// from it in place of the static ServerConfig.RekeyBytes constant, and
// publishes per-block telemetry back into it. A nil
// ServerConfig.Control disables all of this and preserves the static
// pre-control behavior exactly.
//
// Implementations must be safe for concurrent use from the serving hot
// path and must not call back into the Server.
type Controller interface {
	// BindServe attaches the server's evaluator pool and scheduler so the
	// control plane can read their utilization gauges. Called once from
	// NewServer before any traffic.
	BindServe(pool *serve.EvalPool, sched *serve.Scheduler)
	// AdmitSession decides whether a new session may register; resident
	// is the current resident-session count. Return an error wrapping
	// serve.ErrAdmissionDenied to shed the Setup.
	AdmitSession(sessionID string, resident int) error
	// AdmitCompute decides whether pendingBytes of new work may be served
	// for a session that has used usedBytes of its current key budget.
	AdmitCompute(sessionID string, usedBytes, pendingBytes int64) error
	// RekeyBudget returns the session's per-key byte budget
	// (0 = fall back to ServerConfig.RekeyBytes).
	RekeyBudget(sessionID string) int64
	// ObserveCompute records one block's outcome: masked payload bytes,
	// evaluation latency and the resulting code.
	ObserveCompute(sessionID string, bytes int64, latency time.Duration, code serve.Code)
}

// controlDetail extracts the human-readable detail of a typed control
// error for the wire's Err field, dropping the sentinel prefix the Code
// already carries (clients rebuild the sentinel from the code).
func controlDetail(err error) string {
	msg := err.Error()
	if sentinel := serve.CodeOf(err).Err(); sentinel != nil {
		msg = strings.TrimPrefix(msg, sentinel.Error()+": ")
	}
	return msg
}
