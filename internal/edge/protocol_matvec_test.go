package edge

import (
	"errors"
	"math"
	"testing"

	"quhe/internal/serve"
)

// testMatrix is a small well-conditioned 4×4 model matrix (dim divides
// every power-of-two slot count) plus a bias for the matvec tests.
var testMatrix = [][]float64{
	{0.5, -0.25, 0.1, 0},
	{0.2, 0.4, -0.1, 0.3},
	{-0.3, 0.1, 0.6, -0.2},
	{0, 0.25, -0.4, 0.5},
}

var testMatrixBias = []float64{0.1, -0.05, 0, 0.2}

func plainMatVec(m [][]float64, bias, v []float64) []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		s := 0.0
		for j, w := range row {
			if j < len(v) {
				s += w * v[j]
			}
		}
		if i < len(bias) {
			s += bias[i]
		}
		out[i] = s
	}
	return out
}

// TestMatVecEndToEnd drives the complete encrypted matrix–vector path
// over real TCP: hello negotiation (helloFlagMatVec), SetupReply
// dimension advertisement, rotation-key upload, then a masked vector
// transciphered and multiplied by the server's packed matrix with the
// hoisted BSGS kernel — decrypted client-side and checked against the
// plaintext product.
func TestMatVecEndToEnd(t *testing.T) {
	srv := startServer(t, Model{Matrix: testMatrix, MatrixBias: testMatrixBias})
	client, err := Dial(srv.Addr(), "mv-client", []byte("qkd-material"), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if client.Protocol() != "v3" {
		t.Fatalf("protocol = %q, want v3", client.Protocol())
	}
	if got := client.MatVecDim(); got != 4 {
		t.Fatalf("MatVecDim = %d, want 4", got)
	}
	if err := client.EnableMatVec(); err != nil {
		t.Fatalf("EnableMatVec: %v", err)
	}
	// Idempotent: the second call must not re-upload or fail.
	if err := client.EnableMatVec(); err != nil {
		t.Fatalf("EnableMatVec (repeat): %v", err)
	}

	v := []float64{0.8, -0.4, 0.6, 0.2}
	got, err := client.MatVec(0, v)
	if err != nil {
		t.Fatal(err)
	}
	want := plainMatVec(testMatrix, testMatrixBias, v)
	if len(got) != 4 {
		t.Fatalf("result has %d values, want 4", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Errorf("slot %d = %v, want %v", i, got[i], want[i])
		}
	}

	// A short vector is zero-padded to the matrix dimension.
	short := []float64{1, -1}
	got, err = client.MatVec(1, short)
	if err != nil {
		t.Fatal(err)
	}
	want = plainMatVec(testMatrix, testMatrixBias, short)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Errorf("short vector slot %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestMatVecAndComputeShareSession runs affine Compute and MatVec rounds
// interleaved on one session: the paths share the block space and key
// epochs but must not disturb each other.
func TestMatVecAndComputeShareSession(t *testing.T) {
	model := Model{
		Weights: []float64{1, 1, 1, 1},
		Matrix:  testMatrix, MatrixBias: testMatrixBias,
	}
	srv := startServer(t, model)
	client, err := Dial(srv.Addr(), "mixed", []byte("k"), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.EnableMatVec(); err != nil {
		t.Fatal(err)
	}

	v := []float64{0.3, 0.1, -0.2, 0.5}
	affine, err := client.Compute(0, v)
	if err != nil {
		t.Fatalf("compute: %v", err)
	}
	for i, want := range v {
		if math.Abs(affine[i]-want) > 0.05 {
			t.Errorf("affine slot %d = %v, want %v", i, affine[i], want)
		}
	}
	mv, err := client.MatVec(1, v)
	if err != nil {
		t.Fatalf("matvec: %v", err)
	}
	want := plainMatVec(testMatrix, testMatrixBias, v)
	for i := range want {
		if math.Abs(mv[i]-want[i]) > 0.05 {
			t.Errorf("matvec slot %d = %v, want %v", i, mv[i], want[i])
		}
	}
	if srv.Blocks("mixed") != 2 {
		t.Errorf("server processed %d blocks, want 2", srv.Blocks("mixed"))
	}
}

// TestMatVecWithoutRotationKeys asserts the typed rejection when the
// session never uploaded its Galois keys: the server must fail the
// request at admission, not crash mid-kernel.
func TestMatVecWithoutRotationKeys(t *testing.T) {
	srv := startServer(t, Model{Matrix: testMatrix})
	client, err := Dial(srv.Addr(), "no-keys", []byte("k"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.MatVec(0, []float64{1, 0, 0, 0}); !errors.Is(err, serve.ErrMatVecUnavailable) {
		t.Errorf("matvec without rotation keys err = %v, want ErrMatVecUnavailable", err)
	}
}

// TestMatVecNotConfigured asserts the capability is absent end to end
// when the server holds no matrix: the hello does not advertise it, the
// SetupReply carries no dimension, and the client fails locally typed.
func TestMatVecNotConfigured(t *testing.T) {
	srv := startServer(t, Model{Weights: []float64{1}})
	client, err := Dial(srv.Addr(), "plain", []byte("k"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := client.MatVecDim(); got != 0 {
		t.Errorf("MatVecDim = %d, want 0", got)
	}
	if err := client.EnableMatVec(); !errors.Is(err, serve.ErrMatVecUnavailable) {
		t.Errorf("EnableMatVec err = %v, want ErrMatVecUnavailable", err)
	}
	if _, err := client.MatVec(0, []float64{1}); !errors.Is(err, serve.ErrMatVecUnavailable) {
		t.Errorf("MatVec err = %v, want ErrMatVecUnavailable", err)
	}
}

// TestMatVecGobUnavailable pins that the capability is v3-only: a gob
// client against a matrix-serving server sees no matvec.
func TestMatVecGobUnavailable(t *testing.T) {
	srv := startServer(t, Model{Matrix: testMatrix})
	client, err := DialWith(srv.Addr(), "gob-client", []byte("k"), 9, DialConfig{Protocol: ProtoGob})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := client.MatVecDim(); got != 0 {
		t.Errorf("MatVecDim over gob = %d, want 0", got)
	}
	if err := client.EnableMatVec(); !errors.Is(err, serve.ErrMatVecUnavailable) {
		t.Errorf("EnableMatVec over gob err = %v, want ErrMatVecUnavailable", err)
	}
}

// TestMatVecSurvivesRekey pins that rotation keys are key-epoch
// independent: they are public evaluation material bound to the HE
// secret key, not the symmetric transciphering key, so a rekey must not
// invalidate them.
func TestMatVecSurvivesRekey(t *testing.T) {
	srv := startServer(t, Model{Matrix: testMatrix, MatrixBias: testMatrixBias})
	client, err := Dial(srv.Addr(), "rekeyed", []byte("first-material"), 13)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.EnableMatVec(); err != nil {
		t.Fatal(err)
	}
	if err := client.RekeyWith([]byte("second-material")); err != nil {
		t.Fatalf("rekey: %v", err)
	}
	v := []float64{-0.5, 0.25, 0.75, -0.1}
	got, err := client.MatVec(0, v)
	if err != nil {
		t.Fatalf("matvec after rekey: %v", err)
	}
	want := plainMatVec(testMatrix, testMatrixBias, v)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Errorf("slot %d = %v, want %v", i, got[i], want[i])
		}
	}
}
